.PHONY: all build test bench bench-json fmt fmt-check clean

all: build

build:
	dune build

test:
	dune runtest

bench:
	dune exec bench/main.exe

# Regenerate BENCH_core.json (micro-bench ns/run, obs overhead, experiment
# timings) at tiny scale. Override the output path with EWALK_BENCH_JSON.
bench-json:
	EWALK_BENCH_SCALE=tiny dune exec bench/main.exe

# The container has no ocamlformat, so `dune build @fmt` cannot check .ml
# sources; format/check the dune files directly instead.
DUNE_FILES := dune-project $(shell git ls-files '*/dune')

fmt:
	@for f in $(DUNE_FILES); do \
	  dune format-dune-file $$f > $$f.fmt && mv $$f.fmt $$f; \
	done

fmt-check:
	@fail=0; for f in $(DUNE_FILES); do \
	  dune format-dune-file $$f | cmp -s - $$f || { echo "not formatted: $$f"; fail=1; }; \
	done; exit $$fail

clean:
	dune clean
