.PHONY: all build test test-par test-crash test-kernel test-compact \
	test-serve serve-smoke serve-session-smoke runs-smoke bench bench-json \
	bench-baseline bench-check bench-full check-oracle ci fmt fmt-check clean

all: build

build:
	dune build

test:
	dune runtest

# Everything CI gates on: the build, the test suite, dune-file formatting,
# the bench regression check against the committed baseline, the oracle
# differential suite, the kernel differential battery, the
# crash-equivalence matrix, and the live-endpoint and run-store smoke
# tests.
ci: build test fmt-check bench-check check-oracle test-kernel test-compact \
	test-crash test-serve serve-smoke serve-session-smoke runs-smoke

# Crash-equivalence matrix: kill a checkpointed campaign at every trial
# boundary (at --jobs 1 and 4), resume it, and require bit-identical
# results; same for a snapshotted single walk, plus corrupted-snapshot
# rejection.  Every kill-point must also leave a flight-recorder dump that
# verify-trace --flight accepts.  See test/crash_matrix.sh.
test-crash: build
	bash test/crash_matrix.sh

# eprocd session-service conformance battery: protocol validation unit
# tests, router-level malformed-request rejection (structured 4xx, never a
# crash), qcheck fuzz over request shapes and raw request bytes, the
# session-lifecycle equivalence property (any step/stream/hibernate/
# rehydrate interleaving is bit-identical to an uninterrupted run),
# restart recovery, and concurrent-client determinism over loopback HTTP
# at pool sizes 1 and 4.  See test/test_serve.ml.
test-serve: build
	dune exec test/test_serve.exe

# End-to-end eprocd lifecycle smoke: create / step / hibernate under a
# tiny resident cap / rehydrate over real loopback HTTP, recorded trace
# streams accepted by `eproc verify-trace`, a valid /metrics exposition,
# and the 1000-session `eproc load-test` driven against the live daemon
# with the cap forcing hibernation churn.  See test/serve_session_smoke.sh.
serve-session-smoke: build
	bash test/serve_session_smoke.sh

# Live-endpoint smoke: start a cover run with --listen 0, scrape /healthz,
# /progress, and /metrics mid-run (the exposition must pass
# `eproc openmetrics-validate`), then require a clean shutdown via /quit.
# See test/serve_smoke.sh.
serve-smoke: build
	bash test/serve_smoke.sh

# Run-store smoke: mint runs with pinned epochs (deterministic ids), build
# a checkpoint/resume chain, record throughput series, and exercise
# `eproc runs list/show/compare` end to end.  See test/runs_smoke.sh.
runs-smoke: build
	bash test/runs_smoke.sh

# Run every production walk against the naive reference oracles over the
# stock graph/seed/mode matrix, serially and with 4 domains (the report is
# bit-identical by the pool's determinism contract).
check-oracle:
	EWALK_JOBS=1 dune exec bin/eproc.exe -- check-oracle
	EWALK_JOBS=4 dune exec bin/eproc.exe -- check-oracle

# The multi-walker kernel gate: the full differential battery (every
# kernel process x cooperating/competing x W in {1,4,17} x 3 seeds
# against the naive oracle) plus the rest of the kernel suite, serially
# and with 4 domains.  EWALK_KERNEL_FULL widens test_kernel's default
# quick matrix to the full one.
test-kernel: build
	EWALK_KERNEL_FULL=1 EWALK_JOBS=1 dune exec test/test_kernel.exe
	EWALK_KERNEL_FULL=1 EWALK_JOBS=4 dune exec test/test_kernel.exe
	EWALK_JOBS=1 dune exec bin/eproc.exe -- check-oracle --kernel
	EWALK_JOBS=4 dune exec bin/eproc.exe -- check-oracle --kernel

# The compact-data-plane gate: packed bitsets vs the reference model
# (qcheck, with shrinking), the compact partition vs legacy Unvisited
# draw-for-draw, trace byte-equality across processes x reorders x kernel
# widths x job counts, mutation kills for broken swap-to-back and stale
# popcounts, and the Bloom false-positive characterization — serially and
# with 4 domains.
test-compact: build
	EWALK_JOBS=1 dune exec test/test_compact.exe
	EWALK_JOBS=4 dune exec test/test_compact.exe

# The parallel-determinism gate: the whole suite must pass with the pool
# disabled and with 4 domains (results are bit-identical by contract).
test-par:
	EWALK_JOBS=1 dune runtest --force
	EWALK_JOBS=4 dune runtest --force

bench:
	dune exec bench/main.exe

# Regenerate BENCH_core.json (micro-bench median/MAD/min, obs overhead,
# experiment timings, and the jobs=1 vs jobs=4 parallel speedup +
# bit-identity check) at tiny scale. Override the output path with
# EWALK_BENCH_JSON and the domain count with --jobs / EWALK_JOBS.
bench-json:
	EWALK_BENCH_SCALE=tiny dune exec bench/main.exe -- --jobs 4

# Micro-bench-only environment for the regression gate: tiny scale, no
# experiment tables, no parallel section — just the kernel distributions
# the ledger compares.
BENCH_CHECK_ENV := EWALK_BENCH_SCALE=tiny EWALK_BENCH_SKIP_EXPERIMENTS=1 \
	EWALK_BENCH_SKIP_PARALLEL=1

# Refresh the committed baseline the regression gate compares against.
# Run this (and commit BENCH_baseline.json) after an intentional perf
# change; the run is not appended to the history ledger.
bench-baseline:
	$(BENCH_CHECK_ENV) EWALK_BENCH_JSON=BENCH_baseline.json \
	  EWALK_BENCH_HISTORY=/dev/null dune exec bench/main.exe -- --jobs 1

# Full-scale throughput run: EWALK_BENCH_SCALE=full adds the n=10^6
# stepping kernels (headline:steps_per_second_eprocess_full) and the
# n=10^7 vertex-cover smoke — both skipped below 4 GiB RAM — and the run
# is appended, with its minted run id, to BENCH_history.jsonl.  The
# experiment tables and parallel section are skipped here; `make bench`
# covers those.
bench-full: build
	EWALK_BENCH_SCALE=full EWALK_BENCH_SKIP_EXPERIMENTS=1 \
	  EWALK_BENCH_SKIP_PARALLEL=1 dune exec bench/main.exe -- --jobs 1

# The perf regression gate: measure the current tree's kernels and diff
# them against the committed baseline with MAD-scaled tolerance.  Exits
# non-zero iff a kernel median regressed beyond tolerance.  The relative
# floor is raised from bench-diff's 25% default to 50%: shared CI runners
# swing kernel medians by ~40% run to run from co-tenant load, and a gate
# that cries wolf on scheduler noise trains people to ignore it.  Real
# regressions past 1.5x still trip it.
bench-check:
	$(BENCH_CHECK_ENV) EWALK_BENCH_JSON=_build/bench-check.json \
	  EWALK_BENCH_HISTORY=/dev/null dune exec bench/main.exe -- --jobs 1
	dune exec bin/eproc.exe -- bench-diff --min-rel-pct 50 \
	  BENCH_baseline.json _build/bench-check.json

# The container has no ocamlformat, so `dune build @fmt` cannot check .ml
# sources; format/check the dune files directly instead.
DUNE_FILES := dune-project $(shell git ls-files '*/dune')

fmt:
	@for f in $(DUNE_FILES); do \
	  dune format-dune-file $$f > $$f.fmt && mv $$f.fmt $$f; \
	done

fmt-check:
	@fail=0; for f in $(DUNE_FILES); do \
	  dune format-dune-file $$f | cmp -s - $$f || { echo "not formatted: $$f"; fail=1; }; \
	done; exit $$fail

clean:
	dune clean
