.PHONY: all build test test-par bench bench-json fmt fmt-check clean

all: build

build:
	dune build

test:
	dune runtest

# The parallel-determinism gate: the whole suite must pass with the pool
# disabled and with 4 domains (results are bit-identical by contract).
test-par:
	EWALK_JOBS=1 dune runtest --force
	EWALK_JOBS=4 dune runtest --force

bench:
	dune exec bench/main.exe

# Regenerate BENCH_core.json (micro-bench ns/run, obs overhead, experiment
# timings, and the jobs=1 vs jobs=4 parallel speedup + bit-identity check)
# at tiny scale. Override the output path with EWALK_BENCH_JSON and the
# domain count with --jobs / EWALK_JOBS.
bench-json:
	EWALK_BENCH_SCALE=tiny dune exec bench/main.exe -- --jobs 4

# The container has no ocamlformat, so `dune build @fmt` cannot check .ml
# sources; format/check the dune files directly instead.
DUNE_FILES := dune-project $(shell git ls-files '*/dune')

fmt:
	@for f in $(DUNE_FILES); do \
	  dune format-dune-file $$f > $$f.fmt && mv $$f.fmt $$f; \
	done

fmt-check:
	@fail=0; for f in $(DUNE_FILES); do \
	  dune format-dune-file $$f | cmp -s - $$f || { echo "not formatted: $$f"; fail=1; }; \
	done; exit $$fail

clean:
	dune clean
