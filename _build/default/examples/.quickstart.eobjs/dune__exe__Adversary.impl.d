examples/adversary.ml: Array Ewalk Ewalk_expt Ewalk_graph Ewalk_prng Ewalk_theory Printf
