examples/adversary.mli:
