examples/graph_audit.ml: Ewalk Ewalk_analysis Ewalk_graph Ewalk_prng Ewalk_spectral Filename Format Fun Printf Sys
