examples/graph_audit.mli:
