examples/patrol.ml: Array Ewalk Ewalk_graph Ewalk_prng Printf
