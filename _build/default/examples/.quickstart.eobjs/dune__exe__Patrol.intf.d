examples/patrol.mli:
