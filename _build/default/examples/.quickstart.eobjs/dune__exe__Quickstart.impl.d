examples/quickstart.ml: Ewalk Ewalk_graph Ewalk_prng Ewalk_theory Printf
