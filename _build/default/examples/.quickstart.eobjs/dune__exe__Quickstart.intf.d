examples/quickstart.mli:
