examples/search_hypercube.ml: Ewalk Ewalk_graph Ewalk_prng List Printf
