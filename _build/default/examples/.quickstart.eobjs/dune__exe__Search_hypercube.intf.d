examples/search_hypercube.mli:
