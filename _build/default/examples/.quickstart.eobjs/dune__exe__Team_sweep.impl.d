examples/team_sweep.ml: Ewalk Ewalk_graph Ewalk_prng List Printf
