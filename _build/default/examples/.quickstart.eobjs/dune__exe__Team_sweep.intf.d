examples/team_sweep.mli:
