lib/analysis/blue.ml: Array Ewalk_graph Graph Hashtbl List Queue
