lib/analysis/blue.mli: Ewalk_graph Graph
