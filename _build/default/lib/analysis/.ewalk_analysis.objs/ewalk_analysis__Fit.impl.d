lib/analysis/fit.ml: Array Float
