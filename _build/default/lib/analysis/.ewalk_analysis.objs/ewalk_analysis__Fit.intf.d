lib/analysis/fit.mli:
