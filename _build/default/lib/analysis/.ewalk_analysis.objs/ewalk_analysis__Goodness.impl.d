lib/analysis/goodness.ml: Array Ewalk_graph Float Graph Hashtbl List
