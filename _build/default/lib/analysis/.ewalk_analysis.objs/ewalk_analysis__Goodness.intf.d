lib/analysis/goodness.mli: Ewalk_graph Graph
