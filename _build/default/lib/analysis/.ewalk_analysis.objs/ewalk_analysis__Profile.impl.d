lib/analysis/profile.ml: Array Ewalk Ewalk_graph Fit List
