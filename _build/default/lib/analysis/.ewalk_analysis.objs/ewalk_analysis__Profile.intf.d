lib/analysis/profile.mli: Ewalk
