lib/analysis/stats.mli:
