lib/analysis/subgraph_density.ml: Array Ewalk_graph Ewalk_prng Float Graph Hashtbl List
