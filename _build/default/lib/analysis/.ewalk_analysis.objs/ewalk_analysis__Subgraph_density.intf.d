lib/analysis/subgraph_density.mli: Ewalk_graph Ewalk_prng Graph
