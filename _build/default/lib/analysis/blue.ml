open Ewalk_graph

type component = {
  vertices : Graph.vertex array;
  edges : Graph.edge array;
}

let check_flags g visited =
  if Array.length visited <> Graph.m g then
    invalid_arg "Blue: visited array length <> m"

let blue_degree g ~visited v =
  check_flags g visited;
  Graph.fold_neighbors g v
    (fun acc _ e -> if visited.(e) then acc else acc + 1)
    0

let components g ~visited =
  check_flags g visited;
  let n = Graph.n g in
  let seen_vertex = Array.make n false in
  let out = ref [] in
  let queue = Queue.create () in
  for s = 0 to n - 1 do
    if not seen_vertex.(s) then begin
      (* Only vertices carrying a blue edge seed a component. *)
      let has_blue =
        Graph.fold_neighbors g s
          (fun acc _ e -> acc || not visited.(e))
          false
      in
      if has_blue then begin
        let vs = ref [] and es = ref [] in
        let edge_in = Hashtbl.create 16 in
        seen_vertex.(s) <- true;
        Queue.add s queue;
        while not (Queue.is_empty queue) do
          let v = Queue.take queue in
          vs := v :: !vs;
          Graph.iter_neighbors g v (fun w e ->
              if not visited.(e) then begin
                if not (Hashtbl.mem edge_in e) then begin
                  Hashtbl.add edge_in e ();
                  es := e :: !es
                end;
                if not seen_vertex.(w) then begin
                  seen_vertex.(w) <- true;
                  Queue.add w queue
                end
              end)
        done;
        let vertices = Array.of_list !vs in
        Array.sort compare vertices;
        let edges = Array.of_list !es in
        Array.sort compare edges;
        out := { vertices; edges } :: !out
      end
    end
  done;
  List.rev !out

let component_of_vertex g ~visited v =
  check_flags g visited;
  if blue_degree g ~visited v = 0 then None
  else begin
    let n = Graph.n g in
    let seen_vertex = Array.make n false in
    let queue = Queue.create () in
    let vs = ref [] and es = ref [] in
    let edge_in = Hashtbl.create 16 in
    seen_vertex.(v) <- true;
    Queue.add v queue;
    while not (Queue.is_empty queue) do
      let x = Queue.take queue in
      vs := x :: !vs;
      Graph.iter_neighbors g x (fun w e ->
          if not visited.(e) then begin
            if not (Hashtbl.mem edge_in e) then begin
              Hashtbl.add edge_in e ();
              es := e :: !es
            end;
            if not seen_vertex.(w) then begin
              seen_vertex.(w) <- true;
              Queue.add w queue
            end
          end)
    done;
    let vertices = Array.of_list !vs in
    Array.sort compare vertices;
    let edges = Array.of_list !es in
    Array.sort compare edges;
    Some { vertices; edges }
  end

let all_blue_degrees_even g ~visited =
  check_flags g visited;
  let ok = ref true in
  for v = 0 to Graph.n g - 1 do
    if blue_degree g ~visited v land 1 = 1 then ok := false
  done;
  !ok

let star_center g comp =
  if Array.length comp.edges < 2 then None
  else begin
    let u0, v0 = Graph.endpoints g comp.edges.(0) in
    if u0 = v0 then None
    else begin
      let still_ok c =
        Array.for_all
          (fun e ->
            let u, v = Graph.endpoints g e in
            u <> v && (u = c || v = c))
          comp.edges
      in
      if still_ok u0 then Some u0 else if still_ok v0 then Some v0 else None
    end
  end

let star_census g ~visited =
  let comps = components g ~visited in
  let stars =
    List.fold_left
      (fun acc c -> if star_center g c <> None then acc + 1 else acc)
      0 comps
  in
  (stars, List.length comps)
