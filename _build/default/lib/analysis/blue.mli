(** Blue-subgraph analysis: the unvisited-edge structure of a paused
    E-process.

    The paper's proofs revolve around the subgraph of {e blue} (unvisited)
    edges: on even-degree graphs every vertex always has even blue degree
    while the process is in a red phase (Observation 11), unvisited vertices
    sit inside blue components, and on 3-regular graphs the first blue walk
    strands ~n/8 of the vertices at the centre of isolated blue stars
    (Section 5).  This module extracts those structures from a process'
    {!Ewalk.Coverage} snapshot. *)

open Ewalk_graph

type component = {
  vertices : Graph.vertex array; (** vertices with >= 1 blue edge, sorted *)
  edges : Graph.edge array; (** the component's blue edges *)
}

val blue_degree : Graph.t -> visited:bool array -> Graph.vertex -> int
(** Unvisited edges incident with the vertex ([visited.(e) = true] means
    red; a blue self-loop counts 2). *)

val components : Graph.t -> visited:bool array -> component list
(** Connected components of the blue edge-induced subgraph.  Vertices with
    no blue edges belong to no component. *)

val component_of_vertex :
  Graph.t -> visited:bool array -> Graph.vertex -> component option
(** The blue component containing the vertex (the [S*_v] of Observation 11
    when the vertex is unvisited), or [None] if all its edges are red. *)

val all_blue_degrees_even : Graph.t -> visited:bool array -> bool
(** Observation 11.2 — holds on even-degree graphs whenever the E-process
    is in a red phase. *)

val star_center : Graph.t -> component -> Graph.vertex option
(** [Some c] if every edge of the component is incident with [c] and the
    component has at least 2 edges and no self-loop — i.e. the component is
    a star with centre [c]. *)

val star_census : Graph.t -> visited:bool array -> int * int
(** [(stars, components)]: the number of blue components that are stars,
    and the total number of blue components.  On 3-regular graphs, stars
    here are exactly the isolated [K_{1,3}]s of the paper's Section 5
    argument. *)
