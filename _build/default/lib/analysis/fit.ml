type linear_fit = { intercept : float; slope : float; r_squared : float }

let check_lengths xs ys =
  let n = Array.length xs in
  if n <> Array.length ys then invalid_arg "Fit: length mismatch";
  if n < 2 then invalid_arg "Fit: need at least 2 points";
  n

let r_squared_of model xs ys =
  let n = check_lengths xs ys in
  let mu = Array.fold_left ( +. ) 0.0 ys /. float_of_int n in
  let ss_tot = ref 0.0 and ss_res = ref 0.0 in
  for i = 0 to n - 1 do
    ss_tot := !ss_tot +. ((ys.(i) -. mu) ** 2.0);
    ss_res := !ss_res +. ((ys.(i) -. model xs.(i)) ** 2.0)
  done;
  if !ss_tot = 0.0 then if !ss_res = 0.0 then 1.0 else 0.0
  else 1.0 -. (!ss_res /. !ss_tot)

let affine xs ys =
  let n = check_lengths xs ys in
  let fn = float_of_int n in
  let sx = Array.fold_left ( +. ) 0.0 xs in
  let sy = Array.fold_left ( +. ) 0.0 ys in
  let sxx = ref 0.0 and sxy = ref 0.0 in
  for i = 0 to n - 1 do
    sxx := !sxx +. (xs.(i) *. xs.(i));
    sxy := !sxy +. (xs.(i) *. ys.(i))
  done;
  let denom = (fn *. !sxx) -. (sx *. sx) in
  if Float.abs denom < 1e-12 then invalid_arg "Fit.affine: degenerate xs";
  let slope = ((fn *. !sxy) -. (sx *. sy)) /. denom in
  let intercept = (sy -. (slope *. sx)) /. fn in
  let r_squared = r_squared_of (fun x -> intercept +. (slope *. x)) xs ys in
  { intercept; slope; r_squared }

let affine_log_x ns ys = affine (Array.map log ns) ys

let scale f xs ys =
  let n = check_lengths xs ys in
  let sfy = ref 0.0 and sff = ref 0.0 in
  for i = 0 to n - 1 do
    let fx = f xs.(i) in
    sfy := !sfy +. (fx *. ys.(i));
    sff := !sff +. (fx *. fx)
  done;
  if !sff = 0.0 then invalid_arg "Fit.scale: model vanishes on all points";
  let c = !sfy /. !sff in
  (c, r_squared_of (fun x -> c *. f x) xs ys)

let scale_n_log_n ns cover = scale (fun n -> n *. log n) ns cover
let scale_linear ns cover = scale (fun n -> n) ns cover
