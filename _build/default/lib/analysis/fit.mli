(** Least-squares model fitting for cover-time growth laws.

    Figure 1 distinguishes "flat" (Theta(n)) from "logarithmic"
    (Theta(n log n)) normalised cover times and quotes fitted constants like
    [0.93 n ln n] for 3-regular graphs.  This module fits the same model
    shapes: a one-parameter scale fit through arbitrary basis functions, and
    the two-parameter affine fit [a + b ln n] of the normalised cover time
    whose slope [b] is the even/odd discriminator. *)

type linear_fit = {
  intercept : float; (** a *)
  slope : float; (** b *)
  r_squared : float;
}

val affine : float array -> float array -> linear_fit
(** [affine xs ys] fits [y = a + b x] by ordinary least squares.
    @raise Invalid_argument if the arrays differ in length or have fewer
    than 2 points, or if all [xs] coincide. *)

val affine_log_x : float array -> float array -> linear_fit
(** [affine_log_x ns ys] fits [y = a + b ln n] — the Figure 1 discriminator
    applied to normalised cover times [y = C_V / n]. *)

val scale : (float -> float) -> float array -> float array -> float * float
(** [scale f xs ys] fits the one-parameter model [y = c f(x)], returning
    [(c, r_squared)]; used for the paper's [c n ln n] constants.
    @raise Invalid_argument as {!affine}, or if [f] vanishes on all
    points. *)

val scale_n_log_n : float array -> float array -> float * float
(** [scale_n_log_n ns cover_times] fits [C = c n ln n] and returns
    [(c, r_squared)] — directly comparable to Figure 1's bracketed
    constants. *)

val scale_linear : float array -> float array -> float * float
(** [scale_linear ns cover_times] fits [C = c n]. *)

val r_squared_of : (float -> float) -> float array -> float array -> float
(** Coefficient of determination of an arbitrary fixed model. *)
