open Ewalk_graph

type bound = { lower : int; witness : int option }

type cycle_info = {
  c_edges : int array;
  c_vertices : int array;
  incident_mask : int; (* bitmask over the incident-edge indices of v *)
}

let vertices_of_edge_list g edges =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun e ->
      let u, v = Graph.endpoints g e in
      Hashtbl.replace seen u ();
      Hashtbl.replace seen v ())
    edges;
  let out = Hashtbl.fold (fun v () acc -> v :: acc) seen [] in
  Array.of_list out

let ell_of_vertex g v ~max_len =
  if max_len < 1 then invalid_arg "Goodness.ell_of_vertex: max_len < 1";
  let d = Graph.degree g v in
  if d = 0 then invalid_arg "Goodness.ell_of_vertex: isolated vertex";
  if d land 1 = 1 then
    invalid_arg "Goodness.ell_of_vertex: vertex of odd degree";
  if d > 62 then invalid_arg "Goodness.ell_of_vertex: degree > 62";
  (* Index the incident edges of v; a self-loop occupies one index. *)
  let incident = ref [] in
  Graph.iter_neighbors g v (fun _ e ->
      if not (List.mem e !incident) then incident := e :: !incident);
  let incident = Array.of_list (List.rev !incident) in
  let index_of_edge e =
    let idx = ref (-1) in
    Array.iteri (fun i e' -> if e' = e then idx := i) incident;
    !idx
  in
  let full_mask = (1 lsl Array.length incident) - 1 in
  let cycles =
    List.map
      (fun edges ->
        let mask =
          List.fold_left
            (fun acc e ->
              let i = index_of_edge e in
              if i >= 0 then acc lor (1 lsl i) else acc)
            0 edges
        in
        {
          c_edges = Array.of_list edges;
          c_vertices = vertices_of_edge_list g edges;
          incident_mask = mask;
        })
      (Ewalk_graph.Girth.cycles_through g v ~max_len)
  in
  let cycles = Array.of_list cycles in
  (* Group cycles by their lowest uncovered incident index for the exact
     cover search. *)
  let edge_used = Array.make (Graph.m g) false in
  let vertex_mult = Array.make (Graph.n g) 0 in
  let union_size = ref 0 in
  let best = ref max_int in
  let add_cycle c =
    Array.iter (fun e -> edge_used.(e) <- true) c.c_edges;
    Array.iter
      (fun u ->
        if vertex_mult.(u) = 0 then incr union_size;
        vertex_mult.(u) <- vertex_mult.(u) + 1)
      c.c_vertices
  in
  let remove_cycle c =
    Array.iter (fun e -> edge_used.(e) <- false) c.c_edges;
    Array.iter
      (fun u ->
        vertex_mult.(u) <- vertex_mult.(u) - 1;
        if vertex_mult.(u) = 0 then decr union_size)
      c.c_vertices
  in
  let cycle_ok covered c =
    (* Must cover at least one new incident edge, never reuse an edge, and
       never re-cover an incident edge already covered. *)
    c.incident_mask land covered = 0
    && Array.for_all (fun e -> not edge_used.(e)) c.c_edges
  in
  let rec search covered =
    if covered = full_mask then begin
      if !union_size < !best then best := !union_size
    end
    else if !union_size < !best then begin
      (* Branch on the lowest uncovered incident edge. *)
      let target = ref 0 in
      while covered land (1 lsl !target) <> 0 do
        incr target
      done;
      let bit = 1 lsl !target in
      Array.iter
        (fun c ->
          if c.incident_mask land bit <> 0 && cycle_ok covered c then begin
            add_cycle c;
            search (covered lor c.incident_mask);
            remove_cycle c
          end)
        cycles
    end
  in
  search 0;
  if !best < max_int then begin
    let w = !best in
    if w <= max_len + 1 then { lower = w; witness = Some w }
    else { lower = max_len + 1; witness = Some w }
  end
  else { lower = max_len + 1; witness = None }

let ell_good g ~ell =
  if ell < 1 then invalid_arg "Goodness.ell_good: ell < 1";
  if not (Graph.all_degrees_even g) then
    invalid_arg "Goodness.ell_good: graph has a vertex of odd degree";
  let ok = ref true in
  let v = ref 0 in
  while !ok && !v < Graph.n g do
    if Graph.degree g !v > 0 then begin
      let b = ell_of_vertex g !v ~max_len:ell in
      if b.lower < ell then ok := false
    end;
    incr v
  done;
  !ok

let ell_lower_bound_p2 g =
  let n = float_of_int (Graph.n g) in
  let r = float_of_int (max 1 (Graph.max_degree g)) in
  let value = log n /. (4.0 *. log (r *. Float.exp 1.0)) in
  max 1 (int_of_float (Float.floor value))
