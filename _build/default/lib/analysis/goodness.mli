(** [ell]-goodness: the local expansion property of Theorem 1.

    A vertex [v] is [ell]-good if every even-degree subgraph containing all
    edges incident with [v] spans at least [ell] vertices; a graph is
    [ell]-good if every vertex is.  Such a subgraph decomposes into
    edge-disjoint cycles, and the cycles meeting [v]'s incident edges all
    pass through [v], so the minimal witness is a union of [d(v)/2]
    edge-disjoint cycles through [v] covering all its incident edges.  We
    search that space exactly over cycles of bounded length; when no witness
    made of short cycles exists, any witness contains a long cycle, whose
    vertex count alone certifies the lower bound. *)

open Ewalk_graph

type bound = {
  lower : int; (** certified: every witness spans >= [lower] vertices *)
  witness : int option;
      (** vertex count of the smallest witness found, if any — an upper
          bound on [ell(v)]; [lower = w] when [Some w] is exact *)
}

val ell_of_vertex : Graph.t -> Graph.vertex -> max_len:int -> bound
(** Bounds on [ell(v)] from an exhaustive search over witnesses whose
    cycles all have length [<= max_len].  If the best such witness spans
    [<= max_len + 1] vertices it is globally minimal ([lower = witness]);
    otherwise witnesses using longer cycles might be smaller, and only
    [lower = max_len + 1] is certified.  Exponential in [max_len]; intended
    for [max_len = O(log n)] on bounded-degree graphs.
    @raise Invalid_argument if [v] has odd degree (no finite witness need
    exist) or [max_len < 1]. *)

val ell_good : Graph.t -> ell:int -> bool
(** [ell_good g ~ell]: certified check that every vertex is [ell]-good
    (runs {!ell_of_vertex} with [max_len = ell] at every vertex).
    @raise Invalid_argument if the graph has a vertex of odd degree. *)

val ell_lower_bound_p2 : Graph.t -> int
(** The paper's property-P2 bound for random regular graphs (proof of
    Corollary 2): [ell >= log n / (4 log (r e))] where [r] is the maximum
    degree — meaningful only on families where P2 actually holds, but
    printable next to measured values for comparison. *)
