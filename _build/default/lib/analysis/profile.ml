type point = {
  steps : int;
  unvisited_vertices : int;
  unvisited_edges : int;
}

type t = {
  points : point list;
  cover_step : int option;
}

let snapshot (p : Ewalk.Cover.process) =
  let cov = p.Ewalk.Cover.coverage in
  {
    steps = p.Ewalk.Cover.steps_done ();
    unvisited_vertices =
      Ewalk_graph.Graph.n p.Ewalk.Cover.graph - Ewalk.Coverage.vertices_visited cov;
    unvisited_edges =
      Ewalk_graph.Graph.m p.Ewalk.Cover.graph - Ewalk.Coverage.edges_visited cov;
  }

let run ?cap ~checkpoint_every (p : Ewalk.Cover.process) =
  if checkpoint_every < 1 then invalid_arg "Profile.run: checkpoint_every < 1";
  let cap =
    match cap with Some c -> c | None -> Ewalk.Cover.default_cap p.Ewalk.Cover.graph
  in
  let points = ref [ snapshot p ] in
  let finished () =
    Ewalk.Coverage.all_vertices_visited p.Ewalk.Cover.coverage
  in
  while (not (finished ())) && p.Ewalk.Cover.steps_done () < cap do
    let burst = min checkpoint_every (cap - p.Ewalk.Cover.steps_done ()) in
    let i = ref 0 in
    while !i < burst && not (finished ()) do
      p.Ewalk.Cover.step ();
      incr i
    done;
    points := snapshot p :: !points
  done;
  {
    points = List.rev !points;
    cover_step = Ewalk.Coverage.vertex_cover_step p.Ewalk.Cover.coverage;
  }

let stragglers_at t ~steps =
  let rec find = function
    | [] -> None
    | pt :: rest ->
        if pt.steps >= steps then Some pt.unvisited_vertices else find rest
  in
  find t.points

let decay_rate t ~n =
  let usable =
    List.filter_map
      (fun pt ->
        if pt.unvisited_vertices > 0 && pt.steps > 0 then
          Some
            ( float_of_int pt.steps /. float_of_int n,
              log (float_of_int pt.unvisited_vertices /. float_of_int n) )
        else None)
      t.points
  in
  match usable with
  | [] | [ _ ] -> None
  | pts ->
      let xs = Array.of_list (List.map fst pts) in
      let ys = Array.of_list (List.map snd pts) in
      (match Fit.affine xs ys with
      | f -> Some f.Fit.slope
      | exception Invalid_argument _ -> None)
