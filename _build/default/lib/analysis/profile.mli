(** Coverage profiles: how coverage evolves over a walk's lifetime.

    The cover time is one number; the profile [u(t)] — unvisited vertices
    (or edges) after [t] transitions — is the whole curve, and it is where
    the even/odd contrast of the paper becomes visible: on even-degree
    expanders the E-process drives [u(t)] to zero linearly, while odd
    degrees leave a straggler population that only coupon-collecting
    removes.  This module samples profiles at fixed checkpoints of any
    {!Ewalk.Cover.process} and fits their decay. *)

type point = {
  steps : int;
  unvisited_vertices : int;
  unvisited_edges : int;
}

type t = {
  points : point list; (** chronological; last point is at stop time *)
  cover_step : int option; (** vertex cover time if reached *)
}

val run :
  ?cap:int -> checkpoint_every:int -> Ewalk.Cover.process -> t
(** Drive the process to vertex coverage (or [cap], default
    {!Ewalk.Cover.default_cap}), recording a point every
    [checkpoint_every] transitions.
    @raise Invalid_argument if [checkpoint_every < 1]. *)

val stragglers_at : t -> steps:int -> int option
(** Unvisited vertices at the first checkpoint at or after [steps]. *)

val decay_rate : t -> n:int -> float option
(** Least-squares slope of [ln (u(t)/n)] against [t/n] over the checkpoints
    with [u(t) > 0]: the exponential decay rate of the straggler
    population, in units of [1/n] steps.  [None] with fewer than two usable
    checkpoints. *)
