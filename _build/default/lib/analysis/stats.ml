type summary = {
  count : int;
  mean : float;
  std : float;
  stderr : float;
  min : float;
  max : float;
  median : float;
}

let mean xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.mean: empty sample";
  Array.fold_left ( +. ) 0.0 xs /. float_of_int n

let variance xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.variance: empty sample";
  if n = 1 then 0.0
  else begin
    let mu = mean xs in
    let ss =
      Array.fold_left (fun acc x -> acc +. ((x -. mu) *. (x -. mu))) 0.0 xs
    in
    ss /. float_of_int (n - 1)
  end

let std xs = sqrt (variance xs)

let quantile xs q =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.quantile: empty sample";
  if q < 0.0 || q > 1.0 then invalid_arg "Stats.quantile: q out of [0,1]";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let pos = q *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor pos) in
  let hi = int_of_float (Float.ceil pos) in
  if lo = hi then sorted.(lo)
  else begin
    let frac = pos -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
  end

let median xs = quantile xs 0.5

let summarize xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.summarize: empty sample";
  let mu = mean xs in
  let sd = std xs in
  {
    count = n;
    mean = mu;
    std = sd;
    stderr = sd /. sqrt (float_of_int n);
    min = Array.fold_left Float.min xs.(0) xs;
    max = Array.fold_left Float.max xs.(0) xs;
    median = median xs;
  }

let summarize_ints xs = summarize (Array.map float_of_int xs)

let confidence_95 xs =
  let s = summarize xs in
  (s.mean -. (1.96 *. s.stderr), s.mean +. (1.96 *. s.stderr))

module Online = struct
  type t = { mutable n : int; mutable mu : float; mutable m2 : float }

  let create () = { n = 0; mu = 0.0; m2 = 0.0 }

  let add t x =
    t.n <- t.n + 1;
    let delta = x -. t.mu in
    t.mu <- t.mu +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mu))

  let count t = t.n
  let mean t = t.mu
  let variance t = if t.n < 2 then 0.0 else t.m2 /. float_of_int (t.n - 1)
  let std t = sqrt (variance t)
end
