(** Descriptive statistics for trial aggregation.

    Cover times are averaged over repeated trials (Figure 1 uses 5 per
    point); this module provides the summary numbers the experiment tables
    print, plus a Welford online accumulator so long sweeps never hold all
    samples in memory. *)

type summary = {
  count : int;
  mean : float;
  std : float; (** sample standard deviation (n - 1 denominator) *)
  stderr : float;
  min : float;
  max : float;
  median : float;
}

val summarize : float array -> summary
(** @raise Invalid_argument on an empty array. *)

val summarize_ints : int array -> summary

val mean : float array -> float
val variance : float array -> float
(** Sample variance ([n - 1] denominator); 0 for singleton input. *)

val std : float array -> float

val quantile : float array -> float -> float
(** [quantile xs q], [0 <= q <= 1], by linear interpolation on the sorted
    sample.  @raise Invalid_argument on empty input or [q] outside
    [\[0,1\]]. *)

val median : float array -> float

val confidence_95 : float array -> float * float
(** Normal-approximation 95% confidence interval for the mean:
    [(mean - 1.96 se, mean + 1.96 se)]. *)

(** Online mean/variance accumulator (Welford). *)
module Online : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val variance : t -> float
  (** Sample variance; 0 with fewer than 2 samples. *)

  val std : t -> float
end
