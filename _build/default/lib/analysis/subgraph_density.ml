open Ewalk_graph
module Rng = Ewalk_prng.Rng

let induced_edge_count g vs =
  let in_set = Hashtbl.create (2 * Array.length vs) in
  Array.iter (fun v -> Hashtbl.replace in_set v ()) vs;
  Graph.fold_edges g
    (fun acc _ u v ->
      if Hashtbl.mem in_set u && Hashtbl.mem in_set v then acc + 1 else acc)
    0

let random_connected_set rng g ~s =
  if s < 1 || s > Graph.n g then
    invalid_arg "Subgraph_density.random_connected_set: bad size";
  let seed = Rng.int rng (Graph.n g) in
  let in_set = Hashtbl.create (2 * s) in
  let frontier = ref [] in
  let push_neighbors v =
    Graph.iter_neighbors g v (fun w _ ->
        if not (Hashtbl.mem in_set w) then frontier := w :: !frontier)
  in
  Hashtbl.replace in_set seed ();
  push_neighbors seed;
  let size = ref 1 in
  let stuck = ref false in
  while !size < s && not !stuck do
    (* Pick a uniform frontier entry; drop stale ones lazily. *)
    let fresh = List.filter (fun w -> not (Hashtbl.mem in_set w)) !frontier in
    match fresh with
    | [] -> stuck := true
    | _ ->
        let arr = Array.of_list fresh in
        let w = arr.(Rng.int rng (Array.length arr)) in
        Hashtbl.replace in_set w ();
        incr size;
        frontier := fresh;
        push_neighbors w
  done;
  if !size = s then begin
    let out = Hashtbl.fold (fun v () acc -> v :: acc) in_set [] in
    Some (Array.of_list out)
  end
  else None

let max_density_sampled rng g ~s ~samples =
  let best = ref 0 in
  for _ = 1 to samples do
    match random_connected_set rng g ~s with
    | None -> ()
    | Some vs ->
        let c = induced_edge_count g vs in
        if c > !best then best := c
  done;
  !best

let p2_excess_allowance g ~s =
  let n = float_of_int (max 2 (Graph.n g)) in
  let r = float_of_int (max 1 (Graph.max_degree g)) in
  int_of_float
    (Float.floor (2.0 *. float_of_int s *. log (r *. Float.exp 1.0) /. log n))

let p2_holds_sampled rng g ~s ~samples =
  max_density_sampled rng g ~s ~samples <= s + p2_excess_allowance g ~s
