(** Small-subgraph edge density: the paper's property P2.

    P2 states that whp no set of [s = O(log n)] vertices of a random
    [r]-regular graph induces more than [s + a] edges, with
    [a = floor (2 s log (re) / log n)]; in particular no set of size
    [s <= log n / (4 log (re))] induces more than [s] edges.  This property
    is what makes random regular graphs [Omega(log n)]-good (Corollary 2).
    We audit it by sampling random connected vertex sets and by exhaustive
    BFS-tree enumeration on small graphs. *)

open Ewalk_graph

val induced_edge_count : Graph.t -> Graph.vertex array -> int
(** Number of edges with both endpoints in the given (distinct) set. *)

val random_connected_set :
  Ewalk_prng.Rng.t -> Graph.t -> s:int -> Graph.vertex array option
(** A random connected vertex set of size [s], grown by a uniform frontier
    expansion from a random seed; [None] if the seed's component has fewer
    than [s] vertices.  The distribution is not uniform over all connected
    sets, but it is supported on all of them, which suffices for a density
    audit. *)

val max_density_sampled :
  Ewalk_prng.Rng.t -> Graph.t -> s:int -> samples:int -> int
(** Largest induced-edge count observed over the given number of sampled
    connected [s]-sets (0 if no set could be grown). *)

val p2_excess_allowance : Graph.t -> s:int -> int
(** The paper's [a = floor (2 s log (re) / log n)] for this graph's maximum
    degree. *)

val p2_holds_sampled :
  Ewalk_prng.Rng.t -> Graph.t -> s:int -> samples:int -> bool
(** Sampled audit: no sampled connected [s]-set induces more than [s + a]
    edges. *)
