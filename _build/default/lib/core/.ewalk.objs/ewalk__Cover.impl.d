lib/core/cover.ml: Coverage Ewalk_graph Graph
