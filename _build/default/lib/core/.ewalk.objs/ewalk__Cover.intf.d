lib/core/cover.mli: Coverage Ewalk_graph Graph
