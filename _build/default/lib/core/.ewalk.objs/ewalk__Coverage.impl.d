lib/core/coverage.ml: Array Ewalk_graph Graph
