lib/core/coverage.mli: Ewalk_graph Graph
