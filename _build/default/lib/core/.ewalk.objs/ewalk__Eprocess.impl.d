lib/core/eprocess.ml: Array Cover Coverage Ewalk_graph Ewalk_obs Ewalk_prng Graph List Unvisited
