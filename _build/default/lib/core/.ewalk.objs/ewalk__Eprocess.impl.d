lib/core/eprocess.ml: Array Cover Coverage Ewalk_graph Ewalk_prng Graph List Unvisited
