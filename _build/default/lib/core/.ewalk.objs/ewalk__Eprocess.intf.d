lib/core/eprocess.mli: Cover Coverage Ewalk_graph Ewalk_prng Graph
