lib/core/eprocess.mli: Cover Coverage Ewalk_graph Ewalk_obs Ewalk_prng Graph
