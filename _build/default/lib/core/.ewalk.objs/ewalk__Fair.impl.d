lib/core/fair.ml: Array Cover Coverage Ewalk_graph Ewalk_prng Graph
