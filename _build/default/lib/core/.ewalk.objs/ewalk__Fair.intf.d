lib/core/fair.mli: Cover Coverage Ewalk_graph Ewalk_prng Graph
