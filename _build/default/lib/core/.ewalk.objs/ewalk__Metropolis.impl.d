lib/core/metropolis.ml: Cover Coverage Ewalk_graph Ewalk_prng Graph
