lib/core/metropolis.mli: Cover Coverage Ewalk_graph Ewalk_prng Graph
