lib/core/rotor.ml: Array Cover Coverage Ewalk_graph Ewalk_prng Graph
