lib/core/rotor.mli: Cover Coverage Ewalk_graph Ewalk_prng Graph
