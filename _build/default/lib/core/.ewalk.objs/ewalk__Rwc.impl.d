lib/core/rwc.ml: Cover Coverage Ewalk_graph Ewalk_prng Graph Printf
