lib/core/rwc.mli: Cover Coverage Ewalk_graph Ewalk_prng Graph
