lib/core/srw.mli: Cover Coverage Ewalk_graph Ewalk_prng Graph
