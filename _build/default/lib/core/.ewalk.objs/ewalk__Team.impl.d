lib/core/team.ml: Array Cover Coverage Ewalk_graph Ewalk_prng Graph List Printf Unvisited
