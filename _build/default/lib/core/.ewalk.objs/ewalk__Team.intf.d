lib/core/team.mli: Cover Coverage Ewalk_graph Ewalk_prng Graph
