lib/core/unvisited.ml: Array Ewalk_graph Graph Hashtbl
