lib/core/unvisited.mli: Ewalk_graph Graph
