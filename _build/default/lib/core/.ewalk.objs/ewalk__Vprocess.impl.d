lib/core/vprocess.ml: Cover Coverage Ewalk_graph Ewalk_prng Graph
