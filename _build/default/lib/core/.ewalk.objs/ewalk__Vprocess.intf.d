lib/core/vprocess.mli: Cover Coverage Ewalk_graph Ewalk_prng Graph
