open Ewalk_graph

type process = {
  name : string;
  graph : Graph.t;
  position : unit -> Graph.vertex;
  step : unit -> unit;
  steps_done : unit -> int;
  coverage : Coverage.t;
}

let default_cap g =
  let n = float_of_int (max 2 (Graph.n g)) in
  int_of_float (2000.0 *. n *. (log n +. 1.0)) + 100_000

let run_until ?(cap = max_int) p ~finished ~result =
  let gave_up = ref false in
  while (not (finished ())) && not !gave_up do
    if p.steps_done () >= cap then gave_up := true else p.step ()
  done;
  if finished () then Some (result ()) else None

let run_until_vertex_cover ?cap p =
  run_until ?cap p
    ~finished:(fun () -> Coverage.all_vertices_visited p.coverage)
    ~result:(fun () ->
      match Coverage.vertex_cover_step p.coverage with
      | Some t -> t
      | None -> assert false)

let run_until_edge_cover ?cap p =
  run_until ?cap p
    ~finished:(fun () -> Coverage.all_edges_visited p.coverage)
    ~result:(fun () ->
      match Coverage.edge_cover_step p.coverage with
      | Some t -> t
      | None -> assert false)

let run_until_min_visits ?(cap = max_int) ~k p =
  if k < 0 then invalid_arg "Cover.run_until_min_visits: k < 0";
  (* Scanning the visit counts costs O(n); amortise it by only checking
     after the cheap necessary condition (full vertex coverage) holds, and
     then at most every [n] steps. *)
  let n = Graph.n p.graph in
  let satisfied () =
    Coverage.all_vertices_visited p.coverage
    && Coverage.min_visit_count p.coverage >= k
  in
  let gave_up = ref false in
  let done_ = ref (satisfied ()) in
  while (not !done_) && not !gave_up do
    if p.steps_done () >= cap then gave_up := true
    else begin
      let burst = max 1 (n / 4) in
      let i = ref 0 in
      while !i < burst && p.steps_done () < cap do
        p.step ();
        incr i
      done;
      done_ := satisfied ()
    end
  done;
  if !done_ then Some (p.steps_done ()) else None

let run_steps p k =
  for _ = 1 to k do
    p.step ()
  done

let with_step_hook p ~hook =
  {
    p with
    step =
      (fun () ->
        p.step ();
        hook p);
  }
