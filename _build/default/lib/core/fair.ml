open Ewalk_graph
module Rng = Ewalk_prng.Rng

type strategy = Least_used_first | Oldest_first

type t = {
  g : Graph.t;
  rng : Rng.t;
  strategy : strategy;
  random_ties : bool;
  mutable pos : Graph.vertex;
  mutable steps : int;
  used : int array; (* per-edge traversal count *)
  last_used : int array; (* per-edge step of last traversal, -1 = never *)
  coverage : Coverage.t;
}

let create ?(random_ties = false) ~strategy g rng ~start =
  if start < 0 || start >= Graph.n g then
    invalid_arg "Fair.create: start out of range";
  let coverage = Coverage.create g in
  Coverage.record_start coverage start;
  {
    g;
    rng;
    strategy;
    random_ties;
    pos = start;
    steps = 0;
    used = Array.make (Graph.m g) 0;
    last_used = Array.make (Graph.m g) (-1);
    coverage;
  }

let graph t = t.g
let position t = t.pos
let steps t = t.steps
let coverage t = t.coverage
let traversals t e = t.used.(e)

let score t e =
  match t.strategy with
  | Least_used_first -> t.used.(e)
  | Oldest_first -> t.last_used.(e)

let step t =
  let v = t.pos in
  let deg = Graph.degree t.g v in
  if deg = 0 then invalid_arg "Fair.step: isolated vertex";
  let base = Graph.adj_start t.g v in
  let best_slot = ref base in
  let best = ref (score t (Graph.slot_edge t.g base)) in
  let ties = ref 1 in
  for i = 1 to deg - 1 do
    let slot = base + i in
    let s = score t (Graph.slot_edge t.g slot) in
    if s < !best then begin
      best := s;
      best_slot := slot;
      ties := 1
    end
    else if s = !best && t.random_ties then begin
      incr ties;
      if Rng.int t.rng !ties = 0 then best_slot := slot
    end
  done;
  let w = Graph.slot_vertex t.g !best_slot in
  let e = Graph.slot_edge t.g !best_slot in
  t.steps <- t.steps + 1;
  t.used.(e) <- t.used.(e) + 1;
  t.last_used.(e) <- t.steps;
  Coverage.record_edge t.coverage ~step:t.steps e;
  t.pos <- w;
  Coverage.record_move t.coverage ~step:t.steps w

let process t =
  {
    Cover.name =
      (match t.strategy with
      | Least_used_first -> "least-used-first"
      | Oldest_first -> "oldest-first");
    graph = t.g;
    position = (fun () -> t.pos);
    step = (fun () -> step t);
    steps_done = (fun () -> t.steps);
    coverage = t.coverage;
  }
