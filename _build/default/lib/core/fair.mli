(** Locally fair exploration strategies (Cooper, Ilcinkas, Klasing,
    Kosowski).

    Deterministic edge-choice walks from the paper's related work:

    - {b Least-Used-First} leaves the current vertex along an incident edge
      with the fewest traversals so far; covers all vertices in O(m D) and
      equalises edge frequencies in the long run.
    - {b Oldest-First} leaves along the incident edge whose last traversal
      is oldest (never-traversed edges first); can be exponentially slow on
      some graphs — the cited cautionary tale.

    Tie-breaking is by lowest adjacency slot unless [~random_ties:true]. *)

open Ewalk_graph

type t

type strategy = Least_used_first | Oldest_first

val create :
  ?random_ties:bool -> strategy:strategy -> Graph.t -> Ewalk_prng.Rng.t ->
  start:Graph.vertex -> t
(** @raise Invalid_argument if [start] is out of range. *)

val graph : t -> Graph.t
val position : t -> Graph.vertex
val steps : t -> int
val coverage : t -> Coverage.t

val traversals : t -> Graph.edge -> int
(** Times the given edge has been traversed (either direction). *)

val step : t -> unit
(** @raise Invalid_argument on an isolated vertex. *)

val process : t -> Cover.process
