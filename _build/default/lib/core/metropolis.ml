open Ewalk_graph
module Rng = Ewalk_prng.Rng

type t = {
  g : Graph.t;
  rng : Rng.t;
  mutable pos : Graph.vertex;
  mutable steps : int;
  coverage : Coverage.t;
}

let create g rng ~start =
  if start < 0 || start >= Graph.n g then
    invalid_arg "Metropolis.create: start out of range";
  let coverage = Coverage.create g in
  Coverage.record_start coverage start;
  { g; rng; pos = start; steps = 0; coverage }

let graph t = t.g
let position t = t.pos
let steps t = t.steps
let coverage t = t.coverage

let step t =
  let v = t.pos in
  let deg = Graph.degree t.g v in
  if deg = 0 then invalid_arg "Metropolis.step: isolated vertex";
  t.steps <- t.steps + 1;
  let slot = Graph.adj_start t.g v + Rng.int t.rng deg in
  let w = Graph.slot_vertex t.g slot in
  let accept =
    Graph.degree t.g w <= deg
    || Rng.float t.rng 1.0 < float_of_int deg /. float_of_int (Graph.degree t.g w)
  in
  if accept then begin
    Coverage.record_edge t.coverage ~step:t.steps (Graph.slot_edge t.g slot);
    t.pos <- w;
    Coverage.record_move t.coverage ~step:t.steps w
  end
  else Coverage.record_move t.coverage ~step:t.steps v

let process t =
  {
    Cover.name = "metropolis";
    graph = t.g;
    position = (fun () -> t.pos);
    step = (fun () -> step t);
    steps_done = (fun () -> t.steps);
    coverage = t.coverage;
  }
