(** Metropolis–Hastings walk with uniform stationary distribution.

    The weighted-walk generality of Theorem 5 includes the Metropolis chain:
    propose a uniform incident edge, accept a move from [u] to [w] with
    probability [min(1, d(u)/d(w))], otherwise stay.  Its stationary
    distribution is uniform over vertices regardless of the degree sequence,
    making it the natural baseline on {e irregular} graphs, where the plain
    SRW's cover time is distorted by stationary mass imbalance.  On regular
    graphs it coincides with the SRW.  Still subject to the
    [Omega(n log n)] lower bound of Theorem 5, being reversible. *)

open Ewalk_graph

type t

val create : Graph.t -> Ewalk_prng.Rng.t -> start:Graph.vertex -> t
(** @raise Invalid_argument if [start] is out of range. *)

val graph : t -> Graph.t
val position : t -> Graph.vertex
val steps : t -> int
val coverage : t -> Coverage.t

val step : t -> unit
(** One proposal (a rejected proposal is one transition that stays put).
    @raise Invalid_argument on an isolated vertex. *)

val process : t -> Cover.process
