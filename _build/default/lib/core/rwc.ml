open Ewalk_graph
module Rng = Ewalk_prng.Rng

type t = {
  g : Graph.t;
  rng : Rng.t;
  d : int;
  mutable pos : Graph.vertex;
  mutable steps : int;
  coverage : Coverage.t;
}

let create ?(d = 2) g rng ~start =
  if d < 1 then invalid_arg "Rwc.create: d < 1";
  if start < 0 || start >= Graph.n g then
    invalid_arg "Rwc.create: start out of range";
  let coverage = Coverage.create g in
  Coverage.record_start coverage start;
  { g; rng; d; pos = start; steps = 0; coverage }

let graph t = t.g
let position t = t.pos
let steps t = t.steps
let coverage t = t.coverage

let step t =
  let v = t.pos in
  let deg = Graph.degree t.g v in
  if deg = 0 then invalid_arg "Rwc.step: isolated vertex";
  let base = Graph.adj_start t.g v in
  (* Sample d slots with replacement; keep the least-visited endpoint,
     breaking ties uniformly via reservoir counting. *)
  let best_slot = ref (base + Rng.int t.rng deg) in
  let best_count =
    ref (Coverage.visit_count t.coverage (Graph.slot_vertex t.g !best_slot))
  in
  let ties = ref 1 in
  for _ = 2 to t.d do
    let slot = base + Rng.int t.rng deg in
    let c = Coverage.visit_count t.coverage (Graph.slot_vertex t.g slot) in
    if c < !best_count then begin
      best_slot := slot;
      best_count := c;
      ties := 1
    end
    else if c = !best_count then begin
      incr ties;
      if Rng.int t.rng !ties = 0 then best_slot := slot
    end
  done;
  let w = Graph.slot_vertex t.g !best_slot in
  let e = Graph.slot_edge t.g !best_slot in
  t.steps <- t.steps + 1;
  Coverage.record_edge t.coverage ~step:t.steps e;
  t.pos <- w;
  Coverage.record_move t.coverage ~step:t.steps w

let process t =
  {
    Cover.name = Printf.sprintf "rwc(%d)" t.d;
    graph = t.g;
    position = (fun () -> t.pos);
    step = (fun () -> step t);
    steps_done = (fun () -> t.steps);
    coverage = t.coverage;
  }
