(** Random walk with choice, RWC(d) (Avin–Krishnamachari).

    The "power of choice" process from the paper's related work: at each
    step sample [d] incident edges uniformly at random (with replacement)
    and move to the endpoint that has been visited the fewest times so far,
    breaking ties uniformly among the sampled minima.  [d = 1] degenerates
    to the simple random walk. *)

open Ewalk_graph

type t

val create : ?d:int -> Graph.t -> Ewalk_prng.Rng.t -> start:Graph.vertex -> t
(** Default [d = 2].  @raise Invalid_argument if [d < 1] or [start] is out
    of range. *)

val graph : t -> Graph.t
val position : t -> Graph.vertex
val steps : t -> int
val coverage : t -> Coverage.t

val step : t -> unit
(** @raise Invalid_argument on an isolated vertex. *)

val process : t -> Cover.process
