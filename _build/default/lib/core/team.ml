open Ewalk_graph
module Rng = Ewalk_prng.Rng

type t = {
  g : Graph.t;
  rng : Rng.t;
  pos : Graph.vertex array;
  mutable next_walker : int;
  mutable steps : int;
  coverage : Coverage.t;
  unvisited : Unvisited.t;
}

let create ?rule:_ g rng ~starts =
  if starts = [] then invalid_arg "Team.create: no walkers";
  List.iter
    (fun v ->
      if v < 0 || v >= Graph.n g then
        invalid_arg "Team.create: start out of range")
    starts;
  let coverage = Coverage.create g in
  List.iter (fun v -> Coverage.record_start coverage v) starts;
  {
    g;
    rng;
    pos = Array.of_list starts;
    next_walker = 0;
    steps = 0;
    coverage;
    unvisited = Unvisited.create g;
  }

let create_spread g rng ~walkers =
  if walkers < 1 then invalid_arg "Team.create_spread: walkers < 1";
  if Graph.n g = 0 then invalid_arg "Team.create_spread: empty graph";
  let starts = List.init walkers (fun _ -> Rng.int rng (Graph.n g)) in
  create g rng ~starts

let graph t = t.g
let walkers t = Array.length t.pos
let positions t = Array.copy t.pos
let steps t = t.steps
let rounds t = t.steps / Array.length t.pos
let coverage t = t.coverage

let step t =
  let w = t.next_walker in
  t.next_walker <- (w + 1) mod Array.length t.pos;
  let v = t.pos.(w) in
  let deg = Graph.degree t.g v in
  if deg = 0 then invalid_arg "Team.step: isolated vertex";
  let k = Unvisited.count t.unvisited v in
  let slot =
    if k > 0 then Unvisited.live_slot t.unvisited v (Rng.int t.rng k)
    else Graph.adj_start t.g v + Rng.int t.rng deg
  in
  let target = Graph.slot_vertex t.g slot in
  let e = Graph.slot_edge t.g slot in
  t.steps <- t.steps + 1;
  if k > 0 then Unvisited.retire_edge t.unvisited e;
  Coverage.record_edge t.coverage ~step:t.steps e;
  t.pos.(w) <- target;
  Coverage.record_move t.coverage ~step:t.steps target

let step_round t =
  for _ = 1 to Array.length t.pos do
    step t
  done

let process t =
  {
    Cover.name = Printf.sprintf "team-e-process(%d)" (Array.length t.pos);
    graph = t.g;
    position = (fun () -> t.pos.(t.next_walker));
    step = (fun () -> step t);
    steps_done = (fun () -> t.steps);
    coverage = t.coverage;
  }
