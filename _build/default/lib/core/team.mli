(** Multi-walker E-process: [k] agents sharing one set of edge marks.

    A natural extension of the paper's process (beyond its scope, flagged
    as such in DESIGN.md): [k] walkers move in round-robin order; each
    follows an unvisited edge incident with its own position if one exists
    — edges marked by {e any} walker count as visited for all — and walks
    randomly otherwise.  With shared marks the team behaves like one
    E-process splashed across [k] start vertices; the interesting question
    is the wall-clock speed-up: the number of {e rounds} to cover.

    Vertex coverage counts a vertex as visited when any walker occupies it;
    transitions are counted globally (one per walker move), so cover times
    are comparable with single-walker processes at equal total work. *)

open Ewalk_graph

type t

val create :
  ?rule:[ `Uar ] -> Graph.t -> Ewalk_prng.Rng.t ->
  starts:Graph.vertex list -> t
(** One walker per entry of [starts] (duplicates allowed).
    @raise Invalid_argument if [starts] is empty or out of range. *)

val create_spread :
  Graph.t -> Ewalk_prng.Rng.t -> walkers:int -> t
(** [walkers] agents at uniformly random (not necessarily distinct) start
    vertices.  @raise Invalid_argument if [walkers < 1]. *)

val graph : t -> Graph.t
val walkers : t -> int
val positions : t -> Graph.vertex array
val steps : t -> int
(** Total walker moves so far. *)

val rounds : t -> int
(** Completed rounds (each walker moved once per round). *)

val coverage : t -> Coverage.t

val step : t -> unit
(** Move the next walker in round-robin order.
    @raise Invalid_argument if its current vertex is isolated. *)

val step_round : t -> unit
(** Move every walker once. *)

val process : t -> Cover.process
(** Steps are single walker moves, so capped runs and cover times measure
    total work, directly comparable with one-walker processes. *)
