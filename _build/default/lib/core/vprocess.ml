open Ewalk_graph
module Rng = Ewalk_prng.Rng

type t = {
  g : Graph.t;
  rng : Rng.t;
  mutable pos : Graph.vertex;
  mutable steps : int;
  coverage : Coverage.t;
}

let create g rng ~start =
  if start < 0 || start >= Graph.n g then
    invalid_arg "Vprocess.create: start out of range";
  let coverage = Coverage.create g in
  Coverage.record_start coverage start;
  { g; rng; pos = start; steps = 0; coverage }

let graph t = t.g
let position t = t.pos
let steps t = t.steps
let coverage t = t.coverage

let step t =
  let v = t.pos in
  let deg = Graph.degree t.g v in
  if deg = 0 then invalid_arg "Vprocess.step: isolated vertex";
  let base = Graph.adj_start t.g v in
  (* Reservoir-sample uniformly among slots leading to unvisited vertices. *)
  let chosen = ref (-1) in
  let count = ref 0 in
  for i = 0 to deg - 1 do
    let w = Graph.slot_vertex t.g (base + i) in
    if not (Coverage.vertex_visited t.coverage w) then begin
      incr count;
      if Rng.int t.rng !count = 0 then chosen := base + i
    end
  done;
  let slot = if !chosen >= 0 then !chosen else base + Rng.int t.rng deg in
  let w = Graph.slot_vertex t.g slot in
  let e = Graph.slot_edge t.g slot in
  t.steps <- t.steps + 1;
  Coverage.record_edge t.coverage ~step:t.steps e;
  t.pos <- w;
  Coverage.record_move t.coverage ~step:t.steps w

let process t =
  {
    Cover.name = "v-process";
    graph = t.g;
    position = (fun () -> t.pos);
    step = (fun () -> step t);
    steps_done = (fun () -> t.steps);
    coverage = t.coverage;
  }
