(** The V-process: a walk preferring unvisited {e vertices}.

    The companion process from Berenbrink–Cooper–Friedetzky's follow-up
    experimental study (reference [4] of the paper): if the current vertex
    has unvisited neighbours, move to one chosen uniformly at random;
    otherwise take a simple-random-walk step.  Included as the natural
    comparison point for the E-process' edge-based preference. *)

open Ewalk_graph

type t

val create : Graph.t -> Ewalk_prng.Rng.t -> start:Graph.vertex -> t
(** @raise Invalid_argument if [start] is out of range. *)

val graph : t -> Graph.t
val position : t -> Graph.vertex
val steps : t -> int
val coverage : t -> Coverage.t

val step : t -> unit
(** @raise Invalid_argument on an isolated vertex. *)

val process : t -> Cover.process
