lib/expt/exp_cover.ml: Array Ewalk Ewalk_analysis Ewalk_graph Ewalk_theory Exp_util Float Gen_classic Gen_expander Gen_regular Hashtbl List Printf Sweep Table
