lib/expt/exp_cover.mli: Sweep Table
