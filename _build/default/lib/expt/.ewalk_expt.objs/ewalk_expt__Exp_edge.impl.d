lib/expt/exp_edge.ml: Array Ewalk_analysis Ewalk_graph Ewalk_spectral Ewalk_theory Exp_util Float Gen_classic Graph List Printf Sweep Table
