lib/expt/exp_edge.mli: Sweep Table
