lib/expt/exp_extra.mli: Sweep Table
