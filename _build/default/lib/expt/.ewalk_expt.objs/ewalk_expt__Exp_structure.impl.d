lib/expt/exp_structure.ml: Array Ewalk Ewalk_analysis Ewalk_graph Ewalk_prng Ewalk_spectral Ewalk_theory Exp_util Gen_classic Girth Graph Hashtbl List Printf Sweep Table
