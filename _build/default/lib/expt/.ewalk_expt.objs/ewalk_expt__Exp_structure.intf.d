lib/expt/exp_structure.mli: Sweep Table
