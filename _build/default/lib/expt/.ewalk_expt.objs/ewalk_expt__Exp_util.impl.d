lib/expt/exp_util.ml: Array Ewalk Ewalk_graph Gen_regular Graph Option
