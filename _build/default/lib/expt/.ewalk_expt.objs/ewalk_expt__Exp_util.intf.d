lib/expt/exp_util.mli: Ewalk Ewalk_graph Ewalk_prng Graph
