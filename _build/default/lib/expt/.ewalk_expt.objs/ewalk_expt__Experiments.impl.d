lib/expt/experiments.ml: Ewalk_obs Exp_cover Exp_edge Exp_extra Exp_structure List Sweep Table
