lib/expt/experiments.ml: Exp_cover Exp_edge Exp_extra Exp_structure List Sweep Table
