lib/expt/experiments.mli: Sweep Table
