lib/expt/experiments.mli: Ewalk_obs Sweep Table
