lib/expt/families.ml: Ewalk_graph Float Gen_classic Gen_expander Gen_random Gen_regular Printf String
