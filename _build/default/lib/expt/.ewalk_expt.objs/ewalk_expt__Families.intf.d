lib/expt/families.mli: Ewalk_graph Ewalk_prng
