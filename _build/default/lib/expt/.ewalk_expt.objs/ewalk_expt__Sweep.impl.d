lib/expt/sweep.ml: Array Ewalk_analysis Ewalk_prng Printf Sys
