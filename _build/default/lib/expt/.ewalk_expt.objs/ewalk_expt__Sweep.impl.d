lib/expt/sweep.ml: Array Ewalk_analysis Ewalk_obs Ewalk_prng Printf Sys
