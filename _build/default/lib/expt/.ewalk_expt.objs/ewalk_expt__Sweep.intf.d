lib/expt/sweep.mli: Ewalk_analysis Ewalk_prng
