lib/expt/table.ml: Array Buffer Float List Printf String
