lib/expt/table.mli:
