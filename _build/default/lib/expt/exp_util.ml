open Ewalk_graph
module Eprocess = Ewalk.Eprocess
module Srw = Ewalk.Srw
module Cover = Ewalk.Cover
module Coverage = Ewalk.Coverage

module Observe = Ewalk.Observe

let regular_graph rng ~n ~d = Gen_regular.random_regular_connected rng n d

let with_cap cap g = match cap with Some c -> c | None -> Cover.default_cap g

(* Run [p] to (vertex or edge) coverage under an observation bundle:
   instrument, run, emit Run_end.  [Observe.noop]-ish bundles add nothing. *)
let run_observed ?obs ~edges ~cap p =
  match obs with
  | None ->
      if edges then Cover.run_until_edge_cover ~cap p
      else Cover.run_until_vertex_cover ~cap p
  | Some obs ->
      let p = Observe.instrument obs p in
      let r =
        if edges then Cover.run_until_edge_cover ~cap p
        else Cover.run_until_vertex_cover ~cap p
      in
      Observe.finish obs p;
      r

let vertex_cover_eprocess ?rule ?cap ?obs rng g =
  let t = Eprocess.create ?rule g rng ~start:0 in
  Option.iter (fun o -> Observe.attach_eprocess o t) obs;
  run_observed ?obs ~edges:false ~cap:(with_cap cap g) (Eprocess.process t)

let edge_cover_eprocess ?rule ?cap ?obs rng g =
  let t = Eprocess.create ?rule g rng ~start:0 in
  Option.iter (fun o -> Observe.attach_eprocess o t) obs;
  run_observed ?obs ~edges:true ~cap:(with_cap cap g) (Eprocess.process t)

let vertex_cover_srw ?cap ?obs rng g =
  let t = Srw.create g rng ~start:0 in
  Option.iter (fun o -> Observe.attach_srw o t) obs;
  run_observed ?obs ~edges:false ~cap:(with_cap cap g) (Srw.process t)

let edge_cover_srw ?cap ?obs rng g =
  let t = Srw.create g rng ~start:0 in
  Option.iter (fun o -> Observe.attach_srw o t) obs;
  run_observed ?obs ~edges:true ~cap:(with_cap cap g) (Srw.process t)

let adversary_stay_explored t candidates =
  let g = Eprocess.graph t in
  let cov = Eprocess.coverage t in
  let here = Eprocess.position t in
  let best = ref 0 and best_visits = ref min_int in
  Array.iteri
    (fun i e ->
      let w = Graph.opposite g e here in
      let visits = Coverage.visit_count cov w in
      if visits > !best_visits then begin
        best := i;
        best_visits := visits
      end)
    candidates;
  !best

let adversary_min_blue t candidates =
  let g = Eprocess.graph t in
  let here = Eprocess.position t in
  let best = ref 0 and best_blue = ref max_int in
  Array.iteri
    (fun i e ->
      let w = Graph.opposite g e here in
      let blue = Eprocess.blue_degree t w in
      if blue < !best_blue then begin
        best := i;
        best_blue := blue
      end)
    candidates;
  !best
