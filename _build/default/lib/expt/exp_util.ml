open Ewalk_graph
module Eprocess = Ewalk.Eprocess
module Srw = Ewalk.Srw
module Cover = Ewalk.Cover
module Coverage = Ewalk.Coverage

let regular_graph rng ~n ~d = Gen_regular.random_regular_connected rng n d

let with_cap cap g = match cap with Some c -> c | None -> Cover.default_cap g

let vertex_cover_eprocess ?rule ?cap rng g =
  let t = Eprocess.create ?rule g rng ~start:0 in
  Cover.run_until_vertex_cover ~cap:(with_cap cap g) (Eprocess.process t)

let edge_cover_eprocess ?rule ?cap rng g =
  let t = Eprocess.create ?rule g rng ~start:0 in
  Cover.run_until_edge_cover ~cap:(with_cap cap g) (Eprocess.process t)

let vertex_cover_srw ?cap rng g =
  let t = Srw.create g rng ~start:0 in
  Cover.run_until_vertex_cover ~cap:(with_cap cap g) (Srw.process t)

let edge_cover_srw ?cap rng g =
  let t = Srw.create g rng ~start:0 in
  Cover.run_until_edge_cover ~cap:(with_cap cap g) (Srw.process t)

let adversary_stay_explored t candidates =
  let g = Eprocess.graph t in
  let cov = Eprocess.coverage t in
  let here = Eprocess.position t in
  let best = ref 0 and best_visits = ref min_int in
  Array.iteri
    (fun i e ->
      let w = Graph.opposite g e here in
      let visits = Coverage.visit_count cov w in
      if visits > !best_visits then begin
        best := i;
        best_visits := visits
      end)
    candidates;
  !best

let adversary_min_blue t candidates =
  let g = Eprocess.graph t in
  let here = Eprocess.position t in
  let best = ref 0 and best_blue = ref max_int in
  Array.iteri
    (fun i e ->
      let w = Graph.opposite g e here in
      let blue = Eprocess.blue_degree t w in
      if blue < !best_blue then begin
        best := i;
        best_blue := blue
      end)
    candidates;
  !best
