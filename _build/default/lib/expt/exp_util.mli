(** Shared building blocks for the named experiments. *)

open Ewalk_graph

val regular_graph : Ewalk_prng.Rng.t -> n:int -> d:int -> Graph.t
(** Connected random [d]-regular graph (Steger–Wormald + connectivity
    rejection) — the Figure 1 workload. *)

val vertex_cover_eprocess :
  ?rule:Ewalk.Eprocess.rule -> ?cap:int -> ?obs:Ewalk.Observe.t ->
  Ewalk_prng.Rng.t -> Graph.t -> int option
(** Vertex cover time of one E-process run from vertex 0;
    [None] if the cap (default {!Ewalk.Cover.default_cap}) was hit.
    With [obs], the run is fully instrumented: native E-process hooks
    attached, the process wrapped by {!Ewalk.Observe.instrument}, and
    [Run_end] emitted on completion. *)

val edge_cover_eprocess :
  ?rule:Ewalk.Eprocess.rule -> ?cap:int -> ?obs:Ewalk.Observe.t ->
  Ewalk_prng.Rng.t -> Graph.t -> int option

val vertex_cover_srw :
  ?cap:int -> ?obs:Ewalk.Observe.t -> Ewalk_prng.Rng.t -> Graph.t ->
  int option

val edge_cover_srw :
  ?cap:int -> ?obs:Ewalk.Observe.t -> Ewalk_prng.Rng.t -> Graph.t ->
  int option

val adversary_stay_explored : Ewalk.Eprocess.t -> Graph.edge array -> int
(** An online adversary for the rule-independence experiment: among the
    candidate unvisited edges it picks the one whose far endpoint has been
    occupied most often — trying to keep the walk inside explored territory
    and starve fresh vertices.  Theorem 1 says it cannot push the cover
    time beyond O(n) on even-degree random regular graphs. *)

val adversary_min_blue : Ewalk.Eprocess.t -> Graph.edge array -> int
(** A second adversary: steer towards the endpoint with the fewest
    remaining unvisited edges, trying to end blue phases as early as
    possible. *)
