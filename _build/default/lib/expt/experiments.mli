(** Registry of every named experiment (the per-experiment index of
    DESIGN.md §4). *)

type entry = {
  id : string;
  paper_item : string; (** which figure / theorem / equation it reproduces *)
  run : scale:Sweep.scale -> seed:int -> Table.t;
}

val all : entry list
(** Every experiment, in DESIGN.md order. *)

val find : string -> entry option
(** Look up by id. *)

val ids : unit -> string list
