open Ewalk_graph

let known =
  [
    "regular:D";
    "torus";
    "grid";
    "hypercube";
    "cycle";
    "double-cycle";
    "complete";
    "margulis";
    "cycle-union:R";
    "chordal";
    "gnp:P";
    "geometric:R";
    "lollipop";
  ]

let int_param spec s =
  match int_of_string_opt s with
  | Some v -> v
  | None -> invalid_arg (Printf.sprintf "Families: bad parameter in %S" spec)

let float_param spec s =
  match float_of_string_opt s with
  | Some v -> v
  | None -> invalid_arg (Printf.sprintf "Families: bad parameter in %S" spec)

let build spec rng ~n =
  let side = max 3 (int_of_float (Float.round (sqrt (float_of_int n)))) in
  match String.split_on_char ':' spec with
  | [ "regular"; d ] ->
      Gen_regular.random_regular_connected rng n (int_param spec d)
  | [ "torus" ] -> Gen_classic.torus2d side side
  | [ "grid" ] -> Gen_classic.grid2d side side
  | [ "hypercube" ] ->
      let r = max 1 (int_of_float (Float.ceil (log (float_of_int n) /. log 2.0))) in
      Gen_classic.hypercube r
  | [ "cycle" ] -> Gen_classic.cycle (max 3 n)
  | [ "double-cycle" ] -> Gen_classic.double_cycle (max 3 n)
  | [ "complete" ] -> Gen_classic.complete (max 2 n)
  | [ "margulis" ] ->
      let k = max 2 (int_of_float (Float.round (sqrt (float_of_int n)))) in
      Gen_expander.margulis k
  | [ "cycle-union"; r ] -> Gen_regular.cycle_union rng n (int_param spec r)
  | [ "chordal" ] -> Gen_expander.chordal_cycle (max 5 n)
  | [ "gnp"; p ] -> Gen_random.gnp rng n (float_param spec p)
  | [ "geometric"; r ] ->
      Gen_random.random_geometric rng n (float_param spec r)
  | [ "lollipop" ] -> Gen_classic.lollipop (max 3 (2 * n / 3)) (max 1 (n / 3))
  | _ -> invalid_arg (Printf.sprintf "Families: unknown spec %S" spec)
