(** Parse graph-family specifications shared by the CLI and examples.

    Grammar (sizes supplied separately as [~n]):
    - ["regular:D"] — connected random D-regular (Steger–Wormald)
    - ["torus"] — square wrap-around grid with about [n] vertices
    - ["grid"] — square open grid
    - ["hypercube"] — H_r with [2^r >= n] (smallest such r)
    - ["cycle"], ["double-cycle"], ["complete"]
    - ["margulis"] — degree-8 expander on about [n] vertices
    - ["cycle-union:R"] — union of R Hamiltonian cycles (degree 2R)
    - ["chordal"] — degree-4 chordal cycle
    - ["gnp:P"] — Erdős–Rényi with edge probability P
    - ["geometric:R"] — random geometric graph of radius R
    - ["lollipop"] — clique of [2n/3] with a tail *)

val build :
  string -> Ewalk_prng.Rng.t -> n:int -> Ewalk_graph.Graph.t
(** [build spec rng ~n] constructs the graph.
    @raise Invalid_argument on an unknown spec or malformed parameter. *)

val known : string list
(** Specs accepted by {!build} (with placeholder parameters). *)
