type t = {
  id : string;
  title : string;
  header : string list;
  rows : string list list;
  notes : string list;
}

let widths t =
  let all = t.header :: t.rows in
  let cols =
    List.fold_left (fun acc row -> max acc (List.length row)) 0 all
  in
  let w = Array.make cols 0 in
  List.iter
    (fun row ->
      List.iteri
        (fun i cell -> if String.length cell > w.(i) then w.(i) <- String.length cell)
        row)
    all;
  w

let pad width s = s ^ String.make (max 0 (width - String.length s)) ' '

let render_row w row =
  let cells = List.mapi (fun i cell -> pad w.(i) cell) row in
  "| " ^ String.concat " | " cells ^ " |"

let rule w =
  let dashes = Array.to_list (Array.map (fun n -> String.make (n + 2) '-') w) in
  "+" ^ String.concat "+" dashes ^ "+"

let render t =
  let w = widths t in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "== %s: %s ==\n" t.id t.title);
  Buffer.add_string buf (rule w);
  Buffer.add_char buf '\n';
  Buffer.add_string buf (render_row w t.header);
  Buffer.add_char buf '\n';
  Buffer.add_string buf (rule w);
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (render_row w row);
      Buffer.add_char buf '\n')
    t.rows;
  Buffer.add_string buf (rule w);
  Buffer.add_char buf '\n';
  List.iter
    (fun note ->
      Buffer.add_string buf ("  " ^ note);
      Buffer.add_char buf '\n')
    t.notes;
  Buffer.contents buf

let csv_field s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let to_csv t =
  let line row = String.concat "," (List.map csv_field row) in
  String.concat "\n" (line t.header :: List.map line t.rows) ^ "\n"

let to_markdown t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "### `%s` — %s\n\n" t.id t.title);
  let escape s = String.concat "\\|" (String.split_on_char '|' s) in
  let line cells = "| " ^ String.concat " | " (List.map escape cells) ^ " |\n" in
  Buffer.add_string buf (line t.header);
  Buffer.add_string buf
    ("|" ^ String.concat "|" (List.map (fun _ -> "---") t.header) ^ "|\n");
  List.iter (fun row -> Buffer.add_string buf (line row)) t.rows;
  if t.notes <> [] then begin
    Buffer.add_char buf '\n';
    List.iter
      (fun note -> Buffer.add_string buf (Printf.sprintf "- %s\n" note))
      t.notes
  end;
  Buffer.contents buf

let print t = print_string (render t)

let cell_f x =
  let a = Float.abs x in
  if a >= 1e9 then Printf.sprintf "%.3e" x
  else if a >= 1000.0 || (Float.is_integer x && a >= 1.0) then
    Printf.sprintf "%.0f" x
  else if a >= 0.01 then Printf.sprintf "%.4g" x
  else if a = 0.0 then "0"
  else Printf.sprintf "%.3e" x

let cell_i = string_of_int

let cell_opt f = function None -> "-" | Some x -> f x
