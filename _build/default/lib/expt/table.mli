(** Result tables: the uniform output format of every experiment.

    An experiment produces one {!t}; the CLI and the bench harness render it
    as an aligned text table (for reading) or CSV (for plotting). *)

type t = {
  id : string; (** experiment id, e.g. ["fig1"] *)
  title : string;
  header : string list;
  rows : string list list;
  notes : string list; (** free-form lines printed under the table *)
}

val render : t -> string
(** Aligned, boxed ASCII rendering, notes appended. *)

val to_csv : t -> string
(** Header + rows as RFC-4180-ish CSV (quotes around fields containing
    commas or quotes). *)

val to_markdown : t -> string
(** GitHub-flavoured markdown: a [###] heading, a pipe table, and the notes
    as a bullet list — the building block of the generated results
    report. *)

val print : t -> unit
(** [render] to stdout. *)

val cell_f : float -> string
(** Compact numeric formatting: 4 significant digits, scientific only when
    needed. *)

val cell_i : int -> string

val cell_opt : ('a -> string) -> 'a option -> string
(** [None] renders as ["-"] (used for capped runs). *)
