lib/graph/builder.ml: Array Graph List
