lib/graph/degrees.ml: Array Graph List
