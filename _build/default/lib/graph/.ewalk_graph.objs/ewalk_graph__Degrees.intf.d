lib/graph/degrees.mli: Graph
