lib/graph/euler.ml: Array Graph List Stack Traversal
