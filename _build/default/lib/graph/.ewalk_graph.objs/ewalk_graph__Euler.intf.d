lib/graph/euler.mli: Graph
