lib/graph/gen_classic.ml: Graph List
