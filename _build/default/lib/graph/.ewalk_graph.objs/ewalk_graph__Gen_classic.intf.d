lib/graph/gen_classic.mli: Graph
