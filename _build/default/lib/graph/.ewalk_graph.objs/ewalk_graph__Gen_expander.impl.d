lib/graph/gen_expander.ml: Builder Hashtbl List
