lib/graph/gen_expander.mli: Graph
