lib/graph/gen_random.ml: Array Builder Ewalk_prng Float Hashtbl List
