lib/graph/gen_random.mli: Ewalk_prng Graph
