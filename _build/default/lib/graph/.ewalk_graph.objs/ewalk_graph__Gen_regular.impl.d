lib/graph/gen_regular.ml: Array Builder Ewalk_prng Graph Hashtbl Printf Traversal
