lib/graph/gen_regular.mli: Ewalk_prng Graph
