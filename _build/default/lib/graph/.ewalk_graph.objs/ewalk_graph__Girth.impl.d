lib/graph/girth.ml: Array Graph Hashtbl List Queue
