lib/graph/girth.mli: Graph
