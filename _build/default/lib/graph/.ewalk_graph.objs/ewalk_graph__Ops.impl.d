lib/graph/ops.ml: Array Graph List
