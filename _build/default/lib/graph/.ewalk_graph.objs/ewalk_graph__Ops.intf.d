lib/graph/ops.mli: Graph
