lib/graph/subgraph.ml: Array Graph Hashtbl List
