lib/graph/switch.ml: Array Ewalk_prng Girth Graph Hashtbl Option Queue
