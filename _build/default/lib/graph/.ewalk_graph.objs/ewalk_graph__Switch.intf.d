lib/graph/switch.mli: Ewalk_prng Graph
