type t = {
  n : int;
  mutable edges : (int * int) list; (* reversed insertion order *)
  mutable count : int;
}

let create ~n =
  if n < 0 then invalid_arg "Builder.create: n < 0";
  { n; edges = []; count = 0 }

let add_edge t u v =
  if u < 0 || u >= t.n || v < 0 || v >= t.n then
    invalid_arg "Builder.add_edge: vertex out of range";
  t.edges <- (u, v) :: t.edges;
  t.count <- t.count + 1

let edge_count t = t.count

let to_graph t =
  let arr = Array.make t.count (0, 0) in
  let i = ref (t.count - 1) in
  List.iter
    (fun e ->
      arr.(!i) <- e;
      decr i)
    t.edges;
  Graph.of_edge_array ~n:t.n arr
