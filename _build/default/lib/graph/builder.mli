(** Mutable accumulator for constructing graphs edge by edge. *)

type t

val create : n:int -> t
(** [create ~n] starts an empty graph on vertices [0 .. n-1]. *)

val add_edge : t -> Graph.vertex -> Graph.vertex -> unit
(** Appends one undirected edge.  Parallel edges and self-loops allowed.
    @raise Invalid_argument on an out-of-range vertex. *)

val edge_count : t -> int

val to_graph : t -> Graph.t
(** Freeze into an immutable {!Graph.t}; edge ids follow insertion order.
    The builder remains usable afterwards. *)
