let sorted_descending degrees =
  let d = Array.copy degrees in
  Array.sort (fun a b -> compare b a) d;
  d

let is_graphical degrees =
  let n = Array.length degrees in
  if Array.exists (fun d -> d < 0 || d >= max n 1) degrees then false
  else begin
    let d = sorted_descending degrees in
    let total = Array.fold_left ( + ) 0 d in
    if total land 1 = 1 then false
    else begin
      (* Erdős–Gallai: for each k,
         sum_{i<=k} d_i <= k(k-1) + sum_{i>k} min(d_i, k). *)
      let ok = ref true in
      let prefix = ref 0 in
      for k = 1 to n do
        prefix := !prefix + d.(k - 1);
        let tail = ref 0 in
        for i = k to n - 1 do
          tail := !tail + min d.(i) k
        done;
        if !prefix > (k * (k - 1)) + !tail then ok := false
      done;
      !ok
    end
  end

let havel_hakimi degrees =
  let n = Array.length degrees in
  if not (is_graphical degrees) then None
  else begin
    (* Repeatedly connect the highest-residual vertex to the next-highest
       ones. *)
    let residual = Array.mapi (fun v d -> (v, d)) degrees in
    let edges = ref [] in
    let ok = ref true in
    let remaining = ref (Array.fold_left (fun acc d -> acc + d) 0 degrees / 2) in
    while !ok && !remaining > 0 do
      Array.sort (fun (_, a) (_, b) -> compare b a) residual;
      let v, d = residual.(0) in
      if d <= 0 || d > n - 1 then ok := false
      else begin
        for i = 1 to d do
          let w, dw = residual.(i) in
          if dw <= 0 then ok := false
          else begin
            edges := (v, w) :: !edges;
            residual.(i) <- (w, dw - 1);
            decr remaining
          end
        done;
        residual.(0) <- (v, 0)
      end
    done;
    if !ok then Some (Graph.of_edges ~n (List.rev !edges)) else None
  end
