(** Degree-sequence utilities.

    The configuration model takes an arbitrary degree sequence; these
    helpers decide whether a sequence is realisable as a {e simple} graph
    (Erdős–Gallai) and construct a canonical realisation (Havel–Hakimi),
    used to validate the random generators and to build deterministic
    fixtures. *)

val is_graphical : int array -> bool
(** Erdős–Gallai test: does a simple graph with this degree sequence
    exist?  Negative degrees or degrees [>= n] fail immediately. *)

val havel_hakimi : int array -> Graph.t option
(** A canonical simple realisation of the sequence ([degrees.(v)] is the
    degree of vertex [v]), or [None] if the sequence is not graphical. *)

val sorted_descending : int array -> int array
(** Convenience: a sorted copy, largest first. *)
