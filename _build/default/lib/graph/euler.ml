let is_eulerian g =
  Graph.all_degrees_even g
  &&
  (* All edges in one component: the component of any endpoint must contain
     every non-isolated vertex. *)
  (Graph.m g = 0
  ||
  let label, _ = Traversal.connected_components g in
  let u0, _ = Graph.endpoints g 0 in
  let home = label.(u0) in
  let ok = ref true in
  for v = 0 to Graph.n g - 1 do
    if Graph.degree g v > 0 && label.(v) <> home then ok := false
  done;
  !ok)

(* Hierholzer from [start] over the not-yet-used edges; shares the [used]
   flags and per-vertex slot cursors so the decomposition can call it
   repeatedly.  Returns the closed trail as a forward edge list. *)
let trail_from g ~used ~cursor start =
  let stack = Stack.create () in
  Stack.push (start, -1) stack;
  let out = ref [] in
  while not (Stack.is_empty stack) do
    let v, incoming = Stack.top stack in
    (* Advance this vertex's cursor past used slots. *)
    let stop = Graph.adj_stop g v in
    while cursor.(v) < stop && used.(Graph.slot_edge g cursor.(v)) do
      cursor.(v) <- cursor.(v) + 1
    done;
    if cursor.(v) < stop then begin
      let slot = cursor.(v) in
      let e = Graph.slot_edge g slot in
      used.(e) <- true;
      Stack.push (Graph.slot_vertex g slot, e) stack
    end
    else begin
      ignore (Stack.pop stack);
      if incoming >= 0 then out := incoming :: !out
    end
  done;
  !out

let fresh_state g =
  ( Array.make (Graph.m g) false,
    Array.init (Graph.n g) (fun v -> Graph.adj_start g v) )

let euler_circuit g ~start =
  if start < 0 || start >= Graph.n g then
    invalid_arg "Euler.euler_circuit: start out of range";
  if not (is_eulerian g) then None
  else if Graph.m g = 0 then Some []
  else if Graph.degree g start = 0 then None
  else begin
    let used, cursor = fresh_state g in
    let trail = trail_from g ~used ~cursor start in
    if List.length trail = Graph.m g then Some trail else None
  end

let circuit_vertices g ~start edges =
  let rec walk v = function
    | [] -> [ v ]
    | e :: rest ->
        let u, w = Graph.endpoints g e in
        let next =
          if u = v then w
          else if w = v then u
          else invalid_arg "Euler.circuit_vertices: edges do not chain"
        in
        v :: walk next rest
  in
  walk start edges

let closed_trail_decomposition g =
  if not (Graph.all_degrees_even g) then
    invalid_arg "Euler.closed_trail_decomposition: odd-degree vertex";
  let used, cursor = fresh_state g in
  let trails = ref [] in
  for v = 0 to Graph.n g - 1 do
    (* Any vertex that still has an unused edge starts a new closed trail;
       even degrees guarantee the trail returns to it. *)
    let stop = Graph.adj_stop g v in
    while cursor.(v) < stop && used.(Graph.slot_edge g cursor.(v)) do
      cursor.(v) <- cursor.(v) + 1
    done;
    while cursor.(v) < stop do
      let trail = trail_from g ~used ~cursor v in
      if trail <> [] then trails := trail :: !trails;
      while cursor.(v) < stop && used.(Graph.slot_edge g cursor.(v)) do
        cursor.(v) <- cursor.(v) + 1
      done
    done
  done;
  List.rev !trails
