(** Euler circuits and closed-trail decompositions of even-degree graphs.

    The even-degree assumption at the heart of the paper is exactly the
    Eulerian condition: every connected even-degree graph has a closed trail
    using each edge once, and every even-degree graph decomposes into
    edge-disjoint closed trails.  The E-process' blue phases trace such
    closed trails online (Observation 10); this module computes them
    offline (Hierholzer's algorithm), giving both a correctness oracle for
    the blue-subgraph tests and the optimal [m]-step edge cover that the
    E-process' [C_E] is measured against. *)

val is_eulerian : Graph.t -> bool
(** All degrees even, and all edges in one connected component. *)

val euler_circuit : Graph.t -> start:Graph.vertex -> Graph.edge list option
(** [euler_circuit g ~start]: an Euler circuit beginning and ending at
    [start], as the sequence of its [m] edge ids, or [None] if [g] is not
    Eulerian or [start] is isolated (with [m > 0]).  O(m) (Hierholzer).
    For [m = 0], [Some \[\]]. *)

val circuit_vertices :
  Graph.t -> start:Graph.vertex -> Graph.edge list -> Graph.vertex list
(** [circuit_vertices g ~start edges] expands an edge sequence starting at
    [start] into the visited vertex sequence (length [m + 1]).
    @raise Invalid_argument if consecutive edges do not chain. *)

val closed_trail_decomposition : Graph.t -> Graph.edge list list
(** Partition the edges of an even-degree graph into edge-disjoint closed
    trails (one per pass of Hierholzer on each component).
    @raise Invalid_argument if some vertex has odd degree. *)
