let cycle n =
  if n < 3 then invalid_arg "Gen_classic.cycle: n < 3";
  Graph.of_edges ~n (List.init n (fun i -> (i, (i + 1) mod n)))

let path n =
  if n < 1 then invalid_arg "Gen_classic.path: n < 1";
  Graph.of_edges ~n (List.init (n - 1) (fun i -> (i, i + 1)))

let complete n =
  if n < 1 then invalid_arg "Gen_classic.complete: n < 1";
  let edges = ref [] in
  for i = n - 1 downto 0 do
    for j = n - 1 downto i + 1 do
      edges := (i, j) :: !edges
    done
  done;
  Graph.of_edges ~n !edges

let complete_bipartite a b =
  if a < 1 || b < 1 then invalid_arg "Gen_classic.complete_bipartite";
  let edges = ref [] in
  for i = a - 1 downto 0 do
    for j = b - 1 downto 0 do
      edges := (i, a + j) :: !edges
    done
  done;
  Graph.of_edges ~n:(a + b) !edges

let star n =
  if n < 2 then invalid_arg "Gen_classic.star: n < 2";
  Graph.of_edges ~n (List.init (n - 1) (fun i -> (0, i + 1)))

let hypercube r =
  if r < 0 || r > 25 then invalid_arg "Gen_classic.hypercube: bad dimension";
  let n = 1 lsl r in
  let edges = ref [] in
  for v = n - 1 downto 0 do
    for b = 0 to r - 1 do
      let w = v lxor (1 lsl b) in
      if v < w then edges := (v, w) :: !edges
    done
  done;
  Graph.of_edges ~n !edges

let torus2d rows cols =
  if rows < 3 || cols < 3 then invalid_arg "Gen_classic.torus2d: sides < 3";
  let id r c = (r * cols) + c in
  let edges = ref [] in
  for r = rows - 1 downto 0 do
    for c = cols - 1 downto 0 do
      edges := (id r c, id r ((c + 1) mod cols)) :: !edges;
      edges := (id r c, id ((r + 1) mod rows) c) :: !edges
    done
  done;
  Graph.of_edges ~n:(rows * cols) !edges

let grid2d rows cols =
  if rows < 1 || cols < 1 then invalid_arg "Gen_classic.grid2d";
  let id r c = (r * cols) + c in
  let edges = ref [] in
  for r = rows - 1 downto 0 do
    for c = cols - 1 downto 0 do
      if c + 1 < cols then edges := (id r c, id r (c + 1)) :: !edges;
      if r + 1 < rows then edges := (id r c, id (r + 1) c) :: !edges
    done
  done;
  Graph.of_edges ~n:(rows * cols) !edges

let binary_tree depth =
  if depth < 0 then invalid_arg "Gen_classic.binary_tree: depth < 0";
  let n = (1 lsl (depth + 1)) - 1 in
  let edges = ref [] in
  for v = n - 1 downto 1 do
    edges := ((v - 1) / 2, v) :: !edges
  done;
  Graph.of_edges ~n !edges

let lollipop k p =
  if k < 3 || p < 1 then invalid_arg "Gen_classic.lollipop";
  let edges = ref [] in
  for i = k - 1 downto 0 do
    for j = k - 1 downto i + 1 do
      edges := (i, j) :: !edges
    done
  done;
  (* Path attached to clique vertex k - 1. *)
  for i = 0 to p - 1 do
    let a = if i = 0 then k - 1 else k + i - 1 in
    edges := (a, k + i) :: !edges
  done;
  Graph.of_edges ~n:(k + p) !edges

let barbell k p =
  if k < 3 || p < 0 then invalid_arg "Gen_classic.barbell";
  let edges = ref [] in
  let clique offset =
    for i = k - 1 downto 0 do
      for j = k - 1 downto i + 1 do
        edges := (offset + i, offset + j) :: !edges
      done
    done
  in
  clique 0;
  clique k;
  (* Path of p extra vertices between vertex k - 1 and vertex k. *)
  if p = 0 then edges := (k - 1, k) :: !edges
  else begin
    edges := (k - 1, 2 * k) :: !edges;
    for i = 1 to p - 1 do
      edges := ((2 * k) + i - 1, (2 * k) + i) :: !edges
    done;
    edges := ((2 * k) + p - 1, k) :: !edges
  end;
  Graph.of_edges ~n:((2 * k) + p) !edges

let petersen () =
  let outer = List.init 5 (fun i -> (i, (i + 1) mod 5)) in
  let spokes = List.init 5 (fun i -> (i, i + 5)) in
  let inner = List.init 5 (fun i -> (i + 5, ((i + 2) mod 5) + 5)) in
  Graph.of_edges ~n:10 (outer @ spokes @ inner)

let double_cycle n =
  if n < 3 then invalid_arg "Gen_classic.double_cycle: n < 3";
  let once = List.init n (fun i -> (i, (i + 1) mod n)) in
  Graph.of_edges ~n (once @ once)
