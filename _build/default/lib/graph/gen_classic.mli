(** Deterministic graph families.

    The even-degree families here exercise the paper's theorems directly
    (torus: 4-regular; hypercube of even dimension; cycles), and the odd or
    irregular families serve as baselines and counter-examples (Section 5,
    lower-bound experiments). *)

val cycle : int -> Graph.t
(** [cycle n], [n >= 3]: the n-cycle — 2-regular, `ell`-good with
    [ell = n].  @raise Invalid_argument for [n < 3]. *)

val path : int -> Graph.t
(** [path n]: n vertices, n-1 edges.  @raise Invalid_argument for [n < 1]. *)

val complete : int -> Graph.t
(** [complete n]: the clique K_n.  @raise Invalid_argument for [n < 1]. *)

val complete_bipartite : int -> int -> Graph.t
(** [complete_bipartite a b]: K_{a,b}, sides [0..a-1] and [a..a+b-1]. *)

val star : int -> Graph.t
(** [star n]: centre 0 joined to [n - 1] leaves. *)

val hypercube : int -> Graph.t
(** [hypercube r]: H_r on 2^r vertices, r-regular — the running example for
    the edge-cover discussion around eq. (2)/(3).
    @raise Invalid_argument for [r < 0] or [r > 25]. *)

val torus2d : int -> int -> Graph.t
(** [torus2d rows cols]: the wrap-around grid — 4-regular (even degree!) on
    [rows * cols] vertices.  Requires both sides [>= 3] so the graph stays
    simple. *)

val grid2d : int -> int -> Graph.t
(** [grid2d rows cols]: the open grid (no wrap-around). *)

val binary_tree : int -> Graph.t
(** [binary_tree depth]: complete binary tree with [2^(depth+1) - 1]
    vertices. *)

val lollipop : int -> int -> Graph.t
(** [lollipop k p]: clique K_k with a path of [p] extra vertices attached —
    the classic worst case for SRW hitting times. *)

val barbell : int -> int -> Graph.t
(** [barbell k p]: two K_k cliques joined by a path of [p] extra vertices. *)

val petersen : unit -> Graph.t
(** The Petersen graph: 3-regular, girth 5 — a small odd-degree test case. *)

val double_cycle : int -> Graph.t
(** [double_cycle n]: the n-cycle with every edge doubled — a 4-regular even
    multigraph whose blue subgraphs are easy to reason about in tests. *)
