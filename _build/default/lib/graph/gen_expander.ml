let margulis k =
  if k < 2 then invalid_arg "Gen_expander.margulis: k < 2";
  let n = k * k in
  let id x y = (((x mod k) + k) mod k * k) + (((y mod k) + k) mod k) in
  let b = Builder.create ~n in
  for x = 0 to k - 1 do
    for y = 0 to k - 1 do
      let v = id x y in
      (* The four Gabber–Galil maps; the reverse directions arrive as the
         images of other vertices, giving total degree 8 (with self-loops
         where a map fixes the vertex, e.g. y = 0 for the first map). *)
      Builder.add_edge b v (id (x + y) y);
      Builder.add_edge b v (id (x + y + 1) y);
      Builder.add_edge b v (id x (y + x));
      Builder.add_edge b v (id x (y + x + 1))
    done
  done;
  Builder.to_graph b

let circulant n offsets =
  if n < 3 then invalid_arg "Gen_expander.circulant: n < 3";
  let seen = Hashtbl.create 16 in
  List.iter
    (fun s ->
      if s < 1 || 2 * s >= n then
        invalid_arg "Gen_expander.circulant: offset out of range";
      if Hashtbl.mem seen s then
        invalid_arg "Gen_expander.circulant: duplicate offset";
      Hashtbl.add seen s ())
    offsets;
  let b = Builder.create ~n in
  for i = 0 to n - 1 do
    List.iter (fun s -> Builder.add_edge b i ((i + s) mod n)) offsets
  done;
  Builder.to_graph b

let chordal_cycle p =
  if p < 5 then invalid_arg "Gen_expander.chordal_cycle: p < 5";
  let b = Builder.create ~n:p in
  for i = 0 to p - 1 do
    Builder.add_edge b i ((i + 1) mod p);
    (* Doubling chords: each i -> 2i; for odd p this is a bijection, so the
       chord system is 2-regular, with one self-loop at 0 keeping the degree
       even (= 4) everywhere. *)
    Builder.add_edge b i (2 * i mod p)
  done;
  Builder.to_graph b
