(** Explicit even-degree expander constructions.

    Theorem 1 applies to even-degree expanders; beyond random regular graphs
    (which are expanders whp by Friedman's theorem, property P1), these
    deterministic families give reproducible instances with a provable
    spectral gap: the Margulis / Gabber–Galil degree-8 expander and circulant
    graphs of arbitrary even degree. *)

val margulis : int -> Graph.t
(** [margulis k]: the Gabber–Galil variant of the Margulis expander on the
    vertex set [Z_k x Z_k] ([n = k^2]).  Every vertex [(x, y)] is joined to
    [(x + y, y)], [(x + y + 1, y)], [(x, y + x)], [(x, y + x + 1)] (mod k)
    and, being undirected, to the four preimages — an 8-regular multigraph
    with second adjacency eigenvalue at most [5 sqrt 2 < 8].
    @raise Invalid_argument for [k < 2]. *)

val circulant : int -> int list -> Graph.t
(** [circulant n offsets]: vertex [i] joined to [i ± s mod n] for each
    [s] in [offsets].  With distinct offsets in [1 .. (n-1)/2] the result is
    simple and [2 |offsets|]-regular (even degree).
    @raise Invalid_argument for an offset outside [1 .. n/2], duplicate
    offsets, or [s = n/2] when [n] is even (that chord would create parallel
    edges under the ± convention). *)

val chordal_cycle : int -> Graph.t
(** [chordal_cycle p]: the degree-4 "cycle with chords" expander candidate on
    [Z_p]: vertex [i] joined to [i + 1], [i - 1] and to the modular inverse
    chord [i -> 2i mod p] (as an undirected 2-regular chord system).  Even
    degree 4; an expander for prime [p].
    @raise Invalid_argument for [p < 5]. *)
