module Rng = Ewalk_prng.Rng

let gnp rng n p =
  if n < 0 then invalid_arg "Gen_random.gnp: n < 0";
  if p < 0.0 || p > 1.0 then invalid_arg "Gen_random.gnp: p out of [0,1]";
  let b = Builder.create ~n in
  if p > 0.0 then begin
    if p >= 1.0 then
      for u = 0 to n - 1 do
        for v = u + 1 to n - 1 do
          Builder.add_edge b u v
        done
      done
    else begin
      (* Geometric skipping over the lexicographic pair order. *)
      let log1mp = log (1.0 -. p) in
      let v = ref 1 and u = ref (-1) in
      while !v < n do
        let r = Rng.float rng 1.0 in
        let r = if r = 0.0 then epsilon_float else r in
        let skip = int_of_float (Float.floor (log r /. log1mp)) in
        u := !u + 1 + skip;
        while !u >= !v && !v < n do
          u := !u - !v;
          incr v
        done;
        if !v < n then Builder.add_edge b !u !v
      done
    end
  end;
  Builder.to_graph b

let gnm rng n m =
  if n < 0 || m < 0 then invalid_arg "Gen_random.gnm: negative argument";
  let max_m = n * (n - 1) / 2 in
  if m > max_m then invalid_arg "Gen_random.gnm: too many edges";
  let chosen = Hashtbl.create (2 * m) in
  let b = Builder.create ~n in
  let placed = ref 0 in
  while !placed < m do
    let u = Rng.int rng n and v = Rng.int rng n in
    if u <> v then begin
      let key = if u < v then (u, v) else (v, u) in
      if not (Hashtbl.mem chosen key) then begin
        Hashtbl.add chosen key ();
        Builder.add_edge b (fst key) (snd key);
        incr placed
      end
    end
  done;
  Builder.to_graph b

let random_geometric rng n radius =
  if n < 0 then invalid_arg "Gen_random.random_geometric: n < 0";
  if radius < 0.0 then invalid_arg "Gen_random.random_geometric: radius < 0";
  let xs = Array.init n (fun _ -> Rng.float rng 1.0) in
  let ys = Array.init n (fun _ -> Rng.float rng 1.0) in
  let cells = max 1 (int_of_float (1.0 /. Float.max radius 1e-9)) in
  let cells = min cells 4096 in
  let bucket = Hashtbl.create (2 * n) in
  let cell_of x = min (cells - 1) (int_of_float (x *. float_of_int cells)) in
  for i = 0 to n - 1 do
    let key = (cell_of xs.(i), cell_of ys.(i)) in
    Hashtbl.replace bucket key
      (i :: (try Hashtbl.find bucket key with Not_found -> []))
  done;
  let b = Builder.create ~n in
  let r2 = radius *. radius in
  for i = 0 to n - 1 do
    let cx = cell_of xs.(i) and cy = cell_of ys.(i) in
    for dx = -1 to 1 do
      for dy = -1 to 1 do
        match Hashtbl.find_opt bucket (cx + dx, cy + dy) with
        | None -> ()
        | Some js ->
            List.iter
              (fun j ->
                if j > i then begin
                  let ddx = xs.(i) -. xs.(j) and ddy = ys.(i) -. ys.(j) in
                  if (ddx *. ddx) +. (ddy *. ddy) <= r2 then
                    Builder.add_edge b i j
                end)
              js
      done
    done
  done;
  Builder.to_graph b
