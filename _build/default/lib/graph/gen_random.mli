(** Random graph models other than the regular/configuration models.

    Erdős–Rényi graphs serve as irregular baselines; random geometric graphs
    reproduce the workload of the Avin–Krishnamachari "random walk with
    choice" study cited in the paper's related work. *)

val gnp : Ewalk_prng.Rng.t -> int -> float -> Graph.t
(** [gnp rng n p]: every unordered pair is an edge independently with
    probability [p].  Uses geometric skipping, so the cost is proportional
    to the number of edges generated.
    @raise Invalid_argument unless [0 <= p <= 1] and [n >= 0]. *)

val gnm : Ewalk_prng.Rng.t -> int -> int -> Graph.t
(** [gnm rng n m]: a uniform simple graph with exactly [m] edges.
    @raise Invalid_argument if [m] exceeds [n (n-1) / 2]. *)

val random_geometric : Ewalk_prng.Rng.t -> int -> float -> Graph.t
(** [random_geometric rng n radius]: [n] uniform points in the unit square,
    an edge between points at Euclidean distance [<= radius].  Grid-bucketed
    so the cost is near-linear for small radii. *)
