module Rng = Ewalk_prng.Rng

let pair_stubs rng stubs =
  (* Pair a shuffled stub array: stub 2i with stub 2i + 1. *)
  Rng.shuffle_in_place rng stubs;
  let m = Array.length stubs / 2 in
  Array.init m (fun i -> (stubs.(2 * i), stubs.((2 * i) + 1)))

let stubs_of_degrees degrees =
  let total = Array.fold_left ( + ) 0 degrees in
  let stubs = Array.make total 0 in
  let k = ref 0 in
  Array.iteri
    (fun v d ->
      if d < 0 then invalid_arg "Gen_regular: negative degree";
      for _ = 1 to d do
        stubs.(!k) <- v;
        incr k
      done)
    degrees;
  stubs

let multigraph_of_degrees rng n degrees =
  let stubs = stubs_of_degrees degrees in
  if Array.length stubs land 1 = 1 then
    invalid_arg "Gen_regular: odd degree sum";
  Graph.of_edge_array ~n (pair_stubs rng stubs)

let pairing_multigraph rng n r =
  if n < 0 || r < 0 then invalid_arg "Gen_regular.pairing_multigraph";
  multigraph_of_degrees rng n (Array.make n r)

let reject_until ~max_attempts ~what draw accept =
  let rec go k =
    if k >= max_attempts then
      failwith (Printf.sprintf "Gen_regular: no %s sample in %d attempts" what
                  max_attempts)
    else begin
      let g = draw () in
      if accept g then g else go (k + 1)
    end
  in
  go 0

let check_regular_args name n r =
  if n < 0 || r < 0 then invalid_arg name;
  if n * r land 1 = 1 then invalid_arg (name ^ ": n * r is odd");
  if n > 0 && r >= n then invalid_arg (name ^ ": r >= n has no simple graph")

let random_regular_rejection ?(max_attempts = 10_000) rng n r =
  check_regular_args "Gen_regular.random_regular_rejection" n r;
  reject_until ~max_attempts ~what:"simple"
    (fun () -> pairing_multigraph rng n r)
    Graph.is_simple

(* One Steger–Wormald construction attempt: match random suitable stub
   pairs until done, or return None if the remaining stubs are provably
   unmatchable. *)
let steger_wormald_attempt rng n r =
  let stubs = stubs_of_degrees (Array.make n r) in
  let live = ref (Array.length stubs) in
  let adjacent = Hashtbl.create (2 * n * r) in
  let key u v = if u < v then (u, v) else (v, u) in
  let b = Builder.create ~n in
  let suitable u v = u <> v && not (Hashtbl.mem adjacent (key u v)) in
  let take_pair () =
    (* Draw stub positions until a suitable pair appears; after too many
       consecutive misses, scan exhaustively to decide dead vs unlucky. *)
    let rec draw misses =
      if misses > 50 + (10 * !live) then scan ()
      else begin
        let i = Rng.int rng !live in
        let j = Rng.int rng !live in
        if i = j then draw (misses + 1)
        else begin
          let u = stubs.(i) and v = stubs.(j) in
          if suitable u v then Some (i, j) else draw (misses + 1)
        end
      end
    and scan () =
      let found = ref None in
      (let i = ref 0 in
       while !found = None && !i < !live - 1 do
         let j = ref (!i + 1) in
         while !found = None && !j < !live do
           if suitable stubs.(!i) stubs.(!j) then found := Some (!i, !j);
           incr j
         done;
         incr i
       done);
      !found
    in
    draw 0
  in
  let remove_positions i j =
    (* Remove the larger index first so the smaller one stays valid. *)
    let hi = max i j and lo = min i j in
    stubs.(hi) <- stubs.(!live - 1);
    decr live;
    stubs.(lo) <- stubs.(!live - 1);
    decr live
  in
  let rec fill () =
    if !live = 0 then Some (Builder.to_graph b)
    else begin
      match take_pair () with
      | None -> None
      | Some (i, j) ->
          let u = stubs.(i) and v = stubs.(j) in
          Hashtbl.replace adjacent (key u v) ();
          Builder.add_edge b u v;
          remove_positions i j;
          fill ()
    end
  in
  fill ()

let random_regular ?(max_attempts = 1_000) rng n r =
  check_regular_args "Gen_regular.random_regular" n r;
  if n = 0 || r = 0 then Graph.of_edges ~n []
  else begin
    let rec go k =
      if k >= max_attempts then
        failwith
          (Printf.sprintf
             "Gen_regular.random_regular: no sample in %d attempts"
             max_attempts)
      else begin
        match steger_wormald_attempt rng n r with
        | Some g -> g
        | None -> go (k + 1)
      end
    in
    go 0
  end

let random_regular_connected ?(max_attempts = 1_000) rng n r =
  if r < 2 && n > 2 then
    invalid_arg "Gen_regular.random_regular_connected: r < 2 is never connected";
  check_regular_args "Gen_regular.random_regular_connected" n r;
  reject_until ~max_attempts ~what:"simple connected"
    (fun () -> random_regular ~max_attempts rng n r)
    Traversal.is_connected

let configuration_model ?(simple = false) ?(max_attempts = 10_000) rng degrees =
  let n = Array.length degrees in
  let total = Array.fold_left ( + ) 0 degrees in
  if total land 1 = 1 then
    invalid_arg "Gen_regular.configuration_model: odd degree sum";
  if simple then
    reject_until ~max_attempts ~what:"simple"
      (fun () -> multigraph_of_degrees rng n degrees)
      Graph.is_simple
  else multigraph_of_degrees rng n degrees

let cycle_union ?(max_attempts = 10_000) rng n r =
  if n < 3 || r < 1 then invalid_arg "Gen_regular.cycle_union";
  (* Draw the Hamiltonian cycles one at a time, re-drawing a cycle that
     shares an edge with the ones already placed: the per-cycle acceptance
     probability is constant for constant r, unlike whole-union
     rejection. *)
  let taken = Hashtbl.create (4 * n * r) in
  let key u v = if u < v then (u, v) else (v, u) in
  let b = Builder.create ~n in
  for _ = 1 to r do
    let rec place attempts =
      if attempts >= max_attempts then
        failwith
          (Printf.sprintf
             "Gen_regular.cycle_union: no edge-disjoint cycle in %d attempts"
             max_attempts)
      else begin
        let p = Rng.permutation rng n in
        let fresh = ref true in
        for i = 0 to n - 1 do
          if Hashtbl.mem taken (key p.(i) p.((i + 1) mod n)) then fresh := false
        done;
        if !fresh then
          for i = 0 to n - 1 do
            let u = p.(i) and v = p.((i + 1) mod n) in
            Hashtbl.replace taken (key u v) ();
            Builder.add_edge b u v
          done
        else place (attempts + 1)
      end
    in
    place 0
  done;
  Builder.to_graph b
