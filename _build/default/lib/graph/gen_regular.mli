(** Random regular graphs and the configuration model.

    This is the workload generator of the paper's evaluation: Figure 1 runs
    the E-process on random [d]-regular graphs for [d = 3 .. 7], generated
    there with NetworkX's Steger–Wormald implementation.  We implement the
    pairing (configuration) model with simple-graph rejection: conditioned on
    producing a simple graph, the pairing model is exactly uniform over
    simple [r]-regular graphs, and for constant [r] the acceptance
    probability is bounded below by a constant, so generation is linear time
    in expectation.  See DESIGN.md §3 for the substitution argument. *)

val pairing_multigraph : Ewalk_prng.Rng.t -> int -> int -> Graph.t
(** [pairing_multigraph rng n r]: one draw of the pairing model — [r]
    half-edges ("stubs") per vertex, paired uniformly.  May contain loops and
    parallel edges.  @raise Invalid_argument if [n * r] is odd, [r < 0], or
    [n < 0]. *)

val random_regular_rejection :
  ?max_attempts:int -> Ewalk_prng.Rng.t -> int -> int -> Graph.t
(** [random_regular_rejection rng n r]: an {e exactly} uniform simple
    [r]-regular graph — rejects pairings until one is simple.  The
    acceptance probability is [~ exp(-(r^2 - 1)/4)], so this is only
    practical for [r <= 4]; prefer {!random_regular} beyond that.
    @param max_attempts default 10_000.
    @raise Invalid_argument on infeasible parameters ([n * r] odd, or
      [r >= n] with [n > 0]).
    @raise Failure if no simple pairing is found within [max_attempts]. *)

val random_regular :
  ?max_attempts:int -> Ewalk_prng.Rng.t -> int -> int -> Graph.t
(** [random_regular rng n r]: a simple [r]-regular graph by the
    Steger–Wormald incremental pairing algorithm — the same algorithm the
    paper used through NetworkX.  Random suitable stub pairs (distinct,
    non-adjacent endpoints) are matched one at a time; if the remaining
    stubs admit no suitable pair, the construction restarts.
    Asymptotically uniform for [r = o(n^(1/3))] and fast for all practical
    [r] (no [exp(r^2)] rejection).
    @param max_attempts restarts allowed (default 1_000).
    @raise Invalid_argument / @raise Failure as
      {!random_regular_rejection}. *)

val random_regular_connected :
  ?max_attempts:int -> Ewalk_prng.Rng.t -> int -> int -> Graph.t
(** Like {!random_regular} but additionally rejects disconnected samples.
    For [r >= 3] random regular graphs are connected whp, so this rarely
    costs more than one extra draw. *)

val configuration_model :
  ?simple:bool -> ?max_attempts:int -> Ewalk_prng.Rng.t -> int array -> Graph.t
(** [configuration_model rng degrees]: the pairing model for an arbitrary
    degree sequence — the "fixed degree sequence random graphs" of the
    paper's Corollary discussion.  With [~simple:true] (default [false])
    rejects until simple.
    @raise Invalid_argument if the degree sum is odd or any degree is
      negative. *)

val cycle_union : ?max_attempts:int -> Ewalk_prng.Rng.t -> int -> int -> Graph.t
(** [cycle_union rng n r]: the union of [r] independent uniform Hamiltonian
    cycles — a simple [2r]-regular (hence even-degree) graph, rejecting
    draws that share an edge between cycles.  A convenient even-degree
    expander family that is connected by construction.
    @raise Invalid_argument if [n < 3] or [r < 1]. *)
