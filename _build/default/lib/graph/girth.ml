let has_self_loop g = Graph.count_self_loops g > 0
let has_parallel g = Graph.count_parallel_edges g > 0

(* BFS from [v] collecting cycle-length candidates [d(x) + d(w) + 1] for
   non-tree edges; every candidate upper-bounds a real cycle, and for [v] on
   a shortest cycle the candidate matches the girth, so the minimum over all
   start vertices is exact. *)
let bfs_candidate g v cap =
  let n = Graph.n g in
  let dist = Array.make n (-1) in
  let parent_edge = Array.make n (-1) in
  let queue = Queue.create () in
  dist.(v) <- 0;
  Queue.add v queue;
  let best = ref cap in
  while not (Queue.is_empty queue) do
    let x = Queue.take queue in
    (* A cycle found via depths d and d' has length >= 2d + 1 when both
       endpoints sit at depth >= d, so depth (best - 1) / 2 suffices. *)
    if 2 * dist.(x) + 1 <= !best then
      Graph.iter_neighbors g x (fun w e ->
          if e <> parent_edge.(x) then begin
            if dist.(w) < 0 then begin
              dist.(w) <- dist.(x) + 1;
              parent_edge.(w) <- e;
              Queue.add w queue
            end
            else begin
              let candidate = dist.(x) + dist.(w) + 1 in
              if candidate < !best then best := candidate
            end
          end)
  done;
  !best

let girth_bounded g cap =
  if Graph.m g = 0 then None
  else if has_self_loop g then Some 1
  else if has_parallel g then Some 2
  else begin
    let best = ref cap in
    for v = 0 to Graph.n g - 1 do
      let c = bfs_candidate g v !best in
      if c < !best then best := c
    done;
    if !best >= cap then None else Some !best
  end

let girth g = girth_bounded g max_int

let girth_at_most g k = girth_bounded g (k + 1)

let shortest_cycle_through g v =
  (* Exact: a shortest cycle through [v] uses some incident edge [e]; its
     length is 1 + (shortest path between the endpoints of [e] in G - e). *)
  let best = ref max_int in
  Graph.iter_neighbors g v (fun w banned ->
      let n = Graph.n g in
      let dist = Array.make n (-1) in
      let queue = Queue.create () in
      dist.(w) <- 0;
      Queue.add w queue;
      while not (Queue.is_empty queue) do
        let x = Queue.take queue in
        if dist.(x) + 1 < !best && dist.(v) < 0 then
          Graph.iter_neighbors g x (fun y e ->
              if e <> banned && dist.(y) < 0 then begin
                dist.(y) <- dist.(x) + 1;
                Queue.add y queue
              end)
      done;
      if dist.(v) >= 0 && dist.(v) + 1 < !best then best := dist.(v) + 1);
  if !best = max_int then None else Some !best

let count_cycles g ~max_len =
  if max_len < 0 then invalid_arg "Girth.count_cycles: max_len < 0";
  let counts = Array.make (max_len + 1) 0 in
  let n = Graph.n g in
  let on_path = Array.make n false in
  (* Each cycle is counted from its minimum vertex [s], once per direction;
     intermediate vertices are restricted to be > s. *)
  for s = 0 to n - 1 do
    let rec extend v len prev_edge =
      Graph.iter_neighbors g v (fun w e ->
          if e <> prev_edge then begin
            if w = s && len + 1 >= 1 then
              counts.(len + 1) <- counts.(len + 1) + 1
            else if w > s && (not on_path.(w)) && len + 1 < max_len then begin
              on_path.(w) <- true;
              extend w (len + 1) e;
              on_path.(w) <- false
            end
          end)
    in
    if max_len >= 1 then begin
      on_path.(s) <- true;
      extend s 0 (-1);
      on_path.(s) <- false
    end
  done;
  Array.map (fun c -> c / 2) counts

let find_short_cycle g ~shorter_than =
  if shorter_than <= 1 then None
  else begin
    (* Self-loops and parallel pairs are length-1 / length-2 cycles. *)
    let found = ref None in
    if shorter_than > 1 then
      Graph.iter_edges g (fun e u v ->
          if !found = None && u = v then found := Some [ e ]);
    if !found = None && shorter_than > 2 then begin
      let seen = Hashtbl.create (2 * Graph.m g) in
      Graph.iter_edges g (fun e u v ->
          if !found = None && u <> v then begin
            let key = if u < v then (u, v) else (v, u) in
            match Hashtbl.find_opt seen key with
            | Some e' -> found := Some [ e'; e ]
            | None -> Hashtbl.add seen key e
          end)
    end;
    if !found <> None then !found
    else begin
      (* BFS from every vertex with depth cut; reconstruct via parent edges
         when a non-tree edge closes a short-enough cycle, stripping the
         common ancestor prefix. *)
      let n = Graph.n g in
      let v0 = ref 0 in
      while !found = None && !v0 < n do
        let s = !v0 in
        let dist = Array.make n (-1) in
        let parent_edge = Array.make n (-1) in
        let parent = Array.make n (-1) in
        let queue = Queue.create () in
        dist.(s) <- 0;
        Queue.add s queue;
        while !found = None && not (Queue.is_empty queue) do
          let x = Queue.take queue in
          if 2 * dist.(x) + 1 < shorter_than then
            Graph.iter_neighbors g x (fun w e ->
                if !found = None && e <> parent_edge.(x) then begin
                  if dist.(w) < 0 then begin
                    dist.(w) <- dist.(x) + 1;
                    parent_edge.(w) <- e;
                    parent.(w) <- x;
                    Queue.add w queue
                  end
                  else if dist.(x) + dist.(w) + 1 < shorter_than then begin
                    (* Closed walk: root paths of x and w plus edge e.
                       Strip the shared prefix to get a simple cycle. *)
                    let path_to_root y =
                      let rec up y acc =
                        if parent.(y) < 0 then acc
                        else up parent.(y) ((y, parent_edge.(y)) :: acc)
                      in
                      up y []
                    in
                    let px = path_to_root x and pw = path_to_root w in
                    let rec strip px pw =
                      match (px, pw) with
                      | (a, _) :: px', (b, _) :: pw' when a = b ->
                          strip px' pw'
                      | _ -> (px, pw)
                    in
                    let px, pw = strip px pw in
                    let edges =
                      List.map snd px @ [ e ] @ List.rev_map snd pw
                    in
                    found := Some edges
                  end
                end)
        done;
        incr v0
      done;
      !found
    end
  end

let cycles_through g v ~max_len =
  let n = Graph.n g in
  let on_path = Array.make n false in
  let seen = Hashtbl.create 64 in
  let cycles = ref [] in
  let record path =
    let key = List.sort compare path in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      cycles := List.rev path :: !cycles
    end
  in
  let rec extend x len prev_edge path =
    Graph.iter_neighbors g x (fun w e ->
        if e <> prev_edge then begin
          if w = v then record (e :: path)
          else if (not on_path.(w)) && len + 1 < max_len then begin
            on_path.(w) <- true;
            extend w (len + 1) e (e :: path);
            on_path.(w) <- false
          end
        end)
  in
  if max_len >= 1 then begin
    on_path.(v) <- true;
    extend v 0 (-1) [];
    on_path.(v) <- false
  end;
  !cycles
