(** Girth and small-cycle census.

    Theorem 3 bounds the E-process edge cover time in terms of the girth [g],
    and Corollary 4's proof counts the cycles of each small length [N_k]
    against their expectation on random regular graphs.  Both quantities are
    computed here.  Conventions: a self-loop is a cycle of length 1, a pair
    of parallel edges a cycle of length 2. *)

val girth : Graph.t -> int option
(** Exact girth, or [None] for an acyclic graph.  Per-vertex BFS with a
    depth cut-off at the best cycle found so far; fast whenever the girth is
    small (the typical case on the families studied here). *)

val girth_at_most : Graph.t -> int -> int option
(** [girth_at_most g k] is the girth if it is [<= k], else [None]; never
    explores deeper than [k/2 + 1], so it stays cheap on large graphs. *)

val shortest_cycle_through : Graph.t -> Graph.vertex -> int option
(** Length of a shortest cycle containing the given vertex. *)

val count_cycles : Graph.t -> max_len:int -> int array
(** [count_cycles g ~max_len] returns [c] with [c.(k)] the exact number of
    (vertex-)simple cycles of length [k], for [0 <= k <= max_len] ([c.(0)]
    is always 0).  Exponential in [max_len] with base [max_degree]; intended
    for [max_len = O(log n)] on bounded-degree graphs, matching the paper's
    use.  @raise Invalid_argument if [max_len < 0]. *)

val cycles_through : Graph.t -> Graph.vertex -> max_len:int -> Graph.edge list list
(** All simple cycles through the given vertex of length [<= max_len], each
    as its edge-id list, each cycle reported once.  Used by the
    [ell]-goodness search. *)

val find_short_cycle : Graph.t -> shorter_than:int -> Graph.edge list option
(** The edge list of some simple cycle of length [< shorter_than], if one
    exists.  Cheap (bounded BFS per vertex); the building block of the
    girth-boosting rewiring in {!Switch}. *)
