let to_string g =
  let buf = Buffer.create (16 * (Graph.m g + 1)) in
  Buffer.add_string buf (Printf.sprintf "%d %d\n" (Graph.n g) (Graph.m g));
  Graph.iter_edges g (fun _ u v ->
      Buffer.add_string buf (Printf.sprintf "%d %d\n" u v));
  Buffer.contents buf

let relevant_lines s =
  String.split_on_char '\n' s
  |> List.map String.trim
  |> List.filter (fun l -> l <> "" && l.[0] <> '#')

let parse_pair what line =
  match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
  | [ a; b ] -> (
      match (int_of_string_opt a, int_of_string_opt b) with
      | Some a, Some b -> (a, b)
      | _ -> failwith (Printf.sprintf "Graph_io: bad %s line %S" what line))
  | _ -> failwith (Printf.sprintf "Graph_io: bad %s line %S" what line)

let of_string s =
  match relevant_lines s with
  | [] -> failwith "Graph_io: empty input"
  | header :: rest ->
      let n, m = parse_pair "header" header in
      if n < 0 || m < 0 then failwith "Graph_io: negative header";
      if List.length rest <> m then
        failwith
          (Printf.sprintf "Graph_io: expected %d edges, found %d" m
             (List.length rest));
      let edges = List.map (parse_pair "edge") rest in
      List.iter
        (fun (u, v) ->
          if u < 0 || u >= n || v < 0 || v >= n then
            failwith "Graph_io: endpoint out of range")
        edges;
      Graph.of_edges ~n edges

let save path g =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string g))

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))
