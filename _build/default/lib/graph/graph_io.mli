(** Plain-text graph serialisation.

    Format: a header line ["n m"] followed by [m] lines ["u v"], one per
    edge, in edge-id order.  Lines starting with ['#'] and blank lines are
    ignored on input.  Round-trips exactly (edge ids and multiplicities
    preserved), so experiment graphs can be saved and re-examined. *)

val to_string : Graph.t -> string

val of_string : string -> Graph.t
(** @raise Failure on malformed input (bad header, wrong edge count,
    out-of-range endpoint). *)

val save : string -> Graph.t -> unit
(** [save path g] writes {!to_string} to [path]. *)

val load : string -> Graph.t
(** @raise Failure as {!of_string}; @raise Sys_error on I/O errors. *)
