let disjoint_union a b =
  let na = Graph.n a in
  let edges =
    Graph.fold_edges b
      (fun acc _ u v -> (u + na, v + na) :: acc)
      (List.rev (Graph.edge_list a))
  in
  Graph.of_edges ~n:(na + Graph.n b) (List.rev edges)

let cartesian_product a b =
  let nb = Graph.n b in
  let id u v = (u * nb) + v in
  let edges = ref [] in
  (* (u, v) ~ (u, v') for v ~ v' in b. *)
  for u = Graph.n a - 1 downto 0 do
    Graph.iter_edges b (fun _ v v' -> edges := (id u v, id u v') :: !edges)
  done;
  (* (u, v) ~ (u', v) for u ~ u' in a. *)
  for v = nb - 1 downto 0 do
    Graph.iter_edges a (fun _ u u' -> edges := (id u v, id u' v) :: !edges)
  done;
  Graph.of_edges ~n:(Graph.n a * nb) !edges

let complement g =
  if not (Graph.is_simple g) then
    invalid_arg "Ops.complement: graph is not simple";
  let n = Graph.n g in
  let edges = ref [] in
  for u = n - 1 downto 0 do
    for v = n - 1 downto u + 1 do
      if not (Graph.mem_edge g u v) then edges := (u, v) :: !edges
    done
  done;
  Graph.of_edges ~n !edges

let line_graph g =
  if Graph.count_self_loops g > 0 then
    invalid_arg "Ops.line_graph: self-loops not supported";
  let edges = ref [] in
  (* For each vertex, connect every pair of incident edges. *)
  for v = Graph.n g - 1 downto 0 do
    let incident = ref [] in
    Graph.iter_neighbors g v (fun _ e -> incident := e :: !incident);
    let rec pairs = function
      | [] -> ()
      | e :: rest ->
          List.iter (fun e' -> edges := (e, e') :: !edges) rest;
          pairs rest
    in
    pairs !incident
  done;
  Graph.of_edges ~n:(Graph.m g) !edges

let double_edges g =
  let edges = Graph.edge_list g in
  Graph.of_edges ~n:(Graph.n g) (edges @ edges)

let relabel g perm =
  let n = Graph.n g in
  if Array.length perm <> n then invalid_arg "Ops.relabel: wrong length";
  let seen = Array.make n false in
  Array.iter
    (fun p ->
      if p < 0 || p >= n || seen.(p) then
        invalid_arg "Ops.relabel: not a permutation";
      seen.(p) <- true)
    perm;
  let edges =
    Graph.fold_edges g (fun acc _ u v -> (perm.(u), perm.(v)) :: acc) []
  in
  Graph.of_edges ~n (List.rev edges)
