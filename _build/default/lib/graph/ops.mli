(** Graph combinators: unions, products, complement, line graph.

    The classic families are products in disguise — the hypercube is an
    iterated product of [K_2]s and the torus a product of two cycles — so
    these combinators double as independent oracles for the generators in
    the test suite, besides letting users assemble their own even-degree
    workloads (products of even-degree graphs are even-degree). *)

val disjoint_union : Graph.t -> Graph.t -> Graph.t
(** Vertices of the second graph are shifted by [n] of the first. *)

val cartesian_product : Graph.t -> Graph.t -> Graph.t
(** [cartesian_product g h]: vertex [(u, v)] is encoded as [u * n_h + v];
    [(u,v) ~ (u',v')] iff ([u = u'] and [v ~ v']) or ([v = v'] and
    [u ~ u']).  Degrees add, so products of even-degree graphs stay even. *)

val complement : Graph.t -> Graph.t
(** Simple complement (self-loops never included).  Quadratic; intended for
    small graphs.  @raise Invalid_argument if the input is not simple. *)

val line_graph : Graph.t -> Graph.t
(** Vertices = edges of [g]; two adjacent iff they share an endpoint.  The
    line graph of an [r]-regular graph is [2(r-1)]-regular — a classic
    source of {e even-degree} graphs from odd-degree ones (e.g. the line
    graph of a random cubic graph is 4-regular), directly relevant to
    applying Theorem 1 beyond even families.
    @raise Invalid_argument on graphs with self-loops. *)

val double_edges : Graph.t -> Graph.t
(** Every edge duplicated: all degrees double, so the result is even-degree
    — the cheapest way to bring an odd-degree graph under Theorem 1's
    hypotheses (the same doubling the rotor-router model performs).  The
    duplicate of edge [e] has id [m + e]. *)

val relabel : Graph.t -> int array -> Graph.t
(** [relabel g perm] renames vertex [v] to [perm.(v)].
    @raise Invalid_argument if [perm] is not a permutation of [0..n-1]. *)
