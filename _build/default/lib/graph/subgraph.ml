let check_distinct_vertices g vs =
  let seen = Hashtbl.create (List.length vs) in
  List.iter
    (fun v ->
      if v < 0 || v >= Graph.n g then
        invalid_arg "Subgraph: vertex out of range";
      if Hashtbl.mem seen v then invalid_arg "Subgraph: duplicate vertex";
      Hashtbl.add seen v ())
    vs

let induced g vs =
  check_distinct_vertices g vs;
  let vs = Array.of_list vs in
  let k = Array.length vs in
  let new_id = Array.make (Graph.n g) (-1) in
  Array.iteri (fun i v -> new_id.(v) <- i) vs;
  let edges =
    Graph.fold_edges g
      (fun acc _ u v ->
        if new_id.(u) >= 0 && new_id.(v) >= 0 then
          (new_id.(u), new_id.(v)) :: acc
        else acc)
      []
  in
  (Graph.of_edges ~n:k (List.rev edges), vs)

let edge_subgraph g es =
  let edges =
    List.map
      (fun e ->
        if e < 0 || e >= Graph.m g then
          invalid_arg "Subgraph.edge_subgraph: edge out of range";
        Graph.endpoints g e)
      es
  in
  Graph.of_edges ~n:(Graph.n g) edges

let contract g s =
  if s = [] then invalid_arg "Subgraph.contract: empty set";
  check_distinct_vertices g s;
  let in_s = Array.make (Graph.n g) false in
  List.iter (fun v -> in_s.(v) <- true) s;
  let map = Array.make (Graph.n g) (-1) in
  let next = ref 0 in
  for v = 0 to Graph.n g - 1 do
    if not in_s.(v) then begin
      map.(v) <- !next;
      incr next
    end
  done;
  let gamma = !next in
  for v = 0 to Graph.n g - 1 do
    if in_s.(v) then map.(v) <- gamma
  done;
  let edges =
    Graph.fold_edges g (fun acc _ u v -> (map.(u), map.(v)) :: acc) []
  in
  (Graph.of_edges ~n:(gamma + 1) (List.rev edges), map, gamma)

let remove_edges g es =
  let removed = Array.make (Graph.m g) false in
  List.iter
    (fun e ->
      if e < 0 || e >= Graph.m g then
        invalid_arg "Subgraph.remove_edges: edge out of range";
      removed.(e) <- true)
    es;
  let edges =
    Graph.fold_edges g
      (fun acc e u v -> if removed.(e) then acc else (u, v) :: acc)
      []
  in
  Graph.of_edges ~n:(Graph.n g) (List.rev edges)
