(** Induced subgraphs, edge subgraphs, and vertex-set contraction.

    Contraction is the [Gamma = G / S] operation at the heart of the paper's
    Section 2.2: a vertex set [S] collapses to one vertex [gamma], loops and
    parallel edges are retained so that [d(gamma) = d(S)] and
    [|E(Gamma)| = |E(G)|].  The test suite verifies the eigenvalue-gap
    monotonicity (eq. 16) on small graphs through this function. *)

val induced : Graph.t -> Graph.vertex list -> Graph.t * Graph.vertex array
(** [induced g vs] is the subgraph induced by the distinct vertices [vs]
    (edges with both endpoints in [vs]), together with the map from new
    vertex id to original vertex id.
    @raise Invalid_argument on duplicates or out-of-range vertices. *)

val edge_subgraph : Graph.t -> Graph.edge list -> Graph.t
(** [edge_subgraph g es] keeps every vertex of [g] and exactly the listed
    edges (new consecutive edge ids, order preserved).
    @raise Invalid_argument on an out-of-range edge id. *)

val contract :
  Graph.t -> Graph.vertex list -> Graph.t * Graph.vertex array * Graph.vertex
(** [contract g s] collapses the vertex set [s] into a single new vertex.
    Returns [(gamma_graph, map, gamma)] where [map.(v)] is the new id of
    original vertex [v] (members of [s] all map to [gamma]).  Edges inside
    [s] become self-loops at [gamma]; multi-edges are retained, so degrees
    sum exactly as in the paper.
    @raise Invalid_argument if [s] is empty, has duplicates, or is out of
    range. *)

val remove_edges : Graph.t -> Graph.edge list -> Graph.t
(** Graph with the listed edge ids deleted (vertex set unchanged). *)
