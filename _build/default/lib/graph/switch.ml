module Rng = Ewalk_prng.Rng

(* Mutable edge-array view with a membership table, so each switch is O(1)
   and only the final freeze rebuilds the CSR. *)
type state = {
  n : int;
  edges : (int * int) array;
  member : (int * int, int) Hashtbl.t; (* normalised pair -> multiplicity *)
}

let key u v = if u < v then (u, v) else (v, u)

let state_of_graph g =
  let edges = Array.of_list (Graph.edge_list g) in
  let member = Hashtbl.create (2 * Array.length edges) in
  Array.iter
    (fun (u, v) ->
      let k = key u v in
      Hashtbl.replace member k
        (1 + Option.value ~default:0 (Hashtbl.find_opt member k)))
    edges;
  { n = Graph.n g; edges; member }

let mem state u v = Hashtbl.mem state.member (key u v)

let remove state u v =
  let k = key u v in
  match Hashtbl.find_opt state.member k with
  | Some 1 -> Hashtbl.remove state.member k
  | Some c -> Hashtbl.replace state.member k (c - 1)
  | None -> assert false

let add state u v =
  let k = key u v in
  Hashtbl.replace state.member k
    (1 + Option.value ~default:0 (Hashtbl.find_opt state.member k))

let try_switch rng state =
  let m = Array.length state.edges in
  let i = Rng.int rng m and j = Rng.int rng m in
  if i = j then false
  else begin
    let a, b = state.edges.(i) and c, d = state.edges.(j) in
    (* Randomly orient the second edge so both pairings are reachable. *)
    let c, d = if Rng.bool rng then (c, d) else (d, c) in
    let distinct = a <> c && a <> d && b <> c && b <> d in
    if (not distinct) || mem state a d || mem state c b then false
    else begin
      remove state a b;
      remove state c d;
      add state a d;
      add state c b;
      state.edges.(i) <- (a, d);
      state.edges.(j) <- (c, b);
      true
    end
  end

let freeze state = Graph.of_edge_array ~n:state.n state.edges

let check g =
  if not (Graph.is_simple g) then invalid_arg "Switch: graph is not simple";
  if Graph.m g < 2 then invalid_arg "Switch: need at least 2 edges"

let switch_once rng g =
  check g;
  let state = state_of_graph g in
  if try_switch rng state then Some (freeze state) else None

let randomize rng g ~switches =
  check g;
  if switches < 0 then invalid_arg "Switch.randomize: switches < 0";
  let state = state_of_graph g in
  let done_ = ref 0 and attempts = ref 0 in
  let budget = 100 * max 1 switches in
  while !done_ < switches && !attempts < budget do
    incr attempts;
    if try_switch rng state then incr done_
  done;
  freeze state

(* Switch a specific edge position [i] against a random partner; returns the
   partner's position on success. *)
let try_switch_edge rng state i =
  let m = Array.length state.edges in
  let j = Rng.int rng m in
  if i = j then None
  else begin
    let a, b = state.edges.(i) and c, d = state.edges.(j) in
    let c, d = if Rng.bool rng then (c, d) else (d, c) in
    let distinct = a <> c && a <> d && b <> c && b <> d in
    if (not distinct) || mem state a d || mem state c b then None
    else begin
      remove state a b;
      remove state c d;
      add state a d;
      add state c b;
      state.edges.(i) <- (a, d);
      state.edges.(j) <- (c, b);
      Some j
    end
  end

(* Is the shortest cycle through edge [e] of [g] shorter than [bound]?
   Equivalent: a path between its endpoints avoiding [e] of length
   [< bound - 1].  Bounded BFS, cheap for small bounds. *)
let short_cycle_through_edge g e ~bound =
  let u, v = Graph.endpoints g e in
  let n = Graph.n g in
  let dist = Array.make n (-1) in
  let queue = Queue.create () in
  dist.(u) <- 0;
  Queue.add u queue;
  let found = ref false in
  while (not !found) && not (Queue.is_empty queue) do
    let x = Queue.take queue in
    if dist.(x) + 1 <= bound - 2 then
      Graph.iter_neighbors g x (fun w e' ->
          if e' <> e && dist.(w) < 0 then begin
            dist.(w) <- dist.(x) + 1;
            if w = v then found := true else Queue.add w queue
          end)
  done;
  !found

let boost_girth ?max_rounds rng g ~target =
  check g;
  if target < 3 then invalid_arg "Switch.boost_girth: target < 3";
  let max_rounds =
    match max_rounds with Some r -> r | None -> 50 * max 1 (Graph.n g)
  in
  let current = ref g in
  let rounds = ref 0 in
  let give_up = ref false in
  while (not !give_up) && !rounds < max_rounds do
    incr rounds;
    match Girth.find_short_cycle !current ~shorter_than:target with
    | None -> give_up := true (* girth reached *)
    | Some cycle_edges ->
        (* Switch a random edge of the offending cycle; removing edges only
           destroys cycles, so the move is monotone as long as neither NEW
           edge closes a cycle shorter than the target. *)
        let edges = Array.of_list cycle_edges in
        let e = edges.(Rng.int rng (Array.length edges)) in
        let state = state_of_graph !current in
        let partner = ref None in
        let tries = ref 0 in
        while !partner = None && !tries < 50 do
          incr tries;
          partner := try_switch_edge rng state e
        done;
        (match !partner with
        | None -> ()
        | Some j ->
            (* Edge ids in the frozen graph follow the array order, so the
               two rewritten edges are exactly ids e and j. *)
            let candidate = freeze state in
            if
              (not (short_cycle_through_edge candidate e ~bound:target))
              && not (short_cycle_through_edge candidate j ~bound:target)
            then current := candidate)
  done;
  !current
