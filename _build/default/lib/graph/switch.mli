(** The double-edge-switch Markov chain on simple graphs.

    A switch picks two edges [(a, b)] and [(c, d)] with four distinct
    endpoints and rewires them to [(a, d), (c, b)] (rejected if either new
    edge already exists).  The chain preserves the degree sequence and is
    irreducible on the set of simple realisations, with uniform stationary
    distribution — a second, independent route to (near-)uniform random
    regular graphs, used to cross-check the Steger–Wormald generator, and a
    practical "anonymiser" of structured graphs. *)

val switch_once : Ewalk_prng.Rng.t -> Graph.t -> Graph.t option
(** One attempted switch; [None] if the sampled pair was rejected
    (shared endpoint or multi-edge creation).  O(m) (rebuilds the CSR). *)

val randomize : Ewalk_prng.Rng.t -> Graph.t -> switches:int -> Graph.t
(** [randomize rng g ~switches] performs the given number of {e successful}
    switches (rejections are retried, capped at [100 * switches] attempts
    in total).  The result has exactly the degree sequence of [g].
    @raise Invalid_argument if [g] is not simple or has [m < 2]. *)

val boost_girth :
  ?max_rounds:int -> Ewalk_prng.Rng.t -> Graph.t -> target:int -> Graph.t
(** [boost_girth rng g ~target]: hill-climb towards girth [>= target] by
    repeatedly locating a shortest cycle and switching one of its edges
    against a random other edge (degree sequence preserved; a move is kept
    only if it does not shorten the girth).  The paper's title objects —
    {e high girth even degree expanders} — are produced this way from
    random regular graphs; see [Lubotzky–Phillips–Sarnak] for explicit
    constructions.  Best effort: returns the current graph when
    [max_rounds] (default [50 * n]) elapses, so callers should check the
    achieved girth.
    @raise Invalid_argument as {!randomize}, or if [target < 3]. *)
