let bfs_distances_bounded g s radius =
  let n = Graph.n g in
  let dist = Array.make n (-1) in
  let queue = Queue.create () in
  dist.(s) <- 0;
  Queue.add s queue;
  while not (Queue.is_empty queue) do
    let v = Queue.take queue in
    if dist.(v) < radius then
      Graph.iter_neighbors g v (fun w _ ->
          if dist.(w) < 0 then begin
            dist.(w) <- dist.(v) + 1;
            Queue.add w queue
          end)
  done;
  dist

let bfs_distances g s = bfs_distances_bounded g s max_int

let distance g u v = (bfs_distances g u).(v)

let connected_components g =
  let n = Graph.n g in
  let label = Array.make n (-1) in
  let next = ref 0 in
  let queue = Queue.create () in
  for s = 0 to n - 1 do
    if label.(s) < 0 then begin
      let c = !next in
      incr next;
      label.(s) <- c;
      Queue.add s queue;
      while not (Queue.is_empty queue) do
        let v = Queue.take queue in
        Graph.iter_neighbors g v (fun w _ ->
            if label.(w) < 0 then begin
              label.(w) <- c;
              Queue.add w queue
            end)
      done
    end
  done;
  (label, !next)

let is_connected g =
  Graph.n g <= 1 ||
  (let _, k = connected_components g in
   k = 1)

let component_of g v =
  let label, _ = connected_components g in
  let c = label.(v) in
  let acc = ref [] in
  for u = Graph.n g - 1 downto 0 do
    if label.(u) = c then acc := u :: !acc
  done;
  !acc

let largest_component_vertices g =
  let label, k = connected_components g in
  if k = 0 then []
  else begin
    let size = Array.make k 0 in
    Array.iter (fun c -> size.(c) <- size.(c) + 1) label;
    let best = ref 0 in
    for c = 1 to k - 1 do
      if size.(c) > size.(!best) then best := c
    done;
    let acc = ref [] in
    for u = Graph.n g - 1 downto 0 do
      if label.(u) = !best then acc := u :: !acc
    done;
    !acc
  end

let eccentricity g v =
  let dist = bfs_distances g v in
  Array.fold_left (fun acc d -> if d > acc then d else acc) 0 dist

let diameter g =
  if Graph.n g = 0 then invalid_arg "Traversal.diameter: empty graph";
  if not (is_connected g) then
    invalid_arg "Traversal.diameter: disconnected graph";
  let best = ref 0 in
  for v = 0 to Graph.n g - 1 do
    let e = eccentricity g v in
    if e > !best then best := e
  done;
  !best

let farthest_from g s =
  let dist = bfs_distances g s in
  let best = ref s in
  for v = 0 to Graph.n g - 1 do
    if dist.(v) > dist.(!best) then best := v
  done;
  (!best, dist.(!best))

let diameter_lower_bound g =
  if Graph.n g = 0 then 0
  else begin
    let far, _ = farthest_from g 0 in
    let _, d = farthest_from g far in
    d
  end

let is_bipartite g =
  let n = Graph.n g in
  let colour = Array.make n (-1) in
  let queue = Queue.create () in
  let ok = ref true in
  for s = 0 to n - 1 do
    if colour.(s) < 0 then begin
      colour.(s) <- 0;
      Queue.add s queue;
      while not (Queue.is_empty queue) do
        let v = Queue.take queue in
        Graph.iter_neighbors g v (fun w _ ->
            if colour.(w) < 0 then begin
              colour.(w) <- 1 - colour.(v);
              Queue.add w queue
            end
            else if colour.(w) = colour.(v) then ok := false)
      done
    end
  done;
  !ok

let dfs_preorder g s =
  let n = Graph.n g in
  let seen = Array.make n false in
  let stack = Stack.create () in
  let order = ref [] in
  Stack.push s stack;
  while not (Stack.is_empty stack) do
    let v = Stack.pop stack in
    if not seen.(v) then begin
      seen.(v) <- true;
      order := v :: !order;
      (* Push in reverse slot order so slot 0 is explored first. *)
      for i = Graph.degree g v - 1 downto 0 do
        let w = Graph.neighbor g v i in
        if not seen.(w) then Stack.push w stack
      done
    end
  done;
  List.rev !order

let spanning_forest g =
  let n = Graph.n g in
  let seen = Array.make n false in
  let queue = Queue.create () in
  let forest = ref [] in
  for s = 0 to n - 1 do
    if not seen.(s) then begin
      seen.(s) <- true;
      Queue.add s queue;
      while not (Queue.is_empty queue) do
        let v = Queue.take queue in
        Graph.iter_neighbors g v (fun w e ->
            if not seen.(w) then begin
              seen.(w) <- true;
              forest := e :: !forest;
              Queue.add w queue
            end)
      done
    end
  done;
  List.rev !forest
