(** Breadth-first / depth-first machinery: components, distances, diameter,
    bipartiteness. *)

val bfs_distances : Graph.t -> Graph.vertex -> int array
(** [bfs_distances g s] maps every vertex to its hop distance from [s];
    unreachable vertices get [-1]. *)

val bfs_distances_bounded : Graph.t -> Graph.vertex -> int -> int array
(** Like {!bfs_distances} but does not explore beyond the given radius. *)

val distance : Graph.t -> Graph.vertex -> Graph.vertex -> int
(** Hop distance, or [-1] if disconnected. *)

val connected_components : Graph.t -> int array * int
(** [connected_components g] labels every vertex with a component id in
    [0 .. k-1] and returns [(labels, k)]. *)

val is_connected : Graph.t -> bool
(** [true] iff the graph has exactly one component ([n <= 1] counts as
    connected). *)

val component_of : Graph.t -> Graph.vertex -> Graph.vertex list
(** Vertices of the component containing the given vertex. *)

val largest_component_vertices : Graph.t -> Graph.vertex list

val eccentricity : Graph.t -> Graph.vertex -> int
(** Largest finite BFS distance from the vertex (its component's radius seen
    from there). *)

val diameter : Graph.t -> int
(** Exact diameter of the (connected) graph by all-pairs BFS; O(n m).
    @raise Invalid_argument if the graph is disconnected or empty. *)

val diameter_lower_bound : Graph.t -> int
(** Double-sweep lower bound: one BFS to the farthest vertex, one BFS back.
    Cheap and usually tight on the graph families used here. *)

val is_bipartite : Graph.t -> bool
(** Two-colourability check; a bipartite graph forces [lambda_n = -1] for
    the plain walk, which is why the lazy walk exists (paper, Section 2.1). *)

val dfs_preorder : Graph.t -> Graph.vertex -> Graph.vertex list
(** Iterative DFS preorder of the component of the given vertex. *)

val spanning_forest : Graph.t -> Graph.edge list
(** Edge ids of a BFS spanning forest (n - #components edges). *)
