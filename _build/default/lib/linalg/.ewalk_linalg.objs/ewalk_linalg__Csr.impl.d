lib/linalg/csr.ml: Array List Matrix
