lib/linalg/csr.mli: Matrix Vec
