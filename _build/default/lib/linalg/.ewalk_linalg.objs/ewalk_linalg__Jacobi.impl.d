lib/linalg/jacobi.ml: Array Float Matrix
