lib/linalg/lanczos.ml: Array Ewalk_prng Jacobi List Matrix Power Vec
