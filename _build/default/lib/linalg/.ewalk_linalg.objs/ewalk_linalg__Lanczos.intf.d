lib/linalg/lanczos.mli: Ewalk_prng Power Vec
