lib/linalg/matrix.mli: Vec
