lib/linalg/power.ml: Array Csr Ewalk_prng Float List Matrix Vec
