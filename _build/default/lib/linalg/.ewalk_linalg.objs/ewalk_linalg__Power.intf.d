lib/linalg/power.mli: Csr Ewalk_prng Matrix Vec
