lib/linalg/solve.ml: Array Float Matrix
