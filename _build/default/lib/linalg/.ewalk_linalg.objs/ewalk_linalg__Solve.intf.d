lib/linalg/solve.mli: Matrix Vec
