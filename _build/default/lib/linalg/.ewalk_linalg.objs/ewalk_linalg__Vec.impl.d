lib/linalg/vec.ml: Array Ewalk_prng Float
