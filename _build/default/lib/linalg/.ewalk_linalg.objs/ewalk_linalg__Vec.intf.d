lib/linalg/vec.mli: Ewalk_prng
