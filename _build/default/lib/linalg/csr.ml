type t = {
  n : int;
  row_start : int array; (* length n + 1 *)
  col : int array;
  value : float array;
}

let dim t = t.n
let nnz t = Array.length t.col

let of_sorted n entries =
  (* [entries] is an array of (row, col, value), sorted by row then col, with
     no duplicate coordinates. *)
  let k = Array.length entries in
  let row_start = Array.make (n + 1) 0 in
  Array.iter (fun (r, _, _) -> row_start.(r + 1) <- row_start.(r + 1) + 1)
    entries;
  for i = 1 to n do
    row_start.(i) <- row_start.(i) + row_start.(i - 1)
  done;
  let col = Array.make k 0 and value = Array.make k 0.0 in
  Array.iteri
    (fun i (_, c, v) ->
      col.(i) <- c;
      value.(i) <- v)
    entries;
  { n; row_start; col; value }

let of_rows n entries =
  List.iter
    (fun (r, c, _) ->
      if r < 0 || r >= n || c < 0 || c >= n then
        invalid_arg "Csr.of_rows: index out of range")
    entries;
  let sorted =
    List.sort
      (fun (r1, c1, _) (r2, c2, _) ->
        match compare r1 r2 with 0 -> compare c1 c2 | d -> d)
      entries
  in
  (* Merge duplicates by summation. *)
  let merged =
    List.fold_left
      (fun acc (r, c, v) ->
        match acc with
        | (r', c', v') :: rest when r = r' && c = c' ->
            (r, c, v +. v') :: rest
        | _ -> (r, c, v) :: acc)
      [] sorted
  in
  of_sorted n (Array.of_list (List.rev merged))

let of_row_fun n row =
  let entries = ref [] in
  for i = n - 1 downto 0 do
    List.iter (fun (j, v) -> entries := (i, j, v) :: !entries) (row i)
  done;
  of_rows n !entries

let mul_vec_into t x y =
  if Array.length x <> t.n || Array.length y <> t.n then
    invalid_arg "Csr.mul_vec_into: dim mismatch";
  for i = 0 to t.n - 1 do
    let s = ref 0.0 in
    for k = t.row_start.(i) to t.row_start.(i + 1) - 1 do
      s := !s +. (t.value.(k) *. x.(t.col.(k)))
    done;
    y.(i) <- !s
  done

let mul_vec t x =
  let y = Array.make t.n 0.0 in
  mul_vec_into t x y;
  y

let to_dense t =
  let m = Matrix.create t.n in
  for i = 0 to t.n - 1 do
    for k = t.row_start.(i) to t.row_start.(i + 1) - 1 do
      Matrix.set m i t.col.(k) (Matrix.get m i t.col.(k) +. t.value.(k))
    done
  done;
  m

let transpose t =
  let entries = ref [] in
  for i = t.n - 1 downto 0 do
    for k = t.row_start.(i + 1) - 1 downto t.row_start.(i) do
      entries := (t.col.(k), i, t.value.(k)) :: !entries
    done
  done;
  of_rows t.n !entries
