(** Sparse matrices in compressed-sparse-row form.

    Used to represent graph operators (normalised adjacency, transition
    matrix) of large graphs; {!Power} runs its iterations through
    {!mul_vec}. *)

type t

val of_rows : int -> (int * int * float) list -> t
(** [of_rows n entries] builds an [n x n] matrix from [(row, col, value)]
    triples.  Duplicate coordinates are summed.
    @raise Invalid_argument on an out-of-range index. *)

val of_row_fun : int -> (int -> (int * float) list) -> t
(** [of_row_fun n row] builds the matrix whose row [i] has the entries
    [row i]. *)

val dim : t -> int

val nnz : t -> int
(** Number of stored entries. *)

val mul_vec : t -> Vec.t -> Vec.t
(** Sparse matrix-vector product. *)

val mul_vec_into : t -> Vec.t -> Vec.t -> unit
(** [mul_vec_into m x y] writes [m x] into [y] (no allocation). *)

val to_dense : t -> Matrix.t
(** Densify (test-scale only). *)

val transpose : t -> t
