let rotate a v p q =
  (* One Jacobi rotation zeroing a(p,q), accumulating eigenvectors in v. *)
  let n = Matrix.dim a in
  let apq = Matrix.get a p q in
  if Float.abs apq > 0.0 then begin
    let app = Matrix.get a p p and aqq = Matrix.get a q q in
    let theta = (aqq -. app) /. (2.0 *. apq) in
    let t =
      let sign = if theta >= 0.0 then 1.0 else -1.0 in
      sign /. (Float.abs theta +. sqrt ((theta *. theta) +. 1.0))
    in
    let c = 1.0 /. sqrt ((t *. t) +. 1.0) in
    let s = t *. c in
    let tau = s /. (1.0 +. c) in
    Matrix.set a p p (app -. (t *. apq));
    Matrix.set a q q (aqq +. (t *. apq));
    Matrix.set a p q 0.0;
    Matrix.set a q p 0.0;
    for i = 0 to n - 1 do
      if i <> p && i <> q then begin
        let aip = Matrix.get a i p and aiq = Matrix.get a i q in
        let aip' = aip -. (s *. (aiq +. (tau *. aip))) in
        let aiq' = aiq +. (s *. (aip -. (tau *. aiq))) in
        Matrix.set a i p aip';
        Matrix.set a p i aip';
        Matrix.set a i q aiq';
        Matrix.set a q i aiq'
      end
    done;
    for i = 0 to n - 1 do
      let vip = Matrix.get v i p and viq = Matrix.get v i q in
      Matrix.set v i p (vip -. (s *. (viq +. (tau *. vip))));
      Matrix.set v i q (viq +. (s *. (vip -. (tau *. viq))))
    done
  end

let eigensystem ?(tol = 1e-10) ?(max_sweeps = 100) m =
  if not (Matrix.is_symmetric ~tol:1e-8 m) then
    invalid_arg "Jacobi.eigensystem: matrix is not symmetric";
  let n = Matrix.dim m in
  let a = Matrix.copy m in
  let v = Matrix.identity n in
  let sweeps = ref 0 in
  while Matrix.frobenius_off_diagonal a > tol && !sweeps < max_sweeps do
    incr sweeps;
    for p = 0 to n - 2 do
      for q = p + 1 to n - 1 do
        rotate a v p q
      done
    done
  done;
  let order = Array.init n (fun i -> i) in
  Array.sort (fun i j -> compare (Matrix.get a j j) (Matrix.get a i i)) order;
  let eigs = Array.map (fun i -> Matrix.get a i i) order in
  let vecs = Matrix.init n (fun i j -> Matrix.get v i order.(j)) in
  (eigs, vecs)

let eigenvalues ?tol ?max_sweeps m = fst (eigensystem ?tol ?max_sweeps m)
