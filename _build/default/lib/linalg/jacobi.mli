(** Cyclic Jacobi eigensolver for real symmetric matrices.

    Produces the full spectrum to high accuracy in [O(n^3)] per sweep; this is
    the exact oracle against which the power-iteration estimates used on large
    graphs are validated.  Intended for matrices up to a few hundred rows. *)

val eigenvalues : ?tol:float -> ?max_sweeps:int -> Matrix.t -> float array
(** [eigenvalues m] are the eigenvalues of the symmetric matrix [m], sorted in
    {e decreasing} order.

    @param tol stop when the off-diagonal Frobenius norm falls below [tol]
      (default [1e-10]).
    @param max_sweeps safety cap on full Jacobi sweeps (default [100]).
    @raise Invalid_argument if [m] is not symmetric. *)

val eigensystem :
  ?tol:float -> ?max_sweeps:int -> Matrix.t -> float array * Matrix.t
(** Like {!eigenvalues} but also returns the matrix whose {e columns} are the
    corresponding orthonormal eigenvectors (same decreasing order). *)
