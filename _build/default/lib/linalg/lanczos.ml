let default_rng () = Ewalk_prng.Rng.create ~seed:0x1A2C05 ()

(* Full-reorthogonalisation Lanczos: returns the tridiagonal coefficients
   (alphas, betas) actually computed (may stop early on invariant
   subspaces). *)
let tridiagonalize ?rng ?steps ~deflate op =
  let n = op.Power.n in
  let rng = match rng with Some r -> r | None -> default_rng () in
  let steps = match steps with Some s -> min s n | None -> min 60 n in
  let basis = ref [] in
  let project v =
    List.iter (fun u -> Vec.project_out u v) deflate;
    List.iter (fun u -> Vec.project_out u v) !basis
  in
  let q = Vec.random_unit rng n in
  project q;
  Vec.normalize q;
  let alphas = ref [] and betas = ref [] in
  let continue_ = ref (Vec.norm2 q > 0.5) in
  let q_prev = ref (Vec.make n 0.0) in
  let q_cur = ref q in
  let beta_prev = ref 0.0 in
  let k = ref 0 in
  let w = Vec.make n 0.0 in
  while !continue_ && !k < steps do
    incr k;
    op.Power.apply !q_cur w;
    let alpha = Vec.dot !q_cur w in
    alphas := alpha :: !alphas;
    (* w <- w - alpha q_cur - beta_prev q_prev, then full reorth. *)
    Vec.axpy (-.alpha) !q_cur w;
    Vec.axpy (-. !beta_prev) !q_prev w;
    basis := !q_cur :: !basis;
    let w' = Vec.copy w in
    project w';
    let beta = Vec.norm2 w' in
    if beta < 1e-12 then continue_ := false
    else begin
      betas := beta :: !betas;
      Vec.scale_in_place (1.0 /. beta) w';
      q_prev := !q_cur;
      q_cur := w';
      beta_prev := beta
    end
  done;
  ( Array.of_list (List.rev !alphas),
    Array.of_list (List.rev !betas) )

let ritz_of_tridiagonal alphas betas =
  let k = Array.length alphas in
  if k = 0 then [||]
  else begin
    let t =
      Matrix.init k (fun i j ->
          if i = j then alphas.(i)
          else if abs (i - j) = 1 then betas.(min i j)
          else 0.0)
    in
    Jacobi.eigenvalues t
  end

let ritz_values ?rng ?steps op =
  let alphas, betas = tridiagonalize ?rng ?steps ~deflate:[] op in
  ritz_of_tridiagonal alphas betas

let extreme ?rng ?steps op =
  let ritz = ritz_values ?rng ?steps op in
  if Array.length ritz = 0 then (0.0, 0.0)
  else (ritz.(0), ritz.(Array.length ritz - 1))

let second_largest ?rng ?steps ~deflate op =
  let alphas, betas = tridiagonalize ?rng ?steps ~deflate:[ deflate ] op in
  let ritz = ritz_of_tridiagonal alphas betas in
  if Array.length ritz = 0 then 0.0 else ritz.(0)
