(** Lanczos iteration for extreme eigenvalues of symmetric operators.

    Power iteration stalls when the second and third eigenvalues are nearly
    degenerate — exactly the situation at the bulk edge of a random regular
    graph's spectrum.  Lanczos builds a Krylov tridiagonalisation whose Ritz
    values converge to the extreme eigenvalues far faster.  We use full
    reorthogonalisation (the operators here are test-to-moderate scale), and
    diagonalise the tridiagonal matrix with the existing Jacobi solver. *)

val ritz_values :
  ?rng:Ewalk_prng.Rng.t -> ?steps:int -> Power.operator -> float array
(** [ritz_values op] runs [steps] (default [min 60 n]) Lanczos iterations
    from a random unit start and returns the Ritz values, sorted in
    decreasing order.  The first few approximate the largest eigenvalues,
    the last few the smallest. *)

val extreme :
  ?rng:Ewalk_prng.Rng.t -> ?steps:int -> Power.operator -> float * float
(** [(largest, smallest)] eigenvalue estimates. *)

val second_largest :
  ?rng:Ewalk_prng.Rng.t -> ?steps:int -> deflate:Vec.t -> Power.operator ->
  float
(** Largest Ritz value of the operator restricted to the complement of the
    {e unit} vector [deflate] — the graph [lambda_2] when [deflate] is the
    square-root-degree vector. *)
