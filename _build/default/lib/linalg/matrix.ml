type t = { n : int; a : float array }

let create n = { n; a = Array.make (n * n) 0.0 }

let init n f =
  let a = Array.make (n * n) 0.0 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      a.((i * n) + j) <- f i j
    done
  done;
  { n; a }

let dim m = m.n
let get m i j = m.a.((i * m.n) + j)
let set m i j v = m.a.((i * m.n) + j) <- v
let copy m = { n = m.n; a = Array.copy m.a }

let identity n = init n (fun i j -> if i = j then 1.0 else 0.0)

let mul_vec m v =
  if Array.length v <> m.n then invalid_arg "Matrix.mul_vec: dim mismatch";
  Array.init m.n (fun i ->
      let s = ref 0.0 in
      for j = 0 to m.n - 1 do
        s := !s +. (m.a.((i * m.n) + j) *. v.(j))
      done;
      !s)

let mul x y =
  if x.n <> y.n then invalid_arg "Matrix.mul: dim mismatch";
  let n = x.n in
  init n (fun i j ->
      let s = ref 0.0 in
      for k = 0 to n - 1 do
        s := !s +. (get x i k *. get y k j)
      done;
      !s)

let transpose m = init m.n (fun i j -> get m j i)

let is_symmetric ?(tol = 1e-9) m =
  let ok = ref true in
  for i = 0 to m.n - 1 do
    for j = i + 1 to m.n - 1 do
      if Float.abs (get m i j -. get m j i) > tol then ok := false
    done
  done;
  !ok

let frobenius_off_diagonal m =
  let s = ref 0.0 in
  for i = 0 to m.n - 1 do
    for j = 0 to m.n - 1 do
      if i <> j then begin
        let v = get m i j in
        s := !s +. (v *. v)
      end
    done
  done;
  sqrt !s
