(** Minimal dense square-matrix support for test-scale spectra.

    Large-graph spectral estimation goes through {!Csr} and {!Power}; this
    module exists so small graphs (up to a few hundred vertices) can have
    their {e full} spectrum computed exactly by {!Jacobi} and used as an
    oracle in the test suite. *)

type t
(** A dense [n x n] matrix of floats. *)

val create : int -> t
(** [create n] is the zero [n x n] matrix. *)

val init : int -> (int -> int -> float) -> t
(** [init n f] has entry [(i, j)] equal to [f i j]. *)

val dim : t -> int
val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit
val copy : t -> t

val identity : int -> t

val mul_vec : t -> Vec.t -> Vec.t
(** [mul_vec m v] is the matrix-vector product. *)

val mul : t -> t -> t
(** Matrix-matrix product.  @raise Invalid_argument on dimension mismatch. *)

val transpose : t -> t

val is_symmetric : ?tol:float -> t -> bool

val frobenius_off_diagonal : t -> float
(** Frobenius norm of the off-diagonal part; the Jacobi convergence metric. *)
