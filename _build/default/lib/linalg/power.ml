type operator = { n : int; apply : Vec.t -> Vec.t -> unit }

let of_csr csr = { n = Csr.dim csr; apply = (fun x y -> Csr.mul_vec_into csr x y) }

let of_matrix m =
  {
    n = Matrix.dim m;
    apply =
      (fun x y ->
        let z = Matrix.mul_vec m x in
        Array.blit z 0 y 0 (Array.length z));
  }

let dominant ?rng ?(tol = 1e-9) ?(max_iter = 20_000) ?(deflate = []) op =
  let rng =
    match rng with Some r -> r | None -> Ewalk_prng.Rng.create ~seed:0xE16 ()
  in
  let x = Vec.random_unit rng op.n in
  List.iter (fun u -> Vec.project_out u x) deflate;
  Vec.normalize x;
  let y = Vec.make op.n 0.0 in
  let rayleigh = ref 0.0 in
  let prev = ref infinity in
  let iter = ref 0 in
  let converged = ref false in
  while (not !converged) && !iter < max_iter do
    incr iter;
    op.apply x y;
    List.iter (fun u -> Vec.project_out u y) deflate;
    rayleigh := Vec.dot x y;
    let norm = Vec.norm2 y in
    if norm < 1e-300 then begin
      (* Deflated operator annihilates the iterate: remaining spectrum is 0. *)
      rayleigh := 0.0;
      converged := true
    end
    else begin
      Array.blit y 0 x 0 op.n;
      Vec.scale_in_place (1.0 /. norm) x;
      if Float.abs (!rayleigh -. !prev) <= tol *. (1.0 +. Float.abs !rayleigh)
      then converged := true;
      prev := !rayleigh
    end
  done;
  (!rayleigh, x)

let second_largest_magnitude ?rng ?tol ?max_iter ~top_eigenvector op =
  let lambda, _ =
    dominant ?rng ?tol ?max_iter ~deflate:[ top_eigenvector ] op
  in
  lambda
