(** Power iteration with deflation for symmetric operators.

    Estimates the extreme eigenvalues of a symmetric linear operator given
    only a mat-vec; this is how `lambda_max` of large graphs is computed
    (the graph supplies the normalised adjacency as a {!Csr} matrix or a bare
    function).  Accuracy is validated against {!Jacobi} in the test suite. *)

type operator = { n : int; apply : Vec.t -> Vec.t -> unit }
(** A symmetric operator on [R^n]; [apply x y] writes the image of [x] into
    [y]. *)

val of_csr : Csr.t -> operator
val of_matrix : Matrix.t -> operator

val dominant :
  ?rng:Ewalk_prng.Rng.t ->
  ?tol:float ->
  ?max_iter:int ->
  ?deflate:Vec.t list ->
  operator ->
  float * Vec.t
(** [dominant op] estimates the eigenvalue of largest {e absolute} value of
    [op], together with a unit eigenvector, by power iteration.

    @param deflate a list of known {e unit} eigenvectors to project out at
      every step (so the iteration converges to the dominant eigenvalue of
      the orthogonal complement).
    @param tol Rayleigh-quotient convergence threshold (default [1e-9]).
    @param max_iter iteration cap (default [20_000]).

    The sign of the returned eigenvalue is recovered from the Rayleigh
    quotient, so dominant negative eigenvalues are reported negative. *)

val second_largest_magnitude :
  ?rng:Ewalk_prng.Rng.t ->
  ?tol:float ->
  ?max_iter:int ->
  top_eigenvector:Vec.t ->
  operator ->
  float
(** [second_largest_magnitude ~top_eigenvector op] deflates the (known,
    unit-norm) dominant eigenvector and returns the next eigenvalue by
    magnitude — exactly the `lambda_max` of random-walk theory when [op] is
    the normalised adjacency operator and [top_eigenvector] is the
    square-root-degree vector. *)
