(* LU with partial pivoting, factorising a copy. *)
let lu a =
  let n = Matrix.dim a in
  let m = Matrix.copy a in
  let perm = Array.init n (fun i -> i) in
  let sign = ref 1.0 in
  for k = 0 to n - 1 do
    (* Pivot selection. *)
    let best = ref k in
    for i = k + 1 to n - 1 do
      if Float.abs (Matrix.get m i k) > Float.abs (Matrix.get m !best k) then
        best := i
    done;
    if !best <> k then begin
      for j = 0 to n - 1 do
        let t = Matrix.get m k j in
        Matrix.set m k j (Matrix.get m !best j);
        Matrix.set m !best j t
      done;
      let t = perm.(k) in
      perm.(k) <- perm.(!best);
      perm.(!best) <- t;
      sign := -. !sign
    end;
    let pivot = Matrix.get m k k in
    if Float.abs pivot < 1e-300 then failwith "Solve: singular matrix";
    for i = k + 1 to n - 1 do
      let factor = Matrix.get m i k /. pivot in
      Matrix.set m i k factor;
      for j = k + 1 to n - 1 do
        Matrix.set m i j (Matrix.get m i j -. (factor *. Matrix.get m k j))
      done
    done
  done;
  (m, perm, !sign)

let back_substitute lu_m perm b =
  let n = Matrix.dim lu_m in
  let x = Array.init n (fun i -> b.(perm.(i))) in
  (* Forward solve L y = P b (unit lower triangle stored below diagonal). *)
  for i = 1 to n - 1 do
    for j = 0 to i - 1 do
      x.(i) <- x.(i) -. (Matrix.get lu_m i j *. x.(j))
    done
  done;
  (* Back solve U x = y. *)
  for i = n - 1 downto 0 do
    for j = i + 1 to n - 1 do
      x.(i) <- x.(i) -. (Matrix.get lu_m i j *. x.(j))
    done;
    x.(i) <- x.(i) /. Matrix.get lu_m i i
  done;
  x

let solve a b =
  if Array.length b <> Matrix.dim a then
    invalid_arg "Solve.solve: dimension mismatch";
  let lu_m, perm, _ = lu a in
  back_substitute lu_m perm b

let solve_many a b =
  let n = Matrix.dim a in
  if Matrix.dim b <> n then invalid_arg "Solve.solve_many: dimension mismatch";
  let lu_m, perm, _ = lu a in
  let out = Matrix.create n in
  for col = 0 to n - 1 do
    let rhs = Array.init n (fun i -> Matrix.get b i col) in
    let x = back_substitute lu_m perm rhs in
    for i = 0 to n - 1 do
      Matrix.set out i col x.(i)
    done
  done;
  out

let determinant_sign_log a =
  let lu_m, _, sign = lu a in
  let n = Matrix.dim a in
  let log_abs = ref 0.0 and s = ref sign in
  for i = 0 to n - 1 do
    let d = Matrix.get lu_m i i in
    if d < 0.0 then s := -. !s;
    log_abs := !log_abs +. log (Float.abs d)
  done;
  (!s, !log_abs)
