(** Dense linear-system solving (Gaussian elimination, partial pivoting).

    Exact hitting times of a random walk satisfy a linear system
    ([E_u H_v = 1 + sum_w P(u,w) E_w H_v] for [u <> v]); {!Hitting} solves
    it through this module.  Intended for test-scale systems (hundreds of
    unknowns). *)

val solve : Matrix.t -> Vec.t -> Vec.t
(** [solve a b] returns [x] with [a x = b].  [a] is not modified.
    @raise Invalid_argument on dimension mismatch.
    @raise Failure if [a] is (numerically) singular. *)

val solve_many : Matrix.t -> Matrix.t -> Matrix.t
(** [solve_many a b] solves [a x = b] column-wise (one factorisation, many
    right-hand sides). *)

val determinant_sign_log : Matrix.t -> float * float
(** [(sign, log_abs_det)] from the LU factorisation: a cheap
    invertibility/conditioning probe used by the tests. *)
