type t = float array

let make = Array.make
let init = Array.init
let copy = Array.copy

let dot a b =
  let n = Array.length a in
  if Array.length b <> n then invalid_arg "Vec.dot: length mismatch";
  let s = ref 0.0 in
  for i = 0 to n - 1 do
    s := !s +. (a.(i) *. b.(i))
  done;
  !s

let norm2 a = sqrt (dot a a)

let scale_in_place c a =
  for i = 0 to Array.length a - 1 do
    a.(i) <- c *. a.(i)
  done

let scale c a =
  let b = copy a in
  scale_in_place c b;
  b

let axpy c x y =
  let n = Array.length x in
  if Array.length y <> n then invalid_arg "Vec.axpy: length mismatch";
  for i = 0 to n - 1 do
    y.(i) <- (c *. x.(i)) +. y.(i)
  done

let normalize a =
  let n = norm2 a in
  if n > 0.0 then scale_in_place (1.0 /. n) a

let sub a b =
  let n = Array.length a in
  if Array.length b <> n then invalid_arg "Vec.sub: length mismatch";
  Array.init n (fun i -> a.(i) -. b.(i))

let linf_dist a b =
  let n = Array.length a in
  if Array.length b <> n then invalid_arg "Vec.linf_dist: length mismatch";
  let m = ref 0.0 in
  for i = 0 to n - 1 do
    let d = Float.abs (a.(i) -. b.(i)) in
    if d > !m then m := d
  done;
  !m

let project_out u v =
  let c = dot u v in
  axpy (-.c) u v

let random_unit rng n =
  let rec attempt () =
    let v = Array.init n (fun _ -> Ewalk_prng.Rng.gaussian rng) in
    if norm2 v < 1e-12 then attempt ()
    else begin
      normalize v;
      v
    end
  in
  attempt ()
