(** Dense float-vector helpers shared by the eigensolvers. *)

type t = float array

val make : int -> float -> t
val init : int -> (int -> float) -> t
val copy : t -> t

val dot : t -> t -> float
(** Euclidean inner product.  @raise Invalid_argument on length mismatch. *)

val norm2 : t -> float
(** Euclidean norm. *)

val scale : float -> t -> t
(** [scale a v] is a fresh vector [a * v]. *)

val scale_in_place : float -> t -> unit

val axpy : float -> t -> t -> unit
(** [axpy a x y] performs [y <- a*x + y] in place. *)

val normalize : t -> unit
(** Scale to unit Euclidean norm in place.  No-op on the zero vector. *)

val sub : t -> t -> t
(** Componentwise difference (fresh vector). *)

val linf_dist : t -> t -> float
(** Maximum absolute componentwise difference. *)

val project_out : t -> t -> unit
(** [project_out u v] removes from [v] (in place) its component along the
    {e unit} vector [u]: [v <- v - (u.v) u]. *)

val random_unit : Ewalk_prng.Rng.t -> int -> t
(** A uniformly random direction on the unit sphere (Gaussian method). *)
