lib/prng/rng.ml: Array Float Hashtbl Int64 Splitmix Xoshiro
