lib/prng/rng.mli:
