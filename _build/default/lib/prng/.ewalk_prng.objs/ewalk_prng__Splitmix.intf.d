lib/prng/splitmix.mli:
