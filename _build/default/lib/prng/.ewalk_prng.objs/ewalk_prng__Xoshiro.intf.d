lib/prng/xoshiro.mli:
