(** SplitMix64: a tiny, fast 64-bit generator used for seeding.

    SplitMix64 (Steele, Lea & Flood, OOPSLA 2014) has a single 64-bit word of
    state advanced by a Weyl sequence and finalised by a variant of the
    MurmurHash3 mixer.  Its whole purpose here is to expand a user seed into
    the 256-bit state of {!Xoshiro}, and to derive independent child seeds for
    {!Rng.split}.  It must never be used directly for experiments. *)

type t
(** Mutable SplitMix64 state. *)

val create : int64 -> t
(** [create seed] initialises the state with [seed]. *)

val next : t -> int64
(** [next t] advances the state and returns the next 64-bit output. *)

val mix : int64 -> int64
(** [mix z] is the stateless finaliser applied to [z]: a bijective mixing
    function useful for hashing seeds together deterministically. *)
