(** xoshiro256++: the core pseudo-random generator.

    xoshiro256++ (Blackman & Vigna, 2019) is a 256-bit-state all-purpose
    generator: fast, equidistributed in 4 dimensions, and passing BigCrush.
    The paper's experiments used Python's Mersenne Twister; xoshiro256++ is a
    modern replacement of at least equal statistical quality (see DESIGN.md,
    substitution table).

    The state must not be everywhere zero; seeding through {!of_seed} uses
    SplitMix64 as recommended by the authors and cannot produce the zero
    state. *)

type t
(** Mutable 256-bit generator state. *)

val of_seed : int64 -> t
(** [of_seed seed] expands [seed] into a full state via SplitMix64. *)

val of_state : int64 -> int64 -> int64 -> int64 -> t
(** [of_state s0 s1 s2 s3] uses the given words verbatim.
    @raise Invalid_argument if all four words are zero. *)

val copy : t -> t
(** [copy t] is an independent generator with identical current state. *)

val next : t -> int64
(** [next t] advances the state and returns 64 pseudo-random bits. *)

val jump : t -> unit
(** [jump t] advances [t] by 2{^128} steps: the canonical way to carve
    non-overlapping subsequences out of one stream. *)

val state : t -> int64 * int64 * int64 * int64
(** [state t] exposes the current state words (for checkpointing). *)
