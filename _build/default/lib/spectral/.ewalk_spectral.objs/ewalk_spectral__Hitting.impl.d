lib/spectral/hitting.ml: Array Ewalk_graph Ewalk_linalg Graph Spectral Traversal
