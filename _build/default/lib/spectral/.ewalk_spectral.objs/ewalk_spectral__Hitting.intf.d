lib/spectral/hitting.mli: Ewalk_graph Ewalk_linalg Graph
