lib/spectral/spectral.ml: Array Csr Ewalk_graph Ewalk_linalg Float Graph Jacobi Lanczos List Power Vec
