lib/spectral/spectral.mli: Csr Ewalk_graph Ewalk_linalg Ewalk_prng Graph Vec
