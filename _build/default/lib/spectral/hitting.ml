open Ewalk_graph
module Matrix = Ewalk_linalg.Matrix
module Solve = Ewalk_linalg.Solve

let check g =
  if Graph.n g > 500 then invalid_arg "Hitting: graph too large (n > 500)";
  if Graph.m g = 0 then invalid_arg "Hitting: graph has no edges";
  if not (Traversal.is_connected g) then
    invalid_arg "Hitting: graph is disconnected"

(* Dense walk matrix P(u, w) = slots(u -> w) / d(u). *)
let walk_matrix g =
  let n = Graph.n g in
  let p = Matrix.create n in
  for u = 0 to n - 1 do
    let d = float_of_int (Graph.degree g u) in
    Graph.iter_neighbors g u (fun w _ ->
        Matrix.set p u w (Matrix.get p u w +. (1.0 /. d)))
  done;
  p

let hitting_times_to_inner g p ~target =
  let n = Graph.n g in
  (* Unknowns are the n - 1 vertices other than the target. *)
  let idx = Array.make n (-1) in
  let back = Array.make (n - 1) 0 in
  let next = ref 0 in
  for u = 0 to n - 1 do
    if u <> target then begin
      idx.(u) <- !next;
      back.(!next) <- u;
      incr next
    end
  done;
  let a =
    Matrix.init (n - 1) (fun i j ->
        let u = back.(i) and w = back.(j) in
        (if i = j then 1.0 else 0.0) -. Matrix.get p u w)
  in
  let b = Array.make (n - 1) 1.0 in
  let x = Solve.solve a b in
  let h = Array.make n 0.0 in
  for i = 0 to n - 2 do
    h.(back.(i)) <- x.(i)
  done;
  h

let hitting_times_to g ~target =
  check g;
  if target < 0 || target >= Graph.n g then
    invalid_arg "Hitting.hitting_times_to: target out of range";
  hitting_times_to_inner g (walk_matrix g) ~target

let hitting_matrix g =
  check g;
  let n = Graph.n g in
  let p = walk_matrix g in
  let out = Matrix.create n in
  for v = 0 to n - 1 do
    let h = hitting_times_to_inner g p ~target:v in
    for u = 0 to n - 1 do
      Matrix.set out u v h.(u)
    done
  done;
  out

let commute_time g u v =
  let hu = hitting_times_to g ~target:u in
  let hv = hitting_times_to g ~target:v in
  hv.(u) +. hu.(v)

let expected_return_time g v =
  let h = hitting_times_to g ~target:v in
  let d = float_of_int (Graph.degree g v) in
  Graph.fold_neighbors g v (fun acc w _ -> acc +. (h.(w) /. d)) 1.0

let hitting_from_stationary g v =
  let h = hitting_times_to g ~target:v in
  let pi = Spectral.stationary g in
  let acc = ref 0.0 in
  for u = 0 to Graph.n g - 1 do
    acc := !acc +. (pi.(u) *. h.(u))
  done;
  !acc

let effective_resistance g u v =
  check g;
  let n = Graph.n g in
  if u < 0 || u >= n || v < 0 || v >= n then
    invalid_arg "Hitting.effective_resistance: vertex out of range";
  if Graph.count_self_loops g > 0 then
    invalid_arg "Hitting.effective_resistance: self-loops not supported";
  if u = v then 0.0
  else begin
    (* Ground v: solve L' x = b on the other n - 1 vertices, where L' is
       the Laplacian with row/column v removed and b injects one ampere at
       u.  The potential at u is the effective resistance. *)
    let idx = Array.make n (-1) in
    let back = Array.make (n - 1) 0 in
    let next = ref 0 in
    for w = 0 to n - 1 do
      if w <> v then begin
        idx.(w) <- !next;
        back.(!next) <- w;
        incr next
      end
    done;
    let l =
      Matrix.init (n - 1) (fun i j ->
          let a = back.(i) and b = back.(j) in
          if i = j then float_of_int (Graph.degree g a)
          else begin
            (* Negative multiplicity of edges between a and b. *)
            let count = ref 0 in
            Graph.iter_neighbors g a (fun w _ -> if w = b then incr count);
            -.float_of_int !count
          end)
    in
    let rhs = Array.make (n - 1) 0.0 in
    rhs.(idx.(u)) <- 1.0;
    let x = Solve.solve l rhs in
    x.(idx.(u))
  end

let matthews_upper_bound g =
  check g;
  let n = Graph.n g in
  let hm = hitting_matrix g in
  let worst = ref 0.0 in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      if Matrix.get hm u v > !worst then worst := Matrix.get hm u v
    done
  done;
  let harmonic = ref 0.0 in
  for i = 1 to n do
    harmonic := !harmonic +. (1.0 /. float_of_int i)
  done;
  !worst *. !harmonic
