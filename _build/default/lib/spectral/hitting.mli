(** Exact hitting, return, and commute times via linear solves.

    The quantities of the paper's Section 2.2, computed exactly on
    test-scale graphs: [E_u H_v] solves the first-step linear system
    [(I - Q) h = 1] where [Q] is the walk matrix with the target row and
    column deleted.  These exact values back the simulated estimates and
    the spectral bounds (Lemma 6, Corollary 9) in the test suite, and power
    the Matthews-bound experiment.  Dense; intended for [n] up to a few
    hundred. *)

open Ewalk_graph

val hitting_times_to : Graph.t -> target:Graph.vertex -> float array
(** [h.(u) = E_u H_target], with [h.(target) = 0].
    @raise Invalid_argument if the graph is disconnected, edgeless, or has
    more than 500 vertices. *)

val hitting_matrix : Graph.t -> Ewalk_linalg.Matrix.t
(** [(u, v)] entry is [E_u H_v].  [n] linear solves. *)

val commute_time : Graph.t -> Graph.vertex -> Graph.vertex -> float
(** [K(u, v) = E_u H_v + E_v H_u]. *)

val expected_return_time : Graph.t -> Graph.vertex -> float
(** [E_v T_v^+ = 1 + sum_w P(v, w) E_w H_v]; equals [1 / pi_v] (the identity
    used in Theorem 5's proof), which the tests verify. *)

val hitting_from_stationary : Graph.t -> Graph.vertex -> float
(** [E_pi H_v = sum_u pi_u E_u H_v] — the quantity Lemma 6 bounds by
    [1 / ((1 - lambda_max) pi_v)]. *)

val matthews_upper_bound : Graph.t -> float
(** Matthews: [C_V <= (max_{u,v} E_u H_v) * H_n] with [H_n] the harmonic
    number — an exact-arithmetic cover-time upper bound to set against the
    measured cover times. *)

val effective_resistance : Graph.t -> Graph.vertex -> Graph.vertex -> float
(** The graph seen as a unit-resistor network: the voltage difference when
    one ampere flows from [u] to [v] (Laplacian solve with [v] grounded).
    Satisfies the commute-time identity [K(u, v) = 2 m R(u, v)] (Chandra et
    al.), which the test suite verifies against {!commute_time}.
    @raise Invalid_argument as {!hitting_times_to}; 0 when [u = v]. *)
