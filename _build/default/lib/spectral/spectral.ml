open Ewalk_graph
open Ewalk_linalg

let stationary g =
  let m = Graph.m g in
  if m = 0 then invalid_arg "Spectral.stationary: graph has no edges";
  let denom = float_of_int (2 * m) in
  Array.init (Graph.n g) (fun v -> float_of_int (Graph.degree g v) /. denom)

let check_min_degree g name =
  if Graph.n g > 0 && Graph.min_degree g = 0 then
    invalid_arg (name ^ ": vertex of degree 0")

let slot_weights g weight =
  (* Build the row entries of a walk-like operator: for every adjacency slot
     (u, w) add [weight u w] at (u, w).  Parallel slots accumulate. *)
  let entries = ref [] in
  for u = Graph.n g - 1 downto 0 do
    Graph.iter_neighbors g u (fun w _ -> entries := (u, w, weight u w) :: !entries)
  done;
  Csr.of_rows (Graph.n g) !entries

let normalized_adjacency g =
  check_min_degree g "Spectral.normalized_adjacency";
  let inv_sqrt_deg =
    Array.init (Graph.n g) (fun v ->
        1.0 /. sqrt (float_of_int (Graph.degree g v)))
  in
  slot_weights g (fun u w -> inv_sqrt_deg.(u) *. inv_sqrt_deg.(w))

let transition_matrix g =
  check_min_degree g "Spectral.transition_matrix";
  slot_weights g (fun u _ -> 1.0 /. float_of_int (Graph.degree g u))

let lazy_normalized_adjacency g =
  check_min_degree g "Spectral.lazy_normalized_adjacency";
  let inv_sqrt_deg =
    Array.init (Graph.n g) (fun v ->
        1.0 /. sqrt (float_of_int (Graph.degree g v)))
  in
  let entries = ref [] in
  for u = Graph.n g - 1 downto 0 do
    entries := (u, u, 0.5) :: !entries;
    Graph.iter_neighbors g u (fun w _ ->
        entries := (u, w, 0.5 *. inv_sqrt_deg.(u) *. inv_sqrt_deg.(w)) :: !entries)
  done;
  Csr.of_rows (Graph.n g) !entries

let sqrt_degree_unit g =
  let v = Array.init (Graph.n g) (fun u -> sqrt (float_of_int (Graph.degree g u))) in
  Vec.normalize v;
  v

let spectrum_exact g =
  let dense = Csr.to_dense (normalized_adjacency g) in
  Jacobi.eigenvalues dense

type gap_report = {
  lambda_2 : float;
  lambda_n : float;
  lambda_max : float;
  gap : float;
}

let gap_exact g =
  let eigs = spectrum_exact g in
  let n = Array.length eigs in
  if n < 2 then invalid_arg "Spectral.gap_exact: need at least 2 vertices";
  let lambda_2 = eigs.(1) and lambda_n = eigs.(n - 1) in
  let lambda_max = Float.max lambda_2 (Float.abs lambda_n) in
  { lambda_2; lambda_n; lambda_max; gap = 1.0 -. lambda_max }

let lambda_max_power ?rng ?tol ?max_iter g =
  let op = Power.of_csr (normalized_adjacency g) in
  (* The deflated iteration converges to the signed eigenvalue of largest
     magnitude; the paper's lambda_max = max(lambda_2, |lambda_n|) is its
     absolute value. *)
  Float.abs
    (Power.second_largest_magnitude ?rng ?tol ?max_iter
       ~top_eigenvector:(sqrt_degree_unit g) op)

let lambda_max ?(exact_threshold = 256) g =
  if Graph.n g <= exact_threshold then (gap_exact g).lambda_max
  else lambda_max_power g

let spectral_gap ?exact_threshold g =
  Float.max 0.0 (1.0 -. lambda_max ?exact_threshold g)

let lambda_2_lanczos ?steps g =
  let op = Power.of_csr (normalized_adjacency g) in
  Lanczos.second_largest ?steps ~deflate:(sqrt_degree_unit g) op

let gap_lanczos ?steps g =
  let op = Power.of_csr (normalized_adjacency g) in
  let alphas_ritz =
    let deflate = sqrt_degree_unit g in
    (* One Krylov run gives both spectrum ends of the deflated operator. *)
    let top = Lanczos.second_largest ?steps ~deflate op in
    let _, bottom = Lanczos.extreme ?steps op in
    (top, bottom)
  in
  let lambda_2, lambda_n = alphas_ritz in
  let lambda_max = Float.max lambda_2 (Float.abs lambda_n) in
  { lambda_2; lambda_n; lambda_max; gap = 1.0 -. lambda_max }

let adjacency_lambda_2 ?tol ?max_iter g =
  if not (Graph.is_regular g) then
    invalid_arg "Spectral.adjacency_lambda_2: graph is not regular";
  let r = float_of_int (Graph.max_degree g) in
  let l2 =
    if Graph.n g <= 256 then (gap_exact g).lambda_2
    else begin
      (* lambda_2 (not |lambda_n|): deflate v1 from the lazy operator, whose
         spectrum is (1 + lambda)/2, strictly positive ordering. *)
      let op = Power.of_csr (lazy_normalized_adjacency g) in
      let mu =
        Power.second_largest_magnitude ?tol ?max_iter
          ~top_eigenvector:(sqrt_degree_unit g) op
      in
      (2.0 *. mu) -. 1.0
    end
  in
  r *. l2

let mixing_time_bound ?(k = 6.0) g =
  let n = float_of_int (Graph.n g) in
  k *. log n /. Float.max (spectral_gap g) 1e-15

let hitting_time_bound g v =
  let pi = stationary g in
  1.0 /. (Float.max (spectral_gap g) 1e-15 *. pi.(v))

let set_hitting_time_bound g s =
  if s = [] then invalid_arg "Spectral.set_hitting_time_bound: empty set";
  let d_s = List.fold_left (fun acc v -> acc + Graph.degree g v) 0 s in
  let m = float_of_int (Graph.m g) in
  2.0 *. m /. (float_of_int d_s *. Float.max (spectral_gap g) 1e-15)

let conductance_exact g =
  let n = Graph.n g and m = Graph.m g in
  if n > 24 then invalid_arg "Spectral.conductance_exact: n > 24";
  if m = 0 then invalid_arg "Spectral.conductance_exact: no edges";
  let deg = Graph.degrees g in
  let best = ref infinity in
  (* Enumerate non-empty proper subsets once each (fix vertex 0 outside X
     would miss sets containing 0; instead enumerate all and filter by the
     degree condition d(X) <= m, as the paper defines Phi). *)
  for mask = 1 to (1 lsl n) - 2 do
    let d_x = ref 0 in
    for v = 0 to n - 1 do
      if mask land (1 lsl v) <> 0 then d_x := !d_x + deg.(v)
    done;
    if !d_x <= m && !d_x > 0 then begin
      let cut = ref 0 in
      Graph.iter_edges g (fun _ u v ->
          let u_in = mask land (1 lsl u) <> 0
          and v_in = mask land (1 lsl v) <> 0 in
          if u_in <> v_in then incr cut);
      let phi = float_of_int !cut /. float_of_int !d_x in
      if phi < !best then best := phi
    end
  done;
  !best

let cheeger_bounds g =
  let phi = conductance_exact g in
  (1.0 -. (2.0 *. phi), 1.0 -. (phi *. phi /. 2.0))
