(** Spectral quantities of the simple random walk on a graph.

    The paper measures edge expansion through the eigenvalue gap
    [1 - lambda_max] of the walk's transition matrix [P], where
    [lambda_max = max(lambda_2, |lambda_n|)] (Section 2.1).  [P] is similar
    to the symmetric normalised adjacency [N = D^{-1/2} A D^{-1/2}], so all
    computations happen on [N]: exactly (Jacobi) for small graphs, by
    deflated power iteration for large ones.  Self-loops follow the standard
    convention (a loop adds 2 to its vertex's degree and is traversed with
    probability 2/d(v)), matching {!Ewalk_graph.Graph}. *)

open Ewalk_graph
open Ewalk_linalg

val stationary : Graph.t -> float array
(** [pi_v = d(v) / 2m].  @raise Invalid_argument if the graph has no
    edges. *)

val normalized_adjacency : Graph.t -> Csr.t
(** The symmetric operator [N = D^{-1/2} A D^{-1/2}] as a sparse matrix.
    @raise Invalid_argument if some vertex has degree 0. *)

val transition_matrix : Graph.t -> Csr.t
(** The walk matrix [P] with [P(u, v) = (slots from u to v) / d(u)]. *)

val lazy_normalized_adjacency : Graph.t -> Csr.t
(** [(I + N) / 2] — spectrum mapped into [\[0, 1\]], making
    [lambda_max = lambda_2]; the paper's lazification (Section 2.1). *)

val sqrt_degree_unit : Graph.t -> Vec.t
(** The unit top eigenvector of [N]: [v1(u) = sqrt d(u)], normalised.
    Valid as stated only for connected graphs. *)

val spectrum_exact : Graph.t -> float array
(** Full walk spectrum [lambda_1 >= ... >= lambda_n] by dense Jacobi on [N].
    Intended for [n] up to a few hundred. *)

type gap_report = {
  lambda_2 : float;
  lambda_n : float;
  lambda_max : float; (* max (lambda_2, |lambda_n|) *)
  gap : float; (* 1 - lambda_max *)
}

val gap_exact : Graph.t -> gap_report
(** Exact extreme eigenvalues via {!spectrum_exact} (small graphs). *)

val lambda_max_power :
  ?rng:Ewalk_prng.Rng.t -> ?tol:float -> ?max_iter:int -> Graph.t -> float
(** [lambda_max] of a {e connected} graph by power iteration on [N] with the
    known top eigenvector deflated.  Accuracy governed by [tol] on the
    Rayleigh quotient (default [1e-9]). *)

val lambda_max : ?exact_threshold:int -> Graph.t -> float
(** Dispatch: Jacobi when [n <= exact_threshold] (default 256), deflated
    power iteration otherwise. *)

val lambda_2_lanczos : ?steps:int -> Graph.t -> float
(** [lambda_2] of a {e connected} graph by deflated Lanczos — converges
    where plain power iteration stalls on the near-degenerate bulk edge of
    random regular spectra.  [steps] Krylov iterations (default 60). *)

val gap_lanczos : ?steps:int -> Graph.t -> gap_report
(** Full gap report from one Lanczos run on the deflated normalised
    adjacency: [lambda_2] is the top Ritz value, [lambda_n] the bottom. *)

val spectral_gap : ?exact_threshold:int -> Graph.t -> float
(** [1 - lambda_max g], clamped below at [0.]. *)

val adjacency_lambda_2 : ?tol:float -> ?max_iter:int -> Graph.t -> float
(** Second adjacency eigenvalue of a {e regular} graph ([r * lambda_2(P)]);
    the quantity bounded by [2 sqrt (r - 1) + eps] in property P1.
    On large graphs ([n > 256]) this is a deflated power iteration on the
    lazy operator; because the bulk spectrum of a random regular graph is
    nearly degenerate at the top, the iteration plateaus {e just below}
    [lambda_2] — a slight underestimate, never an overestimate of the
    Rayleigh quotient.  [tol]/[max_iter] bound the work (defaults [1e-9] /
    20_000).
    @raise Invalid_argument on an irregular graph. *)

val mixing_time_bound : ?k:float -> Graph.t -> float
(** Lemma 7's mixing time [T = K log n / (1 - lambda_max)], default
    [K = 6]. *)

val hitting_time_bound : Graph.t -> Graph.vertex -> float
(** Lemma 6: [E_pi H_v <= 1 / ((1 - lambda_max) pi_v)]. *)

val set_hitting_time_bound : Graph.t -> Graph.vertex list -> float
(** Corollary 9: [E_pi H_S <= 2m / (d(S) (1 - lambda_max))]. *)

val conductance_exact : Graph.t -> float
(** Exact conductance [Phi = min_{d(X) <= m} e(X, X-bar) / d(X)] by subset
    enumeration.  @raise Invalid_argument for [n > 24] or an edgeless
    graph. *)

val cheeger_bounds : Graph.t -> float * float
(** [(lo, hi)] with [lo = 1 - 2 Phi <= lambda_2 <= 1 - Phi^2 / 2 = hi]
    (eq. 19), computed from {!conductance_exact} — small graphs only. *)
