lib/theory/bounds.ml: Float
