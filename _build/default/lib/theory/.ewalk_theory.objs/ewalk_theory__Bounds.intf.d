lib/theory/bounds.mli:
