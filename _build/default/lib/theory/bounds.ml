let fl = float_of_int

let theorem1_vertex_cover ?(c = 1.0) ~ell ~gap n =
  if ell < 1 then invalid_arg "Bounds.theorem1_vertex_cover: ell < 1";
  if gap <= 0.0 then invalid_arg "Bounds.theorem1_vertex_cover: gap <= 0";
  c *. (fl n +. (fl n *. log (fl (max 2 n)) /. (fl ell *. gap)))

let expander_vertex_cover ?(c = 1.0) ~ell n =
  if ell < 1 then invalid_arg "Bounds.expander_vertex_cover: ell < 1";
  c *. (fl n +. (fl n *. log (fl (max 2 n)) /. fl ell))

let theorem3_edge_cover ?(c = 1.0) ~m ~girth ~max_degree ~gap n =
  if girth < 1 then invalid_arg "Bounds.theorem3_edge_cover: girth < 1";
  if gap <= 0.0 then invalid_arg "Bounds.theorem3_edge_cover: gap <= 0";
  c
  *. (fl m
      +. fl m /. (gap *. gap)
         *. ((log (fl (max 2 n)) /. fl girth) +. log (fl (max 2 max_degree))))

let grw_edge_cover ?(c = 1.0) ~m ~gap n =
  if gap <= 0.0 then invalid_arg "Bounds.grw_edge_cover: gap <= 0";
  fl m +. (c *. fl n *. log (fl (max 2 n)) /. gap)

let edge_cover_sandwich_upper ~m ~srw_vertex_cover = fl m +. srw_vertex_cover

let radzik_lower_bound ~n = fl n /. 4.0 *. log (fl n /. 2.0)

let feige_lower_bound ~n = fl n *. log (fl (max 2 n))

let walk_trivial_lower_bound ~n = max 0 (n - 1)

let mixing_time ?(k = 6.0) ~gap n =
  if gap <= 0.0 then invalid_arg "Bounds.mixing_time: gap <= 0";
  k *. log (fl (max 2 n)) /. gap

let hitting_bound ~pi_v ~gap =
  if gap <= 0.0 || pi_v <= 0.0 then invalid_arg "Bounds.hitting_bound";
  1.0 /. (gap *. pi_v)

let set_hitting_bound ~m ~d_s ~gap =
  if gap <= 0.0 || d_s <= 0 then invalid_arg "Bounds.set_hitting_bound";
  2.0 *. fl m /. (fl d_s *. gap)

let non_visit_probability ~t ~d_s ~m ~gap =
  if m <= 0 || d_s <= 0 then invalid_arg "Bounds.non_visit_probability";
  exp (-.t *. fl d_s *. gap /. (14.0 *. fl m))

let rooted_subgraph_count_bound ~s ~max_degree =
  2.0 ** (fl s *. fl max_degree)

let friedman_lambda2 ?(eps = 0.1) r =
  if r < 2 then invalid_arg "Bounds.friedman_lambda2: r < 2";
  (2.0 *. sqrt (fl (r - 1))) +. eps

let p2_ell ~n ~r =
  if r < 1 then invalid_arg "Bounds.p2_ell: r < 1";
  log (fl (max 2 n)) /. (4.0 *. log (fl r *. Float.exp 1.0))

let expected_cycles ~r ~k =
  if r < 2 || k < 1 then invalid_arg "Bounds.expected_cycles";
  (fl (r - 1) ** fl k) /. (2.0 *. fl k)

let isolated_star_fraction () = 0.125

let coupon_collector ~n =
  let harmonic = ref 0.0 in
  if n <= 10_000 then
    for i = 1 to n do
      harmonic := !harmonic +. (1.0 /. fl i)
    done
  else
    (* H_n = ln n + gamma + 1/2n + O(1/n^2) *)
    harmonic := log (fl n) +. 0.5772156649015329 +. (1.0 /. (2.0 *. fl n));
  fl n *. !harmonic
