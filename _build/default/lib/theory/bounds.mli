(** The paper's quantitative statements as executable formulas.

    Every bound is provided in the exact parametric form the paper states
    it, so experiment tables can print "measured vs bound" columns.  Bounds
    with unspecified constants take the constant as a parameter defaulting
    to 1 (they are shape comparisons, not certified inequalities). *)

val theorem1_vertex_cover : ?c:float -> ell:int -> gap:float -> int -> float
(** Theorem 1: [C_V(E) = O(n + n log n / (ell (1 - lambda_max)))].
    Natural logarithm throughout, as in the paper's fitted constants. *)

val expander_vertex_cover : ?c:float -> ell:int -> int -> float
(** Eq. (1): the Theorem 1 bound with the gap absorbed —
    [O(n + n log n / ell)]. *)

val theorem3_edge_cover :
  ?c:float -> m:int -> girth:int -> max_degree:int -> gap:float -> int ->
  float
(** Theorem 3: [C_E(E) = O(m + m/(1-lambda)^2 (log n / g + log Delta))]. *)

val grw_edge_cover : ?c:float -> m:int -> gap:float -> int -> float
(** Eq. (2) (Orenshtein–Shinkar): [C_E(GRW) = m + O(n log n / (1 -
    lambda_max))]. *)

val edge_cover_sandwich_upper : m:int -> srw_vertex_cover:float -> float
(** Eq. (3) upper bound: [C_E(E) <= m + C_V(SRW)]. *)

val radzik_lower_bound : n:int -> float
(** Theorem 5: any reversible weighted walk has
    [C_V >= (n/4) log (n/2)]. *)

val feige_lower_bound : n:int -> float
(** Feige: [C_V(SRW) >= (1 - o(1)) n log n]; we return the leading term
    [n log n]. *)

val walk_trivial_lower_bound : n:int -> int
(** Any walk-based process needs at least [n - 1] steps. *)

val mixing_time : ?k:float -> gap:float -> int -> float
(** Lemma 7: [T = K log n / (1 - lambda_max)], default [K = 6]. *)

val hitting_bound : pi_v:float -> gap:float -> float
(** Lemma 6: [E_pi H_v <= 1 / ((1 - lambda_max) pi_v)]. *)

val set_hitting_bound : m:int -> d_s:int -> gap:float -> float
(** Corollary 9: [E_pi H_S <= 2m / (d(S) (1 - lambda_max))]. *)

val non_visit_probability : t:float -> d_s:int -> m:int -> gap:float -> float
(** Lemma 13: [Pr(S unvisited at t) <= exp(-t d(S) gap / 14 m)] (valid once
    [t >= 7m/(d(S) gap)]; we return the raw exponential). *)

val rooted_subgraph_count_bound : s:int -> max_degree:int -> float
(** Lemma 14: [beta(s, v) <= 2^(s Delta)]. *)

val friedman_lambda2 : ?eps:float -> int -> float
(** Property P1: second adjacency eigenvalue of a random [r]-regular graph
    is at most [2 sqrt (r - 1) + eps] whp (default [eps = 0.1]). *)

val p2_ell : n:int -> r:int -> float
(** Corollary 2's proof: random [r]-regular graphs are [ell]-good with
    [ell = log n / (4 log (re))]. *)

val expected_cycles : r:int -> k:int -> float
(** Expected number of [k]-cycles in a random [r]-regular graph:
    [(r-1)^k / (2k)] (the [theta_k r^k / k] of Corollary 4's proof, in its
    standard sharp form). *)

val isolated_star_fraction : unit -> float
(** Section 5: the expected fraction of vertices left at the centre of an
    isolated blue star by the blue walk on random 3-regular graphs —
    [(1/2)^3 = 1/8]. *)

val coupon_collector : n:int -> float
(** [n H_n ~ n ln n]: the time scale for the embedded walk to pick up [n]
    scattered targets (Section 5's closing argument). *)
