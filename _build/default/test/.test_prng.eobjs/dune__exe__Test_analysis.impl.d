test/test_analysis.ml: Alcotest Array Ewalk Ewalk_analysis Ewalk_graph Ewalk_prng Float Hashtbl List QCheck QCheck_alcotest
