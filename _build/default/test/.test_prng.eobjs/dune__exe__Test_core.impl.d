test/test_core.ml: Alcotest Array Ewalk Ewalk_graph Ewalk_prng List QCheck QCheck_alcotest
