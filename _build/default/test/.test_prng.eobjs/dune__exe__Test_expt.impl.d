test/test_expt.ml: Alcotest Array Ewalk Ewalk_analysis Ewalk_expt Ewalk_graph Ewalk_prng List String
