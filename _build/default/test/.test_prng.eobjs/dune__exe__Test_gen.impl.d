test/test_gen.ml: Alcotest Ewalk_graph Ewalk_prng Ewalk_spectral Float List Printf QCheck QCheck_alcotest
