test/test_graph.ml: Alcotest Array Ewalk_graph Ewalk_prng List QCheck QCheck_alcotest
