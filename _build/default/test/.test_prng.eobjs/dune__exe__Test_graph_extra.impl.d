test/test_graph_extra.ml: Alcotest Ewalk_graph Ewalk_prng Filename Fun Hashtbl List Option QCheck QCheck_alcotest String Sys
