test/test_integration.ml: Alcotest Ewalk Ewalk_analysis Ewalk_expt Ewalk_graph Ewalk_prng Ewalk_spectral Ewalk_theory List Printf String
