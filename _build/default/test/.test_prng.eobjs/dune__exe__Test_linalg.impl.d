test/test_linalg.ml: Alcotest Array Ewalk_linalg Ewalk_prng Float List Printf QCheck QCheck_alcotest
