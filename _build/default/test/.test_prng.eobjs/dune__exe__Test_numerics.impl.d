test/test_numerics.ml: Alcotest Array Ewalk Ewalk_graph Ewalk_linalg Ewalk_prng Ewalk_spectral Float List Printf QCheck QCheck_alcotest
