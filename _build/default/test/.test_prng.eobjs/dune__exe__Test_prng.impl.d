test/test_prng.ml: Alcotest Array Ewalk_prng Float Hashtbl Int64 List Printf QCheck QCheck_alcotest
