test/test_spectral.ml: Alcotest Array Ewalk_graph Ewalk_linalg Ewalk_prng Ewalk_spectral Float Printf QCheck QCheck_alcotest
