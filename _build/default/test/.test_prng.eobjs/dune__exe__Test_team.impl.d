test/test_team.ml: Alcotest Array Ewalk Ewalk_graph Ewalk_prng List Printf QCheck QCheck_alcotest
