test/test_team.mli:
