test/test_theory.ml: Alcotest Ewalk_theory Float QCheck QCheck_alcotest
