test/test_theory.mli:
