test/test_walks.ml: Alcotest Array Ewalk Ewalk_graph Ewalk_prng Hashtbl List Option Printf QCheck QCheck_alcotest
