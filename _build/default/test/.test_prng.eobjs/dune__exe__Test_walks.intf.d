test/test_walks.mli:
