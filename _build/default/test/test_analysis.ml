(* Tests for Ewalk_analysis: statistics, fitting, blue-subgraph analysis,
   ell-goodness and subgraph density. *)

module Graph = Ewalk_graph.Graph
module Gen_classic = Ewalk_graph.Gen_classic
module Gen_regular = Ewalk_graph.Gen_regular
module Stats = Ewalk_analysis.Stats
module Fit = Ewalk_analysis.Fit
module Blue = Ewalk_analysis.Blue
module Goodness = Ewalk_analysis.Goodness
module Density = Ewalk_analysis.Subgraph_density
module Rng = Ewalk_prng.Rng

let qcheck = QCheck_alcotest.to_alcotest
let closef tol msg a b = Alcotest.(check (float tol)) msg a b

(* -- Stats -------------------------------------------------------------------- *)

let stats_summary () =
  let s = Stats.summarize [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  closef 1e-12 "mean" 3.0 s.Stats.mean;
  closef 1e-12 "std" (sqrt 2.5) s.Stats.std;
  closef 1e-12 "median" 3.0 s.Stats.median;
  closef 1e-12 "min" 1.0 s.Stats.min;
  closef 1e-12 "max" 5.0 s.Stats.max;
  Alcotest.(check int) "count" 5 s.Stats.count;
  closef 1e-12 "stderr" (sqrt 2.5 /. sqrt 5.0) s.Stats.stderr

let stats_singleton () =
  let s = Stats.summarize [| 7.0 |] in
  closef 1e-12 "mean" 7.0 s.Stats.mean;
  closef 1e-12 "std 0" 0.0 s.Stats.std;
  Alcotest.check_raises "empty" (Invalid_argument "Stats.summarize: empty sample")
    (fun () -> ignore (Stats.summarize [||]))

let stats_quantile () =
  let xs = [| 4.0; 1.0; 3.0; 2.0 |] in
  closef 1e-12 "q0" 1.0 (Stats.quantile xs 0.0);
  closef 1e-12 "q1" 4.0 (Stats.quantile xs 1.0);
  closef 1e-12 "median interpolated" 2.5 (Stats.median xs);
  Alcotest.check_raises "bad q"
    (Invalid_argument "Stats.quantile: q out of [0,1]") (fun () ->
      ignore (Stats.quantile xs 1.5))

let stats_confidence () =
  let lo, hi = Stats.confidence_95 [| 1.0; 2.0; 3.0 |] in
  Alcotest.(check bool) "contains mean" true (lo < 2.0 && 2.0 < hi)

let stats_ints () =
  let s = Stats.summarize_ints [| 1; 2; 3 |] in
  closef 1e-12 "int mean" 2.0 s.Stats.mean

let online_matches_batch () =
  let rng = Rng.create ~seed:1 () in
  let xs = Array.init 1000 (fun _ -> Rng.float rng 10.0) in
  let o = Stats.Online.create () in
  Array.iter (Stats.Online.add o) xs;
  closef 1e-9 "mean" (Stats.mean xs) (Stats.Online.mean o);
  closef 1e-6 "variance" (Stats.variance xs) (Stats.Online.variance o);
  Alcotest.(check int) "count" 1000 (Stats.Online.count o)

(* -- Fit ---------------------------------------------------------------------- *)

let fit_affine_exact () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  let ys = Array.map (fun x -> 2.0 +. (3.0 *. x)) xs in
  let f = Fit.affine xs ys in
  closef 1e-9 "intercept" 2.0 f.Fit.intercept;
  closef 1e-9 "slope" 3.0 f.Fit.slope;
  closef 1e-9 "r2" 1.0 f.Fit.r_squared

let fit_affine_validation () =
  Alcotest.check_raises "too few" (Invalid_argument "Fit: need at least 2 points")
    (fun () -> ignore (Fit.affine [| 1.0 |] [| 1.0 |]));
  Alcotest.check_raises "degenerate"
    (Invalid_argument "Fit.affine: degenerate xs") (fun () ->
      ignore (Fit.affine [| 2.0; 2.0 |] [| 1.0; 2.0 |]))

let fit_scale_nlogn () =
  let ns = [| 1000.0; 5000.0; 20000.0; 80000.0 |] in
  let ys = Array.map (fun n -> 0.93 *. n *. log n) ns in
  let c, r2 = Fit.scale_n_log_n ns ys in
  closef 1e-9 "recovers paper constant" 0.93 c;
  closef 1e-9 "perfect fit" 1.0 r2

let fit_scale_linear () =
  let ns = [| 100.0; 200.0; 400.0 |] in
  let ys = Array.map (fun n -> 1.98 *. n) ns in
  let c, r2 = Fit.scale_linear ns ys in
  closef 1e-9 "slope" 1.98 c;
  closef 1e-9 "r2" 1.0 r2

let fit_affine_log () =
  let ns = [| 100.0; 1000.0; 10000.0 |] in
  let ys = Array.map (fun n -> 1.5 +. (0.4 *. log n)) ns in
  let f = Fit.affine_log_x ns ys in
  closef 1e-9 "a" 1.5 f.Fit.intercept;
  closef 1e-9 "b" 0.4 f.Fit.slope

let fit_r_squared_of_model () =
  let xs = [| 1.0; 2.0; 3.0 |] in
  let ys = [| 2.0; 4.0; 6.0 |] in
  closef 1e-9 "exact model" 1.0 (Fit.r_squared_of (fun x -> 2.0 *. x) xs ys);
  Alcotest.(check bool) "bad model below" true
    (Fit.r_squared_of (fun _ -> 0.0) xs ys < 0.0)

(* -- Blue --------------------------------------------------------------------- *)

(* A hand-built scenario: 6-vertex graph, some edges visited. *)
let blue_fixture () =
  (* Triangle 0-1-2 (blue), star edges 3-4, 3-5 (blue), bridge 2-3
     (visited). *)
  let g =
    Graph.of_edges ~n:6
      [ (0, 1); (1, 2); (2, 0); (2, 3); (3, 4); (3, 5) ]
  in
  let visited = [| false; false; false; true; false; false |] in
  (g, visited)

let blue_degree_test () =
  let g, visited = blue_fixture () in
  Alcotest.(check int) "triangle vertex" 2 (Blue.blue_degree g ~visited 0);
  Alcotest.(check int) "bridge endpoint" 2 (Blue.blue_degree g ~visited 2);
  Alcotest.(check int) "star centre" 2 (Blue.blue_degree g ~visited 3);
  Alcotest.(check int) "leaf" 1 (Blue.blue_degree g ~visited 4)

let blue_components_test () =
  let g, visited = blue_fixture () in
  let comps = Blue.components g ~visited in
  Alcotest.(check int) "two components" 2 (List.length comps);
  let sizes =
    List.sort compare
      (List.map (fun c -> Array.length c.Blue.vertices) comps)
  in
  Alcotest.(check (list int)) "component sizes" [ 3; 3 ] sizes;
  let edge_counts =
    List.sort compare (List.map (fun c -> Array.length c.Blue.edges) comps)
  in
  Alcotest.(check (list int)) "edges" [ 2; 3 ] edge_counts

let blue_component_of_vertex_test () =
  let g, visited = blue_fixture () in
  (match Blue.component_of_vertex g ~visited 4 with
  | Some c ->
      Alcotest.(check (array int)) "star component" [| 3; 4; 5 |]
        c.Blue.vertices
  | None -> Alcotest.fail "vertex 4 has blue edges");
  (* A vertex whose edges are all red has no component: make one. *)
  let all_visited = Array.map (fun _ -> true) visited in
  Alcotest.(check bool) "all red -> none" true
    (Blue.component_of_vertex g ~visited:all_visited 0 = None)

let blue_star_detection () =
  let g, visited = blue_fixture () in
  let comps = Blue.components g ~visited in
  let stars = List.filter (fun c -> Blue.star_center g c <> None) comps in
  Alcotest.(check int) "one star (3;4,5)" 1 (List.length stars);
  (match stars with
  | [ c ] ->
      Alcotest.(check (option int)) "centre is 3" (Some 3)
        (Blue.star_center g c)
  | _ -> Alcotest.fail "expected one star");
  let s, total = Blue.star_census g ~visited in
  Alcotest.(check (pair int int)) "census" (1, 2) (s, total)

let blue_even_degrees_test () =
  let g, visited = blue_fixture () in
  (* Vertex 4 has odd blue degree 1. *)
  Alcotest.(check bool) "odd present" false (Blue.all_blue_degrees_even g ~visited);
  let none_visited = Array.map (fun _ -> false) visited in
  (* With nothing visited, blue degree = degree: vertex 3 has degree 3 -
     odd. *)
  Alcotest.(check bool) "star centre odd" false
    (Blue.all_blue_degrees_even g ~visited:none_visited);
  let cycle = Gen_classic.cycle 5 in
  Alcotest.(check bool) "cycle all even" true
    (Blue.all_blue_degrees_even cycle ~visited:(Array.make 5 false))

let blue_flag_length_check () =
  let g, _ = blue_fixture () in
  Alcotest.check_raises "bad flags"
    (Invalid_argument "Blue: visited array length <> m") (fun () ->
      ignore (Blue.components g ~visited:[| true |]))

(* -- Goodness ------------------------------------------------------------------ *)

let ell_cycle () =
  let n = 9 in
  let g = Gen_classic.cycle n in
  (* Search radius below n: certified lower bound only. *)
  let b = Goodness.ell_of_vertex g 0 ~max_len:5 in
  Alcotest.(check int) "lower = max_len + 1" 6 b.Goodness.lower;
  Alcotest.(check (option int)) "no witness" None b.Goodness.witness;
  (* Search radius at n: exact. *)
  let b = Goodness.ell_of_vertex g 0 ~max_len:n in
  Alcotest.(check int) "exact" n b.Goodness.lower;
  Alcotest.(check (option int)) "witness is the cycle" (Some n)
    b.Goodness.witness

let ell_double_cycle () =
  (* Two parallel 2-cycles at each vertex: the witness is both digons:
     3 vertices. *)
  let g = Gen_classic.double_cycle 8 in
  let b = Goodness.ell_of_vertex g 0 ~max_len:4 in
  Alcotest.(check int) "ell = 3" 3 b.Goodness.lower;
  Alcotest.(check (option int)) "witness 3" (Some 3) b.Goodness.witness

let ell_complete_k5 () =
  (* K5 is 4-regular; minimal witness is two triangles sharing only v:
     5 vertices. *)
  let g = Gen_classic.complete 5 in
  let b = Goodness.ell_of_vertex g 0 ~max_len:5 in
  Alcotest.(check int) "ell(K5) = 5" 5 b.Goodness.lower;
  Alcotest.(check (option int)) "witness" (Some 5) b.Goodness.witness

let ell_torus () =
  (* On a torus the minimal even subgraph through v is two 4-cycles sharing
     v: 7 vertices. *)
  let g = Gen_classic.torus2d 5 5 in
  let b = Goodness.ell_of_vertex g 0 ~max_len:8 in
  Alcotest.(check int) "ell(torus) = 7" 7 b.Goodness.lower;
  Alcotest.(check (option int)) "witness" (Some 7) b.Goodness.witness

let ell_good_graph () =
  Alcotest.(check bool) "torus is 7-good" true
    (Goodness.ell_good (Gen_classic.torus2d 5 5) ~ell:7);
  Alcotest.(check bool) "torus is not 8-good" false
    (Goodness.ell_good (Gen_classic.torus2d 5 5) ~ell:8);
  Alcotest.check_raises "odd degree rejected"
    (Invalid_argument "Goodness.ell_good: graph has a vertex of odd degree")
    (fun () -> ignore (Goodness.ell_good (Gen_classic.petersen ()) ~ell:3))

let ell_validation () =
  let g = Gen_classic.petersen () in
  Alcotest.check_raises "odd vertex"
    (Invalid_argument "Goodness.ell_of_vertex: vertex of odd degree")
    (fun () -> ignore (Goodness.ell_of_vertex g 0 ~max_len:5));
  Alcotest.check_raises "isolated"
    (Invalid_argument "Goodness.ell_of_vertex: isolated vertex") (fun () ->
      ignore
        (Goodness.ell_of_vertex (Graph.of_edges ~n:1 []) 0 ~max_len:3))

let ell_p2_bound () =
  let g = Gen_regular.random_regular (Rng.create ~seed:2 ()) 100 4 in
  let b = Goodness.ell_lower_bound_p2 g in
  Alcotest.(check bool) "at least 1" true (b >= 1)

(* -- Subgraph density ------------------------------------------------------------ *)

let density_induced_count () =
  let g = Gen_classic.complete 5 in
  Alcotest.(check int) "K3 inside K5" 3
    (Density.induced_edge_count g [| 0; 1; 2 |]);
  Alcotest.(check int) "pair" 1 (Density.induced_edge_count g [| 0; 4 |]);
  let path = Gen_classic.path 5 in
  Alcotest.(check int) "non-adjacent pair" 0
    (Density.induced_edge_count path [| 0; 4 |])

let density_connected_set () =
  let g = Gen_classic.torus2d 5 5 in
  let rng = Rng.create ~seed:3 () in
  for _ = 1 to 20 do
    match Density.random_connected_set rng g ~s:6 with
    | None -> Alcotest.fail "torus has plenty of connected 6-sets"
    | Some vs ->
        Alcotest.(check int) "size" 6 (Array.length vs);
        (* Check connectivity of the induced subgraph. *)
        let sub, _ = Ewalk_graph.Subgraph.induced g (Array.to_list vs) in
        Alcotest.(check bool) "connected" true
          (Ewalk_graph.Traversal.is_connected sub)
  done

let density_component_too_small () =
  let g = Graph.of_edges ~n:4 [ (0, 1) ] in
  let rng = Rng.create ~seed:4 () in
  (* s=3 can never be grown: components have sizes 2, 1, 1. *)
  Alcotest.(check bool) "impossible size" true
    (Density.random_connected_set rng g ~s:3 = None)

let density_p2_audit () =
  let rng = Rng.create ~seed:5 () in
  let g = Gen_regular.random_regular_connected rng 400 4 in
  Alcotest.(check bool) "P2 holds on a random 4-regular" true
    (Density.p2_holds_sampled rng g ~s:5 ~samples:200);
  Alcotest.(check bool) "allowance non-negative" true
    (Density.p2_excess_allowance g ~s:5 >= 0)

let density_dense_counterexample () =
  (* On a clique, P2 must fail: a connected s-set induces s(s-1)/2 edges. *)
  let g = Gen_classic.complete 12 in
  let rng = Rng.create ~seed:6 () in
  let worst = Density.max_density_sampled rng g ~s:6 ~samples:50 in
  Alcotest.(check int) "clique density" 15 worst

(* -- properties -------------------------------------------------------------------- *)


(* -- Profile ------------------------------------------------------------------ *)

let profile_records_checkpoints () =
  let g = Gen_classic.cycle 40 in
  let rng = Rng.create ~seed:7 () in
  let t = Ewalk.Eprocess.create g rng ~start:0 in
  let profile =
    Ewalk_analysis.Profile.run ~checkpoint_every:10 (Ewalk.Eprocess.process t)
  in
  (* Deterministic tour: vertex cover at step 39. *)
  Alcotest.(check (option int)) "cover step" (Some 39)
    profile.Ewalk_analysis.Profile.cover_step;
  (* First point is the initial snapshot with 39 unvisited vertices. *)
  (match profile.Ewalk_analysis.Profile.points with
  | first :: _ ->
      Alcotest.(check int) "initial stragglers" 39
        first.Ewalk_analysis.Profile.unvisited_vertices;
      Alcotest.(check int) "initial step" 0 first.Ewalk_analysis.Profile.steps
  | [] -> Alcotest.fail "no points");
  (* Monotone decreasing unvisited counts. *)
  let rec monotone = function
    | a :: (b :: _ as rest) ->
        a.Ewalk_analysis.Profile.unvisited_vertices
        >= b.Ewalk_analysis.Profile.unvisited_vertices
        && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "monotone" true
    (monotone profile.Ewalk_analysis.Profile.points);
  (* stragglers_at finds the right checkpoint. *)
  (match Ewalk_analysis.Profile.stragglers_at profile ~steps:20 with
  | Some u -> Alcotest.(check int) "after 20 steps" 19 u
  | None -> Alcotest.fail "checkpoint at 20 must exist")

let profile_cap_respected () =
  let g = Gen_classic.cycle 100 in
  let rng = Rng.create ~seed:8 () in
  let t = Ewalk.Srw.create g rng ~start:0 in
  let profile =
    Ewalk_analysis.Profile.run ~cap:50 ~checkpoint_every:10
      (Ewalk.Srw.process t)
  in
  Alcotest.(check (option int)) "not covered" None
    profile.Ewalk_analysis.Profile.cover_step;
  Alcotest.(check int) "stopped at cap" 50 (Ewalk.Srw.steps t)

let profile_decay_rate_negative () =
  let rng = Rng.create ~seed:9 () in
  let g = Gen_regular.random_regular_connected rng 400 4 in
  let t = Ewalk.Srw.create g rng ~start:0 in
  let profile =
    Ewalk_analysis.Profile.run ~checkpoint_every:100 (Ewalk.Srw.process t)
  in
  match Ewalk_analysis.Profile.decay_rate profile ~n:400 with
  | Some r -> Alcotest.(check bool) "stragglers decay" true (r < 0.0)
  | None -> Alcotest.fail "enough checkpoints to fit"

let prop_quantile_monotone =
  QCheck.Test.make ~name:"quantiles are monotone" ~count:200
    QCheck.(list_of_size (QCheck.Gen.int_range 1 20) (float_range 0.0 100.0))
    (fun l ->
      let xs = Array.of_list l in
      Stats.quantile xs 0.25 <= Stats.quantile xs 0.75)

let prop_fit_residual_free =
  QCheck.Test.make ~name:"affine fit is exact on affine data" ~count:200
    QCheck.(triple (float_range (-5.0) 5.0) (float_range (-5.0) 5.0) small_int)
    (fun (a, b, seed) ->
      let rng = Rng.create ~seed () in
      let xs = Array.init 10 (fun i -> float_of_int i +. Rng.float rng 0.5) in
      let ys = Array.map (fun x -> a +. (b *. x)) xs in
      let f = Fit.affine xs ys in
      Float.abs (f.Fit.intercept -. a) < 1e-6
      && Float.abs (f.Fit.slope -. b) < 1e-6)

let prop_blue_components_partition_edges =
  QCheck.Test.make ~name:"blue components partition the blue edges" ~count:100
    QCheck.(pair small_int (int_range 0 100))
    (fun (seed, percent) ->
      let rng = Rng.create ~seed () in
      let g = Gen_regular.cycle_union rng 12 2 in
      let visited =
        Array.init (Graph.m g) (fun _ -> Rng.int rng 100 < percent)
      in
      let comps = Blue.components g ~visited in
      let seen = Hashtbl.create 64 in
      List.iter
        (fun c ->
          Array.iter
            (fun e ->
              if Hashtbl.mem seen e then failwith "edge in two components";
              Hashtbl.add seen e ())
            c.Blue.edges)
        comps;
      let blue_total =
        Array.fold_left (fun acc v -> if v then acc else acc + 1) 0 visited
      in
      Hashtbl.length seen = blue_total)

let () =
  Alcotest.run "analysis"
    [
      ( "stats",
        [
          Alcotest.test_case "summary" `Quick stats_summary;
          Alcotest.test_case "singleton/empty" `Quick stats_singleton;
          Alcotest.test_case "quantile" `Quick stats_quantile;
          Alcotest.test_case "confidence" `Quick stats_confidence;
          Alcotest.test_case "ints" `Quick stats_ints;
          Alcotest.test_case "online matches batch" `Quick
            online_matches_batch;
        ] );
      ( "fit",
        [
          Alcotest.test_case "affine exact" `Quick fit_affine_exact;
          Alcotest.test_case "validation" `Quick fit_affine_validation;
          Alcotest.test_case "scale n log n" `Quick fit_scale_nlogn;
          Alcotest.test_case "scale linear" `Quick fit_scale_linear;
          Alcotest.test_case "affine log x" `Quick fit_affine_log;
          Alcotest.test_case "r squared of" `Quick fit_r_squared_of_model;
        ] );
      ( "blue",
        [
          Alcotest.test_case "blue degree" `Quick blue_degree_test;
          Alcotest.test_case "components" `Quick blue_components_test;
          Alcotest.test_case "component of vertex" `Quick
            blue_component_of_vertex_test;
          Alcotest.test_case "star detection" `Quick blue_star_detection;
          Alcotest.test_case "even degrees" `Quick blue_even_degrees_test;
          Alcotest.test_case "flag length" `Quick blue_flag_length_check;
        ] );
      ( "goodness",
        [
          Alcotest.test_case "cycle" `Quick ell_cycle;
          Alcotest.test_case "double cycle" `Quick ell_double_cycle;
          Alcotest.test_case "K5" `Quick ell_complete_k5;
          Alcotest.test_case "torus" `Quick ell_torus;
          Alcotest.test_case "ell_good" `Quick ell_good_graph;
          Alcotest.test_case "validation" `Quick ell_validation;
          Alcotest.test_case "p2 bound" `Quick ell_p2_bound;
        ] );
      ( "profile",
        [
          Alcotest.test_case "checkpoints" `Quick profile_records_checkpoints;
          Alcotest.test_case "cap" `Quick profile_cap_respected;
          Alcotest.test_case "decay rate" `Quick profile_decay_rate_negative;
        ] );
      ( "density",
        [
          Alcotest.test_case "induced count" `Quick density_induced_count;
          Alcotest.test_case "connected set" `Quick density_connected_set;
          Alcotest.test_case "impossible size" `Quick
            density_component_too_small;
          Alcotest.test_case "p2 audit" `Quick density_p2_audit;
          Alcotest.test_case "clique counterexample" `Quick
            density_dense_counterexample;
        ] );
      ( "properties",
        [
          qcheck prop_quantile_monotone;
          qcheck prop_fit_residual_free;
          qcheck prop_blue_components_partition_edges;
        ] );
    ]
