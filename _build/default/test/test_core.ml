(* Tests for the core library: Coverage, the generic Cover runners, and the
   E-process itself — including the paper's Observations 10, 11, 12. *)

module Graph = Ewalk_graph.Graph
module Gen_classic = Ewalk_graph.Gen_classic
module Gen_regular = Ewalk_graph.Gen_regular
module Coverage = Ewalk.Coverage
module Cover = Ewalk.Cover
module Eprocess = Ewalk.Eprocess
module Rng = Ewalk_prng.Rng

let qcheck = QCheck_alcotest.to_alcotest

(* -- Coverage -------------------------------------------------------------- *)

let coverage_basics () =
  let g = Gen_classic.path 4 in
  let c = Coverage.create g in
  Alcotest.(check int) "nothing visited" 0 (Coverage.vertices_visited c);
  Coverage.record_start c 0;
  Alcotest.(check bool) "start visited" true (Coverage.vertex_visited c 0);
  Alcotest.(check int) "first visit at 0" 0 (Coverage.first_visit c 0);
  Coverage.record_edge c ~step:1 0;
  Coverage.record_move c ~step:1 1;
  Alcotest.(check int) "two vertices" 2 (Coverage.vertices_visited c);
  Alcotest.(check int) "one edge" 1 (Coverage.edges_visited c);
  Alcotest.(check bool) "not covered" false (Coverage.all_vertices_visited c);
  Alcotest.(check (option int)) "no cover step yet" None
    (Coverage.vertex_cover_step c);
  Coverage.record_edge c ~step:2 1;
  Coverage.record_move c ~step:2 2;
  Coverage.record_edge c ~step:3 2;
  Coverage.record_move c ~step:3 3;
  Alcotest.(check bool) "covered" true (Coverage.all_vertices_visited c);
  Alcotest.(check (option int)) "cover step" (Some 3)
    (Coverage.vertex_cover_step c);
  Alcotest.(check (option int)) "edge cover step" (Some 3)
    (Coverage.edge_cover_step c)

let coverage_visit_counts () =
  let g = Gen_classic.path 3 in
  let c = Coverage.create g in
  Coverage.record_start c 0;
  Coverage.record_move c ~step:1 1;
  Coverage.record_move c ~step:2 0;
  Alcotest.(check int) "vertex 0 twice" 2 (Coverage.visit_count c 0);
  Alcotest.(check int) "vertex 1 once" 1 (Coverage.visit_count c 1);
  Alcotest.(check int) "min count 0 (vertex 2 unseen)" 0
    (Coverage.min_visit_count c);
  Alcotest.(check (list int)) "unvisited" [ 2 ] (Coverage.unvisited_vertices c)

let coverage_edge_traversals () =
  let g = Gen_classic.path 3 in
  let c = Coverage.create g in
  Coverage.record_edge c ~step:1 0;
  Coverage.record_edge c ~step:2 0;
  Alcotest.(check int) "traversed twice" 2 (Coverage.edge_traversals c 0);
  Alcotest.(check int) "first traversal step" 1 (Coverage.first_edge_visit c 0);
  Alcotest.(check (list int)) "edge 1 unvisited" [ 1 ]
    (Coverage.unvisited_edges c);
  let flags = Coverage.visited_edge_flags c in
  Alcotest.(check (array bool)) "flags" [| true; false |] flags

let coverage_empty_graph () =
  let g = Graph.of_edges ~n:0 [] in
  let c = Coverage.create g in
  Alcotest.(check bool) "trivially covered" true
    (Coverage.all_vertices_visited c && Coverage.all_edges_visited c)

(* -- E-process mechanics ---------------------------------------------------- *)

let eprocess_validation () =
  let g = Gen_classic.cycle 4 in
  let rng = Rng.create () in
  Alcotest.check_raises "bad start"
    (Invalid_argument "Eprocess.create: start out of range") (fun () ->
      ignore (Eprocess.create g rng ~start:7));
  Alcotest.check_raises "empty graph"
    (Invalid_argument "Eprocess.create: empty graph") (fun () ->
      ignore (Eprocess.create (Graph.of_edges ~n:0 []) rng ~start:0));
  let iso = Graph.of_edges ~n:2 [] in
  let t = Eprocess.create iso rng ~start:0 in
  Alcotest.check_raises "isolated vertex"
    (Invalid_argument "Eprocess.step: isolated vertex") (fun () ->
      Eprocess.step t)

let eprocess_initial_state () =
  let g = Gen_classic.cycle 5 in
  let rng = Rng.create () in
  let t = Eprocess.create g rng ~start:2 in
  Alcotest.(check int) "position" 2 (Eprocess.position t);
  Alcotest.(check int) "no steps" 0 (Eprocess.steps t);
  Alcotest.(check int) "all blue" 2 (Eprocess.blue_degree t 2);
  Alcotest.(check bool) "in blue phase" true (Eprocess.in_blue_phase t);
  Alcotest.(check int) "start visited" 1
    (Coverage.vertices_visited (Eprocess.coverage t));
  Alcotest.(check int) "candidates" 2
    (Array.length (Eprocess.unvisited_incident t 2))

let eprocess_cycle_is_deterministic_tour () =
  (* On a cycle every E-process must walk straight round: 2 blue choices at
     the start, then forced; vertex cover in exactly n - 1 steps, edge cover
     in n. *)
  let n = 12 in
  let g = Gen_classic.cycle n in
  let rng = Rng.create ~seed:5 () in
  let t = Eprocess.create g rng ~start:0 in
  let p = Eprocess.process t in
  Alcotest.(check (option int)) "vertex cover n-1" (Some (n - 1))
    (Cover.run_until_vertex_cover p);
  Alcotest.(check (option int)) "edge cover n" (Some n)
    (Cover.run_until_edge_cover p);
  Alcotest.(check int) "all steps blue" n (Eprocess.blue_steps t);
  Alcotest.(check int) "position back at start" 0 (Eprocess.position t)

let eprocess_blue_steps_bounded_by_m () =
  let rng = Rng.create ~seed:6 () in
  let g = Gen_regular.random_regular_connected rng 60 4 in
  let t = Eprocess.create g rng ~start:0 in
  let p = Eprocess.process t in
  ignore (Cover.run_until_edge_cover ~cap:(Cover.default_cap g) p);
  (* Each blue step visits a fresh edge, so blue steps = m at edge cover. *)
  Alcotest.(check int) "blue steps = m" (Graph.m g) (Eprocess.blue_steps t);
  Alcotest.(check int) "steps add up"
    (Eprocess.blue_steps t + Eprocess.red_steps t)
    (Eprocess.steps t)

let eprocess_self_loop () =
  (* Even-degree multigraph with a self-loop: the loop is one blue edge and
     must be consumed exactly once. *)
  let g = Graph.of_edges ~n:2 [ (0, 0); (0, 1); (0, 1) ] in
  Alcotest.(check bool) "even degrees" true (Graph.all_degrees_even g);
  let rng = Rng.create ~seed:7 () in
  let t = Eprocess.create g rng ~start:0 in
  let p = Eprocess.process t in
  Alcotest.(check (option int)) "edge cover = m" (Some 3)
    (Cover.run_until_edge_cover ~cap:100 p);
  Alcotest.(check int) "blue = m" 3 (Eprocess.blue_steps t)

let eprocess_deterministic_rules_reproducible () =
  let g = Gen_regular.random_regular (Rng.create ~seed:8 ()) 40 4 in
  let trajectory rule =
    let t = Eprocess.create ~rule g (Rng.create ~seed:9 ()) ~start:0 in
    let acc = ref [] in
    for _ = 1 to 200 do
      Eprocess.step t;
      acc := Eprocess.position t :: !acc
    done;
    !acc
  in
  Alcotest.(check (list int)) "lowest-slot reproducible"
    (trajectory Eprocess.Lowest_slot)
    (trajectory Eprocess.Lowest_slot);
  Alcotest.(check (list int)) "highest-slot reproducible"
    (trajectory Eprocess.Highest_slot)
    (trajectory Eprocess.Highest_slot)

let eprocess_adversary_sees_candidates () =
  let g = Gen_classic.torus2d 4 4 in
  let seen_empty = ref false in
  let rule =
    Eprocess.Adversarial
      (fun t candidates ->
        if Array.length candidates = 0 then seen_empty := true;
        (* Candidates must all be unvisited edges at the current vertex. *)
        let here = Eprocess.position t in
        Array.iter
          (fun e ->
            let u, v = Graph.endpoints (Eprocess.graph t) e in
            if u <> here && v <> here then seen_empty := true)
          candidates;
        1_000_000 (* deliberately out of range: must be clamped *))
  in
  let rng = Rng.create ~seed:10 () in
  let t = Eprocess.create ~rule g rng ~start:0 in
  let p = Eprocess.process t in
  (match Cover.run_until_edge_cover ~cap:(Cover.default_cap g) p with
  | Some _ -> ()
  | None -> Alcotest.fail "adversarial run capped");
  Alcotest.(check bool) "callback contract held" false !seen_empty

let eprocess_unvisited_incident_dedupes_loop () =
  let g = Graph.of_edges ~n:1 [ (0, 0) ] in
  let t = Eprocess.create g (Rng.create ()) ~start:0 in
  Alcotest.(check int) "loop listed once" 1
    (Array.length (Eprocess.unvisited_incident t 0));
  Alcotest.(check int) "blue degree counts both slots" 2
    (Eprocess.blue_degree t 0)

(* -- Observation 10/11/12 --------------------------------------------------- *)

(* Generator for connected even-degree graphs: unions of Hamiltonian cycles. *)
let even_graph_of_seed seed r =
  let rng = Rng.create ~seed () in
  Gen_regular.cycle_union rng 16 r

let obs10_blue_phases_return =
  QCheck.Test.make
    ~name:"Obs 10: every completed blue phase ends at its start (even degree)"
    ~count:60
    QCheck.(triple small_int (int_range 1 3) (int_range 0 2))
    (fun (seed, r, rule_idx) ->
      let g = even_graph_of_seed seed r in
      let rule =
        match rule_idx with
        | 0 -> Eprocess.Uar
        | 1 -> Eprocess.Lowest_slot
        | _ -> Eprocess.Highest_slot
      in
      let rng = Rng.create ~seed:(seed + 1000) () in
      let t = Eprocess.create ~rule ~record_phases:true g rng ~start:0 in
      let p = Eprocess.process t in
      ignore (Cover.run_until_edge_cover ~cap:(Cover.default_cap g) p);
      List.for_all
        (fun ph ->
          ph.Eprocess.kind <> Eprocess.Blue
          || ph.Eprocess.start_vertex = ph.Eprocess.end_vertex)
        (Eprocess.phase_log t))

let obs11_blue_degrees_even =
  QCheck.Test.make
    ~name:"Obs 11: in red phases all blue degrees are even (even degree)"
    ~count:40
    QCheck.(pair small_int (int_range 1 3))
    (fun (seed, r) ->
      let g = even_graph_of_seed seed r in
      let rng = Rng.create ~seed:(seed + 2000) () in
      let t = Eprocess.create g rng ~start:0 in
      let ok = ref true in
      let steps = ref 0 in
      while
        (not (Coverage.all_edges_visited (Eprocess.coverage t)))
        && !steps < 100_000
      do
        Eprocess.step t;
        incr steps;
        if not (Eprocess.in_blue_phase t) then begin
          (* Red phase: check parity of every vertex's blue degree. *)
          for v = 0 to Graph.n g - 1 do
            if Eprocess.blue_degree t v land 1 = 1 then ok := false
          done
        end
      done;
      !ok)

let obs11_unvisited_vertex_all_blue =
  QCheck.Test.make
    ~name:"Obs 11.1: an unvisited vertex has full blue degree" ~count:40
    QCheck.(pair small_int (int_range 1 3))
    (fun (seed, r) ->
      let g = even_graph_of_seed seed r in
      let rng = Rng.create ~seed:(seed + 3000) () in
      let t = Eprocess.create g rng ~start:0 in
      let ok = ref true in
      for _ = 1 to 40 do
        Eprocess.step t;
        for v = 0 to Graph.n g - 1 do
          if
            (not (Coverage.vertex_visited (Eprocess.coverage t) v))
            && Eprocess.blue_degree t v <> Graph.degree g v
          then ok := false
        done
      done;
      !ok)

let obs12_edge_cover_sandwich =
  QCheck.Test.make
    ~name:"Obs 12 / eq (3): m <= C_E; red steps = embedded SRW length"
    ~count:40
    QCheck.(pair small_int (int_range 1 3))
    (fun (seed, r) ->
      let g = even_graph_of_seed seed r in
      let rng = Rng.create ~seed:(seed + 4000) () in
      let t = Eprocess.create g rng ~start:0 in
      let p = Eprocess.process t in
      match Cover.run_until_edge_cover ~cap:(Cover.default_cap g) p with
      | None -> false
      | Some ce ->
          ce >= Graph.m g && Eprocess.blue_steps t = Graph.m g
          && ce = Eprocess.steps t)

let phases_alternate () =
  let g = Gen_regular.cycle_union (Rng.create ~seed:11 ()) 20 2 in
  let t =
    Eprocess.create ~record_phases:true g (Rng.create ~seed:12 ()) ~start:0
  in
  let p = Eprocess.process t in
  ignore (Cover.run_until_edge_cover ~cap:(Cover.default_cap g) p);
  let phases = Eprocess.phase_log t in
  Alcotest.(check bool) "at least one phase" true (List.length phases >= 1);
  let rec alternates = function
    | a :: (b :: _ as rest) ->
        a.Eprocess.kind <> b.Eprocess.kind && alternates rest
    | _ -> true
  in
  Alcotest.(check bool) "phases alternate" true (alternates phases);
  (match phases with
  | first :: _ ->
      Alcotest.(check bool) "first phase is blue" true
        (first.Eprocess.kind = Eprocess.Blue)
  | [] -> ());
  (* Phase boundaries are consistent: end of one = start of next. *)
  let rec chained = function
    | a :: (b :: _ as rest) ->
        a.Eprocess.end_step = b.Eprocess.start_step
        && a.Eprocess.end_vertex = b.Eprocess.start_vertex
        && chained rest
    | _ -> true
  in
  Alcotest.(check bool) "phases chain" true (chained phases)

let phase_lengths_account_steps () =
  (* With record_phases, the completed phases partition the run: alternating
     kinds, contiguous boundaries, and the blue-phase lengths summing to
     exactly blue_steps once the final blue phase has been closed (after
     edge cover every step is red, so one extra step closes it). *)
  let g = Gen_regular.cycle_union (Rng.create ~seed:21 ()) 30 2 in
  let t =
    Eprocess.create ~record_phases:true g (Rng.create ~seed:22 ()) ~start:0
  in
  let p = Eprocess.process t in
  (match Cover.run_until_edge_cover ~cap:(Cover.default_cap g) p with
  | Some _ -> ()
  | None -> Alcotest.fail "edge cover not reached");
  Eprocess.step t;
  let phases = Eprocess.phase_log t in
  let rec alternates = function
    | a :: (b :: _ as rest) ->
        a.Eprocess.kind <> b.Eprocess.kind && alternates rest
    | _ -> true
  in
  Alcotest.(check bool) "alternate" true (alternates phases);
  let rec chained = function
    | a :: (b :: _ as rest) ->
        a.Eprocess.end_step = b.Eprocess.start_step && chained rest
    | _ -> true
  in
  Alcotest.(check bool) "contiguous" true (chained phases);
  let blue_len =
    List.fold_left
      (fun acc ph ->
        if ph.Eprocess.kind = Eprocess.Blue then
          acc + (ph.Eprocess.end_step - ph.Eprocess.start_step)
        else acc)
      0 phases
  in
  Alcotest.(check int) "blue phase lengths sum to blue_steps"
    (Eprocess.blue_steps t) blue_len

(* -- Cover runners ----------------------------------------------------------- *)

let cover_cap_respected () =
  let g = Gen_classic.cycle 50 in
  let rng = Rng.create ~seed:13 () in
  let t = Ewalk.Srw.create g rng ~start:0 in
  let p = Ewalk.Srw.process t in
  Alcotest.(check (option int)) "cap hit" None
    (Cover.run_until_vertex_cover ~cap:10 p);
  Alcotest.(check int) "stopped at cap" 10 (Ewalk.Srw.steps t)

let cover_resumable () =
  let g = Gen_classic.cycle 10 in
  let rng = Rng.create ~seed:14 () in
  let t = Eprocess.create g rng ~start:0 in
  let p = Eprocess.process t in
  Cover.run_steps p 3;
  (match Cover.run_until_vertex_cover p with
  | Some s -> Alcotest.(check int) "resumed count is global" 9 s
  | None -> Alcotest.fail "should cover");
  Alcotest.(check (option int)) "idempotent once covered" (Some 9)
    (Cover.run_until_vertex_cover p)

let cover_min_visits () =
  let g = Gen_classic.complete 6 in
  let rng = Rng.create ~seed:15 () in
  let t = Ewalk.Srw.create g rng ~start:0 in
  let p = Ewalk.Srw.process t in
  match Cover.run_until_min_visits ~cap:1_000_000 ~k:3 p with
  | None -> Alcotest.fail "min visits should be reachable"
  | Some steps ->
      Alcotest.(check bool) "positive" true (steps > 0);
      let c = Ewalk.Srw.coverage t in
      for v = 0 to 5 do
        Alcotest.(check bool) "every vertex 3 visits" true
          (Coverage.visit_count c v >= 3)
      done

let default_cap_scales () =
  let small = Cover.default_cap (Gen_classic.cycle 10) in
  let large = Cover.default_cap (Gen_classic.cycle 1000) in
  Alcotest.(check bool) "monotone in n" true (large > small)

let () =
  Alcotest.run "core"
    [
      ( "coverage",
        [
          Alcotest.test_case "basics" `Quick coverage_basics;
          Alcotest.test_case "visit counts" `Quick coverage_visit_counts;
          Alcotest.test_case "edge traversals" `Quick coverage_edge_traversals;
          Alcotest.test_case "empty graph" `Quick coverage_empty_graph;
        ] );
      ( "eprocess",
        [
          Alcotest.test_case "validation" `Quick eprocess_validation;
          Alcotest.test_case "initial state" `Quick eprocess_initial_state;
          Alcotest.test_case "cycle tour" `Quick
            eprocess_cycle_is_deterministic_tour;
          Alcotest.test_case "blue steps = m" `Quick
            eprocess_blue_steps_bounded_by_m;
          Alcotest.test_case "self loop" `Quick eprocess_self_loop;
          Alcotest.test_case "deterministic rules" `Quick
            eprocess_deterministic_rules_reproducible;
          Alcotest.test_case "adversary contract" `Quick
            eprocess_adversary_sees_candidates;
          Alcotest.test_case "loop dedup" `Quick
            eprocess_unvisited_incident_dedupes_loop;
          Alcotest.test_case "phases alternate" `Quick phases_alternate;
          Alcotest.test_case "phase lengths account steps" `Quick
            phase_lengths_account_steps;
        ] );
      ( "observations",
        [
          qcheck obs10_blue_phases_return;
          qcheck obs11_blue_degrees_even;
          qcheck obs11_unvisited_vertex_all_blue;
          qcheck obs12_edge_cover_sandwich;
        ] );
      ( "cover",
        [
          Alcotest.test_case "cap respected" `Quick cover_cap_respected;
          Alcotest.test_case "resumable" `Quick cover_resumable;
          Alcotest.test_case "min visits" `Quick cover_min_visits;
          Alcotest.test_case "default cap" `Quick default_cap_scales;
        ] );
    ]
