(* Tests for the graph generators: classic families, random models, the
   regular/configuration generators and the explicit expanders. *)

module Graph = Ewalk_graph.Graph
module Traversal = Ewalk_graph.Traversal
module Girth = Ewalk_graph.Girth
module Gen_classic = Ewalk_graph.Gen_classic
module Gen_random = Ewalk_graph.Gen_random
module Gen_regular = Ewalk_graph.Gen_regular
module Gen_expander = Ewalk_graph.Gen_expander
module Rng = Ewalk_prng.Rng

let qcheck = QCheck_alcotest.to_alcotest

(* -- classic families ------------------------------------------------------ *)

let classic_cycle () =
  let g = Gen_classic.cycle 8 in
  Alcotest.(check int) "n" 8 (Graph.n g);
  Alcotest.(check int) "m" 8 (Graph.m g);
  Alcotest.(check bool) "2-regular" true
    (Graph.is_regular g && Graph.max_degree g = 2);
  Alcotest.(check bool) "connected" true (Traversal.is_connected g);
  Alcotest.check_raises "too small" (Invalid_argument "Gen_classic.cycle: n < 3")
    (fun () -> ignore (Gen_classic.cycle 2))

let classic_path_star () =
  let p = Gen_classic.path 6 in
  Alcotest.(check int) "path edges" 5 (Graph.m p);
  Alcotest.(check bool) "path connected" true (Traversal.is_connected p);
  let s = Gen_classic.star 6 in
  Alcotest.(check int) "star hub" 5 (Graph.degree s 0);
  Alcotest.(check int) "star m" 5 (Graph.m s)

let classic_complete () =
  let g = Gen_classic.complete 6 in
  Alcotest.(check int) "m = n(n-1)/2" 15 (Graph.m g);
  Alcotest.(check bool) "simple" true (Graph.is_simple g);
  Alcotest.(check bool) "5-regular" true
    (Graph.is_regular g && Graph.max_degree g = 5)

let classic_complete_bipartite () =
  let g = Gen_classic.complete_bipartite 3 4 in
  Alcotest.(check int) "m = ab" 12 (Graph.m g);
  Alcotest.(check bool) "bipartite" true (Traversal.is_bipartite g);
  Alcotest.(check int) "left degree" 4 (Graph.degree g 0);
  Alcotest.(check int) "right degree" 3 (Graph.degree g 3)

let classic_hypercube () =
  let g = Gen_classic.hypercube 5 in
  Alcotest.(check int) "n = 2^5" 32 (Graph.n g);
  Alcotest.(check int) "m = r 2^(r-1)" 80 (Graph.m g);
  Alcotest.(check bool) "5-regular" true
    (Graph.is_regular g && Graph.max_degree g = 5);
  Alcotest.(check bool) "connected" true (Traversal.is_connected g);
  Alcotest.(check bool) "bipartite" true (Traversal.is_bipartite g);
  Alcotest.(check bool) "simple" true (Graph.is_simple g)

let classic_torus () =
  let g = Gen_classic.torus2d 4 5 in
  Alcotest.(check int) "n" 20 (Graph.n g);
  Alcotest.(check bool) "4-regular" true
    (Graph.is_regular g && Graph.max_degree g = 4);
  Alcotest.(check bool) "even degree" true (Graph.all_degrees_even g);
  Alcotest.(check bool) "simple" true (Graph.is_simple g);
  Alcotest.(check bool) "connected" true (Traversal.is_connected g);
  Alcotest.check_raises "side < 3"
    (Invalid_argument "Gen_classic.torus2d: sides < 3") (fun () ->
      ignore (Gen_classic.torus2d 2 5))

let classic_grid () =
  let g = Gen_classic.grid2d 3 4 in
  Alcotest.(check int) "n" 12 (Graph.n g);
  (* 3 rows x 3 horizontal + 2 x 4 vertical = 9 + 8 *)
  Alcotest.(check int) "m" 17 (Graph.m g);
  Alcotest.(check int) "corner degree" 2 (Graph.degree g 0)

let classic_binary_tree () =
  let g = Gen_classic.binary_tree 3 in
  Alcotest.(check int) "n = 2^4 - 1" 15 (Graph.n g);
  Alcotest.(check int) "m = n - 1" 14 (Graph.m g);
  Alcotest.(check bool) "acyclic" true (Girth.girth g = None)

let classic_lollipop_barbell () =
  let l = Gen_classic.lollipop 5 3 in
  Alcotest.(check int) "lollipop n" 8 (Graph.n l);
  Alcotest.(check int) "lollipop m" 13 (Graph.m l);
  Alcotest.(check bool) "lollipop connected" true (Traversal.is_connected l);
  let b = Gen_classic.barbell 4 2 in
  Alcotest.(check int) "barbell n" 10 (Graph.n b);
  Alcotest.(check bool) "barbell connected" true (Traversal.is_connected b);
  Alcotest.(check int) "barbell m" 15 (Graph.m b)

let classic_petersen () =
  let g = Gen_classic.petersen () in
  Alcotest.(check int) "n" 10 (Graph.n g);
  Alcotest.(check int) "m" 15 (Graph.m g);
  Alcotest.(check bool) "3-regular" true
    (Graph.is_regular g && Graph.max_degree g = 3);
  Alcotest.(check (option int)) "girth 5" (Some 5) (Girth.girth g);
  Alcotest.(check int) "diameter 2" 2 (Traversal.diameter g)

let classic_double_cycle () =
  let g = Gen_classic.double_cycle 5 in
  Alcotest.(check int) "m doubled" 10 (Graph.m g);
  Alcotest.(check bool) "4-regular even" true
    (Graph.is_regular g && Graph.max_degree g = 4);
  Alcotest.(check int) "parallel pairs" 5 (Graph.count_parallel_edges g)

(* -- random models ---------------------------------------------------------- *)

let gnp_extremes () =
  let rng = Rng.create ~seed:1 () in
  let empty = Gen_random.gnp rng 10 0.0 in
  Alcotest.(check int) "p=0 no edges" 0 (Graph.m empty);
  let full = Gen_random.gnp rng 10 1.0 in
  Alcotest.(check int) "p=1 complete" 45 (Graph.m full);
  Alcotest.check_raises "bad p"
    (Invalid_argument "Gen_random.gnp: p out of [0,1]") (fun () ->
      ignore (Gen_random.gnp rng 5 1.5))

let gnp_edge_count () =
  let rng = Rng.create ~seed:2 () in
  let n = 500 and p = 0.02 in
  let expected = float_of_int (n * (n - 1) / 2) *. p in
  let total = ref 0 in
  let trials = 20 in
  for _ = 1 to trials do
    total := !total + Graph.m (Gen_random.gnp rng n p)
  done;
  let mean = float_of_int !total /. float_of_int trials in
  Alcotest.(check bool)
    (Printf.sprintf "mean %.0f ~ %.0f" mean expected)
    true
    (Float.abs (mean -. expected) < 0.1 *. expected);
  Alcotest.(check bool) "simple" true
    (Graph.is_simple (Gen_random.gnp rng 100 0.05))

let gnm_exact () =
  let rng = Rng.create ~seed:3 () in
  let g = Gen_random.gnm rng 30 50 in
  Alcotest.(check int) "exact m" 50 (Graph.m g);
  Alcotest.(check bool) "simple" true (Graph.is_simple g);
  Alcotest.check_raises "too many"
    (Invalid_argument "Gen_random.gnm: too many edges") (fun () ->
      ignore (Gen_random.gnm rng 4 7))

let geometric_radius () =
  let rng = Rng.create ~seed:4 () in
  let g0 = Gen_random.random_geometric rng 50 0.0 in
  Alcotest.(check int) "radius 0" 0 (Graph.m g0);
  let g_all = Gen_random.random_geometric rng 30 2.0 in
  Alcotest.(check int) "radius sqrt2 covers square" 435 (Graph.m g_all);
  let g = Gen_random.random_geometric rng 200 0.1 in
  Alcotest.(check bool) "simple" true (Graph.is_simple g)

let geometric_matches_bruteforce () =
  (* The grid-bucketed generator must agree with the O(n^2) definition. *)
  let rng = Rng.create ~seed:5 () in
  let g = Gen_random.random_geometric rng 100 0.17 in
  (* Rebuild by brute force using the same points is impossible from the
     outside; instead check the triangle inequality implication: neighbours
     of neighbours at distance <= 2r. Weak but structural. *)
  Alcotest.(check bool) "not absurdly dense" true
    (Graph.m g < 100 * 99 / 2);
  Graph.iter_edges g (fun _ u v ->
      Alcotest.(check bool) "no self loop" true (u <> v))

(* -- regular generators ----------------------------------------------------- *)

let pairing_multigraph_test () =
  let rng = Rng.create ~seed:6 () in
  let g = Gen_regular.pairing_multigraph rng 100 3 in
  Alcotest.(check bool) "3-regular (with multiplicity)" true
    (Graph.is_regular g && Graph.max_degree g = 3);
  Alcotest.check_raises "odd total"
    (Invalid_argument "Gen_regular: odd degree sum") (fun () ->
      ignore (Gen_regular.pairing_multigraph rng 3 3))

let random_regular_simple () =
  let rng = Rng.create ~seed:7 () in
  List.iter
    (fun (n, r) ->
      let g = Gen_regular.random_regular rng n r in
      Alcotest.(check bool)
        (Printf.sprintf "r=%d regular" r)
        true
        (Graph.is_regular g && Graph.max_degree g = r);
      Alcotest.(check bool) "simple" true (Graph.is_simple g))
    [ (50, 3); (50, 4); (100, 7); (60, 16) ]

let random_regular_rejection_test () =
  let rng = Rng.create ~seed:8 () in
  let g = Gen_regular.random_regular_rejection rng 60 3 in
  Alcotest.(check bool) "simple regular" true
    (Graph.is_simple g && Graph.is_regular g && Graph.max_degree g = 3)

let random_regular_validation () =
  let rng = Rng.create ~seed:9 () in
  Alcotest.check_raises "odd n*r"
    (Invalid_argument "Gen_regular.random_regular: n * r is odd") (fun () ->
      ignore (Gen_regular.random_regular rng 5 3));
  Alcotest.check_raises "r >= n"
    (Invalid_argument "Gen_regular.random_regular: r >= n has no simple graph")
    (fun () -> ignore (Gen_regular.random_regular rng 4 4))

let random_regular_connected_test () =
  let rng = Rng.create ~seed:10 () in
  for _ = 1 to 5 do
    let g = Gen_regular.random_regular_connected rng 80 4 in
    Alcotest.(check bool) "connected" true (Traversal.is_connected g)
  done

let configuration_model_test () =
  let rng = Rng.create ~seed:11 () in
  let degrees = [| 4; 4; 2; 2; 4; 4; 2; 2 |] in
  let g = Gen_regular.configuration_model rng degrees in
  Alcotest.(check (array int)) "degree sequence realised" degrees
    (Graph.degrees g);
  let gs = Gen_regular.configuration_model ~simple:true rng degrees in
  Alcotest.(check bool) "simple option" true (Graph.is_simple gs);
  Alcotest.(check (array int)) "simple keeps degrees" degrees
    (Graph.degrees gs);
  Alcotest.check_raises "odd sum"
    (Invalid_argument "Gen_regular.configuration_model: odd degree sum")
    (fun () ->
      ignore (Gen_regular.configuration_model rng [| 1; 2 |]))

let cycle_union_test () =
  let rng = Rng.create ~seed:12 () in
  let g = Gen_regular.cycle_union rng 40 2 in
  Alcotest.(check bool) "4-regular" true
    (Graph.is_regular g && Graph.max_degree g = 4);
  Alcotest.(check bool) "even" true (Graph.all_degrees_even g);
  Alcotest.(check bool) "simple" true (Graph.is_simple g);
  Alcotest.(check bool) "connected by construction" true
    (Traversal.is_connected g)

(* -- expanders --------------------------------------------------------------- *)

let margulis_test () =
  let g = Gen_expander.margulis 7 in
  Alcotest.(check int) "n = k^2" 49 (Graph.n g);
  Alcotest.(check bool) "8-regular" true
    (Graph.is_regular g && Graph.max_degree g = 8);
  Alcotest.(check bool) "even degree" true (Graph.all_degrees_even g);
  Alcotest.(check bool) "connected" true (Traversal.is_connected g);
  (* Known spectral property: adjacency lambda_2 <= 5 sqrt 2 < 8 means the
     walk gap is at least 1 - 5 sqrt 2 / 8 ~ 0.116. *)
  let gap = Ewalk_spectral.Spectral.gap_exact g in
  Alcotest.(check bool)
    (Printf.sprintf "gap %.3f > 0.1" gap.Ewalk_spectral.Spectral.gap)
    true
    (gap.Ewalk_spectral.Spectral.gap > 0.1)

let circulant_test () =
  let g = Gen_expander.circulant 12 [ 1; 3 ] in
  Alcotest.(check bool) "4-regular" true
    (Graph.is_regular g && Graph.max_degree g = 4);
  Alcotest.(check bool) "simple" true (Graph.is_simple g);
  Alcotest.(check bool) "connected" true (Traversal.is_connected g);
  Alcotest.check_raises "offset too large"
    (Invalid_argument "Gen_expander.circulant: offset out of range") (fun () ->
      ignore (Gen_expander.circulant 12 [ 6 ]));
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Gen_expander.circulant: duplicate offset") (fun () ->
      ignore (Gen_expander.circulant 12 [ 2; 2 ]))

let chordal_cycle_test () =
  let g = Gen_expander.chordal_cycle 11 in
  Alcotest.(check int) "n" 11 (Graph.n g);
  Alcotest.(check bool) "even degree 4" true
    (Graph.all_degrees_even g && Graph.max_degree g = 4);
  Alcotest.(check bool) "connected" true (Traversal.is_connected g);
  Alcotest.(check int) "one self loop at 0" 1 (Graph.count_self_loops g)

(* -- distribution sanity ------------------------------------------------------ *)

let steger_wormald_unbiased_smoke () =
  (* On n=6, r=2 the simple 2-regular graphs are unions of cycles: either a
     6-cycle, a 3+3 split, or... with labelled vertices the generator should
     produce both a single hexagon and two triangles with substantial
     probability. *)
  let rng = Rng.create ~seed:13 () in
  let hexagons = ref 0 and double_triangles = ref 0 in
  for _ = 1 to 300 do
    let g = Gen_regular.random_regular rng 6 2 in
    if Traversal.is_connected g then incr hexagons else incr double_triangles
  done;
  Alcotest.(check bool) "sees hexagons" true (!hexagons > 30);
  Alcotest.(check bool) "sees disconnected shapes" true (!double_triangles > 10)

let prop_random_regular_invariants =
  QCheck.Test.make ~name:"random_regular always simple and regular" ~count:60
    QCheck.(pair small_int (int_range 2 6))
    (fun (seed, r) ->
      let n = 20 + (2 * r) in
      let n = if n * r mod 2 = 1 then n + 1 else n in
      let rng = Rng.create ~seed () in
      let g = Gen_regular.random_regular rng n r in
      Graph.is_simple g && Graph.is_regular g && Graph.max_degree g = r)

let prop_cycle_union_even =
  QCheck.Test.make ~name:"cycle_union is 2r-regular and connected" ~count:40
    QCheck.(pair small_int (int_range 1 3))
    (fun (seed, r) ->
      let rng = Rng.create ~seed () in
      let g = Gen_regular.cycle_union rng 20 r in
      Graph.is_regular g
      && Graph.max_degree g = 2 * r
      && Traversal.is_connected g)

let () =
  Alcotest.run "gen"
    [
      ( "classic",
        [
          Alcotest.test_case "cycle" `Quick classic_cycle;
          Alcotest.test_case "path/star" `Quick classic_path_star;
          Alcotest.test_case "complete" `Quick classic_complete;
          Alcotest.test_case "complete bipartite" `Quick
            classic_complete_bipartite;
          Alcotest.test_case "hypercube" `Quick classic_hypercube;
          Alcotest.test_case "torus" `Quick classic_torus;
          Alcotest.test_case "grid" `Quick classic_grid;
          Alcotest.test_case "binary tree" `Quick classic_binary_tree;
          Alcotest.test_case "lollipop/barbell" `Quick
            classic_lollipop_barbell;
          Alcotest.test_case "petersen" `Quick classic_petersen;
          Alcotest.test_case "double cycle" `Quick classic_double_cycle;
        ] );
      ( "random",
        [
          Alcotest.test_case "gnp extremes" `Quick gnp_extremes;
          Alcotest.test_case "gnp edge count" `Quick gnp_edge_count;
          Alcotest.test_case "gnm exact" `Quick gnm_exact;
          Alcotest.test_case "geometric radius" `Quick geometric_radius;
          Alcotest.test_case "geometric structure" `Quick
            geometric_matches_bruteforce;
        ] );
      ( "regular",
        [
          Alcotest.test_case "pairing multigraph" `Quick
            pairing_multigraph_test;
          Alcotest.test_case "steger-wormald simple" `Quick
            random_regular_simple;
          Alcotest.test_case "rejection sampler" `Quick
            random_regular_rejection_test;
          Alcotest.test_case "validation" `Quick random_regular_validation;
          Alcotest.test_case "connected variant" `Quick
            random_regular_connected_test;
          Alcotest.test_case "configuration model" `Quick
            configuration_model_test;
          Alcotest.test_case "cycle union" `Quick cycle_union_test;
          Alcotest.test_case "distribution smoke" `Quick
            steger_wormald_unbiased_smoke;
        ] );
      ( "expanders",
        [
          Alcotest.test_case "margulis" `Quick margulis_test;
          Alcotest.test_case "circulant" `Quick circulant_test;
          Alcotest.test_case "chordal cycle" `Quick chordal_cycle_test;
        ] );
      ( "properties",
        [ qcheck prop_random_regular_invariants; qcheck prop_cycle_union_even ]
      );
    ]
