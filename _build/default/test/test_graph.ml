(* Tests for the CSR graph core, the builder, traversals, girth machinery
   and subgraph operations. *)

module Graph = Ewalk_graph.Graph
module Builder = Ewalk_graph.Builder
module Traversal = Ewalk_graph.Traversal
module Girth = Ewalk_graph.Girth
module Subgraph = Ewalk_graph.Subgraph
module Gen_classic = Ewalk_graph.Gen_classic
module Rng = Ewalk_prng.Rng

let qcheck = QCheck_alcotest.to_alcotest

let triangle () = Graph.of_edges ~n:3 [ (0, 1); (1, 2); (2, 0) ]

(* -- core construction ----------------------------------------------------- *)

let graph_counts () =
  let g = triangle () in
  Alcotest.(check int) "n" 3 (Graph.n g);
  Alcotest.(check int) "m" 3 (Graph.m g);
  Alcotest.(check int) "total degree" 6 (Graph.total_degree g);
  Alcotest.(check bool) "regular" true (Graph.is_regular g);
  Alcotest.(check bool) "even" true (Graph.all_degrees_even g)

let graph_degrees () =
  let g = Graph.of_edges ~n:4 [ (0, 1); (0, 2); (0, 3) ] in
  Alcotest.(check int) "hub" 3 (Graph.degree g 0);
  Alcotest.(check int) "leaf" 1 (Graph.degree g 1);
  Alcotest.(check int) "max" 3 (Graph.max_degree g);
  Alcotest.(check int) "min" 1 (Graph.min_degree g);
  Alcotest.(check (array int)) "degrees" [| 3; 1; 1; 1 |] (Graph.degrees g);
  Alcotest.(check bool) "odd degrees" false (Graph.all_degrees_even g)

let graph_self_loop () =
  let g = Graph.of_edges ~n:2 [ (0, 0); (0, 1) ] in
  Alcotest.(check int) "loop adds 2" 3 (Graph.degree g 0);
  Alcotest.(check int) "loops counted" 1 (Graph.count_self_loops g);
  Alcotest.(check bool) "not simple" false (Graph.is_simple g);
  Alcotest.(check int) "opposite of loop" 0 (Graph.opposite g 0 0)

let graph_parallel_edges () =
  let g = Graph.of_edges ~n:2 [ (0, 1); (0, 1); (1, 0) ] in
  Alcotest.(check int) "parallel count" 2 (Graph.count_parallel_edges g);
  Alcotest.(check bool) "not simple" false (Graph.is_simple g);
  Alcotest.(check int) "degree counts multiplicity" 3 (Graph.degree g 0)

let graph_endpoints_opposite () =
  let g = triangle () in
  Alcotest.(check (pair int int)) "endpoints" (1, 2) (Graph.endpoints g 1);
  Alcotest.(check int) "opposite" 2 (Graph.opposite g 1 1);
  Alcotest.(check int) "opposite other side" 1 (Graph.opposite g 1 2);
  Alcotest.check_raises "not an endpoint"
    (Invalid_argument "Graph.opposite: vertex is not an endpoint") (fun () ->
      ignore (Graph.opposite g 1 0))

let graph_slots_consistent () =
  let g = Graph.of_edges ~n:4 [ (0, 1); (1, 2); (2, 3); (3, 0); (1, 3) ] in
  (* Every edge's two slots carry the right neighbour and edge id. *)
  for e = 0 to Graph.m g - 1 do
    let u, v = Graph.endpoints g e in
    let p1, p2 = Graph.edge_positions g e in
    Alcotest.(check int) "slot1 edge" e (Graph.slot_edge g p1);
    Alcotest.(check int) "slot2 edge" e (Graph.slot_edge g p2);
    Alcotest.(check int) "slot1 neighbour" v (Graph.slot_vertex g p1);
    Alcotest.(check int) "slot2 neighbour" u (Graph.slot_vertex g p2);
    Alcotest.(check bool) "p1 in u's adjacency" true
      (p1 >= Graph.adj_start g u && p1 < Graph.adj_stop g u);
    Alcotest.(check bool) "p2 in v's adjacency" true
      (p2 >= Graph.adj_start g v && p2 < Graph.adj_stop g v)
  done

let graph_neighbors () =
  let g = triangle () in
  Alcotest.(check (list int)) "neighbors of 0" [ 1; 2 ]
    (List.sort compare (Graph.neighbors g 0));
  Alcotest.(check int) "neighbor 0 0" (Graph.neighbor g 0 0)
    (Graph.slot_vertex g (Graph.adj_start g 0));
  let count = ref 0 in
  Graph.iter_neighbors g 0 (fun _ _ -> incr count);
  Alcotest.(check int) "iter count" 2 !count;
  let sum = Graph.fold_neighbors g 0 (fun acc w _ -> acc + w) 0 in
  Alcotest.(check int) "fold sum" 3 sum

let graph_edges_iteration () =
  let edges = [ (0, 1); (1, 2); (0, 2) ] in
  let g = Graph.of_edges ~n:3 edges in
  Alcotest.(check (list (pair int int))) "edge_list" edges (Graph.edge_list g);
  let total = Graph.fold_edges g (fun acc _ u v -> acc + u + v) 0 in
  Alcotest.(check int) "fold_edges" 6 total

let graph_mem_edge () =
  let g = triangle () in
  Alcotest.(check bool) "has 0-1" true (Graph.mem_edge g 0 1);
  Alcotest.(check bool) "has 1-0" true (Graph.mem_edge g 1 0);
  let g2 = Graph.of_edges ~n:4 [ (0, 1) ] in
  Alcotest.(check bool) "no 2-3" false (Graph.mem_edge g2 2 3)

let graph_validation () =
  Alcotest.check_raises "vertex out of range"
    (Invalid_argument "Graph.of_edge_array: vertex out of range") (fun () ->
      ignore (Graph.of_edges ~n:2 [ (0, 2) ]));
  let empty = Graph.of_edges ~n:0 [] in
  Alcotest.(check int) "empty n" 0 (Graph.n empty);
  Alcotest.(check int) "empty min degree" 0 (Graph.min_degree empty)

(* -- builder --------------------------------------------------------------- *)

let builder_roundtrip () =
  let b = Builder.create ~n:3 in
  Builder.add_edge b 0 1;
  Builder.add_edge b 1 2;
  Alcotest.(check int) "count" 2 (Builder.edge_count b);
  let g = Builder.to_graph b in
  Alcotest.(check (list (pair int int))) "order preserved" [ (0, 1); (1, 2) ]
    (Graph.edge_list g);
  (* Builder remains usable. *)
  Builder.add_edge b 2 0;
  let g2 = Builder.to_graph b in
  Alcotest.(check int) "extended" 3 (Graph.m g2)

let builder_validation () =
  let b = Builder.create ~n:2 in
  Alcotest.check_raises "range"
    (Invalid_argument "Builder.add_edge: vertex out of range") (fun () ->
      Builder.add_edge b 0 5)

(* -- traversal ------------------------------------------------------------- *)

let bfs_path () =
  let g = Gen_classic.path 5 in
  Alcotest.(check (array int)) "distances" [| 0; 1; 2; 3; 4 |]
    (Traversal.bfs_distances g 0);
  Alcotest.(check int) "distance" 4 (Traversal.distance g 0 4);
  Alcotest.(check int) "eccentricity mid" 2 (Traversal.eccentricity g 2)

let bfs_bounded () =
  let g = Gen_classic.path 5 in
  let d = Traversal.bfs_distances_bounded g 0 2 in
  Alcotest.(check int) "within radius" 2 d.(2);
  Alcotest.(check int) "beyond radius" (-1) d.(3)

let components_test () =
  let g = Graph.of_edges ~n:5 [ (0, 1); (2, 3) ] in
  let labels, k = Traversal.connected_components g in
  Alcotest.(check int) "3 components" 3 k;
  Alcotest.(check bool) "0 and 1 together" true (labels.(0) = labels.(1));
  Alcotest.(check bool) "0 and 2 apart" true (labels.(0) <> labels.(2));
  Alcotest.(check bool) "connected" false (Traversal.is_connected g);
  Alcotest.(check (list int)) "component of 2" [ 2; 3 ]
    (Traversal.component_of g 2);
  Alcotest.(check (list int)) "largest = {0,1} or {2,3}" [ 0; 1 ]
    (Traversal.largest_component_vertices g)

let diameter_known () =
  Alcotest.(check int) "path" 4 (Traversal.diameter (Gen_classic.path 5));
  Alcotest.(check int) "cycle" 3 (Traversal.diameter (Gen_classic.cycle 6));
  Alcotest.(check int) "complete" 1 (Traversal.diameter (Gen_classic.complete 5));
  Alcotest.(check int) "hypercube" 4
    (Traversal.diameter (Gen_classic.hypercube 4));
  Alcotest.check_raises "disconnected"
    (Invalid_argument "Traversal.diameter: disconnected graph") (fun () ->
      ignore (Traversal.diameter (Graph.of_edges ~n:3 [ (0, 1) ])))

let diameter_double_sweep () =
  List.iter
    (fun g ->
      let lb = Traversal.diameter_lower_bound g in
      let d = Traversal.diameter g in
      Alcotest.(check bool) "lb <= diameter" true (lb <= d);
      Alcotest.(check bool) "lb within half" true (lb * 2 >= d))
    [ Gen_classic.path 9; Gen_classic.cycle 10; Gen_classic.torus2d 4 5 ]

let bipartite_known () =
  Alcotest.(check bool) "even cycle" true
    (Traversal.is_bipartite (Gen_classic.cycle 6));
  Alcotest.(check bool) "odd cycle" false
    (Traversal.is_bipartite (Gen_classic.cycle 5));
  Alcotest.(check bool) "hypercube" true
    (Traversal.is_bipartite (Gen_classic.hypercube 3));
  Alcotest.(check bool) "triangle" false (Traversal.is_bipartite (triangle ()))

let dfs_preorder_test () =
  let g = Gen_classic.path 4 in
  Alcotest.(check (list int)) "path preorder" [ 0; 1; 2; 3 ]
    (Traversal.dfs_preorder g 0);
  let star = Gen_classic.star 4 in
  Alcotest.(check int) "covers component" 4
    (List.length (Traversal.dfs_preorder star 0))

let spanning_forest_test () =
  let g = Gen_classic.torus2d 3 3 in
  let f = Traversal.spanning_forest g in
  Alcotest.(check int) "n-1 edges" 8 (List.length f);
  let g2 = Graph.of_edges ~n:5 [ (0, 1); (2, 3) ] in
  Alcotest.(check int) "n - #components" 2
    (List.length (Traversal.spanning_forest g2))

(* -- girth ----------------------------------------------------------------- *)

let girth_known () =
  let some = Alcotest.(option int) in
  Alcotest.check some "cycle 7" (Some 7) (Girth.girth (Gen_classic.cycle 7));
  Alcotest.check some "complete" (Some 3) (Girth.girth (Gen_classic.complete 5));
  Alcotest.check some "petersen" (Some 5) (Girth.girth (Gen_classic.petersen ()));
  Alcotest.check some "hypercube" (Some 4)
    (Girth.girth (Gen_classic.hypercube 4));
  Alcotest.check some "tree acyclic" None
    (Girth.girth (Gen_classic.binary_tree 3));
  Alcotest.check some "self-loop" (Some 1)
    (Girth.girth (Graph.of_edges ~n:2 [ (0, 0); (0, 1) ]));
  Alcotest.check some "parallel" (Some 2)
    (Girth.girth (Graph.of_edges ~n:2 [ (0, 1); (0, 1) ]))

let girth_at_most_test () =
  let g = Gen_classic.cycle 9 in
  Alcotest.(check (option int)) "found within bound" (Some 9)
    (Girth.girth_at_most g 9);
  Alcotest.(check (option int)) "not within bound" None
    (Girth.girth_at_most g 8)

let shortest_cycle_through_test () =
  (* Triangle with a pendant path: vertex on triangle sees 3, pendant sees
     none. *)
  let g = Graph.of_edges ~n:5 [ (0, 1); (1, 2); (2, 0); (2, 3); (3, 4) ] in
  Alcotest.(check (option int)) "on triangle" (Some 3)
    (Girth.shortest_cycle_through g 0);
  Alcotest.(check (option int)) "pendant" None
    (Girth.shortest_cycle_through g 4);
  Alcotest.(check (option int)) "self-loop is 1" (Some 1)
    (Girth.shortest_cycle_through (Graph.of_edges ~n:1 [ (0, 0) ]) 0)

let count_cycles_known () =
  (* K4: 4 triangles, 3 quadrilaterals. *)
  let c = Girth.count_cycles (Gen_classic.complete 4) ~max_len:4 in
  Alcotest.(check int) "K4 triangles" 4 c.(3);
  Alcotest.(check int) "K4 squares" 3 c.(4);
  (* K5: 10 triangles, 15 C4, 12 C5. *)
  let c5 = Girth.count_cycles (Gen_classic.complete 5) ~max_len:5 in
  Alcotest.(check int) "K5 triangles" 10 c5.(3);
  Alcotest.(check int) "K5 squares" 15 c5.(4);
  Alcotest.(check int) "K5 pentagons" 12 c5.(5);
  (* Cycle graph: exactly one cycle. *)
  let cc = Girth.count_cycles (Gen_classic.cycle 6) ~max_len:6 in
  Alcotest.(check int) "cycle6 none shorter" 0 (cc.(3) + cc.(4) + cc.(5));
  Alcotest.(check int) "cycle6 itself" 1 cc.(6);
  (* Petersen: girth 5 with 12 pentagons and 10 hexagons. *)
  let cp = Girth.count_cycles (Gen_classic.petersen ()) ~max_len:6 in
  Alcotest.(check int) "petersen pentagons" 12 cp.(5);
  Alcotest.(check int) "petersen hexagons" 10 cp.(6);
  (* Multigraph conventions. *)
  let cm = Girth.count_cycles (Graph.of_edges ~n:2 [ (0, 0); (0, 1); (0, 1) ]) ~max_len:2 in
  Alcotest.(check int) "one loop" 1 cm.(1);
  Alcotest.(check int) "one digon" 1 cm.(2)

let cycles_through_test () =
  let g = Gen_classic.complete 4 in
  let cycles = Girth.cycles_through g 0 ~max_len:4 in
  (* Vertex 0 of K4 lies on 3 triangles and 3 quadrilaterals. *)
  let tri = List.filter (fun c -> List.length c = 3) cycles in
  let quad = List.filter (fun c -> List.length c = 4) cycles in
  Alcotest.(check int) "triangles through v" 3 (List.length tri);
  Alcotest.(check int) "quads through v" 3 (List.length quad);
  (* Every reported cycle passes through vertex 0. *)
  List.iter
    (fun cycle ->
      let touches =
        List.exists
          (fun e ->
            let u, v = Graph.endpoints g e in
            u = 0 || v = 0)
          cycle
      in
      Alcotest.(check bool) "touches root" true touches)
    cycles

(* -- subgraph -------------------------------------------------------------- *)

let induced_test () =
  let g = Gen_classic.complete 5 in
  let sub, map = Subgraph.induced g [ 0; 1; 2 ] in
  Alcotest.(check int) "K3 vertices" 3 (Graph.n sub);
  Alcotest.(check int) "K3 edges" 3 (Graph.m sub);
  Alcotest.(check (array int)) "mapping" [| 0; 1; 2 |] map;
  Alcotest.check_raises "duplicates"
    (Invalid_argument "Subgraph: duplicate vertex") (fun () ->
      ignore (Subgraph.induced g [ 0; 0 ]))

let edge_subgraph_test () =
  let g = Gen_classic.cycle 5 in
  let sub = Subgraph.edge_subgraph g [ 0; 2 ] in
  Alcotest.(check int) "same vertex set" 5 (Graph.n sub);
  Alcotest.(check int) "two edges" 2 (Graph.m sub)

let contract_test () =
  let g = Gen_classic.cycle 6 in
  let gamma_g, map, gamma = Subgraph.contract g [ 0; 1; 2 ] in
  (* Contraction preserves edge count and total degree (paper, Section 2.2). *)
  Alcotest.(check int) "m preserved" (Graph.m g) (Graph.m gamma_g);
  Alcotest.(check int) "n reduced" 4 (Graph.n gamma_g);
  Alcotest.(check int) "gamma degree = d(S)" 6 (Graph.degree gamma_g gamma);
  Alcotest.(check int) "members map to gamma" gamma map.(1);
  (* Edges inside S become self-loops. *)
  Alcotest.(check int) "loops" 2 (Graph.count_self_loops gamma_g)

let contract_validation () =
  let g = triangle () in
  Alcotest.check_raises "empty" (Invalid_argument "Subgraph.contract: empty set")
    (fun () -> ignore (Subgraph.contract g []))

let remove_edges_test () =
  let g = Gen_classic.cycle 5 in
  let g2 = Subgraph.remove_edges g [ 0 ] in
  Alcotest.(check int) "one fewer" 4 (Graph.m g2);
  Alcotest.(check bool) "now a path" true (Traversal.is_connected g2)

(* -- properties ------------------------------------------------------------ *)

let random_edge_list =
  QCheck.make
    QCheck.Gen.(
      let* n = int_range 1 15 in
      let* k = int_range 0 30 in
      let* edges = list_size (return k) (pair (int_bound (n - 1)) (int_bound (n - 1))) in
      return (n, edges))

let prop_csr_wellformed =
  QCheck.Test.make ~name:"CSR invariants on random multigraphs" ~count:300
    random_edge_list (fun (n, edges) ->
      let g = Graph.of_edges ~n edges in
      let m = Graph.m g in
      (* Degree sum = 2m. *)
      Array.fold_left ( + ) 0 (Graph.degrees g) = 2 * m
      (* Each edge's positions map back to it. *)
      && List.for_all
           (fun e ->
             let p1, p2 = Graph.edge_positions g e in
             Graph.slot_edge g p1 = e && Graph.slot_edge g p2 = e)
           (List.init m (fun e -> e))
      (* Slot neighbours agree with endpoints. *)
      && List.for_all
           (fun v ->
             Graph.fold_neighbors g v
               (fun acc w e ->
                 acc
                 &&
                 let a, b = Graph.endpoints g e in
                 (a = v && b = w) || (b = v && a = w))
               true)
           (List.init n (fun v -> v)))

let prop_components_partition =
  QCheck.Test.make ~name:"components partition the vertex set" ~count:200
    random_edge_list (fun (n, edges) ->
      let g = Graph.of_edges ~n edges in
      let labels, k = Traversal.connected_components g in
      Array.for_all (fun c -> c >= 0 && c < k) labels
      && List.for_all
           (fun (u, v) -> labels.(u) = labels.(v))
           (Graph.edge_list g))

let prop_girth_vs_cycle_count =
  QCheck.Test.make ~name:"girth agrees with the cycle census" ~count:100
    random_edge_list (fun (n, edges) ->
      let g = Graph.of_edges ~n edges in
      let counts = Girth.count_cycles g ~max_len:(min 8 (n + 1)) in
      let smallest = ref None in
      Array.iteri
        (fun k c -> if c > 0 && !smallest = None then smallest := Some k)
        counts;
      match (Girth.girth_at_most g (min 8 (n + 1)), !smallest) with
      | Some gg, Some k -> gg = k
      | None, None -> true
      | Some gg, None -> gg > min 8 (n + 1) (* impossible: girth within bound *)
      | None, Some _ -> false)

let () =
  Alcotest.run "graph"
    [
      ( "core",
        [
          Alcotest.test_case "counts" `Quick graph_counts;
          Alcotest.test_case "degrees" `Quick graph_degrees;
          Alcotest.test_case "self loop" `Quick graph_self_loop;
          Alcotest.test_case "parallel edges" `Quick graph_parallel_edges;
          Alcotest.test_case "endpoints/opposite" `Quick
            graph_endpoints_opposite;
          Alcotest.test_case "slots consistent" `Quick graph_slots_consistent;
          Alcotest.test_case "neighbors" `Quick graph_neighbors;
          Alcotest.test_case "edges iteration" `Quick graph_edges_iteration;
          Alcotest.test_case "mem_edge" `Quick graph_mem_edge;
          Alcotest.test_case "validation" `Quick graph_validation;
        ] );
      ( "builder",
        [
          Alcotest.test_case "roundtrip" `Quick builder_roundtrip;
          Alcotest.test_case "validation" `Quick builder_validation;
        ] );
      ( "traversal",
        [
          Alcotest.test_case "bfs path" `Quick bfs_path;
          Alcotest.test_case "bfs bounded" `Quick bfs_bounded;
          Alcotest.test_case "components" `Quick components_test;
          Alcotest.test_case "diameter known" `Quick diameter_known;
          Alcotest.test_case "double sweep" `Quick diameter_double_sweep;
          Alcotest.test_case "bipartite" `Quick bipartite_known;
          Alcotest.test_case "dfs preorder" `Quick dfs_preorder_test;
          Alcotest.test_case "spanning forest" `Quick spanning_forest_test;
        ] );
      ( "girth",
        [
          Alcotest.test_case "known girths" `Quick girth_known;
          Alcotest.test_case "girth_at_most" `Quick girth_at_most_test;
          Alcotest.test_case "shortest cycle through" `Quick
            shortest_cycle_through_test;
          Alcotest.test_case "count cycles known" `Quick count_cycles_known;
          Alcotest.test_case "cycles through" `Quick cycles_through_test;
        ] );
      ( "subgraph",
        [
          Alcotest.test_case "induced" `Quick induced_test;
          Alcotest.test_case "edge subgraph" `Quick edge_subgraph_test;
          Alcotest.test_case "contract" `Quick contract_test;
          Alcotest.test_case "contract validation" `Quick contract_validation;
          Alcotest.test_case "remove edges" `Quick remove_edges_test;
        ] );
      ( "properties",
        [
          qcheck prop_csr_wellformed;
          qcheck prop_components_partition;
          qcheck prop_girth_vs_cycle_count;
        ] );
    ]
