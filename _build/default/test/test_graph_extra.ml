(* Tests for the extended graph toolkit: Euler circuits, combinators,
   serialisation, degree sequences, and the switch chain. *)

module Graph = Ewalk_graph.Graph
module Gen_classic = Ewalk_graph.Gen_classic
module Gen_regular = Ewalk_graph.Gen_regular
module Traversal = Ewalk_graph.Traversal
module Euler = Ewalk_graph.Euler
module Ops = Ewalk_graph.Ops
module Graph_io = Ewalk_graph.Graph_io
module Degrees = Ewalk_graph.Degrees
module Switch = Ewalk_graph.Switch
module Rng = Ewalk_prng.Rng

let qcheck = QCheck_alcotest.to_alcotest

(* -- Euler ------------------------------------------------------------------ *)

let is_valid_circuit g start edges =
  (* Chains, returns to start, and uses every edge exactly once. *)
  List.length edges = Graph.m g
  && List.sort compare edges = List.init (Graph.m g) (fun e -> e)
  &&
  let vs = Euler.circuit_vertices g ~start edges in
  match (vs, List.rev vs) with
  | first :: _, last :: _ -> first = start && last = start
  | _ -> Graph.m g = 0

let euler_known_families () =
  Alcotest.(check bool) "cycle eulerian" true
    (Euler.is_eulerian (Gen_classic.cycle 7));
  Alcotest.(check bool) "torus eulerian" true
    (Euler.is_eulerian (Gen_classic.torus2d 4 4));
  Alcotest.(check bool) "petersen not (odd degree)" false
    (Euler.is_eulerian (Gen_classic.petersen ()));
  Alcotest.(check bool) "path not" false (Euler.is_eulerian (Gen_classic.path 5));
  (* Disconnected even-degree graph is not Eulerian. *)
  let two_triangles =
    Ops.disjoint_union (Gen_classic.cycle 3) (Gen_classic.cycle 3)
  in
  Alcotest.(check bool) "disconnected not" false
    (Euler.is_eulerian two_triangles)

let euler_circuit_valid () =
  List.iter
    (fun g ->
      match Euler.euler_circuit g ~start:0 with
      | Some edges ->
          Alcotest.(check bool) "valid circuit" true
            (is_valid_circuit g 0 edges)
      | None -> Alcotest.fail "eulerian graph must have a circuit")
    [
      Gen_classic.cycle 9;
      Gen_classic.torus2d 4 5;
      Gen_classic.double_cycle 6;
      Gen_classic.complete 5;
      Gen_classic.hypercube 4;
      Graph.of_edges ~n:2 [ (0, 0); (0, 1); (0, 1) ];
    ]

let euler_rejects_non_eulerian () =
  Alcotest.(check bool) "petersen none" true
    (Euler.euler_circuit (Gen_classic.petersen ()) ~start:0 = None);
  Alcotest.(check bool) "empty graph trivial" true
    (Euler.euler_circuit (Graph.of_edges ~n:3 []) ~start:0 = Some [])

let euler_decomposition () =
  (* Two disjoint triangles decompose into exactly two closed trails. *)
  let g = Ops.disjoint_union (Gen_classic.cycle 3) (Gen_classic.cycle 3) in
  let trails = Euler.closed_trail_decomposition g in
  Alcotest.(check int) "two trails" 2 (List.length trails);
  let total = List.fold_left (fun acc t -> acc + List.length t) 0 trails in
  Alcotest.(check int) "all edges" (Graph.m g) total;
  (* Every even graph decomposes completely. *)
  let rng = Rng.create ~seed:1 () in
  let g2 = Gen_regular.cycle_union rng 20 2 in
  let trails2 = Euler.closed_trail_decomposition g2 in
  let total2 = List.fold_left (fun acc t -> acc + List.length t) 0 trails2 in
  Alcotest.(check int) "complete partition" (Graph.m g2) total2;
  Alcotest.check_raises "odd degree"
    (Invalid_argument "Euler.closed_trail_decomposition: odd-degree vertex")
    (fun () ->
      ignore (Euler.closed_trail_decomposition (Gen_classic.petersen ())))

let euler_circuit_vertices_checks () =
  let g = Gen_classic.cycle 4 in
  Alcotest.check_raises "broken chain"
    (Invalid_argument "Euler.circuit_vertices: edges do not chain") (fun () ->
      ignore (Euler.circuit_vertices g ~start:0 [ 0; 3 ]))

(* -- Ops --------------------------------------------------------------------- *)

let ops_disjoint_union () =
  let g = Ops.disjoint_union (Gen_classic.cycle 3) (Gen_classic.path 4) in
  Alcotest.(check int) "n adds" 7 (Graph.n g);
  Alcotest.(check int) "m adds" 6 (Graph.m g);
  let _, k = Traversal.connected_components g in
  Alcotest.(check int) "two components" 2 k

let ops_product_hypercube () =
  (* K2 x K2 x K2 = H_3. *)
  let k2 = Gen_classic.path 2 in
  let h3 = Ops.cartesian_product (Ops.cartesian_product k2 k2) k2 in
  Alcotest.(check int) "n" 8 (Graph.n h3);
  Alcotest.(check int) "m" 12 (Graph.m h3);
  Alcotest.(check bool) "3-regular" true
    (Graph.is_regular h3 && Graph.max_degree h3 = 3);
  Alcotest.(check bool) "bipartite like H3" true (Traversal.is_bipartite h3);
  Alcotest.(check int) "diameter 3" 3 (Traversal.diameter h3)

let ops_product_torus () =
  (* C4 x C5 = 4x5 torus. *)
  let t = Ops.cartesian_product (Gen_classic.cycle 4) (Gen_classic.cycle 5) in
  let reference = Gen_classic.torus2d 4 5 in
  Alcotest.(check int) "n" (Graph.n reference) (Graph.n t);
  Alcotest.(check int) "m" (Graph.m reference) (Graph.m t);
  Alcotest.(check bool) "4-regular" true
    (Graph.is_regular t && Graph.max_degree t = 4);
  Alcotest.(check bool) "connected" true (Traversal.is_connected t);
  Alcotest.(check (option int)) "girth" (Ewalk_graph.Girth.girth reference)
    (Ewalk_graph.Girth.girth t)

let ops_complement () =
  let c5 = Gen_classic.cycle 5 in
  let comp = Ops.complement c5 in
  (* Complement of C5 is C5 again. *)
  Alcotest.(check int) "m" 5 (Graph.m comp);
  Alcotest.(check bool) "2-regular" true
    (Graph.is_regular comp && Graph.max_degree comp = 2);
  Alcotest.(check bool) "connected" true (Traversal.is_connected comp);
  let k4 = Gen_classic.complete 4 in
  Alcotest.(check int) "complement of complete is empty" 0
    (Graph.m (Ops.complement k4))

let ops_line_graph () =
  (* L(K4) is 4-regular on 6 vertices (the octahedron). *)
  let l = Ops.line_graph (Gen_classic.complete 4) in
  Alcotest.(check int) "n = m of K4" 6 (Graph.n l);
  Alcotest.(check bool) "4-regular" true
    (Graph.is_regular l && Graph.max_degree l = 4);
  Alcotest.(check int) "m = 12" 12 (Graph.m l);
  (* Line graph of a cubic graph is even-degree: the Theorem 1 trick. *)
  let lp = Ops.line_graph (Gen_classic.petersen ()) in
  Alcotest.(check bool) "L(petersen) 4-regular even" true
    (Graph.is_regular lp && Graph.max_degree lp = 4
    && Graph.all_degrees_even lp)


let ops_double_edges () =
  let g = Ewalk_graph.Gen_classic.petersen () in
  let d = Ops.double_edges g in
  Alcotest.(check int) "m doubled" (2 * Graph.m g) (Graph.m d);
  Alcotest.(check bool) "even degrees" true (Graph.all_degrees_even d);
  Alcotest.(check int) "degree doubled" 6 (Graph.max_degree d);
  (* Duplicate of edge e is edge m + e with the same endpoints. *)
  for e = 0 to Graph.m g - 1 do
    Alcotest.(check (pair int int)) "duplicate endpoints"
      (Graph.endpoints d e)
      (Graph.endpoints d (Graph.m g + e))
  done

let ops_relabel () =
  let g = Gen_classic.path 4 in
  let perm = [| 3; 2; 1; 0 |] in
  let r = Ops.relabel g perm in
  Alcotest.(check bool) "same shape" true
    (Graph.m r = 3 && Graph.degree r 3 = 1 && Graph.degree r 2 = 2);
  Alcotest.check_raises "not a permutation"
    (Invalid_argument "Ops.relabel: not a permutation") (fun () ->
      ignore (Ops.relabel g [| 0; 0; 1; 2 |]))

(* -- Graph_io ------------------------------------------------------------------ *)

let io_roundtrip () =
  let g = Gen_classic.petersen () in
  let g2 = Graph_io.of_string (Graph_io.to_string g) in
  Alcotest.(check int) "n" (Graph.n g) (Graph.n g2);
  Alcotest.(check (list (pair int int))) "edges preserved in order"
    (Graph.edge_list g) (Graph.edge_list g2)

let io_multigraph_roundtrip () =
  let g = Graph.of_edges ~n:3 [ (0, 0); (1, 2); (1, 2) ] in
  let g2 = Graph_io.of_string (Graph_io.to_string g) in
  Alcotest.(check int) "loops kept" 1 (Graph.count_self_loops g2);
  Alcotest.(check int) "parallels kept" 1 (Graph.count_parallel_edges g2)

let io_comments_and_blanks () =
  let g = Graph_io.of_string "# a comment\n\n3 2\n0 1\n\n# another\n1 2\n" in
  Alcotest.(check int) "n" 3 (Graph.n g);
  Alcotest.(check int) "m" 2 (Graph.m g)

let io_malformed () =
  List.iter
    (fun s ->
      match Graph_io.of_string s with
      | exception Failure _ -> ()
      | _ -> Alcotest.fail ("should reject " ^ String.escaped s))
    [ ""; "2"; "2 1\n0 5"; "2 2\n0 1"; "x y\n"; "2 1\n0 1\n0 1" ]

let io_file_roundtrip () =
  let g = Gen_classic.torus2d 3 3 in
  let path = Filename.temp_file "ewalk" ".graph" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Graph_io.save path g;
      let g2 = Graph_io.load path in
      Alcotest.(check (list (pair int int))) "file roundtrip"
        (Graph.edge_list g) (Graph.edge_list g2))

(* -- Degrees ---------------------------------------------------------------- *)

let degrees_graphical () =
  Alcotest.(check bool) "regular ok" true (Degrees.is_graphical [| 2; 2; 2 |]);
  Alcotest.(check bool) "star ok" true (Degrees.is_graphical [| 3; 1; 1; 1 |]);
  Alcotest.(check bool) "odd sum" false (Degrees.is_graphical [| 1; 1; 1 |]);
  Alcotest.(check bool) "too big" false (Degrees.is_graphical [| 3; 1; 1 |]);
  Alcotest.(check bool) "negative" false (Degrees.is_graphical [| -1; 1 |]);
  (* Erdős–Gallai catches non-graphical even-sum sequences. *)
  Alcotest.(check bool) "4,4,1,1,1,1 not graphical" false
    (Degrees.is_graphical [| 4; 4; 1; 1; 1; 1 |])

let degrees_havel_hakimi () =
  (match Degrees.havel_hakimi [| 2; 2; 2; 2 |] with
  | Some g ->
      Alcotest.(check (array int)) "realises" [| 2; 2; 2; 2 |]
        (Graph.degrees g);
      Alcotest.(check bool) "simple" true (Graph.is_simple g)
  | None -> Alcotest.fail "C4 sequence is graphical");
  (match Degrees.havel_hakimi [| 3; 3; 3; 3; 3; 3 |] with
  | Some g ->
      Alcotest.(check bool) "3-regular on 6" true
        (Graph.is_simple g && Graph.degrees g = [| 3; 3; 3; 3; 3; 3 |])
  | None -> Alcotest.fail "K33-ish sequence is graphical");
  Alcotest.(check bool) "non-graphical gives none" true
    (Degrees.havel_hakimi [| 4; 4; 1; 1; 1; 1 |] = None)

let degrees_sorted () =
  Alcotest.(check (array int)) "sorted desc" [| 5; 3; 1 |]
    (Degrees.sorted_descending [| 3; 5; 1 |])

(* -- Switch ------------------------------------------------------------------ *)

let switch_preserves_degrees () =
  let rng = Rng.create ~seed:2 () in
  let g = Gen_regular.random_regular rng 30 4 in
  let g2 = Switch.randomize rng g ~switches:200 in
  Alcotest.(check (array int)) "degrees preserved" (Graph.degrees g)
    (Graph.degrees g2);
  Alcotest.(check bool) "stays simple" true (Graph.is_simple g2)

let switch_changes_graph () =
  let rng = Rng.create ~seed:3 () in
  let g = Gen_classic.cycle 12 in
  let g2 = Switch.randomize rng g ~switches:30 in
  (* A randomised cycle is almost surely no longer a single cycle. *)
  Alcotest.(check bool) "edge set changed" true
    (Graph.edge_list g <> Graph.edge_list g2)

let switch_validation () =
  let rng = Rng.create () in
  Alcotest.check_raises "multigraph rejected"
    (Invalid_argument "Switch: graph is not simple") (fun () ->
      ignore
        (Switch.randomize rng (Graph.of_edges ~n:2 [ (0, 1); (0, 1) ])
           ~switches:1))

let switch_once_works_eventually () =
  let rng = Rng.create ~seed:4 () in
  let g = Gen_classic.complete_bipartite 3 3 in
  let succeeded = ref false in
  for _ = 1 to 50 do
    if not !succeeded then
      match Switch.switch_once rng g with
      | Some g2 ->
          succeeded := true;
          Alcotest.(check (array int)) "degrees" (Graph.degrees g)
            (Graph.degrees g2)
      | None -> ()
  done;
  Alcotest.(check bool) "eventually switches" true !succeeded


let find_short_cycle_test () =
  (* Cycle graph: the unique cycle is found when within the bound. *)
  let g = Gen_classic.cycle 6 in
  (match Ewalk_graph.Girth.find_short_cycle g ~shorter_than:7 with
  | Some edges ->
      Alcotest.(check int) "the hexagon" 6 (List.length edges);
      Alcotest.(check (list int)) "all its edges" [ 0; 1; 2; 3; 4; 5 ]
        (List.sort compare edges)
  | None -> Alcotest.fail "cycle within bound");
  Alcotest.(check bool) "not shorter than 6" true
    (Ewalk_graph.Girth.find_short_cycle g ~shorter_than:6 = None);
  (* Trees have no cycle. *)
  Alcotest.(check bool) "tree" true
    (Ewalk_graph.Girth.find_short_cycle (Gen_classic.binary_tree 3)
       ~shorter_than:100
    = None);
  (* Self-loop and digon conventions. *)
  (match
     Ewalk_graph.Girth.find_short_cycle
       (Graph.of_edges ~n:2 [ (0, 0); (0, 1) ])
       ~shorter_than:3
   with
  | Some [ e ] -> Alcotest.(check int) "the loop" 0 e
  | _ -> Alcotest.fail "loop is a 1-cycle");
  (* The returned edges always form a closed chain. *)
  let k5 = Gen_classic.complete 5 in
  match Ewalk_graph.Girth.find_short_cycle k5 ~shorter_than:4 with
  | Some edges ->
      Alcotest.(check int) "triangle" 3 (List.length edges);
      let touched = Hashtbl.create 8 in
      List.iter
        (fun e ->
          let u, v = Graph.endpoints k5 e in
          List.iter
            (fun x ->
              Hashtbl.replace touched x
                (1 + Option.value ~default:0 (Hashtbl.find_opt touched x)))
            [ u; v ])
        edges;
      Hashtbl.iter
        (fun _ c -> Alcotest.(check int) "each vertex twice" 2 c)
        touched
  | None -> Alcotest.fail "K5 has triangles"

let boost_girth_test () =
  let rng = Rng.create ~seed:5 () in
  let g = Gen_regular.random_regular_connected rng 300 4 in
  let b = Switch.boost_girth rng g ~target:6 in
  Alcotest.(check (array int)) "degrees preserved" (Graph.degrees g)
    (Graph.degrees b);
  Alcotest.(check bool) "simple" true (Graph.is_simple b);
  (match Ewalk_graph.Girth.girth_at_most b 5 with
  | None -> ()
  | Some gi -> Alcotest.failf "short cycle of length %d survived" gi);
  Alcotest.check_raises "bad target"
    (Invalid_argument "Switch.boost_girth: target < 3") (fun () ->
      ignore (Switch.boost_girth rng g ~target:2))

let prop_switch_chain_invariants =
  QCheck.Test.make ~name:"switch chain preserves degrees and simplicity"
    ~count:50 QCheck.(small_int)
    (fun seed ->
      let rng = Rng.create ~seed () in
      let g = Gen_regular.random_regular rng 16 3 in
      let g2 = Switch.randomize rng g ~switches:40 in
      Graph.degrees g2 = Graph.degrees g && Graph.is_simple g2)

let prop_euler_on_even_graphs =
  QCheck.Test.make ~name:"every connected even graph has an Euler circuit"
    ~count:50 QCheck.(pair small_int (int_range 1 3))
    (fun (seed, r) ->
      let rng = Rng.create ~seed () in
      let g = Gen_regular.cycle_union rng 12 r in
      match Euler.euler_circuit g ~start:0 with
      | Some edges -> is_valid_circuit g 0 edges
      | None -> false)

let prop_product_degree_sum =
  QCheck.Test.make ~name:"product degrees add" ~count:50
    QCheck.(pair (int_range 3 6) (int_range 3 6))
    (fun (a, b) ->
      let g = Ops.cartesian_product (Gen_classic.cycle a) (Gen_classic.cycle b) in
      Graph.is_regular g && Graph.max_degree g = 4
      && Graph.n g = a * b
      && Graph.m g = 2 * a * b)

let () =
  Alcotest.run "graph_extra"
    [
      ( "euler",
        [
          Alcotest.test_case "known families" `Quick euler_known_families;
          Alcotest.test_case "circuit valid" `Quick euler_circuit_valid;
          Alcotest.test_case "non-eulerian" `Quick euler_rejects_non_eulerian;
          Alcotest.test_case "decomposition" `Quick euler_decomposition;
          Alcotest.test_case "vertex expansion checks" `Quick
            euler_circuit_vertices_checks;
        ] );
      ( "ops",
        [
          Alcotest.test_case "disjoint union" `Quick ops_disjoint_union;
          Alcotest.test_case "product = hypercube" `Quick ops_product_hypercube;
          Alcotest.test_case "product = torus" `Quick ops_product_torus;
          Alcotest.test_case "complement" `Quick ops_complement;
          Alcotest.test_case "line graph" `Quick ops_line_graph;
          Alcotest.test_case "double edges" `Quick ops_double_edges;
          Alcotest.test_case "relabel" `Quick ops_relabel;
        ] );
      ( "io",
        [
          Alcotest.test_case "roundtrip" `Quick io_roundtrip;
          Alcotest.test_case "multigraph" `Quick io_multigraph_roundtrip;
          Alcotest.test_case "comments" `Quick io_comments_and_blanks;
          Alcotest.test_case "malformed" `Quick io_malformed;
          Alcotest.test_case "file roundtrip" `Quick io_file_roundtrip;
        ] );
      ( "degrees",
        [
          Alcotest.test_case "graphical" `Quick degrees_graphical;
          Alcotest.test_case "havel-hakimi" `Quick degrees_havel_hakimi;
          Alcotest.test_case "sorted" `Quick degrees_sorted;
        ] );
      ( "switch",
        [
          Alcotest.test_case "preserves degrees" `Quick
            switch_preserves_degrees;
          Alcotest.test_case "changes graph" `Quick switch_changes_graph;
          Alcotest.test_case "validation" `Quick switch_validation;
          Alcotest.test_case "switch once" `Quick switch_once_works_eventually;
          Alcotest.test_case "find short cycle" `Quick find_short_cycle_test;
          Alcotest.test_case "boost girth" `Quick boost_girth_test;
        ] );
      ( "properties",
        [
          qcheck prop_switch_chain_invariants;
          qcheck prop_euler_on_even_graphs;
          qcheck prop_product_degree_sum;
        ] );
    ]
