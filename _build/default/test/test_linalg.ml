(* Tests for Ewalk_linalg: vectors, dense matrices, Jacobi, CSR, power
   iteration. *)

module Vec = Ewalk_linalg.Vec
module Matrix = Ewalk_linalg.Matrix
module Jacobi = Ewalk_linalg.Jacobi
module Csr = Ewalk_linalg.Csr
module Power = Ewalk_linalg.Power
module Rng = Ewalk_prng.Rng

let feps = 1e-8
let close msg a b = Alcotest.(check (float feps)) msg a b
let qcheck = QCheck_alcotest.to_alcotest

(* -- Vec ------------------------------------------------------------------ *)

let vec_dot () =
  close "dot" 32.0 (Vec.dot [| 1.; 2.; 3. |] [| 4.; 5.; 6. |]);
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Vec.dot: length mismatch") (fun () ->
      ignore (Vec.dot [| 1. |] [| 1.; 2. |]))

let vec_norm () =
  close "norm 3-4-5" 5.0 (Vec.norm2 [| 3.; 4. |]);
  close "norm zero" 0.0 (Vec.norm2 [| 0.; 0. |])

let vec_scale_axpy () =
  let v = Vec.scale 2.0 [| 1.; -2. |] in
  close "scale x" 2.0 v.(0);
  close "scale y" (-4.0) v.(1);
  let y = [| 1.; 1. |] in
  Vec.axpy 3.0 [| 2.; 0. |] y;
  close "axpy x" 7.0 y.(0);
  close "axpy y" 1.0 y.(1)

let vec_normalize () =
  let v = [| 3.; 4. |] in
  Vec.normalize v;
  close "unit norm" 1.0 (Vec.norm2 v);
  let z = [| 0.; 0. |] in
  Vec.normalize z;
  close "zero stays zero" 0.0 (Vec.norm2 z)

let vec_project_out () =
  let u = [| 1.; 0. |] in
  let v = [| 5.; 7. |] in
  Vec.project_out u v;
  close "component removed" 0.0 v.(0);
  close "orthogonal survives" 7.0 v.(1)

let vec_random_unit () =
  let rng = Rng.create ~seed:1 () in
  for _ = 1 to 20 do
    let v = Vec.random_unit rng 5 in
    close "unit" 1.0 (Vec.norm2 v)
  done

let vec_linf () =
  close "linf" 3.0 (Vec.linf_dist [| 1.; 5. |] [| 4.; 4. |])

(* -- Matrix --------------------------------------------------------------- *)

let matrix_basic () =
  let m = Matrix.init 3 (fun i j -> float_of_int ((3 * i) + j)) in
  close "get" 5.0 (Matrix.get m 1 2);
  Matrix.set m 1 2 9.0;
  close "set" 9.0 (Matrix.get m 1 2);
  Alcotest.(check int) "dim" 3 (Matrix.dim m)

let matrix_identity_mul () =
  let m = Matrix.init 4 (fun i j -> float_of_int (i + j)) in
  let i4 = Matrix.identity 4 in
  let p = Matrix.mul m i4 in
  for i = 0 to 3 do
    for j = 0 to 3 do
      close "M*I = M" (Matrix.get m i j) (Matrix.get p i j)
    done
  done

let matrix_mul_vec () =
  let m = Matrix.init 2 (fun i j -> float_of_int ((2 * i) + j + 1)) in
  (* [[1 2];[3 4]] * [1;1] = [3;7] *)
  let v = Matrix.mul_vec m [| 1.; 1. |] in
  close "row 0" 3.0 v.(0);
  close "row 1" 7.0 v.(1)

let matrix_transpose_symmetric () =
  let m = Matrix.init 3 (fun i j -> float_of_int (i - j)) in
  let t = Matrix.transpose m in
  close "transposed" (Matrix.get m 0 2) (Matrix.get t 2 0);
  Alcotest.(check bool) "skew not symmetric" false (Matrix.is_symmetric m);
  let s = Matrix.init 3 (fun i j -> float_of_int (i * j)) in
  Alcotest.(check bool) "product symmetric" true (Matrix.is_symmetric s)

(* -- Jacobi --------------------------------------------------------------- *)

let jacobi_2x2 () =
  (* [[2 1];[1 2]] has eigenvalues 3 and 1. *)
  let m = Matrix.init 2 (fun i j -> if i = j then 2.0 else 1.0) in
  let eigs = Jacobi.eigenvalues m in
  close "largest" 3.0 eigs.(0);
  close "smallest" 1.0 eigs.(1)

let jacobi_diagonal () =
  let m = Matrix.create 4 in
  List.iteri (fun i v -> Matrix.set m i i v) [ 4.0; -1.0; 2.5; 0.0 ];
  let eigs = Jacobi.eigenvalues m in
  close "e0" 4.0 eigs.(0);
  close "e1" 2.5 eigs.(1);
  close "e2" 0.0 eigs.(2);
  close "e3" (-1.0) eigs.(3)

let jacobi_path_graph () =
  (* Adjacency of the path P_n has eigenvalues 2 cos(k pi / (n+1)). *)
  let n = 7 in
  let m =
    Matrix.init n (fun i j -> if abs (i - j) = 1 then 1.0 else 0.0)
  in
  let eigs = Jacobi.eigenvalues m in
  for k = 1 to n do
    let expected =
      2.0 *. cos (float_of_int k *. Float.pi /. float_of_int (n + 1))
    in
    close (Printf.sprintf "path eig %d" k) expected eigs.(k - 1)
  done

let jacobi_eigensystem_orthonormal () =
  let rng = Rng.create ~seed:2 () in
  let n = 8 in
  let a = Matrix.create n in
  for i = 0 to n - 1 do
    for j = i to n - 1 do
      let v = Rng.float rng 2.0 -. 1.0 in
      Matrix.set a i j v;
      Matrix.set a j i v
    done
  done;
  let eigs, vecs = Jacobi.eigensystem a in
  (* Columns orthonormal. *)
  for c1 = 0 to n - 1 do
    for c2 = 0 to n - 1 do
      let dot = ref 0.0 in
      for r = 0 to n - 1 do
        dot := !dot +. (Matrix.get vecs r c1 *. Matrix.get vecs r c2)
      done;
      let expected = if c1 = c2 then 1.0 else 0.0 in
      Alcotest.(check (float 1e-6))
        "orthonormal columns" expected !dot
    done
  done;
  (* A v = lambda v for each column. *)
  for c = 0 to n - 1 do
    let v = Array.init n (fun r -> Matrix.get vecs r c) in
    let av = Matrix.mul_vec a v in
    for r = 0 to n - 1 do
      Alcotest.(check (float 1e-6))
        "eigen equation" (eigs.(c) *. v.(r)) av.(r)
    done
  done

let jacobi_rejects_asymmetric () =
  let m = Matrix.init 2 (fun i j -> float_of_int (i + (2 * j))) in
  Alcotest.check_raises "asymmetric"
    (Invalid_argument "Jacobi.eigensystem: matrix is not symmetric") (fun () ->
      ignore (Jacobi.eigenvalues m))

(* -- CSR ------------------------------------------------------------------ *)

let csr_basic () =
  let m = Csr.of_rows 3 [ (0, 1, 2.0); (1, 0, 3.0); (2, 2, 4.0) ] in
  Alcotest.(check int) "dim" 3 (Csr.dim m);
  Alcotest.(check int) "nnz" 3 (Csr.nnz m);
  let y = Csr.mul_vec m [| 1.; 1.; 1. |] in
  close "row0" 2.0 y.(0);
  close "row1" 3.0 y.(1);
  close "row2" 4.0 y.(2)

let csr_duplicates_summed () =
  let m = Csr.of_rows 2 [ (0, 0, 1.0); (0, 0, 2.5) ] in
  Alcotest.(check int) "merged" 1 (Csr.nnz m);
  let y = Csr.mul_vec m [| 1.; 0. |] in
  close "summed" 3.5 y.(0)

let csr_out_of_range () =
  Alcotest.check_raises "bad index"
    (Invalid_argument "Csr.of_rows: index out of range") (fun () ->
      ignore (Csr.of_rows 2 [ (0, 2, 1.0) ]))

let csr_matches_dense () =
  let rng = Rng.create ~seed:3 () in
  let n = 10 in
  let entries = ref [] in
  for _ = 1 to 30 do
    entries := (Rng.int rng n, Rng.int rng n, Rng.float rng 1.0) :: !entries
  done;
  let sparse = Csr.of_rows n !entries in
  let dense = Csr.to_dense sparse in
  let x = Array.init n (fun i -> float_of_int i) in
  let ys = Csr.mul_vec sparse x and yd = Matrix.mul_vec dense x in
  for i = 0 to n - 1 do
    Alcotest.(check (float 1e-9)) "sparse = dense" yd.(i) ys.(i)
  done

let csr_transpose () =
  let m = Csr.of_rows 3 [ (0, 1, 2.0); (2, 0, 5.0) ] in
  let t = Csr.transpose m in
  let y = Csr.mul_vec t [| 1.; 1.; 1. |] in
  (* transpose entries: (1,0,2.0), (0,2,5.0) *)
  close "t row0" 5.0 y.(0);
  close "t row1" 2.0 y.(1);
  close "t row2" 0.0 y.(2)

let csr_of_row_fun () =
  let m = Csr.of_row_fun 3 (fun i -> [ (i, 1.0) ]) in
  let y = Csr.mul_vec m [| 1.; 2.; 3. |] in
  close "identity-ish" 1.0 y.(0);
  close "identity-ish" 2.0 y.(1);
  close "identity-ish" 3.0 y.(2)

(* -- Power iteration ------------------------------------------------------ *)

let power_dominant_diagonal () =
  let m = Matrix.create 3 in
  List.iteri (fun i v -> Matrix.set m i i v) [ 1.0; 5.0; 2.0 ];
  let lambda, v = Power.dominant (Power.of_matrix m) in
  Alcotest.(check (float 1e-6)) "dominant eigenvalue" 5.0 lambda;
  Alcotest.(check (float 1e-3)) "eigenvector" 1.0 (Float.abs v.(1))

let power_dominant_negative () =
  let m = Matrix.create 2 in
  Matrix.set m 0 0 (-7.0);
  Matrix.set m 1 1 3.0;
  let lambda, _ = Power.dominant (Power.of_matrix m) in
  Alcotest.(check (float 1e-6)) "negative dominant" (-7.0) lambda

let power_deflation () =
  let m = Matrix.create 3 in
  List.iteri (fun i v -> Matrix.set m i i v) [ 6.0; 4.0; 1.0 ];
  let top = [| 1.0; 0.0; 0.0 |] in
  let lambda =
    Power.second_largest_magnitude ~top_eigenvector:top (Power.of_matrix m)
  in
  Alcotest.(check (float 1e-6)) "second eigenvalue" 4.0 lambda

let power_matches_jacobi () =
  let rng = Rng.create ~seed:4 () in
  let n = 12 in
  let a = Matrix.create n in
  for i = 0 to n - 1 do
    for j = i to n - 1 do
      let v = Rng.float rng 2.0 -. 1.0 in
      Matrix.set a i j v;
      Matrix.set a j i v
    done
  done;
  let eigs = Jacobi.eigenvalues a in
  let dominant_abs =
    Array.fold_left (fun acc e -> Float.max acc (Float.abs e)) 0.0 eigs
  in
  let lambda, _ = Power.dominant ~tol:1e-12 (Power.of_matrix a) in
  Alcotest.(check (float 1e-5)) "power = jacobi" dominant_abs (Float.abs lambda)

let prop_csr_linear =
  QCheck.Test.make ~name:"csr mat-vec is linear" ~count:100
    QCheck.(small_int)
    (fun seed ->
      let rng = Rng.create ~seed () in
      let n = 6 in
      let entries = ref [] in
      for _ = 1 to 12 do
        entries := (Rng.int rng n, Rng.int rng n, Rng.float rng 1.0) :: !entries
      done;
      let m = Csr.of_rows n !entries in
      let x = Array.init n (fun _ -> Rng.float rng 1.0) in
      let y = Array.init n (fun _ -> Rng.float rng 1.0) in
      let xy = Array.init n (fun i -> x.(i) +. y.(i)) in
      let mx = Csr.mul_vec m x and my = Csr.mul_vec m y in
      let mxy = Csr.mul_vec m xy in
      Array.for_all
        (fun i -> Float.abs (mxy.(i) -. (mx.(i) +. my.(i))) < 1e-9)
        (Array.init n (fun i -> i)))

let () =
  Alcotest.run "linalg"
    [
      ( "vec",
        [
          Alcotest.test_case "dot" `Quick vec_dot;
          Alcotest.test_case "norm" `Quick vec_norm;
          Alcotest.test_case "scale/axpy" `Quick vec_scale_axpy;
          Alcotest.test_case "normalize" `Quick vec_normalize;
          Alcotest.test_case "project_out" `Quick vec_project_out;
          Alcotest.test_case "random_unit" `Quick vec_random_unit;
          Alcotest.test_case "linf" `Quick vec_linf;
        ] );
      ( "matrix",
        [
          Alcotest.test_case "basic" `Quick matrix_basic;
          Alcotest.test_case "identity mul" `Quick matrix_identity_mul;
          Alcotest.test_case "mul_vec" `Quick matrix_mul_vec;
          Alcotest.test_case "transpose/symmetric" `Quick
            matrix_transpose_symmetric;
        ] );
      ( "jacobi",
        [
          Alcotest.test_case "2x2" `Quick jacobi_2x2;
          Alcotest.test_case "diagonal" `Quick jacobi_diagonal;
          Alcotest.test_case "path graph spectrum" `Quick jacobi_path_graph;
          Alcotest.test_case "eigensystem orthonormal" `Quick
            jacobi_eigensystem_orthonormal;
          Alcotest.test_case "rejects asymmetric" `Quick
            jacobi_rejects_asymmetric;
        ] );
      ( "csr",
        [
          Alcotest.test_case "basic" `Quick csr_basic;
          Alcotest.test_case "duplicates summed" `Quick csr_duplicates_summed;
          Alcotest.test_case "out of range" `Quick csr_out_of_range;
          Alcotest.test_case "matches dense" `Quick csr_matches_dense;
          Alcotest.test_case "transpose" `Quick csr_transpose;
          Alcotest.test_case "of_row_fun" `Quick csr_of_row_fun;
        ] );
      ( "power",
        [
          Alcotest.test_case "dominant diagonal" `Quick power_dominant_diagonal;
          Alcotest.test_case "dominant negative" `Quick power_dominant_negative;
          Alcotest.test_case "deflation" `Quick power_deflation;
          Alcotest.test_case "matches jacobi" `Quick power_matches_jacobi;
        ] );
      ("properties", [ qcheck prop_csr_linear ]);
    ]
