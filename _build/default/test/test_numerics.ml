(* Tests for the numeric extensions: dense solves, Lanczos, exact hitting
   times, and the Metropolis walk. *)

module Graph = Ewalk_graph.Graph
module Gen_classic = Ewalk_graph.Gen_classic
module Gen_regular = Ewalk_graph.Gen_regular
module Matrix = Ewalk_linalg.Matrix
module Solve = Ewalk_linalg.Solve
module Lanczos = Ewalk_linalg.Lanczos
module Power = Ewalk_linalg.Power
module Jacobi = Ewalk_linalg.Jacobi
module Spectral = Ewalk_spectral.Spectral
module Hitting = Ewalk_spectral.Hitting
module Rng = Ewalk_prng.Rng

let qcheck = QCheck_alcotest.to_alcotest
let closef tol msg a b = Alcotest.(check (float tol)) msg a b

(* -- Solve ----------------------------------------------------------------- *)

let solve_known_system () =
  (* [[2 1];[1 3]] x = [5; 10] -> x = [1; 3]. *)
  let a = Matrix.init 2 (fun i j -> if i = j then float_of_int (2 + i) else 1.0) in
  let x = Solve.solve a [| 5.0; 10.0 |] in
  closef 1e-10 "x0" 1.0 x.(0);
  closef 1e-10 "x1" 3.0 x.(1)

let solve_identity () =
  let x = Solve.solve (Matrix.identity 4) [| 1.0; 2.0; 3.0; 4.0 |] in
  Array.iteri (fun i v -> closef 1e-12 "identity" (float_of_int (i + 1)) v) x

let solve_random_consistency () =
  let rng = Rng.create ~seed:1 () in
  for _ = 1 to 10 do
    let n = 8 in
    let a =
      Matrix.init n (fun i j ->
          Rng.float rng 2.0 -. 1.0 +. if i = j then 4.0 else 0.0)
    in
    let x_true = Array.init n (fun _ -> Rng.float rng 2.0 -. 1.0) in
    let b = Matrix.mul_vec a x_true in
    let x = Solve.solve a b in
    Array.iteri (fun i v -> closef 1e-8 "recovered" x_true.(i) v) x
  done

let solve_singular () =
  let a = Matrix.create 2 in
  Matrix.set a 0 0 1.0;
  Matrix.set a 0 1 1.0;
  Matrix.set a 1 0 1.0;
  Matrix.set a 1 1 1.0;
  Alcotest.check_raises "singular" (Failure "Solve: singular matrix")
    (fun () -> ignore (Solve.solve a [| 1.0; 2.0 |]))

let solve_many_columns () =
  let a = Matrix.init 3 (fun i j -> if i = j then 2.0 else 0.0) in
  let b = Matrix.init 3 (fun i j -> float_of_int ((i * 3) + j)) in
  let x = Solve.solve_many a b in
  for i = 0 to 2 do
    for j = 0 to 2 do
      closef 1e-12 "halved" (Matrix.get b i j /. 2.0) (Matrix.get x i j)
    done
  done

let determinant_probe () =
  let a = Matrix.init 2 (fun i j -> if i = j then 3.0 else 1.0) in
  let sign, log_abs = Solve.determinant_sign_log a in
  closef 1e-10 "det 8" (log 8.0) log_abs;
  closef 1e-12 "positive" 1.0 sign

(* -- Lanczos ---------------------------------------------------------------- *)

let lanczos_diagonal () =
  let m = Matrix.create 5 in
  List.iteri (fun i v -> Matrix.set m i i v) [ 3.0; -2.0; 7.0; 0.5; -5.0 ];
  let top, bottom = Lanczos.extreme (Power.of_matrix m) in
  closef 1e-6 "largest" 7.0 top;
  closef 1e-6 "smallest" (-5.0) bottom

let lanczos_matches_jacobi () =
  let rng = Rng.create ~seed:2 () in
  let n = 20 in
  let a = Matrix.create n in
  for i = 0 to n - 1 do
    for j = i to n - 1 do
      let v = Rng.float rng 2.0 -. 1.0 in
      Matrix.set a i j v;
      Matrix.set a j i v
    done
  done;
  let eigs = Jacobi.eigenvalues a in
  let top, bottom = Lanczos.extreme ~steps:n (Power.of_matrix a) in
  closef 1e-6 "top" eigs.(0) top;
  closef 1e-6 "bottom" eigs.(n - 1) bottom

let lanczos_deflated_second () =
  let m = Matrix.create 4 in
  List.iteri (fun i v -> Matrix.set m i i v) [ 9.0; 6.0; 2.0; 1.0 ];
  let top = [| 1.0; 0.0; 0.0; 0.0 |] in
  let second = Lanczos.second_largest ~deflate:top (Power.of_matrix m) in
  closef 1e-6 "second" 6.0 second

let lanczos_graph_lambda2 () =
  (* Against the exact spectrum on graphs where power iteration is fine
     anyway, and on the cycle where lambda_2 is analytic. *)
  let g = Gen_classic.cycle 24 in
  closef 1e-6 "cycle lambda_2"
    (cos (2.0 *. Float.pi /. 24.0))
    (Spectral.lambda_2_lanczos g);
  let rng = Rng.create ~seed:3 () in
  let gr = Gen_regular.random_regular_connected rng 80 4 in
  closef 1e-5 "random regular lambda_2" (Spectral.gap_exact gr).Spectral.lambda_2
    (Spectral.lambda_2_lanczos gr)

let lanczos_gap_report () =
  let g = Gen_classic.cycle 16 in
  let r = Spectral.gap_lanczos g in
  let exact = Spectral.gap_exact g in
  closef 1e-6 "lambda_2" exact.Spectral.lambda_2 r.Spectral.lambda_2;
  closef 1e-6 "lambda_n" exact.Spectral.lambda_n r.Spectral.lambda_n;
  closef 1e-6 "lambda_max" exact.Spectral.lambda_max r.Spectral.lambda_max

(* -- Hitting ----------------------------------------------------------------- *)

let hitting_complete_graph () =
  (* K_n: E_u H_v = n - 1 for u <> v. *)
  let n = 10 in
  let h = Hitting.hitting_times_to (Gen_classic.complete n) ~target:0 in
  closef 1e-9 "target zero" 0.0 h.(0);
  for u = 1 to n - 1 do
    closef 1e-8 "n - 1" (float_of_int (n - 1)) h.(u)
  done

let hitting_cycle_formula () =
  (* C_n: E_u H_v = k (n - k) where k is the distance. *)
  let n = 12 in
  let g = Gen_classic.cycle n in
  let h = Hitting.hitting_times_to g ~target:0 in
  for u = 1 to n - 1 do
    let k = min u (n - u) in
    closef 1e-8 "k(n-k)" (float_of_int (k * (n - k))) h.(u)
  done

let hitting_path_formula () =
  (* Path 0..n-1: E_0 H_{n-1} = (n-1)^2. *)
  let n = 9 in
  let h = Hitting.hitting_times_to (Gen_classic.path n) ~target:(n - 1) in
  closef 1e-8 "(n-1)^2" (float_of_int ((n - 1) * (n - 1))) h.(0)

let hitting_return_identity () =
  (* E_v T_v^+ = 1/pi_v on an irregular graph. *)
  let g = Gen_classic.lollipop 5 4 in
  let pi = Spectral.stationary g in
  for v = 0 to Graph.n g - 1 do
    closef 1e-6 "1/pi" (1.0 /. pi.(v)) (Hitting.expected_return_time g v)
  done

let hitting_lemma6_bound () =
  let rng = Rng.create ~seed:4 () in
  let g = Gen_regular.random_regular_connected rng 40 4 in
  let gap = (Spectral.gap_exact g).Spectral.gap in
  let pi = Spectral.stationary g in
  for v = 0 to Graph.n g - 1 do
    let measured = Hitting.hitting_from_stationary g v in
    let bound = 1.0 /. (gap *. pi.(v)) in
    Alcotest.(check bool) "lemma 6" true (measured <= bound +. 1e-6)
  done

let hitting_commute_symmetric () =
  let g = Gen_classic.lollipop 4 3 in
  let k1 = Hitting.commute_time g 0 (Graph.n g - 1) in
  let k2 = Hitting.commute_time g (Graph.n g - 1) 0 in
  closef 1e-6 "symmetric" k1 k2;
  (* Commute time >= 2 (at least one step each way). *)
  Alcotest.(check bool) "positive" true (k1 > 2.0)

let hitting_matrix_consistent () =
  let g = Gen_classic.cycle 8 in
  let hm = Hitting.hitting_matrix g in
  let h0 = Hitting.hitting_times_to g ~target:0 in
  for u = 0 to 7 do
    closef 1e-9 "column agrees" h0.(u) (Matrix.get hm u 0)
  done

let hitting_validation () =
  Alcotest.check_raises "disconnected"
    (Invalid_argument "Hitting: graph is disconnected") (fun () ->
      ignore
        (Hitting.hitting_times_to (Graph.of_edges ~n:4 [ (0, 1); (2, 3) ])
           ~target:0));
  Alcotest.check_raises "edgeless"
    (Invalid_argument "Hitting: graph has no edges") (fun () ->
      ignore (Hitting.hitting_times_to (Graph.of_edges ~n:3 []) ~target:0))

let matthews_on_cycle () =
  (* Matthews bound must dominate the known expected cover time
     n(n-1)/2 of the cycle. *)
  let n = 16 in
  let bound = Hitting.matthews_upper_bound (Gen_classic.cycle n) in
  let exact_cover = float_of_int (n * (n - 1)) /. 2.0 in
  Alcotest.(check bool) "dominates exact cover" true (bound >= exact_cover)


let effective_resistance_known () =
  (* Two resistors in series: path 0-1-2 has R(0,2) = 2. *)
  let p = Gen_classic.path 3 in
  closef 1e-9 "series" 2.0 (Hitting.effective_resistance p 0 2);
  (* Parallel edges halve: double edge between 0 and 1. *)
  let parallel = Graph.of_edges ~n:3 [ (0, 1); (0, 1); (1, 2) ] in
  closef 1e-9 "parallel" 0.5 (Hitting.effective_resistance parallel 0 1);
  (* Cycle: k and n-k in parallel. *)
  let n = 10 in
  let c = Gen_classic.cycle n in
  let k = 3 in
  closef 1e-8 "cycle"
    (float_of_int (k * (n - k)) /. float_of_int n)
    (Hitting.effective_resistance c 0 k);
  closef 1e-12 "self" 0.0 (Hitting.effective_resistance c 4 4)

let commute_time_identity () =
  (* Chandra et al.: K(u, v) = 2 m R(u, v). *)
  let rng = Rng.create ~seed:8 () in
  List.iter
    (fun g ->
      let m = float_of_int (Graph.m g) in
      let u = 0 and v = Graph.n g - 1 in
      closef 1e-5 "K = 2mR"
        (2.0 *. m *. Hitting.effective_resistance g u v)
        (Hitting.commute_time g u v))
    [
      Gen_classic.lollipop 5 4;
      Gen_classic.torus2d 4 4;
      Gen_regular.random_regular_connected rng 30 4;
      Gen_classic.binary_tree 3;
    ]

let resistance_rejects_loops () =
  let g = Graph.of_edges ~n:2 [ (0, 0); (0, 1); (0, 1) ] in
  Alcotest.check_raises "loops"
    (Invalid_argument "Hitting.effective_resistance: self-loops not supported")
    (fun () -> ignore (Hitting.effective_resistance g 0 1))

(* -- Metropolis ---------------------------------------------------------------- *)

let metropolis_uniform_visits () =
  (* On a lollipop the Metropolis walk equalises visit frequencies where the
     SRW concentrates on the clique. *)
  let g = Gen_classic.lollipop 6 6 in
  let rng = Rng.create ~seed:5 () in
  let t = Ewalk.Metropolis.create g rng ~start:0 in
  Ewalk.Cover.run_steps (Ewalk.Metropolis.process t) 600_000 |> ignore;
  let c = Ewalk.Metropolis.coverage t in
  let clique = Ewalk.Coverage.visit_count c 1 in
  let tip = Ewalk.Coverage.visit_count c (Graph.n g - 1) in
  let ratio = float_of_int clique /. float_of_int (max 1 tip) in
  Alcotest.(check bool)
    (Printf.sprintf "ratio %.2f ~ 1 (tip gets boundary boost)" ratio)
    true
    (ratio > 0.4 && ratio < 1.6)

let metropolis_covers () =
  let rng = Rng.create ~seed:6 () in
  let g = Gen_regular.random_regular_connected rng 100 4 in
  let t = Ewalk.Metropolis.create g rng ~start:0 in
  match
    Ewalk.Cover.run_until_vertex_cover
      ~cap:(Ewalk.Cover.default_cap g)
      (Ewalk.Metropolis.process t)
  with
  | Some _ -> ()
  | None -> Alcotest.fail "metropolis failed to cover"

let metropolis_equals_srw_on_regular () =
  (* On a regular graph every proposal is accepted: positions never repeat
     due to rejection (self-loops aside). *)
  let g = Gen_classic.torus2d 4 4 in
  let rng = Rng.create ~seed:7 () in
  let t = Ewalk.Metropolis.create g rng ~start:0 in
  let stays = ref 0 in
  let prev = ref (Ewalk.Metropolis.position t) in
  for _ = 1 to 1000 do
    Ewalk.Metropolis.step t;
    if Ewalk.Metropolis.position t = !prev then incr stays;
    prev := Ewalk.Metropolis.position t
  done;
  Alcotest.(check int) "no rejections on regular graphs" 0 !stays

let prop_solve_roundtrip =
  QCheck.Test.make ~name:"solve(a, a x) = x on diagonally dominant a"
    ~count:100 QCheck.(small_int)
    (fun seed ->
      let rng = Rng.create ~seed () in
      let n = 6 in
      let a =
        Matrix.init n (fun i j ->
            Rng.float rng 1.0 +. if i = j then 8.0 else 0.0)
      in
      let x = Array.init n (fun _ -> Rng.float rng 4.0 -. 2.0) in
      let b = Matrix.mul_vec a x in
      let x' = Solve.solve a b in
      Array.for_all
        (fun i -> Float.abs (x.(i) -. x'.(i)) < 1e-7)
        (Array.init n (fun i -> i)))

let prop_hitting_positive =
  QCheck.Test.make ~name:"hitting times positive off-target" ~count:40
    QCheck.(small_int)
    (fun seed ->
      let rng = Rng.create ~seed () in
      let g = Gen_regular.cycle_union rng 10 2 in
      let h = Hitting.hitting_times_to g ~target:0 in
      h.(0) = 0.0 && Array.for_all (fun x -> x >= 0.99) (Array.sub h 1 9))

let () =
  Alcotest.run "numerics"
    [
      ( "solve",
        [
          Alcotest.test_case "known system" `Quick solve_known_system;
          Alcotest.test_case "identity" `Quick solve_identity;
          Alcotest.test_case "random consistency" `Quick
            solve_random_consistency;
          Alcotest.test_case "singular" `Quick solve_singular;
          Alcotest.test_case "many columns" `Quick solve_many_columns;
          Alcotest.test_case "determinant probe" `Quick determinant_probe;
        ] );
      ( "lanczos",
        [
          Alcotest.test_case "diagonal" `Quick lanczos_diagonal;
          Alcotest.test_case "matches jacobi" `Quick lanczos_matches_jacobi;
          Alcotest.test_case "deflated second" `Quick lanczos_deflated_second;
          Alcotest.test_case "graph lambda_2" `Quick lanczos_graph_lambda2;
          Alcotest.test_case "gap report" `Quick lanczos_gap_report;
        ] );
      ( "hitting",
        [
          Alcotest.test_case "complete graph" `Quick hitting_complete_graph;
          Alcotest.test_case "cycle formula" `Quick hitting_cycle_formula;
          Alcotest.test_case "path formula" `Quick hitting_path_formula;
          Alcotest.test_case "return identity" `Quick hitting_return_identity;
          Alcotest.test_case "lemma 6" `Quick hitting_lemma6_bound;
          Alcotest.test_case "commute symmetric" `Quick
            hitting_commute_symmetric;
          Alcotest.test_case "matrix consistent" `Quick
            hitting_matrix_consistent;
          Alcotest.test_case "validation" `Quick hitting_validation;
          Alcotest.test_case "matthews on cycle" `Quick matthews_on_cycle;
          Alcotest.test_case "effective resistance" `Quick
            effective_resistance_known;
          Alcotest.test_case "commute identity" `Quick commute_time_identity;
          Alcotest.test_case "resistance loop guard" `Quick
            resistance_rejects_loops;
        ] );
      ( "metropolis",
        [
          Alcotest.test_case "uniform visits" `Quick metropolis_uniform_visits;
          Alcotest.test_case "covers" `Quick metropolis_covers;
          Alcotest.test_case "no rejection when regular" `Quick
            metropolis_equals_srw_on_regular;
        ] );
      ( "properties",
        [ qcheck prop_solve_roundtrip; qcheck prop_hitting_positive ] );
    ]
