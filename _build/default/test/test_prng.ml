(* Tests for Ewalk_prng: SplitMix64, xoshiro256++, and the Rng façade. *)

module Splitmix = Ewalk_prng.Splitmix
module Xoshiro = Ewalk_prng.Xoshiro
module Rng = Ewalk_prng.Rng

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

(* Reference values for SplitMix64 with seed 0, from the published
   reference implementation (Steele–Lea–Flood / Vigna's splitmix64.c). *)
let splitmix_reference () =
  let sm = Splitmix.create 0L in
  let expect =
    [ 0xE220A8397B1DCDAFL; 0x6E789E6AA1B965F4L; 0x06C45D188009454FL ]
  in
  List.iter
    (fun e -> check Alcotest.int64 "splitmix64(0) stream" e (Splitmix.next sm))
    expect

let splitmix_deterministic () =
  let a = Splitmix.create 123L and b = Splitmix.create 123L in
  for _ = 1 to 100 do
    check Alcotest.int64 "same seed same stream" (Splitmix.next a)
      (Splitmix.next b)
  done

let splitmix_mix_bijective_sample () =
  (* mix is a bijection; at least check injectivity on a sample. *)
  let seen = Hashtbl.create 1024 in
  for i = 0 to 999 do
    let v = Splitmix.mix (Int64.of_int i) in
    Alcotest.(check bool) "no collision" false (Hashtbl.mem seen v);
    Hashtbl.add seen v ()
  done

let xoshiro_zero_state_rejected () =
  Alcotest.check_raises "all-zero state"
    (Invalid_argument "Xoshiro.of_state: all-zero state") (fun () ->
      ignore (Xoshiro.of_state 0L 0L 0L 0L))

let xoshiro_deterministic () =
  let a = Xoshiro.of_seed 42L and b = Xoshiro.of_seed 42L in
  for _ = 1 to 1000 do
    check Alcotest.int64 "same stream" (Xoshiro.next a) (Xoshiro.next b)
  done

let xoshiro_copy_independent () =
  let a = Xoshiro.of_seed 7L in
  ignore (Xoshiro.next a);
  let b = Xoshiro.copy a in
  check Alcotest.int64 "copy continues identically" (Xoshiro.next a)
    (Xoshiro.next b);
  (* Advancing one does not advance the other. *)
  ignore (Xoshiro.next a);
  let va = Xoshiro.next a and vb = Xoshiro.next b in
  Alcotest.(check bool) "streams diverge after unequal advances" true
    (va <> vb)

let xoshiro_jump_disjoint () =
  let a = Xoshiro.of_seed 3L in
  let b = Xoshiro.copy a in
  Xoshiro.jump b;
  (* The jumped stream should not collide with the near part of the original
     stream (overlap probability is astronomically small). *)
  let near = Hashtbl.create 4096 in
  for _ = 1 to 2000 do
    Hashtbl.replace near (Xoshiro.next a) ()
  done;
  let collisions = ref 0 in
  for _ = 1 to 2000 do
    if Hashtbl.mem near (Xoshiro.next b) then incr collisions
  done;
  check Alcotest.int "no stream overlap after jump" 0 !collisions

let rng_int_bounds () =
  let rng = Rng.create ~seed:1 () in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 7 in
    Alcotest.(check bool) "in [0,7)" true (v >= 0 && v < 7)
  done;
  for _ = 1 to 10_000 do
    let v = Rng.int rng 8 in
    Alcotest.(check bool) "in [0,8) power of two" true (v >= 0 && v < 8)
  done

let rng_int_rejects_bad_bound () =
  let rng = Rng.create () in
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound <= 0")
    (fun () -> ignore (Rng.int rng 0));
  Alcotest.check_raises "negative" (Invalid_argument "Rng.int: bound <= 0")
    (fun () -> ignore (Rng.int rng (-3)))

let rng_int_uniform_chi2 () =
  (* Loose uniformity check: 10 buckets, 100k draws; chi^2 with 9 dof has
     99.99th percentile ~ 33.7. *)
  let rng = Rng.create ~seed:2 () in
  let buckets = Array.make 10 0 in
  let draws = 100_000 in
  for _ = 1 to draws do
    let v = Rng.int rng 10 in
    buckets.(v) <- buckets.(v) + 1
  done;
  let expected = float_of_int draws /. 10.0 in
  let chi2 =
    Array.fold_left
      (fun acc c ->
        let d = float_of_int c -. expected in
        acc +. (d *. d /. expected))
      0.0 buckets
  in
  Alcotest.(check bool)
    (Printf.sprintf "chi2 = %.1f < 33.7" chi2)
    true (chi2 < 33.7)

let rng_int_in () =
  let rng = Rng.create ~seed:3 () in
  for _ = 1 to 10_000 do
    let v = Rng.int_in rng (-5) 5 in
    Alcotest.(check bool) "in [-5,5]" true (v >= -5 && v <= 5)
  done;
  check Alcotest.int "singleton range" 9 (Rng.int_in rng 9 9);
  Alcotest.check_raises "empty range"
    (Invalid_argument "Rng.int_in: empty range") (fun () ->
      ignore (Rng.int_in rng 2 1))

let rng_float_range () =
  let rng = Rng.create ~seed:4 () in
  for _ = 1 to 10_000 do
    let v = Rng.float rng 3.5 in
    Alcotest.(check bool) "in [0,3.5)" true (v >= 0.0 && v < 3.5)
  done

let rng_float_mean () =
  let rng = Rng.create ~seed:5 () in
  let n = 100_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Rng.float rng 1.0
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "mean %.4f ~ 0.5" mean)
    true
    (Float.abs (mean -. 0.5) < 0.01)

let rng_bernoulli_extremes () =
  let rng = Rng.create ~seed:6 () in
  for _ = 1 to 100 do
    Alcotest.(check bool) "p=0 never" false (Rng.bernoulli rng 0.0);
    Alcotest.(check bool) "p=1 always" true (Rng.bernoulli rng 1.0)
  done

let rng_bernoulli_rate () =
  let rng = Rng.create ~seed:7 () in
  let hits = ref 0 in
  let n = 100_000 in
  for _ = 1 to n do
    if Rng.bernoulli rng 0.3 then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "rate %.4f ~ 0.3" rate)
    true
    (Float.abs (rate -. 0.3) < 0.01)

let rng_geometric () =
  let rng = Rng.create ~seed:8 () in
  check Alcotest.int "p=1 is 0" 0 (Rng.geometric rng 1.0);
  Alcotest.check_raises "p=0 rejected"
    (Invalid_argument "Rng.geometric: p out of (0, 1]") (fun () ->
      ignore (Rng.geometric rng 0.0));
  (* Mean of geometric(p) (failures before success) is (1-p)/p = 1 for
     p = 1/2. *)
  let n = 50_000 in
  let sum = ref 0 in
  for _ = 1 to n do
    sum := !sum + Rng.geometric rng 0.5
  done;
  let mean = float_of_int !sum /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "mean %.3f ~ 1.0" mean)
    true
    (Float.abs (mean -. 1.0) < 0.05)

let rng_exponential () =
  let rng = Rng.create ~seed:9 () in
  Alcotest.check_raises "lambda 0"
    (Invalid_argument "Rng.exponential: lambda <= 0") (fun () ->
      ignore (Rng.exponential rng 0.0));
  let n = 50_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    let v = Rng.exponential rng 2.0 in
    Alcotest.(check bool) "non-negative" true (v >= 0.0);
    sum := !sum +. v
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "mean %.4f ~ 0.5" mean)
    true
    (Float.abs (mean -. 0.5) < 0.02)

let rng_gaussian_moments () =
  let rng = Rng.create ~seed:10 () in
  let n = 100_000 in
  let sum = ref 0.0 and sumsq = ref 0.0 in
  for _ = 1 to n do
    let v = Rng.gaussian rng in
    sum := !sum +. v;
    sumsq := !sumsq +. (v *. v)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sumsq /. float_of_int n) -. (mean *. mean) in
  Alcotest.(check bool) "mean ~ 0" true (Float.abs mean < 0.02);
  Alcotest.(check bool) "variance ~ 1" true (Float.abs (var -. 1.0) < 0.03)

let rng_shuffle_is_permutation () =
  let rng = Rng.create ~seed:11 () in
  let a = Array.init 100 (fun i -> i) in
  let b = Rng.shuffle rng a in
  let sorted = Array.copy b in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" a sorted;
  (* Original untouched by the copying shuffle. *)
  Alcotest.(check (array int)) "input intact" (Array.init 100 (fun i -> i)) a

let rng_shuffle_uniform_positions () =
  (* Element 0 should land in each of 5 slots about equally often. *)
  let rng = Rng.create ~seed:12 () in
  let counts = Array.make 5 0 in
  let trials = 50_000 in
  for _ = 1 to trials do
    let a = [| 0; 1; 2; 3; 4 |] in
    Rng.shuffle_in_place rng a;
    let pos = ref 0 in
    Array.iteri (fun i v -> if v = 0 then pos := i) a;
    counts.(!pos) <- counts.(!pos) + 1
  done;
  let expected = float_of_int trials /. 5.0 in
  Array.iter
    (fun c ->
      Alcotest.(check bool)
        "within 5% of uniform" true
        (Float.abs (float_of_int c -. expected) < 0.05 *. expected))
    counts

let rng_permutation () =
  let rng = Rng.create ~seed:13 () in
  let p = Rng.permutation rng 50 in
  let sorted = Array.copy p in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation of 0..49"
    (Array.init 50 (fun i -> i))
    sorted

let rng_choice () =
  let rng = Rng.create ~seed:14 () in
  let a = [| "x"; "y"; "z" |] in
  for _ = 1 to 100 do
    let c = Rng.choice rng a in
    Alcotest.(check bool) "member" true (Array.mem c a)
  done;
  Alcotest.check_raises "empty" (Invalid_argument "Rng.choice: empty array")
    (fun () -> ignore (Rng.choice rng [||]))

let rng_sample_without_replacement () =
  let rng = Rng.create ~seed:15 () in
  (* Dense and sparse paths. *)
  List.iter
    (fun (k, n) ->
      let s = Rng.sample_without_replacement rng k n in
      check Alcotest.int "size" k (Array.length s);
      let seen = Hashtbl.create 16 in
      Array.iter
        (fun v ->
          Alcotest.(check bool) "in range" true (v >= 0 && v < n);
          Alcotest.(check bool) "distinct" false (Hashtbl.mem seen v);
          Hashtbl.add seen v ())
        s)
    [ (5, 8); (3, 1000); (0, 4); (4, 4) ];
  Alcotest.check_raises "k > n"
    (Invalid_argument "Rng.sample_without_replacement") (fun () ->
      ignore (Rng.sample_without_replacement rng 5 4))

let rng_split_independent () =
  let root = Rng.create ~seed:16 () in
  let a = Rng.split root in
  let b = Rng.split root in
  (* Distinct children produce distinct streams. *)
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 a = Rng.bits64 b then incr same
  done;
  Alcotest.(check bool) "children differ" true (!same < 4)

let rng_split_reproducible () =
  let mk () =
    let root = Rng.create ~seed:17 () in
    Array.map Rng.bits64 (Rng.split_n root 4)
  in
  Alcotest.(check (array int64)) "split_n deterministic" (mk ()) (mk ())

let prop_int_in_bounds =
  QCheck.Test.make ~name:"Rng.int always within bound" ~count:1000
    QCheck.(pair small_int (int_bound 1000))
    (fun (seed, b) ->
      let b = b + 1 in
      let rng = Rng.create ~seed () in
      let v = Rng.int rng b in
      v >= 0 && v < b)

let prop_shuffle_multiset =
  QCheck.Test.make ~name:"shuffle preserves multiset" ~count:200
    QCheck.(pair small_int (list small_int))
    (fun (seed, l) ->
      let rng = Rng.create ~seed () in
      let a = Array.of_list l in
      let b = Rng.shuffle rng a in
      List.sort compare (Array.to_list b) = List.sort compare l)

let () =
  Alcotest.run "prng"
    [
      ( "splitmix",
        [
          Alcotest.test_case "reference vector" `Quick splitmix_reference;
          Alcotest.test_case "deterministic" `Quick splitmix_deterministic;
          Alcotest.test_case "mix injective sample" `Quick
            splitmix_mix_bijective_sample;
        ] );
      ( "xoshiro",
        [
          Alcotest.test_case "zero state rejected" `Quick
            xoshiro_zero_state_rejected;
          Alcotest.test_case "deterministic" `Quick xoshiro_deterministic;
          Alcotest.test_case "copy" `Quick xoshiro_copy_independent;
          Alcotest.test_case "jump disjoint" `Quick xoshiro_jump_disjoint;
        ] );
      ( "rng",
        [
          Alcotest.test_case "int bounds" `Quick rng_int_bounds;
          Alcotest.test_case "int bad bound" `Quick rng_int_rejects_bad_bound;
          Alcotest.test_case "int uniform" `Quick rng_int_uniform_chi2;
          Alcotest.test_case "int_in" `Quick rng_int_in;
          Alcotest.test_case "float range" `Quick rng_float_range;
          Alcotest.test_case "float mean" `Quick rng_float_mean;
          Alcotest.test_case "bernoulli extremes" `Quick rng_bernoulli_extremes;
          Alcotest.test_case "bernoulli rate" `Quick rng_bernoulli_rate;
          Alcotest.test_case "geometric" `Quick rng_geometric;
          Alcotest.test_case "exponential" `Quick rng_exponential;
          Alcotest.test_case "gaussian moments" `Quick rng_gaussian_moments;
          Alcotest.test_case "shuffle permutation" `Quick
            rng_shuffle_is_permutation;
          Alcotest.test_case "shuffle uniform" `Quick
            rng_shuffle_uniform_positions;
          Alcotest.test_case "permutation" `Quick rng_permutation;
          Alcotest.test_case "choice" `Quick rng_choice;
          Alcotest.test_case "sample without replacement" `Quick
            rng_sample_without_replacement;
          Alcotest.test_case "split independent" `Quick rng_split_independent;
          Alcotest.test_case "split reproducible" `Quick rng_split_reproducible;
        ] );
      ( "properties",
        [ qcheck prop_int_in_bounds; qcheck prop_shuffle_multiset ] );
    ]
