(* Tests for Ewalk_spectral: stationary distribution, operators, eigenvalue
   estimation, conductance and the paper's spectral bounds. *)

module Graph = Ewalk_graph.Graph
module Gen_classic = Ewalk_graph.Gen_classic
module Gen_regular = Ewalk_graph.Gen_regular
module Subgraph = Ewalk_graph.Subgraph
module Spectral = Ewalk_spectral.Spectral
module Csr = Ewalk_linalg.Csr
module Rng = Ewalk_prng.Rng

let qcheck = QCheck_alcotest.to_alcotest
let closef tol msg a b = Alcotest.(check (float tol)) msg a b

let stationary_sums_to_one () =
  let g = Gen_classic.lollipop 5 3 in
  let pi = Spectral.stationary g in
  closef 1e-12 "sums to 1" 1.0 (Array.fold_left ( +. ) 0.0 pi);
  (* pi_v = d(v)/2m. *)
  closef 1e-12 "formula"
    (float_of_int (Graph.degree g 0) /. float_of_int (2 * Graph.m g))
    pi.(0)

let stationary_no_edges () =
  Alcotest.check_raises "edgeless"
    (Invalid_argument "Spectral.stationary: graph has no edges") (fun () ->
      ignore (Spectral.stationary (Graph.of_edges ~n:3 [])))

let transition_rows_sum_to_one () =
  let g = Gen_classic.petersen () in
  let p = Spectral.transition_matrix g in
  let ones = Array.make (Graph.n g) 1.0 in
  let row_sums = Csr.mul_vec p ones in
  Array.iter (fun s -> closef 1e-12 "row sum 1" 1.0 s) row_sums

let lazy_rows_sum_to_one () =
  let g = Gen_classic.cycle 6 in
  let p = Spectral.lazy_normalized_adjacency g in
  (* For a regular graph the lazy normalised adjacency is also stochastic. *)
  let ones = Array.make (Graph.n g) 1.0 in
  let row_sums = Csr.mul_vec p ones in
  Array.iter (fun s -> closef 1e-12 "row sum 1" 1.0 s) row_sums

let degree_zero_rejected () =
  let g = Graph.of_edges ~n:3 [ (0, 1) ] in
  Alcotest.check_raises "degree-0 vertex"
    (Invalid_argument "Spectral.normalized_adjacency: vertex of degree 0")
    (fun () -> ignore (Spectral.normalized_adjacency g))

let complete_graph_spectrum () =
  (* K_n walk spectrum: 1 with multiplicity 1, -1/(n-1) with multiplicity
     n - 1. *)
  let n = 8 in
  let eigs = Spectral.spectrum_exact (Gen_classic.complete n) in
  closef 1e-9 "top" 1.0 eigs.(0);
  for i = 1 to n - 1 do
    closef 1e-9 "bulk" (-1.0 /. float_of_int (n - 1)) eigs.(i)
  done

let cycle_graph_spectrum () =
  (* Cycle C_n walk eigenvalues: cos(2 pi k / n). *)
  let n = 10 in
  let eigs = Spectral.spectrum_exact (Gen_classic.cycle n) in
  closef 1e-9 "lambda_2" (cos (2.0 *. Float.pi /. float_of_int n)) eigs.(1);
  closef 1e-9 "lambda_n (bipartite)" (-1.0) eigs.(n - 1)

let hypercube_gap () =
  (* H_r walk spectrum: 1 - 2k/r; lambda_2 = 1 - 2/r. *)
  let r = 4 in
  let rep = Spectral.gap_exact (Gen_classic.hypercube r) in
  closef 1e-9 "lambda_2" (1.0 -. (2.0 /. float_of_int r)) rep.Spectral.lambda_2;
  closef 1e-9 "lambda_n" (-1.0) rep.Spectral.lambda_n;
  closef 1e-9 "lambda_max is 1 (bipartite)" 1.0 rep.Spectral.lambda_max

let power_matches_exact () =
  let rng = Rng.create ~seed:1 () in
  for _ = 1 to 5 do
    let g = Gen_regular.random_regular_connected rng 60 4 in
    let exact = (Spectral.gap_exact g).Spectral.lambda_max in
    let power = Spectral.lambda_max_power ~tol:1e-12 g in
    closef 1e-4 "power = jacobi" exact power
  done

let lambda_max_dispatch () =
  let g = Gen_classic.complete 10 in
  closef 1e-9 "small goes exact" (1.0 /. 9.0) (Spectral.lambda_max g);
  let rng = Rng.create ~seed:2 () in
  let big = Gen_regular.random_regular_connected rng 400 4 in
  let l = Spectral.lambda_max big in
  Alcotest.(check bool) "plausible range" true (l > 0.5 && l < 1.0)

let adjacency_lambda2_regular () =
  (* Complete graph adjacency: second eigenvalue -1. *)
  closef 1e-9 "K6" (-1.0) (Spectral.adjacency_lambda_2 (Gen_classic.complete 6));
  (* Cycle: 2 cos(2 pi / n). *)
  closef 1e-9 "C8"
    (2.0 *. cos (Float.pi /. 4.0))
    (Spectral.adjacency_lambda_2 (Gen_classic.cycle 8));
  Alcotest.check_raises "irregular rejected"
    (Invalid_argument "Spectral.adjacency_lambda_2: graph is not regular")
    (fun () -> ignore (Spectral.adjacency_lambda_2 (Gen_classic.star 5)))

let sqrt_degree_is_top_eigenvector () =
  let g = Gen_classic.lollipop 4 3 in
  let v1 = Spectral.sqrt_degree_unit g in
  let op = Spectral.normalized_adjacency g in
  let nv1 = Csr.mul_vec op v1 in
  Array.iteri (fun i x -> closef 1e-9 "N v1 = v1" v1.(i) x) nv1

let conductance_cycle () =
  (* C_n: the best cut takes half the cycle: e(X,X-bar) = 2, d(X) = n. *)
  let n = 10 in
  let phi = Spectral.conductance_exact (Gen_classic.cycle n) in
  closef 1e-9 "cycle conductance" (2.0 /. float_of_int n) phi

let conductance_complete () =
  (* K_4: conductance minimised by a half split: e = 4, d(X) = 6. *)
  let phi = Spectral.conductance_exact (Gen_classic.complete 4) in
  closef 1e-9 "K4 conductance" (4.0 /. 6.0) phi

let conductance_barbell_small () =
  (* Two K4s joined by one edge: the bottleneck cut has 1 edge and cut
     degree 13. *)
  let g = Gen_classic.barbell 4 0 in
  let phi = Spectral.conductance_exact g in
  closef 1e-9 "bottleneck" (1.0 /. 13.0) phi

let cheeger_sandwich () =
  let rng = Rng.create ~seed:3 () in
  for _ = 1 to 10 do
    let g = Gen_regular.random_regular_connected rng 12 4 in
    let lo, hi = Spectral.cheeger_bounds g in
    let l2 = (Spectral.gap_exact g).Spectral.lambda_2 in
    Alcotest.(check bool)
      (Printf.sprintf "%.3f <= %.3f <= %.3f" lo l2 hi)
      true
      (lo -. 1e-9 <= l2 && l2 <= hi +. 1e-9)
  done

let contraction_increases_gap () =
  (* eq. (16): contracting a vertex set cannot shrink the eigenvalue gap.
     Use lazy walks so bipartite parity cannot flip the comparison. *)
  let rng = Rng.create ~seed:4 () in
  for _ = 1 to 5 do
    let g = Gen_regular.random_regular_connected rng 14 4 in
    let contracted, _, _ = Subgraph.contract g [ 0; 1; 2 ] in
    let l2 g =
      let eigs =
        Ewalk_linalg.Jacobi.eigenvalues
          (Ewalk_linalg.Csr.to_dense (Spectral.lazy_normalized_adjacency g))
      in
      eigs.(1)
    in
    Alcotest.(check bool) "lambda_2 does not increase under contraction" true
      (l2 contracted <= l2 g +. 1e-9)
  done

let mixing_and_hitting_bounds () =
  let g = Gen_classic.complete 8 in
  let t = Spectral.mixing_time_bound g in
  Alcotest.(check bool) "mixing positive" true (t > 0.0);
  let h = Spectral.hitting_time_bound g 0 in
  (* E_pi H_v <= 1/(gap pi_v); for K8 gap = 1 + 1/7, pi = 1/8. *)
  Alcotest.(check bool) "hitting bound sane" true (h > 0.0 && h < 100.0);
  let hs = Spectral.set_hitting_time_bound g [ 0; 1 ] in
  Alcotest.(check bool) "set bound below vertex bound" true (hs < h +. 1e-9);
  Alcotest.check_raises "empty set"
    (Invalid_argument "Spectral.set_hitting_time_bound: empty set") (fun () ->
      ignore (Spectral.set_hitting_time_bound g []))

let conductance_guard () =
  Alcotest.check_raises "too big"
    (Invalid_argument "Spectral.conductance_exact: n > 24") (fun () ->
      ignore (Spectral.conductance_exact (Gen_classic.cycle 30)))

let prop_spectrum_in_unit_interval =
  QCheck.Test.make ~name:"walk spectrum within [-1, 1], top = 1" ~count:50
    QCheck.(small_int)
    (fun seed ->
      let rng = Rng.create ~seed () in
      let g = Gen_regular.random_regular_connected rng 16 4 in
      let eigs = Spectral.spectrum_exact g in
      Float.abs (eigs.(0) -. 1.0) < 1e-8
      && Array.for_all (fun l -> l >= -1.0 -. 1e-8 && l <= 1.0 +. 1e-8) eigs)

let prop_gap_report_consistent =
  QCheck.Test.make ~name:"gap report fields are consistent" ~count:50
    QCheck.(small_int)
    (fun seed ->
      let rng = Rng.create ~seed () in
      let g = Gen_regular.random_regular_connected rng 14 4 in
      let r = Spectral.gap_exact g in
      Float.abs
        (r.Spectral.lambda_max
        -. Float.max r.Spectral.lambda_2 (Float.abs r.Spectral.lambda_n))
      < 1e-12
      && Float.abs (r.Spectral.gap -. (1.0 -. r.Spectral.lambda_max)) < 1e-12)

let () =
  Alcotest.run "spectral"
    [
      ( "operators",
        [
          Alcotest.test_case "stationary" `Quick stationary_sums_to_one;
          Alcotest.test_case "stationary edgeless" `Quick stationary_no_edges;
          Alcotest.test_case "transition stochastic" `Quick
            transition_rows_sum_to_one;
          Alcotest.test_case "lazy stochastic" `Quick lazy_rows_sum_to_one;
          Alcotest.test_case "degree-0 rejected" `Quick degree_zero_rejected;
          Alcotest.test_case "sqrt-degree eigenvector" `Quick
            sqrt_degree_is_top_eigenvector;
        ] );
      ( "spectra",
        [
          Alcotest.test_case "complete graph" `Quick complete_graph_spectrum;
          Alcotest.test_case "cycle graph" `Quick cycle_graph_spectrum;
          Alcotest.test_case "hypercube gap" `Quick hypercube_gap;
          Alcotest.test_case "power matches exact" `Quick power_matches_exact;
          Alcotest.test_case "lambda_max dispatch" `Quick lambda_max_dispatch;
          Alcotest.test_case "adjacency lambda_2" `Quick
            adjacency_lambda2_regular;
        ] );
      ( "conductance",
        [
          Alcotest.test_case "cycle" `Quick conductance_cycle;
          Alcotest.test_case "complete" `Quick conductance_complete;
          Alcotest.test_case "barbell bottleneck" `Quick
            conductance_barbell_small;
          Alcotest.test_case "cheeger sandwich" `Quick cheeger_sandwich;
          Alcotest.test_case "size guard" `Quick conductance_guard;
        ] );
      ( "bounds",
        [
          Alcotest.test_case "contraction increases gap" `Quick
            contraction_increases_gap;
          Alcotest.test_case "mixing/hitting" `Quick mixing_and_hitting_bounds;
        ] );
      ( "properties",
        [ qcheck prop_spectrum_in_unit_interval; qcheck prop_gap_report_consistent ]
      );
    ]
