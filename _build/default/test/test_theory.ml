(* Tests for Ewalk_theory.Bounds: every formula in the paper, evaluated at
   hand-checked points. *)

module Bounds = Ewalk_theory.Bounds

let closef tol msg a b = Alcotest.(check (float tol)) msg a b
let qcheck = QCheck_alcotest.to_alcotest

let theorem1 () =
  (* n + n ln n / (ell gap) at n = e^2 (ln n = 2), ell = 2, gap = 0.5:
     n + n * 2 / 1 = 3n. *)
  let n = int_of_float (Float.exp 2.0) in
  (* use exact values instead: n = 100, ln 100 = 4.605... *)
  ignore n;
  let v = Bounds.theorem1_vertex_cover ~ell:2 ~gap:0.5 100 in
  closef 1e-6 "formula" (100.0 +. (100.0 *. log 100.0 /. 1.0)) v;
  let scaled = Bounds.theorem1_vertex_cover ~c:2.0 ~ell:2 ~gap:0.5 100 in
  closef 1e-6 "constant scales" (2.0 *. v) scaled;
  Alcotest.check_raises "bad ell"
    (Invalid_argument "Bounds.theorem1_vertex_cover: ell < 1") (fun () ->
      ignore (Bounds.theorem1_vertex_cover ~ell:0 ~gap:0.5 10));
  Alcotest.check_raises "bad gap"
    (Invalid_argument "Bounds.theorem1_vertex_cover: gap <= 0") (fun () ->
      ignore (Bounds.theorem1_vertex_cover ~ell:2 ~gap:0.0 10))

let eq1_expander () =
  let v = Bounds.expander_vertex_cover ~ell:5 1000 in
  closef 1e-6 "eq 1" (1000.0 +. (1000.0 *. log 1000.0 /. 5.0)) v;
  (* For ell >= log n the bound is Theta(n). *)
  let tight = Bounds.expander_vertex_cover ~ell:1_000_000 1000 in
  Alcotest.(check bool) "approaches n" true (tight < 1001.0)

let theorem3 () =
  let v =
    Bounds.theorem3_edge_cover ~m:2000 ~girth:10 ~max_degree:4 ~gap:0.5 1000
  in
  let expected =
    2000.0 +. (2000.0 /. 0.25 *. ((log 1000.0 /. 10.0) +. log 4.0))
  in
  closef 1e-6 "formula" expected v

let eq2_grw () =
  let v = Bounds.grw_edge_cover ~m:5000 ~gap:0.25 1000 in
  closef 1e-6 "formula" (5000.0 +. (1000.0 *. log 1000.0 /. 0.25)) v

let eq3_sandwich () =
  closef 1e-9 "upper" 150.0
    (Bounds.edge_cover_sandwich_upper ~m:100 ~srw_vertex_cover:50.0)

let radzik () =
  (* (n/4) ln (n/2) at n = 8: 2 ln 4. *)
  closef 1e-9 "radzik" (2.0 *. log 4.0) (Bounds.radzik_lower_bound ~n:8);
  (* Must be below Feige's n ln n for all n. *)
  for n = 4 to 100 do
    Alcotest.(check bool) "radzik < feige" true
      (Bounds.radzik_lower_bound ~n < Bounds.feige_lower_bound ~n)
  done

let trivial_lower () =
  Alcotest.(check int) "n-1" 99 (Bounds.walk_trivial_lower_bound ~n:100);
  Alcotest.(check int) "n=0" 0 (Bounds.walk_trivial_lower_bound ~n:0)

let mixing () =
  closef 1e-9 "K log n / gap" (6.0 *. log 100.0 /. 0.5)
    (Bounds.mixing_time ~gap:0.5 100);
  closef 1e-9 "custom K" (10.0 *. log 100.0 /. 0.5)
    (Bounds.mixing_time ~k:10.0 ~gap:0.5 100)

let hitting () =
  closef 1e-9 "lemma 6" 20.0 (Bounds.hitting_bound ~pi_v:0.1 ~gap:0.5);
  closef 1e-9 "corollary 9" 80.0
    (Bounds.set_hitting_bound ~m:100 ~d_s:5 ~gap:0.5)

let lemma13_exponential () =
  let p = Bounds.non_visit_probability ~t:0.0 ~d_s:4 ~m:100 ~gap:0.5 in
  closef 1e-9 "t=0 is 1" 1.0 p;
  let p1 = Bounds.non_visit_probability ~t:1000.0 ~d_s:4 ~m:100 ~gap:0.5 in
  let p2 = Bounds.non_visit_probability ~t:2000.0 ~d_s:4 ~m:100 ~gap:0.5 in
  Alcotest.(check bool) "decreasing in t" true (p2 < p1);
  closef 1e-9 "squares" (p1 *. p1) p2

let lemma14_count () =
  closef 1e-9 "2^(s Delta)" 64.0
    (Bounds.rooted_subgraph_count_bound ~s:2 ~max_degree:3)

let friedman () =
  closef 1e-9 "r=4" ((2.0 *. sqrt 3.0) +. 0.1) (Bounds.friedman_lambda2 4);
  closef 1e-9 "custom eps" (2.0 *. sqrt 3.0)
    (Bounds.friedman_lambda2 ~eps:0.0 4)

let p2_ell_formula () =
  let v = Bounds.p2_ell ~n:1000 ~r:4 in
  closef 1e-9 "formula" (log 1000.0 /. (4.0 *. log (4.0 *. Float.exp 1.0))) v

let expected_cycles () =
  (* (r-1)^k / 2k for r=4, k=3: 27/6. *)
  closef 1e-9 "4-regular triangles" 4.5 (Bounds.expected_cycles ~r:4 ~k:3);
  closef 1e-9 "3-regular triangles" (8.0 /. 6.0)
    (Bounds.expected_cycles ~r:3 ~k:3)

let star_fraction () = closef 1e-12 "1/8" 0.125 (Bounds.isolated_star_fraction ())

let coupon () =
  (* n H_n at n = 4: 4 * (1 + 1/2 + 1/3 + 1/4) = 25/3. *)
  closef 1e-9 "exact small" (25.0 /. 3.0) (Bounds.coupon_collector ~n:4);
  (* Asymptotic branch stays close to n (ln n + gamma). *)
  let n = 100_000 in
  let v = Bounds.coupon_collector ~n in
  let approx = float_of_int n *. (log (float_of_int n) +. 0.5772156649) in
  Alcotest.(check bool) "asymptotic" true (Float.abs (v -. approx) < 10.0)

let prop_theorem1_monotone_in_ell =
  QCheck.Test.make ~name:"Theorem 1 bound decreases in ell" ~count:200
    QCheck.(pair (int_range 1 50) (int_range 1 50))
    (fun (e1, e2) ->
      let lo = min e1 e2 and hi = max e1 e2 in
      Bounds.theorem1_vertex_cover ~ell:hi ~gap:0.3 10_000
      <= Bounds.theorem1_vertex_cover ~ell:lo ~gap:0.3 10_000 +. 1e-9)

let prop_nonvisit_in_unit =
  QCheck.Test.make ~name:"Lemma 13 probability within [0, 1]" ~count:200
    QCheck.(pair (float_range 0.0 1e6) (int_range 1 100))
    (fun (t, d_s) ->
      (* Underflow to exactly 0 is expected for huge t. *)
      let p = Bounds.non_visit_probability ~t ~d_s ~m:1000 ~gap:0.5 in
      p >= 0.0 && p <= 1.0)

let () =
  Alcotest.run "theory"
    [
      ( "bounds",
        [
          Alcotest.test_case "theorem 1" `Quick theorem1;
          Alcotest.test_case "eq 1" `Quick eq1_expander;
          Alcotest.test_case "theorem 3" `Quick theorem3;
          Alcotest.test_case "eq 2 (GRW)" `Quick eq2_grw;
          Alcotest.test_case "eq 3 sandwich" `Quick eq3_sandwich;
          Alcotest.test_case "radzik" `Quick radzik;
          Alcotest.test_case "trivial lower" `Quick trivial_lower;
          Alcotest.test_case "mixing (lemma 7)" `Quick mixing;
          Alcotest.test_case "hitting (lemma 6/cor 9)" `Quick hitting;
          Alcotest.test_case "lemma 13" `Quick lemma13_exponential;
          Alcotest.test_case "lemma 14" `Quick lemma14_count;
          Alcotest.test_case "friedman (P1)" `Quick friedman;
          Alcotest.test_case "p2 ell" `Quick p2_ell_formula;
          Alcotest.test_case "expected cycles" `Quick expected_cycles;
          Alcotest.test_case "star fraction" `Quick star_fraction;
          Alcotest.test_case "coupon collector" `Quick coupon;
        ] );
      ( "properties",
        [ qcheck prop_theorem1_monotone_in_ell; qcheck prop_nonvisit_in_unit ]
      );
    ]
