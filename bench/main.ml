(* Benchmark harness.

   Three sections:

   1. Micro-benchmarks - one kernel per experiment table (E-process
      stepping for the cover-time tables, mat-vec for the spectral table,
      and so on), each measured as warmups plus >= 10 timed repetitions
      and summarised by median / MAD / min (Ewalk_obs.Benchstat).  The
      observability overhead is a median of interleaved paired ratios, so
      it cannot go negative from drift between two separately sampled
      estimates.

   2. The experiment tables themselves - running every experiment of
      DESIGN.md section 4 at the scale selected by EWALK_BENCH_SCALE
      (tiny / default / full) and printing the same rows/series the paper
      reports.  `full` matches the paper's n (Figure 1 up to 5*10^5,
      5 trials per point).

   3. The bench ledger - BENCH_core.json is the machine-readable snapshot
      of this run, and one schema-versioned record per run is appended to
      BENCH_history.jsonl (Ewalk_obs.Ledger), which `eproc bench-diff` /
      `make bench-check` gate regressions against.

   Skip knobs (all env, value "1"): EWALK_BENCH_SKIP_MICRO,
   EWALK_BENCH_SKIP_EXPERIMENTS, EWALK_BENCH_SKIP_PARALLEL,
   EWALK_BENCH_SKIP_FULL (the full-scale stepping kernels and n=10^7
   cover smoke that EWALK_BENCH_SCALE=full otherwise adds).  Output paths:
   EWALK_BENCH_JSON (default BENCH_core.json), EWALK_BENCH_HISTORY
   (default BENCH_history.jsonl). *)

module Rng = Ewalk_prng.Rng
module Graph = Ewalk_graph.Graph
module Benchstat = Ewalk_obs.Benchstat
module Ledger = Ewalk_obs.Ledger
module Prof = Ewalk_obs.Prof

(* -- shared fixtures (built once; kernels must not mutate them) ----------- *)

let fixture_regular =
  lazy
    (let rng = Rng.create ~seed:1234 () in
     Ewalk_graph.Gen_regular.random_regular_connected rng 10_000 4)

let fixture_hypercube = lazy (Ewalk_graph.Gen_classic.hypercube 8)

let fixture_csr =
  lazy (Ewalk_spectral.Spectral.normalized_adjacency (Lazy.force fixture_regular))

(* -- one kernel per experiment table -------------------------------------- *)

let bench_eprocess_steps () =
  (* fig1, thm1-scaling, rule-independence, odd-even-frontier *)
  let g = Lazy.force fixture_regular in
  let rng = Rng.create ~seed:99 () in
  fun () ->
    let t = Ewalk.Eprocess.create g rng ~start:0 in
    Ewalk.Cover.run_steps (Ewalk.Eprocess.process t) 10_000

let bench_srw_steps () =
  (* srw-lower, blanket-r-visits *)
  let g = Lazy.force fixture_regular in
  let rng = Rng.create ~seed:98 () in
  fun () ->
    let t = Ewalk.Srw.create g rng ~start:0 in
    Ewalk.Cover.run_steps (Ewalk.Srw.process t) 10_000

let bench_edge_cover () =
  (* edge-cover-sandwich, hypercube-edge, grw-bound, cor4-edge *)
  let g = Lazy.force fixture_hypercube in
  let rng = Rng.create ~seed:97 () in
  fun () ->
    let t = Ewalk.Eprocess.create g rng ~start:0 in
    ignore (Ewalk.Cover.run_until_edge_cover (Ewalk.Eprocess.process t))

let bench_matvec () =
  (* spectral-p1 *)
  let csr = Lazy.force fixture_csr in
  let x = Array.make (Ewalk_linalg.Csr.dim csr) 1.0 in
  let y = Array.make (Ewalk_linalg.Csr.dim csr) 0.0 in
  fun () -> Ewalk_linalg.Csr.mul_vec_into csr x y

let bench_connected_set () =
  (* density-p2 *)
  let g = Lazy.force fixture_regular in
  let rng = Rng.create ~seed:96 () in
  fun () ->
    ignore (Ewalk_analysis.Subgraph_density.random_connected_set rng g ~s:9)

let bench_ell () =
  (* ell-good *)
  let g = Lazy.force fixture_regular in
  fun () -> ignore (Ewalk_analysis.Goodness.ell_of_vertex g 0 ~max_len:8)

let bench_blue_components () =
  (* blue-invariants, stars-r3 *)
  let g = Lazy.force fixture_regular in
  let rng = Rng.create ~seed:95 () in
  let t = Ewalk.Eprocess.create g rng ~start:0 in
  Ewalk.Cover.run_steps (Ewalk.Eprocess.process t) (Graph.n g);
  let flags = Ewalk.Coverage.visited_edge_flags (Ewalk.Eprocess.coverage t) in
  fun () -> ignore (Ewalk_analysis.Blue.components g ~visited:flags)

let bench_count_cycles () =
  (* cycle-census *)
  let rng = Rng.create ~seed:94 () in
  let g = Ewalk_graph.Gen_regular.random_regular_connected rng 500 4 in
  fun () -> ignore (Ewalk_graph.Girth.count_cycles g ~max_len:6)

let bench_rotor_steps () =
  (* process-compare *)
  let g = Lazy.force fixture_regular in
  let rng = Rng.create ~seed:93 () in
  fun () ->
    let t = Ewalk.Rotor.create g rng ~start:0 in
    Ewalk.Cover.run_steps (Ewalk.Rotor.process t) 10_000

let bench_generator () =
  (* all tables consume this generator *)
  let rng = Rng.create ~seed:92 () in
  fun () -> ignore (Ewalk_graph.Gen_regular.random_regular rng 2_000 4)

(* Ablation (DESIGN.md section 5): the E-process with naive O(deg) rescan of
   the adjacency instead of the swap-partition bookkeeping.  Same trajectory
   distribution; only the unvisited-edge lookup differs. *)
let bench_naive_eprocess () =
  let g = Lazy.force fixture_regular in
  let rng = Rng.create ~seed:91 () in
  fun () ->
    let visited = Array.make (Graph.m g) false in
    let pos = ref 0 in
    for _ = 1 to 10_000 do
      let v = !pos in
      let deg = Graph.degree g v in
      (* Rescan: count unvisited slots, then pick one uniformly. *)
      let unvisited = ref 0 in
      for i = 0 to deg - 1 do
        if not visited.(Graph.neighbor_edge g v i) then incr unvisited
      done;
      let slot =
        if !unvisited > 0 then begin
          let target = Rng.int rng !unvisited in
          let seen = ref 0 and found = ref 0 in
          for i = 0 to deg - 1 do
            if not visited.(Graph.neighbor_edge g v i) then begin
              if !seen = target then found := i;
              incr seen
            end
          done;
          !found
        end
        else Rng.int rng deg
      in
      let e = Graph.neighbor_edge g v slot in
      visited.(e) <- true;
      pos := Graph.neighbor g v slot
    done

let bench_rejection_generator () =
  (* Ablation: exact-uniform pairing rejection vs Steger-Wormald (r = 3,
     where rejection is still viable). *)
  let rng = Rng.create ~seed:90 () in
  fun () -> ignore (Ewalk_graph.Gen_regular.random_regular_rejection rng 2_000 3)

(* Observability overhead ablations against fig1:eprocess-10k-steps: the
   no-op bundle (null sink, no metrics — must stay within 5% of baseline)
   and the metrics-collecting bundle (null sink, live registry). *)
let bench_eprocess_obs_null () =
  let g = Lazy.force fixture_regular in
  let rng = Rng.create ~seed:99 () in
  fun () ->
    let t = Ewalk.Eprocess.create g rng ~start:0 in
    let obs = Ewalk.Observe.create () in
    Ewalk.Observe.attach_eprocess obs t;
    let p = Ewalk.Observe.instrument obs (Ewalk.Eprocess.process t) in
    Ewalk.Cover.run_steps p 10_000;
    Ewalk.Observe.finish obs p

let bench_eprocess_obs_metrics () =
  let g = Lazy.force fixture_regular in
  let rng = Rng.create ~seed:99 () in
  fun () ->
    let t = Ewalk.Eprocess.create g rng ~start:0 in
    let obs = Ewalk.Observe.create ~metrics:(Ewalk_obs.Metrics.create ()) () in
    Ewalk.Observe.attach_eprocess obs t;
    let p = Ewalk.Observe.instrument obs (Ewalk.Eprocess.process t) in
    Ewalk.Cover.run_steps p 10_000;
    Ewalk.Observe.finish obs p

(* Lockstep kernel engine: 8 walkers, 1 250 rounds = 10 000 walker-steps,
   so the derived headline divides by the same [headline_steps] and reads
   ns per walker-step. *)
let bench_kernel_steps ~mode proc ~seed () =
  let g = Lazy.force fixture_regular in
  let rng = Rng.create ~seed () in
  fun () ->
    let e = Ewalk_kernel.Engine.create_spread ~mode proc g rng ~walkers:8 in
    Ewalk_kernel.Engine.run_rounds e 1_250

(* eprocd service kernels: the whole serving stack (router, registry,
   loopback HTTP transport) measured end to end from a real client.  The
   daemon starts lazily on first use, so its serving domain exists only
   once these kernels run — they sit last in the table, keeping the extra
   domain away from the allocation-sensitive kernels above — and an
   at_exit hook tears it down along with its scratch state directory. *)
let serve_daemon =
  lazy
    (let dir = Filename.temp_file "ewalk-bench-serve" ".d" in
     Sys.remove dir;
     match Ewalk_serve.Daemon.start ~state_dir:dir ~resident_cap:256 () with
     | Error e -> failwith ("bench serve daemon: " ^ e)
     | Ok d ->
         at_exit (fun () ->
             ignore (Ewalk_serve.Daemon.stop d : int);
             let rec rm path =
               if Sys.file_exists path then
                 if Sys.is_directory path then begin
                   Array.iter
                     (fun f -> rm (Filename.concat path f))
                     (Sys.readdir path);
                   try Sys.rmdir path with Sys_error _ -> ()
                 end
                 else try Sys.remove path with Sys_error _ -> ()
             in
             rm dir);
         d)

let serve_config_body =
  {|{"family":"regular:4","n":64,"process":"e-process","seed":31}|}

let serve_request ~meth ~path ?body () =
  let port = Ewalk_serve.Daemon.port (Lazy.force serve_daemon) in
  match Ewalk_serve.Client.request ~port ~meth ~path ?body () with
  | Ok { Ewalk_serve.Client.status; body }
    when status >= 200 && status < 300 ->
      body
  | Ok r ->
      failwith
        (Printf.sprintf "bench serve: %s %s -> %d" meth path
           r.Ewalk_serve.Client.status)
  | Error e -> failwith ("bench serve: " ^ e)

let serve_session_id body =
  match Ewalk_obs.Json.of_string body with
  | Ok j -> (
      match
        Option.bind (Ewalk_obs.Json.member "id" j)
          Ewalk_obs.Json.to_string_opt
      with
      | Some id -> id
      | None -> failwith "bench serve: create response carries no id")
  | Error e -> failwith ("bench serve: " ^ e)

(* Session churn over real HTTP: one create + one delete per call.  The
   graph is cached in the registry after the first build, so the measured
   cost is the session machinery (validation, id allocation, walk
   construction, meta write, teardown), not graph generation.  The
   derived headline:serve_session_create_ns rides this kernel. *)
let bench_serve_session_churn () () =
  let id =
    serve_session_id
      (serve_request ~meth:"POST" ~path:"/sessions" ~body:serve_config_body ())
  in
  ignore (serve_request ~meth:"DELETE" ~path:("/sessions/" ^ id) () : string)

(* Stepping throughput through the full service path: one POST advancing
   a persistent session 1 000 steps per call, so the derived
   headline:serve_steps_per_second reads walk steps/s as a client sees
   them — request framing, JSON, registry locking and the native stepping
   loop together. *)
let serve_steps_per_call = 1_000

let bench_serve_steps () =
  let sid =
    lazy
      (serve_session_id
         (serve_request ~meth:"POST" ~path:"/sessions"
            ~body:serve_config_body ()))
  in
  fun () ->
    let id = Lazy.force sid in
    ignore
      (serve_request ~meth:"POST"
         ~path:("/sessions/" ^ id ^ "/step")
         ~body:(Printf.sprintf {|{"steps":%d}|} serve_steps_per_call)
         ()
        : string)

let kernels () =
  [
    ("fig1:eprocess-10k-steps", bench_eprocess_steps ());
    ("srw-lower:srw-10k-steps", bench_srw_steps ());
    ("edge-cover:H8-edge-cover", bench_edge_cover ());
    ("spectral-p1:matvec-10k", bench_matvec ());
    ("density-p2:connected-set", bench_connected_set ());
    ("ell-good:ell-of-vertex", bench_ell ());
    ("blue:components-10k", bench_blue_components ());
    ("cycle-census:count-cycles", bench_count_cycles ());
    ("process-compare:rotor-10k-steps", bench_rotor_steps ());
    ("generator:steger-wormald-2k", bench_generator ());
    ("ablation:eprocess-naive-rescan", bench_naive_eprocess ());
    ("ablation:generator-rejection-2k", bench_rejection_generator ());
    ("obs:eprocess-10k-steps-nullsink", bench_eprocess_obs_null ());
    ("obs:eprocess-10k-steps-metrics", bench_eprocess_obs_metrics ());
    ( "kernel:euar-w8-10k-steps",
      bench_kernel_steps ~mode:Ewalk_kernel.Engine.Cooperating
        Ewalk_kernel.Engine.E_uar ~seed:89 () );
    ( "kernel:competing-euar-w8-10k-steps",
      bench_kernel_steps ~mode:Ewalk_kernel.Engine.Competing
        Ewalk_kernel.Engine.E_uar ~seed:88 () );
    ( "kernel:srw-w8-10k-steps",
      bench_kernel_steps ~mode:Ewalk_kernel.Engine.Cooperating
        Ewalk_kernel.Engine.Srw ~seed:87 () );
    ("serve:create-delete-session", bench_serve_session_churn ());
    ("serve:step-1k-over-http", bench_serve_steps ());
  ]

(* -- full-scale kernels (EWALK_BENCH_SCALE=full only) ---------------------- *)

(* MemTotal from /proc/meminfo in GiB, 0 when unreadable.  The full-scale
   fixtures hold a 10^7-vertex CSR plus walk state, so the section skips
   (loudly) below 4 GiB rather than thrashing a small runner into swap. *)
let mem_total_gib () =
  match open_in "/proc/meminfo" with
  | exception Sys_error _ -> 0.0
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let rec scan () =
            match input_line ic with
            | exception End_of_file -> 0.0
            | line -> (
                match
                  Scanf.sscanf line "MemTotal: %d kB" (fun kb -> kb)
                with
                | kb -> float_of_int kb /. (1024. *. 1024.)
                | exception _ -> scan ())
          in
          scan ())

let full_n = 1_000_000
let full_steps = 2_000_000
let full_cover_n = 10_000_000

(* Benchstat.measure floors at 10 reps — right for microsecond kernels,
   hostile to multi-second full-scale ones.  One warmup plus three timed
   reps keeps the section bounded while still yielding the median/MAD/min
   trio the ledger stores. *)
let measure_full f =
  f ();
  let samples =
    Array.init 3 (fun _ ->
        let t0 = Ewalk_obs.Clock.now_ns () in
        f ();
        float_of_int (Ewalk_obs.Clock.elapsed_ns t0))
  in
  {
    Benchstat.median_ns = Benchstat.median samples;
    mad_ns = Benchstat.mad samples;
    min_ns = Array.fold_left Float.min samples.(0) samples;
    samples = Array.length samples;
  }

(* Walk throughput at paper scale: the native run loops
   (Eprocess.run_steps / Srw.run_steps — no per-step closure dispatch) on
   an n=10^6 4-regular graph, plus a single n=10^7 vertex-cover run as
   the completes-at-scale smoke.  The derived
   headline:steps_per_second_eprocess_full rate rides the same ledger
   record, so bench-diff gates full-scale throughput once a full-scale
   baseline exists. *)
let run_full_scale () =
  let gib = mem_total_gib () in
  if gib < 4.0 then begin
    Printf.printf
      "== full-scale (SKIPPED: %.1f GiB RAM < 4 GiB floor) ==\n\n" gib;
    []
  end
  else begin
    Printf.printf
      "== full-scale throughput (n=%d walk kernels, n=%d cover smoke) ==\n%!"
      full_n full_cover_n;
    let rng = Rng.create ~seed:4242 () in
    let t0 = Ewalk_obs.Clock.now_ns () in
    let g = Ewalk_graph.Gen_regular.random_regular_connected rng full_n 4 in
    Printf.printf "  built n=%d 4-regular stepping fixture in %.1fs\n%!"
      full_n
      (Ewalk_obs.Clock.elapsed_s t0);
    let ep_stats =
      measure_full (fun () ->
          let rng = Rng.create ~seed:41 () in
          let t = Ewalk.Eprocess.create g rng ~start:0 in
          Ewalk.Eprocess.run_steps t full_steps)
    in
    let srw_stats =
      measure_full (fun () ->
          let rng = Rng.create ~seed:40 () in
          let t = Ewalk.Srw.create g rng ~start:0 in
          Ewalk.Srw.run_steps t full_steps)
    in
    let report name (s : Benchstat.stats) =
      let per_step = s.Benchstat.median_ns /. float_of_int full_steps in
      Printf.printf "  %-28s %8.1f ns/step  %8.2fM steps/sec\n%!" name
        per_step (1e3 /. per_step)
    in
    report "e-process (run_steps)" ep_stats;
    report "srw (run_steps)" srw_stats;
    let rngc = Rng.create ~seed:4243 () in
    let t0 = Ewalk_obs.Clock.now_ns () in
    let gc =
      Ewalk_graph.Gen_regular.random_regular_connected rngc full_cover_n 4
    in
    Printf.printf "  built n=%d 4-regular cover fixture in %.1fs\n%!"
      full_cover_n
      (Ewalk_obs.Clock.elapsed_s t0);
    let t = Ewalk.Eprocess.create gc (Rng.create ~seed:39 ()) ~start:0 in
    let t0 = Ewalk_obs.Clock.now_ns () in
    let cover = Ewalk.Eprocess.run_to_vertex_cover t in
    let cover_ns = float_of_int (Ewalk_obs.Clock.elapsed_ns t0) in
    let cover_rows =
      match cover with
      | Some c ->
          Printf.printf
            "  cover n=%d: %d steps in %.2fs (%.2fM steps/sec)\n\n%!"
            full_cover_n c (cover_ns /. 1e9)
            (float_of_int c /. cover_ns *. 1e3);
          [
            ( "fullscale:cover-n1e7",
              {
                Benchstat.median_ns = cover_ns;
                mad_ns = 0.0;
                min_ns = cover_ns;
                samples = 1;
              } );
          ]
      | None ->
          Printf.printf
            "  cover n=%d: ** DID NOT COVER under default cap **\n\n%!"
            full_cover_n;
          []
    in
    [
      ("fullscale:eprocess-2M-steps", ep_stats);
      ("fullscale:srw-2M-steps", srw_stats);
    ]
    @ cover_rows
  end

(* Headline throughput kernels: the 10k-step walk kernels re-expressed
   per step, so the ledger carries ns/step (and the printed line
   steps/sec) and `eproc bench-diff` gates walk throughput directly —
   a stepping-rate regression shows up as `headline:*` REGRESSED even
   when no individual table kernel trips its own tolerance.  Derived
   from the already-measured distributions: every order statistic
   scales. *)
let headline_steps = 10_000.

let headline_kernels kernels =
  let derive ?(steps = headline_steps) headline src =
    match List.assoc_opt src kernels with
    | None -> None
    | Some (s : Benchstat.stats) ->
        Some
          ( headline,
            {
              s with
              Benchstat.median_ns = s.Benchstat.median_ns /. steps;
              mad_ns = s.Benchstat.mad_ns /. steps;
              min_ns = s.Benchstat.min_ns /. steps;
            } )
  in
  (* Rate twins of the headline kernels: the same runs re-expressed as
     steps/second, a higher-is-better series (`eproc bench-diff` inverts
     the regression direction for names containing "per_second", so a
     throughput drop — e.g. the sampler growing a hot-path cost — trips
     the gate from this side too).  Derived, not re-measured; the MAD
     maps through first-order propagation: MAD(c/x) ~ c.MAD(x)/x^2. *)
  let derive_rate ?(steps = headline_steps) headline src =
    match List.assoc_opt src kernels with
    | None -> None
    | Some (s : Benchstat.stats) ->
        let med = s.Benchstat.median_ns in
        if med <= 0.0 then None
        else
          let c = 1e9 *. steps in
          Some
            ( headline,
              {
                s with
                Benchstat.median_ns = c /. med;
                mad_ns = c *. s.Benchstat.mad_ns /. (med *. med);
                min_ns =
                  (if s.Benchstat.min_ns > 0.0 then c /. s.Benchstat.min_ns
                   else 0.0);
              } )
  in
  List.filter_map
    (fun (headline, src) -> derive headline src)
    [
      ("headline:eprocess-ns-per-step", "fig1:eprocess-10k-steps");
      ("headline:eprocess-metrics-ns-per-step", "obs:eprocess-10k-steps-metrics");
      ("headline:srw-ns-per-step", "srw-lower:srw-10k-steps");
      ("headline:kernel_euar_ns_per_walker_step", "kernel:euar-w8-10k-steps");
      ( "headline:kernel_competing_euar_ns_per_walker_step",
        "kernel:competing-euar-w8-10k-steps" );
      ("headline:kernel_srw_ns_per_walker_step", "kernel:srw-w8-10k-steps");
    ]
  @ List.filter_map
      (fun (headline, src) ->
        derive ~steps:(float_of_int full_steps) headline src)
      [
        ("headline:eprocess_full_ns_per_step", "fullscale:eprocess-2M-steps");
        ("headline:srw_full_ns_per_step", "fullscale:srw-2M-steps");
      ]
  @ List.filter_map
      (fun (headline, src) -> derive ~steps:1.0 headline src)
      [
        (* Session-service latency: one create + one delete over loopback
           HTTP per unit, so the ledger reads ns per session churned. *)
        ("headline:serve_session_create_ns", "serve:create-delete-session");
      ]
  @ List.filter_map
      (fun (headline, src) -> derive_rate headline src)
      [
        ("headline:steps_per_second_eprocess", "fig1:eprocess-10k-steps");
        ( "headline:steps_per_second_eprocess_metrics",
          "obs:eprocess-10k-steps-metrics" );
        ("headline:steps_per_second_kernel_euar_w8", "kernel:euar-w8-10k-steps");
      ]
  @ List.filter_map
      (fun (headline, src) ->
        derive_rate ~steps:(float_of_int serve_steps_per_call) headline src)
      [
        (* Service-path stepping throughput, higher-is-better (the
           "per_second" substring flips the bench-diff gate direction). *)
        ("headline:serve_steps_per_second", "serve:step-1k-over-http");
      ]
  @ List.filter_map
      (fun (headline, src) ->
        derive_rate ~steps:(float_of_int full_steps) headline src)
      [
        ( "headline:steps_per_second_eprocess_full",
          "fullscale:eprocess-2M-steps" );
        ("headline:steps_per_second_srw_full", "fullscale:srw-2M-steps");
      ]

let print_headlines headlines =
  List.iter
    (fun (name, (s : Benchstat.stats)) ->
      if Ewalk_obs.Ledger.higher_is_better name then
        Printf.printf "%-36s %12s %21s\n" name ""
          (Printf.sprintf "%.2fM steps/sec" (s.Benchstat.median_ns /. 1e6))
      else
        Printf.printf "%-36s %12s %21s\n" name
          (Printf.sprintf "%.1f ns/step" s.Benchstat.median_ns)
          (Printf.sprintf "%.2fM steps/sec" (1e3 /. s.Benchstat.median_ns)))
    headlines;
  if headlines <> [] then print_newline ()

let pretty_ns ns =
  if Float.is_nan ns then "n/a"
  else if ns >= 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
  else if ns >= 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
  else if ns >= 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
  else Printf.sprintf "%.0f ns" ns

let run_micro_benchmarks () =
  print_endline
    "== micro-benchmarks (one kernel per experiment table; median of >=10 \
     reps) ==";
  Printf.printf "%-36s %12s %10s %12s %6s\n" "kernel" "median/run" "mad"
    "min/run" "reps";
  let rows =
    List.map
      (fun (name, f) ->
        let s = Prof.span_ambient ("kernel:" ^ name) (fun () ->
            Benchstat.measure f)
        in
        Printf.printf "%-36s %12s %10s %12s %6d\n%!" name
          (pretty_ns s.Benchstat.median_ns)
          (pretty_ns s.Benchstat.mad_ns)
          (pretty_ns s.Benchstat.min_ns)
          s.Benchstat.samples;
        (name, s))
      (kernels ())
  in
  print_newline ();
  rows

(* Paired overhead: the null-sink observability path is contractually free.
   Both sides interleave rep by rep, so the reported percentage is a median
   of paired ratios with a noise floor — never negative, and loud when the
   5% budget is exceeded. *)
let obs_overhead_paired () =
  let base = bench_eprocess_steps () in
  let null_oh =
    Benchstat.paired_overhead ~base ~instrumented:(bench_eprocess_obs_null ())
      ()
  in
  let metrics_oh =
    Benchstat.paired_overhead ~base
      ~instrumented:(bench_eprocess_obs_metrics ()) ()
  in
  (* Both observability paths are budgeted at <= 5% on the noise-floored
     estimate: the null-sink bundle (contractually ~free) and, since the
     sharded fast path, the metrics-collecting bundle too. *)
  let null_ok =
    null_oh.Benchstat.raw_percent >= -2.0 && null_oh.Benchstat.percent <= 5.0
  in
  let metrics_ok = metrics_oh.Benchstat.percent <= 5.0 in
  let self_check_ok = null_ok && metrics_ok in
  Printf.printf
    "obs overhead (null sink): %.1f%% (raw %+.1f%%, noise %.1f%%, %d pairs) \
     %s\n"
    null_oh.Benchstat.percent null_oh.Benchstat.raw_percent
    null_oh.Benchstat.noise_percent null_oh.Benchstat.pairs
    (if not null_ok then "** OUTSIDE [-2%,+5%] BUDGET **"
     else "(within budget)");
  Printf.printf
    "obs overhead (metrics, null sink): %.1f%% (raw %+.1f%%, noise %.1f%%, \
     %d pairs) %s\n\n"
    metrics_oh.Benchstat.percent metrics_oh.Benchstat.raw_percent
    metrics_oh.Benchstat.noise_percent metrics_oh.Benchstat.pairs
    (if not metrics_ok then "** OUTSIDE 5% BUDGET **" else "(within budget)");
  (null_oh, metrics_oh, self_check_ok)

(* -- experiment tables ----------------------------------------------------- *)

let run_experiments ~pool () =
  let scale = Ewalk_expt.Sweep.scale_of_env () in
  Printf.printf
    "== experiment tables (scale: %s, jobs: %d; set \
     EWALK_BENCH_SCALE=tiny/default/full) ==\n\n"
    (Ewalk_expt.Sweep.scale_name scale)
    (Ewalk_par.Pool.jobs pool);
  List.map
    (fun e ->
      let table, seconds =
        Ewalk_expt.Experiments.run_timed ~pool e ~scale ~seed:1
      in
      Ewalk_expt.Table.print table;
      Printf.printf "  [%s reproduces: %s; %.1fs]\n\n%!"
        e.Ewalk_expt.Experiments.id e.Ewalk_expt.Experiments.paper_item seconds;
      (e.Ewalk_expt.Experiments.id, seconds))
    Ewalk_expt.Experiments.all

(* -- parallel speedup ------------------------------------------------------- *)

type parallel_result = {
  par_s1 : float;
  par_s4 : float;
  par_speedup : float;
  par_bit_identical : bool;
  par_lanes : Ewalk_par.Pool.lane_report array; (* jobs=4 run *)
  par_utilization : string; (* one-line summary, also printed *)
}

(* Wall-clock jobs=1 vs jobs=4 on a fixed trial workload, with the
   per-trial bit-identity check that backs the deterministic-sharding
   contract.  The speedup only shows on multicore hardware, but the
   identity check is meaningful everywhere; the jobs=4 lane telemetry
   (busy/wait/chunks per domain) explains poor speedups in-band. *)
let run_parallel_speedup ~scale =
  let n =
    match scale with
    | Ewalk_expt.Sweep.Tiny -> 8_000
    | Ewalk_expt.Sweep.Default -> 20_000
    | Ewalk_expt.Sweep.Full -> 50_000
  in
  let trials = 16 in
  let trial rng =
    let g = Ewalk_graph.Gen_regular.random_regular_connected rng n 4 in
    match
      Ewalk.Cover.run_until_vertex_cover
        ~cap:(Ewalk.Cover.default_cap g)
        (Ewalk.Eprocess.process (Ewalk.Eprocess.create g rng ~start:0))
    with
    | Some t -> float_of_int t
    | None -> Float.nan
  in
  let timed jobs =
    Ewalk_par.Pool.with_pool ~jobs @@ fun pool ->
    let rngs = Ewalk_expt.Sweep.trial_rngs ~seed:1 ~trials in
    let t0 = Ewalk_obs.Clock.now_ns () in
    let r = Ewalk_expt.Sweep.map_trials ~pool trial rngs in
    let dt = Ewalk_obs.Clock.elapsed_s t0 in
    (dt, r, Ewalk_par.Pool.stats pool, Ewalk_par.Pool.utilization_line pool ~wall_s:dt)
  in
  let s1, r1, _, _ = timed 1 in
  let s4, r4, lanes, utilization = timed 4 in
  let bit_identical = r1 = r4 in
  let speedup = s1 /. s4 in
  Printf.printf
    "== parallel speedup (vertex-cover trials, n=%d, %d trials) ==\n\
     jobs=1: %.2fs  jobs=4: %.2fs  speedup: %.2fx  bit-identical: %b\n\
     %s\n\n"
    n trials s1 s4 speedup bit_identical utilization;
  {
    par_s1 = s1;
    par_s4 = s4;
    par_speedup = speedup;
    par_bit_identical = bit_identical;
    par_lanes = lanes;
    par_utilization = utilization;
  }

(* -- machine-readable outputs ----------------------------------------------- *)

let kernel_stats_json (s : Benchstat.stats) =
  let module J = Ewalk_obs.Json in
  J.Obj
    [
      ("median_ns", J.Float s.Benchstat.median_ns);
      ("mad_ns", J.Float s.Benchstat.mad_ns);
      ("min_ns", J.Float s.Benchstat.min_ns);
      ("samples", J.Int s.Benchstat.samples);
    ]

let overhead_json (oh : Benchstat.overhead) =
  let module J = Ewalk_obs.Json in
  J.Obj
    [
      ("percent", J.Float oh.Benchstat.percent);
      ("raw_percent", J.Float oh.Benchstat.raw_percent);
      ("noise_percent", J.Float oh.Benchstat.noise_percent);
      ("pairs", J.Int oh.Benchstat.pairs);
    ]

(* BENCH_core.json (or $EWALK_BENCH_JSON): one snapshot per bench run,
   schema ewalk-bench/2 — kernel entries carry {median_ns, mad_ns, min_ns,
   samples} distributions rather than a single OLS point estimate. *)
let write_bench_json ~scale ~jobs ~kernels ~overhead ~experiments ~parallel =
  let path =
    match Sys.getenv_opt "EWALK_BENCH_JSON" with
    | Some p -> p
    | None -> "BENCH_core.json"
  in
  let module J = Ewalk_obs.Json in
  let json =
    J.Obj
      [
        ("schema", J.String "ewalk-bench/2");
        ("scale", J.String (Ewalk_expt.Sweep.scale_name scale));
        ("jobs", J.Int jobs);
        ("git_rev", J.String (Ledger.git_rev ()));
        ( "kernels",
          J.Obj
            (List.map (fun (name, s) -> (name, kernel_stats_json s)) kernels) );
        ( "obs_overhead_null_sink_percent",
          match overhead with
          | None -> J.Null
          | Some (null_oh, _, _) -> J.Float null_oh.Benchstat.percent );
        ( "obs_overhead_null_sink",
          match overhead with
          | None -> J.Null
          | Some (null_oh, _, _) -> overhead_json null_oh );
        ( "obs_overhead_metrics",
          match overhead with
          | None -> J.Null
          | Some (_, metrics_oh, _) -> overhead_json metrics_oh );
        ( "obs_overhead_self_check_ok",
          match overhead with
          | None -> J.Null
          | Some (_, _, ok) -> J.Bool ok );
        ( "experiments_seconds",
          J.Obj (List.map (fun (id, s) -> (id, J.Float s)) experiments) );
        ( "parallel",
          match parallel with
          | None -> J.Null
          | Some p ->
              J.Obj
                [
                  ("seconds_jobs1", J.Float p.par_s1);
                  ("seconds_jobs4", J.Float p.par_s4);
                  ("speedup", J.Float p.par_speedup);
                  ("bit_identical", J.Bool p.par_bit_identical);
                  ( "jobs4_lanes",
                    J.List
                      (Array.to_list
                         (Array.mapi
                            (fun i (l : Ewalk_par.Pool.lane_report) ->
                              J.Obj
                                [
                                  ("lane", J.Int i);
                                  ("busy_s", J.Float l.Ewalk_par.Pool.busy_s);
                                  ("wait_s", J.Float l.Ewalk_par.Pool.wait_s);
                                  ( "chunks",
                                    J.Int l.Ewalk_par.Pool.chunks_served );
                                  ("tasks", J.Int l.Ewalk_par.Pool.tasks_served);
                                ])
                            p.par_lanes)) );
                  ("utilization", J.String p.par_utilization);
                ] );
      ]
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      J.to_channel oc json;
      output_char oc '\n');
  Printf.printf "wrote %s\n" path

(* One append-only ledger record per run (skipped when micro-benches were,
   since kernel medians are the record's payload). *)
let append_ledger ~scale ~jobs ~kernels =
  let path =
    match Sys.getenv_opt "EWALK_BENCH_HISTORY" with
    | Some p -> p
    | None -> "BENCH_history.jsonl"
  in
  let record =
    Ledger.make
      ~scale:(Ewalk_expt.Sweep.scale_name scale)
      ~jobs
      ~kernels:
        (List.map
           (fun (name, (s : Benchstat.stats)) ->
             ( name,
               {
                 Ledger.k_median_ns = s.Benchstat.median_ns;
                 k_mad_ns = s.Benchstat.mad_ns;
                 k_min_ns = s.Benchstat.min_ns;
                 k_samples = s.Benchstat.samples;
               } ))
           kernels)
      ()
  in
  Ledger.append ~path record;
  Printf.printf "appended ledger record (%s, %s) to %s\n" record.Ledger.git_rev
    record.Ledger.scale path

(* "--jobs N" (or "--jobs=N"); default: EWALK_JOBS, else the machine's
   recommended domain count minus one (Pool.default_jobs). *)
let jobs_of_argv () =
  let rec scan = function
    | "--jobs" :: v :: _ -> Some (int_of_string v)
    | a :: _ when String.length a > 7 && String.sub a 0 7 = "--jobs=" ->
        Some (int_of_string (String.sub a 7 (String.length a - 7)))
    | _ :: rest -> scan rest
    | [] -> None
  in
  scan (Array.to_list Sys.argv)

let () =
  (* The bench run mints its own run id so ledger records (and the
     BENCH_history rows derived from them) join the provenance store. *)
  ignore
    (Ewalk_obs.Runlog.begin_run
       ~config:
         ("bench "
         ^ String.concat " " (List.tl (Array.to_list Sys.argv)))
       ()
      : Ewalk_obs.Runlog.t);
  let skip name = Sys.getenv_opt name = Some "1" in
  let skip_micro = skip "EWALK_BENCH_SKIP_MICRO" in
  let skip_experiments = skip "EWALK_BENCH_SKIP_EXPERIMENTS" in
  let skip_parallel = skip "EWALK_BENCH_SKIP_PARALLEL" in
  let jobs = jobs_of_argv () in
  let scale = Ewalk_expt.Sweep.scale_of_env () in
  let prof = Prof.enable_ambient () in
  (* Micro-benches run before the pool exists: idle worker domains would
     drag every minor collection into a multi-domain stop-the-world and
     distort the allocation-heavy kernels (the obs overhead ones most). *)
  let kernels =
    if skip_micro then []
    else begin
      let rows = Prof.span_ambient "bench:micro" run_micro_benchmarks in
      (* Full-scale stepping kernels and the n=10^7 cover smoke join the
         row list only at EWALK_BENCH_SCALE=full (and >= 4 GiB RAM), so
         the tiny/default gate environments never pay for them. *)
      let full_rows =
        if scale = Ewalk_expt.Sweep.Full && not (skip "EWALK_BENCH_SKIP_FULL")
        then Prof.span_ambient "bench:full-scale" run_full_scale
        else []
      in
      (* Derived headline throughput entries ride the same ledger record,
         so bench-diff gates steps/sec alongside the raw kernels. *)
      let headlines = headline_kernels (rows @ full_rows) in
      print_headlines headlines;
      rows @ full_rows @ headlines
    end
  in
  let overhead =
    if skip_micro then None
    else Some (Prof.span_ambient "bench:obs-overhead" obs_overhead_paired)
  in
  let experiments, parallel =
    Ewalk_par.Pool.with_pool ?jobs @@ fun pool ->
    let experiments =
      if skip_experiments then []
      else
        Prof.span_ambient "bench:experiments" (fun () ->
            run_experiments ~pool ())
    in
    let parallel =
      if skip_parallel then None
      else
        Some
          (Prof.span_ambient "bench:parallel" (fun () ->
               run_parallel_speedup ~scale))
    in
    (experiments, parallel)
  in
  write_bench_json ~scale
    ~jobs:(match jobs with Some j -> j | None -> Ewalk_par.Pool.default_jobs ())
    ~kernels ~overhead ~experiments ~parallel;
  if not skip_micro then
    append_ledger ~scale
      ~jobs:
        (match jobs with Some j -> j | None -> Ewalk_par.Pool.default_jobs ())
      ~kernels;
  print_endline "== profile (self/total seconds per span) ==";
  Prof.report prof
