(* Benchmark harness.

   Two sections:

   1. Bechamel micro-benchmarks - one Test.make per experiment table,
      benchmarking the computational kernel that dominates that table
      (E-process stepping for the cover-time tables, mat-vec for the
      spectral table, and so on).

   2. The experiment tables themselves - running every experiment of
      DESIGN.md section 4 at the scale selected by EWALK_BENCH_SCALE
      (tiny / default / full) and printing the same rows/series the paper
      reports.  `full` matches the paper's n (Figure 1 up to 5*10^5,
      5 trials per point). *)

open Bechamel
open Toolkit
module Rng = Ewalk_prng.Rng
module Graph = Ewalk_graph.Graph

(* -- shared fixtures (built once; kernels must not mutate them) ----------- *)

let fixture_regular =
  lazy
    (let rng = Rng.create ~seed:1234 () in
     Ewalk_graph.Gen_regular.random_regular_connected rng 10_000 4)

let fixture_hypercube = lazy (Ewalk_graph.Gen_classic.hypercube 8)

let fixture_csr =
  lazy (Ewalk_spectral.Spectral.normalized_adjacency (Lazy.force fixture_regular))

(* -- one kernel per experiment table -------------------------------------- *)

let bench_eprocess_steps () =
  (* fig1, thm1-scaling, rule-independence, odd-even-frontier *)
  let g = Lazy.force fixture_regular in
  let rng = Rng.create ~seed:99 () in
  Staged.stage (fun () ->
      let t = Ewalk.Eprocess.create g rng ~start:0 in
      Ewalk.Cover.run_steps (Ewalk.Eprocess.process t) 10_000)

let bench_srw_steps () =
  (* srw-lower, blanket-r-visits *)
  let g = Lazy.force fixture_regular in
  let rng = Rng.create ~seed:98 () in
  Staged.stage (fun () ->
      let t = Ewalk.Srw.create g rng ~start:0 in
      Ewalk.Cover.run_steps (Ewalk.Srw.process t) 10_000)

let bench_edge_cover () =
  (* edge-cover-sandwich, hypercube-edge, grw-bound, cor4-edge *)
  let g = Lazy.force fixture_hypercube in
  let rng = Rng.create ~seed:97 () in
  Staged.stage (fun () ->
      let t = Ewalk.Eprocess.create g rng ~start:0 in
      ignore (Ewalk.Cover.run_until_edge_cover (Ewalk.Eprocess.process t)))

let bench_matvec () =
  (* spectral-p1 *)
  let csr = Lazy.force fixture_csr in
  let x = Array.make (Ewalk_linalg.Csr.dim csr) 1.0 in
  let y = Array.make (Ewalk_linalg.Csr.dim csr) 0.0 in
  Staged.stage (fun () -> Ewalk_linalg.Csr.mul_vec_into csr x y)

let bench_connected_set () =
  (* density-p2 *)
  let g = Lazy.force fixture_regular in
  let rng = Rng.create ~seed:96 () in
  Staged.stage (fun () ->
      ignore (Ewalk_analysis.Subgraph_density.random_connected_set rng g ~s:9))

let bench_ell () =
  (* ell-good *)
  let g = Lazy.force fixture_regular in
  Staged.stage (fun () ->
      ignore (Ewalk_analysis.Goodness.ell_of_vertex g 0 ~max_len:8))

let bench_blue_components () =
  (* blue-invariants, stars-r3 *)
  let g = Lazy.force fixture_regular in
  let rng = Rng.create ~seed:95 () in
  let t = Ewalk.Eprocess.create g rng ~start:0 in
  Ewalk.Cover.run_steps (Ewalk.Eprocess.process t) (Graph.n g);
  let flags = Ewalk.Coverage.visited_edge_flags (Ewalk.Eprocess.coverage t) in
  Staged.stage (fun () ->
      ignore (Ewalk_analysis.Blue.components g ~visited:flags))

let bench_count_cycles () =
  (* cycle-census *)
  let rng = Rng.create ~seed:94 () in
  let g = Ewalk_graph.Gen_regular.random_regular_connected rng 500 4 in
  Staged.stage (fun () ->
      ignore (Ewalk_graph.Girth.count_cycles g ~max_len:6))

let bench_rotor_steps () =
  (* process-compare *)
  let g = Lazy.force fixture_regular in
  let rng = Rng.create ~seed:93 () in
  Staged.stage (fun () ->
      let t = Ewalk.Rotor.create g rng ~start:0 in
      Ewalk.Cover.run_steps (Ewalk.Rotor.process t) 10_000)

let bench_generator () =
  (* all tables consume this generator *)
  let rng = Rng.create ~seed:92 () in
  Staged.stage (fun () ->
      ignore (Ewalk_graph.Gen_regular.random_regular rng 2_000 4))

(* Ablation (DESIGN.md section 5): the E-process with naive O(deg) rescan of
   the adjacency instead of the swap-partition bookkeeping.  Same trajectory
   distribution; only the unvisited-edge lookup differs. *)
let bench_naive_eprocess () =
  let g = Lazy.force fixture_regular in
  let rng = Rng.create ~seed:91 () in
  Staged.stage (fun () ->
      let visited = Array.make (Graph.m g) false in
      let pos = ref 0 in
      for _ = 1 to 10_000 do
        let v = !pos in
        let deg = Graph.degree g v in
        (* Rescan: count unvisited slots, then pick one uniformly. *)
        let unvisited = ref 0 in
        for i = 0 to deg - 1 do
          if not visited.(Graph.neighbor_edge g v i) then incr unvisited
        done;
        let slot =
          if !unvisited > 0 then begin
            let target = Rng.int rng !unvisited in
            let seen = ref 0 and found = ref 0 in
            for i = 0 to deg - 1 do
              if not visited.(Graph.neighbor_edge g v i) then begin
                if !seen = target then found := i;
                incr seen
              end
            done;
            !found
          end
          else Rng.int rng deg
        in
        let e = Graph.neighbor_edge g v slot in
        visited.(e) <- true;
        pos := Graph.neighbor g v slot
      done)

let bench_rejection_generator () =
  (* Ablation: exact-uniform pairing rejection vs Steger-Wormald (r = 3,
     where rejection is still viable). *)
  let rng = Rng.create ~seed:90 () in
  Staged.stage (fun () ->
      ignore (Ewalk_graph.Gen_regular.random_regular_rejection rng 2_000 3))

(* Observability overhead ablations against fig1:eprocess-10k-steps: the
   no-op bundle (null sink, no metrics — must stay within 5% of baseline)
   and the metrics-collecting bundle (null sink, live registry). *)
let bench_eprocess_obs_null () =
  let g = Lazy.force fixture_regular in
  let rng = Rng.create ~seed:99 () in
  Staged.stage (fun () ->
      let t = Ewalk.Eprocess.create g rng ~start:0 in
      let obs = Ewalk.Observe.create () in
      Ewalk.Observe.attach_eprocess obs t;
      let p = Ewalk.Observe.instrument obs (Ewalk.Eprocess.process t) in
      Ewalk.Cover.run_steps p 10_000;
      Ewalk.Observe.finish obs p)

let bench_eprocess_obs_metrics () =
  let g = Lazy.force fixture_regular in
  let rng = Rng.create ~seed:99 () in
  Staged.stage (fun () ->
      let t = Ewalk.Eprocess.create g rng ~start:0 in
      let obs =
        Ewalk.Observe.create ~metrics:(Ewalk_obs.Metrics.create ()) ()
      in
      Ewalk.Observe.attach_eprocess obs t;
      let p = Ewalk.Observe.instrument obs (Ewalk.Eprocess.process t) in
      Ewalk.Cover.run_steps p 10_000;
      Ewalk.Observe.finish obs p)

let tests =
  Test.make_grouped ~name:"ewalk" ~fmt:"%s/%s"
    [
      Test.make ~name:"fig1:eprocess-10k-steps" (bench_eprocess_steps ());
      Test.make ~name:"srw-lower:srw-10k-steps" (bench_srw_steps ());
      Test.make ~name:"edge-cover:H8-edge-cover" (bench_edge_cover ());
      Test.make ~name:"spectral-p1:matvec-10k" (bench_matvec ());
      Test.make ~name:"density-p2:connected-set" (bench_connected_set ());
      Test.make ~name:"ell-good:ell-of-vertex" (bench_ell ());
      Test.make ~name:"blue:components-10k" (bench_blue_components ());
      Test.make ~name:"cycle-census:count-cycles" (bench_count_cycles ());
      Test.make ~name:"process-compare:rotor-10k-steps" (bench_rotor_steps ());
      Test.make ~name:"generator:steger-wormald-2k" (bench_generator ());
      Test.make ~name:"ablation:eprocess-naive-rescan" (bench_naive_eprocess ());
      Test.make ~name:"ablation:generator-rejection-2k" (bench_rejection_generator ());
      Test.make ~name:"obs:eprocess-10k-steps-nullsink" (bench_eprocess_obs_null ());
      Test.make ~name:"obs:eprocess-10k-steps-metrics" (bench_eprocess_obs_metrics ());
    ]

let run_micro_benchmarks () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2_000 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  print_endline "== micro-benchmarks (one kernel per experiment table) ==";
  Printf.printf "%-40s %15s\n" "kernel" "time/run";
  let rows =
    Hashtbl.fold
      (fun name v acc ->
        let ns =
          match Analyze.OLS.estimates v with
          | Some [ x ] -> x
          | _ -> Float.nan
        in
        (name, ns) :: acc)
      results []
    |> List.sort compare
  in
  List.iter
    (fun (name, ns) ->
      let pretty =
        if Float.is_nan ns then "n/a"
        else if ns >= 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
        else if ns >= 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
        else if ns >= 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
        else Printf.sprintf "%.0f ns" ns
      in
      Printf.printf "%-40s %15s\n" name pretty)
    rows;
  print_newline ();
  rows

(* The null-sink observability path is contractually free: fail loudly if
   the instrumented stepping kernel drifts more than 5% from baseline. *)
let obs_overhead_percent rows =
  let find name = List.assoc_opt ("ewalk/" ^ name) rows in
  match find "fig1:eprocess-10k-steps" with
  | Some base when base > 0.0 && not (Float.is_nan base) ->
      let pct name =
        match find name with
        | Some ns when not (Float.is_nan ns) ->
            Some (100.0 *. ((ns /. base) -. 1.0))
        | _ -> None
      in
      let null_pct = pct "obs:eprocess-10k-steps-nullsink" in
      let metrics_pct = pct "obs:eprocess-10k-steps-metrics" in
      (match null_pct with
      | Some p ->
          Printf.printf "obs overhead (null sink): %+.1f%% %s\n" p
            (if p > 5.0 then "** EXCEEDS 5% BUDGET **" else "(within 5% budget)")
      | None -> ());
      (match metrics_pct with
      | Some p -> Printf.printf "obs overhead (metrics, null sink): %+.1f%%\n\n" p
      | None -> print_newline ());
      (null_pct, metrics_pct)
  | _ -> (None, None)

(* -- experiment tables ----------------------------------------------------- *)

let run_experiments ~pool () =
  let scale = Ewalk_expt.Sweep.scale_of_env () in
  Printf.printf
    "== experiment tables (scale: %s, jobs: %d; set \
     EWALK_BENCH_SCALE=tiny/default/full) ==\n\n"
    (Ewalk_expt.Sweep.scale_name scale)
    (Ewalk_par.Pool.jobs pool);
  List.map
    (fun e ->
      let table, seconds =
        Ewalk_expt.Experiments.run_timed ~pool e ~scale ~seed:1
      in
      Ewalk_expt.Table.print table;
      Printf.printf "  [%s reproduces: %s; %.1fs]\n\n%!"
        e.Ewalk_expt.Experiments.id e.Ewalk_expt.Experiments.paper_item seconds;
      (e.Ewalk_expt.Experiments.id, seconds))
    Ewalk_expt.Experiments.all

(* -- parallel speedup ------------------------------------------------------- *)

(* Wall-clock jobs=1 vs jobs=4 on a fixed trial workload, with the
   per-trial bit-identity check that backs the deterministic-sharding
   contract.  The speedup only shows on multicore hardware, but the
   identity check is meaningful everywhere. *)
let run_parallel_speedup ~scale =
  let n =
    match scale with
    | Ewalk_expt.Sweep.Tiny -> 8_000
    | Ewalk_expt.Sweep.Default -> 20_000
    | Ewalk_expt.Sweep.Full -> 50_000
  in
  let trials = 16 in
  let trial rng =
    let g = Ewalk_graph.Gen_regular.random_regular_connected rng n 4 in
    match
      Ewalk.Cover.run_until_vertex_cover
        ~cap:(Ewalk.Cover.default_cap g)
        (Ewalk.Eprocess.process (Ewalk.Eprocess.create g rng ~start:0))
    with
    | Some t -> float_of_int t
    | None -> Float.nan
  in
  let timed jobs =
    Ewalk_par.Pool.with_pool ~jobs @@ fun pool ->
    let rngs = Ewalk_expt.Sweep.trial_rngs ~seed:1 ~trials in
    let t0 = Unix.gettimeofday () in
    let r = Ewalk_expt.Sweep.map_trials ~pool trial rngs in
    (Unix.gettimeofday () -. t0, r)
  in
  let s1, r1 = timed 1 in
  let s4, r4 = timed 4 in
  let bit_identical = r1 = r4 in
  let speedup = s1 /. s4 in
  Printf.printf
    "== parallel speedup (vertex-cover trials, n=%d, %d trials) ==\n\
     jobs=1: %.2fs  jobs=4: %.2fs  speedup: %.2fx  bit-identical: %b\n\n"
    n trials s1 s4 speedup bit_identical;
  (s1, s4, speedup, bit_identical)

(* Machine-readable baseline for the perf trajectory: BENCH_core.json (or
   $EWALK_BENCH_JSON) accumulates one snapshot per bench run. *)
let write_bench_json ~scale ~jobs ~kernels ~overhead ~experiments ~parallel =
  let path =
    match Sys.getenv_opt "EWALK_BENCH_JSON" with
    | Some p -> p
    | None -> "BENCH_core.json"
  in
  let module J = Ewalk_obs.Json in
  let null_pct, metrics_pct = overhead in
  let opt_float = function None -> J.Null | Some x -> J.Float x in
  let json =
    J.Obj
      [
        ("schema", J.String "ewalk-bench/1");
        ("scale", J.String (Ewalk_expt.Sweep.scale_name scale));
        ("jobs", J.Int jobs);
        ( "kernels_ns_per_run",
          J.Obj
            (List.map
               (fun (name, ns) ->
                 (name, if Float.is_nan ns then J.Null else J.Float ns))
               kernels) );
        ("obs_overhead_null_sink_percent", opt_float null_pct);
        ("obs_overhead_metrics_percent", opt_float metrics_pct);
        ( "experiments_seconds",
          J.Obj (List.map (fun (id, s) -> (id, J.Float s)) experiments) );
        ( "parallel",
          match parallel with
          | None -> J.Null
          | Some (s1, s4, speedup, bit_identical) ->
              J.Obj
                [
                  ("seconds_jobs1", J.Float s1);
                  ("seconds_jobs4", J.Float s4);
                  ("speedup", J.Float speedup);
                  ("bit_identical", J.Bool bit_identical);
                ] );
      ]
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      J.to_channel oc json;
      output_char oc '\n');
  Printf.printf "wrote %s\n" path

(* "--jobs N" (or "--jobs=N"); default: EWALK_JOBS, else the machine's
   recommended domain count minus one (Pool.default_jobs). *)
let jobs_of_argv () =
  let rec scan = function
    | "--jobs" :: v :: _ -> Some (int_of_string v)
    | a :: _ when String.length a > 7 && String.sub a 0 7 = "--jobs=" ->
        Some (int_of_string (String.sub a 7 (String.length a - 7)))
    | _ :: rest -> scan rest
    | [] -> None
  in
  scan (Array.to_list Sys.argv)

let () =
  let skip_micro = Sys.getenv_opt "EWALK_BENCH_SKIP_MICRO" = Some "1" in
  let skip_parallel = Sys.getenv_opt "EWALK_BENCH_SKIP_PARALLEL" = Some "1" in
  let jobs = jobs_of_argv () in
  let scale = Ewalk_expt.Sweep.scale_of_env () in
  (* Micro-benches run before the pool exists: idle worker domains would
     drag every minor collection into a multi-domain stop-the-world and
     distort the allocation-heavy kernels (the obs overhead ones most). *)
  let kernels = if skip_micro then [] else run_micro_benchmarks () in
  let overhead =
    if skip_micro then (None, None) else obs_overhead_percent kernels
  in
  Ewalk_par.Pool.with_pool ?jobs @@ fun pool ->
  let experiments = run_experiments ~pool () in
  let parallel =
    if skip_parallel then None else Some (run_parallel_speedup ~scale)
  in
  write_bench_json ~scale ~jobs:(Ewalk_par.Pool.jobs pool) ~kernels ~overhead
    ~experiments ~parallel
