(* eproc: command-line driver for the E-process reproduction.

   Subcommands:
     list                      - list experiments
     experiment ID             - run one experiment (or "all")
     graph-info                - structural report of a generated graph
     cover                     - cover-time trials for one process
     trace                     - run one walk, emitting a JSONL event stream
                                 (optionally checkpointed / resumed from a snapshot)
     verify-trace              - replay a JSONL stream against the walk invariants
     check-oracle              - differential-test production walks vs naive oracles
     checkpoint-inspect        - describe a snapshot file or campaign directory
     spectra                   - spectral report of a generated graph
     bench-diff                - regression gate over two bench ledger records *)

open Cmdliner
module Graph = Ewalk_graph.Graph
module Rng = Ewalk_prng.Rng
module Expt = Ewalk_expt
module Obs = Ewalk_obs
module Observe = Ewalk.Observe
module Kengine = Ewalk_kernel.Engine
module Kobs = Ewalk_kernel.Kobs

let walkers_arg =
  let doc =
    "Advance $(docv) walkers in lockstep on the multi-walker kernel engine \
     instead of one legacy walker.  Supported by the kernel-ported \
     processes (e-process rules, srw, rotor); W=1 keeps the legacy \
     single-walker loop."
  in
  Arg.(value & opt int 1 & info [ "walkers" ] ~docv:"W" ~doc)

let seed_arg =
  let doc = "Random seed (all runs are deterministic given the seed)." in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc)

let reorder_arg =
  let parse = function
    | "none" -> Ok None
    | "degree" -> Ok (Some Graph.Degree_sort)
    | "bfs" -> Ok (Some Graph.Bfs)
    | "rcm" -> Ok (Some Graph.Rcm)
    | s -> Error (`Msg (Printf.sprintf "unknown reorder %S" s))
  in
  let print ppf o =
    Format.pp_print_string ppf
      (match o with
      | None -> "none"
      | Some Graph.Degree_sort -> "degree"
      | Some Graph.Bfs -> "bfs"
      | Some Graph.Rcm -> "rcm")
  in
  let doc =
    "Cache-conscious vertex relabeling applied before the walk: $(b,none), \
     $(b,degree) (ascending-degree sort), $(b,bfs), or $(b,rcm) (reverse \
     Cuthill-McKee).  Edge ids and every random draw are unchanged and \
     trace vertices are mapped back through the inverse permutation, so \
     the emitted stream is byte-identical to the unreordered run.  A \
     resumed leg must pass the same $(docv) as the leg that wrote the \
     snapshot."
  in
  Arg.(
    value
    & opt (Arg.conv (parse, print)) None
    & info [ "reorder" ] ~docv:"ORDER" ~doc)

let approx_arg =
  let parse s =
    match String.split_on_char ':' s with
    | [ bits; hashes ] -> (
        match (int_of_string_opt bits, int_of_string_opt hashes) with
        | Some bits_per_edge, Some hashes when bits_per_edge > 0 && hashes > 0
          ->
            Ok (Some (Ewalk.Eprocess.Bloom { bits_per_edge; hashes }))
        | _ -> Error (`Msg (Printf.sprintf "malformed approx spec %S" s)))
    | _ -> Error (`Msg (Printf.sprintf "approx spec %S is not BITS:HASHES" s))
  in
  let print ppf = function
    | None -> Format.pp_print_string ppf "exact"
    | Some (Ewalk.Eprocess.Bloom { bits_per_edge; hashes }) ->
        Format.fprintf ppf "%d:%d" bits_per_edge hashes
  in
  let doc =
    "Opt-in lossy visited tracking for the e-process rules: a Bloom filter \
     of $(b,BITS) bits per edge with $(b,HASHES) probes replaces the exact \
     visited set.  False positives make the walk skip some unvisited \
     edges (the distortion tally is printed at the end); approximate runs \
     cannot be checkpointed."
  in
  Arg.(
    value
    & opt (Arg.conv (parse, print)) None
    & info [ "approx-visited" ] ~docv:"BITS:HASHES" ~doc)

(* --reorder: relabel the graph before the walk.  The permutation
   (perm.(old) = new) is threaded to rotor/engine creation so random
   offsets draw in original vertex order, and the inverse goes to the
   trace sink so emitted vertex labels are the original ones. *)
let apply_reorder g = function
  | None -> (g, None, None)
  | Some order ->
      let g', perm = Graph.reorder g order in
      (g', Some perm, Some (Graph.inverse_permutation perm))

let relabel_sink inv sink =
  match inv with
  | None -> sink
  | Some inv ->
      Obs.Trace.of_fun
        ~close:(fun () -> Obs.Trace.close sink)
        (fun ev ->
          let ev =
            match ev with
            | Obs.Trace.Run_start { name; n; m; start } ->
                Obs.Trace.Run_start { name; n; m; start = inv.(start) }
            | Obs.Trace.Step { step; vertex; edge; blue } ->
                Obs.Trace.Step { step; vertex = inv.(vertex); edge; blue }
            | Obs.Trace.Phase { step; kind; vertex } ->
                Obs.Trace.Phase { step; kind; vertex = inv.(vertex) }
            | ev -> ev
          in
          Obs.Trace.emit sink ev)

let scale_arg =
  let parse = function
    | "tiny" -> Ok Expt.Sweep.Tiny
    | "default" -> Ok Expt.Sweep.Default
    | "full" -> Ok Expt.Sweep.Full
    | s -> Error (`Msg (Printf.sprintf "unknown scale %S" s))
  in
  let print ppf s = Format.pp_print_string ppf (Expt.Sweep.scale_name s) in
  let scale_conv = Arg.conv (parse, print) in
  let doc = "Experiment scale: tiny, default, or full (paper-size sweeps)." in
  Arg.(
    value & opt scale_conv Expt.Sweep.Default
    & info [ "scale" ] ~docv:"SCALE" ~doc)

let family_arg =
  let doc =
    "Graph family spec, e.g. regular:4, torus, hypercube, margulis, \
     cycle-union:2, gnp:0.001, geometric:0.05."
  in
  Arg.(value & opt string "regular:4" & info [ "family" ] ~docv:"SPEC" ~doc)

let n_arg =
  let doc = "Nominal number of vertices." in
  Arg.(value & opt int 10_000 & info [ "n"; "size" ] ~docv:"N" ~doc)

let trials_arg =
  let doc = "Trials to average over." in
  Arg.(value & opt int 5 & info [ "trials" ] ~docv:"T" ~doc)

let csv_arg =
  let doc = "Also write the result table as CSV to $(docv)." in
  Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"FILE" ~doc)

let metrics_arg =
  let doc = "Write a JSON metrics snapshot of the run to $(docv)." in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)

let jobs_arg =
  let doc =
    "Domains for trial sweeps (default: $(b,EWALK_JOBS), else the machine's \
     recommended domain count minus one).  $(docv)=1 forces the sequential \
     path; results are bit-identical for every value."
  in
  Arg.(value & opt (some int) None & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let export_metrics_arg =
  let doc =
    "Also write the run's telemetry as OpenMetrics (Prometheus text \
     exposition) to $(docv).  When $(b,--profile) is active the profiler \
     span tree is exported too."
  in
  Arg.(
    value
    & opt (some string) None
    & info [ "export-metrics" ] ~docv:"FILE" ~doc)

let profile_arg =
  let doc =
    "Enable the ambient span profiler and print the merged call tree \
     (total/self seconds, calls) to stderr when the run finishes."
  in
  Arg.(value & flag & info [ "profile" ] ~doc)

(* --profile: switch the ambient profiler on for the run, report at exit.
   Returns the profiler (for --export-metrics) when enabled. *)
let with_profile enabled f =
  if not enabled then f None
  else begin
    let prof = Obs.Prof.enable_ambient () in
    Fun.protect
      ~finally:(fun () ->
        prerr_endline "== profile (self/total seconds per span) ==";
        Obs.Prof.report ~out:stderr prof)
      (fun () -> f (Some prof))
  end

let write_metrics path metrics =
  Obs.Metrics.write_file metrics path;
  Obs.Runlog.note_artifact ~key:"metrics" ~path;
  Printf.printf "wrote %s\n" path

let write_openmetrics ?prof path metrics =
  Obs.Export.write_file ?prof metrics path;
  Obs.Runlog.note_artifact ~key:"openmetrics" ~path;
  Printf.printf "wrote %s (OpenMetrics)\n" path

(* When EWALK_RUNS_DIR is armed, point the throughput sampler's spill at
   runs/<id>/throughput.jsonl.  Called once after [Runlog.begin_run] and
   again after every [adopt_parent] (adoption re-derives the id, and a
   resumed leg's series belongs under the new id; no samples exist yet at
   adoption time because the walk has not started). *)
let arm_run_outputs () =
  match (Obs.Runlog.current (), Sys.getenv_opt "EWALK_RUNS_DIR") with
  | Some r, Some root when root <> "" ->
      let path =
        Filename.concat (Filename.concat root r.Obs.Runlog.run_id)
          "throughput.jsonl"
      in
      Obs.Throughput.set_output path;
      Obs.Runlog.note_artifact ~key:"throughput" ~path
  | _ -> ()

(* Resumed legs re-derive their run id with the parent folded in; every
   artifact stamped after this point carries the child id. *)
let adopt_parent_run parent =
  ignore (Obs.Runlog.adopt_parent parent : Obs.Runlog.t);
  arm_run_outputs ()

(* The one-line busy/utilization summary a jobs>1 run ends with, so a poor
   speedup arrives with its per-lane explanation attached. *)
let print_utilization pool ~wall_s =
  if Ewalk_par.Pool.jobs pool > 1 then
    print_endline (Ewalk_par.Pool.utilization_line pool ~wall_s)

(* -- --listen: live observability endpoint -------------------------------- *)

let listen_arg =
  let doc =
    "Serve live observability over loopback HTTP on $(docv) while the run \
     is in flight: $(b,/metrics) (OpenMetrics text), $(b,/progress) (JSON: \
     steps/sec, coverage fractions, lane utilization, ETA), $(b,/healthz), \
     $(b,/quit).  $(docv)=0 picks an ephemeral port; the bound port is \
     printed on stderr as `listening on ...'."
  in
  Arg.(value & opt (some int) None & info [ "listen" ] ~docv:"PORT" ~doc)

(* The /progress JSON: whatever the registry can currently say (sharded
   counters drain into it at most one drain interval behind the walk),
   plus wall clock and per-lane pool utilization.  Fields the run has not
   populated yet are null rather than absent, so pollers see a stable
   schema. *)
let progress_body ?pool ~t0 registry () =
  let elapsed = Obs.Clock.elapsed_s t0 in
  let views = Obs.Metrics.instruments registry in
  let counter name =
    match List.assoc_opt name views with
    | Some (Obs.Metrics.Counter_view k) -> Some k
    | _ -> None
  in
  let gauge name =
    match List.assoc_opt name views with
    | Some (Obs.Metrics.Gauge_view v) -> Some v
    | _ -> None
  in
  let opt f = function Some v -> f v | None -> Obs.Json.Null in
  let steps = counter "steps" in
  let steps_per_second_lifetime =
    match steps with
    | Some s when elapsed > 0.0 -> Some (float_of_int s /. elapsed)
    | _ -> None
  in
  (* The headline rate is the windowed recent rate from the throughput
     sampler (what the run is doing right now); the lifetime average stays as
     a second field.  Before the sampler has two samples the window is
     empty, so fall back to the lifetime value rather than going null. *)
  let steps_per_second =
    match Obs.Throughput.windowed_rate () with
    | Some r -> Some r
    | None -> steps_per_second_lifetime
  in
  let vfrac = gauge "coverage_vertex_fraction" in
  let efrac = gauge "coverage_edge_fraction" in
  (* Crude but honest: extrapolate the remaining vertex coverage at the
     average rate so far.  Null until the first drain publishes a
     fraction. *)
  let eta_s =
    match vfrac with
    | Some c when c >= 1.0 -> Some 0.0
    | Some c when c > 0.0 -> Some (elapsed *. ((1.0 -. c) /. c))
    | _ -> None
  in
  let lane_fields =
    match pool with
    | None -> []
    | Some pool ->
        let stats = Ewalk_par.Pool.stats pool in
        let jobs = Ewalk_par.Pool.jobs pool in
        let busy =
          Array.fold_left (fun a l -> a +. l.Ewalk_par.Pool.busy_s) 0.0 stats
        in
        [
          ("jobs", Obs.Json.Int jobs);
          ( "lane_busy_s",
            Obs.Json.List
              (Array.to_list stats
              |> List.map (fun l -> Obs.Json.Float l.Ewalk_par.Pool.busy_s)) );
          ( "utilization",
            if elapsed > 0.0 then
              Obs.Json.Float (busy /. (float_of_int jobs *. elapsed))
            else Obs.Json.Null );
        ]
  in
  Obs.Json.to_string
    (Obs.Json.Obj
       ([
          ("elapsed_s", Obs.Json.Float elapsed);
          ( "run_id",
            opt (fun id -> Obs.Json.String id) (Obs.Runlog.run_id ()) );
          ("steps", opt (fun s -> Obs.Json.Int s) steps);
          ( "steps_per_second",
            opt (fun v -> Obs.Json.Float v) steps_per_second );
          ( "steps_per_second_lifetime",
            opt (fun v -> Obs.Json.Float v) steps_per_second_lifetime );
          ("coverage_vertex_fraction", opt (fun v -> Obs.Json.Float v) vfrac);
          ("coverage_edge_fraction", opt (fun v -> Obs.Json.Float v) efrac);
          ("eta_s", opt (fun v -> Obs.Json.Float v) eta_s);
        ]
       @ lane_fields))
  ^ "\n"

(* Run [f] with the live endpoint up (when --listen was given), stopping
   it afterwards even on exceptions.  The `listening on' line goes to
   stderr so scripts (make serve-smoke) can scrape the ephemeral port
   without disturbing the command's stdout. *)
let with_listen ?pool ~t0 listen registry f =
  match listen with
  | None -> f ()
  | Some port -> (
      match
        Obs.Serve.start ~port
          ~metrics:(fun () -> Obs.Export.render registry)
          ~progress:(progress_body ?pool ~t0 registry)
          ()
      with
      | Error e ->
          Printf.eprintf "eproc: --listen %d: %s\n%!" port e;
          exit 2
      | Ok srv ->
          Printf.eprintf
            "eproc: listening on http://127.0.0.1:%d (/metrics /progress \
             /healthz /quit)\n\
             %!"
            (Obs.Serve.port srv);
          Fun.protect ~finally:(fun () -> Obs.Serve.stop srv) f)

(* -- list ---------------------------------------------------------------- *)

let list_cmd =
  let run () =
    List.iter
      (fun e ->
        Printf.printf "%-20s %s\n" e.Expt.Experiments.id
          e.Expt.Experiments.paper_item)
      Expt.Experiments.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List the paper experiments.")
    Term.(const run $ const ())

(* -- experiment ----------------------------------------------------------- *)

(* [Fun.protect] so an I/O error cannot leak the channel. *)
let write_string_to_file path s =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc s);
  Printf.printf "wrote %s\n" path

let write_csv path table = write_string_to_file path (Expt.Table.to_csv table)

let checkpoint_dir_arg =
  let doc =
    "Checkpoint the trial sweep into directory $(docv): every completed \
     trial is journaled, so a killed run restarted with $(b,--resume) \
     re-runs only the unfinished trials and produces a bit-identical table."
  in
  Arg.(
    value
    & opt (some string) None
    & info [ "checkpoint-dir" ] ~docv:"DIR" ~doc)

let resume_arg =
  let doc =
    "Resume the campaign in $(b,--checkpoint-dir): replay journaled trials \
     and execute the rest.  The directory's manifest must match this \
     invocation's experiment, scale and seed ($(b,--jobs) may differ)."
  in
  Arg.(value & flag & info [ "resume" ] ~doc)

let task_retries_arg =
  let doc =
    "Retry a trial that raises (or times out) up to $(docv) more times \
     before failing the sweep; retries are recorded in the pool's lane \
     telemetry.  Trials consume a copy of their generator, so a retried \
     trial is bit-identical to an undisturbed one."
  in
  Arg.(value & opt int 2 & info [ "task-retries" ] ~docv:"N" ~doc)

let task_timeout_arg =
  let doc =
    "Treat a single trial running longer than $(docv) seconds as failed \
     (checked when the trial finishes; subject to $(b,--task-retries))."
  in
  Arg.(
    value
    & opt (some float) None
    & info [ "task-timeout" ] ~docv:"SECONDS" ~doc)

let experiment_cmd =
  let id_arg =
    let doc = "Experiment id (see $(b,list)), or $(b,all)." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"ID" ~doc)
  in
  let exp_walkers_arg =
    let doc =
      "Pin the multi-walker experiments (team-speedup, kernel-modes) to \
       $(docv) walkers; experiments without a walker dimension ignore it."
    in
    Arg.(value & opt (some int) None & info [ "walkers" ] ~docv:"W" ~doc)
  in
  let run id scale seed walkers csv metrics export_metrics profile jobs
      checkpoint_dir resume task_retries task_timeout listen =
    with_profile profile @@ fun prof ->
    Ewalk_par.Pool.with_pool ~retries:task_retries ?task_timeout_s:task_timeout
      ?jobs
    @@ fun pool ->
    (match (resume, checkpoint_dir) with
    | true, None ->
        Printf.eprintf "eproc experiment: --resume requires --checkpoint-dir\n";
        exit 2
    | _ -> ());
    let campaign =
      match checkpoint_dir with
      | None -> None
      | Some dir -> (
          (* A resumed leg is a child run of the campaign's creating run:
             adopt the manifest's run id before opening, so the reopened
             manifest and every journal row this leg appends carry the
             child id (with parent_run_id pointing at the ancestor). *)
          (if resume then
             match Ewalk_resume.Campaign.provenance ~dir with
             | Ok r -> adopt_parent_run r.Obs.Runlog.run_id
             | Error _ -> ());
          let manifest =
            [
              ("experiment", Obs.Json.String id);
              ("scale", Obs.Json.String (Expt.Sweep.scale_name scale));
              ("seed", Obs.Json.Int seed);
            ]
          in
          match Ewalk_resume.Campaign.open_ ~dir ~manifest ~resume with
          | Ok c ->
              Obs.Runlog.note_artifact ~key:"campaign" ~path:dir;
              Ewalk_resume.Campaign.set_ambient (Some c);
              Some c
          | Error e ->
              Printf.eprintf "eproc experiment: %s\n" e;
              exit 2)
    in
    Fun.protect ~finally:(fun () ->
        Ewalk_resume.Campaign.set_ambient None;
        Option.iter Ewalk_resume.Campaign.close campaign)
    @@ fun () ->
    let t0 = Obs.Clock.now_ns () in
    let registry = Obs.Metrics.create () in
    Obs.Metrics.set
      (Obs.Metrics.gauge registry "seed")
      (float_of_int seed);
    Obs.Metrics.set
      (Obs.Metrics.gauge registry "jobs")
      (float_of_int (Ewalk_par.Pool.jobs pool));
    let run_one e =
      (match (walkers, e.Expt.Experiments.run_walkers) with
      | Some _, None ->
          Printf.eprintf "eproc experiment: %s has no walker dimension; \
                          ignoring --walkers\n"
            e.Expt.Experiments.id
      | _ -> ());
      let table, seconds =
        Expt.Experiments.run_timed ~pool ?walkers e ~scale ~seed
      in
      Expt.Experiments.record_run registry e ~table ~seconds;
      Expt.Table.print table;
      match csv with
      | Some path ->
          let file =
            if id = "all" then
              Filename.remove_extension path ^ "-" ^ table.Expt.Table.id ^ ".csv"
            else path
          in
          write_csv file table
      | None -> ()
    in
    let finish () =
      print_utilization pool ~wall_s:(Obs.Clock.elapsed_s t0);
      (match campaign with
      | None -> ()
      | Some c ->
          let completed = Ewalk_resume.Campaign.completed c in
          let cached = Ewalk_resume.Campaign.cached c in
          let executed = Ewalk_resume.Campaign.executed c in
          Obs.Metrics.set
            (Obs.Metrics.gauge registry "campaign_trials_completed")
            (float_of_int completed);
          Obs.Metrics.set
            (Obs.Metrics.gauge registry "campaign_trials_replayed")
            (float_of_int cached);
          Obs.Metrics.set
            (Obs.Metrics.gauge registry "campaign_trials_executed")
            (float_of_int executed);
          Printf.printf
            "checkpoint: %d trials journaled in %s (%d replayed, %d executed \
             this run)\n"
            completed
            (Ewalk_resume.Campaign.dir c)
            cached executed);
      Option.iter (fun p -> write_metrics p registry) metrics;
      Option.iter (fun p -> write_openmetrics ?prof p registry) export_metrics
    in
    with_listen ~pool ~t0 listen registry @@ fun () ->
    if id = "all" then begin
      List.iter run_one Expt.Experiments.all;
      finish ();
      `Ok ()
    end
    else begin
      match Expt.Experiments.find id with
      | Some e ->
          run_one e;
          finish ();
          `Ok ()
      | None ->
          `Error
            ( false,
              Printf.sprintf "unknown experiment %S; try `eproc list'" id )
    end
  in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Run a paper experiment and print its table.")
    Term.(
      ret
        (const run $ id_arg $ scale_arg $ seed_arg $ exp_walkers_arg $ csv_arg
       $ metrics_arg $ export_metrics_arg $ profile_arg $ jobs_arg
       $ checkpoint_dir_arg $ resume_arg $ task_retries_arg $ task_timeout_arg
       $ listen_arg))

(* -- graph-info ----------------------------------------------------------- *)

let graph_info_cmd =
  let run family n seed =
    let rng = Rng.create ~seed () in
    let g = Expt.Families.build family rng ~n in
    Format.printf "%a@." Graph.pp g;
    Printf.printf "connected:       %b\n" (Ewalk_graph.Traversal.is_connected g);
    Printf.printf "simple:          %b\n" (Graph.is_simple g);
    Printf.printf "all-degrees-even:%b\n" (Graph.all_degrees_even g);
    Printf.printf "self-loops:      %d\n" (Graph.count_self_loops g);
    (match Ewalk_graph.Girth.girth_at_most g 24 with
    | Some girth -> Printf.printf "girth:           %d\n" girth
    | None -> Printf.printf "girth:           > 24\n");
    Printf.printf "diameter (>=):   %d\n"
      (Ewalk_graph.Traversal.diameter_lower_bound g);
    if Graph.n g <= 20_000 && Graph.m g > 0 then begin
      let lmax =
        if Graph.n g <= 256 then
          (Ewalk_spectral.Spectral.gap_exact g).Ewalk_spectral.Spectral.lambda_max
        else
          Ewalk_spectral.Spectral.lambda_max_power ~tol:1e-8 ~max_iter:4_000 g
      in
      Printf.printf "lambda_max:      %.5f (gap %.5f)\n" lmax (1.0 -. lmax)
    end
  in
  Cmd.v
    (Cmd.info "graph-info" ~doc:"Generate a graph and print a structural report.")
    Term.(const run $ family_arg $ n_arg $ seed_arg)

(* -- cover ---------------------------------------------------------------- *)

let process_arg =
  let doc =
    "Walk process: e-process, e-process:lowest, e-process:highest, srw, \
     lazy-srw, v-process, rotor, rwc:D, luf, oldest, metropolis."
  in
  Arg.(value & opt string "e-process" & info [ "process" ] ~docv:"P" ~doc)

(* Each spec yields the generic process plus a native-hook attacher for the
   processes that have one (E-process, SRW); others only get the generic
   [Observe.instrument] wrapper.  [start] defaults to vertex 0; with
   --reorder the caller passes the relabeled start [perm.(0)] (and [perm]
   itself, so the rotor draws its offsets in original vertex order).
   [approx] switches the e-process rules to Bloom visited tracking; the
   created process rides back so the caller can report the distortion. *)
let make_process ?(start = 0) ?perm ?approx spec g rng =
  let approx_only_eprocess () =
    match approx with
    | None -> ()
    | Some _ ->
        Printf.eprintf
          "eproc: --approx-visited applies to the e-process rules only \
           (process %S)\n"
          spec;
        exit 2
  in
  let eprocess ?rule () =
    let t = Ewalk.Eprocess.create ?rule ?approx g rng ~start in
    ( Ewalk.Eprocess.process t,
      (fun obs -> Observe.attach_eprocess obs t),
      Some t )
  in
  let srw t =
    approx_only_eprocess ();
    (Ewalk.Srw.process t, (fun obs -> Observe.attach_srw obs t), None)
  in
  let rotor t =
    approx_only_eprocess ();
    (Ewalk.Rotor.process t, (fun obs -> Observe.attach_rotor obs t), None)
  in
  let plain p =
    approx_only_eprocess ();
    (p, (fun (_ : Observe.t) -> ()), None)
  in
  match String.split_on_char ':' spec with
  | [ "e-process" ] -> eprocess ()
  | [ "e-process"; "lowest" ] -> eprocess ~rule:Ewalk.Eprocess.Lowest_slot ()
  | [ "e-process"; "highest" ] -> eprocess ~rule:Ewalk.Eprocess.Highest_slot ()
  | [ "srw" ] -> srw (Ewalk.Srw.create g rng ~start)
  | [ "lazy-srw" ] -> srw (Ewalk.Srw.create_lazy g rng ~start)
  | [ "v-process" ] ->
      plain (Ewalk.Vprocess.process (Ewalk.Vprocess.create g rng ~start))
  | [ "rotor" ] ->
      rotor (Ewalk.Rotor.create ~randomize_rotors:true ?perm g rng ~start)
  | [ "rwc"; d ] ->
      plain
        (Ewalk.Rwc.process
           (Ewalk.Rwc.create ~d:(int_of_string d) g rng ~start))
  | [ "luf" ] ->
      plain
        (Ewalk.Fair.process
           (Ewalk.Fair.create ~random_ties:true
              ~strategy:Ewalk.Fair.Least_used_first g rng ~start))
  | [ "oldest" ] ->
      plain
        (Ewalk.Fair.process
           (Ewalk.Fair.create ~random_ties:true
              ~strategy:Ewalk.Fair.Oldest_first g rng ~start))
  | [ "metropolis" ] ->
      plain
        (Ewalk.Metropolis.process (Ewalk.Metropolis.create g rng ~start))
  | _ -> invalid_arg (Printf.sprintf "unknown process %S" spec)

(* The specs ported to the multi-walker kernel engine: what --walkers > 1
   can drive. *)
let kernel_proc_of_spec spec =
  match String.split_on_char ':' spec with
  | [ "e-process" ] -> Some Kengine.E_uar
  | [ "e-process"; "lowest" ] -> Some Kengine.E_lowest
  | [ "e-process"; "highest" ] -> Some Kengine.E_highest
  | [ "srw" ] -> Some Kengine.Srw
  | [ "rotor" ] -> Some Kengine.Rotor
  | _ -> None

let require_kernel_proc ~cmd spec =
  match kernel_proc_of_spec spec with
  | Some p -> p
  | None ->
      Printf.eprintf "eproc %s: process %S does not support --walkers\n" cmd
        spec;
      exit 2

(* [Kengine.create_spread] with the reorder permutation threaded through:
   start vertices are drawn in original label space and mapped, and rotor
   offsets draw in original vertex order, so the reordered engine is
   isomorphic draw-for-draw to the unreordered one. *)
let kengine_spread ?mode ?perm kp g rng ~walkers =
  match perm with
  | None -> Kengine.create_spread ?mode kp g rng ~walkers
  | Some pm ->
      let starts =
        Array.init walkers (fun _ -> pm.(Rng.int rng (Graph.n g)))
      in
      Kengine.create ?mode ~perm:pm kp g rng ~starts

(* The snapshottable subset of --process specs, as Snapshot.walk values:
   what `trace --checkpoint` can write and `trace --resume-from` restores.
   Specs outside it (adversarial rules, weighted walks, processes without
   a checkpoint function) return None.  With [walkers > 1] the kernel-
   ported specs build a cooperating lockstep engine instead. *)
let make_snapshot_walk ?(walkers = 1) ?(start = 0) ?perm spec g rng =
  let module S = Ewalk_resume.Snapshot in
  if walkers > 1 then
    Option.map
      (fun p -> S.Kernel (kengine_spread ?perm p g rng ~walkers))
      (kernel_proc_of_spec spec)
  else
    match String.split_on_char ':' spec with
    | [ "e-process" ] ->
        Some (S.Eprocess (Ewalk.Eprocess.create g rng ~start))
    | [ "e-process"; "lowest" ] ->
        Some
          (S.Eprocess
             (Ewalk.Eprocess.create ~rule:Ewalk.Eprocess.Lowest_slot g rng
                ~start))
    | [ "e-process"; "highest" ] ->
        Some
          (S.Eprocess
             (Ewalk.Eprocess.create ~rule:Ewalk.Eprocess.Highest_slot g rng
                ~start))
    | [ "srw" ] -> Some (S.Srw (Ewalk.Srw.create g rng ~start))
    | [ "lazy-srw" ] -> Some (S.Srw (Ewalk.Srw.create_lazy g rng ~start))
    | [ "rotor" ] ->
        Some
          (S.Rotor
             (Ewalk.Rotor.create ~randomize_rotors:true ?perm g rng ~start))
    | _ -> None

let process_of_walk (w : Ewalk_resume.Snapshot.walk) =
  match w with
  | Ewalk_resume.Snapshot.Eprocess t ->
      (Ewalk.Eprocess.process t, fun obs -> Observe.attach_eprocess obs t)
  | Ewalk_resume.Snapshot.Srw t ->
      (Ewalk.Srw.process t, fun obs -> Observe.attach_srw obs t)
  | Ewalk_resume.Snapshot.Rotor t ->
      (Ewalk.Rotor.process t, fun obs -> Observe.attach_rotor obs t)
  | Ewalk_resume.Snapshot.Kernel k ->
      (Kengine.process k, fun obs -> Kobs.attach obs k)

let cover_cmd =
  let edges_arg =
    let doc = "Measure edge cover time instead of vertex cover time." in
    Arg.(value & flag & info [ "edges" ] ~doc)
  in
  let compete_arg =
    let doc =
      "Competing kernel mode: every walker keeps private visited sets and \
       the measured time is the first walker's own vertex cover step \
       (implies the kernel engine; combine with $(b,--walkers))."
    in
    Arg.(value & flag & info [ "compete" ] ~doc)
  in
  let run family process n trials seed walkers compete edges reorder metrics
      export_metrics profile jobs listen =
    if walkers < 1 then begin
      Printf.eprintf "eproc cover: --walkers must be at least 1\n";
      exit 2
    end;
    if compete && edges then begin
      Printf.eprintf
        "eproc cover: --compete measures per-walker vertex cover; --edges is \
         not supported\n";
      exit 2
    end;
    with_profile profile @@ fun prof ->
    Ewalk_par.Pool.with_pool ?jobs @@ fun pool ->
    let t0 = Obs.Clock.now_ns () in
    let root = Rng.create ~seed () in
    let rngs = Rng.split_n root trials in
    (* One registry across the trials: counters accumulate (exactly, even
       when trials shard across domains), gauges keep the highest trial
       index's values ([Observe.for_trial]).  --listen forces a registry
       so the endpoint has something to serve. *)
    let registry =
      if metrics <> None || export_metrics <> None || listen <> None then
        Some (Obs.Metrics.create ())
      else None
    in
    let obs = Option.map (fun m -> Observe.create ~metrics:m ()) registry in
    let run_trials () =
      Ewalk_par.Pool.map_array ~chunk:1 pool
        (fun (trial, rng) ->
          let g = Expt.Families.build family rng ~n in
          let g, perm, _inv = apply_reorder g reorder in
          let start = match perm with None -> 0 | Some pm -> pm.(0) in
          (* Each trial observes through its own view: per-trial drain
             state, and deterministic last-trial-wins gauges under any
             --jobs. *)
          let obs = Option.map (fun o -> Observe.for_trial o ~trial) obs in
          let cap = Ewalk.Cover.default_cap g in
          let t =
            if compete then begin
              let kp = require_kernel_proc ~cmd:"cover" process in
              let eng =
                kengine_spread ~mode:Kengine.Competing ?perm kp g rng
                  ~walkers
              in
              Option.iter (fun obs -> Kobs.attach obs eng) obs;
              let r =
                Option.map snd (Kengine.run_until_first_cover ~cap eng)
              in
              Option.iter Observe.flush obs;
              r
            end
            else begin
              let p, attach_native =
                if walkers > 1 then begin
                  let kp = require_kernel_proc ~cmd:"cover" process in
                  let eng = kengine_spread ?perm kp g rng ~walkers in
                  ( Kengine.process eng,
                    fun obs -> Kobs.attach obs eng )
                end
                else begin
                  let p, attach, _ = make_process ~start ?perm process g rng in
                  (p, attach)
                end
              in
              let p =
                match obs with
                | None -> p
                | Some obs ->
                    attach_native obs;
                    Observe.instrument obs p
              in
              let t =
                if edges then Ewalk.Cover.run_until_edge_cover ~cap p
                else Ewalk.Cover.run_until_vertex_cover ~cap p
              in
              Option.iter (fun obs -> Observe.finish obs p) obs;
              t
            end
          in
          (t, Graph.n g, Graph.m g))
        (Array.mapi (fun i rng -> (i, rng)) rngs)
    in
    let results =
      match registry with
      | Some reg -> with_listen ~pool ~t0 listen reg run_trials
      | None -> run_trials ()
    in
    print_utilization pool ~wall_s:(Obs.Clock.elapsed_s t0);
    (match (metrics, registry) with
    | Some path, Some registry -> write_metrics path registry
    | _ -> ());
    (match (export_metrics, registry) with
    | Some path, Some registry -> write_openmetrics ?prof path registry
    | _ -> ());
    let times =
      Array.to_list results
      |> List.filter_map (fun (t, _, _) -> Option.map float_of_int t)
    in
    let _, gn, gm = results.(0) in
    let pdesc =
      if compete then Printf.sprintf "%s[w=%d,compete]" process walkers
      else if walkers > 1 then Printf.sprintf "%s[w=%d]" process walkers
      else process
    in
    Printf.printf "%s on %s (n=%d, m=%d), %d trials, %s cover:\n" pdesc family
      gn gm trials
      (if edges then "edge" else "vertex");
    match times with
    | [] -> Printf.printf "  every trial hit its step cap\n"
    | _ ->
        let s = Ewalk_analysis.Stats.summarize (Array.of_list times) in
        let denom = float_of_int (if edges then gm else gn) in
        Printf.printf
          "  mean %.0f  (%.3f per %s; std %.0f; min %.0f; max %.0f)\n"
          s.Ewalk_analysis.Stats.mean
          (s.Ewalk_analysis.Stats.mean /. denom)
          (if edges then "edge" else "vertex")
          s.Ewalk_analysis.Stats.std s.Ewalk_analysis.Stats.min
          s.Ewalk_analysis.Stats.max;
        if List.length times < trials then
          Printf.printf "  (%d/%d trials hit the cap and were dropped)\n"
            (trials - List.length times)
            trials
  in
  Cmd.v
    (Cmd.info "cover" ~doc:"Measure cover times of a walk process.")
    Term.(
      const run $ family_arg $ process_arg $ n_arg $ trials_arg $ seed_arg
      $ walkers_arg $ compete_arg $ edges_arg $ reorder_arg $ metrics_arg
      $ export_metrics_arg $ profile_arg $ jobs_arg $ listen_arg)

(* -- trace ----------------------------------------------------------------- *)

let trace_cmd =
  let out_arg =
    let doc = "Write the JSONL event stream to $(docv) (default: stdout)." in
    Arg.(value & opt string "-" & info [ "out" ] ~docv:"FILE" ~doc)
  in
  let no_steps_arg =
    let doc =
      "Omit per-step events (keep run/phase/milestone events only)."
    in
    Arg.(value & flag & info [ "no-steps" ] ~doc)
  in
  let edges_arg =
    let doc = "Run until edge coverage instead of vertex coverage." in
    Arg.(value & flag & info [ "edges" ] ~doc)
  in
  let max_steps_arg =
    let doc = "Step cap (default: the generous Cover.default_cap)." in
    Arg.(value & opt (some int) None & info [ "max-steps" ] ~docv:"K" ~doc)
  in
  let checkpoint_arg =
    let doc =
      "Write a CRC-guarded snapshot of the full walk state (position, \
       counters, coverage, unvisited partition, PRNG words) to $(docv) at \
       every checkpoint boundary; each write is atomic and emits a \
       $(b,checkpoint) trace event.  Only snapshottable processes \
       (e-process rules, srw, lazy-srw, rotor) qualify."
    in
    Arg.(value & opt (some string) None & info [ "checkpoint" ] ~docv:"FILE" ~doc)
  in
  let checkpoint_every_arg =
    let doc = "Checkpoint boundary spacing in steps (with $(b,--checkpoint))." in
    Arg.(value & opt int 1_000 & info [ "checkpoint-every" ] ~docv:"K" ~doc)
  in
  let resume_from_arg =
    let doc =
      "Restore the walk from snapshot $(docv) (recorded on the same \
       --family/--n/--seed graph) and continue it; the stream opens with a \
       $(b,resume) event.  The snapshot's process kind wins over \
       $(b,--process)."
    in
    Arg.(
      value & opt (some string) None & info [ "resume-from" ] ~docv:"FILE" ~doc)
  in
  let compete_arg =
    let doc =
      "Competing kernel mode: every walker keeps private bit-packed \
       visited sets (combine with $(b,--walkers)).  The stream interleaves \
       walker-local step events in round-robin order; $(b,--checkpoint) \
       writes $(b,kernel-competing) snapshots whose restore recomputes the \
       visit counters from the bitset popcounts."
    in
    Arg.(value & flag & info [ "compete" ] ~doc)
  in
  let run family process n seed walkers reorder approx compete edges no_steps
      max_steps out metrics export_metrics profile checkpoint checkpoint_every
      resume_from listen =
    if walkers < 1 then begin
      Printf.eprintf "eproc trace: --walkers must be at least 1\n";
      exit 2
    end;
    if approx <> None && (checkpoint <> None || resume_from <> None) then begin
      Printf.eprintf
        "eproc trace: --approx-visited runs are lossy and cannot be \
         checkpointed or resumed\n";
      exit 2
    end;
    if approx <> None && (walkers > 1 || compete) then begin
      Printf.eprintf
        "eproc trace: --approx-visited supports the single-walker loop only\n";
      exit 2
    end;
    with_profile profile @@ fun prof ->
    let t0 = Obs.Clock.now_ns () in
    let rng = Rng.create ~seed () in
    let g = Expt.Families.build family rng ~n in
    let g, perm, inv = apply_reorder g reorder in
    let start = match perm with None -> 0 | Some pm -> pm.(0) in
    let oc, close_oc =
      if out = "-" then (stdout, fun () -> flush stdout)
      else begin
        Obs.Runlog.note_artifact ~key:"trace" ~path:out;
        let oc = open_out out in
        (oc, fun () -> close_out_noerr oc)
      end
    in
    Fun.protect ~finally:close_oc (fun () ->
        (* Innermost so both the written stream and the flight recorder
           see original vertex labels under --reorder. *)
        let sink = relabel_sink inv (Obs.Trace.jsonl oc) in
        let sink =
          if no_steps then
            Obs.Trace.filter
              (function Obs.Trace.Step _ -> false | _ -> true)
              sink
          else sink
        in
        (* Outermost so the flight recorder keeps full per-step fidelity
           even when --no-steps thins the written stream.  Identity when
           the recorder is off. *)
        let sink = Obs.Flight.wrap sink in
        let registry = Obs.Metrics.create () in
        with_listen ~t0 listen registry @@ fun () ->
        let obs = Observe.create ~metrics:registry ~sink () in
        if checkpoint_every <= 0 then begin
          Printf.eprintf "eproc trace: --checkpoint-every must be positive\n";
          exit 2
        end;
        let write_metrics_files () =
          (match metrics with
          | Some path ->
              Obs.Metrics.write_file registry path;
              Printf.eprintf "wrote %s\n" path
          | None -> ());
          match export_metrics with
          | Some path ->
              Obs.Export.write_file ?prof registry path;
              Printf.eprintf "wrote %s (OpenMetrics)\n" path
          | None -> ()
        in
        if compete then begin
          (* Competing kernel walkers have no shared coverage table, so the
             generic Cover loop does not apply: drive the engine directly,
             emitting its walker-interleaved step stream and checkpointing
             on the total-step clock.  The loop is sequential round-robin,
             hence deterministic — a resumed leg's tail is byte-identical
             to the uninterrupted stream. *)
          if edges then begin
            Printf.eprintf
              "eproc trace: --compete tracks per-walker vertex covers; \
               --edges is not supported\n";
            exit 2
          end;
          let kp = require_kernel_proc ~cmd:"trace" process in
          let eng, resumed_at =
            match resume_from with
            | Some path -> (
                match Ewalk_resume.Snapshot.read_with_id g ~path with
                | Error e ->
                    Printf.eprintf "eproc trace: %s: %s\n" path
                      (Ewalk_resume.Snapshot.error_to_string e);
                    exit 2
                | Ok (Ewalk_resume.Snapshot.Kernel k, snap_run)
                  when Kengine.mode k = Kengine.Competing ->
                    adopt_parent_run snap_run.Obs.Runlog.run_id;
                    (k, Some (Kengine.steps k))
                | Ok _ ->
                    Printf.eprintf
                      "eproc trace: %s is not a competing kernel snapshot\n"
                      path;
                    exit 2)
            | None ->
                ( kengine_spread ~mode:Kengine.Competing ?perm kp g rng
                    ~walkers,
                  None )
          in
          let all_covered () =
            let w = Kengine.walkers eng in
            let rec go i =
              i >= w
              || (Kengine.walker_cover_step eng i <> None && go (i + 1))
            in
            go 0
          in
          Obs.Trace.emit sink
            (Obs.Trace.Run_start
               {
                 name = Kengine.name eng;
                 n = Graph.n g;
                 m = Graph.m g;
                 start = Kengine.position eng;
               });
          (match Obs.Runlog.current () with
          | Some r ->
              Obs.Trace.emit sink
                (Obs.Trace.Run_info
                   {
                     run_id = r.Obs.Runlog.run_id;
                     parent_run_id = r.Obs.Runlog.parent_run_id;
                   })
          | None -> ());
          Option.iter
            (fun step -> Obs.Trace.emit sink (Obs.Trace.Resume { step }))
            resumed_at;
          Kengine.set_observer eng
            (Some (fun ~walker:_ ev -> Obs.Trace.emit sink ev));
          (match checkpoint with
          | Some path -> Obs.Runlog.note_artifact ~key:"checkpoint" ~path
          | None -> ());
          let checkpoints_c = Obs.Metrics.counter registry "checkpoints" in
          let cap =
            match max_steps with
            | Some c -> c
            | None -> Ewalk.Cover.default_cap g
          in
          while Kengine.steps eng < cap && not (all_covered ()) do
            Kengine.step eng;
            let step = Kengine.steps eng in
            match checkpoint with
            | Some path when step mod checkpoint_every = 0 ->
                (match
                   Ewalk_resume.Snapshot.write ~path
                     (Ewalk_resume.Snapshot.Kernel eng)
                 with
                | Ok () -> ()
                | Error e ->
                    Printf.eprintf "eproc trace: %s: %s\n" path
                      (Ewalk_resume.Snapshot.error_to_string e);
                    exit 2);
                Obs.Trace.emit sink (Obs.Trace.Checkpoint { step });
                Obs.Metrics.incr checkpoints_c
            | _ -> ()
          done;
          let covered = all_covered () in
          Obs.Trace.emit sink
            (Obs.Trace.Run_end { steps = Kengine.steps eng; covered });
          Obs.Trace.close sink;
          if covered then
            Printf.eprintf
              "%s: every walker covered its own vertices of %s (n=%d, \
               m=%d) by total step %d\n"
              (Kengine.name eng) family (Graph.n g) (Graph.m g)
              (Kengine.steps eng)
          else
            Printf.eprintf "%s hit the %d-step cap before all walkers \
                            covered\n"
              (Kengine.name eng) cap;
          write_metrics_files ()
        end
        else begin
          let walk_opt, (p, attach_native), approx_t, resumed_at =
            match resume_from with
            | Some path -> (
                match Ewalk_resume.Snapshot.read_with_id g ~path with
                | Error e ->
                    Printf.eprintf "eproc trace: %s: %s\n" path
                      (Ewalk_resume.Snapshot.error_to_string e);
                    exit 2
                | Ok (w, snap_run) ->
                    (* Adopt before instrumentation so the trace prologue's
                       run_info and any checkpoint written by this leg carry
                       the child id. *)
                    adopt_parent_run snap_run.Obs.Runlog.run_id;
                    ( Some w,
                      process_of_walk w,
                      None,
                      Some (Ewalk_resume.Snapshot.walk_steps w) ))
            | None when approx <> None ->
                let p, attach, t =
                  make_process ~start ?perm ?approx process g rng
                in
                (None, (p, attach), t, None)
            | None -> (
                match make_snapshot_walk ~walkers ~start ?perm process g rng with
                | Some w -> (Some w, process_of_walk w, None, None)
                | None ->
                    if walkers > 1 then begin
                      Printf.eprintf
                        "eproc trace: process %S does not support --walkers\n"
                        process;
                      exit 2
                    end;
                    let p, attach, t =
                      make_process ~start ?perm process g rng
                    in
                    (None, (p, attach), t, None))
          in
          let pname =
            match (resume_from, walk_opt) with
            | Some _, Some w -> Ewalk_resume.Snapshot.kind_name w
            | _ -> process
          in
          attach_native obs;
          let p = Observe.instrument ?resumed_at obs p in
          let p =
            match checkpoint with
            | None -> p
            | Some path ->
                let w =
                  match walk_opt with
                  | Some w -> w
                  | None ->
                      Printf.eprintf
                        "eproc trace: process %S cannot be checkpointed\n"
                        process;
                      exit 2
                in
                Obs.Runlog.note_artifact ~key:"checkpoint" ~path;
                let checkpoints_c = Obs.Metrics.counter registry "checkpoints" in
                Ewalk.Cover.with_step_hook p ~hook:(fun p ->
                    let step = p.Ewalk.Cover.steps_done () in
                    if step mod checkpoint_every = 0 then begin
                      (match Ewalk_resume.Snapshot.write ~path w with
                      | Ok () -> ()
                      | Error e ->
                          Printf.eprintf "eproc trace: %s: %s\n" path
                            (Ewalk_resume.Snapshot.error_to_string e);
                          exit 2);
                      Obs.Trace.emit sink (Obs.Trace.Checkpoint { step });
                      Obs.Metrics.incr checkpoints_c
                    end)
          in
          let cap =
            match max_steps with
            | Some c -> c
            | None -> Ewalk.Cover.default_cap g
          in
          let result =
            if edges then Ewalk.Cover.run_until_edge_cover ~cap p
            else Ewalk.Cover.run_until_vertex_cover ~cap p
          in
          Observe.finish obs p;
          Obs.Trace.close sink;
          (match result with
          | Some t ->
              Printf.eprintf "%s covered %s of %s (n=%d, m=%d) at step %d\n"
                pname
                (if edges then "edges" else "vertices")
                family (Graph.n g) (Graph.m g) t
          | None ->
              Printf.eprintf "%s hit the %d-step cap before covering %s\n"
                pname cap
                (if edges then "edges" else "vertices"));
          (match Option.bind approx_t Ewalk.Eprocess.approx_distortion with
          | Some (fp, queries) ->
              Printf.eprintf
                "bloom distortion: %d/%d unvisited-edge queries hit false \
                 positives\n"
                fp queries
          | None -> ());
          write_metrics_files ()
        end)
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run one walk and emit its structured event stream as JSONL (one \
          event per line: run_start, step, phase, milestone, run_end).")
    Term.(
      const run $ family_arg $ process_arg $ n_arg $ seed_arg $ walkers_arg
      $ reorder_arg $ approx_arg $ compete_arg $ edges_arg $ no_steps_arg
      $ max_steps_arg $ out_arg $ metrics_arg $ export_metrics_arg
      $ profile_arg $ checkpoint_arg $ checkpoint_every_arg $ resume_from_arg
      $ listen_arg)

(* -- verify-trace ----------------------------------------------------------- *)

(* Replay a recorded JSONL event stream against the Ewalk_check verifier.
   The graph is rebuilt exactly as `eproc trace` built it (same family,
   size and seed => same deterministic construction).  Exit codes: 0 =
   every invariant held, 1 = a violation, 2 = unreadable input. *)
let verify_trace_cmd =
  let file_arg =
    let doc = "JSONL trace file as written by $(b,eproc trace) ($(b,-) = stdin)." in
    Arg.(value & pos 0 string "-" & info [] ~docv:"FILE" ~doc)
  in
  let flight_arg =
    let doc =
      "Accept a truncated stream — a crash flight-recorder dump \
       ($(b,flight.jsonl)): a missing $(b,run_end) is reported as \
       `truncated' instead of failing, while every event the dump does \
       carry is verified at full strength."
    in
    Arg.(value & flag & info [ "flight" ] ~doc)
  in
  let run family n seed flight file =
    let rng = Rng.create ~seed () in
    let g = Expt.Families.build family rng ~n in
    let ic, close_ic =
      if file = "-" then (stdin, fun () -> ())
      else
        match open_in file with
        | ic -> (ic, fun () -> close_in_noerr ic)
        | exception Sys_error e ->
            Printf.eprintf "eproc verify-trace: %s\n" e;
            exit 2
    in
    Fun.protect ~finally:close_ic (fun () ->
        let verifier = Ewalk_check.Replay.create g in
        let violation v =
          Printf.eprintf "eproc verify-trace: %s\n"
            (Ewalk_check.Invariant.violation_to_string v);
          exit 1
        in
        let lineno = ref 0 in
        (try
           while true do
             let line = input_line ic in
             incr lineno;
             if String.trim line <> "" then
               match Obs.Trace.event_of_line ~line:!lineno line with
               | Error e ->
                   Printf.eprintf "eproc verify-trace: %s\n" e;
                   exit 2
               | Ok ev -> (
                   match Ewalk_check.Replay.feed verifier ev with
                   | Ok () -> ()
                   | Error v -> violation v)
           done
         with End_of_file -> ());
        let finish =
          if flight then Ewalk_check.Replay.finish_partial
          else Ewalk_check.Replay.finish
        in
        match finish verifier with
        | Error v -> violation v
        | Ok s ->
            Printf.printf "verify-trace: ok - %s\n"
              (Ewalk_check.Replay.summary_to_string s))
  in
  Cmd.v
    (Cmd.info "verify-trace"
       ~doc:
         "Replay a recorded $(b,eproc trace) JSONL stream against the walk \
          invariants (edge validity, unvisited-edge preference, blue-parity, \
          milestone consistency).  Exit 1 on a violation, 2 on unreadable \
          input.  With $(b,--flight), judge a crash flight-recorder dump \
          (truncation allowed).")
    Term.(const run $ family_arg $ n_arg $ seed_arg $ flight_arg $ file_arg)

(* -- openmetrics-validate ---------------------------------------------------- *)

(* Syntax-check an OpenMetrics text exposition (as served by --listen
   /metrics or written by --export-metrics).  This is what `make
   serve-smoke` pipes the live endpoint's output through.  Exit codes:
   0 = valid, 1 = malformed, 2 = unreadable input. *)
let openmetrics_validate_cmd =
  let file_arg =
    let doc = "OpenMetrics text file ($(b,-) = stdin)." in
    Arg.(value & pos 0 string "-" & info [] ~docv:"FILE" ~doc)
  in
  let run file =
    let ic, close_ic =
      if file = "-" then (stdin, fun () -> ())
      else
        match open_in file with
        | ic -> (ic, fun () -> close_in_noerr ic)
        | exception Sys_error e ->
            Printf.eprintf "eproc openmetrics-validate: %s\n" e;
            exit 2
    in
    let body =
      Fun.protect ~finally:close_ic (fun () ->
          let buf = Buffer.create 65536 in
          let chunk = Bytes.create 65536 in
          let rec go () =
            let k = input ic chunk 0 (Bytes.length chunk) in
            if k > 0 then begin
              Buffer.add_subbytes buf chunk 0 k;
              go ()
            end
          in
          go ();
          Buffer.contents buf)
    in
    match Obs.Export.validate body with
    | Ok () ->
        Printf.printf "openmetrics-validate: ok (%d bytes)\n"
          (String.length body)
    | Error e ->
        Printf.eprintf "eproc openmetrics-validate: %s\n" e;
        exit 1
  in
  Cmd.v
    (Cmd.info "openmetrics-validate"
       ~doc:
         "Check a file (or stdin) against the OpenMetrics text exposition \
          shape the exporter emits.  Exit 1 on malformed input, 2 on an \
          unreadable file.")
    Term.(const run $ file_arg)

(* -- check-oracle ----------------------------------------------------------- *)

let check_oracle_cmd =
  let seeds_arg =
    let doc = "Number of seeds per (graph, mode) pair (seeds 1..$(docv))." in
    Arg.(value & opt int 3 & info [ "seeds" ] ~docv:"K" ~doc)
  in
  let kernel_flag =
    let doc =
      "Also run the multi-walker kernel battery: every kernel process vs \
       the naive lockstep oracle at W in {1, 4, 17}, cooperating and \
       competing."
    in
    Arg.(value & flag & info [ "kernel" ] ~doc)
  in
  let run seeds kernel jobs =
    if seeds <= 0 then begin
      Printf.eprintf "eproc check-oracle: --seeds must be positive\n";
      exit 2
    end;
    let seed_list = List.init seeds (fun i -> i + 1) in
    let jobs_shown =
      match jobs with Some j -> j | None -> Ewalk_par.Pool.default_jobs ()
    in
    let cases = Ewalk_check.Differential.stock_cases ~seeds:seed_list () in
    let report = Ewalk_check.Differential.run_suite ?jobs cases in
    Printf.printf "check-oracle: %s (jobs=%d)\n"
      (Ewalk_check.Differential.report_line report)
      jobs_shown;
    let kernel_failures =
      if not kernel then []
      else begin
        let kcases =
          Ewalk_check.Differential.stock_kernel_cases ~seeds:seed_list ()
        in
        let kreport = Ewalk_check.Differential.run_kernel_suite ?jobs kcases in
        Printf.printf "check-oracle[kernel]: %s (jobs=%d)\n"
          (Ewalk_check.Differential.report_line kreport)
          jobs_shown;
        kreport.Ewalk_check.Differential.failures
      end
    in
    match report.Ewalk_check.Differential.failures @ kernel_failures with
    | [] -> ()
    | fs ->
        List.iter
          (fun (name, msg) -> Printf.eprintf "  FAIL %s: %s\n" name msg)
          fs;
        exit 1
  in
  Cmd.v
    (Cmd.info "check-oracle"
       ~doc:
         "Differential-test the production walks against the naive reference \
          oracles over the stock graph suite (RNG lockstep where the rule is \
          deterministic, invariant-monitored everywhere).  Exit 1 on any \
          divergence.")
    Term.(const run $ seeds_arg $ kernel_flag $ jobs_arg)

(* -- checkpoint-inspect ----------------------------------------------------- *)

(* Describe a durability artifact without touching it: a snapshot file
   (CRC-verified, then summarised) or a campaign checkpoint directory
   (manifest + journal size).  Exit codes: 0 = readable, 2 = missing,
   corrupt or mismatched. *)
let checkpoint_inspect_cmd =
  let path_arg =
    let doc =
      "A snapshot file written by $(b,eproc trace --checkpoint), or a \
       campaign directory written by $(b,eproc experiment --checkpoint-dir)."
    in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"PATH" ~doc)
  in
  let run path =
    let is_dir = try Sys.is_directory path with Sys_error _ -> false in
    let result =
      if is_dir then Ewalk_resume.Campaign.describe ~dir:path
      else
        match Ewalk_resume.Snapshot.describe ~path with
        | Ok s -> Ok s
        | Error e -> Error (Ewalk_resume.Snapshot.error_to_string e)
    in
    match result with
    | Ok s -> print_endline s
    | Error e ->
        Printf.eprintf "eproc checkpoint-inspect: %s\n" e;
        exit 2
  in
  Cmd.v
    (Cmd.info "checkpoint-inspect"
       ~doc:
         "Describe a walk snapshot file (after CRC verification) or a \
          campaign checkpoint directory.  Exit 2 if the artifact is \
          missing, corrupt or unrecognised.")
    Term.(const run $ path_arg)

(* -- spectra -------------------------------------------------------------- *)

let spectra_cmd =
  let run family n seed =
    let rng = Rng.create ~seed () in
    let g = Expt.Families.build family rng ~n in
    Format.printf "%a@." Graph.pp g;
    if Graph.n g <= 256 then begin
      let r = Ewalk_spectral.Spectral.gap_exact g in
      Printf.printf "lambda_2  = %.6f\nlambda_n  = %.6f\nlambda_max= %.6f\n"
        r.Ewalk_spectral.Spectral.lambda_2 r.Ewalk_spectral.Spectral.lambda_n
        r.Ewalk_spectral.Spectral.lambda_max;
      Printf.printf "gap       = %.6f\n" r.Ewalk_spectral.Spectral.gap
    end
    else begin
      let lmax =
        Ewalk_spectral.Spectral.lambda_max_power ~tol:1e-8 ~max_iter:6_000 g
      in
      Printf.printf "lambda_max~ %.6f (power iteration)\ngap       ~ %.6f\n"
        lmax (1.0 -. lmax)
    end;
    Printf.printf "mixing bound (K=6): %.0f steps\n"
      (Ewalk_spectral.Spectral.mixing_time_bound g);
    if Graph.n g <= 18 then begin
      let phi = Ewalk_spectral.Spectral.conductance_exact g in
      let lo, hi = Ewalk_spectral.Spectral.cheeger_bounds g in
      Printf.printf "conductance = %.4f; Cheeger: %.4f <= lambda_2 <= %.4f\n"
        phi lo hi
    end
  in
  Cmd.v
    (Cmd.info "spectra" ~doc:"Spectral report of a generated graph.")
    Term.(const run $ family_arg $ n_arg $ seed_arg)

(* -- euler ---------------------------------------------------------------- *)

let euler_cmd =
  let run family n seed =
    let rng = Rng.create ~seed () in
    let g = Expt.Families.build family rng ~n in
    Format.printf "%a@." Graph.pp g;
    if Ewalk_graph.Euler.is_eulerian g then begin
      match Ewalk_graph.Euler.euler_circuit g ~start:0 with
      | Some trail ->
          Printf.printf "eulerian: yes - circuit of %d edges from vertex 0\n"
            (List.length trail)
      | None -> Printf.printf "eulerian: yes, but vertex 0 is isolated\n"
    end
    else begin
      Printf.printf "eulerian: no (odd degrees or edges in several components)\n";
      if Graph.all_degrees_even g then begin
        let trails = Ewalk_graph.Euler.closed_trail_decomposition g in
        Printf.printf "closed-trail decomposition: %d trails\n"
          (List.length trails)
      end
    end
  in
  Cmd.v
    (Cmd.info "euler"
       ~doc:"Euler-circuit report: the offline m-step edge-cover optimum.")
    Term.(const run $ family_arg $ n_arg $ seed_arg)

(* -- audit ----------------------------------------------------------------- *)

let audit_cmd =
  let run family n seed =
    let rng = Rng.create ~seed () in
    let g = Expt.Families.build family rng ~n in
    Format.printf "%a@." Graph.pp g;
    let even = Graph.all_degrees_even g in
    let connected = Ewalk_graph.Traversal.is_connected g in
    Printf.printf "even degrees: %b\nconnected:    %b\n" even connected;
    let gap =
      if Graph.n g <= 256 then
        (Ewalk_spectral.Spectral.gap_exact g).Ewalk_spectral.Spectral.gap
      else
        1.0
        -. Ewalk_spectral.Spectral.lambda_max_power ~tol:1e-7 ~max_iter:3_000 g
    in
    Printf.printf "spectral gap: %.4f\n" gap;
    if even then begin
      let lower = ref max_int in
      for v = 0 to min (Graph.n g) 50 - 1 do
        let b = Ewalk_analysis.Goodness.ell_of_vertex g v ~max_len:8 in
        if b.Ewalk_analysis.Goodness.lower < !lower then
          lower := b.Ewalk_analysis.Goodness.lower
      done;
      Printf.printf "ell (certified, sampled): >= %d\n" !lower;
      Printf.printf "Theorem 1 envelope (c=1): %.0f steps\n"
        (Ewalk_theory.Bounds.theorem1_vertex_cover ~ell:!lower
           ~gap:(Float.max gap 1e-6) (Graph.n g))
    end;
    let verdict = even && connected && gap > 0.05 in
    Printf.printf "verdict: %s\n"
      (if verdict then "Theta(n) E-process cover expected"
       else "Theorem 1 hypotheses not all satisfied")
  in
  Cmd.v
    (Cmd.info "audit"
       ~doc:"Audit a graph against Theorem 1's hypotheses.")
    Term.(const run $ family_arg $ n_arg $ seed_arg)

(* -- bench-diff ------------------------------------------------------------ *)

(* The regression gate over the bench ledger.  Exit codes: 0 = no kernel
   regressed, 1 = at least one regression, 2 = a record failed to load.
   `make bench-check` wires this against the committed baseline. *)
let bench_diff_cmd =
  let baseline_arg =
    let doc =
      "Baseline record: a BENCH_core.json-style snapshot, or a .jsonl \
       ledger (its last record is used)."
    in
    Arg.(value & pos 0 string "BENCH_baseline.json" & info [] ~docv:"BASE" ~doc)
  in
  let candidate_arg =
    let doc = "Candidate record (same formats as $(b,BASE))." in
    Arg.(
      value & pos 1 string "BENCH_history.jsonl" & info [] ~docv:"CAND" ~doc)
  in
  let tolerance_arg =
    let doc =
      "A kernel regresses when its candidate median exceeds the baseline \
       median by more than $(docv) baseline MADs (subject to \
       $(b,--min-rel-pct))."
    in
    Arg.(
      value & opt float 6.0 & info [ "tolerance-mads" ] ~docv:"K" ~doc)
  in
  let min_rel_arg =
    let doc =
      "Relative tolerance floor in percent: kernels whose MAD is ~0 still \
       get this much upward slack."
    in
    Arg.(value & opt float 25.0 & info [ "min-rel-pct" ] ~docv:"PCT" ~doc)
  in
  let run baseline candidate tolerance_mads min_rel_pct =
    let load what path =
      match Obs.Ledger.load_record path with
      | Ok r -> r
      | Error e ->
          Printf.eprintf "eproc bench-diff: %s %s: %s\n" what path e;
          exit 2
    in
    let base = load "baseline" baseline in
    let cand = load "candidate" candidate in
    let verdicts =
      Obs.Ledger.diff ~tolerance_mads ~min_rel:(min_rel_pct /. 100.0)
        ~baseline:base cand
    in
    Printf.printf "bench-diff: %s (%s, %s) vs %s (%s, %s)\n" baseline
      base.Obs.Ledger.git_rev base.Obs.Ledger.scale candidate
      cand.Obs.Ledger.git_rev cand.Obs.Ledger.scale;
    if verdicts = [] then
      print_endline "  (no kernels in common; nothing to compare)"
    else begin
      Printf.printf "%-36s %12s %12s %9s %10s\n" "kernel" "base" "cand"
        "delta" "tolerance";
      List.iter
        (fun v ->
          (* Rate kernels carry steps/second, not nanoseconds. *)
          let cell x =
            if Obs.Ledger.higher_is_better v.Obs.Ledger.v_kernel then
              Printf.sprintf "%9.2fM/s" (x /. 1e6)
            else Printf.sprintf "%9.2f us" (x /. 1e3)
          in
          Printf.printf "%-36s %s %s %+8.1f%% %9.1f%% %s\n"
            v.Obs.Ledger.v_kernel
            (cell v.Obs.Ledger.v_base_ns)
            (cell v.Obs.Ledger.v_cand_ns)
            v.Obs.Ledger.v_delta_percent v.Obs.Ledger.v_tolerance_percent
            (if v.Obs.Ledger.v_regressed then "REGRESSED" else "ok"))
        verdicts
    end;
    if Obs.Ledger.any_regression verdicts then begin
      print_endline "bench-diff: REGRESSION detected";
      exit 1
    end
    else print_endline "bench-diff: ok"
  in
  Cmd.v
    (Cmd.info "bench-diff"
       ~doc:
         "Compare two bench ledger records kernel by kernel (MAD-scaled \
          tolerance); exit 1 on regression, 2 on a load error.")
    Term.(
      const run $ baseline_arg $ candidate_arg $ tolerance_arg $ min_rel_arg)

(* -- report ---------------------------------------------------------------- *)

let report_cmd =
  let out_arg =
    let doc = "Write the markdown report to $(docv) (default: stdout)." in
    Arg.(value & opt (some string) None & info [ "out" ] ~docv:"FILE" ~doc)
  in
  let run scale seed out jobs =
    Ewalk_par.Pool.with_pool ?jobs @@ fun pool ->
    let buf = Buffer.create 65536 in
    Buffer.add_string buf
      (Printf.sprintf
         "# ewalk experiment report\n\nScale: %s.  Seed: %d.  One section per \
          experiment of DESIGN.md section 4.\n\n"
         (Expt.Sweep.scale_name scale) seed);
    List.iter
      (fun e ->
        let table = e.Expt.Experiments.run ~pool:(Some pool) ~scale ~seed in
        Buffer.add_string buf (Expt.Table.to_markdown table);
        Buffer.add_string buf
          (Printf.sprintf "\n*(reproduces: %s)*\n\n" e.Expt.Experiments.paper_item);
        Printf.eprintf "done: %s\n%!" e.Expt.Experiments.id)
      Expt.Experiments.all;
    match out with
    | None -> print_string (Buffer.contents buf)
    | Some path -> write_string_to_file path (Buffer.contents buf)
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:"Run every experiment and emit one markdown results report.")
    Term.(const run $ scale_arg $ seed_arg $ out_arg $ jobs_arg)

(* -- runs ------------------------------------------------------------------ *)

(* Provenance browser over the runs directory: every eproc invocation run
   with EWALK_RUNS_DIR set leaves runs/<id>/meta.json (plus
   throughput.jsonl once the walk produced samples); `eproc runs` lists
   them, reassembles parent_run_id resume chains, cross-references flight
   dumps, and compares throughput series with median/MAD deltas. *)

let runs_dir_arg =
  let doc = "Runs directory (default: $(b,EWALK_RUNS_DIR), else $(i,runs))." in
  Arg.(value & opt (some string) None & info [ "dir" ] ~docv:"DIR" ~doc)

let resolve_runs_dir = function
  | Some d -> d
  | None -> (
      match Sys.getenv_opt "EWALK_RUNS_DIR" with
      | Some d when d <> "" -> d
      | _ -> "runs")

type run_meta = {
  rm_id : string;
  rm_parent : string option;
  rm_config : string;
  rm_epoch : int;
  rm_fields : (string * Obs.Json.t) list;
  rm_dir : string;
}

let read_whole_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_run_meta dir entry =
  let path = Filename.concat (Filename.concat dir entry) "meta.json" in
  if not (Sys.file_exists path) then None
  else
    match Obs.Json.of_string (read_whole_file path) with
    | Error _ -> None
    | Ok doc -> (
        let str k = Option.bind (Obs.Json.member k doc) Obs.Json.to_string_opt in
        match str "run_id" with
        | Some rid when Obs.Runlog.validate_id rid ->
            Some
              {
                rm_id = rid;
                rm_parent =
                  (match str "parent_run_id" with
                  | Some p when Obs.Runlog.validate_id p -> Some p
                  | _ -> None);
                rm_config = Option.value ~default:"" (str "config");
                rm_epoch =
                  Option.value ~default:0
                    (Option.bind (Obs.Json.member "epoch_ns" doc)
                       Obs.Json.to_int_opt);
                rm_fields =
                  (match doc with Obs.Json.Obj kvs -> kvs | _ -> []);
                rm_dir = Filename.concat dir entry;
              }
        | _ -> None)

let scan_runs dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter_map (load_run_meta dir)
    |> List.sort (fun a b ->
           match compare a.rm_epoch b.rm_epoch with
           | 0 -> compare a.rm_id b.rm_id
           | c -> c)

let read_throughput_pairs path =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let acc = ref [] in
        (try
           while true do
             let line = input_line ic in
             if String.trim line <> "" then
               match Obs.Json.of_string line with
               | Ok doc -> (
                   match
                     ( Option.bind (Obs.Json.member "step" doc)
                         Obs.Json.to_int_opt,
                       Option.bind (Obs.Json.member "mono_ns" doc)
                         Obs.Json.to_int_opt )
                   with
                   | Some s, Some t -> acc := (s, t) :: !acc
                   | _ -> ())
               | Error _ -> ()
           done
         with End_of_file -> ());
        List.rev !acc)
  end

let run_pairs meta =
  read_throughput_pairs (Filename.concat meta.rm_dir "throughput.jsonl")

let median_of_sorted arr =
  let n = Array.length arr in
  if n = 0 then None
  else if n mod 2 = 1 then Some arr.(n / 2)
  else Some ((arr.(n / 2 - 1) +. arr.(n / 2)) /. 2.0)

(* (median, MAD) of a rate sample — the robust pair `runs compare` reports
   (a stalled tail or warm-up spike should not move the verdict). *)
let median_mad xs =
  let arr = Array.of_list xs in
  Array.sort compare arr;
  match median_of_sorted arr with
  | None -> None
  | Some med ->
      let dev = Array.map (fun v -> Float.abs (v -. med)) arr in
      Array.sort compare dev;
      Some (med, Option.value ~default:0.0 (median_of_sorted dev))

let rate_string = function
  | Some r -> Printf.sprintf "%.0f" r
  | None -> "-"

let runs_list_cmd =
  let run dir =
    let dir = resolve_runs_dir dir in
    let metas = scan_runs dir in
    if metas = [] then Printf.printf "no runs under %s\n" dir
    else begin
      Printf.printf "%-18s %-18s %12s  %s\n" "RUN" "PARENT" "STEPS/S"
        "CONFIG";
      List.iter
        (fun m ->
          Printf.printf "%-18s %-18s %12s  %s\n" m.rm_id
            (Option.value ~default:"-" m.rm_parent)
            (rate_string
               (Obs.Throughput.lifetime_rate_of_pairs (run_pairs m)))
            m.rm_config)
        metas
    end
  in
  Cmd.v
    (Cmd.info "list"
       ~doc:"List recorded runs: id, parent, lifetime steps/s, config.")
    Term.(const run $ runs_dir_arg)

let runs_show_cmd =
  let id_arg =
    let doc = "Run id to describe (r + 16 hex digits)." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"RUN_ID" ~doc)
  in
  let run dir id =
    let dir = resolve_runs_dir dir in
    let metas = scan_runs dir in
    match List.find_opt (fun m -> m.rm_id = id) metas with
    | None ->
        Printf.eprintf "eproc runs: no run %s under %s\n" id dir;
        exit 2
    | Some m ->
        Printf.printf "run       %s\n" m.rm_id;
        (match m.rm_parent with
        | Some p -> Printf.printf "parent    %s\n" p
        | None -> ());
        Printf.printf "config    %s\n" m.rm_config;
        Printf.printf "epoch_ns  %d\n" m.rm_epoch;
        List.iter
          (fun (k, v) ->
            match k with
            | "schema" | "run_id" | "parent_run_id" | "config" | "epoch_ns"
            | "artifacts" ->
                ()
            | _ -> Printf.printf "%-9s %s\n" k (Obs.Json.to_string v))
          m.rm_fields;
        let artifacts =
          match List.assoc_opt "artifacts" m.rm_fields with
          | Some (Obs.Json.Obj arts) -> arts
          | _ -> []
        in
        if artifacts <> [] then begin
          print_endline "artifacts:";
          List.iter
            (fun (k, v) ->
              let p = Option.value ~default:"?" (Obs.Json.to_string_opt v) in
              Printf.printf "  %-12s %s%s\n" k p
                (if Sys.file_exists p then "" else " (missing)"))
            artifacts
        end;
        (let pairs = run_pairs m in
         match median_mad (Obs.Throughput.rates_of_pairs pairs) with
         | Some (med, mad) ->
             Printf.printf
               "throughput: %d samples, median %.0f steps/s (MAD %.0f), \
                lifetime %s steps/s\n"
               (List.length pairs) med mad
               (rate_string (Obs.Throughput.lifetime_rate_of_pairs pairs))
         | None -> ());
        (* Resume chain, oldest ancestor first.  Ancestors come from
           parent pointers (a parent whose meta.json is gone is still
           shown, marked missing); descendants are runs that name one of
           the chain as parent. *)
        let by_id = List.map (fun x -> (x.rm_id, x)) metas in
        let rec up acc parent =
          match parent with
          | None -> acc
          | Some p ->
              if List.mem p acc then acc
              else
                let acc = p :: acc in
                (match List.assoc_opt p by_id with
                | Some pm -> up acc pm.rm_parent
                | None -> acc)
        in
        let ancestors = up [] m.rm_parent in
        let rec down cur =
          List.concat_map
            (fun k -> k.rm_id :: down k.rm_id)
            (List.filter (fun x -> x.rm_parent = Some cur) metas)
        in
        let descendants = down id in
        if ancestors <> [] || descendants <> [] then begin
          print_endline "resume chain (oldest first):";
          List.iter
            (fun rid ->
              Printf.printf "  %s%s%s\n" rid
                (if rid = id then " <- this run" else "")
                (if List.mem_assoc rid by_id then "" else " (meta missing)"))
            (ancestors @ (id :: descendants))
        end;
        (* Flight-dump cross-reference: scan the run's recorded flight
           directory for dumps whose run_info prologue names a run in the
           chain. *)
        let chain = ancestors @ (id :: descendants) in
        (match List.assoc_opt "flight_dir" artifacts with
        | Some (Obs.Json.String fdir)
          when Sys.file_exists fdir && Sys.is_directory fdir ->
            Array.iter
              (fun f ->
                if
                  String.length f >= 6
                  && String.sub f 0 6 = "flight"
                  && Filename.check_suffix f ".jsonl"
                then
                  let path = Filename.concat fdir f in
                  let dump_run = ref None in
                  (try
                     let ic = open_in path in
                     Fun.protect
                       ~finally:(fun () -> close_in_noerr ic)
                       (fun () ->
                         try
                           while !dump_run = None do
                             match Obs.Json.of_string (input_line ic) with
                             | Ok doc
                               when Obs.Json.member "type" doc
                                    = Some (Obs.Json.String "run_info") ->
                                 dump_run :=
                                   Option.bind
                                     (Obs.Json.member "run_id" doc)
                                     Obs.Json.to_string_opt
                             | _ -> ()
                           done
                         with End_of_file -> ())
                   with Sys_error _ -> ());
                  match !dump_run with
                  | Some rid when List.mem rid chain ->
                      Printf.printf "flight dump: %s (run %s)\n" path rid
                  | _ -> ())
              (Sys.readdir fdir)
        | _ -> ())
  in
  Cmd.v
    (Cmd.info "show"
       ~doc:
         "Describe one run: meta, artifacts, throughput summary, resume \
          chain, flight dumps.")
    Term.(const run $ runs_dir_arg $ id_arg)

let runs_compare_cmd =
  let a_arg =
    let doc = "Baseline run id." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"RUN_A" ~doc)
  in
  let b_arg =
    let doc = "Candidate run id." in
    Arg.(required & pos 1 (some string) None & info [] ~docv:"RUN_B" ~doc)
  in
  let run dir a b =
    let dir = resolve_runs_dir dir in
    let stats id =
      let pairs =
        read_throughput_pairs
          (Filename.concat (Filename.concat dir id) "throughput.jsonl")
      in
      match median_mad (Obs.Throughput.rates_of_pairs pairs) with
      | Some s -> s
      | None ->
          Printf.eprintf "eproc runs: %s has no throughput series under %s\n"
            id dir;
          exit 2
    in
    let med_a, mad_a = stats a in
    let med_b, mad_b = stats b in
    let delta = med_b -. med_a in
    let pct = if med_a <> 0.0 then 100.0 *. delta /. med_a else Float.nan in
    Printf.printf "%-18s median %12.0f steps/s  MAD %10.0f\n" a med_a mad_a;
    Printf.printf "%-18s median %12.0f steps/s  MAD %10.0f\n" b med_b mad_b;
    let verdict =
      if Float.abs delta <= mad_a +. mad_b then
        "within noise (|delta| <= MAD_a + MAD_b)"
      else if delta > 0.0 then "faster"
      else "slower"
    in
    Printf.printf "delta %+.0f steps/s (%+.1f%%) - %s\n" delta pct verdict
  in
  Cmd.v
    (Cmd.info "compare"
       ~doc:"Compare two runs' throughput series: median/MAD delta.")
    Term.(const run $ runs_dir_arg $ a_arg $ b_arg)

let runs_cmd =
  Cmd.group
    (Cmd.info "runs"
       ~doc:"Browse recorded run provenance (list / show / compare).")
    [ runs_list_cmd; runs_show_cmd; runs_compare_cmd ]

(* -- load-test ------------------------------------------------------------- *)

(* Drive an eprocd daemon with N concurrent sessions from C client
   domains: a create storm, then rounds of step requests across every
   session.  With --port 0 (the default) the daemon runs in-process on
   an ephemeral port and a throwaway state dir, so the command is a
   self-contained serving benchmark; against a --port it load-tests a
   daemon someone else started (the serve smoke script does both).  The
   derived `headline:serve_*` bench kernels measure the same stack
   in-process — this command is the operational, many-clients view. *)
let load_test_cmd =
  let sessions_arg =
    let doc = "How many sessions to create and drive." in
    Arg.(value & opt int 1000 & info [ "sessions" ] ~docv:"N" ~doc)
  in
  let steps_arg =
    let doc = "Steps per step request." in
    Arg.(value & opt int 100 & info [ "steps" ] ~docv:"K" ~doc)
  in
  let rounds_arg =
    let doc = "Step requests per session." in
    Arg.(value & opt int 1 & info [ "rounds" ] ~docv:"R" ~doc)
  in
  let clients_arg =
    let doc = "Concurrent client domains." in
    Arg.(value & opt int 4 & info [ "clients" ] ~docv:"C" ~doc)
  in
  let port_arg =
    let doc =
      "Target an already-running eprocd on this port (default: start one \
       in-process on an ephemeral port with a throwaway state dir)."
    in
    Arg.(value & opt int 0 & info [ "port" ] ~docv:"PORT" ~doc)
  in
  let cap_arg =
    let doc = "Resident cap for the in-process daemon (forces hibernation churn)." in
    Arg.(value & opt int 64 & info [ "resident-cap" ] ~docv:"K" ~doc)
  in
  let compete_arg =
    let doc = "Create competing-mode sessions." in
    Arg.(value & flag & info [ "compete" ] ~doc)
  in
  let run family process n seed walkers compete sessions steps rounds clients
      port cap =
    if sessions < 1 || steps < 1 || rounds < 1 || clients < 1 then begin
      Printf.eprintf
        "eproc load-test: sessions, steps, rounds and clients must be \
         positive\n";
      exit 2
    end;
    let own_daemon, port =
      if port <> 0 then (None, port)
      else
        match Ewalk_serve.Daemon.start ~resident_cap:cap () with
        | Error e ->
            Printf.eprintf "eproc load-test: %s\n" e;
            exit 2
        | Ok d -> (Some d, Ewalk_serve.Daemon.port d)
    in
    Fun.protect
      ~finally:(fun () ->
        Option.iter (fun d -> ignore (Ewalk_serve.Daemon.stop d)) own_daemon)
    @@ fun () ->
    let body =
      Obs.Json.to_string
        (Obs.Json.Obj
           [
             ("family", Obs.Json.String family);
             ("n", Obs.Json.Int n);
             ("process", Obs.Json.String process);
             ("seed", Obs.Json.Int seed);
             ("walkers", Obs.Json.Int walkers);
             ( "mode",
               Obs.Json.String (if compete then "competing" else "cooperating")
             );
           ])
    in
    let clients = min clients sessions in
    let failures = Atomic.make 0 in
    let fail fmt =
      Printf.ksprintf
        (fun m ->
          Atomic.incr failures;
          Printf.eprintf "eproc load-test: %s\n" m)
        fmt
    in
    (* Phase 1: the create storm.  Each client creates its share and
       keeps the ids the daemon assigned plus per-create latencies. *)
    let share c = (sessions + clients - 1 - c) / clients in
    let t0 = Obs.Clock.now_ns () in
    let created =
      Array.init clients (fun c ->
          Domain.spawn (fun () ->
              let ids = ref [] and lats = ref [] in
              for _ = 1 to share c do
                let t = Obs.Clock.now_ns () in
                match
                  Ewalk_serve.Client.request ~port ~meth:"POST"
                    ~path:"/sessions" ~body ()
                with
                | Ok { status = 201; body } -> (
                    lats := float_of_int (Obs.Clock.elapsed_ns t) :: !lats;
                    match
                      Result.bind (Obs.Json.of_string (String.trim body))
                        (fun j ->
                          match
                            Option.bind (Obs.Json.member "id" j)
                              Obs.Json.to_string_opt
                          with
                          | Some id -> Ok id
                          | None -> Error "no id")
                    with
                    | Ok id -> ids := id :: !ids
                    | Error e -> fail "create: bad response (%s)" e)
                | Ok { status; _ } -> fail "create: status %d" status
                | Error e -> fail "create: %s" e
              done;
              (List.rev !ids, !lats)))
      |> Array.map Domain.join
    in
    let create_s = Obs.Clock.elapsed_s t0 in
    let ids = Array.of_list (List.concat_map fst (Array.to_list created)) in
    let lats =
      Array.of_list (List.concat_map snd (Array.to_list created))
    in
    Array.sort compare lats;
    let pct p =
      if Array.length lats = 0 then 0.
      else lats.(min (Array.length lats - 1)
                    (int_of_float (p *. float_of_int (Array.length lats))))
    in
    Printf.printf
      "load-test: created %d/%d sessions in %.3f s (%.0f/s; latency p50 \
       %.0f ns, p99 %.0f ns)\n%!"
      (Array.length ids) sessions create_s
      (float_of_int (Array.length ids) /. create_s)
      (pct 0.5) (pct 0.99)
      ;
    (* Phase 2: step every session, rounds times. *)
    let t1 = Obs.Clock.now_ns () in
    let step_body = Printf.sprintf "{\"steps\":%d}" steps in
    let stepped =
      Array.init clients (fun c ->
          Domain.spawn (fun () ->
              let total = ref 0 in
              for _ = 1 to rounds do
                let i = ref c in
                while !i < Array.length ids do
                  (match
                     Ewalk_serve.Client.request ~port ~meth:"POST"
                       ~path:(Printf.sprintf "/sessions/%s/step" ids.(!i))
                       ~body:step_body ()
                   with
                  | Ok { status = 200; _ } -> total := !total + steps
                  | Ok { status; _ } -> fail "step: status %d" status
                  | Error e -> fail "step: %s" e);
                  i := !i + clients
                done
              done;
              !total))
      |> Array.map Domain.join
    in
    let step_s = Obs.Clock.elapsed_s t1 in
    let total_steps = Array.fold_left ( + ) 0 stepped in
    Printf.printf
      "load-test: advanced %d steps across %d sessions in %.3f s (%.0f \
       steps/s over HTTP)\n%!"
      total_steps (Array.length ids) step_s
      (float_of_int total_steps /. step_s);
    (* Phase 3: report the daemon's own view. *)
    (match Ewalk_serve.Client.request ~port ~meth:"GET" ~path:"/metrics" () with
    | Ok { status = 200; body } ->
        let value_of name =
          String.split_on_char '\n' body
          |> List.find_map (fun line ->
                 match String.split_on_char ' ' line with
                 | [ k; v ] when k = "ewalk_" ^ name -> Some v
                 | _ -> None)
          |> Option.value ~default:"?"
        in
        Printf.printf
          "load-test: daemon sessions=%s resident=%s hibernations=%s \
           rehydrations=%s serve_steps=%s\n%!"
          (value_of "sessions")
          (value_of "sessions_resident")
          (value_of "hibernations_total")
          (value_of "rehydrations_total")
          (value_of "serve_steps_total")
    | Ok { status; _ } -> fail "metrics: status %d" status
    | Error e -> fail "metrics: %s" e);
    if Atomic.get failures > 0 then begin
      Printf.eprintf "eproc load-test: %d request failures\n"
        (Atomic.get failures);
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "load-test"
       ~doc:
         "Drive an eprocd daemon with many concurrent walk sessions and \
          report create latency and stepping throughput.")
    Term.(
      const run $ family_arg $ process_arg $ n_arg $ seed_arg $ walkers_arg
      $ compete_arg $ sessions_arg $ steps_arg $ rounds_arg $ clients_arg
      $ port_arg $ cap_arg)

let main =
  let doc = "Random walks which prefer unvisited edges (E-process) - reproduction CLI." in
  Cmd.group
    (Cmd.info "eproc" ~version:"1.0.0" ~doc)
    [
      list_cmd; experiment_cmd; graph_info_cmd; cover_cmd; trace_cmd;
      verify_trace_cmd; openmetrics_validate_cmd; check_oracle_cmd;
      checkpoint_inspect_cmd; spectra_cmd; euler_cmd; audit_cmd; report_cmd;
      bench_diff_cmd; runs_cmd; load_test_cmd;
    ]

(* Cmdliner cannot declare a one-letter long option, but "--n 1000" is how
   everyone writes the size flag; rewrite it to the short form "-n". *)
let normalize_arg a =
  if a = "--n" then "-n"
  else if String.length a > 4 && String.sub a 0 4 = "--n=" then
    "-n" ^ String.sub a 4 (String.length a - 4)
  else a

let () =
  (* Arm the durability-test fault spec before any subcommand runs, so the
     crash matrix can inject failures into every code path uniformly. *)
  (match Ewalk_resume.Faults.install_from_env () with
  | Ok _ -> ()
  | Error e ->
      Printf.eprintf "eproc: %s: %s\n" Ewalk_resume.Faults.env_var e;
      exit 2);
  (* Likewise the crash flight recorder (EWALK_FLIGHT_DIR): any exit that
     does not come back through here — injected faults, SIGTERM, uncaught
     exceptions — dumps the last recorded events as a post-mortem. *)
  (match Obs.Flight.enable_from_env () with
  | Ok () -> ()
  | Error e ->
      Printf.eprintf "eproc: %s\n" e;
      exit 2);
  (* Every invocation mints its run id up front, before any subcommand can
     produce an artifact; resume legs re-derive with the parent folded in
     once the resumed artifact has been read. *)
  let argv = Array.map normalize_arg Sys.argv in
  (* The provenance browser must not add entries to the store it reads. *)
  if Array.length argv > 1 && argv.(1) = "runs" then
    Obs.Runlog.set_persist false;
  ignore
    (Obs.Runlog.begin_run
       ~config:(String.concat " " (Array.to_list (Array.sub argv 1 (max 0 (Array.length argv - 1)))))
       ()
      : Obs.Runlog.t);
  Obs.Runlog.add_meta_fields Obs.Throughput.summary_fields;
  (match Sys.getenv_opt "EWALK_FLIGHT_DIR" with
  | Some d when d <> "" -> Obs.Runlog.note_artifact ~key:"flight_dir" ~path:d
  | _ -> ());
  arm_run_outputs ();
  let code = Cmd.eval ~argv main in
  if code = 0 then Obs.Flight.disarm ();
  exit code
