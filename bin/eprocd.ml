(* eprocd — walks as a service.  A persistent daemon serving walk
   sessions over loopback HTTP/JSON: create sessions (graph family,
   process, seed, walkers, mode), step them, run them to the cover
   milestone, stream their trace events as chunked JSONL, and fetch
   coverage — with idle sessions hibernating to CRC-guarded snapshots
   under an LRU resident cap and rehydrating transparently.

   All the machinery lives in Ewalk_serve; this executable is argument
   parsing, run provenance, signal handling and the idle loop. *)

module Obs = Ewalk_obs
open Cmdliner

let quit_requested = Atomic.make false

let install_signals () =
  let handle _ = Atomic.set quit_requested true in
  List.iter
    (fun s ->
      try Sys.set_signal s (Sys.Signal_handle handle)
      with Invalid_argument _ | Sys_error _ -> ())
    [ Sys.sigterm; Sys.sigint ]

let run port state_dir resident_cap max_n jobs =
  install_signals ();
  let pool = if jobs > 1 then Some (Ewalk_par.Pool.create ~jobs ()) else None in
  let finally () = Option.iter Ewalk_par.Pool.shutdown pool in
  Fun.protect ~finally @@ fun () ->
  match
    Ewalk_serve.Daemon.start ~port ~state_dir ~resident_cap ~max_n ?pool ()
  with
  | Error e ->
      Printf.eprintf "eprocd: %s\n" e;
      2
  | Ok d ->
      Printf.eprintf
        "eprocd: listening on http://127.0.0.1:%d (state %s, resident cap \
         %d, %d recovered)\n\
         eprocd: GET /healthz | GET /metrics | POST /sessions | GET \
         /sessions/:id/trace?steps=K | /quit\n\
         %!"
        (Ewalk_serve.Daemon.port d)
        state_dir resident_cap
        (Ewalk_serve.Registry.session_count (Ewalk_serve.Daemon.registry d));
      while
        not (Ewalk_serve.Daemon.stopped d || Atomic.get quit_requested)
      do
        Unix.sleepf 0.1
      done;
      let hibernated = Ewalk_serve.Daemon.stop d in
      Printf.eprintf "eprocd: hibernated %d sessions; bye\n%!" hibernated;
      0

let port_arg =
  let doc = "Listen port (0 = let the kernel pick; the bound port is announced on stderr)." in
  Arg.(value & opt int 0 & info [ "port" ] ~docv:"PORT" ~doc)

let state_dir_arg =
  let doc =
    "Session state directory: per-session meta files and hibernation \
     snapshots.  Restarting with the same directory recovers every \
     session a previous daemon hibernated there."
  in
  Arg.(value & opt string "eprocd-state" & info [ "state-dir" ] ~docv:"DIR" ~doc)

let resident_cap_arg =
  let doc =
    "How many sessions may stay live in memory; beyond the cap, \
     least-recently-used sessions hibernate to disk and rehydrate \
     transparently on their next request."
  in
  Arg.(value & opt int 256 & info [ "resident-cap" ] ~docv:"K" ~doc)

let max_n_arg =
  let doc = "Largest graph a create-session request may ask for." in
  Arg.(value & opt int 1_000_000 & info [ "max-n" ] ~docv:"N" ~doc)

let jobs_arg =
  let doc =
    "Domain pool size for competing multi-walker sessions (their \
     whole-round batches shard across the pool, bit-identically)."
  in
  Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"J" ~doc)

let main =
  Cmd.v
    (Cmd.info "eprocd" ~version:"%%VERSION%%"
       ~doc:
         "Serve walk sessions over loopback HTTP/JSON with hibernation \
          under a resident cap.")
    Term.(
      const run $ port_arg $ state_dir_arg $ resident_cap_arg $ max_n_arg
      $ jobs_arg)

let () =
  (match Ewalk_resume.Faults.install_from_env () with
  | Ok _ -> ()
  | Error e ->
      Printf.eprintf "eprocd: %s\n" e;
      exit 2);
  (match Obs.Flight.enable_from_env () with
  | Ok () -> ()
  | Error e ->
      Printf.eprintf "eprocd: %s\n" e;
      exit 2);
  ignore
    (Obs.Runlog.begin_run
       ~config:(String.concat " " (Array.to_list Sys.argv))
       ());
  exit (Cmd.eval' main)
