(* The adversary cannot win: Theorem 1's rule-independence, live.

   The E-process lets an arbitrary rule A pick which unvisited edge to
   follow - even an online adversary that sees the whole process state.
   Theorem 1 says that on an even-degree expander the cover time is O(n)
   regardless.  This example pits increasingly mean adversaries against a
   random 6-regular graph and watches them all lose.

   Run with:  dune exec examples/adversary.exe *)

module Graph = Ewalk_graph.Graph
module Rng = Ewalk_prng.Rng
module Eprocess = Ewalk.Eprocess

(* Adversary 1: re-enter explored territory whenever possible. *)
let stay_explored t candidates =
  Ewalk_expt.Exp_util.adversary_stay_explored t candidates

(* Adversary 2: end blue phases as fast as possible (head for low blue
   degree). *)
let kill_blue t candidates = Ewalk_expt.Exp_util.adversary_min_blue t candidates

(* Adversary 3: hug the start vertex - always pick the unvisited edge whose
   endpoint is closest to the start, precomputed by BFS. *)
let homebody dist t candidates =
  let g = Eprocess.graph t in
  let here = Eprocess.position t in
  let best = ref 0 and best_d = ref max_int in
  Array.iteri
    (fun i e ->
      let w = Graph.opposite g e here in
      if dist.(w) < !best_d then begin
        best := i;
        best_d := dist.(w)
      end)
    candidates;
  !best

let run name g rule =
  let rng = Rng.create ~seed:31 () in
  let t = Eprocess.create ~rule g rng ~start:0 in
  match Ewalk.Cover.run_until_vertex_cover (Eprocess.process t) with
  | Some steps ->
      Printf.printf "%-28s covered in %8d steps  (%.2f n)\n" name steps
        (float_of_int steps /. float_of_int (Graph.n g))
  | None -> Printf.printf "%-28s hit the step cap!\n" name

let () =
  let n = Scale.pick ~tiny:2_000 30_000 in
  let rng = Rng.create ~seed:3 () in
  let g = Ewalk_graph.Gen_regular.random_regular_connected rng n 6 in
  Printf.printf
    "random 6-regular graph, n=%d: every rule A must cover in O(n)\n\n" n;
  run "uniform (greedy random walk)" g Eprocess.Uar;
  run "deterministic lowest-slot" g Eprocess.Lowest_slot;
  run "deterministic highest-slot" g Eprocess.Highest_slot;
  run "adversary: stay explored" g (Eprocess.Adversarial stay_explored);
  run "adversary: kill blue phases" g (Eprocess.Adversarial kill_blue);
  let dist = Ewalk_graph.Traversal.bfs_distances g 0 in
  run "adversary: hug the start" g (Eprocess.Adversarial (homebody dist));
  print_newline ();
  Printf.printf
    "for contrast, a simple random walk pays the log factor: ~%.0f steps\n"
    (Ewalk_theory.Bounds.feige_lower_bound ~n)
