(* Graph audit: will the E-process cover YOUR graph in linear time?

   Theorem 1 needs three things: even degrees, expansion (a spectral gap),
   and ell-goodness.  This example audits three candidate networks against
   those hypotheses, predicts the cover behaviour, then runs the E-process
   to verify the prediction.  It also round-trips one graph through the
   plain-text serialisation - the workflow a user with their own edge-list
   file would follow.

   Run with:  dune exec examples/graph_audit.exe *)

module Graph = Ewalk_graph.Graph
module Rng = Ewalk_prng.Rng

let audit name g =
  Printf.printf "--- %s ---\n" name;
  Format.printf "  %a@." Graph.pp g;
  let even = Graph.all_degrees_even g in
  let connected = Ewalk_graph.Traversal.is_connected g in
  Printf.printf "  even degrees: %b   connected: %b\n" even connected;
  let gap =
    if Graph.n g <= 256 then
      (Ewalk_spectral.Spectral.gap_exact g).Ewalk_spectral.Spectral.gap
    else
      1.0
      -. Ewalk_spectral.Spectral.lambda_max_power ~tol:1e-7 ~max_iter:3_000 g
  in
  Printf.printf "  spectral gap 1 - lambda_max: %.4f (%s)\n" gap
    (if gap > 0.05 then "expander" else "NOT an expander");
  (* Certified ell-goodness over a sample of vertices. *)
  let ell =
    if not even then None
    else begin
      let lower = ref max_int in
      let sample = min (Graph.n g) 50 in
      for v = 0 to sample - 1 do
        let b = Ewalk_analysis.Goodness.ell_of_vertex g v ~max_len:8 in
        if b.Ewalk_analysis.Goodness.lower < !lower then
          lower := b.Ewalk_analysis.Goodness.lower
      done;
      Some !lower
    end
  in
  let ell_target = max 2 (int_of_float (log (float_of_int (Graph.n g)))) in
  let ell_ok =
    match ell with Some l -> l >= min ell_target 9 | None -> false
  in
  (match ell with
  | Some l ->
      Printf.printf "  certified ell >= %d (want ~ln n = %d for the full theorem)\n"
        l ell_target
  | None -> Printf.printf "  ell-goodness: n/a (odd degrees)\n");
  let verdict = even && connected && gap > 0.05 && ell_ok in
  Printf.printf "  prediction: %s\n"
    (if verdict then "Theorem 1 applies - expect Theta(n) cover"
     else "a hypothesis fails - expect an n log n (or worse) cover");
  (* Now measure. *)
  let rng = Rng.create ~seed:11 () in
  let ep = Ewalk.Eprocess.create g rng ~start:0 in
  (match
     Ewalk.Cover.run_until_vertex_cover
       ~cap:(Ewalk.Cover.default_cap g)
       (Ewalk.Eprocess.process ep)
   with
  | Some t ->
      let n = float_of_int (Graph.n g) in
      Printf.printf "  measured: covered in %d steps = %.2f n = %.3f n ln n\n\n"
        t
        (float_of_int t /. n)
        (float_of_int t /. (n *. log n))
  | None -> Printf.printf "  measured: hit the step cap!\n\n")

let () =
  let rng = Rng.create ~seed:5 () in

  (* Candidate 1: a random 4-regular graph - all hypotheses hold. *)
  let good =
    Ewalk_graph.Gen_regular.random_regular_connected rng
      (Scale.pick ~tiny:2_000 20_000)
      4
  in
  audit "random 4-regular (the paper's ideal case)" good;

  (* Candidate 2: a torus - even degrees but no expansion. *)
  let side = Scale.pick ~tiny:30 100 in
  audit
    (Printf.sprintf "torus %dx%d (even, but gap -> 0)" side side)
    (Ewalk_graph.Gen_classic.torus2d side side);

  (* Candidate 3: a random 3-regular graph - odd degrees. *)
  let odd =
    Ewalk_graph.Gen_regular.random_regular_connected rng
      (Scale.pick ~tiny:2_000 20_000)
      3
  in
  audit "random 3-regular (odd degrees: Section 5 territory)" odd;

  (* Candidate 4: "even-ise" an odd-degree graph with its line graph.  The
     line graph of a cubic graph is 4-regular, hence even - but the trick
     degrades both other hypotheses: line-graph adjacency eigenvalues are
     lambda + 1, so the walk gap compresses to ~(lambda_2(G)+1)/4 ~ 0.04,
     and every vertex sits on two triangles, pinning ell at the constant 5.
     A cautionary example: evenness alone is not enough. *)
  let cubic =
    Ewalk_graph.Gen_regular.random_regular_connected rng
      (Scale.pick ~tiny:1_000 10_000)
      3
  in
  audit "line graph of a random cubic graph (even, but gap and ell degrade)"
    (Ewalk_graph.Ops.line_graph cubic);

  (* The file workflow: save, reload, audit the reload. *)
  let path = Filename.temp_file "ewalk_audit" ".graph" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Ewalk_graph.Graph_io.save path good;
      let reloaded = Ewalk_graph.Graph_io.load path in
      Printf.printf "round-trip through %s: %d vertices, %d edges, equal: %b\n"
        path (Graph.n reloaded) (Graph.m reloaded)
        (Graph.edge_list reloaded = Graph.edge_list good))
