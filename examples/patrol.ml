(* Network patrolling: which walk revisits every node most evenly?

   The rotor-router literature the paper cites (Yanovski et al.) is motivated
   by patrolling: a mobile agent should keep the maximum time-between-visits
   ("idle time") of every node low.  We patrol a 4-regular torus - think of a
   sensor grid - and compare:

     - the E-process (edge marks reset at the start of each sweep),
     - the rotor-router (the classical patrolling ant; state persists),
     - the simple random walk,
     - least-used-first (state persists).

   A "sweep" ends when every node has been seen since the sweep began; the
   figure of merit is steps per sweep and the worst idle gap of any node.

   Run with:  dune exec examples/patrol.exe *)

module Graph = Ewalk_graph.Graph
module Rng = Ewalk_prng.Rng

let rounds = 5

(* Drive stepper/position callbacks through [rounds] sweeps, with sweep
   completion tracked outside the process so persistent processes (rotor,
   least-used-first) keep their internal state between sweeps.
   [reset] is called at each sweep start and may swap the stepper. *)
let patrol name g ~reset =
  let n = Graph.n g in
  let last_visit = Array.make n 0 in
  let seen = Array.make n (-1) in
  let clock = ref 0 in
  let worst_gap = ref 0 in
  for round = 0 to rounds - 1 do
    let step, position = reset round in
    let covered = ref 1 in
    seen.(position ()) <- round;
    let visit v =
      let gap = !clock - last_visit.(v) in
      if gap > !worst_gap then worst_gap := gap;
      last_visit.(v) <- !clock;
      if seen.(v) < round then begin
        seen.(v) <- round;
        incr covered
      end
    in
    while !covered < n && !clock < 10_000 * n do
      step ();
      incr clock;
      visit (position ())
    done
  done;
  Printf.printf
    "%-18s %9d steps for %d sweeps  (%.2f n/sweep; worst idle gap %.2f n)\n"
    name !clock rounds
    (float_of_int !clock /. float_of_int (rounds * n))
    (float_of_int !worst_gap /. float_of_int n)

let () =
  let side = Scale.pick ~tiny:12 100 in
  let g = Ewalk_graph.Gen_classic.torus2d side side in
  let n = Graph.n g in
  Printf.printf "patrolling a %dx%d torus (%d nodes), %d sweeps each:\n\n" side
    side n rounds;

  (* E-process: fresh edge marks each sweep, position carried over. *)
  let ep_pos = ref 0 in
  patrol "e-process" g ~reset:(fun round ->
      let rng = Rng.create ~seed:(100 + round) () in
      let t = Ewalk.Eprocess.create g rng ~start:!ep_pos in
      ( (fun () ->
          Ewalk.Eprocess.step t;
          ep_pos := Ewalk.Eprocess.position t),
        fun () -> Ewalk.Eprocess.position t ));

  (* Rotor-router: one persistent machine across all sweeps. *)
  let rotor =
    Ewalk.Rotor.create ~randomize_rotors:true g (Rng.create ~seed:7 ())
      ~start:0
  in
  patrol "rotor-router" g ~reset:(fun _round ->
      ( (fun () -> Ewalk.Rotor.step rotor),
        fun () -> Ewalk.Rotor.position rotor ));

  (* Simple random walk: memoryless anyway. *)
  let srw = Ewalk.Srw.create g (Rng.create ~seed:9 ()) ~start:0 in
  patrol "srw" g ~reset:(fun _round ->
      ((fun () -> Ewalk.Srw.step srw), fun () -> Ewalk.Srw.position srw));

  (* Least-used-first: persistent edge counters equalise long-run load. *)
  let luf =
    Ewalk.Fair.create ~random_ties:true ~strategy:Ewalk.Fair.Least_used_first
      g (Rng.create ~seed:11 ()) ~start:0
  in
  patrol "least-used-first" g ~reset:(fun _round ->
      ((fun () -> Ewalk.Fair.step luf), fun () -> Ewalk.Fair.position luf));

  print_newline ();
  print_endline
    "edge-aware walks (e-process, least-used-first, rotor) sweep the torus in";
  print_endline
    "a small multiple of n and keep idle gaps tight; the memoryless SRW pays";
  print_endline
    "the coupon-collector tax on every sweep.  (the torus is no expander -";
  print_endline
    "on a random 4-regular graph the e-process sweep drops to ~2n steps.)"
