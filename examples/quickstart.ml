(* Quickstart: the paper's headline result in thirty lines.

   Build a random 4-regular graph (even degree, expander whp), run the
   E-process and a simple random walk from the same start vertex, and watch
   the E-process cover all n vertices in Theta(n) steps while the SRW needs
   Theta(n log n).

   Run with:  dune exec examples/quickstart.exe *)

module Graph = Ewalk_graph.Graph
module Rng = Ewalk_prng.Rng

let () =
  let n = Scale.pick ~tiny:2_000 50_000 in
  let rng = Rng.create ~seed:42 () in
  let g = Ewalk_graph.Gen_regular.random_regular_connected rng n 4 in
  Printf.printf "graph: %d vertices, %d edges, 4-regular\n" (Graph.n g)
    (Graph.m g);

  (* The E-process: prefer unvisited edges, fall back to a random walk. *)
  let ep = Ewalk.Eprocess.create g rng ~start:0 in
  (match Ewalk.Cover.run_until_vertex_cover (Ewalk.Eprocess.process ep) with
  | Some t ->
      Printf.printf "e-process covered every vertex in %d steps (%.2f n)\n" t
        (float_of_int t /. float_of_int n);
      Printf.printf "  of which %d blue (unvisited-edge) and %d red (random-walk) steps\n"
        (Ewalk.Eprocess.blue_steps ep)
        (Ewalk.Eprocess.red_steps ep)
  | None -> print_endline "e-process hit its step cap (unexpected)");

  (* The baseline: a simple random walk on the same graph. *)
  let srw = Ewalk.Srw.create g rng ~start:0 in
  (match Ewalk.Cover.run_until_vertex_cover (Ewalk.Srw.process srw) with
  | Some t ->
      Printf.printf "simple random walk needed %d steps (%.2f n ln n)\n" t
        (float_of_int t /. (float_of_int n *. log (float_of_int n)))
  | None -> print_endline "srw hit its step cap (unexpected)");

  (* Theorem 5 says no reversible walk can beat (n/4) ln (n/2). *)
  Printf.printf "reversible-walk lower bound (Radzik): %.0f steps\n"
    (Ewalk_theory.Bounds.radzik_lower_bound ~n);
  Printf.printf "walk-process trivial lower bound:     %d steps\n"
    (Ewalk_theory.Bounds.walk_trivial_lower_bound ~n)
