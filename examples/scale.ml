(* One knob shared by every example: the test suite sets
   EWALK_EXAMPLE_SCALE=tiny so each example runs in well under a second,
   while a plain [dune exec] keeps the full-size graphs the commentary
   describes.  [pick ~tiny v] selects the reduced size under the knob. *)

let tiny =
  match Sys.getenv_opt "EWALK_EXAMPLE_SCALE" with
  | Some "tiny" -> true
  | _ -> false

let pick ~tiny:small full = if tiny then small else full
