(* Exhaustive search on the hypercube: the paper's edge-cover example.

   Section 1 works out the E-process on the hypercube H_r: its edge cover
   time is Theta(n log n), beating both the Theta(n log^2 n) edge cover of a
   simple random walk and the eq. (2) bound.  Concretely: an agent that must
   test every LINK of a hypercube interconnect (not just touch every node)
   finishes a log-factor sooner if it prefers untested links.

   This example measures both processes on H_10..H_13 and prints the
   normalised columns that should stay flat.

   Run with:  dune exec examples/search_hypercube.exe *)

module Graph = Ewalk_graph.Graph
module Rng = Ewalk_prng.Rng

let () =
  Printf.printf
    "testing every link of H_r: E-process vs simple random walk\n\n";
  Printf.printf "%3s %8s %9s | %12s %14s | %12s %16s\n" "r" "n" "m" "C_E(E)"
    "/(n ln n)" "C_E(SRW)" "/(n ln^2 n)";
  List.iter
    (fun r ->
      let g = Ewalk_graph.Gen_classic.hypercube r in
      let n = Graph.n g and m = Graph.m g in
      let rng = Rng.create ~seed:(50 + r) () in
      let ep = Ewalk.Eprocess.create g rng ~start:0 in
      let ep_cover =
        Ewalk.Cover.run_until_edge_cover (Ewalk.Eprocess.process ep)
      in
      let srw = Ewalk.Srw.create g rng ~start:0 in
      let srw_cover =
        Ewalk.Cover.run_until_edge_cover (Ewalk.Srw.process srw)
      in
      match (ep_cover, srw_cover) with
      | Some ep_t, Some srw_t ->
          let fn = float_of_int n in
          let nl = fn *. log fn in
          Printf.printf "%3d %8d %9d | %12d %14.3f | %12d %16.3f\n" r n m ep_t
            (float_of_int ep_t /. nl)
            srw_t
            (float_of_int srw_t /. (nl *. log fn))
      | _ -> Printf.printf "%3d: step cap hit\n" r)
    (Scale.pick ~tiny:[ 5; 6 ] [ 10; 11; 12; 13 ]);
  print_newline ();
  print_endline
    "both normalised columns are ~constant: the E-process saves a full";
  print_endline
    "Theta(log n) factor on edge cover, exactly as the paper's example says.";
  print_endline
    "(H_r has odd degree for odd r - the edge-cover result needs no parity.)"
