(* Multi-robot exploration: k walkers, one shared map.

   A fleet of robots explores a network; each robot prefers corridors
   (edges) nobody has traversed yet, and they share their map.  This is the
   Team extension of the E-process (DESIGN.md section 4, beyond the paper):
   the shared unvisited-edge marks mean total work stays ~2n regardless of
   fleet size, so the wall-clock time divides by k almost perfectly.

   Run with:  dune exec examples/team_sweep.exe *)

module Graph = Ewalk_graph.Graph
module Rng = Ewalk_prng.Rng

let () =
  let n = Scale.pick ~tiny:2_000 100_000 in
  let rng = Rng.create ~seed:21 () in
  let g = Ewalk_graph.Gen_regular.random_regular_connected rng n 4 in
  Printf.printf
    "exploring a random 4-regular network, n = %d, with k robots:\n\n" n;
  Printf.printf "%4s %14s %12s %12s %10s\n" "k" "total moves" "moves/n"
    "rounds/n" "speed-up";
  let base = ref nan in
  List.iter
    (fun k ->
      let rng = Rng.create ~seed:(100 + k) () in
      let team = Ewalk_kernel.Team.create_spread g rng ~walkers:k in
      match
        Ewalk.Cover.run_until_vertex_cover
          ~cap:(Ewalk.Cover.default_cap g)
          (Ewalk_kernel.Team.process team)
      with
      | Some steps ->
          let rounds = float_of_int steps /. float_of_int k in
          if k = 1 then base := rounds;
          Printf.printf "%4d %14d %12.3f %12.3f %9.2fx\n" k steps
            (float_of_int steps /. float_of_int n)
            (rounds /. float_of_int n)
            (!base /. rounds)
      | None -> Printf.printf "%4d: hit the step cap\n" k)
    [ 1; 2; 4; 8; 16; 32 ];
  print_newline ();
  print_endline "total work is flat in k: a mark consumed by one robot is";
  print_endline "consumed for all - the fleet parallelises the E-process";
  print_endline "nearly for free until stragglers dominate."
