open Ewalk_graph
module Rng = Ewalk_prng.Rng
module Eprocess = Ewalk.Eprocess
module Srw = Ewalk.Srw
module Rotor = Ewalk.Rotor
module Coverage = Ewalk.Coverage
module Pool = Ewalk_par.Pool

type mode = Uar | Lowest | Highest | Srw_walk | Rotor_walk

let mode_name = function
  | Uar -> "uar"
  | Lowest -> "lowest-slot"
  | Highest -> "highest-slot"
  | Srw_walk -> "srw"
  | Rotor_walk -> "rotor"

let all_modes = [ Uar; Lowest; Highest; Srw_walk; Rotor_walk ]

type case = {
  label : string;
  graph : Graph.t;
  seed : int;
  max_steps : int;
  mode : mode;
}

let case_name c =
  Printf.sprintf "%s/%s/seed=%d" c.label (mode_name c.mode) c.seed

(* Feed a production process's native Step events through an invariant
   monitor, keeping the first violation. *)
let monitor_observer inv first (ev : Ewalk_obs.Trace.event) =
  match ev with
  | Ewalk_obs.Trace.Step { step; vertex; edge; blue } -> (
      match Invariant.on_step inv ~step ~vertex ~edge ~blue with
      | Some v when !first = None ->
          first := Some (Invariant.violation_to_string v)
      | _ -> ())
  | _ -> ()

let err fmt = Printf.ksprintf (fun s -> Error s) fmt

(* Compare the production coverage's per-edge flags against a reference
   bool array.  For the E-process the two must coincide exactly: red steps
   only re-traverse edges already visited, so the coverage set equals the
   set of blue-retired edges. *)
let check_edge_flags cov reference =
  let flags = Coverage.visited_edge_flags cov in
  if Array.length flags <> Array.length reference then
    err "edge flag arrays differ in length: %d vs %d" (Array.length flags)
      (Array.length reference)
  else begin
    let bad = ref None in
    Array.iteri
      (fun e p -> if !bad = None && p <> reference.(e) then bad := Some e)
      flags;
    match !bad with
    | Some e ->
        err "edge %d %s by production but %s in the reference set" e
          (if Coverage.edge_visited cov e then "visited" else "unvisited")
          (if reference.(e) then "visited" else "unvisited")
    | None -> Ok ()
  end

let ( let* ) = Result.bind

let finish_monitor inv first =
  match !first with Some msg -> Error msg | None -> Ok (Invariant.steps inv)

(* Deterministic blue rules: full RNG lockstep against the oracle. *)
let eprocess_lockstep c =
  let prod_rule, oracle_rule, inv_rule =
    match c.mode with
    | Lowest ->
        (Eprocess.Lowest_slot, Oracle.Eprocess.Lowest_slot, Invariant.Lowest_slot)
    | _ ->
        (Eprocess.Highest_slot, Oracle.Eprocess.Highest_slot,
         Invariant.Highest_slot)
  in
  let g = c.graph in
  let prod = Eprocess.create ~rule:prod_rule g (Rng.create ~seed:c.seed ()) ~start:0 in
  let orc =
    Oracle.Eprocess.create ~rule:oracle_rule g (Rng.create ~seed:c.seed ())
      ~start:0
  in
  let inv = Invariant.create ~rule:inv_rule g ~start:0 in
  let first = ref None in
  Eprocess.set_observer prod (Some (monitor_observer inv first));
  let cov = Eprocess.coverage prod in
  let divergence = ref None in
  let steps = ref 0 in
  while
    !divergence = None
    && (not (Coverage.all_vertices_visited cov))
    && !steps < c.max_steps
  do
    Eprocess.step prod;
    Oracle.Eprocess.step orc;
    incr steps;
    if Eprocess.position prod <> Oracle.Eprocess.position orc then
      divergence :=
        Some
          (Printf.sprintf "step %d: production at vertex %d, oracle at %d"
             !steps (Eprocess.position prod)
             (Oracle.Eprocess.position orc))
    else if Eprocess.blue_steps prod <> Oracle.Eprocess.blue_steps orc then
      divergence :=
        Some
          (Printf.sprintf "step %d: production blue count %d, oracle %d"
             !steps (Eprocess.blue_steps prod)
             (Oracle.Eprocess.blue_steps orc))
  done;
  match !divergence with
  | Some msg -> Error msg
  | None ->
      let* _ = finish_monitor inv first in
      if not (Coverage.all_vertices_visited cov) then
        err "not covered within %d steps" c.max_steps
      else
        let* () = check_edge_flags cov (Oracle.Eprocess.visited_edges orc) in
        if Coverage.vertices_visited cov <> Oracle.Eprocess.vertices_visited orc
        then
          err "vertex counts diverge: production %d, oracle %d"
            (Coverage.vertices_visited cov)
            (Oracle.Eprocess.vertices_visited orc)
        else Ok !steps

(* Uniform rule: trajectories legitimately diverge (production draws over
   a swap-partitioned slot order), so the production run is validated by
   the monitor and reconciled against the monitor's shadow; the oracle
   runs the same seed independently as a sanity reference. *)
let eprocess_uar c =
  let g = c.graph in
  let prod = Eprocess.create ~rule:Eprocess.Uar g (Rng.create ~seed:c.seed ()) ~start:0 in
  let inv = Invariant.create ~rule:Invariant.Any_unvisited g ~start:0 in
  let first = ref None in
  Eprocess.set_observer prod (Some (monitor_observer inv first));
  let cov = Eprocess.coverage prod in
  let steps = ref 0 in
  while (not (Coverage.all_vertices_visited cov)) && !steps < c.max_steps do
    Eprocess.step prod;
    incr steps
  done;
  let* _ = finish_monitor inv first in
  if not (Coverage.all_vertices_visited cov) then
    err "not covered within %d steps" c.max_steps
  else
    let shadow = Array.init (Graph.m g) (Invariant.edge_visited inv) in
    let* () = check_edge_flags cov shadow in
    if Eprocess.blue_steps prod <> Invariant.edges_visited inv then
      err "blue steps %d but %d edges retired" (Eprocess.blue_steps prod)
        (Invariant.edges_visited inv)
    else if Coverage.vertices_visited cov <> Invariant.vertices_visited inv
    then
      err "vertex counts diverge: coverage %d, shadow %d"
        (Coverage.vertices_visited cov)
        (Invariant.vertices_visited inv)
    else begin
      (* Oracle sanity run: same seed, same cap, must also cover. *)
      let orc = Oracle.Eprocess.create g (Rng.create ~seed:c.seed ()) ~start:0 in
      let osteps = ref 0 in
      while
        (not (Oracle.Eprocess.all_vertices_visited orc))
        && !osteps < c.max_steps
      do
        Oracle.Eprocess.step orc;
        incr osteps
      done;
      if not (Oracle.Eprocess.all_vertices_visited orc) then
        err "oracle did not cover within %d steps" c.max_steps
      else if
        Oracle.Eprocess.blue_steps orc
        <> Array.fold_left
             (fun acc b -> if b then acc + 1 else acc)
             0
             (Oracle.Eprocess.visited_edges orc)
      then err "oracle blue steps disagree with its own visited set"
      else Ok !steps
    end

let srw_lockstep c =
  let g = c.graph in
  let prod = Srw.create g (Rng.create ~seed:c.seed ()) ~start:0 in
  let orc = Oracle.Srw.create g (Rng.create ~seed:c.seed ()) ~start:0 in
  let inv = Invariant.create ~prefers_unvisited:false g ~start:0 in
  let first = ref None in
  Srw.set_observer prod (Some (monitor_observer inv first));
  let cov = Srw.coverage prod in
  let divergence = ref None in
  let steps = ref 0 in
  while
    !divergence = None
    && (not (Coverage.all_vertices_visited cov))
    && !steps < c.max_steps
  do
    Srw.step prod;
    Oracle.Srw.step orc;
    incr steps;
    if Srw.position prod <> Oracle.Srw.position orc then
      divergence :=
        Some
          (Printf.sprintf "step %d: production at vertex %d, oracle at %d"
             !steps (Srw.position prod) (Oracle.Srw.position orc))
  done;
  match !divergence with
  | Some msg -> Error msg
  | None ->
      let* _ = finish_monitor inv first in
      if not (Coverage.all_vertices_visited cov) then
        err "not covered within %d steps" c.max_steps
      else if Coverage.vertices_visited cov <> Oracle.Srw.vertices_visited orc
      then
        err "vertex counts diverge: production %d, oracle %d"
          (Coverage.vertices_visited cov)
          (Oracle.Srw.vertices_visited orc)
      else Ok !steps

let rotor_lockstep c =
  let g = c.graph in
  let prod =
    Rotor.create ~randomize_rotors:true g (Rng.create ~seed:c.seed ()) ~start:0
  in
  let orc =
    Oracle.Rotor.create ~randomize_rotors:true g (Rng.create ~seed:c.seed ())
      ~start:0
  in
  let inv = Invariant.create ~prefers_unvisited:false g ~start:0 in
  let first = ref None in
  Rotor.set_observer prod (Some (monitor_observer inv first));
  let check_offsets where =
    let bad = ref None in
    for v = 0 to Graph.n g - 1 do
      if !bad = None && Rotor.rotor_offset prod v <> Oracle.Rotor.rotor_offset orc v
      then bad := Some v
    done;
    match !bad with
    | Some v ->
        err "%s: rotor offset at vertex %d is %d (production) vs %d (oracle)"
          where v
          (Rotor.rotor_offset prod v)
          (Oracle.Rotor.rotor_offset orc v)
    | None -> Ok ()
  in
  let* () = check_offsets "after init" in
  let cov = Rotor.coverage prod in
  let divergence = ref None in
  let steps = ref 0 in
  while
    !divergence = None
    && (not (Coverage.all_vertices_visited cov))
    && !steps < c.max_steps
  do
    Rotor.step prod;
    Oracle.Rotor.step orc;
    incr steps;
    if Rotor.position prod <> Oracle.Rotor.position orc then
      divergence :=
        Some
          (Printf.sprintf "step %d: production at vertex %d, oracle at %d"
             !steps (Rotor.position prod) (Oracle.Rotor.position orc))
  done;
  match !divergence with
  | Some msg -> Error msg
  | None ->
      let* _ = finish_monitor inv first in
      if not (Coverage.all_vertices_visited cov) then
        err "not covered within %d steps" c.max_steps
      else
        let* () = check_offsets "at end" in
        Ok !steps

let run_case c =
  match c.mode with
  | Uar -> eprocess_uar c
  | Lowest | Highest -> eprocess_lockstep c
  | Srw_walk -> srw_lockstep c
  | Rotor_walk -> rotor_lockstep c

(* Deterministically-built stock graphs spanning the shapes the paper's
   theorems distinguish: even regular (simple and multigraph), odd
   regular, hypercube, lollipop, cycle unions. *)
let stock_graphs () =
  let rng = Rng.create ~seed:42 () in
  [
    ("cycle16", Gen_classic.cycle 16);
    ("complete5", Gen_classic.complete 5);
    ("double-cycle12", Gen_classic.double_cycle 12);
    ("hypercube4", Gen_classic.hypercube 4);
    ("torus5x4", Gen_classic.torus2d 5 4);
    ("cycle-union18", Gen_regular.cycle_union rng 18 2);
    ("regular4-24", Gen_regular.random_regular_connected rng 24 4);
    ("regular3-20", Gen_regular.random_regular_connected rng 20 3);
    ("lollipop8-8", Gen_classic.lollipop 8 8);
    ("petersen", Gen_classic.petersen ());
  ]

let stock_cases ?(seeds = [ 1; 2; 3 ]) ?(modes = all_modes) () =
  List.concat_map
    (fun (label, graph) ->
      let max_steps = max 50_000 (500 * Graph.m graph) in
      List.concat_map
        (fun seed ->
          List.map (fun mode -> { label; graph; seed; max_steps; mode }) modes)
        seeds)
    (stock_graphs ())

type report = {
  cases : int;
  graphs : int;
  seeds : int;
  modes : int;
  steps : int;
  failures : (string * string) list;
}

let report_line r =
  Printf.sprintf "verified %d cases (%d graphs x %d seeds x %d modes), %d steps%s"
    r.cases r.graphs r.seeds r.modes r.steps
    (match r.failures with
    | [] -> ""
    | fs -> Printf.sprintf ", %d FAILED" (List.length fs))

let distinct xs = List.length (List.sort_uniq compare xs)

let run_suite ?jobs cases =
  let arr = Array.of_list cases in
  let results =
    Pool.with_pool ?jobs (fun pool -> Pool.map_array pool run_case arr)
  in
  let steps = ref 0 and failures = ref [] in
  Array.iteri
    (fun i result ->
      match result with
      | Ok s -> steps := !steps + s
      | Error msg -> failures := (case_name arr.(i), msg) :: !failures)
    results;
  {
    cases = Array.length arr;
    graphs = distinct (List.map (fun c -> c.label) cases);
    seeds = distinct (List.map (fun c -> c.seed) cases);
    modes = distinct (List.map (fun c -> c.mode) cases);
    steps = !steps;
    failures = List.rev !failures;
  }
