open Ewalk_graph
module Rng = Ewalk_prng.Rng
module Eprocess = Ewalk.Eprocess
module Srw = Ewalk.Srw
module Rotor = Ewalk.Rotor
module Coverage = Ewalk.Coverage
module Pool = Ewalk_par.Pool

type mode = Uar | Lowest | Highest | Srw_walk | Rotor_walk

let mode_name = function
  | Uar -> "uar"
  | Lowest -> "lowest-slot"
  | Highest -> "highest-slot"
  | Srw_walk -> "srw"
  | Rotor_walk -> "rotor"

let all_modes = [ Uar; Lowest; Highest; Srw_walk; Rotor_walk ]

type case = {
  label : string;
  graph : Graph.t;
  seed : int;
  max_steps : int;
  mode : mode;
}

let case_name c =
  Printf.sprintf "%s/%s/seed=%d" c.label (mode_name c.mode) c.seed

(* Feed a production process's native Step events through an invariant
   monitor, keeping the first violation. *)
let monitor_observer inv first (ev : Ewalk_obs.Trace.event) =
  match ev with
  | Ewalk_obs.Trace.Step { step; vertex; edge; blue } -> (
      match Invariant.on_step inv ~step ~vertex ~edge ~blue with
      | Some v when !first = None ->
          first := Some (Invariant.violation_to_string v)
      | _ -> ())
  | _ -> ()

let err fmt = Printf.ksprintf (fun s -> Error s) fmt

(* Compare the production coverage's per-edge flags against a reference
   bool array.  For the E-process the two must coincide exactly: red steps
   only re-traverse edges already visited, so the coverage set equals the
   set of blue-retired edges. *)
let check_edge_flags cov reference =
  let flags = Coverage.visited_edge_flags cov in
  if Array.length flags <> Array.length reference then
    err "edge flag arrays differ in length: %d vs %d" (Array.length flags)
      (Array.length reference)
  else begin
    let bad = ref None in
    Array.iteri
      (fun e p -> if !bad = None && p <> reference.(e) then bad := Some e)
      flags;
    match !bad with
    | Some e ->
        err "edge %d %s by production but %s in the reference set" e
          (if Coverage.edge_visited cov e then "visited" else "unvisited")
          (if reference.(e) then "visited" else "unvisited")
    | None -> Ok ()
  end

let ( let* ) = Result.bind

let finish_monitor inv first =
  match !first with Some msg -> Error msg | None -> Ok (Invariant.steps inv)

(* Deterministic blue rules: full RNG lockstep against the oracle. *)
let eprocess_lockstep c =
  let prod_rule, oracle_rule, inv_rule =
    match c.mode with
    | Lowest ->
        (Eprocess.Lowest_slot, Oracle.Eprocess.Lowest_slot, Invariant.Lowest_slot)
    | _ ->
        (Eprocess.Highest_slot, Oracle.Eprocess.Highest_slot,
         Invariant.Highest_slot)
  in
  let g = c.graph in
  let prod = Eprocess.create ~rule:prod_rule g (Rng.create ~seed:c.seed ()) ~start:0 in
  let orc =
    Oracle.Eprocess.create ~rule:oracle_rule g (Rng.create ~seed:c.seed ())
      ~start:0
  in
  let inv = Invariant.create ~rule:inv_rule g ~start:0 in
  let first = ref None in
  Eprocess.set_observer prod (Some (monitor_observer inv first));
  let cov = Eprocess.coverage prod in
  let divergence = ref None in
  let steps = ref 0 in
  while
    !divergence = None
    && (not (Coverage.all_vertices_visited cov))
    && !steps < c.max_steps
  do
    Eprocess.step prod;
    Oracle.Eprocess.step orc;
    incr steps;
    if Eprocess.position prod <> Oracle.Eprocess.position orc then
      divergence :=
        Some
          (Printf.sprintf "step %d: production at vertex %d, oracle at %d"
             !steps (Eprocess.position prod)
             (Oracle.Eprocess.position orc))
    else if Eprocess.blue_steps prod <> Oracle.Eprocess.blue_steps orc then
      divergence :=
        Some
          (Printf.sprintf "step %d: production blue count %d, oracle %d"
             !steps (Eprocess.blue_steps prod)
             (Oracle.Eprocess.blue_steps orc))
  done;
  match !divergence with
  | Some msg -> Error msg
  | None ->
      let* _ = finish_monitor inv first in
      if not (Coverage.all_vertices_visited cov) then
        err "not covered within %d steps" c.max_steps
      else
        let* () = check_edge_flags cov (Oracle.Eprocess.visited_edges orc) in
        if Coverage.vertices_visited cov <> Oracle.Eprocess.vertices_visited orc
        then
          err "vertex counts diverge: production %d, oracle %d"
            (Coverage.vertices_visited cov)
            (Oracle.Eprocess.vertices_visited orc)
        else Ok !steps

(* Uniform rule: trajectories legitimately diverge (production draws over
   a swap-partitioned slot order), so the production run is validated by
   the monitor and reconciled against the monitor's shadow; the oracle
   runs the same seed independently as a sanity reference. *)
let eprocess_uar c =
  let g = c.graph in
  let prod = Eprocess.create ~rule:Eprocess.Uar g (Rng.create ~seed:c.seed ()) ~start:0 in
  let inv = Invariant.create ~rule:Invariant.Any_unvisited g ~start:0 in
  let first = ref None in
  Eprocess.set_observer prod (Some (monitor_observer inv first));
  let cov = Eprocess.coverage prod in
  let steps = ref 0 in
  while (not (Coverage.all_vertices_visited cov)) && !steps < c.max_steps do
    Eprocess.step prod;
    incr steps
  done;
  let* _ = finish_monitor inv first in
  if not (Coverage.all_vertices_visited cov) then
    err "not covered within %d steps" c.max_steps
  else
    let shadow = Array.init (Graph.m g) (Invariant.edge_visited inv) in
    let* () = check_edge_flags cov shadow in
    if Eprocess.blue_steps prod <> Invariant.edges_visited inv then
      err "blue steps %d but %d edges retired" (Eprocess.blue_steps prod)
        (Invariant.edges_visited inv)
    else if Coverage.vertices_visited cov <> Invariant.vertices_visited inv
    then
      err "vertex counts diverge: coverage %d, shadow %d"
        (Coverage.vertices_visited cov)
        (Invariant.vertices_visited inv)
    else begin
      (* Oracle sanity run: same seed, same cap, must also cover. *)
      let orc = Oracle.Eprocess.create g (Rng.create ~seed:c.seed ()) ~start:0 in
      let osteps = ref 0 in
      while
        (not (Oracle.Eprocess.all_vertices_visited orc))
        && !osteps < c.max_steps
      do
        Oracle.Eprocess.step orc;
        incr osteps
      done;
      if not (Oracle.Eprocess.all_vertices_visited orc) then
        err "oracle did not cover within %d steps" c.max_steps
      else if
        Oracle.Eprocess.blue_steps orc
        <> Array.fold_left
             (fun acc b -> if b then acc + 1 else acc)
             0
             (Oracle.Eprocess.visited_edges orc)
      then err "oracle blue steps disagree with its own visited set"
      else Ok !steps
    end

let srw_lockstep c =
  let g = c.graph in
  let prod = Srw.create g (Rng.create ~seed:c.seed ()) ~start:0 in
  let orc = Oracle.Srw.create g (Rng.create ~seed:c.seed ()) ~start:0 in
  let inv = Invariant.create ~prefers_unvisited:false g ~start:0 in
  let first = ref None in
  Srw.set_observer prod (Some (monitor_observer inv first));
  let cov = Srw.coverage prod in
  let divergence = ref None in
  let steps = ref 0 in
  while
    !divergence = None
    && (not (Coverage.all_vertices_visited cov))
    && !steps < c.max_steps
  do
    Srw.step prod;
    Oracle.Srw.step orc;
    incr steps;
    if Srw.position prod <> Oracle.Srw.position orc then
      divergence :=
        Some
          (Printf.sprintf "step %d: production at vertex %d, oracle at %d"
             !steps (Srw.position prod) (Oracle.Srw.position orc))
  done;
  match !divergence with
  | Some msg -> Error msg
  | None ->
      let* _ = finish_monitor inv first in
      if not (Coverage.all_vertices_visited cov) then
        err "not covered within %d steps" c.max_steps
      else if Coverage.vertices_visited cov <> Oracle.Srw.vertices_visited orc
      then
        err "vertex counts diverge: production %d, oracle %d"
          (Coverage.vertices_visited cov)
          (Oracle.Srw.vertices_visited orc)
      else Ok !steps

let rotor_lockstep c =
  let g = c.graph in
  let prod =
    Rotor.create ~randomize_rotors:true g (Rng.create ~seed:c.seed ()) ~start:0
  in
  let orc =
    Oracle.Rotor.create ~randomize_rotors:true g (Rng.create ~seed:c.seed ())
      ~start:0
  in
  let inv = Invariant.create ~prefers_unvisited:false g ~start:0 in
  let first = ref None in
  Rotor.set_observer prod (Some (monitor_observer inv first));
  let check_offsets where =
    let bad = ref None in
    for v = 0 to Graph.n g - 1 do
      if !bad = None && Rotor.rotor_offset prod v <> Oracle.Rotor.rotor_offset orc v
      then bad := Some v
    done;
    match !bad with
    | Some v ->
        err "%s: rotor offset at vertex %d is %d (production) vs %d (oracle)"
          where v
          (Rotor.rotor_offset prod v)
          (Oracle.Rotor.rotor_offset orc v)
    | None -> Ok ()
  in
  let* () = check_offsets "after init" in
  let cov = Rotor.coverage prod in
  let divergence = ref None in
  let steps = ref 0 in
  while
    !divergence = None
    && (not (Coverage.all_vertices_visited cov))
    && !steps < c.max_steps
  do
    Rotor.step prod;
    Oracle.Rotor.step orc;
    incr steps;
    if Rotor.position prod <> Oracle.Rotor.position orc then
      divergence :=
        Some
          (Printf.sprintf "step %d: production at vertex %d, oracle at %d"
             !steps (Rotor.position prod) (Oracle.Rotor.position orc))
  done;
  match !divergence with
  | Some msg -> Error msg
  | None ->
      let* _ = finish_monitor inv first in
      if not (Coverage.all_vertices_visited cov) then
        err "not covered within %d steps" c.max_steps
      else
        let* () = check_offsets "at end" in
        Ok !steps

let run_case c =
  match c.mode with
  | Uar -> eprocess_uar c
  | Lowest | Highest -> eprocess_lockstep c
  | Srw_walk -> srw_lockstep c
  | Rotor_walk -> rotor_lockstep c

(* Deterministically-built stock graphs spanning the shapes the paper's
   theorems distinguish: even regular (simple and multigraph), odd
   regular, hypercube, lollipop, cycle unions. *)
let stock_graphs () =
  let rng = Rng.create ~seed:42 () in
  [
    ("cycle16", Gen_classic.cycle 16);
    ("complete5", Gen_classic.complete 5);
    ("double-cycle12", Gen_classic.double_cycle 12);
    ("hypercube4", Gen_classic.hypercube 4);
    ("torus5x4", Gen_classic.torus2d 5 4);
    ("cycle-union18", Gen_regular.cycle_union rng 18 2);
    ("regular4-24", Gen_regular.random_regular_connected rng 24 4);
    ("regular3-20", Gen_regular.random_regular_connected rng 20 3);
    ("lollipop8-8", Gen_classic.lollipop 8 8);
    ("petersen", Gen_classic.petersen ());
  ]

let stock_cases ?(seeds = [ 1; 2; 3 ]) ?(modes = all_modes) () =
  List.concat_map
    (fun (label, graph) ->
      let max_steps = max 50_000 (500 * Graph.m graph) in
      List.concat_map
        (fun seed ->
          List.map (fun mode -> { label; graph; seed; max_steps; mode }) modes)
        seeds)
    (stock_graphs ())

type report = {
  cases : int;
  graphs : int;
  seeds : int;
  modes : int;
  steps : int;
  failures : (string * string) list;
}

let report_line r =
  Printf.sprintf "verified %d cases (%d graphs x %d seeds x %d modes), %d steps%s"
    r.cases r.graphs r.seeds r.modes r.steps
    (match r.failures with
    | [] -> ""
    | fs -> Printf.sprintf ", %d FAILED" (List.length fs))

let distinct xs = List.length (List.sort_uniq compare xs)

let run_suite ?jobs cases =
  let arr = Array.of_list cases in
  let results =
    Pool.with_pool ?jobs (fun pool -> Pool.map_array pool run_case arr)
  in
  let steps = ref 0 and failures = ref [] in
  Array.iteri
    (fun i result ->
      match result with
      | Ok s -> steps := !steps + s
      | Error msg -> failures := (case_name arr.(i), msg) :: !failures)
    results;
  {
    cases = Array.length arr;
    graphs = distinct (List.map (fun c -> c.label) cases);
    seeds = distinct (List.map (fun c -> c.seed) cases);
    modes = distinct (List.map (fun c -> c.mode) cases);
    steps = !steps;
    failures = List.rev !failures;
  }

(* --- kernel differential battery -------------------------------------- *)

module Engine = Ewalk_kernel.Engine

type kernel_case = {
  k_label : string;
  k_graph : Graph.t;
  k_seed : int;
  k_walkers : int;
  k_mode : Engine.mode;
  k_proc : Engine.proc;
  k_max_steps : int; (* per-walker step budget *)
}

let kernel_mode_name = function
  | Engine.Cooperating -> "coop"
  | Engine.Competing -> "compete"

let kernel_proc_name = function
  | Engine.E_uar -> "uar"
  | Engine.E_lowest -> "lowest-slot"
  | Engine.E_highest -> "highest-slot"
  | Engine.Srw -> "srw"
  | Engine.Rotor -> "rotor"

let kernel_case_name c =
  Printf.sprintf "kernel/%s/%s/%s/w=%d/seed=%d" c.k_label
    (kernel_proc_name c.k_proc)
    (kernel_mode_name c.k_mode)
    c.k_walkers c.k_seed

let oracle_proc = function
  | Engine.E_uar -> Oracle.Kernel.E_uar
  | Engine.E_lowest -> Oracle.Kernel.E_lowest
  | Engine.E_highest -> Oracle.Kernel.E_highest
  | Engine.Srw -> Oracle.Kernel.Srw_walk
  | Engine.Rotor -> Oracle.Kernel.Rotor_walk

let oracle_mode = function
  | Engine.Cooperating -> Oracle.Kernel.Cooperating
  | Engine.Competing -> Oracle.Kernel.Competing

(* Deterministic spread-out start vertices shared by engine and oracle. *)
let kernel_starts g w =
  let n = Graph.n g in
  Array.init w (fun i -> i * max 1 (n / w) mod n)

let kernel_stopped c eng =
  match c.k_mode with
  | Engine.Cooperating -> Coverage.all_vertices_visited (Engine.coverage eng)
  | Engine.Competing ->
      let covered = ref false in
      for w = 0 to Engine.walkers eng - 1 do
        if Engine.walker_cover_step eng w <> None then covered := true
      done;
      !covered

(* Per-walker invariant monitors: in competing mode every walker's stream
   is a self-contained single walk over its private visited set
   (walker-local step stamps), so each gets its own shadow, with the slot
   rule pinned for the deterministic rules.  A 1-walker cooperating engine
   is likewise a single legacy walk.  Multi-walker cooperating streams
   interleave over shared marks — no per-stream shadow applies; those
   configurations are covered by the lockstep oracle or the uar shadow. *)
let kernel_monitors c g starts =
  let single = c.k_mode = Engine.Competing || c.k_walkers = 1 in
  if not single then None
  else begin
    let prefers =
      match c.k_proc with
      | Engine.E_uar | Engine.E_lowest | Engine.E_highest -> true
      | Engine.Srw | Engine.Rotor -> false
    in
    let rule =
      match c.k_proc with
      | Engine.E_lowest -> Invariant.Lowest_slot
      | Engine.E_highest -> Invariant.Highest_slot
      | _ -> Invariant.Any_unvisited
    in
    Some
      (Array.map
         (fun s -> Invariant.create ~rule ~prefers_unvisited:prefers g ~start:s)
         starts)
  end

let attach_kernel_monitors eng monitors first =
  match monitors with
  | None -> ()
  | Some arr ->
      Engine.set_observer eng
        (Some
           (fun ~walker ev ->
             match ev with
             | Ewalk_obs.Trace.Step { step; vertex; edge; blue } -> (
                 match
                   Invariant.on_step arr.(walker) ~step ~vertex ~edge ~blue
                 with
                 | Some v when !first = None ->
                     first := Some (Invariant.violation_to_string v)
                 | _ -> ())
             | _ -> ()))

let check_kernel_rotors c eng orc where =
  if c.k_proc <> Engine.Rotor then Ok ()
  else begin
    let g = c.k_graph in
    let bad = ref None in
    (match c.k_mode with
    | Engine.Cooperating ->
        for v = 0 to Graph.n g - 1 do
          if
            !bad = None
            && Engine.rotor_offset eng v <> Oracle.Kernel.rotor_offset orc 0 v
          then bad := Some (0, v)
        done
    | Engine.Competing ->
        for w = 0 to c.k_walkers - 1 do
          for v = 0 to Graph.n g - 1 do
            if
              !bad = None
              && Engine.walker_rotor_offset eng w v
                 <> Oracle.Kernel.rotor_offset orc w v
            then bad := Some (w, v)
          done
        done);
    match !bad with
    | Some (w, v) -> err "%s: rotor offset of walker %d at vertex %d diverges" where w v
    | None -> Ok ()
  end

(* Every configuration except cooperating-uar: full RNG lockstep, one
   engine walker-step against one oracle walker-step, comparing the moved
   walker's position and blue count after each. *)
let kernel_lockstep c =
  let g = c.k_graph in
  let starts = kernel_starts g c.k_walkers in
  let eng =
    Engine.create ~mode:c.k_mode c.k_proc g (Rng.create ~seed:c.k_seed ())
      ~starts
  in
  let orc =
    Oracle.Kernel.create ~mode:(oracle_mode c.k_mode) (oracle_proc c.k_proc) g
      (Rng.create ~seed:c.k_seed ())
      ~starts
  in
  let monitors = kernel_monitors c g starts in
  let first = ref None in
  attach_kernel_monitors eng monitors first;
  let* () = check_kernel_rotors c eng orc "after init" in
  let budget = c.k_max_steps * c.k_walkers in
  let total = ref 0 in
  let div = ref None in
  while !div = None && (not (kernel_stopped c eng)) && !total < budget do
    let w = Engine.cursor eng in
    Engine.step eng;
    Oracle.Kernel.step orc;
    incr total;
    if Engine.walker_position eng w <> Oracle.Kernel.walker_position orc w then
      div :=
        Some
          (Printf.sprintf "step %d: walker %d at vertex %d (engine) vs %d (oracle)"
             !total w
             (Engine.walker_position eng w)
             (Oracle.Kernel.walker_position orc w))
    else if
      Engine.walker_blue_steps eng w <> Oracle.Kernel.walker_blue_steps orc w
    then
      div :=
        Some
          (Printf.sprintf "step %d: walker %d blue count %d (engine) vs %d (oracle)"
             !total w
             (Engine.walker_blue_steps eng w)
             (Oracle.Kernel.walker_blue_steps orc w))
  done;
  match !div with
  | Some msg -> Error msg
  | None -> (
      let* () = match !first with Some m -> Error m | None -> Ok () in
      if not (kernel_stopped c eng) then
        err "not covered within %d walker-steps" budget
      else
        match c.k_mode with
        | Engine.Cooperating ->
            let cov = Engine.coverage eng in
            let* () = check_edge_flags cov (Oracle.Kernel.visited_row orc 0) in
            if
              Coverage.vertices_visited cov
              <> Oracle.Kernel.vertices_visited orc 0
            then
              err "vertex counts diverge: engine %d, oracle %d"
                (Coverage.vertices_visited cov)
                (Oracle.Kernel.vertices_visited orc 0)
            else
              let* () = check_kernel_rotors c eng orc "at end" in
              Ok !total
        | Engine.Competing ->
            let bad = ref None in
            for w = 0 to c.k_walkers - 1 do
              if !bad = None then begin
                let row = Oracle.Kernel.visited_row orc w in
                Array.iteri
                  (fun e r ->
                    if !bad = None && Engine.walker_edge_visited eng w e <> r
                    then
                      bad :=
                        Some (Printf.sprintf "walker %d: edge %d visited flag diverges" w e))
                  row;
                if
                  !bad = None
                  && Engine.walker_vertices_visited eng w
                     <> Oracle.Kernel.vertices_visited orc w
                then
                  bad :=
                    Some
                      (Printf.sprintf "walker %d: vertex count %d (engine) vs %d (oracle)"
                         w
                         (Engine.walker_vertices_visited eng w)
                         (Oracle.Kernel.vertices_visited orc w));
                if
                  !bad = None
                  && Engine.walker_cover_step eng w <> None
                     <> Oracle.Kernel.all_vertices_visited orc w
                then
                  bad :=
                    Some
                      (Printf.sprintf "walker %d: cover flag diverges from oracle" w)
              end
            done;
            (match !bad with
            | Some msg -> Error msg
            | None ->
                let* () = check_kernel_rotors c eng orc "at end" in
                Ok !total))

(* Cooperating uar: the engine draws over the swap partition's slot order,
   so trajectories legitimately diverge from the oracle.  The engine run
   is instead validated step by step against a naive shared shadow fed by
   its own observer (edge validity, blue-flag truth, no double retire,
   global step numbering), then reconciled; a same-seeded oracle run is
   the cover sanity reference. *)
let kernel_uar_shadow c =
  let g = c.k_graph in
  let m = Graph.m g and n = Graph.n g in
  let starts = kernel_starts g c.k_walkers in
  let eng =
    Engine.create ~mode:Engine.Cooperating Engine.E_uar g
      (Rng.create ~seed:c.k_seed ())
      ~starts
  in
  let wpos = Array.copy starts in
  let retired = Array.make m false in
  let traversed = Array.make m false in
  let vseen = Array.make n false in
  let vcount = ref 0 in
  Array.iter
    (fun s ->
      if not vseen.(s) then begin
        vseen.(s) <- true;
        incr vcount
      end)
    starts;
  let blue_total = ref 0 in
  let bad = ref None in
  let fail fmt =
    Printf.ksprintf (fun s -> if !bad = None then bad := Some s) fmt
  in
  let expect_step = ref 0 in
  Engine.set_observer eng
    (Some
       (fun ~walker ev ->
         match ev with
         | Ewalk_obs.Trace.Step { step; vertex; edge; blue } ->
             incr expect_step;
             if step <> !expect_step then
               fail "step %d out of order (expected %d)" step !expect_step;
             let v = wpos.(walker) in
             if edge < 0 || edge >= m then
               fail "step %d: edge %d out of range" step edge
             else begin
               let a, b = Graph.endpoints g edge in
               if a <> v && b <> v then
                 fail "step %d: edge %d not incident to walker %d at vertex %d"
                   step edge walker v
               else if Graph.opposite g edge v <> vertex then
                 fail "step %d: landing vertex %d is not the opposite endpoint"
                   step vertex
               else begin
                 let has_unvisited = ref false in
                 for i = 0 to Graph.degree g v - 1 do
                   if not retired.(Graph.neighbor_edge g v i) then
                     has_unvisited := true
                 done;
                 if blue <> !has_unvisited then
                   fail "step %d: blue=%b but unvisited incident edges=%b" step
                     blue !has_unvisited;
                 if blue then begin
                   if retired.(edge) then
                     fail "step %d: blue step re-used retired edge %d" step edge;
                   retired.(edge) <- true;
                   incr blue_total
                 end;
                 traversed.(edge) <- true;
                 wpos.(walker) <- vertex;
                 if not vseen.(vertex) then begin
                   vseen.(vertex) <- true;
                   incr vcount
                 end
               end
             end
         | _ -> ()))
  ;
  let cov = Engine.coverage eng in
  let budget = c.k_max_steps * c.k_walkers in
  let total = ref 0 in
  while
    !bad = None
    && (not (Coverage.all_vertices_visited cov))
    && !total < budget
  do
    Engine.step eng;
    incr total
  done;
  match !bad with
  | Some msg -> Error msg
  | None ->
      if not (Coverage.all_vertices_visited cov) then
        err "not covered within %d walker-steps" budget
      else
        let* () = check_edge_flags cov traversed in
        if Engine.blue_steps eng <> !blue_total then
          err "engine blue steps %d but shadow retired %d edges"
            (Engine.blue_steps eng) !blue_total
        else if Coverage.vertices_visited cov <> !vcount then
          err "vertex counts diverge: coverage %d, shadow %d"
            (Coverage.vertices_visited cov)
            !vcount
        else begin
          let orc =
            Oracle.Kernel.create ~mode:Oracle.Kernel.Cooperating
              Oracle.Kernel.E_uar g
              (Rng.create ~seed:c.k_seed ())
              ~starts
          in
          let osteps = ref 0 in
          while
            (not (Oracle.Kernel.all_vertices_visited orc 0))
            && !osteps < budget
          do
            Oracle.Kernel.step orc;
            incr osteps
          done;
          if not (Oracle.Kernel.all_vertices_visited orc 0) then
            err "oracle did not cover within %d walker-steps" budget
          else Ok !total
        end

let run_kernel_case c =
  match (c.k_mode, c.k_proc) with
  | Engine.Cooperating, Engine.E_uar -> kernel_uar_shadow c
  | _ -> kernel_lockstep c

let stock_kernel_cases ?(walkers = [ 1; 4; 17 ]) ?(seeds = [ 1; 2; 3 ]) () =
  let procs =
    [ Engine.E_uar; Engine.E_lowest; Engine.E_highest; Engine.Srw; Engine.Rotor ]
  in
  let kmodes = [ Engine.Cooperating; Engine.Competing ] in
  List.concat_map
    (fun (label, graph) ->
      let max_steps = max 50_000 (500 * Graph.m graph) in
      List.concat_map
        (fun seed ->
          List.concat_map
            (fun w ->
              List.concat_map
                (fun mode ->
                  List.map
                    (fun p ->
                      {
                        k_label = label;
                        k_graph = graph;
                        k_seed = seed;
                        k_walkers = w;
                        k_mode = mode;
                        k_proc = p;
                        k_max_steps = max_steps;
                      })
                    procs)
                kmodes)
            walkers)
        seeds)
    (stock_graphs ())

let run_kernel_suite ?jobs cases =
  let arr = Array.of_list cases in
  let results =
    Pool.with_pool ?jobs (fun pool -> Pool.map_array pool run_kernel_case arr)
  in
  let steps = ref 0 and failures = ref [] in
  Array.iteri
    (fun i result ->
      match result with
      | Ok s -> steps := !steps + s
      | Error msg -> failures := (kernel_case_name arr.(i), msg) :: !failures)
    results;
  {
    cases = Array.length arr;
    graphs = distinct (List.map (fun c -> c.k_label) cases);
    seeds = distinct (List.map (fun c -> c.k_seed) cases);
    modes =
      distinct (List.map (fun c -> (c.k_proc, c.k_mode, c.k_walkers)) cases);
    steps = !steps;
    failures = List.rev !failures;
  }
