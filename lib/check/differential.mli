(** Model-based differential testing: production walks vs the naive
    {!Oracle} implementations, in RNG lockstep where the step rule is
    deterministic, under the {!Invariant} monitor everywhere.

    Each case runs one (graph, seed, mode) triple to vertex cover (or a
    step cap) and cross-checks:

    - [Lowest]/[Highest]: production E-process and oracle consume
      identically-seeded RNG streams and must agree on the position,
      blue/red step counts at {e every} step, and on the full visited-edge
      set at the end — the swap-partitioned production bookkeeping against
      the oracle's adjacency scan, bit for bit.
    - [Uar]: the uniform rule draws from differently-ordered candidate
      sets on the two sides, so trajectories legitimately diverge; the
      production run is instead verified per-step by the invariant monitor
      and its final coverage state is reconciled against the monitor's
      shadow (visited-edge flags, blue steps = edges visited).
    - [Srw_walk] / [Rotor_walk]: full positional lockstep (and, for the
      rotor, final rotor-offset equality), with the monitor checking edge
      validity and coverage monotonicity.

    The stock suite covers the shapes the paper's theorems distinguish:
    even-degree regular graphs (where Theorem 1's linear bound and the
    blue-parity structure apply), odd-degree regular graphs, the
    hypercube, the lollipop, multigraphs with parallel edges, and cycle
    unions. *)

open Ewalk_graph

type mode = Uar | Lowest | Highest | Srw_walk | Rotor_walk

val mode_name : mode -> string
val all_modes : mode list

type case = {
  label : string;  (** graph family label, e.g. ["hypercube4"] *)
  graph : Graph.t;
  seed : int;
  max_steps : int;
  mode : mode;
}

val case_name : case -> string
(** ["label/mode/seed=k"] — stable identifier for reports. *)

val run_case : case -> (int, string) result
(** Run one case to cover (or [max_steps]); [Ok steps] on agreement,
    [Error message] naming the first divergence or invariant violation. *)

val stock_cases : ?seeds:int list -> ?modes:mode list -> unit -> case list
(** The cross product of the stock graph family (deterministically built)
    with [seeds] (default [[1; 2; 3]]) and [modes] (default
    {!all_modes}). *)

type report = {
  cases : int;
  graphs : int;  (** distinct graph labels *)
  seeds : int;  (** distinct seeds *)
  modes : int;  (** distinct modes *)
  steps : int;  (** total verified transitions across passing cases *)
  failures : (string * string) list;  (** [(case_name, message)] *)
}

val report_line : report -> string
(** One-line summary, e.g.
    ["verified 150 cases (10 graphs x 3 seeds x 5 modes), 81234 steps"]. *)

val run_suite : ?jobs:int -> case list -> report
(** Run every case, sharded over an {!Ewalk_par.Pool} of [jobs] domains
    (default {!Ewalk_par.Pool.default_jobs}, i.e. the [EWALK_JOBS]
    environment variable).  Case outcomes are positional, so the report is
    identical for every job count. *)

(** {1 Kernel battery}

    The multi-walker counterpart: [Ewalk_kernel.Engine] vs
    {!Oracle.Kernel} over the same stock graphs, crossed with walker
    counts and cooperating/competing modes.  Every configuration except
    cooperating [E_uar] runs in full RNG lockstep — one engine
    walker-step against one oracle walker-step, comparing the moved
    walker's position and blue count after each, with final
    visited-set/vertex-count/rotor-offset reconciliation (per walker in
    competing mode) — plus per-walker {!Invariant} monitors wherever a
    stream is a self-contained single walk (all competing configurations,
    and 1-walker cooperating ones).  Cooperating [E_uar] draws over the
    swap partition's slot order and legitimately diverges from the
    oracle; it is validated step by step against a naive shared shadow
    fed by the engine's own observer instead. *)

type kernel_case = {
  k_label : string;
  k_graph : Graph.t;
  k_seed : int;
  k_walkers : int;
  k_mode : Ewalk_kernel.Engine.mode;
  k_proc : Ewalk_kernel.Engine.proc;
  k_max_steps : int;  (** per-walker step budget *)
}

val kernel_case_name : kernel_case -> string
(** ["kernel/label/proc/mode/w=k/seed=s"] — stable identifier. *)

val run_kernel_case : kernel_case -> (int, string) result
(** Run one case to cover (shared cover in cooperating mode, first
    walker's private cover in competing mode) or the budget; [Ok steps]
    on agreement. *)

val stock_kernel_cases :
  ?walkers:int list -> ?seeds:int list -> unit -> kernel_case list
(** Stock graphs x [seeds] (default [[1; 2; 3]]) x [walkers] (default
    [[1; 4; 17]]) x all five kernel processes x both modes. *)

val run_kernel_suite : ?jobs:int -> kernel_case list -> report
(** Like {!run_suite}; [modes] counts distinct
    (process, mode, walker-count) triples. *)
