(** Model-based differential testing: production walks vs the naive
    {!Oracle} implementations, in RNG lockstep where the step rule is
    deterministic, under the {!Invariant} monitor everywhere.

    Each case runs one (graph, seed, mode) triple to vertex cover (or a
    step cap) and cross-checks:

    - [Lowest]/[Highest]: production E-process and oracle consume
      identically-seeded RNG streams and must agree on the position,
      blue/red step counts at {e every} step, and on the full visited-edge
      set at the end — the swap-partitioned production bookkeeping against
      the oracle's adjacency scan, bit for bit.
    - [Uar]: the uniform rule draws from differently-ordered candidate
      sets on the two sides, so trajectories legitimately diverge; the
      production run is instead verified per-step by the invariant monitor
      and its final coverage state is reconciled against the monitor's
      shadow (visited-edge flags, blue steps = edges visited).
    - [Srw_walk] / [Rotor_walk]: full positional lockstep (and, for the
      rotor, final rotor-offset equality), with the monitor checking edge
      validity and coverage monotonicity.

    The stock suite covers the shapes the paper's theorems distinguish:
    even-degree regular graphs (where Theorem 1's linear bound and the
    blue-parity structure apply), odd-degree regular graphs, the
    hypercube, the lollipop, multigraphs with parallel edges, and cycle
    unions. *)

open Ewalk_graph

type mode = Uar | Lowest | Highest | Srw_walk | Rotor_walk

val mode_name : mode -> string
val all_modes : mode list

type case = {
  label : string;  (** graph family label, e.g. ["hypercube4"] *)
  graph : Graph.t;
  seed : int;
  max_steps : int;
  mode : mode;
}

val case_name : case -> string
(** ["label/mode/seed=k"] — stable identifier for reports. *)

val run_case : case -> (int, string) result
(** Run one case to cover (or [max_steps]); [Ok steps] on agreement,
    [Error message] naming the first divergence or invariant violation. *)

val stock_cases : ?seeds:int list -> ?modes:mode list -> unit -> case list
(** The cross product of the stock graph family (deterministically built)
    with [seeds] (default [[1; 2; 3]]) and [modes] (default
    {!all_modes}). *)

type report = {
  cases : int;
  graphs : int;  (** distinct graph labels *)
  seeds : int;  (** distinct seeds *)
  modes : int;  (** distinct modes *)
  steps : int;  (** total verified transitions across passing cases *)
  failures : (string * string) list;  (** [(case_name, message)] *)
}

val report_line : report -> string
(** One-line summary, e.g.
    ["verified 150 cases (10 graphs x 3 seeds x 5 modes), 81234 steps"]. *)

val run_suite : ?jobs:int -> case list -> report
(** Run every case, sharded over an {!Ewalk_par.Pool} of [jobs] domains
    (default {!Ewalk_par.Pool.default_jobs}, i.e. the [EWALK_JOBS]
    environment variable).  Case outcomes are positional, so the report is
    identical for every job count. *)
