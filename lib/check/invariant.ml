open Ewalk_graph

type kind =
  | Edge_invalid
  | Preference
  | Blue_flag
  | Rule
  | Red_parity
  | Coverage
  | Schema

let kind_name = function
  | Edge_invalid -> "edge-invalid"
  | Preference -> "preference"
  | Blue_flag -> "blue-flag"
  | Rule -> "rule"
  | Red_parity -> "red-parity"
  | Coverage -> "coverage"
  | Schema -> "schema"

type violation = {
  v_step : int;
  v_vertex : int;
  v_chosen : int;
  v_expected : int list;
  v_kind : kind;
  v_message : string;
}

let violation_to_string v =
  let expected =
    match v.v_expected with
    | [] -> ""
    | es ->
        Printf.sprintf " expected{%s}"
          (String.concat "," (List.map string_of_int es))
  in
  Printf.sprintf "[%s] step %d at vertex %d, edge %d%s: %s"
    (kind_name v.v_kind) v.v_step v.v_vertex v.v_chosen expected v.v_message

type rule = Any_unvisited | Lowest_slot | Highest_slot

type t = {
  g : Graph.t;
  rule : rule;
  prefers_unvisited : bool;
  relaxed : bool;
  check_parity : bool;
  visited : bool array; (* per-edge: traversed at least once *)
  blue_deg : int array; (* unvisited incident slots per vertex *)
  parity : bool array; (* odd blue degree? *)
  mutable odd_count : int;
  mutable anchor : int; (* start vertex of the current blue trail *)
  vertex_seen : bool array;
  mutable pos : int;
  mutable steps : int;
  mutable blue_steps : int;
  mutable red_steps : int;
  mutable vertices_seen : int;
  mutable edges_seen : int;
  mutable violations : violation list; (* reversed *)
}

let create ?(rule = Any_unvisited) ?(prefers_unvisited = true)
    ?(start_step = 0) ?(relaxed = false) g ~start =
  if start < 0 || start >= Graph.n g then
    invalid_arg "Invariant.create: start out of range";
  if start_step < 0 then
    invalid_arg "Invariant.create: start_step must be >= 0";
  {
    g;
    rule;
    prefers_unvisited;
    relaxed;
    check_parity = (not relaxed) && prefers_unvisited && Graph.all_degrees_even g;
    visited = Array.make (Graph.m g) false;
    blue_deg = Graph.degrees g;
    parity = Array.make (Graph.n g) false;
    odd_count = 0;
    anchor = start;
    vertex_seen =
      (let a = Array.make (Graph.n g) false in
       a.(start) <- true;
       a);
    pos = start;
    steps = start_step;
    blue_steps = 0;
    red_steps = 0;
    vertices_seen = 1;
    edges_seen = 0;
    violations = [];
  }

let steps t = t.steps
let blue_steps t = t.blue_steps
let red_steps t = t.red_steps
let position t = t.pos
let vertices_visited t = t.vertices_seen
let edges_visited t = t.edges_seen
let edge_visited t e = t.visited.(e)
let vertex_visited t v = t.vertex_seen.(v)
let violations t = List.rev t.violations

let unvisited_incident t v =
  (* Slot order, deduplicated: a self-loop owns two slots but is one edge. *)
  List.rev
    (Graph.fold_neighbors t.g v
       (fun acc _w e ->
         if t.visited.(e) || List.mem e acc then acc else e :: acc)
       [])

(* Record the walk's arrival at [vertex] (and, for [edge >= 0], the edge
   traversal) in the shadow.  Called on every reported step, violation or
   not, so the shadow tracks the *reported* walk and one bad step does not
   cascade into spurious reports. *)
let apply t ~vertex ~edge ~blue =
  t.steps <- t.steps + 1;
  if blue then t.blue_steps <- t.blue_steps + 1
  else t.red_steps <- t.red_steps + 1;
  (if edge >= 0 && edge < Graph.m t.g && not t.visited.(edge) then begin
     t.visited.(edge) <- true;
     t.edges_seen <- t.edges_seen + 1;
     let a, b = Graph.endpoints t.g edge in
     if a = b then t.blue_deg.(a) <- t.blue_deg.(a) - 2
     else begin
       t.blue_deg.(a) <- t.blue_deg.(a) - 1;
       t.blue_deg.(b) <- t.blue_deg.(b) - 1;
       let flip v =
         t.parity.(v) <- not t.parity.(v);
         t.odd_count <- t.odd_count + (if t.parity.(v) then 1 else -1)
       in
       flip a;
       flip b
     end
   end);
  if vertex >= 0 && vertex < Graph.n t.g then begin
    if not t.vertex_seen.(vertex) then begin
      t.vertex_seen.(vertex) <- true;
      t.vertices_seen <- t.vertices_seen + 1
    end;
    t.pos <- vertex
  end

let record t v =
  t.violations <- v :: t.violations;
  Some v

let on_step t ~step ~vertex ~edge ~blue =
  let u = t.pos in
  let fail kind ?(expected = []) ?(chosen = edge) fmt =
    Printf.ksprintf
      (fun msg ->
        record t
          {
            v_step = step;
            v_vertex = u;
            v_chosen = chosen;
            v_expected = expected;
            v_kind = kind;
            v_message = msg;
          })
      fmt
  in
  let finish_ok () =
    apply t ~vertex ~edge ~blue;
    None
  in
  let finish_fail v =
    apply t ~vertex ~edge ~blue;
    v
  in
  if step <> t.steps + 1 then
    finish_fail
      (fail Schema "step index %d after step %d (must be consecutive)" step
         t.steps)
  else if vertex < 0 || vertex >= Graph.n t.g then
    finish_fail (fail Edge_invalid "landing vertex %d out of range" vertex)
  else if edge = -1 then
    (* A "stayed put" step (lazy walk): no edge, same vertex, never blue. *)
    if t.prefers_unvisited then
      finish_fail
        (fail Edge_invalid "edge-preferring process reported a no-edge step")
    else if vertex <> u then
      finish_fail
        (fail Edge_invalid "no-edge step moved from vertex %d to %d" u vertex)
    else if blue then
      finish_fail (fail Blue_flag "no-edge step flagged blue")
    else finish_ok ()
  else if edge < 0 || edge >= Graph.m t.g then
    finish_fail (fail Edge_invalid "edge %d out of range" edge)
  else begin
    let a, b = Graph.endpoints t.g edge in
    if a <> u && b <> u then
      finish_fail
        (fail Edge_invalid "edge %d = (%d,%d) is not incident to vertex %d"
           edge a b u)
    else if vertex <> Graph.opposite t.g edge u then
      finish_fail
        (fail Edge_invalid
           "edge %d = (%d,%d) from vertex %d cannot land on vertex %d" edge a
           b u vertex)
    else if not t.prefers_unvisited then
      if blue then
        finish_fail
          (fail Blue_flag "process without the preference flagged a blue step")
      else finish_ok ()
    else if t.relaxed then
      (* Resumed trace: the shadow starts at the resume step with no
         pre-resume visit history, so the preference, slot-rule and parity
         checks would misfire.  A blue flag on an edge this very segment
         already traversed is wrong regardless of history, so that much
         stays enforced. *)
      if blue && t.visited.(edge) then
        finish_fail
          (fail Blue_flag "blue step traverses already-visited edge %d" edge)
      else finish_ok ()
    else begin
      (* The unvisited-edge preference rule. *)
      let blue_here = t.blue_deg.(u) > 0 in
      if blue_here && not blue then
        finish_fail
          (fail Preference
             ~expected:(unvisited_incident t u)
             "red step while %d unvisited incident edge slots remain"
             t.blue_deg.(u))
      else if blue && not blue_here then
        finish_fail
          (fail Blue_flag "blue step but no unvisited incident edges remain")
      else if blue && t.visited.(edge) then
        finish_fail
          (fail Blue_flag
             ~expected:(unvisited_incident t u)
             "blue step traverses already-visited edge %d" edge)
      else begin
        let rule_violation =
          if not blue then None
          else
            match t.rule with
            | Any_unvisited -> None
            | Lowest_slot | Highest_slot -> (
                match unvisited_incident t u with
                | [] -> None (* unreachable: blue_here *)
                | es ->
                    let want =
                      match t.rule with
                      | Highest_slot -> List.nth es (List.length es - 1)
                      | _ -> List.hd es
                    in
                    if edge = want then None
                    else
                      fail Rule ~expected:[ want ]
                        "%s rule must take edge %d, walk took %d"
                        (if t.rule = Lowest_slot then "lowest-slot"
                         else "highest-slot")
                        want edge)
        in
        match rule_violation with
        | Some _ as v -> finish_fail v
        | None ->
            (* Parity bookkeeping happens in [apply]; anchor maintenance and
               the parity assertions live here. *)
            if not t.check_parity then finish_ok ()
            else if blue then begin
              if t.odd_count = 0 then t.anchor <- u;
              let anchor = t.anchor in
              apply t ~vertex ~edge ~blue;
              if
                t.odd_count = 0
                || t.odd_count = 2
                   && t.parity.(anchor)
                   && t.parity.(t.pos)
                   && anchor <> t.pos
              then None
              else
                record t
                  {
                    v_step = step;
                    v_vertex = u;
                    v_chosen = edge;
                    v_expected = [];
                    v_kind = Red_parity;
                    v_message =
                      Printf.sprintf
                        "blue subgraph has %d odd-degree vertices not \
                         confined to the trail anchor %d and position %d"
                        t.odd_count anchor t.pos;
                  }
            end
            else if t.odd_count <> 0 then
              finish_fail
                (fail Red_parity
                   "red step with %d odd-degree blue vertices (blue phase \
                    did not close at its anchor %d)"
                   t.odd_count t.anchor)
            else finish_ok ()
      end
    end
  end

let sink t =
  Ewalk_obs.Trace.of_fun (fun ev ->
      match ev with
      | Ewalk_obs.Trace.Step { step; vertex; edge; blue } ->
          ignore (on_step t ~step ~vertex ~edge ~blue)
      | _ -> ())

let coverage_hook (p : Ewalk.Cover.process) ~on_violation =
  let module Coverage = Ewalk.Coverage in
  let cov = p.Ewalk.Cover.coverage in
  let g = p.Ewalk.Cover.graph in
  let n = Coverage.total_vertices cov and m = Coverage.total_edges cov in
  let last_steps = ref (p.Ewalk.Cover.steps_done ()) in
  let last_v = ref (Coverage.vertices_visited cov) in
  let last_e = ref (Coverage.edges_visited cov) in
  let fail ~step ~vertex kind fmt =
    Printf.ksprintf
      (fun msg ->
        on_violation
          {
            v_step = step;
            v_vertex = vertex;
            v_chosen = -1;
            v_expected = [];
            v_kind = kind;
            v_message = msg;
          })
      fmt
  in
  Ewalk.Cover.with_step_hook p ~hook:(fun p ->
      let step = p.Ewalk.Cover.steps_done () in
      let pos = p.Ewalk.Cover.position () in
      if step <> !last_steps + 1 then
        fail ~step ~vertex:pos Schema "step counter jumped from %d to %d"
          !last_steps step;
      last_steps := step;
      if pos < 0 || pos >= Graph.n g then
        fail ~step ~vertex:pos Edge_invalid "position %d out of range" pos
      else if not (Coverage.vertex_visited cov pos) then
        fail ~step ~vertex:pos Coverage
          "walk occupies vertex %d but coverage has it unvisited" pos;
      let vc = Coverage.vertices_visited cov in
      let ec = Coverage.edges_visited cov in
      if vc < !last_v || vc > n then
        fail ~step ~vertex:pos Coverage
          "visited-vertex count went from %d to %d (total %d)" !last_v vc n;
      if ec < !last_e || ec > m then
        fail ~step ~vertex:pos Coverage
          "visited-edge count went from %d to %d (total %d)" !last_e ec m;
      last_v := vc;
      last_e := ec)
