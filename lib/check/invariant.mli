(** Runtime invariant monitor for walk-process step streams.

    The monitor maintains a {e shadow} of the walk — an explicit per-edge
    visited set, per-vertex unvisited ("blue") degrees, and the parity
    structure of the blue subgraph — rebuilt naively from nothing but the
    graph and the observed [(step, vertex, edge, blue)] transitions.  Each
    reported step is checked against that shadow:

    - {e edge validity}: the edge exists, is incident to the walk's current
      vertex, and the reported landing vertex is its opposite endpoint
      ([edge = -1] is accepted as "stayed put" for lazy walks);
    - {e unvisited-edge preference} (processes created with
      [~prefers_unvisited:true]): the [blue] flag is set iff the current
      vertex had unvisited incident edges, a blue step traverses an edge
      not yet visited, and — for the deterministic slot rules — the {e
      right} unvisited edge in adjacency order;
    - {e blue-subgraph parity} (even-degree graphs only): after every blue
      step the odd-degree vertices of the unvisited subgraph are exactly
      the current blue trail's anchor and the walk's position, and every
      red step happens with the blue subgraph back to all-even degrees —
      the structural fact behind the paper's Observation 10 (blue phases
      on even-degree graphs end where they began);
    - {e monotone coverage}: step indices are consecutive and visited
      counts never regress (also available for arbitrary
      {!Ewalk.Cover.process}es through {!coverage_hook}).

    A failed check produces a structured {!violation} carrying the step
    index, the vertex the walk stood on, the chosen edge, the expected
    edge set, and a message.  The monitor keeps checking after a violation
    (its shadow adopts the reported transition), so one broken step yields
    one report, not an avalanche. *)

open Ewalk_graph

type kind =
  | Edge_invalid  (** nonexistent / non-incident edge, or wrong endpoint *)
  | Preference  (** red step taken while unvisited incident edges remain *)
  | Blue_flag
      (** [blue] flag inconsistent with the shadow's unvisited set, or a
          blue step along an already-visited edge *)
  | Rule  (** deterministic slot rule picked the wrong unvisited edge *)
  | Red_parity
      (** blue-subgraph degree parity broken on an even-degree graph *)
  | Coverage  (** visited counts regressed or exceeded their totals *)
  | Schema  (** malformed stream: bad step numbering, bad event order *)

val kind_name : kind -> string

type violation = {
  v_step : int;  (** step index of the offending transition *)
  v_vertex : int;  (** vertex the walk stood on before the transition *)
  v_chosen : int;  (** edge reported taken ([-1] = stayed put) *)
  v_expected : int list;
      (** the edges the invariant allowed (e.g. the unvisited incident
          edges); [[]] when the check is not about edge choice *)
  v_kind : kind;
  v_message : string;
}

val violation_to_string : violation -> string
(** One human-readable line: kind, step, vertex, chosen edge, expected
    set, message. *)

type rule = Any_unvisited | Lowest_slot | Highest_slot
(** How strictly to check a blue step's choice: [Any_unvisited] accepts
    any unvisited incident edge (uar and adversarial rules);
    [Lowest_slot]/[Highest_slot] additionally pin the choice to the
    first/last unvisited edge in adjacency-slot order, matching the
    E-process's deterministic rules. *)

type t

val create :
  ?rule:rule ->
  ?prefers_unvisited:bool ->
  ?start_step:int ->
  ?relaxed:bool ->
  Graph.t ->
  start:Graph.vertex ->
  t
(** A fresh monitor for a walk starting at [start] with every edge
    unvisited.  [prefers_unvisited] (default [true]) enables the
    preference, blue-flag, rule and parity checks — pass [false] for
    processes without the preference (SRW, rotor), which are then only
    checked for edge validity, [blue = false], and monotone coverage.
    Parity checks additionally require [Graph.all_degrees_even].

    [start_step] (default [0]) seeds the shadow's step counter, so a
    stream whose first step index is [start_step + 1] — the tail of a
    resumed run — passes the consecutive-numbering check.  [relaxed]
    (default [false]) marks the stream as a {e resumed tail}: the shadow
    has no pre-resume visit history, so the preference, slot-rule and
    parity checks are suppressed; edge validity, step numbering, and
    "blue flag on an edge this segment already traversed" remain
    enforced.
    @raise Invalid_argument if [start] is out of range or [start_step]
    is negative. *)

val on_step :
  t -> step:int -> vertex:int -> edge:int -> blue:bool -> violation option
(** Check one reported transition ([vertex] = landing vertex) and advance
    the shadow.  Returns the violation, if any; every violation is also
    retained for {!violations}. *)

val violations : t -> violation list
(** All violations so far, in step order. *)

val steps : t -> int
val blue_steps : t -> int
val red_steps : t -> int
val position : t -> Graph.vertex
val vertices_visited : t -> int
val edges_visited : t -> int
val edge_visited : t -> Graph.edge -> bool
val vertex_visited : t -> Graph.vertex -> bool

val unvisited_incident : t -> Graph.vertex -> Graph.edge list
(** Unvisited incident edges in adjacency-slot order (a self-loop appears
    once) — the "expected" set for preference violations. *)

val sink : t -> Ewalk_obs.Trace.sink
(** A trace sink that feeds every [Step] event through {!on_step}
    (other event types pass unchecked).  Tee it with a process's real
    sink — or hand it to {!Ewalk.Observe.create} — to monitor a live run:
    the attachment point is the same native observer / generic
    {!Ewalk.Cover.with_step_hook} choke point the tracing layer uses. *)

val coverage_hook :
  Ewalk.Cover.process ->
  on_violation:(violation -> unit) ->
  Ewalk.Cover.process
(** Process-agnostic monitor for walks without a native step stream: a
    {!Ewalk.Cover.with_step_hook} wrapper asserting, after every
    transition, that the step counter advanced, the position is a valid
    vertex and is marked visited, and the shared {!Ewalk.Coverage}
    vertex/edge counts are monotone and within bounds. *)
