open Ewalk_graph
module Rng = Ewalk_prng.Rng

(* Shared naive vertex-visit bookkeeping. *)
module Visits = struct
  type t = { seen : bool array; mutable count : int }

  let create n start =
    let seen = Array.make n false in
    seen.(start) <- true;
    { seen; count = 1 }

  let visit t v =
    if not t.seen.(v) then begin
      t.seen.(v) <- true;
      t.count <- t.count + 1
    end
end

module Eprocess = struct
  type rule = Uar | Lowest_slot | Highest_slot

  type t = {
    g : Graph.t;
    rng : Rng.t;
    rule : rule;
    visited : bool array;
    visits : Visits.t;
    mutable pos : Graph.vertex;
    mutable steps : int;
    mutable blue_steps : int;
    mutable red_steps : int;
  }

  let create ?(rule = Uar) g rng ~start =
    if Graph.n g = 0 then invalid_arg "Oracle.Eprocess.create: empty graph";
    if start < 0 || start >= Graph.n g then
      invalid_arg "Oracle.Eprocess.create: start out of range";
    {
      g;
      rng;
      rule;
      visited = Array.make (Graph.m g) false;
      visits = Visits.create (Graph.n g) start;
      pos = start;
      steps = 0;
      blue_steps = 0;
      red_steps = 0;
    }

  let position t = t.pos
  let steps t = t.steps
  let blue_steps t = t.blue_steps
  let red_steps t = t.red_steps
  let edge_visited t e = t.visited.(e)
  let visited_edges t = Array.copy t.visited
  let vertices_visited t = t.visits.Visits.count
  let all_vertices_visited t = t.visits.Visits.count = Graph.n t.g

  (* The adjacency slot offsets (in slot order) of [v] whose edge is still
     unvisited.  A blue self-loop contributes both its slots, matching the
     production [Unvisited.count] convention. *)
  let unvisited_offsets t v =
    let deg = Graph.degree t.g v in
    let acc = ref [] in
    for i = deg - 1 downto 0 do
      if not t.visited.(Graph.neighbor_edge t.g v i) then acc := i :: !acc
    done;
    !acc

  let step t =
    let v = t.pos in
    let deg = Graph.degree t.g v in
    if deg = 0 then invalid_arg "Oracle.Eprocess.step: isolated vertex";
    let blue_offsets = unvisited_offsets t v in
    let i =
      match blue_offsets with
      | [] -> Rng.int t.rng deg (* red: plain SRW step *)
      | offsets -> (
          match t.rule with
          | Uar -> List.nth offsets (Rng.int t.rng (List.length offsets))
          | Lowest_slot -> List.hd offsets
          | Highest_slot -> List.nth offsets (List.length offsets - 1))
    in
    let e = Graph.neighbor_edge t.g v i in
    let w = Graph.neighbor t.g v i in
    t.steps <- t.steps + 1;
    if blue_offsets <> [] then begin
      t.blue_steps <- t.blue_steps + 1;
      t.visited.(e) <- true
    end
    else t.red_steps <- t.red_steps + 1;
    t.pos <- w;
    Visits.visit t.visits w
end

module Srw = struct
  type t = {
    g : Graph.t;
    rng : Rng.t;
    visits : Visits.t;
    mutable pos : Graph.vertex;
    mutable steps : int;
  }

  let create g rng ~start =
    if start < 0 || start >= Graph.n g then
      invalid_arg "Oracle.Srw.create: start out of range";
    { g; rng; visits = Visits.create (Graph.n g) start; pos = start; steps = 0 }

  let position t = t.pos
  let steps t = t.steps
  let vertices_visited t = t.visits.Visits.count

  let step t =
    let deg = Graph.degree t.g t.pos in
    if deg = 0 then invalid_arg "Oracle.Srw.step: isolated vertex";
    let w = Graph.neighbor t.g t.pos (Rng.int t.rng deg) in
    t.steps <- t.steps + 1;
    t.pos <- w;
    Visits.visit t.visits w
end

module Rotor = struct
  type t = {
    g : Graph.t;
    offsets : int array;
    mutable pos : Graph.vertex;
    mutable steps : int;
  }

  let create ?(randomize_rotors = false) g rng ~start =
    if start < 0 || start >= Graph.n g then
      invalid_arg "Oracle.Rotor.create: start out of range";
    let offsets =
      Array.init (Graph.n g) (fun v ->
          let deg = Graph.degree g v in
          if randomize_rotors && deg > 0 then Rng.int rng deg else 0)
    in
    { g; offsets; pos = start; steps = 0 }

  let position t = t.pos
  let steps t = t.steps
  let rotor_offset t v = t.offsets.(v)

  let step t =
    let v = t.pos in
    let deg = Graph.degree t.g v in
    if deg = 0 then invalid_arg "Oracle.Rotor.step: isolated vertex";
    let i = t.offsets.(v) in
    t.offsets.(v) <- (i + 1) mod deg;
    t.steps <- t.steps + 1;
    t.pos <- Graph.neighbor t.g v i
end
