open Ewalk_graph
module Rng = Ewalk_prng.Rng

(* Shared naive vertex-visit bookkeeping. *)
module Visits = struct
  type t = { seen : bool array; mutable count : int }

  let create n start =
    let seen = Array.make n false in
    seen.(start) <- true;
    { seen; count = 1 }

  let visit t v =
    if not t.seen.(v) then begin
      t.seen.(v) <- true;
      t.count <- t.count + 1
    end
end

module Eprocess = struct
  type rule = Uar | Lowest_slot | Highest_slot

  type t = {
    g : Graph.t;
    rng : Rng.t;
    rule : rule;
    visited : bool array;
    visits : Visits.t;
    mutable pos : Graph.vertex;
    mutable steps : int;
    mutable blue_steps : int;
    mutable red_steps : int;
  }

  let create ?(rule = Uar) g rng ~start =
    if Graph.n g = 0 then invalid_arg "Oracle.Eprocess.create: empty graph";
    if start < 0 || start >= Graph.n g then
      invalid_arg "Oracle.Eprocess.create: start out of range";
    {
      g;
      rng;
      rule;
      visited = Array.make (Graph.m g) false;
      visits = Visits.create (Graph.n g) start;
      pos = start;
      steps = 0;
      blue_steps = 0;
      red_steps = 0;
    }

  let position t = t.pos
  let steps t = t.steps
  let blue_steps t = t.blue_steps
  let red_steps t = t.red_steps
  let edge_visited t e = t.visited.(e)
  let visited_edges t = Array.copy t.visited
  let vertices_visited t = t.visits.Visits.count
  let all_vertices_visited t = t.visits.Visits.count = Graph.n t.g

  (* The adjacency slot offsets (in slot order) of [v] whose edge is still
     unvisited.  A blue self-loop contributes both its slots, matching the
     production [Unvisited.count] convention. *)
  let unvisited_offsets t v =
    let deg = Graph.degree t.g v in
    let acc = ref [] in
    for i = deg - 1 downto 0 do
      if not t.visited.(Graph.neighbor_edge t.g v i) then acc := i :: !acc
    done;
    !acc

  let step t =
    let v = t.pos in
    let deg = Graph.degree t.g v in
    if deg = 0 then invalid_arg "Oracle.Eprocess.step: isolated vertex";
    let blue_offsets = unvisited_offsets t v in
    let i =
      match blue_offsets with
      | [] -> Rng.int t.rng deg (* red: plain SRW step *)
      | offsets -> (
          match t.rule with
          | Uar -> List.nth offsets (Rng.int t.rng (List.length offsets))
          | Lowest_slot -> List.hd offsets
          | Highest_slot -> List.nth offsets (List.length offsets - 1))
    in
    let e = Graph.neighbor_edge t.g v i in
    let w = Graph.neighbor t.g v i in
    t.steps <- t.steps + 1;
    if blue_offsets <> [] then begin
      t.blue_steps <- t.blue_steps + 1;
      t.visited.(e) <- true
    end
    else t.red_steps <- t.red_steps + 1;
    t.pos <- w;
    Visits.visit t.visits w
end

module Srw = struct
  type t = {
    g : Graph.t;
    rng : Rng.t;
    visits : Visits.t;
    mutable pos : Graph.vertex;
    mutable steps : int;
  }

  let create g rng ~start =
    if start < 0 || start >= Graph.n g then
      invalid_arg "Oracle.Srw.create: start out of range";
    { g; rng; visits = Visits.create (Graph.n g) start; pos = start; steps = 0 }

  let position t = t.pos
  let steps t = t.steps
  let vertices_visited t = t.visits.Visits.count

  let step t =
    let deg = Graph.degree t.g t.pos in
    if deg = 0 then invalid_arg "Oracle.Srw.step: isolated vertex";
    let w = Graph.neighbor t.g t.pos (Rng.int t.rng deg) in
    t.steps <- t.steps + 1;
    t.pos <- w;
    Visits.visit t.visits w
end

module Kernel = struct
  (* Naive multi-walker reference for the lockstep engine: a plain
     round-robin loop over per-walker [Rng.t] streams ([Rng.stream root w]
     — the same derivation [Ewalk_kernel.Packed.of_rng] uses), explicit
     bool-array visited sets (one shared row in cooperating mode, one row
     per walker in competing mode), and adjacency-order offset scans.  In
     every configuration except cooperating-uar (where the production
     engine draws over the swap partition's internal slot order) the
     reference consumes the same draws as the engine and stays in full
     RNG lockstep. *)

  type mode = Cooperating | Competing
  type proc = E_uar | E_lowest | E_highest | Srw_walk | Rotor_walk

  let prefers = function
    | E_uar | E_lowest | E_highest -> true
    | Srw_walk | Rotor_walk -> false

  type t = {
    g : Graph.t;
    mode : mode;
    proc : proc;
    rngs : Rng.t array;
    pos : int array;
    visited : bool array array;
        (* cooperating: one shared row aliased at every index;
           competing: a private row per walker.  Marks every traversed
           edge (for E-process rules a red step's edge is always already
           marked, so the row doubles as the preference state). *)
    rotors : int array array; (* same aliasing convention; [||] rows otherwise *)
    visits : Visits.t array; (* same aliasing convention *)
    mutable cursor : int;
    wsteps : int array;
    wblue : int array;
    wred : int array;
  }

  let create ?(mode = Cooperating) proc g rng ~starts =
    let w = Array.length starts in
    if w = 0 then invalid_arg "Oracle.Kernel.create: no walkers";
    Array.iter
      (fun v ->
        if v < 0 || v >= Graph.n g then
          invalid_arg "Oracle.Kernel.create: start out of range")
      starts;
    let rngs = Array.init w (fun i -> Rng.stream rng i) in
    let visited =
      match mode with
      | Cooperating -> Array.make w (Array.make (Graph.m g) false)
      | Competing -> Array.init w (fun _ -> Array.make (Graph.m g) false)
    in
    let mk_rotor r =
      Array.init (Graph.n g) (fun v ->
          let deg = Graph.degree g v in
          if deg > 0 then Rng.int r deg else 0)
    in
    let rotors =
      if proc <> Rotor_walk then Array.make w [||]
      else
        match mode with
        | Cooperating -> Array.make w (mk_rotor rngs.(0))
        | Competing -> Array.init w (fun i -> mk_rotor rngs.(i))
    in
    let visits =
      match mode with
      | Cooperating ->
          let vt = Visits.create (Graph.n g) starts.(0) in
          Array.iter (fun s -> Visits.visit vt s) starts;
          Array.make w vt
      | Competing ->
          Array.init w (fun i -> Visits.create (Graph.n g) starts.(i))
    in
    {
      g;
      mode;
      proc;
      rngs;
      pos = Array.copy starts;
      visited;
      rotors;
      visits;
      cursor = 0;
      wsteps = Array.make w 0;
      wblue = Array.make w 0;
      wred = Array.make w 0;
    }

  let walkers t = Array.length t.pos
  let walker_position t w = t.pos.(w)
  let positions t = Array.copy t.pos
  let walker_steps t w = t.wsteps.(w)
  let walker_blue_steps t w = t.wblue.(w)
  let walker_red_steps t w = t.wred.(w)
  let blue_steps t = Array.fold_left ( + ) 0 t.wblue
  let steps t = Array.fold_left ( + ) 0 t.wsteps
  let visited_row t w = Array.copy t.visited.(w)
  let edge_visited t w e = t.visited.(w).(e)
  let vertices_visited t w = t.visits.(w).Visits.count
  let all_vertices_visited t w = t.visits.(w).Visits.count = Graph.n t.g
  let rotor_offset t w v = t.rotors.(w).(v)

  let unvisited_offsets t w v =
    let vis = t.visited.(w) in
    let deg = Graph.degree t.g v in
    let acc = ref [] in
    for i = deg - 1 downto 0 do
      if not vis.(Graph.neighbor_edge t.g v i) then acc := i :: !acc
    done;
    !acc

  (* Advance the cursor walker one step, round-robin. *)
  let step t =
    let w = t.cursor in
    t.cursor <- (w + 1) mod Array.length t.pos;
    let v = t.pos.(w) in
    let deg = Graph.degree t.g v in
    if deg = 0 then invalid_arg "Oracle.Kernel.step: isolated vertex";
    let rng = t.rngs.(w) in
    let blue_offsets = if prefers t.proc then unvisited_offsets t w v else [] in
    let blue = blue_offsets <> [] in
    let i =
      match t.proc with
      | E_uar | E_lowest | E_highest -> (
          match blue_offsets with
          | [] -> Rng.int rng deg
          | offs -> (
              match t.proc with
              | E_uar -> List.nth offs (Rng.int rng (List.length offs))
              | E_lowest -> List.hd offs
              | E_highest -> List.nth offs (List.length offs - 1)
              | _ -> assert false))
      | Srw_walk -> Rng.int rng deg
      | Rotor_walk ->
          let rot = t.rotors.(w) in
          let r = rot.(v) in
          rot.(v) <- (r + 1) mod deg;
          r
    in
    let e = Graph.neighbor_edge t.g v i in
    let dest = Graph.neighbor t.g v i in
    t.wsteps.(w) <- t.wsteps.(w) + 1;
    if blue then t.wblue.(w) <- t.wblue.(w) + 1
    else t.wred.(w) <- t.wred.(w) + 1;
    t.visited.(w).(e) <- true;
    t.pos.(w) <- dest;
    Visits.visit t.visits.(w) dest
end

module Rotor = struct
  type t = {
    g : Graph.t;
    offsets : int array;
    mutable pos : Graph.vertex;
    mutable steps : int;
  }

  let create ?(randomize_rotors = false) g rng ~start =
    if start < 0 || start >= Graph.n g then
      invalid_arg "Oracle.Rotor.create: start out of range";
    let offsets =
      Array.init (Graph.n g) (fun v ->
          let deg = Graph.degree g v in
          if randomize_rotors && deg > 0 then Rng.int rng deg else 0)
    in
    { g; offsets; pos = start; steps = 0 }

  let position t = t.pos
  let steps t = t.steps
  let rotor_offset t v = t.offsets.(v)

  let step t =
    let v = t.pos in
    let deg = Graph.degree t.g v in
    if deg = 0 then invalid_arg "Oracle.Rotor.step: isolated vertex";
    let i = t.offsets.(v) in
    t.offsets.(v) <- (i + 1) mod deg;
    t.steps <- t.steps + 1;
    t.pos <- Graph.neighbor t.g v i
end
