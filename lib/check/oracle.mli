(** Naive, obviously-correct reference implementations of the walk step
    rules.

    Each oracle keeps the straightforward state the paper's prose
    describes — an explicit per-edge visited flag, a position, a few
    counters — and chooses its next edge by scanning the adjacency list,
    with none of the production data structures (no swap-partitioned
    {!Ewalk.Unvisited}, no {!Ewalk.Coverage}).  They exist to be read and
    trusted at a glance, and to be driven in lockstep against the
    production implementations by {!Differential}.

    RNG alignment: {!Srw}, {!Rotor}, and {!Eprocess} under the
    deterministic [Lowest_slot]/[Highest_slot] rules consume random draws
    in exactly the same order and with the same bounds as their production
    counterparts, so seeding both sides identically must reproduce the
    production trajectory bit for bit.  Under [Uar] both sides draw one
    integer per blue step but index differently-ordered candidate sets, so
    trajectories legitimately diverge — the differential harness checks
    that mode through the {!Invariant} monitor instead. *)

open Ewalk_graph
module Rng = Ewalk_prng.Rng

(** The E-process over an explicit edge-visit set. *)
module Eprocess : sig
  type rule = Uar | Lowest_slot | Highest_slot

  type t

  val create : ?rule:rule -> Graph.t -> Rng.t -> start:Graph.vertex -> t
  (** Default rule: {!Uar}.  @raise Invalid_argument if [start] is out of
      range or the graph is empty. *)

  val position : t -> Graph.vertex
  val steps : t -> int
  val blue_steps : t -> int
  val red_steps : t -> int
  val edge_visited : t -> Graph.edge -> bool
  val visited_edges : t -> bool array
  (** A copy of the per-edge visited flags. *)

  val vertices_visited : t -> int
  val all_vertices_visited : t -> bool

  val step : t -> unit
  (** One transition: scan the current vertex's adjacency slots for
      unvisited edges; if any exist take one (per the rule) and mark it
      visited, else move along a uniformly random incident slot.
      @raise Invalid_argument on an isolated vertex. *)
end

(** Simple random walk: one uniform slot draw per step. *)
module Srw : sig
  type t

  val create : Graph.t -> Rng.t -> start:Graph.vertex -> t
  val position : t -> Graph.vertex
  val steps : t -> int
  val vertices_visited : t -> int
  val step : t -> unit
end

(** Naive multi-walker reference for the lockstep kernel: a plain
    round-robin loop over per-walker generators ([Rng.stream root w] — the
    same stream derivation [Ewalk_kernel.Packed.of_rng] uses), explicit
    bool-array visited sets (one shared row in cooperating mode, one
    private row per walker in competing mode), and adjacency-order offset
    scans.

    RNG alignment: every configuration except {e cooperating} [E_uar]
    consumes draws in the same order and with the same bounds as
    [Ewalk_kernel.Engine], so identical seeding reproduces the engine's
    trajectory bit for bit (the engine's competing mode scans adjacency
    order too).  Cooperating [E_uar] indexes the swap partition's slot
    order on the production side and legitimately diverges — the
    differential harness checks that mode through a naive shadow. *)
module Kernel : sig
  type mode = Cooperating | Competing
  type proc = E_uar | E_lowest | E_highest | Srw_walk | Rotor_walk

  type t

  val create : ?mode:mode -> proc -> Graph.t -> Rng.t -> starts:int array -> t
  (** Default mode: {!Cooperating}.  Rotor offsets are randomized from the
      owning walker's stream (walker 0's in cooperating mode), matching
      [Engine.create ~randomize_rotors:true].  [rng] is not advanced.
      @raise Invalid_argument on no walkers or a start out of range. *)

  val step : t -> unit
  (** Advance the round-robin cursor walker one step.
      @raise Invalid_argument on an isolated vertex. *)

  val walkers : t -> int
  val positions : t -> int array
  val walker_position : t -> int -> int
  val steps : t -> int
  val blue_steps : t -> int
  val walker_steps : t -> int -> int
  val walker_blue_steps : t -> int -> int
  val walker_red_steps : t -> int -> int

  val visited_row : t -> int -> bool array
  (** A copy of walker [w]'s visited flags (the shared row in cooperating
      mode); marks every traversed edge. *)

  val edge_visited : t -> int -> Graph.edge -> bool
  val vertices_visited : t -> int -> int
  val all_vertices_visited : t -> int -> bool
  val rotor_offset : t -> int -> Graph.vertex -> int
end

(** Rotor-router: per-vertex cyclic slot pointers, no randomness after
    initialisation. *)
module Rotor : sig
  type t

  val create :
    ?randomize_rotors:bool -> Graph.t -> Rng.t -> start:Graph.vertex -> t
  (** Mirrors {!Ewalk.Rotor.create}: rotors start at slot 0, or at
      uniformly random offsets drawn vertex by vertex when
      [~randomize_rotors:true]. *)

  val position : t -> Graph.vertex
  val steps : t -> int
  val rotor_offset : t -> Graph.vertex -> int
  val step : t -> unit
end
