open Ewalk_graph
module Trace = Ewalk_obs.Trace

type summary = {
  process : string;
  n : int;
  m : int;
  start : int;
  steps : int;
  blue_steps : int;
  red_steps : int;
  vertices_visited : int;
  edges_visited : int;
  milestones : int;
  cover_step : int option;
  covered : bool;
  has_steps : bool;
  resumed : bool;
  run_id : string option;
  complete : bool;
}

let summary_to_string s =
  Printf.sprintf
    "%s on n=%d m=%d from %d: %d steps (%d blue, %d red), %d/%d vertices, \
     %d/%d edges, %d milestones%s%s%s"
    s.process s.n s.m s.start s.steps s.blue_steps s.red_steps
    s.vertices_visited s.n s.edges_visited s.m s.milestones
    (match s.cover_step with
    | Some c -> Printf.sprintf ", covered at step %d" c
    | None -> "")
    (if s.covered then "" else ", not covered")
    ((if s.has_steps then "" else " (no per-step events)")
    ^ (if s.resumed then " (resumed)" else "")
    ^ (match s.run_id with
      | Some id -> Printf.sprintf " [run %s]" id
      | None -> "")
    ^ if s.complete then "" else " (truncated)")

type state = Expect_start | Running | Done

type t = {
  g : Graph.t;
  mutable state : state;
  mutable process : string;
  mutable start : int;
  mutable inv : Invariant.t option;
  mutable has_steps : bool;
  mutable milestones : int;
  mutable pct_v : int; (* highest vertices-milestone percent seen *)
  mutable pct_e : int;
  mutable cover_step : int option;
  mutable covered : bool;
  mutable resumed : bool;
  mutable run_id : string option;
  mutable violations : Invariant.violation list; (* reversed *)
}

let create g =
  {
    g;
    state = Expect_start;
    process = "";
    start = -1;
    inv = None;
    has_steps = false;
    milestones = 0;
    pct_v = 0;
    pct_e = 0;
    cover_step = None;
    covered = false;
    resumed = false;
    run_id = None;
    violations = [];
  }

let violations t = List.rev t.violations

let shadow_steps t = match t.inv with None -> 0 | Some i -> Invariant.steps i

let shadow_pos t =
  match t.inv with None -> t.start | Some i -> Invariant.position i

let fail t ?(step = -1) ?(chosen = -1) kind fmt =
  Printf.ksprintf
    (fun msg ->
      let v =
        {
          Invariant.v_step = (if step >= 0 then step else shadow_steps t);
          v_vertex = shadow_pos t;
          v_chosen = chosen;
          v_expected = [];
          v_kind = kind;
          v_message = msg;
        }
      in
      t.violations <- v :: t.violations;
      Error v)
    fmt

(* The process name written by the core library determines which invariant
   checks apply: every E-process variant prefers unvisited edges, and the
   lowest/highest slot rules are deterministic enough to pin the exact
   edge. *)
let config_of_name name =
  let has_prefix p =
    String.length name >= String.length p
    && String.sub name 0 (String.length p) = p
  in
  if has_prefix "e-process" then
    let rule =
      if name = "e-process(lowest-slot)" then Invariant.Lowest_slot
      else if name = "e-process(highest-slot)" then Invariant.Highest_slot
      else Invariant.Any_unvisited
    in
    (true, rule)
  else (false, Invariant.Any_unvisited)

let milestone_target ~total percent = ((percent * total) + 99) / 100

let feed t (ev : Trace.event) =
  match (t.state, ev) with
  | Done, _ -> fail t Invariant.Schema "event after run_end"
  | Expect_start, Run_start { name; n; m; start } ->
      if n <> Graph.n t.g then
        fail t Invariant.Schema "trace claims n=%d but graph has %d vertices" n
          (Graph.n t.g)
      else if m <> Graph.m t.g then
        fail t Invariant.Schema "trace claims m=%d but graph has %d edges" m
          (Graph.m t.g)
      else if start < 0 || start >= Graph.n t.g then
        fail t Invariant.Schema "start vertex %d out of range" start
      else begin
        let prefers_unvisited, rule = config_of_name name in
        t.process <- name;
        t.start <- start;
        t.inv <- Some (Invariant.create ~rule ~prefers_unvisited t.g ~start);
        t.state <- Running;
        Ok ()
      end
  | Expect_start, _ -> fail t Invariant.Schema "stream must begin with run_start"
  | Running, Run_start _ -> fail t Invariant.Schema "duplicate run_start"
  | Running, Run_info { run_id; parent_run_id = _ } ->
      (* Provenance belongs to the prologue: after run_start, before any
         step, milestone or checkpoint — the same placement every writer
         (Observe, the flight recorder's synthetic header) uses. *)
      if t.run_id <> None then
        fail t Invariant.Schema "duplicate run_info event"
      else if t.has_steps || t.milestones > 0 then
        fail t Invariant.Schema
          "run_info event after steps or milestones (must follow run_start)"
      else if run_id = "" then
        fail t Invariant.Schema "run_info with empty run_id"
      else begin
        t.run_id <- Some run_id;
        Ok ()
      end
  | Running, Step { step; vertex; edge; blue } -> (
      t.has_steps <- true;
      let inv = Option.get t.inv in
      match Invariant.on_step inv ~step ~vertex ~edge ~blue with
      | None -> Ok ()
      | Some v ->
          t.violations <- v :: t.violations;
          Error v)
  | Running, Checkpoint { step } ->
      (* A snapshot was written here.  With per-step events the stamp must
         match the shadow exactly; without them only sanity applies. *)
      if step < 0 then
        fail t ~step Invariant.Schema "checkpoint stamped negative step %d"
          step
      else if t.has_steps && step <> shadow_steps t then
        fail t ~step Invariant.Schema
          "checkpoint stamped step=%d but the walk is at step=%d" step
          (shadow_steps t)
      else Ok ()
  | Running, Resume { step } ->
      (* A resumed run announces itself right after run_start, before any
         step or milestone: the shadow restarts at the resume step with no
         pre-resume visit history, so history-dependent checks relax. *)
      if step < 0 then
        fail t ~step Invariant.Schema "resume stamped negative step %d" step
      else if t.resumed then
        fail t ~step Invariant.Schema "duplicate resume event"
      else if t.has_steps || t.milestones > 0 then
        fail t ~step Invariant.Schema
          "resume event after steps or milestones (must follow run_start)"
      else begin
        let prefers_unvisited, rule = config_of_name t.process in
        t.inv <-
          Some
            (Invariant.create ~rule ~prefers_unvisited ~start_step:step
               ~relaxed:true t.g ~start:t.start);
        t.resumed <- true;
        Ok ()
      end
  | Running, Phase { step; kind = _; vertex } ->
      (* Emitted just before the transition numbered [step + 1]: the stamp
         must match the shadow — but only when per-step events are present
         to keep the shadow in sync (a phase-only stream is unverifiable
         beyond vertex range). *)
      if vertex < 0 || vertex >= Graph.n t.g then
        fail t ~step Invariant.Edge_invalid "phase vertex %d out of range"
          vertex
      else if
        (t.has_steps || step = 0)
        && (step <> shadow_steps t || vertex <> shadow_pos t)
      then
        fail t ~step Invariant.Schema
          "phase stamped step=%d vertex=%d but the walk is at step=%d \
           vertex=%d"
          step vertex (shadow_steps t) (shadow_pos t)
      else Ok ()
  | Running, Milestone { step; kind; percent; count; total } ->
      let kind_s = match kind with Trace.Vertices -> "vertices" | Trace.Edges -> "edges" in
      let expected_total =
        match kind with Trace.Vertices -> Graph.n t.g | Trace.Edges -> Graph.m t.g
      in
      let last_pct =
        match kind with Trace.Vertices -> t.pct_v | Trace.Edges -> t.pct_e
      in
      if not (List.mem percent [ 25; 50; 75; 100 ]) then
        fail t ~step Invariant.Schema "milestone percent %d not in {25,50,75,100}"
          percent
      else if total <> expected_total then
        fail t ~step Invariant.Coverage
          "%s milestone total %d, graph has %d" kind_s total expected_total
      else if percent <= last_pct then
        fail t ~step Invariant.Coverage
          "%s milestones not strictly increasing: %d%% after %d%%" kind_s
          percent last_pct
      else if count > total || count < milestone_target ~total percent then
        fail t ~step Invariant.Coverage
          "%s milestone %d%% with count %d of %d" kind_s percent count total
      else begin
        let shadow_count =
          match (t.inv, kind) with
          | Some i, Trace.Vertices -> Some (Invariant.vertices_visited i)
          | Some i, Trace.Edges -> Some (Invariant.edges_visited i)
          | None, _ -> None
        in
        (* In a resumed trace the shadow undercounts (it never saw the
           pre-resume visits), so only the step stamp is cross-checked. *)
        match shadow_count with
        | Some c
          when t.has_steps
               && (step <> shadow_steps t
                  || ((not t.resumed) && count <> c)) ->
            fail t ~step Invariant.Coverage
              "%s milestone stamped step=%d count=%d but the shadow has \
               step=%d count=%d"
              kind_s step count (shadow_steps t) c
        | _ ->
            (match kind with
            | Trace.Vertices -> t.pct_v <- percent
            | Trace.Edges -> t.pct_e <- percent);
            if kind = Trace.Vertices && percent = 100 then
              t.cover_step <- Some step;
            t.milestones <- t.milestones + 1;
            Ok ()
      end
  | Running, Run_end { steps; covered } ->
      t.state <- Done;
      t.covered <- covered;
      let inv = Option.get t.inv in
      if t.has_steps && steps <> Invariant.steps inv then
        fail t ~step:steps Invariant.Schema
          "run_end reports %d steps, the stream carried %d" steps
          (Invariant.steps inv)
      else if
        (* A resumed shadow undercounts vertices, so it can only refute
           covered=false — seeing all n in the tail alone proves cover. *)
        t.has_steps
        &&
        let tail_covered = Invariant.vertices_visited inv = Graph.n t.g in
        if t.resumed then (not covered) && tail_covered
        else covered <> tail_covered
      then
        fail t ~step:steps Invariant.Coverage
          "run_end says covered=%b but the shadow visited %d of %d vertices"
          covered
          (Invariant.vertices_visited inv)
          (Graph.n t.g)
      else Ok ()

let summary_of t ~complete =
  let inv = Option.get t.inv in
  {
    process = t.process;
    n = Graph.n t.g;
    m = Graph.m t.g;
    start = t.start;
    steps = Invariant.steps inv;
    blue_steps = Invariant.blue_steps inv;
    red_steps = Invariant.red_steps inv;
    vertices_visited = Invariant.vertices_visited inv;
    edges_visited = Invariant.edges_visited inv;
    milestones = t.milestones;
    cover_step = t.cover_step;
    covered = t.covered;
    has_steps = t.has_steps;
    resumed = t.resumed;
    run_id = t.run_id;
    complete;
  }

let finish t =
  match t.state with
  | Expect_start -> (
      match fail t Invariant.Schema "empty stream: no run_start" with
      | Error v -> Error v
      | Ok () -> assert false)
  | Running -> (
      match
        fail t Invariant.Schema "truncated stream: no run_end after step %d"
          (shadow_steps t)
      with
      | Error v -> Error v
      | Ok () -> assert false)
  | Done -> (
      match List.rev t.violations with
      | v :: _ -> Error v
      | [] -> Ok (summary_of t ~complete:true))

let finish_partial t =
  match t.state with
  | Expect_start -> (
      match fail t Invariant.Schema "empty stream: no run_start" with
      | Error v -> Error v
      | Ok () -> assert false)
  | Running | Done -> (
      match List.rev t.violations with
      | v :: _ -> Error v
      | [] -> Ok (summary_of t ~complete:(t.state = Done)))

let verify_events g events =
  let t = create g in
  let rec go = function
    | [] -> finish t
    | ev :: rest -> (
        match feed t ev with Ok () -> go rest | Error v -> Error v)
  in
  go events
