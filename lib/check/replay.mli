(** Trace replay verification: re-run a recorded [eproc trace] event
    stream against the {!Invariant} monitor.

    The verifier is a streaming consumer: hand it the graph the trace was
    recorded on, {!feed} it events one at a time (e.g. as JSONL lines are
    parsed), and {!finish} it at end of stream.  It checks the stream's
    own shape — exactly one [Run_start] first, nothing after [Run_end],
    consecutive step indices — and, through a shadow {!Invariant.t}
    configured from the recorded process name, every per-step walk
    invariant the monitor knows about.  [Phase] and [Milestone] events are
    cross-checked against the shadow: a phase transition must be stamped
    with the current step count and position, and a milestone's count must
    match the shadow's visited tally at that moment.

    The monitor configuration is inferred from the [Run_start] process
    name: names beginning with ["e-process"] enable the unvisited-edge
    preference checks (with the slot rule pinned for
    ["e-process(lowest-slot)"] / ["e-process(highest-slot)"]); any other
    name gets edge-validity and coverage checks only.

    A [Run_info] provenance event is legal only in the prologue (after
    [Run_start], before any step or milestone, at most once); its id is
    surfaced in the summary's [run_id].

    Checkpoint/resume traces are understood.  A [Checkpoint] event must be
    stamped with the shadow's current step.  A [Resume] event is legal
    only directly after [Run_start] (before any step or milestone) and
    switches the verifier to {e resumed mode}: the shadow restarts at the
    stamped step with {!Invariant.create}[ ~relaxed:true], because the
    trace tail carries no pre-resume visit history — structural checks
    (edge validity, consecutive absolute step indices, stream shape)
    remain full-strength, while history-dependent ones (preference, slot
    rule, parity, milestone counts) are suppressed or checked only in the
    refutable direction. *)

open Ewalk_graph

type summary = {
  process : string;
  n : int;
  m : int;
  start : int;
  steps : int;  (** transitions verified (from [Step] events) *)
  blue_steps : int;
  red_steps : int;
  vertices_visited : int;
  edges_visited : int;
  milestones : int;  (** [Milestone] events seen *)
  cover_step : int option;
      (** step stamped on the [vertices 100%] milestone, if reached *)
  covered : bool;  (** the [Run_end] flag *)
  has_steps : bool;
      (** whether the stream carried per-step events; when [false] only
          stream-shape and milestone checks were possible *)
  resumed : bool;
      (** the stream announced itself as the tail of a resumed run, so
          history-dependent checks ran relaxed *)
  run_id : string option;
      (** the [Run_info] provenance id, when the prologue carried one *)
  complete : bool;
      (** [Run_end] was seen; [false] only from {!finish_partial} on a
          truncated stream *)
}

val summary_to_string : summary -> string
(** One human-readable line. *)

type t

val create : Graph.t -> t
(** A verifier expecting a trace recorded on exactly this graph. *)

val feed : t -> Ewalk_obs.Trace.event -> (unit, Invariant.violation) result
(** Verify one event.  On [Error v] the verifier records the violation and
    keeps accepting events (its shadow adopts the reported transition), so
    a caller may choose to stop at the first violation or drain the stream
    and collect them all via {!violations}. *)

val finish : t -> (summary, Invariant.violation) result
(** End of stream.  Errors if no [Run_start] was ever seen, [Run_end] is
    missing (truncated trace), or any earlier {!feed} reported a violation
    (the first one is returned). *)

val finish_partial : t -> (summary, Invariant.violation) result
(** Like {!finish} but a stream cut off mid-run (no [Run_end]) is
    accepted — the summary carries [complete = false] and whatever the
    shadow verified up to the cut.  This is how flight-recorder dumps are
    judged ([eproc verify-trace --flight]): a crash post-mortem is by
    nature truncated, and every event it does carry must still verify.
    An empty stream is still an error. *)

val violations : t -> Invariant.violation list
(** Every violation reported so far, in stream order. *)

val verify_events :
  Graph.t -> Ewalk_obs.Trace.event list -> (summary, Invariant.violation) result
(** Convenience: feed a complete event list and finish, stopping at the
    first violation. *)
