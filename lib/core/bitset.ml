(* Bytes-backed packed bit array.  One bit per index, LSB-first within
   each byte — the same layout the kernel engine's private visited sets
   have always used, now shared between the compact data plane, the
   competing-mode kernel and the snapshot codec. *)

type t = { len : int; bits : Bytes.t }

(* Per-byte popcount table: popcount is only ever called on recount /
   restore paths, never on the step path, so a 256-entry table is plenty. *)
let popcount_byte =
  Array.init 256 (fun b ->
      let rec go b acc = if b = 0 then acc else go (b lsr 1) (acc + (b land 1)) in
      go b 0)

let create len =
  if len < 0 then invalid_arg "Bitset.create: negative length";
  { len; bits = Bytes.make ((len + 7) / 8) '\000' }

let length t = t.len

let check_index name t i =
  if i < 0 || i >= t.len then invalid_arg (name ^ ": index out of range")

let get t i =
  check_index "Bitset.get" t i;
  Char.code (Bytes.unsafe_get t.bits (i lsr 3)) land (1 lsl (i land 7)) <> 0

let set t i =
  check_index "Bitset.set" t i;
  let j = i lsr 3 in
  Bytes.unsafe_set t.bits j
    (Char.unsafe_chr
       (Char.code (Bytes.unsafe_get t.bits j) lor (1 lsl (i land 7))))

let clear t i =
  check_index "Bitset.clear" t i;
  let j = i lsr 3 in
  Bytes.unsafe_set t.bits j
    (Char.unsafe_chr
       (Char.code (Bytes.unsafe_get t.bits j) land lnot (1 lsl (i land 7))))

let popcount t =
  let acc = ref 0 in
  for j = 0 to Bytes.length t.bits - 1 do
    acc := !acc + popcount_byte.(Char.code (Bytes.unsafe_get t.bits j))
  done;
  !acc

let copy t = { len = t.len; bits = Bytes.copy t.bits }
let equal a b = a.len = b.len && Bytes.equal a.bits b.bits

let fill_all t =
  Bytes.fill t.bits 0 (Bytes.length t.bits) '\xff';
  (* Keep the padding bits of the last byte zero so popcount and equal
     stay exact. *)
  let tail = t.len land 7 in
  if tail <> 0 && Bytes.length t.bits > 0 then
    Bytes.set t.bits
      (Bytes.length t.bits - 1)
      (Char.chr ((1 lsl tail) - 1))

let reset t = Bytes.fill t.bits 0 (Bytes.length t.bits) '\000'

(* Raw byte views for the kernel engine, which keeps its per-walker sets
   as plain [Bytes.t] arrays in SoA style. *)
let unsafe_bytes t = t.bits

let of_bytes ~len bits =
  if len < 0 || Bytes.length bits <> (len + 7) / 8 then
    invalid_arg "Bitset.of_bytes: byte length does not match";
  let tail = len land 7 in
  if
    tail <> 0
    && Bytes.length bits > 0
    && Char.code (Bytes.get bits (Bytes.length bits - 1)) lsr tail <> 0
  then invalid_arg "Bitset.of_bytes: padding bits set";
  { len; bits }

(* Hex serialization, low byte first, two digits per byte — the snapshot
   codec's wire format for packed sets. *)

let to_hex t =
  let buf = Buffer.create (2 * Bytes.length t.bits) in
  Bytes.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c))) t.bits;
  Buffer.contents buf

let of_hex ~len s =
  let bytes = (len + 7) / 8 in
  if String.length s <> 2 * bytes then
    invalid_arg "Bitset.of_hex: hex length does not match";
  let digit c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> invalid_arg "Bitset.of_hex: not a hex digit"
  in
  let bits = Bytes.make bytes '\000' in
  for j = 0 to bytes - 1 do
    Bytes.set bits j
      (Char.chr ((digit s.[2 * j] lsl 4) lor digit s.[(2 * j) + 1]))
  done;
  of_bytes ~len bits
