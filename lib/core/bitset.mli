(** Packed bit arrays for the compact data plane.

    One bit per index over [Bytes.t], LSB-first within each byte.  Used
    for the bit-packed visited-arc set of {!Compact}, the kernel engine's
    per-walker private visited sets, and their snapshot serialization.
    [get]/[set] are O(1); {!popcount} is O(len/8) and only appears on
    recount and restore paths, never on the step path. *)

type t

val create : int -> t
(** [create len]: all bits clear.  @raise Invalid_argument on [len < 0]. *)

val length : t -> int

val get : t -> int -> bool
val set : t -> int -> unit
val clear : t -> int -> unit
(** @raise Invalid_argument when the index is out of range. *)

val popcount : t -> int
(** Number of set bits (table-driven, byte at a time). *)

val copy : t -> t

val equal : t -> t -> bool
(** Same length and same bits. *)

val fill_all : t -> unit
(** Set every bit (padding bits in the last byte stay clear). *)

val reset : t -> unit
(** Clear every bit. *)

val unsafe_bytes : t -> Bytes.t
(** The backing bytes, unpadded length [ceil (length/8)].  Shared, not a
    copy — the kernel engine's SoA step loops index it directly. *)

val of_bytes : len:int -> Bytes.t -> t
(** Adopt (share) a backing buffer.  @raise Invalid_argument if the byte
    length does not match [ceil (len/8)] or a padding bit is set. *)

val to_hex : t -> string
(** Low byte first, two lowercase digits per byte — the snapshot wire
    format. *)

val of_hex : len:int -> string -> t
(** Inverse of {!to_hex}.  @raise Invalid_argument on length mismatch,
    a non-hex digit, or a set padding bit. *)
