(* Bloom-filter membership over edge ids for the approximate visited
   mode.  Double hashing (Kirsch–Mitzenmacher): two independent 64-bit
   hashes of the key via the SplitMix64 finaliser drive all k probes. *)

module Splitmix = Ewalk_prng.Splitmix

type t = {
  bits : Bitset.t;
  hashes : int;
  mutable inserted : int;
}

let create ~bits ~hashes =
  if bits < 1 then invalid_arg "Bloom.create: bits < 1";
  if hashes < 1 then invalid_arg "Bloom.create: hashes < 1";
  { bits = Bitset.create bits; hashes; inserted = 0 }

let size t = Bitset.length t.bits
let hashes t = t.hashes
let inserted t = t.inserted

(* Probe positions for a key: h1 + i*h2 mod bits, h2 forced odd so the
   probe sequence cycles through the whole table when bits is a power of
   two (and harms nothing when it is not). *)
let probes t key f =
  let h1 = Splitmix.mix (Int64.of_int key) in
  let h2 =
    Int64.logor (Splitmix.mix (Int64.logxor h1 0x9E3779B97F4A7C15L)) 1L
  in
  let m = Int64.of_int (Bitset.length t.bits) in
  let h = ref h1 in
  for _ = 1 to t.hashes do
    let idx = Int64.to_int (Int64.unsigned_rem !h m) in
    f idx;
    h := Int64.add !h h2
  done

let add t key =
  probes t key (Bitset.set t.bits);
  t.inserted <- t.inserted + 1

let mem t key =
  let all = ref true in
  probes t key (fun idx -> if not (Bitset.get t.bits idx) then all := false);
  !all

let fill_fraction t =
  float_of_int (Bitset.popcount t.bits) /. float_of_int (Bitset.length t.bits)

(* The standard bound: after n insertions into m bits with k hashes the
   false-positive probability is about (1 - e^{-kn/m})^k.  Double hashing
   adds lower-order terms, so callers should compare against this with
   slack. *)
let fp_rate_bound ~bits ~hashes ~inserted =
  if inserted = 0 then 0.0
  else
    let k = float_of_int hashes in
    let r = k *. float_of_int inserted /. float_of_int bits in
    (1.0 -. exp (-.r)) ** k
