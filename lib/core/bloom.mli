(** Bloom-filter edge-membership for the approximate visited mode.

    [Eprocess.create ~approx:(Bloom _)] replaces the exact visited-arc
    partition with one of these: O(bits/8) memory instead of O(m) ints,
    at the price of false positives — the process can believe an
    unvisited edge is visited and skip it, which only ever converts a
    blue step into a red one (cover still completes; coverage tracking
    stays exact).  The distortion is quantified by the characterization
    test in test/test_compact.ml against {!fp_rate_bound}.

    Keys are hashed with the SplitMix64 finaliser and probed by double
    hashing (Kirsch–Mitzenmacher), so membership is deterministic across
    runs and platforms. *)

type t

val create : bits:int -> hashes:int -> t
(** @raise Invalid_argument on [bits < 1] or [hashes < 1]. *)

val size : t -> int
(** Table size in bits. *)

val hashes : t -> int
val inserted : t -> int

val add : t -> int -> unit
val mem : t -> int -> bool
(** [mem] never reports [false] for an added key; it may report [true]
    for one never added. *)

val fill_fraction : t -> float
(** Fraction of table bits set. *)

val fp_rate_bound : bits:int -> hashes:int -> inserted:int -> float
(** The textbook estimate [(1 - e^{-kn/m})^k] of the false-positive
    rate after [inserted] insertions; double hashing adds lower-order
    terms, so measured rates should be compared with slack. *)
