open Ewalk_graph

(* The compact data plane under the E-process hot loop.

   Same swap-to-back partition discipline as the legacy [Unvisited]
   module — per-vertex adjacency regions whose live prefix holds the
   unvisited arc slots — but with the redundant 2m-int slot-owner array
   dropped (retirement is always by edge, and the edge knows its
   endpoints), a bit-packed visited-arc set alongside the partition, and
   a cached retired-arc counter whose ground truth is the bitset's
   popcount.  Because the swap logic is identical, every [live_slot]
   sequence — and therefore every PRNG draw of a walk running on top —
   is bit-identical to the legacy partition's. *)

type fault = Broken_swap | Stale_popcount

type t = {
  g : Graph.t;
  arc_at : int array; (* 2m: per-vertex regions; live prefix, then retired *)
  pos_of : int array; (* 2m: inverse of arc_at *)
  counts : int array; (* n: live arcs per vertex *)
  visited : Bitset.t; (* 2m: bit per directed arc *)
  mutable retired : int; (* cached popcount of [visited] *)
  mutable fault : fault option;
}

let create g =
  let two_m = 2 * Graph.m g in
  {
    g;
    arc_at = Array.init two_m (fun p -> p);
    pos_of = Array.init two_m (fun p -> p);
    counts = Array.init (Graph.n g) (Graph.degree g);
    visited = Bitset.create two_m;
    retired = 0;
    fault = None;
  }

let graph t = t.g
let count t v = Array.unsafe_get t.counts v

let live_slot t v i =
  Array.unsafe_get t.arc_at (Graph.adj_start t.g v + i)

let incident_edges t v =
  let k = t.counts.(v) in
  let seen = Hashtbl.create (2 * k) in
  let out = ref [] in
  for i = k - 1 downto 0 do
    let e = Graph.slot_edge t.g (live_slot t v i) in
    if not (Hashtbl.mem seen e) then begin
      Hashtbl.add seen e ();
      out := e :: !out
    end
  done;
  Array.of_list !out

let slot_with_edge t v e =
  let k = t.counts.(v) in
  let found = ref (-1) in
  for i = 0 to k - 1 do
    let p = live_slot t v i in
    if !found < 0 && Graph.slot_edge t.g p = e then found := p
  done;
  if !found < 0 then raise Not_found else !found

let retire_arc t ~owner p =
  let i = t.pos_of.(p) in
  let base = Graph.adj_start t.g owner in
  let last = base + t.counts.(owner) - 1 in
  assert (i >= base && i <= last);
  let q = t.arc_at.(last) in
  t.arc_at.(i) <- q;
  (* Broken_swap (mutation battery): forget to reindex the arc swapped
     into the vacated position — the classic swap-to-back bug. *)
  if t.fault <> Some Broken_swap then t.pos_of.(q) <- i;
  t.arc_at.(last) <- p;
  t.pos_of.(p) <- last;
  t.counts.(owner) <- t.counts.(owner) - 1;
  Bitset.set t.visited p;
  (* Stale_popcount (mutation battery): leave the cached counter behind
     the bitset it is supposed to summarize. *)
  if t.fault <> Some Stale_popcount then t.retired <- t.retired + 1

let retire_edge t e =
  let p1, p2 = Graph.edge_positions t.g e in
  let u, v = Graph.endpoints t.g e in
  retire_arc t ~owner:u p1;
  retire_arc t ~owner:v p2

let arc_visited t p = Bitset.get t.visited p

let edge_visited t e =
  let p1, _ = Graph.edge_positions t.g e in
  Bitset.get t.visited p1

let retired_arcs t = t.retired
let edges_retired t = t.retired / 2
let recount t = Bitset.popcount t.visited
let counter_consistent t = t.retired = recount t

let set_fault t f = t.fault <- f

(* --- checkpointing -----------------------------------------------------

   The wire format is the legacy [Unvisited.state] record: the bitset and
   the cached counter are fully derived from the partition (an arc is
   visited iff it sits behind its vertex's live prefix), so old snapshots
   restore into the compact representation for free and new snapshots
   stay readable by the legacy module. *)

let save t : Unvisited.state =
  {
    s_slot_list = Array.copy t.arc_at;
    s_slot_index = Array.copy t.pos_of;
    s_counts = Array.copy t.counts;
  }

let restore g (s : Unvisited.state) =
  let n = Graph.n g and two_m = 2 * Graph.m g in
  if
    Array.length s.s_slot_list <> two_m
    || Array.length s.s_slot_index <> two_m
  then invalid_arg "Compact.restore: slot arrays do not match the graph";
  if Array.length s.s_counts <> n then
    invalid_arg "Compact.restore: counts array does not match the graph";
  let owner = Array.make (max two_m 1) 0 in
  for v = 0 to n - 1 do
    for p = Graph.adj_start g v to Graph.adj_stop g v - 1 do
      owner.(p) <- v
    done
  done;
  for p = 0 to two_m - 1 do
    let q = s.s_slot_list.(p) in
    if q < 0 || q >= two_m || s.s_slot_index.(q) <> p then
      invalid_arg "Compact.restore: slot_index is not inverse to slot_list";
    (* Swaps only ever happen within a vertex's own adjacency region. *)
    if owner.(q) <> owner.(p) then
      invalid_arg "Compact.restore: slot moved across vertex regions"
  done;
  for v = 0 to n - 1 do
    if s.s_counts.(v) < 0 || s.s_counts.(v) > Graph.degree g v then
      invalid_arg "Compact.restore: live count out of range"
  done;
  let visited = Bitset.create two_m in
  let retired = ref 0 in
  for p = 0 to two_m - 1 do
    let v = owner.(p) in
    if s.s_slot_index.(p) >= Graph.adj_start g v + s.s_counts.(v) then begin
      Bitset.set visited p;
      incr retired
    end
  done;
  {
    g;
    arc_at = Array.copy s.s_slot_list;
    pos_of = Array.copy s.s_slot_index;
    counts = Array.copy s.s_counts;
    visited;
    retired = !retired;
    fault = None;
  }
