(** Compact unvisited-arc partition: the data plane under the walk hot
    loops.

    Functionally equivalent to the legacy {!Unvisited} swap-partition —
    the first [count t v] entries of vertex [v]'s CSR adjacency region
    are its live (unvisited) arc slots, and retiring an edge swaps its
    two arcs to the back of their regions in O(1) — but compacted:

    - the 2m-int slot-owner array is gone (retirement is by edge, and
      owners come from {!Ewalk_graph.Graph.endpoints});
    - a bit-packed visited-arc set ({!Bitset}, one bit per directed arc
      over the CSR arc array) is maintained alongside the partition with
      O(1) test/set;
    - a cached retired-arc counter summarizes the bitset; its ground
      truth is {!recount} (a popcount), and {!counter_consistent} is the
      invariant the mutation battery checks.

    The swap logic is line-for-line the legacy module's, so the
    [live_slot] enumeration — and therefore every PRNG draw of a process
    running on top — is bit-identical to {!Unvisited}'s.  {!Unvisited}
    remains in the tree as the reference implementation the equivalence
    battery (test/test_compact.ml) diffs against. *)

open Ewalk_graph

type t

type fault = Broken_swap | Stale_popcount
(** Deliberate defects for the mutation-kill battery (see {!set_fault}):
    skip the reindex of the arc swapped into the vacated position; stop
    bumping the cached retired counter so it falls behind the bitset. *)

val create : Graph.t -> t
(** All arcs unvisited. *)

val graph : t -> Graph.t

val count : t -> Graph.vertex -> int
(** Unvisited incident arc slots (a blue self-loop counts 2). *)

val live_slot : t -> Graph.vertex -> int -> int
(** [live_slot t v i], [0 <= i < count t v]: the [i]-th live adjacency
    slot position of [v].  Same enumeration order as
    {!Unvisited.live_slot}. *)

val incident_edges : t -> Graph.vertex -> Graph.edge array
(** Deduplicated unvisited incident edges (a self-loop appears once). *)

val slot_with_edge : t -> Graph.vertex -> Graph.edge -> int
(** A live slot at [v] carrying the given edge.
    @raise Not_found if the edge is not live at [v]. *)

val retire_edge : t -> Graph.edge -> unit
(** Mark the edge visited: swap both its arcs behind their regions' live
    prefixes, set both bits, bump the counter.  Must be called at most
    once per edge. *)

val arc_visited : t -> int -> bool
(** O(1) bit test on an adjacency slot position. *)

val edge_visited : t -> Graph.edge -> bool

val retired_arcs : t -> int
(** The cached counter: retired (visited) arcs so far; twice the retired
    edges. *)

val edges_retired : t -> int

val recount : t -> int
(** Popcount of the visited-arc bitset — the counter's ground truth. *)

val counter_consistent : t -> bool
(** [retired_arcs t = recount t]; violated exactly under
    [Stale_popcount]. *)

val set_fault : t -> fault option -> unit
(** Test-only defect injection. *)

(** {2 Checkpointing}

    The wire format is the legacy {!Unvisited.state}: bitset and counter
    are derived from the partition on restore (an arc is visited iff it
    sits behind its vertex's live prefix), so /1-era snapshots load into
    the compact representation unchanged. *)

val save : t -> Unvisited.state

val restore : Graph.t -> Unvisited.state -> t
(** @raise Invalid_argument under the same conditions as
    {!Unvisited.restore}. *)
