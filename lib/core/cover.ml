open Ewalk_graph

type process = {
  name : string;
  graph : Graph.t;
  position : unit -> Graph.vertex;
  step : unit -> unit;
  steps_done : unit -> int;
  coverage : Coverage.t;
}

let default_cap g =
  let n = float_of_int (max 2 (Graph.n g)) in
  int_of_float (2000.0 *. n *. (log n +. 1.0)) + 100_000

(* Ambient flight-recorder boundaries: one enabled-check per run (never
   per step), so the crash post-mortem knows which run was in flight even
   when no trace sink is attached.  A run entered with steps already done
   announces itself as a resumed tail, which is what the replay verifier
   expects of a partial stream. *)
let flight_run_start p =
  if Ewalk_obs.Flight.ambient_active () then begin
    let n = Coverage.total_vertices p.coverage
    and m = Coverage.total_edges p.coverage in
    Ewalk_obs.Flight.record
      (Ewalk_obs.Trace.Run_start { name = p.name; n; m; start = p.position () });
    (match Ewalk_obs.Runlog.current () with
    | Some r ->
        Ewalk_obs.Flight.record
          (Ewalk_obs.Trace.Run_info
             {
               run_id = r.Ewalk_obs.Runlog.run_id;
               parent_run_id = r.Ewalk_obs.Runlog.parent_run_id;
             })
    | None -> ());
    let k = p.steps_done () in
    if k > 0 then Ewalk_obs.Flight.record (Ewalk_obs.Trace.Resume { step = k })
  end

let flight_run_end p =
  if Ewalk_obs.Flight.ambient_active () then
    Ewalk_obs.Flight.record
      (Ewalk_obs.Trace.Run_end
         {
           steps = p.steps_done ();
           covered = Coverage.all_vertices_visited p.coverage;
         })

let run_until ?(cap = max_int) p ~finished ~result =
  flight_run_start p;
  let gave_up = ref false in
  while (not (finished ())) && not !gave_up do
    if p.steps_done () >= cap then gave_up := true else p.step ()
  done;
  flight_run_end p;
  if finished () then Some (result ()) else None

let run_until_vertex_cover ?cap p =
  run_until ?cap p
    ~finished:(fun () -> Coverage.all_vertices_visited p.coverage)
    ~result:(fun () ->
      match Coverage.vertex_cover_step p.coverage with
      | Some t -> t
      | None -> assert false)

let run_until_edge_cover ?cap p =
  run_until ?cap p
    ~finished:(fun () -> Coverage.all_edges_visited p.coverage)
    ~result:(fun () ->
      match Coverage.edge_cover_step p.coverage with
      | Some t -> t
      | None -> assert false)

let run_until_min_visits ?(cap = max_int) ~k p =
  if k < 0 then invalid_arg "Cover.run_until_min_visits: k < 0";
  (* Scanning the visit counts costs O(n); amortise it by only checking
     after the cheap necessary condition (full vertex coverage) holds, and
     then at most every [n] steps. *)
  let n = Graph.n p.graph in
  let satisfied () =
    Coverage.all_vertices_visited p.coverage
    && Coverage.min_visit_count p.coverage >= k
  in
  flight_run_start p;
  let gave_up = ref false in
  let done_ = ref (satisfied ()) in
  while (not !done_) && not !gave_up do
    if p.steps_done () >= cap then gave_up := true
    else begin
      let burst = max 1 (n / 4) in
      let i = ref 0 in
      while !i < burst && p.steps_done () < cap do
        p.step ();
        incr i
      done;
      done_ := satisfied ()
    end
  done;
  flight_run_end p;
  if !done_ then Some (p.steps_done ()) else None

let run_steps p k =
  for _ = 1 to k do
    p.step ()
  done

let with_step_hook p ~hook =
  {
    p with
    step =
      (fun () ->
        p.step ();
        hook p);
  }
