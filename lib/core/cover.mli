(** Process-agnostic cover-time runners.

    Every walk process in this library exposes an adapter to {!process};
    experiments then measure vertex cover time, edge cover time, or
    [k]-cover time through one code path, so that all processes are compared
    under identical accounting: step 0 is the start vertex, and the cover
    time is the index of the transition that completed coverage — matching
    the paper's definition of [C_V] as expected visit time of the last
    vertex.

    When the {!Ewalk_obs.Flight} crash recorder is enabled in ambient
    mode, the [run_until_*] runners record run-boundary events
    ([Run_start]/[Resume]/[Run_end]) into the calling domain's flight
    ring — one enabled-check per run, nothing per step — so a crash dump
    names the in-flight run even with no trace sink attached.
    [run_steps] records nothing (it is the bench kernel). *)

open Ewalk_graph

type process = {
  name : string;  (** display name, e.g. ["e-process(uar)"] *)
  graph : Graph.t;
  position : unit -> Graph.vertex;
  step : unit -> unit;  (** perform one transition *)
  steps_done : unit -> int;
  coverage : Coverage.t;
}

val run_until_vertex_cover : ?cap:int -> process -> int option
(** Step until every vertex has been visited; [Some t] is the step index of
    the covering transition.  [None] if [cap] transitions (default
    [max_int]) elapsed first.  Resumable: already-performed steps count. *)

val run_until_edge_cover : ?cap:int -> process -> int option
(** Same for edge coverage. *)

val run_until_min_visits : ?cap:int -> k:int -> process -> int option
(** Step until every vertex has been visited at least [k] times (the
    quantity behind the blanket-time discussion around eq. (4)).  The
    condition is only re-checked every [n/4] transitions (a full check costs
    O(n)), so the returned step count may overshoot the exact threshold by
    up to [n/4] — negligible against the [Omega(n log n)] scale of the
    quantity itself. *)

val run_steps : process -> int -> unit
(** Perform exactly the given number of transitions. *)

val with_step_hook : process -> hook:(process -> unit) -> process
(** A view of the process that additionally calls [hook] after every
    transition — the choke point the {!Observe} instrumentation wraps.
    The underlying process is shared, not copied: stepping either view
    advances the same walk. *)

val default_cap : Graph.t -> int
(** A generous default budget, [~ 2000 n (ln n + 1) + 10^5]: several hundred
    times the expected cover time on the expander families studied here,
    while still bounding runaway walks on pathological inputs. *)
