open Ewalk_graph

type t = {
  n : int;
  m : int;
  vertex_first : int array; (* -1 = unvisited *)
  edge_first : int array;
  visits : int array;
  edge_count : int array;
  mutable vertices_seen : int;
  mutable edges_seen : int;
  mutable vertex_cover_step : int; (* -1 until covered *)
  mutable edge_cover_step : int;
}

let create g =
  let n = Graph.n g and m = Graph.m g in
  {
    n;
    m;
    vertex_first = Array.make n (-1);
    edge_first = Array.make m (-1);
    visits = Array.make n 0;
    edge_count = Array.make m 0;
    vertices_seen = 0;
    edges_seen = 0;
    vertex_cover_step = (if n = 0 then 0 else -1);
    edge_cover_step = (if m = 0 then 0 else -1);
  }

let record_move t ~step v =
  t.visits.(v) <- t.visits.(v) + 1;
  if t.vertex_first.(v) < 0 then begin
    t.vertex_first.(v) <- step;
    t.vertices_seen <- t.vertices_seen + 1;
    if t.vertices_seen = t.n then t.vertex_cover_step <- step
  end

let record_start t v = record_move t ~step:0 v

let record_edge t ~step e =
  t.edge_count.(e) <- t.edge_count.(e) + 1;
  if t.edge_first.(e) < 0 then begin
    t.edge_first.(e) <- step;
    t.edges_seen <- t.edges_seen + 1;
    if t.edges_seen = t.m then t.edge_cover_step <- step
  end

let total_vertices t = t.n
let total_edges t = t.m

let vertex_fraction t =
  if t.n = 0 then 1.0 else float_of_int t.vertices_seen /. float_of_int t.n

let edge_fraction t =
  if t.m = 0 then 1.0 else float_of_int t.edges_seen /. float_of_int t.m

let vertex_visited t v = t.vertex_first.(v) >= 0
let edge_visited t e = t.edge_first.(e) >= 0
let vertices_visited t = t.vertices_seen
let edges_visited t = t.edges_seen
let all_vertices_visited t = t.vertices_seen = t.n
let all_edges_visited t = t.edges_seen = t.m

let vertex_cover_step t =
  if t.vertex_cover_step < 0 then None else Some t.vertex_cover_step

let edge_cover_step t =
  if t.edge_cover_step < 0 then None else Some t.edge_cover_step

let first_visit t v = t.vertex_first.(v)
let first_edge_visit t e = t.edge_first.(e)
let visit_count t v = t.visits.(v)
let edge_traversals t e = t.edge_count.(e)

let min_visit_count t =
  Array.fold_left (fun acc c -> if c < acc then c else acc) max_int t.visits

let unvisited_vertices t =
  let acc = ref [] in
  for v = t.n - 1 downto 0 do
    if t.vertex_first.(v) < 0 then acc := v :: !acc
  done;
  !acc

let unvisited_edges t =
  let acc = ref [] in
  for e = t.m - 1 downto 0 do
    if t.edge_first.(e) < 0 then acc := e :: !acc
  done;
  !acc

let visited_edge_flags t = Array.map (fun s -> s >= 0) t.edge_first

type state = {
  s_vertex_first : int array;
  s_edge_first : int array;
  s_visits : int array;
  s_edge_count : int array;
  s_vertices_seen : int;
  s_edges_seen : int;
  s_vertex_cover_step : int;
  s_edge_cover_step : int;
}

let save t =
  {
    s_vertex_first = Array.copy t.vertex_first;
    s_edge_first = Array.copy t.edge_first;
    s_visits = Array.copy t.visits;
    s_edge_count = Array.copy t.edge_count;
    s_vertices_seen = t.vertices_seen;
    s_edges_seen = t.edges_seen;
    s_vertex_cover_step = t.vertex_cover_step;
    s_edge_cover_step = t.edge_cover_step;
  }

let restore g s =
  let n = Graph.n g and m = Graph.m g in
  if Array.length s.s_vertex_first <> n || Array.length s.s_visits <> n then
    invalid_arg "Coverage.restore: vertex arrays do not match the graph";
  if Array.length s.s_edge_first <> m || Array.length s.s_edge_count <> m then
    invalid_arg "Coverage.restore: edge arrays do not match the graph";
  let count_nonneg a =
    Array.fold_left (fun acc x -> if x >= 0 then acc + 1 else acc) 0 a
  in
  if count_nonneg s.s_vertex_first <> s.s_vertices_seen then
    invalid_arg "Coverage.restore: vertices_seen disagrees with first-visits";
  if count_nonneg s.s_edge_first <> s.s_edges_seen then
    invalid_arg "Coverage.restore: edges_seen disagrees with first-visits";
  {
    n;
    m;
    vertex_first = Array.copy s.s_vertex_first;
    edge_first = Array.copy s.s_edge_first;
    visits = Array.copy s.s_visits;
    edge_count = Array.copy s.s_edge_count;
    vertices_seen = s.s_vertices_seen;
    edges_seen = s.s_edges_seen;
    vertex_cover_step = s.s_vertex_cover_step;
    edge_cover_step = s.s_edge_cover_step;
  }
