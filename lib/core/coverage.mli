(** Shared coverage instrumentation for all walk processes.

    Tracks which vertices and edges have been visited, when they were first
    visited, and how often each vertex has been occupied.  Every process in
    this library owns one [Coverage.t] and reports each transition to it;
    the generic runners in {!Cover} read cover times out of it. *)

open Ewalk_graph

type t

val create : Graph.t -> t
(** Fresh instrumentation with nothing visited. *)

val record_start : t -> Graph.vertex -> unit
(** Mark the walk's start vertex as visited at step 0. *)

val record_move : t -> step:int -> Graph.vertex -> unit
(** [record_move t ~step v]: the walk occupies [v] after its [step]-th
    transition. *)

val record_edge : t -> step:int -> Graph.edge -> unit
(** [record_edge t ~step e]: transition number [step] traversed [e].
    Idempotent (repeat traversals only bump {!edge_traversals}). *)

val total_vertices : t -> int
(** [n] of the underlying graph. *)

val total_edges : t -> int

val vertex_fraction : t -> float
(** Fraction of vertices visited so far (1.0 on the empty graph). *)

val edge_fraction : t -> float

val vertex_visited : t -> Graph.vertex -> bool
val edge_visited : t -> Graph.edge -> bool

val vertices_visited : t -> int
(** Number of distinct vertices visited so far. *)

val edges_visited : t -> int

val all_vertices_visited : t -> bool
val all_edges_visited : t -> bool

val vertex_cover_step : t -> int option
(** The step at which the last vertex was first visited, once all are. *)

val edge_cover_step : t -> int option

val first_visit : t -> Graph.vertex -> int
(** Step of first visit, [-1] if unvisited. *)

val first_edge_visit : t -> Graph.edge -> int

val visit_count : t -> Graph.vertex -> int
(** How many times the walk has occupied the vertex (start counts once). *)

val edge_traversals : t -> Graph.edge -> int

val min_visit_count : t -> int
(** Minimum vertex visit count (0 while some vertex is unvisited). *)

val unvisited_vertices : t -> Graph.vertex list
val unvisited_edges : t -> Graph.edge list

val visited_edge_flags : t -> bool array
(** A copy of the per-edge visited flags (for blue-subgraph analysis). *)

(** {2 Checkpointing} *)

type state = {
  s_vertex_first : int array;
  s_edge_first : int array;
  s_visits : int array;
  s_edge_count : int array;
  s_vertices_seen : int;
  s_edges_seen : int;
  s_vertex_cover_step : int;
  s_edge_cover_step : int;
}
(** A plain-data snapshot of the full coverage bookkeeping, as used by
    [Ewalk_resume.Snapshot].  Arrays are copies; mutating a state never
    affects the live tracker. *)

val save : t -> state
(** Capture the complete current state. *)

val restore : Graph.t -> state -> t
(** Rebuild a tracker for [g] from a saved state.
    @raise Invalid_argument if array lengths do not match the graph or the
    seen-counters disagree with the first-visit arrays. *)
