open Ewalk_graph
module Rng = Ewalk_prng.Rng

type approx = Bloom of { bits_per_edge : int; hashes : int }

(* Approximate visited tracking: a Bloom filter over edge ids replaces
   the exact partition.  [fp_hits]/[unvisited_queries] quantify the
   distortion against the exact coverage table, which stays ground
   truth: a "hit" is a step-time query of a truly-unvisited edge that
   the filter claimed was visited. *)
type approx_state = {
  filter : Bloom.t;
  mutable fp_hits : int;
  mutable unvisited_queries : int;
}

type marks = Exact of Compact.t | Approx of approx_state

type t = {
  g : Graph.t;
  rng : Rng.t;
  rule : rule;
  mutable pos : Graph.vertex;
  mutable steps : int;
  mutable blue_steps : int;
  mutable red_steps : int;
  coverage : Coverage.t;
  marks : marks;
  record_phases : bool;
  mutable current_phase : (phase_kind * int * Graph.vertex) option;
  mutable phases : phase list; (* reversed *)
  mutable observer : (Ewalk_obs.Trace.event -> unit) option;
  mutable phase_observer : (Ewalk_obs.Trace.event -> unit) option;
}

and rule =
  | Uar
  | Lowest_slot
  | Highest_slot
  | Adversarial of (t -> Graph.edge array -> int)

and phase_kind = Blue | Red

and phase = {
  kind : phase_kind;
  start_step : int;
  start_vertex : Graph.vertex;
  end_step : int;
  end_vertex : Graph.vertex;
}

let create ?(rule = Uar) ?(record_phases = false) ?approx g rng ~start =
  if Graph.n g = 0 then invalid_arg "Eprocess.create: empty graph";
  if start < 0 || start >= Graph.n g then
    invalid_arg "Eprocess.create: start out of range";
  let coverage = Coverage.create g in
  Coverage.record_start coverage start;
  let marks =
    match approx with
    | None -> Exact (Compact.create g)
    | Some (Bloom { bits_per_edge; hashes }) ->
        if bits_per_edge < 1 then
          invalid_arg "Eprocess.create: bits_per_edge < 1";
        let bits = max 8 (bits_per_edge * Graph.m g) in
        Approx
          { filter = Bloom.create ~bits ~hashes; fp_hits = 0;
            unvisited_queries = 0 }
  in
  {
    g;
    rng;
    rule;
    pos = start;
    steps = 0;
    blue_steps = 0;
    red_steps = 0;
    coverage;
    marks;
    record_phases;
    current_phase = None;
    phases = [];
    observer = None;
    phase_observer = None;
  }

let graph t = t.g
let position t = t.pos
let steps t = t.steps
let blue_steps t = t.blue_steps
let red_steps t = t.red_steps
let coverage t = t.coverage

(* Scan [v]'s adjacency against the filter, slot by slot (a self-loop
   contributes both slots, matching [Compact.count]).  [account] is set
   only on the step path so accessor calls never disturb the FP stats. *)
let approx_count ?(account = false) t a v =
  let deg = Graph.degree t.g v in
  let c = ref 0 in
  for i = 0 to deg - 1 do
    let e = Graph.neighbor_edge t.g v i in
    let believed = Bloom.mem a.filter e in
    if account && not (Coverage.edge_visited t.coverage e) then begin
      a.unvisited_queries <- a.unvisited_queries + 1;
      if believed then a.fp_hits <- a.fp_hits + 1
    end;
    if not believed then incr c
  done;
  !c

let approx_nth t a v idx =
  let deg = Graph.degree t.g v in
  let seen = ref 0 and found = ref (-1) and i = ref 0 in
  while !found < 0 && !i < deg do
    if not (Bloom.mem a.filter (Graph.neighbor_edge t.g v !i)) then begin
      if !seen = idx then found := Graph.adj_start t.g v + !i;
      incr seen
    end;
    incr i
  done;
  assert (!found >= 0);
  !found

let approx_last t a v =
  let deg = Graph.degree t.g v in
  let found = ref (-1) and i = ref (deg - 1) in
  while !found < 0 && !i >= 0 do
    if not (Bloom.mem a.filter (Graph.neighbor_edge t.g v !i)) then
      found := Graph.adj_start t.g v + !i;
    decr i
  done;
  assert (!found >= 0);
  !found

let blue_degree t v =
  match t.marks with
  | Exact c -> Compact.count c v
  | Approx a -> approx_count t a v

let unvisited_incident t v =
  match t.marks with
  | Exact c -> Compact.incident_edges c v
  | Approx a ->
      let deg = Graph.degree t.g v in
      let seen = Hashtbl.create (2 * deg) in
      let out = ref [] in
      for i = deg - 1 downto 0 do
        let e = Graph.neighbor_edge t.g v i in
        if (not (Bloom.mem a.filter e)) && not (Hashtbl.mem seen e) then begin
          Hashtbl.add seen e ();
          out := e :: !out
        end
      done;
      Array.of_list !out

let in_blue_phase t = blue_degree t t.pos > 0

let approx_mode t =
  match t.marks with
  | Exact _ -> None
  | Approx a ->
      Some
        (Bloom
           {
             bits_per_edge = Bloom.size a.filter / max 1 (Graph.m t.g);
             hashes = Bloom.hashes a.filter;
           })

let approx_filter t =
  match t.marks with Exact _ -> None | Approx a -> Some a.filter

let approx_distortion t =
  match t.marks with
  | Exact _ -> None
  | Approx a -> Some (a.fp_hits, a.unvisited_queries)

let set_observer t obs = t.observer <- obs
let set_phase_observer t obs = t.phase_observer <- obs

let emit_phase t kind =
  match (t.observer, t.phase_observer) with
  | None, None -> ()
  | o, po ->
      let ev =
        Ewalk_obs.Trace.Phase
          {
            step = t.steps;
            kind =
              (match kind with
              | Blue -> Ewalk_obs.Trace.Blue
              | Red -> Ewalk_obs.Trace.Red);
            vertex = t.pos;
          }
      in
      (match o with Some f -> f ev | None -> ());
      (match po with Some f -> f ev | None -> ())

let record_phase_transition t next_is_blue =
  let now_kind = if next_is_blue then Blue else Red in
  match t.current_phase with
  | None ->
      t.current_phase <- Some (now_kind, t.steps, t.pos);
      emit_phase t now_kind
  | Some (kind, start_step, start_vertex) ->
      if kind <> now_kind then begin
        if t.record_phases then
          t.phases <-
            {
              kind;
              start_step;
              start_vertex;
              end_step = t.steps;
              end_vertex = t.pos;
            }
            :: t.phases;
        t.current_phase <- Some (now_kind, t.steps, t.pos);
        emit_phase t now_kind
      end

let choose_blue_slot_exact t c k =
  let v = t.pos in
  match t.rule with
  | Uar -> Compact.live_slot c v (Rng.int t.rng k)
  | Lowest_slot ->
      let best = ref (Compact.live_slot c v 0) in
      for i = 1 to k - 1 do
        let p = Compact.live_slot c v i in
        if p < !best then best := p
      done;
      !best
  | Highest_slot ->
      let best = ref (Compact.live_slot c v 0) in
      for i = 1 to k - 1 do
        let p = Compact.live_slot c v i in
        if p > !best then best := p
      done;
      !best
  | Adversarial f ->
      let candidates = Compact.incident_edges c v in
      let idx = f t candidates in
      let idx = max 0 (min idx (Array.length candidates - 1)) in
      Compact.slot_with_edge c v candidates.(idx)

let choose_blue_slot_approx t a k =
  let v = t.pos in
  match t.rule with
  | Uar -> approx_nth t a v (Rng.int t.rng k)
  | Lowest_slot -> approx_nth t a v 0
  | Highest_slot -> approx_last t a v
  | Adversarial f ->
      let candidates = unvisited_incident t v in
      let idx = f t candidates in
      let idx = max 0 (min idx (Array.length candidates - 1)) in
      let e = candidates.(idx) in
      let deg = Graph.degree t.g v in
      let found = ref (-1) and i = ref 0 in
      while !found < 0 && !i < deg do
        if Graph.neighbor_edge t.g v !i = e then
          found := Graph.adj_start t.g v + !i;
        incr i
      done;
      assert (!found >= 0);
      !found

let step t =
  let v = t.pos in
  let deg = Graph.degree t.g v in
  if deg = 0 then invalid_arg "Eprocess.step: isolated vertex";
  let k =
    match t.marks with
    | Exact c -> Compact.count c v
    | Approx a -> approx_count ~account:true t a v
  in
  let blue = k > 0 in
  record_phase_transition t blue;
  let slot =
    if blue then
      match t.marks with
      | Exact c -> choose_blue_slot_exact t c k
      | Approx a -> choose_blue_slot_approx t a k
    else Graph.adj_start t.g v + Rng.int t.rng deg
  in
  let w = Graph.slot_vertex t.g slot in
  let e = Graph.slot_edge t.g slot in
  t.steps <- t.steps + 1;
  if blue then begin
    t.blue_steps <- t.blue_steps + 1;
    match t.marks with
    | Exact c -> Compact.retire_edge c e
    | Approx a -> Bloom.add a.filter e
  end
  else t.red_steps <- t.red_steps + 1;
  Coverage.record_edge t.coverage ~step:t.steps e;
  t.pos <- w;
  Coverage.record_move t.coverage ~step:t.steps w;
  match t.observer with
  | None -> ()
  | Some f ->
      f (Ewalk_obs.Trace.Step { step = t.steps; vertex = w; edge = e; blue })

(* Tight driver loops for the full-scale benchmarks: the same [step]
   body in a plain counted/conditional loop, skipping the generic
   {!Cover} runner's per-step closure dispatch.  Draw-for-draw identical
   to stepping through the adapter. *)

let run_steps t k =
  if k < 0 then invalid_arg "Eprocess.run_steps: negative step count";
  for _ = 1 to k do
    step t
  done

let run_to_vertex_cover ?cap t =
  let cap = match cap with Some c -> c | None -> Cover.default_cap t.g in
  while (not (Coverage.all_vertices_visited t.coverage)) && t.steps < cap do
    step t
  done;
  Coverage.vertex_cover_step t.coverage

let run_to_edge_cover ?cap t =
  let cap = match cap with Some c -> c | None -> Cover.default_cap t.g in
  while (not (Coverage.all_edges_visited t.coverage)) && t.steps < cap do
    step t
  done;
  Coverage.edge_cover_step t.coverage

let phase_log t = List.rev t.phases

type rule_id = [ `Uar | `Lowest_slot | `Highest_slot ]

type checkpoint = {
  ck_rule : rule_id;
  ck_pos : Graph.vertex;
  ck_steps : int;
  ck_blue_steps : int;
  ck_red_steps : int;
  ck_rng : int64 array;
  ck_coverage : Coverage.state;
  ck_unvisited : Unvisited.state;
  ck_record_phases : bool;
  ck_current_phase : (phase_kind * int * Graph.vertex) option;
  ck_phases : phase list;
}

let checkpoint t =
  let ck_rule =
    match t.rule with
    | Uar -> `Uar
    | Lowest_slot -> `Lowest_slot
    | Highest_slot -> `Highest_slot
    | Adversarial _ ->
        invalid_arg
          "Eprocess.checkpoint: an adversarial rule is a closure and cannot \
           be serialized"
  in
  let ck_unvisited =
    match t.marks with
    | Exact c -> Compact.save c
    | Approx _ ->
        invalid_arg
          "Eprocess.checkpoint: the Bloom visited mode is lossy and cannot \
           be serialized"
  in
  {
    ck_rule;
    ck_pos = t.pos;
    ck_steps = t.steps;
    ck_blue_steps = t.blue_steps;
    ck_red_steps = t.red_steps;
    ck_rng = Rng.save t.rng;
    ck_coverage = Coverage.save t.coverage;
    ck_unvisited;
    ck_record_phases = t.record_phases;
    ck_current_phase = t.current_phase;
    ck_phases = List.rev t.phases;
  }

let of_checkpoint g ck =
  if ck.ck_pos < 0 || ck.ck_pos >= Graph.n g then
    invalid_arg "Eprocess.of_checkpoint: position out of range";
  if
    ck.ck_steps < 0 || ck.ck_blue_steps < 0 || ck.ck_red_steps < 0
    || ck.ck_blue_steps + ck.ck_red_steps <> ck.ck_steps
  then invalid_arg "Eprocess.of_checkpoint: inconsistent step counters";
  {
    g;
    rng = Rng.restore ck.ck_rng;
    rule =
      (match ck.ck_rule with
      | `Uar -> Uar
      | `Lowest_slot -> Lowest_slot
      | `Highest_slot -> Highest_slot);
    pos = ck.ck_pos;
    steps = ck.ck_steps;
    blue_steps = ck.ck_blue_steps;
    red_steps = ck.ck_red_steps;
    coverage = Coverage.restore g ck.ck_coverage;
    marks = Exact (Compact.restore g ck.ck_unvisited);
    record_phases = ck.ck_record_phases;
    current_phase = ck.ck_current_phase;
    phases = List.rev ck.ck_phases;
    observer = None;
    phase_observer = None;
  }

let process t =
  let base =
    match t.rule with
    | Uar -> "e-process(uar)"
    | Lowest_slot -> "e-process(lowest-slot)"
    | Highest_slot -> "e-process(highest-slot)"
    | Adversarial _ -> "e-process(adversarial)"
  in
  {
    Cover.name =
      (match t.marks with Exact _ -> base | Approx _ -> base ^ "[bloom]");
    graph = t.g;
    position = (fun () -> t.pos);
    step = (fun () -> step t);
    steps_done = (fun () -> t.steps);
    coverage = t.coverage;
  }
