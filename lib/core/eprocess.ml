open Ewalk_graph
module Rng = Ewalk_prng.Rng

type t = {
  g : Graph.t;
  rng : Rng.t;
  rule : rule;
  mutable pos : Graph.vertex;
  mutable steps : int;
  mutable blue_steps : int;
  mutable red_steps : int;
  coverage : Coverage.t;
  unvisited : Unvisited.t;
  record_phases : bool;
  mutable current_phase : (phase_kind * int * Graph.vertex) option;
  mutable phases : phase list; (* reversed *)
  mutable observer : (Ewalk_obs.Trace.event -> unit) option;
  mutable phase_observer : (Ewalk_obs.Trace.event -> unit) option;
}

and rule =
  | Uar
  | Lowest_slot
  | Highest_slot
  | Adversarial of (t -> Graph.edge array -> int)

and phase_kind = Blue | Red

and phase = {
  kind : phase_kind;
  start_step : int;
  start_vertex : Graph.vertex;
  end_step : int;
  end_vertex : Graph.vertex;
}

let create ?(rule = Uar) ?(record_phases = false) g rng ~start =
  if Graph.n g = 0 then invalid_arg "Eprocess.create: empty graph";
  if start < 0 || start >= Graph.n g then
    invalid_arg "Eprocess.create: start out of range";
  let coverage = Coverage.create g in
  Coverage.record_start coverage start;
  {
    g;
    rng;
    rule;
    pos = start;
    steps = 0;
    blue_steps = 0;
    red_steps = 0;
    coverage;
    unvisited = Unvisited.create g;
    record_phases;
    current_phase = None;
    phases = [];
    observer = None;
    phase_observer = None;
  }

let graph t = t.g
let position t = t.pos
let steps t = t.steps
let blue_steps t = t.blue_steps
let red_steps t = t.red_steps
let coverage t = t.coverage
let blue_degree t v = Unvisited.count t.unvisited v
let unvisited_incident t v = Unvisited.incident_edges t.unvisited v
let in_blue_phase t = Unvisited.count t.unvisited t.pos > 0

let set_observer t obs = t.observer <- obs
let set_phase_observer t obs = t.phase_observer <- obs

let emit_phase t kind =
  match (t.observer, t.phase_observer) with
  | None, None -> ()
  | o, po ->
      let ev =
        Ewalk_obs.Trace.Phase
          {
            step = t.steps;
            kind =
              (match kind with
              | Blue -> Ewalk_obs.Trace.Blue
              | Red -> Ewalk_obs.Trace.Red);
            vertex = t.pos;
          }
      in
      (match o with Some f -> f ev | None -> ());
      (match po with Some f -> f ev | None -> ())

let record_phase_transition t next_is_blue =
  let now_kind = if next_is_blue then Blue else Red in
  match t.current_phase with
  | None ->
      t.current_phase <- Some (now_kind, t.steps, t.pos);
      emit_phase t now_kind
  | Some (kind, start_step, start_vertex) ->
      if kind <> now_kind then begin
        if t.record_phases then
          t.phases <-
            {
              kind;
              start_step;
              start_vertex;
              end_step = t.steps;
              end_vertex = t.pos;
            }
            :: t.phases;
        t.current_phase <- Some (now_kind, t.steps, t.pos);
        emit_phase t now_kind
      end

let choose_blue_slot t =
  let v = t.pos in
  let k = Unvisited.count t.unvisited v in
  match t.rule with
  | Uar -> Unvisited.live_slot t.unvisited v (Rng.int t.rng k)
  | Lowest_slot ->
      let best = ref (Unvisited.live_slot t.unvisited v 0) in
      for i = 1 to k - 1 do
        let p = Unvisited.live_slot t.unvisited v i in
        if p < !best then best := p
      done;
      !best
  | Highest_slot ->
      let best = ref (Unvisited.live_slot t.unvisited v 0) in
      for i = 1 to k - 1 do
        let p = Unvisited.live_slot t.unvisited v i in
        if p > !best then best := p
      done;
      !best
  | Adversarial f ->
      let candidates = unvisited_incident t v in
      let idx = f t candidates in
      let idx = max 0 (min idx (Array.length candidates - 1)) in
      Unvisited.slot_with_edge t.unvisited v candidates.(idx)

let step t =
  let v = t.pos in
  let deg = Graph.degree t.g v in
  if deg = 0 then invalid_arg "Eprocess.step: isolated vertex";
  let blue = Unvisited.count t.unvisited v > 0 in
  record_phase_transition t blue;
  let slot =
    if blue then choose_blue_slot t
    else Graph.adj_start t.g v + Rng.int t.rng deg
  in
  let w = Graph.slot_vertex t.g slot in
  let e = Graph.slot_edge t.g slot in
  t.steps <- t.steps + 1;
  if blue then begin
    t.blue_steps <- t.blue_steps + 1;
    Unvisited.retire_edge t.unvisited e
  end
  else t.red_steps <- t.red_steps + 1;
  Coverage.record_edge t.coverage ~step:t.steps e;
  t.pos <- w;
  Coverage.record_move t.coverage ~step:t.steps w;
  match t.observer with
  | None -> ()
  | Some f ->
      f (Ewalk_obs.Trace.Step { step = t.steps; vertex = w; edge = e; blue })

let phase_log t = List.rev t.phases

type rule_id = [ `Uar | `Lowest_slot | `Highest_slot ]

type checkpoint = {
  ck_rule : rule_id;
  ck_pos : Graph.vertex;
  ck_steps : int;
  ck_blue_steps : int;
  ck_red_steps : int;
  ck_rng : int64 array;
  ck_coverage : Coverage.state;
  ck_unvisited : Unvisited.state;
  ck_record_phases : bool;
  ck_current_phase : (phase_kind * int * Graph.vertex) option;
  ck_phases : phase list;
}

let checkpoint t =
  let ck_rule =
    match t.rule with
    | Uar -> `Uar
    | Lowest_slot -> `Lowest_slot
    | Highest_slot -> `Highest_slot
    | Adversarial _ ->
        invalid_arg
          "Eprocess.checkpoint: an adversarial rule is a closure and cannot \
           be serialized"
  in
  {
    ck_rule;
    ck_pos = t.pos;
    ck_steps = t.steps;
    ck_blue_steps = t.blue_steps;
    ck_red_steps = t.red_steps;
    ck_rng = Rng.save t.rng;
    ck_coverage = Coverage.save t.coverage;
    ck_unvisited = Unvisited.save t.unvisited;
    ck_record_phases = t.record_phases;
    ck_current_phase = t.current_phase;
    ck_phases = List.rev t.phases;
  }

let of_checkpoint g ck =
  if ck.ck_pos < 0 || ck.ck_pos >= Graph.n g then
    invalid_arg "Eprocess.of_checkpoint: position out of range";
  if
    ck.ck_steps < 0 || ck.ck_blue_steps < 0 || ck.ck_red_steps < 0
    || ck.ck_blue_steps + ck.ck_red_steps <> ck.ck_steps
  then invalid_arg "Eprocess.of_checkpoint: inconsistent step counters";
  {
    g;
    rng = Rng.restore ck.ck_rng;
    rule =
      (match ck.ck_rule with
      | `Uar -> Uar
      | `Lowest_slot -> Lowest_slot
      | `Highest_slot -> Highest_slot);
    pos = ck.ck_pos;
    steps = ck.ck_steps;
    blue_steps = ck.ck_blue_steps;
    red_steps = ck.ck_red_steps;
    coverage = Coverage.restore g ck.ck_coverage;
    unvisited = Unvisited.restore g ck.ck_unvisited;
    record_phases = ck.ck_record_phases;
    current_phase = ck.ck_current_phase;
    phases = List.rev ck.ck_phases;
    observer = None;
    phase_observer = None;
  }

let process t =
  {
    Cover.name =
      (match t.rule with
      | Uar -> "e-process(uar)"
      | Lowest_slot -> "e-process(lowest-slot)"
      | Highest_slot -> "e-process(highest-slot)"
      | Adversarial _ -> "e-process(adversarial)");
    graph = t.g;
    position = (fun () -> t.pos);
    step = (fun () -> step t);
    steps_done = (fun () -> t.steps);
    coverage = t.coverage;
  }
