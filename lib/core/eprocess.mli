(** The E-process: a random walk that prefers unvisited edges.

    This is the paper's object of study.  At each step, if the current
    vertex has unvisited ("blue") incident edges, the process moves along
    one of them — chosen by an arbitrary {!rule} [A] — and marks it visited
    ("red"); otherwise it performs a plain simple-random-walk step along a
    uniformly random incident (necessarily red) edge.

    Theorem 1's cover-time bound is independent of the rule, including
    adversarial online rules, which is why the rule is a first-class
    parameter here.

    The unvisited-edge bookkeeping is O(1) per step for the uniform rule
    (swap-partition over adjacency slots) and O(degree) for the scanning
    rules — constant for the bounded-degree graphs the theorems cover.

    The process also tracks the red/blue {e phase} structure used throughout
    the paper's proofs: a blue phase is a maximal run of unvisited-edge
    transitions, a red phase a maximal run of random-walk transitions.
    Observation 10 (blue phases on even-degree graphs end where they began)
    is checked by the test suite through {!phase_log}. *)

open Ewalk_graph

type t

type rule =
  | Uar  (** uniform among unvisited incident edges — the "greedy random
             walk" of Orenshtein–Shinkar *)
  | Lowest_slot
      (** deterministic: first unvisited edge in adjacency order *)
  | Highest_slot
      (** deterministic: last unvisited edge in adjacency order *)
  | Adversarial of (t -> Graph.edge array -> int)
      (** online adversary: sees the full process state and the candidate
          unvisited incident edges, returns the index of its choice.  An
          out-of-range answer is clamped. *)

type phase_kind = Blue | Red

type phase = {
  kind : phase_kind;
  start_step : int; (** step count when the phase began *)
  start_vertex : Graph.vertex;
  end_step : int; (** step count when the phase ended *)
  end_vertex : Graph.vertex;
}

type approx = Bloom of { bits_per_edge : int; hashes : int }
(** Opt-in approximate visited tracking for memory-constrained runs: a
    {!Bloom} filter of [bits_per_edge * m] bits (at least 8) with the
    given probe count replaces the exact unvisited-arc partition.  False
    positives make the process believe an unvisited edge is visited and
    skip it — a blue step degrades to a red one — so cover still
    completes but the blue/red split is distorted; {!approx_distortion}
    measures by how much against the exact {!Coverage} table, which
    stays ground truth.  Approx processes are not checkpointable. *)

val create :
  ?rule:rule -> ?record_phases:bool -> ?approx:approx -> Graph.t ->
  Ewalk_prng.Rng.t -> start:Graph.vertex -> t
(** [create g rng ~start] initialises the process at [start] with every edge
    unvisited.  Default rule: {!Uar}.  [record_phases] (default [false])
    retains the full phase log for invariant checking.  [approx] (default
    exact) switches visited tracking to a Bloom filter.
    @raise Invalid_argument if [start] is out of range, [g] has no
    vertices, or the approx parameters are degenerate. *)

val graph : t -> Graph.t
val position : t -> Graph.vertex
val steps : t -> int
(** Total transitions so far ([blue_steps + red_steps]). *)

val blue_steps : t -> int
(** Transitions along previously unvisited edges. *)

val red_steps : t -> int
(** Simple-random-walk transitions (the embedded walk [W] of Obs. 12). *)

val coverage : t -> Coverage.t

val blue_degree : t -> Graph.vertex -> int
(** Number of unvisited edges incident with the vertex right now. *)

val unvisited_incident : t -> Graph.vertex -> Graph.edge array
(** The unvisited incident edges (fresh array, unspecified order). *)

val in_blue_phase : t -> bool
(** [true] iff the {e next} transition would follow an unvisited edge. *)

val approx_mode : t -> approx option
(** The approximate-visited configuration, [None] for an exact process.
    [bits_per_edge] is recovered as [size/m] and may round down from the
    value passed to {!create}. *)

val approx_filter : t -> Bloom.t option
(** The live filter of an approx process (shared, not a copy). *)

val approx_distortion : t -> (int * int) option
(** [(fp_hits, unvisited_queries)]: of the step-path membership queries
    against truly-unvisited edges so far, how many the filter wrongly
    reported visited.  [None] for an exact process. *)

val step : t -> unit
(** Perform one transition.  @raise Invalid_argument if the current vertex
    is isolated. *)

val run_steps : t -> int -> unit
(** [run_steps t k]: [k] transitions in a tight loop — draw-for-draw
    identical to [k] calls of {!step}, without the generic runner's
    per-step closure dispatch.  The full-scale benchmark path. *)

val run_to_vertex_cover : ?cap:int -> t -> int option
(** Step until every vertex is visited (or [cap] steps, default
    {!Cover.default_cap}); returns the cover step if reached. *)

val run_to_edge_cover : ?cap:int -> t -> int option

val set_observer : t -> (Ewalk_obs.Trace.event -> unit) option -> unit
(** Install (or remove, with [None]) a per-step trace observer.  With an
    observer present, every transition emits a {!Ewalk_obs.Trace.Step}
    event and every Blue/Red phase boundary a [Phase] event — independent
    of [record_phases].  The default ([None]) costs one pattern match per
    step; use {!Observe.attach_eprocess} rather than calling this
    directly. *)

val set_phase_observer : t -> (Ewalk_obs.Trace.event -> unit) option -> unit
(** Install (or remove) an observer that sees {e only} [Phase] boundary
    events — no per-step [Step] allocation.  This is the metrics fast
    path's hook: phase transitions are rare (one per maximal blue/red
    run), so phase accounting can stay event-driven while step counting
    reads the process's native counters.  Independent of, and composable
    with, {!set_observer}: with both installed a phase boundary reaches
    the full observer first. *)

val phase_log : t -> phase list
(** Completed phases in chronological order ([] unless [record_phases]).
    The phase currently in progress is not included. *)

val process : t -> Cover.process
(** Adapter for the generic runners in {!Cover}. *)

(** {2 Checkpointing} *)

type rule_id = [ `Uar | `Lowest_slot | `Highest_slot ]
(** Serializable rules.  {!Adversarial} carries a closure and is excluded. *)

type checkpoint = {
  ck_rule : rule_id;
  ck_pos : Graph.vertex;
  ck_steps : int;
  ck_blue_steps : int;
  ck_red_steps : int;
  ck_rng : int64 array;
  ck_coverage : Coverage.state;
  ck_unvisited : Unvisited.state;
  ck_record_phases : bool;
  ck_current_phase : (phase_kind * int * Graph.vertex) option;
  ck_phases : phase list;
}
(** Complete plain-data process state: continuing from a restored
    checkpoint is bit-identical to never having stopped. *)

val checkpoint : t -> checkpoint
(** Capture the full state (PRNG words included).
    @raise Invalid_argument on an {!Adversarial} rule. *)

val of_checkpoint : Graph.t -> checkpoint -> t
(** Rebuild a process over [g].  The observer is not restored; re-attach
    one with {!set_observer} / {!Observe.attach_eprocess} if needed.
    @raise Invalid_argument if the checkpoint does not fit the graph or
    its counters are inconsistent. *)
