module Metrics = Ewalk_obs.Metrics
module Trace = Ewalk_obs.Trace

type t = { metrics_ : Metrics.t option; sink_ : Trace.sink }

let create ?metrics ?(sink = Trace.null) () = { metrics_ = metrics; sink_ = sink }
let metrics t = t.metrics_
let sink t = t.sink_

let is_noop t =
  (match t.metrics_ with None -> true | Some _ -> false)
  && Trace.is_null t.sink_

(* Shared event interpreter for the native per-step hooks: fold the event
   stream into the registry, then forward to the sink (skipping event
   forwarding — but not metric updates — when the sink is null). *)
let recorder t =
  let forward = not (Trace.is_null t.sink_) in
  let update =
    match t.metrics_ with
    | None -> ignore
    | Some m ->
        let blue_c = Metrics.counter m "blue_steps" in
        let red_c = Metrics.counter m "red_steps" in
        let phases_blue = Metrics.counter m "phases_blue" in
        let phases_red = Metrics.counter m "phases_red" in
        let phase_len = Metrics.histogram m "phase_length" in
        let open_phase = ref None in
        fun (ev : Trace.event) ->
          (match ev with
          | Trace.Step { blue; _ } ->
              Metrics.incr (if blue then blue_c else red_c)
          | Trace.Phase { step; kind; _ } ->
              (match !open_phase with
              | Some start -> Metrics.observe phase_len (float_of_int (step - start))
              | None -> ());
              open_phase := Some step;
              Metrics.incr
                (match kind with
                | Trace.Blue -> phases_blue
                | Trace.Red -> phases_red)
          | _ -> ())
  in
  fun ev ->
    update ev;
    if forward then Trace.emit t.sink_ ev

let attach_eprocess t p =
  if not (is_noop t) then Eprocess.set_observer p (Some (recorder t))

let attach_srw t p =
  if not (is_noop t) then Srw.set_observer p (Some (recorder t))

let attach_rotor t p =
  if not (is_noop t) then Rotor.set_observer p (Some (recorder t))

(* Ceiling of [pct]% of [total]. *)
let target ~total pct = ((pct * total) + 99) / 100

let percents = [ 25; 50; 75; 100 ]

let instrument ?resumed_at t (p : Cover.process) =
  if is_noop t then p
  else begin
    let cov = p.coverage in
    let n = Coverage.total_vertices cov and m = Coverage.total_edges cov in
    Trace.emit t.sink_
      (Trace.Run_start { name = p.name; n; m; start = p.position () });
    (match resumed_at with
    | Some step -> Trace.emit t.sink_ (Trace.Resume { step })
    | None -> ());
    (match t.metrics_ with
    | None -> ()
    | Some reg ->
        Metrics.set (Metrics.gauge reg "graph_vertices") (float_of_int n);
        Metrics.set (Metrics.gauge reg "graph_edges") (float_of_int m));
    let steps_c =
      match t.metrics_ with
      | None -> None
      | Some reg -> Some (Metrics.counter reg "steps")
    in
    (* Pending milestone thresholds, in crossing order: the per-step check
       is one integer comparison against the head target. *)
    let pending total =
      ref
        (if total = 0 then []
         else List.map (fun pct -> (pct, target ~total pct)) percents)
    in
    let pending_v = pending n and pending_e = pending m in
    let check pending kind count total ~step =
      let rec go () =
        match !pending with
        | (pct, tgt) :: rest when count >= tgt ->
            pending := rest;
            Trace.emit t.sink_
              (Trace.Milestone { step; kind; percent = pct; count; total });
            go ()
        | _ -> ()
      in
      go ()
    in
    let milestones step =
      check pending_v Trace.Vertices (Coverage.vertices_visited cov) n ~step;
      check pending_e Trace.Edges (Coverage.edges_visited cov) m ~step
    in
    (match resumed_at with
    | None ->
        (* The start vertex may already put tiny graphs past a threshold. *)
        milestones (p.steps_done ())
    | Some _ ->
        (* Resumed run: thresholds the pre-resume segment already crossed
           were announced in the original trace — drop them silently so
           only new crossings emit. *)
        let drop pending count =
          let rec go () =
            match !pending with
            | (_, tgt) :: rest when count >= tgt ->
                pending := rest;
                go ()
            | _ -> ()
          in
          go ()
        in
        drop pending_v (Coverage.vertices_visited cov);
        drop pending_e (Coverage.edges_visited cov));
    Cover.with_step_hook p ~hook:(fun p ->
        (match steps_c with Some c -> Metrics.incr c | None -> ());
        milestones (p.steps_done ()))
  end

let finish t (p : Cover.process) =
  if not (is_noop t) then begin
    let cov = p.coverage in
    (match t.metrics_ with
    | None -> ()
    | Some reg ->
        Metrics.set
          (Metrics.gauge reg "coverage_vertex_fraction")
          (Coverage.vertex_fraction cov);
        Metrics.set
          (Metrics.gauge reg "coverage_edge_fraction")
          (Coverage.edge_fraction cov);
        Metrics.set
          (Metrics.gauge reg "frontier_unvisited_vertices")
          (float_of_int
             (Coverage.total_vertices cov - Coverage.vertices_visited cov));
        Metrics.set
          (Metrics.gauge reg "frontier_unvisited_edges")
          (float_of_int (Coverage.total_edges cov - Coverage.edges_visited cov)));
    Trace.emit t.sink_
      (Trace.Run_end
         {
           steps = p.steps_done ();
           covered = Coverage.all_vertices_visited cov;
         })
  end
