module Metrics = Ewalk_obs.Metrics
module Shard = Ewalk_obs.Shard
module Trace = Ewalk_obs.Trace

(* The bundle splits into a shared half (registry + sink, safe to pass
   across pool lanes) and a cheap per-trial view carrying the trial
   sequence number (for deterministic gauge resolution) and the drain
   closures of the fast path.  [for_trial] mints a view; the view handed
   out by [create] is trial 0. *)

type shared = { metrics_ : Metrics.t option; sink_ : Trace.sink }

type t = {
  sh : shared;
  seq : int;
  mutable drains : (unit -> unit) list;
      (* Fast-path publishers: each reads a process's native counters and
         pushes the delta since its last run into the sharded metrics.
         Run every [drain_mask + 1] steps, and once more at [finish].
         Owned by the lane running the trial — never shared. *)
}

let create ?metrics ?(sink = Trace.null) () =
  { sh = { metrics_ = metrics; sink_ = sink }; seq = 0; drains = [] }

let for_trial t ~trial = { sh = t.sh; seq = trial; drains = [] }
let metrics t = t.sh.metrics_
let sink t = t.sh.sink_

let is_noop t =
  (match t.sh.metrics_ with None -> true | Some _ -> false)
  && Trace.is_null t.sh.sink_

(* Metrics with a null sink: nothing wants per-step events, so nothing
   per-step should be allocated — counters drain from the processes'
   native fields and phases ride the (rare) phase-boundary observer. *)
let is_fast t =
  Trace.is_null t.sh.sink_
  && match t.sh.metrics_ with Some _ -> true | None -> false

let drain_mask = 4095
(* Between drains the registry lags the walk by at most this many steps —
   small enough for a live /metrics poll, large enough to amortise to
   nothing per step. *)

let run_drains t = List.iter (fun f -> f ()) t.drains

(* Phase accounting shared by both paths: count boundaries, observe the
   completed phase's length. *)
let phase_tracker m =
  let phases_blue = Shard.counter m "phases_blue" in
  let phases_red = Shard.counter m "phases_red" in
  let phase_len = Shard.histogram m "phase_length" in
  let open_phase = ref None in
  fun (ev : Trace.event) ->
    match ev with
    | Trace.Phase { step; kind; _ } ->
        (match !open_phase with
        | Some start -> Shard.observe phase_len (float_of_int (step - start))
        | None -> ());
        open_phase := Some step;
        Shard.incr
          (match kind with
          | Trace.Blue -> phases_blue
          | Trace.Red -> phases_red)
    | _ -> ()

(* Shared event interpreter for the native per-step hooks when a live
   sink wants the events anyway: fold the stream into the (sharded)
   registry, then forward. *)
let recorder t =
  let forward = not (Trace.is_null t.sh.sink_) in
  let update =
    match t.sh.metrics_ with
    | None -> ignore
    | Some m ->
        let blue_c = Shard.counter m "blue_steps" in
        let red_c = Shard.counter m "red_steps" in
        let phases = phase_tracker m in
        fun (ev : Trace.event) ->
          (match ev with
          | Trace.Step { blue; _ } -> Shard.incr (if blue then blue_c else red_c)
          | Trace.Phase _ -> phases ev
          | _ -> ())
  in
  fun ev ->
    update ev;
    if forward then Trace.emit t.sh.sink_ ev

let register_drain t f = t.drains <- f :: t.drains
let event_recorder = recorder

let phase_event_tracker t =
  match t.sh.metrics_ with Some m -> Some (phase_tracker m) | None -> None

(* Publish the delta of a monotone native counter into a sharded one. *)
let delta_drain shard read =
  let last = ref (read ()) in
  (* The pre-attach value is already in the count the caller expects only
     when it is 0; a resumed process starts with history we must not
     re-add, so the initial read is the baseline either way. *)
  fun () ->
    let now = read () in
    Shard.add shard (now - !last);
    last := now

let attach_eprocess t p =
  if not (is_noop t) then
    if is_fast t then begin
      let m = Option.get t.sh.metrics_ in
      let blue_c = Shard.counter m "blue_steps" in
      let red_c = Shard.counter m "red_steps" in
      t.drains <-
        delta_drain blue_c (fun () -> Eprocess.blue_steps p)
        :: delta_drain red_c (fun () -> Eprocess.red_steps p)
        :: t.drains;
      Eprocess.set_phase_observer p (Some (phase_tracker m))
    end
    else Eprocess.set_observer p (Some (recorder t))

let attach_srw t p =
  if not (is_noop t) then Srw.set_observer p (Some (recorder t))

let attach_rotor t p =
  if not (is_noop t) then Rotor.set_observer p (Some (recorder t))

(* Ceiling of [pct]% of [total]. *)
let target ~total pct = ((pct * total) + 99) / 100

let percents = [ 25; 50; 75; 100 ]

let instrument ?resumed_at t (p : Cover.process) =
  if is_noop t then p
  else begin
    let cov = p.coverage in
    let fast = is_fast t in
    let n = Coverage.total_vertices cov and m = Coverage.total_edges cov in
    if not fast then begin
      Trace.emit t.sh.sink_
        (Trace.Run_start { name = p.name; n; m; start = p.position () });
      (match Ewalk_obs.Runlog.current () with
      | Some r ->
          Trace.emit t.sh.sink_
            (Trace.Run_info
               {
                 run_id = r.Ewalk_obs.Runlog.run_id;
                 parent_run_id = r.Ewalk_obs.Runlog.parent_run_id;
               })
      | None -> ());
      match resumed_at with
      | Some step -> Trace.emit t.sh.sink_ (Trace.Resume { step })
      | None -> ()
    end;
    (match t.sh.metrics_ with
    | None -> ()
    | Some reg ->
        Metrics.set_at (Metrics.gauge reg "graph_vertices") ~seq:t.seq
          (float_of_int n);
        Metrics.set_at (Metrics.gauge reg "graph_edges") ~seq:t.seq
          (float_of_int m));
    (match t.sh.metrics_ with
    | None -> ()
    | Some reg ->
        let steps_c = Shard.counter reg "steps" in
        (* Coverage gauges ride the drain too, so a mid-run registry read
           (the --listen /progress endpoint) sees fractions at most one
           drain interval old, not just the final values. *)
        let cov_v = Metrics.gauge reg "coverage_vertex_fraction" in
        let cov_e = Metrics.gauge reg "coverage_edge_fraction" in
        (* The steps drain doubles as the throughput sampler's feed: the
           delta is already in hand once per drain interval, so the
           steps/second time series costs nothing on the per-step path. *)
        let steps_drain =
          let last = ref (p.steps_done ()) in
          fun () ->
            let now = p.steps_done () in
            let d = now - !last in
            Shard.add steps_c d;
            Ewalk_obs.Throughput.add d;
            last := now
        in
        t.drains <-
          steps_drain
          :: (fun () ->
               Metrics.set_at cov_v ~seq:t.seq (Coverage.vertex_fraction cov);
               Metrics.set_at cov_e ~seq:t.seq (Coverage.edge_fraction cov))
          :: t.drains);
    if fast then begin
      (* Null sink: milestone events would go nowhere, so nothing
         coverage-related is computed per step.  The whole per-step
         budget is one countdown decrement; every drain_mask+1 steps the
         registered drains publish counter deltas and coverage gauges.
         This is what keeps the metrics-enabled stepping kernel inside
         its 5% bench budget. *)
      let countdown = ref (drain_mask + 1) in
      Cover.with_step_hook p ~hook:(fun _ ->
          decr countdown;
          if !countdown = 0 then begin
            countdown := drain_mask + 1;
            run_drains t
          end)
    end
    else begin
      (* Pending milestone thresholds, in crossing order: the per-step
         check is one integer comparison against the head target. *)
      let pending total =
        ref
          (if total = 0 then []
           else List.map (fun pct -> (pct, target ~total pct)) percents)
      in
      let pending_v = pending n and pending_e = pending m in
      let check pending kind count total ~step =
        let rec go () =
          match !pending with
          | (pct, tgt) :: rest when count >= tgt ->
              pending := rest;
              Trace.emit t.sh.sink_
                (Trace.Milestone { step; kind; percent = pct; count; total });
              go ()
          | _ -> ()
        in
        go ()
      in
      let milestones step =
        check pending_v Trace.Vertices (Coverage.vertices_visited cov) n ~step;
        check pending_e Trace.Edges (Coverage.edges_visited cov) m ~step
      in
      (match resumed_at with
      | None ->
          (* The start vertex may already put tiny graphs past a threshold. *)
          milestones (p.steps_done ())
      | Some _ ->
          (* Resumed run: thresholds the pre-resume segment already crossed
             were announced in the original trace — drop them silently so
             only new crossings emit. *)
          let drop pending count =
            let rec go () =
              match !pending with
              | (_, tgt) :: rest when count >= tgt ->
                  pending := rest;
                  go ()
              | _ -> ()
            in
            go ()
          in
          drop pending_v (Coverage.vertices_visited cov);
          drop pending_e (Coverage.edges_visited cov));
      match t.sh.metrics_ with
      | Some _ ->
          Cover.with_step_hook p ~hook:(fun p ->
              let steps = p.steps_done () in
              milestones steps;
              if steps land drain_mask = 0 then run_drains t)
      | None ->
          Cover.with_step_hook p ~hook:(fun p -> milestones (p.steps_done ()))
    end
  end

let flush t =
  if not (is_noop t) then begin
    run_drains t;
    match t.sh.metrics_ with
    | Some _ -> Ewalk_obs.Shard.flush_local ()
    | None -> ()
  end

let finish t (p : Cover.process) =
  if not (is_noop t) then begin
    let cov = p.coverage in
    run_drains t;
    (match t.sh.metrics_ with
    | None -> ()
    | Some reg ->
        Ewalk_obs.Shard.flush_local ();
        let set name v = Metrics.set_at (Metrics.gauge reg name) ~seq:t.seq v in
        set "coverage_vertex_fraction" (Coverage.vertex_fraction cov);
        set "coverage_edge_fraction" (Coverage.edge_fraction cov);
        set "frontier_unvisited_vertices"
          (float_of_int
             (Coverage.total_vertices cov - Coverage.vertices_visited cov));
        set "frontier_unvisited_edges"
          (float_of_int (Coverage.total_edges cov - Coverage.edges_visited cov)));
    if not (Trace.is_null t.sh.sink_) then
      Trace.emit t.sh.sink_
        (Trace.Run_end
           {
             steps = p.steps_done ();
             covered = Coverage.all_vertices_visited cov;
           })
  end
