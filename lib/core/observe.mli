(** Observability wiring: one bundle connecting any walk process to the
    {!Ewalk_obs} metrics registry and trace sinks.

    An {!t} is a (metrics, sink) pair.  Two attachment layers exist, and
    they compose:

    - {!instrument} wraps {e any} {!Cover.process} at the generic choke
      point ({!Cover.with_step_hook}): it emits [Run_start], watches the
      shared {!Coverage} for 25/50/75/100% vertex- and edge-coverage
      milestones, and maintains the process-agnostic metrics
      ([steps], [coverage_vertex_fraction], [coverage_edge_fraction],
      [frontier_unvisited_vertices], [frontier_unvisited_edges]).
    - {!attach_eprocess} / {!attach_srw} install the native per-step hooks
      of the processes that have them, adding [Step] and [Phase] trace
      events and the E-process-specific metrics ([blue_steps],
      [red_steps], [phases_blue], [phases_red], and the [phase_length]
      histogram).

    The no-op bundle (no metrics, null sink) is free on the hot path: the
    native attach is skipped outright (the process keeps its [None]
    observer — one pattern match per step) and {!instrument} adds only an
    integer comparison per step.  The bench harness guards this at under
    5% on the E-process stepping kernel. *)

module Metrics = Ewalk_obs.Metrics
module Trace = Ewalk_obs.Trace

type t

val create : ?metrics:Metrics.t -> ?sink:Trace.sink -> unit -> t
(** Defaults: no metrics, {!Trace.null}. *)

val metrics : t -> Metrics.t option
val sink : t -> Trace.sink

val is_noop : t -> bool
(** True iff there is nothing to record (no metrics, null sink). *)

val attach_eprocess : t -> Eprocess.t -> unit
(** Install the native E-process observer (no-op on a no-op bundle).
    Updates [blue_steps]/[red_steps] counters, phase counters and the
    [phase_length] histogram, and forwards [Step]/[Phase] events to the
    sink. *)

val attach_srw : t -> Srw.t -> unit

val attach_rotor : t -> Rotor.t -> unit
(** Install the rotor-router's native per-step observer: [Step] events
    with [blue = false] (and the [red_steps] counter).  Gives rotor
    traces the same per-step stream the verifier checks. *)

val instrument : ?resumed_at:int -> t -> Cover.process -> Cover.process
(** Generic wrapper: emits [Run_start] immediately (plus any milestone
    already crossed at attach time — the start vertex counts), then after
    every transition updates the process-agnostic metrics and emits
    milestone events as coverage crosses 25/50/75/100%.  Each call carries
    its own milestone state, so instrument each process (or trial) with a
    fresh call.

    [resumed_at] marks the process as restored from a snapshot taken at
    that step: a [Resume] event follows [Run_start], and thresholds the
    pre-resume segment already crossed are dropped silently instead of
    re-announced (the original trace carries them), so the tail stream
    stays verifiable by {!Ewalk_check.Replay}. *)

val finish : t -> Cover.process -> unit
(** Emit [Run_end] (with [covered] = all vertices visited) and push the
    final gauge values.  Call once per instrumented run. *)
