(** Observability wiring: one bundle connecting any walk process to the
    {!Ewalk_obs} metrics registry and trace sinks.

    An {!t} is a (metrics, sink) pair plus a per-trial view (see
    {!for_trial}).  Two attachment layers exist, and they compose:

    - {!instrument} wraps {e any} {!Cover.process} at the generic choke
      point ({!Cover.with_step_hook}): it watches the shared {!Coverage}
      for 25/50/75/100% vertex- and edge-coverage milestones and
      maintains the process-agnostic metrics ([steps],
      [coverage_vertex_fraction], [coverage_edge_fraction],
      [frontier_unvisited_vertices], [frontier_unvisited_edges]).
    - {!attach_eprocess} / {!attach_srw} install the native per-step
      hooks of the processes that have them, adding [Step] and [Phase]
      trace events and the E-process-specific metrics ([blue_steps],
      [red_steps], [phases_blue], [phases_red], and the [phase_length]
      histogram).

    {b Cost model.}  The no-op bundle (no metrics, null sink) is free on
    the hot path: the native attach is skipped outright and
    {!instrument} adds only an integer comparison per step.  The
    {e metrics fast path} (metrics present, null sink) is nearly as
    cheap: no per-step event is allocated and no observer closure
    installed — step counters drain in batches from the processes'
    native fields (every 4096 steps and at {!finish}) into
    {!Ewalk_obs.Shard} per-domain cells, and phase accounting rides the
    phase-boundary observer ({!Eprocess.set_phase_observer}), which
    fires once per maximal blue/red run, not per step.  Only a live sink
    pays for per-step events.  The bench harness guards both the
    null-sink and the metrics-enabled overhead at under 5% on the
    E-process stepping kernel.

    Because counters flow through {!Ewalk_obs.Shard} and registry reads
    flush pending shards first, [Metrics.snapshot] is exact at any
    quiescent point; mid-run reads (the [--listen] endpoint) lag the
    walk by at most one drain interval. *)

module Metrics = Ewalk_obs.Metrics
module Trace = Ewalk_obs.Trace

type t

val create : ?metrics:Metrics.t -> ?sink:Trace.sink -> unit -> t
(** Defaults: no metrics, {!Trace.null}.  The returned bundle is the
    trial-0 view of itself. *)

val for_trial : t -> trial:int -> t
(** A fresh per-trial view sharing the registry and sink.  Each trial of
    a (possibly parallel) sweep must attach and instrument through its
    own view: the view carries the trial's drain state, and its [trial]
    index resolves gauge races deterministically — final gauge values
    are the highest trial index's ({!Metrics.set_at}), independent of
    [--jobs]. *)

val metrics : t -> Metrics.t option
val sink : t -> Trace.sink

val is_noop : t -> bool
(** True iff there is nothing to record (no metrics, null sink). *)

val is_fast : t -> bool
(** True iff the bundle is on the metrics fast path: metrics present,
    null sink — batch-drained native counters instead of per-step
    events. *)

val register_drain : t -> (unit -> unit) -> unit
(** Add a fast-path drain to this view: called every drain interval and
    once at {!finish}.  External process kernels (see
    [Ewalk_kernel.Kobs]) use this to publish their native counters
    through the same batching the built-in processes use. *)

val event_recorder : t -> Trace.event -> unit
(** The bundle's event interpreter: folds [Step]/[Phase] events into the
    sharded counters and forwards to the sink when live.  This is the
    closure {!attach_eprocess} installs as the native observer — exposed
    so external kernels can attach the identical slow path (and produce
    byte-identical streams). *)

val phase_event_tracker : t -> (Trace.event -> unit) option
(** A fresh phase-boundary tracker over this bundle's metrics
    ([phases_blue]/[phases_red]/[phase_length]), or [None] without
    metrics.  The fast-path companion of {!event_recorder}. *)

val attach_eprocess : t -> Eprocess.t -> unit
(** Install E-process observation (no-op on a no-op bundle).  With a
    live sink: the native per-step observer, forwarding [Step]/[Phase]
    events and updating the sharded counters.  With a null sink (the
    fast path): only the phase-boundary observer plus native-counter
    drains — nothing allocated per step. *)

val attach_srw : t -> Srw.t -> unit

val attach_rotor : t -> Rotor.t -> unit
(** Install the rotor-router's native per-step observer: [Step] events
    with [blue = false] (and the [red_steps] counter).  Gives rotor
    traces the same per-step stream the verifier checks. *)

val instrument : ?resumed_at:int -> t -> Cover.process -> Cover.process
(** Generic wrapper: emits [Run_start] immediately when the sink is live
    (plus any milestone already crossed at attach time — the start
    vertex counts), then after every transition updates the
    process-agnostic metrics and emits milestone events as coverage
    crosses 25/50/75/100%.  Each call carries its own milestone state,
    so instrument each process (or trial) with a fresh {!for_trial}
    view.

    [resumed_at] marks the process as restored from a snapshot taken at
    that step: a [Resume] event follows [Run_start], and thresholds the
    pre-resume segment already crossed are dropped silently instead of
    re-announced (the original trace carries them), so the tail stream
    stays verifiable by {!Ewalk_check.Replay}. *)

val flush : t -> unit
(** Run the view's pending drains and flush the shards without touching
    process-specific state — the end-of-run publish for runs that have no
    {!Cover.process} adapter (a competing-mode kernel engine). *)

val finish : t -> Cover.process -> unit
(** Run the view's pending drains, flush the shards, push the final
    gauge values (stamped with the view's trial index), and emit
    [Run_end] when the sink is live.  Call once per instrumented run,
    on the lane that ran it. *)
