open Ewalk_graph
module Rng = Ewalk_prng.Rng

type t = {
  g : Graph.t;
  mutable pos : Graph.vertex;
  mutable steps : int;
  rotor : int array; (* per-vertex slot offset in [0, degree) *)
  coverage : Coverage.t;
  mutable observer : (Ewalk_obs.Trace.event -> unit) option;
}

let create ?(randomize_rotors = false) ?perm g rng ~start =
  if start < 0 || start >= Graph.n g then
    invalid_arg "Rotor.create: start out of range";
  let rotor =
    match perm with
    | None ->
        Array.init (Graph.n g) (fun v ->
            let deg = Graph.degree g v in
            if randomize_rotors && deg > 0 then Rng.int rng deg else 0)
    | Some perm ->
        (* [g] is a relabeling of an original graph via [perm]
           (perm.(old) = new): draw the offsets in original vertex order
           so the draw sequence — and with it the whole run — stays
           isomorphic to the unreordered walk. *)
        if Array.length perm <> Graph.n g then
          invalid_arg "Rotor.create: permutation length does not match";
        let r = Array.make (Graph.n g) 0 in
        for ov = 0 to Graph.n g - 1 do
          let v = perm.(ov) in
          let deg = Graph.degree g v in
          r.(v) <- (if randomize_rotors && deg > 0 then Rng.int rng deg else 0)
        done;
        r
  in
  let coverage = Coverage.create g in
  Coverage.record_start coverage start;
  { g; pos = start; steps = 0; rotor; coverage; observer = None }

let graph t = t.g
let position t = t.pos
let steps t = t.steps
let coverage t = t.coverage
let rotor_offset t v = t.rotor.(v)
let set_observer t obs = t.observer <- obs

let step t =
  let v = t.pos in
  let deg = Graph.degree t.g v in
  if deg = 0 then invalid_arg "Rotor.step: isolated vertex";
  let slot = Graph.adj_start t.g v + t.rotor.(v) in
  t.rotor.(v) <- (t.rotor.(v) + 1) mod deg;
  let w = Graph.slot_vertex t.g slot in
  let e = Graph.slot_edge t.g slot in
  t.steps <- t.steps + 1;
  Coverage.record_edge t.coverage ~step:t.steps e;
  t.pos <- w;
  Coverage.record_move t.coverage ~step:t.steps w;
  match t.observer with
  | None -> ()
  | Some f ->
      f
        (Ewalk_obs.Trace.Step
           { step = t.steps; vertex = w; edge = e; blue = false })

type checkpoint = {
  ck_pos : Graph.vertex;
  ck_steps : int;
  ck_rotor : int array;
  ck_coverage : Coverage.state;
}

let checkpoint t =
  {
    ck_pos = t.pos;
    ck_steps = t.steps;
    ck_rotor = Array.copy t.rotor;
    ck_coverage = Coverage.save t.coverage;
  }

let of_checkpoint g ck =
  if ck.ck_pos < 0 || ck.ck_pos >= Graph.n g then
    invalid_arg "Rotor.of_checkpoint: position out of range";
  if ck.ck_steps < 0 then
    invalid_arg "Rotor.of_checkpoint: negative step counter";
  if Array.length ck.ck_rotor <> Graph.n g then
    invalid_arg "Rotor.of_checkpoint: rotor array does not match the graph";
  Array.iteri
    (fun v r ->
      let deg = Graph.degree g v in
      if r < 0 || (deg > 0 && r >= deg) || (deg = 0 && r <> 0) then
        invalid_arg "Rotor.of_checkpoint: rotor offset out of range")
    ck.ck_rotor;
  {
    g;
    pos = ck.ck_pos;
    steps = ck.ck_steps;
    rotor = Array.copy ck.ck_rotor;
    coverage = Coverage.restore g ck.ck_coverage;
    observer = None;
  }

let process t =
  {
    Cover.name = "rotor-router";
    graph = t.g;
    position = (fun () -> t.pos);
    step = (fun () -> step t);
    steps_done = (fun () -> t.steps);
    coverage = t.coverage;
  }
