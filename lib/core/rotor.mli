(** Rotor-router walk (Propp machine).

    The deterministic exploration process the paper positions the E-process
    against: each vertex carries a rotor cycling through its incident edges
    in fixed order; the walk always leaves along the current rotor edge and
    advances the rotor.  Covers any connected graph in O(m D) steps
    (Yanovski et al.), and after a transient settles into an Eulerian
    circulation — properties exercised by the test suite. *)

open Ewalk_graph

type t

val create :
  ?randomize_rotors:bool -> ?perm:int array -> Graph.t ->
  Ewalk_prng.Rng.t -> start:Graph.vertex -> t
(** Rotors start at slot 0 of each adjacency list, or at uniformly random
    offsets with [~randomize_rotors:true] (the rng is unused otherwise).
    When [g] is a {!Ewalk_graph.Graph.relabel}ing of an original graph,
    pass the permutation ([perm.(old) = new]) so random offsets are drawn
    in {e original} vertex order — the reordered run then stays
    isomorphic draw-for-draw to the unreordered one.
    @raise Invalid_argument if [start] is out of range or [perm] has the
    wrong length. *)

val graph : t -> Graph.t
val position : t -> Graph.vertex
val steps : t -> int
val coverage : t -> Coverage.t

val rotor_offset : t -> Graph.vertex -> int
(** Current rotor position (slot offset) at a vertex. *)

val step : t -> unit
(** @raise Invalid_argument on an isolated vertex. *)

val set_observer : t -> (Ewalk_obs.Trace.event -> unit) option -> unit
(** Install (or remove, with [None]) a per-step trace observer: every
    transition emits a {!Ewalk_obs.Trace.Step} event (always with
    [blue = false] — the rotor walk has no unvisited-edge preference).
    Use {!Observe.attach_rotor} rather than calling this directly. *)

val process : t -> Cover.process

(** {2 Checkpointing} *)

type checkpoint = {
  ck_pos : Graph.vertex;
  ck_steps : int;
  ck_rotor : int array;
  ck_coverage : Coverage.state;
}
(** Plain-data walk state: the rotor walk is deterministic after creation,
    so position, step count, rotor offsets and coverage are everything. *)

val checkpoint : t -> checkpoint

val of_checkpoint : Graph.t -> checkpoint -> t
(** Rebuild the walk; the observer is not restored.
    @raise Invalid_argument if the checkpoint does not fit the graph. *)
