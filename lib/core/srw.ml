open Ewalk_graph
module Rng = Ewalk_prng.Rng

type kind =
  | Simple
  | Lazy
  | Weighted of { cumulative : float array array }
      (* cumulative.(v) : prefix sums of incident-slot weights at v *)

type t = {
  g : Graph.t;
  rng : Rng.t;
  kind : kind;
  name : string;
  mutable pos : Graph.vertex;
  mutable steps : int;
  coverage : Coverage.t;
  mutable observer : (Ewalk_obs.Trace.event -> unit) option;
}

let make g rng kind name start =
  if start < 0 || start >= Graph.n g then
    invalid_arg "Srw.create: start out of range";
  let coverage = Coverage.create g in
  Coverage.record_start coverage start;
  { g; rng; kind; name; pos = start; steps = 0; coverage; observer = None }

let create g rng ~start = make g rng Simple "srw" start
let create_lazy g rng ~start = make g rng Lazy "lazy-srw" start

let create_weighted g rng ~weights ~start =
  if Array.length weights <> Graph.m g then
    invalid_arg "Srw.create_weighted: weight array length <> m";
  Array.iter
    (fun w ->
      if not (w > 0.0) then
        invalid_arg "Srw.create_weighted: non-positive weight")
    weights;
  let cumulative =
    Array.init (Graph.n g) (fun v ->
        let deg = Graph.degree g v in
        let acc = Array.make deg 0.0 in
        let total = ref 0.0 in
        for i = 0 to deg - 1 do
          total := !total +. weights.(Graph.neighbor_edge g v i);
          acc.(i) <- !total
        done;
        acc)
  in
  make g rng (Weighted { cumulative }) "weighted-rw" start

let graph t = t.g
let position t = t.pos
let steps t = t.steps
let coverage t = t.coverage
let set_observer t obs = t.observer <- obs

let emit_step t ~edge =
  match t.observer with
  | None -> ()
  | Some f ->
      f
        (Ewalk_obs.Trace.Step
           { step = t.steps; vertex = t.pos; edge; blue = false })

let pick_weighted_slot t v cumulative =
  let acc = cumulative.(v) in
  let deg = Array.length acc in
  let total = acc.(deg - 1) in
  let x = Rng.float t.rng total in
  (* First index with prefix sum > x (binary search). *)
  let lo = ref 0 and hi = ref (deg - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if acc.(mid) > x then hi := mid else lo := mid + 1
  done;
  Graph.adj_start t.g v + !lo

let step t =
  let v = t.pos in
  let deg = Graph.degree t.g v in
  if deg = 0 then invalid_arg "Srw.step: isolated vertex";
  t.steps <- t.steps + 1;
  let stay = match t.kind with Lazy -> Rng.bool t.rng | _ -> false in
  if stay then begin
    Coverage.record_move t.coverage ~step:t.steps v;
    emit_step t ~edge:(-1)
  end
  else begin
    let slot =
      match t.kind with
      | Weighted { cumulative } -> pick_weighted_slot t v cumulative
      | Simple | Lazy -> Graph.adj_start t.g v + Rng.int t.rng deg
    in
    let w = Graph.slot_vertex t.g slot in
    let e = Graph.slot_edge t.g slot in
    Coverage.record_edge t.coverage ~step:t.steps e;
    t.pos <- w;
    Coverage.record_move t.coverage ~step:t.steps w;
    emit_step t ~edge:e
  end

let run_steps t k =
  if k < 0 then invalid_arg "Srw.run_steps: negative step count";
  for _ = 1 to k do
    step t
  done

let run_to_vertex_cover ?cap t =
  let cap = match cap with Some c -> c | None -> Cover.default_cap t.g in
  while (not (Coverage.all_vertices_visited t.coverage)) && t.steps < cap do
    step t
  done;
  Coverage.vertex_cover_step t.coverage

let process t =
  {
    Cover.name = t.name;
    graph = t.g;
    position = (fun () -> t.pos);
    step = (fun () -> step t);
    steps_done = (fun () -> t.steps);
    coverage = t.coverage;
  }

type checkpoint = {
  ck_kind : [ `Simple | `Lazy ];
  ck_pos : Graph.vertex;
  ck_steps : int;
  ck_rng : int64 array;
  ck_coverage : Coverage.state;
}

let checkpoint t =
  let ck_kind =
    match t.kind with
    | Simple -> `Simple
    | Lazy -> `Lazy
    | Weighted _ ->
        invalid_arg
          "Srw.checkpoint: weighted walks are not serializable (weights are \
           not retained)"
  in
  {
    ck_kind;
    ck_pos = t.pos;
    ck_steps = t.steps;
    ck_rng = Rng.save t.rng;
    ck_coverage = Coverage.save t.coverage;
  }

let of_checkpoint g ck =
  if ck.ck_pos < 0 || ck.ck_pos >= Graph.n g then
    invalid_arg "Srw.of_checkpoint: position out of range";
  if ck.ck_steps < 0 then
    invalid_arg "Srw.of_checkpoint: negative step counter";
  let kind, name =
    match ck.ck_kind with
    | `Simple -> (Simple, "srw")
    | `Lazy -> (Lazy, "lazy-srw")
  in
  {
    g;
    rng = Rng.restore ck.ck_rng;
    kind;
    name;
    pos = ck.ck_pos;
    steps = ck.ck_steps;
    coverage = Coverage.restore g ck.ck_coverage;
    observer = None;
  }

let hitting_time ?cap g rng ~from ~target =
  let t = create g rng ~start:from in
  let cap = match cap with Some c -> c | None -> Cover.default_cap g in
  if from = target then Some 0
  else begin
    let found = ref false in
    while (not !found) && t.steps < cap do
      step t;
      if t.pos = target then found := true
    done;
    if !found then Some t.steps else None
  end
