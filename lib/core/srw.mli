(** Simple, lazy, and weighted random walks — the paper's baselines.

    The simple random walk is the process whose [Omega(n log n)] cover time
    (Feige; Theorem 5) the E-process beats.  The lazy walk (stay put with
    probability 1/2) is the standard fix for bipartite periodicity
    (Section 2.1).  The weighted walk covers the full generality of
    Theorem 5: transition probabilities proportional to positive edge
    weights. *)

open Ewalk_graph

type t

val create : Graph.t -> Ewalk_prng.Rng.t -> start:Graph.vertex -> t
(** A simple random walk at [start].
    @raise Invalid_argument if [start] is out of range. *)

val create_lazy : Graph.t -> Ewalk_prng.Rng.t -> start:Graph.vertex -> t
(** Lazy variant: each step stays with probability 1/2. A lazy "stay" counts
    as one transition (visiting the current vertex again). *)

val create_weighted :
  Graph.t -> Ewalk_prng.Rng.t -> weights:float array -> start:Graph.vertex -> t
(** Reversible weighted walk: from [x], traverse edge [e] with probability
    [w(e) / sum of incident weights] (a self-loop counts its weight twice,
    mirroring the slot convention).
    @raise Invalid_argument if any weight is non-positive or the array
    length differs from [m]. *)

val graph : t -> Graph.t
val position : t -> Graph.vertex
val steps : t -> int
val coverage : t -> Coverage.t

val step : t -> unit
(** One transition.  @raise Invalid_argument on an isolated vertex. *)

val run_steps : t -> int -> unit
(** [run_steps t k]: [k] transitions in a tight loop, draw-for-draw
    identical to [k] calls of {!step} (the full-scale benchmark path). *)

val run_to_vertex_cover : ?cap:int -> t -> int option
(** Step until every vertex is visited (or [cap] steps, default
    {!Cover.default_cap}); returns the cover step if reached. *)

val set_observer : t -> (Ewalk_obs.Trace.event -> unit) option -> unit
(** Install (or remove) a per-step trace observer; every transition emits a
    {!Ewalk_obs.Trace.Step} event ([blue] always false; [edge = -1] for a
    lazy stay).  Prefer {!Observe.attach_srw}. *)

val process : t -> Cover.process

(** {2 Checkpointing} *)

type checkpoint = {
  ck_kind : [ `Simple | `Lazy ];
  ck_pos : Graph.vertex;
  ck_steps : int;
  ck_rng : int64 array;
  ck_coverage : Coverage.state;
}
(** Plain-data walk state for the simple and lazy variants (weighted walks
    do not retain their weight table and are excluded). *)

val checkpoint : t -> checkpoint
(** @raise Invalid_argument on a weighted walk. *)

val of_checkpoint : Graph.t -> checkpoint -> t
(** Rebuild the walk; the observer is not restored.
    @raise Invalid_argument if the checkpoint does not fit the graph. *)

val hitting_time :
  ?cap:int -> Graph.t -> Ewalk_prng.Rng.t -> from:Graph.vertex ->
  target:Graph.vertex -> int option
(** Empirical first-visit time of [target] by a fresh simple walk from
    [from]; [None] if [cap] (default {!Cover.default_cap}) elapses. *)
