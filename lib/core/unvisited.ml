open Ewalk_graph

type t = {
  g : Graph.t;
  slot_list : int array; (* per-vertex regions; live prefix *)
  slot_index : int array; (* inverse of slot_list *)
  slot_owner : int array; (* vertex owning each slot position *)
  counts : int array;
}

let create g =
  let two_m = 2 * Graph.m g in
  let slot_owner = Array.make two_m 0 in
  for v = 0 to Graph.n g - 1 do
    for p = Graph.adj_start g v to Graph.adj_stop g v - 1 do
      slot_owner.(p) <- v
    done
  done;
  {
    g;
    slot_list = Array.init two_m (fun p -> p);
    slot_index = Array.init two_m (fun p -> p);
    slot_owner;
    counts = Array.init (Graph.n g) (Graph.degree g);
  }

let count t v = t.counts.(v)

let live_slot t v i = t.slot_list.(Graph.adj_start t.g v + i)

let incident_edges t v =
  let k = t.counts.(v) in
  let seen = Hashtbl.create (2 * k) in
  let out = ref [] in
  for i = k - 1 downto 0 do
    let e = Graph.slot_edge t.g (live_slot t v i) in
    if not (Hashtbl.mem seen e) then begin
      Hashtbl.add seen e ();
      out := e :: !out
    end
  done;
  Array.of_list !out

let slot_with_edge t v e =
  let k = t.counts.(v) in
  let found = ref (-1) in
  for i = 0 to k - 1 do
    let p = live_slot t v i in
    if !found < 0 && Graph.slot_edge t.g p = e then found := p
  done;
  if !found < 0 then raise Not_found else !found

let retire_slot t p =
  let v = t.slot_owner.(p) in
  let i = t.slot_index.(p) in
  let base = Graph.adj_start t.g v in
  let last = base + t.counts.(v) - 1 in
  assert (i >= base && i <= last);
  let q = t.slot_list.(last) in
  t.slot_list.(i) <- q;
  t.slot_index.(q) <- i;
  t.slot_list.(last) <- p;
  t.slot_index.(p) <- last;
  t.counts.(v) <- t.counts.(v) - 1

let retire_edge t e =
  let p1, p2 = Graph.edge_positions t.g e in
  retire_slot t p1;
  retire_slot t p2

type state = {
  s_slot_list : int array;
  s_slot_index : int array;
  s_counts : int array;
}

let save t =
  {
    s_slot_list = Array.copy t.slot_list;
    s_slot_index = Array.copy t.slot_index;
    s_counts = Array.copy t.counts;
  }

let restore g s =
  let n = Graph.n g and two_m = 2 * Graph.m g in
  if
    Array.length s.s_slot_list <> two_m
    || Array.length s.s_slot_index <> two_m
  then invalid_arg "Unvisited.restore: slot arrays do not match the graph";
  if Array.length s.s_counts <> n then
    invalid_arg "Unvisited.restore: counts array does not match the graph";
  let fresh = create g in
  let slot_owner = fresh.slot_owner in
  for p = 0 to two_m - 1 do
    let q = s.s_slot_list.(p) in
    if q < 0 || q >= two_m || s.s_slot_index.(q) <> p then
      invalid_arg "Unvisited.restore: slot_index is not inverse to slot_list";
    (* The partition only ever swaps slots within a vertex's own adjacency
       region, so every stored slot must still belong to its region. *)
    if slot_owner.(q) <> slot_owner.(p) then
      invalid_arg "Unvisited.restore: slot moved across vertex regions"
  done;
  for v = 0 to n - 1 do
    if s.s_counts.(v) < 0 || s.s_counts.(v) > Graph.degree g v then
      invalid_arg "Unvisited.restore: live count out of range"
  done;
  {
    g;
    slot_list = Array.copy s.s_slot_list;
    slot_index = Array.copy s.s_slot_index;
    slot_owner;
    counts = Array.copy s.s_counts;
  }
