(** Shared unvisited-edge bookkeeping for edge-preferring processes.

    Maintains, for every vertex, the set of its incident unvisited edges as
    a swap-partition over the graph's adjacency slots: the first
    [count t v] entries of [v]'s region are the live slots.  Retiring an
    edge updates both endpoints in O(1).  Used by the single-walker
    {!Eprocess} and the multi-walker {!Team}. *)

open Ewalk_graph

type t

val create : Graph.t -> t
(** All edges unvisited. *)

val count : t -> Graph.vertex -> int
(** Unvisited incident edge slots (a blue self-loop counts 2). *)

val live_slot : t -> Graph.vertex -> int -> int
(** [live_slot t v i], [0 <= i < count t v]: the [i]-th live adjacency slot
    position of [v]. *)

val incident_edges : t -> Graph.vertex -> Graph.edge array
(** Deduplicated unvisited incident edges (a self-loop appears once). *)

val slot_with_edge : t -> Graph.vertex -> Graph.edge -> int
(** A live slot at [v] carrying the given edge.
    @raise Not_found if the edge is not live at [v]. *)

val retire_edge : t -> Graph.edge -> unit
(** Mark the edge visited (removes it at both endpoints).  Must be called
    at most once per edge. *)

(** {2 Checkpointing} *)

type state = {
  s_slot_list : int array;
  s_slot_index : int array;
  s_counts : int array;
}
(** Plain-data snapshot of the swap-partition (the slot-owner map is
    derived from the graph and not stored). *)

val save : t -> state
(** Capture the current partition. *)

val restore : Graph.t -> state -> t
(** Rebuild the partition over [g] from a saved state.
    @raise Invalid_argument if the arrays do not match the graph, the
    index is not the inverse of the list, a slot escaped its vertex
    region, or a live count exceeds the vertex degree. *)
