open Ewalk_graph
module Fit = Ewalk_analysis.Fit
module Stats = Ewalk_analysis.Stats
module Eprocess = Ewalk.Eprocess
module Cover = Ewalk.Cover

let fl = float_of_int

(* Deterministic per-point seed so each (experiment, d, n) cell is
   reproducible in isolation. *)
let point_seed seed tag n = seed + (7919 * tag) + n

let cover_summary ?pool ~scale ~seed ~tag ~n measure =
  Sweep.mean_cover_of_trials ?pool ~seed:(point_seed seed tag n)
    ~trials:(Sweep.trials scale) measure

(* Mean E-process vertex cover times on random d-regular graphs, one entry
   per n; capped runs are dropped from the series used for fitting. *)
let eprocess_series ~pool ~scale ~seed ~sizes ~d =
  List.filter_map
    (fun n ->
      let feasible = n * d mod 2 = 0 in
      if not feasible then None
      else begin
        match
          cover_summary ?pool ~scale ~seed ~tag:d ~n (fun rng ->
              let g = Exp_util.regular_graph rng ~n ~d in
              Exp_util.vertex_cover_eprocess rng g)
        with
        | Some s -> Some (n, s)
        | None -> None
      end)
    sizes

let fit_notes ~d series =
  match series with
  | [] | [ _ ] -> [ Printf.sprintf "d=%d: too few points to fit" d ]
  | _ ->
      let ns = Array.of_list (List.map (fun (n, _) -> fl n) series) in
      let covers =
        Array.of_list (List.map (fun (_, s) -> s.Stats.mean) series)
      in
      let normalized =
        Array.map2 (fun c n -> c /. n) covers ns
      in
      let c_nlogn, r2_nlogn = Fit.scale_n_log_n ns covers in
      let c_lin, r2_lin = Fit.scale_linear ns covers in
      let slope = Fit.affine_log_x ns normalized in
      [
        Printf.sprintf
          "d=%d: C=c*n*ln(n) fit c=%.3f (R2=%.3f); C=c*n fit c=%.2f (R2=%.3f); slope of C/n vs ln n: b=%.3f"
          d c_nlogn r2_nlogn c_lin r2_lin slope.Fit.slope;
      ]

let paper_constants =
  [ (3, "0.93 n ln n"); (5, "0.41 n ln n"); (7, "0.38 n ln n") ]

let fig1 ~pool ~scale ~seed =
  let degrees = [ 3; 4; 5; 6; 7 ] in
  let sizes = Sweep.cover_sizes scale in
  let data =
    List.map (fun d -> (d, eprocess_series ~pool ~scale ~seed ~sizes ~d)) degrees
  in
  let rows =
    List.concat_map
      (fun (d, series) ->
        List.map
          (fun (n, s) ->
            [
              Table.cell_i d;
              Table.cell_i n;
              Table.cell_f s.Stats.mean;
              Table.cell_f (s.Stats.mean /. fl n);
              Table.cell_f (s.Stats.stderr /. fl n);
            ])
          series)
      data
  in
  let fits = List.concat_map (fun (d, series) -> fit_notes ~d series) data in
  let paper =
    List.map
      (fun (d, c) -> Printf.sprintf "paper Figure 1, d=%d: cover ~ %s" d c)
      paper_constants
  in
  {
    Table.id = "fig1";
    title =
      "Figure 1: normalised E-process cover time C_V/n on random d-regular graphs";
    header = [ "d"; "n"; "cover"; "cover/n"; "stderr/n" ];
    rows;
    notes =
      fits @ paper
      @ [
          "expected shape: even d flat (Theta(n)); odd d grows like c*ln n";
        ];
  }

(* Each family maps the nominal size to its actual vertex count (the
   Margulis construction rounds to a square) and builds a graph of that
   size. *)
let family_table ?pool ~id ~title ~scale ~seed families =
  let sizes = Sweep.cover_sizes scale in
  let rows = ref [] in
  let notes = ref [] in
  List.iteri
    (fun fi (name, actual_n, build) ->
      let series = ref [] in
      List.iter
        (fun n ->
          match
            cover_summary ?pool ~scale ~seed ~tag:(100 + fi) ~n (fun rng ->
                Exp_util.vertex_cover_eprocess rng (build rng n))
          with
          | None -> ()
          | Some s ->
              let g_n = actual_n n in
              series := (g_n, s.Stats.mean) :: !series;
              rows :=
                [
                  name;
                  Table.cell_i g_n;
                  Table.cell_f s.Stats.mean;
                  Table.cell_f (s.Stats.mean /. fl g_n);
                ]
                :: !rows)
        sizes;
      match !series with
      | [] | [ _ ] -> ()
      | entries ->
          let ratios = List.map (fun (n, c) -> c /. fl n) entries in
          let lo = List.fold_left Float.min (List.hd ratios) ratios in
          let hi = List.fold_left Float.max (List.hd ratios) ratios in
          notes :=
            Printf.sprintf "%s: C/n in [%.2f, %.2f] (ratio %.2f; flat = Theta(n))"
              name lo hi (hi /. lo)
            :: !notes)
    families;
  {
    Table.id;
    title;
    header = [ "family"; "n"; "cover"; "cover/n" ];
    rows = List.rev !rows;
    notes = List.rev !notes;
  }

let thm1_scaling ~pool ~scale ~seed =
  let square n = max 2 (int_of_float (Float.round (sqrt (fl n)))) in
  family_table ?pool ~id:"thm1-scaling"
    ~title:
      "Theorem 1 / Corollary 2: C_V(E-process) = Theta(n) on even-degree expanders"
    ~scale ~seed
    [
      ( "random-4-regular",
        (fun n -> n),
        fun rng n -> Exp_util.regular_graph rng ~n ~d:4 );
      ( "random-6-regular",
        (fun n -> n),
        fun rng n -> Exp_util.regular_graph rng ~n ~d:6 );
      ( "margulis-deg8",
        (fun n -> square n * square n),
        fun _rng n -> Gen_expander.margulis (square n) );
      ( "cycle-union-deg4",
        (fun n -> n),
        fun rng n -> Gen_regular.cycle_union rng n 2 );
    ]

let rule_independence ~pool ~scale ~seed =
  let sizes =
    match Sweep.cover_sizes scale with
    | a :: b :: c :: _ -> [ a; b; c ]
    | sizes -> sizes
  in
  let rules =
    [
      ("uar", Eprocess.Uar);
      ("lowest-slot", Eprocess.Lowest_slot);
      ("highest-slot", Eprocess.Highest_slot);
      ("adversary:stay-explored", Eprocess.Adversarial Exp_util.adversary_stay_explored);
      ("adversary:min-blue", Eprocess.Adversarial Exp_util.adversary_min_blue);
    ]
  in
  let rows =
    List.concat_map
      (fun (name, rule) ->
        List.filter_map
          (fun n ->
            match
              cover_summary ?pool ~scale ~seed
                ~tag:(Hashtbl.hash name land 0xff) ~n
                (fun rng ->
                  let g = Exp_util.regular_graph rng ~n ~d:4 in
                  Exp_util.vertex_cover_eprocess ~rule rng g)
            with
            | None -> None
            | Some s ->
                Some
                  [
                    name;
                    Table.cell_i n;
                    Table.cell_f s.Stats.mean;
                    Table.cell_f (s.Stats.mean /. fl n);
                  ])
          sizes)
      rules
  in
  {
    Table.id = "rule-independence";
    title =
      "Theorem 1 remark: E-process cover time is Theta(n) for every rule A (random 4-regular)";
    header = [ "rule"; "n"; "cover"; "cover/n" ];
    rows;
    notes =
      [
        "all rules, including online adversaries, should sit within a small constant factor";
      ];
  }

let srw_lower ~pool ~scale ~seed =
  let sizes = Sweep.cover_sizes scale in
  let rows = ref [] in
  let speedups = ref [] in
  List.iter
    (fun n ->
      let srw =
        cover_summary ?pool ~scale ~seed ~tag:500 ~n (fun rng ->
            let g = Exp_util.regular_graph rng ~n ~d:4 in
            Exp_util.vertex_cover_srw rng g)
      and ep =
        cover_summary ?pool ~scale ~seed ~tag:501 ~n (fun rng ->
            let g = Exp_util.regular_graph rng ~n ~d:4 in
            Exp_util.vertex_cover_eprocess rng g)
      in
      match (srw, ep) with
      | Some srw, Some ep ->
          let radzik = Ewalk_theory.Bounds.radzik_lower_bound ~n in
          let feige = Ewalk_theory.Bounds.feige_lower_bound ~n in
          let speedup = srw.Stats.mean /. ep.Stats.mean in
          speedups := (fl n, speedup) :: !speedups;
          rows :=
            [
              Table.cell_i n;
              Table.cell_f srw.Stats.mean;
              Table.cell_f radzik;
              Table.cell_f (srw.Stats.mean /. feige);
              Table.cell_f ep.Stats.mean;
              Table.cell_f speedup;
            ]
            :: !rows
      | _ -> ())
    sizes;
  let notes =
    match List.rev !speedups with
    | [] | [ _ ] -> []
    | pts ->
        let ns = Array.of_list (List.map fst pts) in
        let sp = Array.of_list (List.map snd pts) in
        let f = Fit.affine_log_x ns sp in
        [
          Printf.sprintf
            "speed-up vs ln n: slope b=%.3f (R2=%.3f) - Theta(log n) speed-up means b > 0"
            f.Fit.slope f.Fit.r_squared;
          "every SRW cover time must exceed the Radzik column (Theorem 5)";
        ]
  in
  {
    Table.id = "srw-lower";
    title =
      "Theorem 5 / Feige: SRW cover vs (n/4)ln(n/2), and the E-process speed-up (random 4-regular)";
    header =
      [ "n"; "srw cover"; "radzik lb"; "srw/(n ln n)"; "e-process"; "speedup" ];
    rows = List.rev !rows;
    notes;
  }

let odd_even_frontier ~pool ~scale ~seed =
  let degrees = [ 3; 4; 5; 6; 7; 8 ] in
  (* The slope estimate needs the full size range: with narrow spreads the
     odd degrees' logarithmic growth hides inside the noise. *)
  let sizes = Sweep.cover_sizes scale in
  let rows =
    List.filter_map
      (fun d ->
        let series = eprocess_series ~pool ~scale ~seed ~sizes ~d in
        match series with
        | [] | [ _ ] -> None
        | _ ->
            let ns = Array.of_list (List.map (fun (n, _) -> fl n) series) in
            let normalized =
              Array.of_list
                (List.map (fun (n, s) -> s.Stats.mean /. fl n) series)
            in
            let f = Fit.affine_log_x ns normalized in
            let verdict =
              if f.Fit.slope < 0.12 then "flat: Theta(n)"
              else "log growth: Theta(n log n)"
            in
            Some
              [
                Table.cell_i d;
                (if d mod 2 = 0 then "even" else "odd");
                Table.cell_f f.Fit.intercept;
                Table.cell_f f.Fit.slope;
                Table.cell_f f.Fit.r_squared;
                verdict;
              ])
      degrees
  in
  {
    Table.id = "odd-even-frontier";
    title = "Section 5: C_V/n = a + b ln n per degree - b vanishes iff degree is even";
    header = [ "d"; "parity"; "a"; "b"; "R2"; "verdict" ];
    rows;
    notes = [ "paper: even degrees flat; odd degrees logarithmic (Fig 1)" ];
  }

let process_compare ~pool ~scale ~seed =
  let n =
    match Sweep.cover_sizes scale with
    | _ :: _ :: c :: _ -> c
    | c :: _ -> c
    | [] -> 2_000
  in
  let side = int_of_float (Float.round (sqrt (fl n))) in
  let graphs =
    [
      ( "random-4-regular",
        fun rng -> (Exp_util.regular_graph rng ~n ~d:4, n) );
      ("torus", fun _rng -> (Gen_classic.torus2d side side, side * side));
    ]
  in
  let processes =
    [
      ( "e-process(uar)",
        fun g rng -> Eprocess.process (Eprocess.create g rng ~start:0) );
      ( "v-process",
        fun g rng -> Ewalk.Vprocess.process (Ewalk.Vprocess.create g rng ~start:0) );
      ("srw", fun g rng -> Ewalk.Srw.process (Ewalk.Srw.create g rng ~start:0));
      ( "rotor-router",
        fun g rng ->
          Ewalk.Rotor.process
            (Ewalk.Rotor.create ~randomize_rotors:true g rng ~start:0) );
      ( "rwc(2)",
        fun g rng -> Ewalk.Rwc.process (Ewalk.Rwc.create ~d:2 g rng ~start:0) );
      ( "least-used-first",
        fun g rng ->
          Ewalk.Fair.process
            (Ewalk.Fair.create ~random_ties:true
               ~strategy:Ewalk.Fair.Least_used_first g rng ~start:0) );
      ( "oldest-first",
        fun g rng ->
          Ewalk.Fair.process
            (Ewalk.Fair.create ~random_ties:true
               ~strategy:Ewalk.Fair.Oldest_first g rng ~start:0) );
      ( "metropolis",
        fun g rng ->
          Ewalk.Metropolis.process (Ewalk.Metropolis.create g rng ~start:0) );
    ]
  in
  let rows =
    List.concat_map
      (fun (gname, build) ->
        List.map
          (fun (pname, make_process) ->
            let tag = (Hashtbl.hash (gname, pname) land 0xfff) + 600 in
            let result =
              cover_summary ?pool ~scale ~seed ~tag ~n (fun rng ->
                  let g, _ = build rng in
                  Cover.run_until_vertex_cover
                    ~cap:(Cover.default_cap g)
                    (make_process g rng))
            in
            let actual_n = if gname = "torus" then side * side else n in
            [
              gname;
              pname;
              Table.cell_i actual_n;
              Table.cell_opt (fun s -> Table.cell_f s.Stats.mean) result;
              Table.cell_opt
                (fun s -> Table.cell_f (s.Stats.mean /. fl actual_n))
                result;
            ])
          processes)
      graphs
  in
  {
    Table.id = "process-compare";
    title = "Exploration processes compared: vertex cover time";
    header = [ "graph"; "process"; "n"; "cover"; "cover/n" ];
    rows;
    notes =
      [
        "'-' marks a capped run (oldest-first can be super-polynomial on some graphs)";
      ];
  }

let blanket_r_visits ~pool ~scale ~seed =
  let sizes =
    match Sweep.cover_sizes scale with
    | a :: b :: c :: _ -> [ a; b; c ]
    | sizes -> sizes
  in
  let d = 4 in
  let rows =
    List.filter_map
      (fun n ->
        let measured =
          Sweep.mean_of_trials ?pool ~seed:(point_seed seed 700 n)
            ~trials:(Sweep.trials scale) (fun rng ->
              let g = Exp_util.regular_graph rng ~n ~d in
              let walk = Ewalk.Srw.create g rng ~start:0 in
              let p = Ewalk.Srw.process walk in
              let cover =
                match Cover.run_until_vertex_cover ~cap:(Cover.default_cap g) p with
                | Some t -> fl t
                | None -> Float.nan
              in
              let t_r =
                match
                  Cover.run_until_min_visits ~cap:(Cover.default_cap g) ~k:d p
                with
                | Some t -> fl t
                | None -> Float.nan
              in
              t_r /. cover)
        in
        if Float.is_nan measured.Stats.mean then None
        else
          Some
            [
              Table.cell_i n;
              Table.cell_i d;
              Table.cell_f measured.Stats.mean;
              Table.cell_f measured.Stats.std;
            ])
      sizes
  in
  {
    Table.id = "blanket-r-visits";
    title =
      "Eq. (4): SRW time to visit every vertex r times, as a multiple of its cover time";
    header = [ "n"; "r"; "T(r)/C_V"; "std" ];
    rows;
    notes =
      [
        "bounded ratio across n supports E[T(r)] = O(C_V(SRW)) (blanket-time argument)";
      ];
  }
