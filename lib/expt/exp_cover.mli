(** Vertex-cover-time experiments (Figure 1, Theorem 1, Theorem 5,
    Section 5).

    Every experiment takes a [~pool] ([None] for the sequential path):
    with [Some pool], trials shard across the pool's domains via
    {!Sweep.map_trials}, with tables bit-identical to the sequential run
    for any job count. *)

val fig1 :
  pool:Ewalk_par.Pool.t option -> scale:Sweep.scale -> seed:int -> Table.t
(** Figure 1: normalised E-process cover time on random [d]-regular graphs,
    [d = 3..7], with the paper's [c n ln n] fits for odd degrees. *)

val thm1_scaling :
  pool:Ewalk_par.Pool.t option -> scale:Sweep.scale -> seed:int -> Table.t
(** Theorem 1 / Corollary 2: [C_V / n] stays bounded across [n] on
    even-degree expander families. *)

val rule_independence :
  pool:Ewalk_par.Pool.t option -> scale:Sweep.scale -> seed:int -> Table.t
(** Theorem 1's rule-independence: u.a.r., deterministic, and two online
    adversarial rules all give [Theta(n)] on random 4-regular graphs. *)

val srw_lower :
  pool:Ewalk_par.Pool.t option -> scale:Sweep.scale -> seed:int -> Table.t
(** Theorem 5 / Feige baseline: measured SRW cover time against the
    [(n/4) log (n/2)] lower bound, and the E-process speed-up factor. *)

val odd_even_frontier :
  pool:Ewalk_par.Pool.t option -> scale:Sweep.scale -> seed:int -> Table.t
(** Section 5's question: the [a + b ln n] slope of [C_V / n] per degree —
    [b ~ 0] exactly for even degrees. *)

val process_compare :
  pool:Ewalk_par.Pool.t option -> scale:Sweep.scale -> seed:int -> Table.t
(** Related-work positioning: E-process vs V-process, SRW, rotor-router,
    RWC(2), Least-Used-First and Oldest-First on a random 4-regular graph
    and a torus. *)

val blanket_r_visits :
  pool:Ewalk_par.Pool.t option -> scale:Sweep.scale -> seed:int -> Table.t
(** Eq. (4) discussion: SRW time to visit every vertex [r] times is
    [O(C_V(SRW))] on [r]-regular graphs. *)
