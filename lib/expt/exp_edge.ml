open Ewalk_graph
module Stats = Ewalk_analysis.Stats
module Fit = Ewalk_analysis.Fit

let fl = float_of_int

let point_seed seed tag n = seed + (104729 * tag) + n

let summary ?pool ~scale ~seed ~tag ~n measure =
  Sweep.mean_cover_of_trials ?pool ~seed:(point_seed seed tag n)
    ~trials:(Sweep.trials scale) measure

let edge_cover_sandwich ~pool ~scale ~seed =
  let sizes =
    match Sweep.edge_sizes scale with
    | a :: b :: c :: _ -> [ a; b; c ]
    | sizes -> sizes
  in
  let families =
    [
      ( "random-4-regular",
        fun rng n -> Exp_util.regular_graph rng ~n ~d:4 );
      ( "random-6-regular",
        fun rng n -> Exp_util.regular_graph rng ~n ~d:6 );
      ( "torus",
        fun _rng n ->
          let side = max 3 (int_of_float (Float.round (sqrt (fl n)))) in
          Gen_classic.torus2d side side );
    ]
  in
  let rows = ref [] in
  let violations = ref 0 in
  List.iteri
    (fun fi (name, build) ->
      List.iter
        (fun n ->
          (* Measure C_E(E) and C_V(SRW) on the same graph draw, per
             trial, so the sandwich is checked pointwise. *)
          let trials = Sweep.trials scale in
          let rngs = Sweep.trial_rngs ~seed:(point_seed seed (20 + fi) n) ~trials in
          let per_trial =
            Sweep.map_trials ?pool ~label:name
              (fun rng ->
                let g = build rng n in
                let m = Graph.m g in
                match
                  ( Exp_util.edge_cover_eprocess rng g,
                    Exp_util.vertex_cover_srw rng g )
                with
                | Some ce_t, Some cv_srw ->
                    let upper =
                      Ewalk_theory.Bounds.edge_cover_sandwich_upper ~m
                        ~srw_vertex_cover:(fl cv_srw)
                    in
                    Some (m, ce_t, upper)
                | _ -> None)
              rngs
          in
          (* Index-ordered fold: reproduces the sequential accumulation
             order, so the table is bit-identical for any job count. *)
          let ok = ref true in
          let ce = Stats.Online.create () and bound = Stats.Online.create () in
          let m_ref = ref 0 in
          Array.iter
            (function
              | Some (m, ce_t, upper) ->
                  m_ref := m;
                  Stats.Online.add ce (fl ce_t);
                  Stats.Online.add bound upper;
                  if ce_t < m then begin
                    ok := false;
                    incr violations
                  end
              | None -> ok := false)
            per_trial;
          if Stats.Online.count ce > 0 then
            rows :=
              [
                name;
                Table.cell_i n;
                Table.cell_i !m_ref;
                Table.cell_f (Stats.Online.mean ce);
                Table.cell_f (Stats.Online.mean bound);
                (if !ok then "yes" else "NO");
              ]
              :: !rows)
        sizes)
    families;
  {
    Table.id = "edge-cover-sandwich";
    title = "Eq. (3): m <= C_E(E-process) <= m + C_V(SRW)";
    header = [ "family"; "n"; "m"; "C_E(E)"; "m + C_V(SRW)"; "m <= C_E" ];
    rows = List.rev !rows;
    notes =
      [
        Printf.sprintf "lower-bound violations: %d (must be 0)" !violations;
        "C_E column should sit below the sandwich upper bound on average";
      ];
  }

let hypercube_edge ~pool ~scale ~seed =
  let dims = Sweep.hypercube_dims scale in
  let rows = ref [] in
  List.iter
    (fun r ->
      let n = 1 lsl r in
      let ep =
        summary ?pool ~scale ~seed ~tag:40 ~n (fun rng ->
            let g = Gen_classic.hypercube r in
            Exp_util.edge_cover_eprocess rng g)
      and srw =
        summary ?pool ~scale ~seed ~tag:41 ~n (fun rng ->
            let g = Gen_classic.hypercube r in
            Exp_util.edge_cover_srw rng g)
      in
      match (ep, srw) with
      | Some ep, Some srw ->
          let nl = fl n *. log (fl n) in
          rows :=
            [
              Table.cell_i r;
              Table.cell_i n;
              Table.cell_f ep.Stats.mean;
              Table.cell_f (ep.Stats.mean /. nl);
              Table.cell_f srw.Stats.mean;
              Table.cell_f (srw.Stats.mean /. (nl *. log (fl n)));
            ]
            :: !rows
      | _ -> ())
    dims;
  {
    Table.id = "hypercube-edge";
    title =
      "Hypercube H_r: C_E(E-process) = Theta(n log n) vs C_E(SRW) = Theta(n log^2 n)";
    header =
      [ "r"; "n"; "C_E(E)"; "C_E(E)/(n ln n)"; "C_E(SRW)"; "C_E(SRW)/(n ln^2 n)" ];
    rows = List.rev !rows;
    notes =
      [
        "both normalised columns should stay roughly constant across r";
        "the E-process beats the SRW by a Theta(log n) factor on edge cover";
      ];
  }

let grw_bound ~pool ~scale ~seed =
  let n =
    match Sweep.edge_sizes scale with
    | _ :: b :: _ -> b
    | b :: _ -> b
    | [] -> 2_000
  in
  let degrees = [ 4; 8; 16 ] in
  let rows =
    List.filter_map
      (fun r ->
        (* Each trial returns its own (m, gap, cover) so no shared holders
           race under the pool; the bound uses the last trial's m and gap,
           matching the sequential code's last-write-wins. *)
        let rngs =
          Sweep.trial_rngs ~seed:(point_seed seed (50 + r) n)
            ~trials:(Sweep.trials scale)
        in
        let per_trial =
          Sweep.map_trials ?pool
            (fun rng ->
              let g = Exp_util.regular_graph rng ~n ~d:r in
              let m = Graph.m g in
              let gap =
                1.0
                -. Ewalk_spectral.Spectral.lambda_max_power ~tol:1e-7
                     ~max_iter:3_000 g
              in
              (m, gap, Exp_util.edge_cover_eprocess rng g))
            rngs
        in
        let m_last, gap_last, _ = per_trial.(Array.length per_trial - 1) in
        let measured =
          if Array.exists (fun (_, _, c) -> c = None) per_trial then None
          else
            Some
              (Stats.summarize
                 (Array.map
                    (fun (_, _, c) ->
                      match c with Some t -> fl t | None -> assert false)
                    per_trial))
        in
        match measured with
        | None -> None
        | Some s ->
            let bound =
              Ewalk_theory.Bounds.grw_edge_cover ~m:m_last ~gap:gap_last n
            in
            Some
              [
                Table.cell_i r;
                Table.cell_i n;
                Table.cell_i m_last;
                Table.cell_f gap_last;
                Table.cell_f s.Stats.mean;
                Table.cell_f bound;
                Table.cell_f (s.Stats.mean /. bound);
              ])
      degrees
  in
  {
    Table.id = "grw-bound";
    title =
      "Eq. (2): measured C_E vs the Orenshtein-Shinkar bound m + n ln n/(1-lambda)";
    header = [ "r"; "n"; "m"; "gap"; "C_E(E)"; "bound"; "ratio" ];
    rows;
    notes =
      [
        "ratio < 1 everywhere: the bound holds with constant 1 already";
        "as r grows toward log n, C_E approaches m - the linear-in-edges regime";
      ];
  }

let cor4_edge ~pool ~scale ~seed =
  let sizes = Sweep.edge_sizes scale in
  let rows = ref [] in
  let series = ref [] in
  List.iter
    (fun n ->
      match
        summary ?pool ~scale ~seed ~tag:60 ~n (fun rng ->
            let g = Exp_util.regular_graph rng ~n ~d:4 in
            Exp_util.edge_cover_eprocess rng g)
      with
      | None -> ()
      | Some s ->
          series := (fl n, s.Stats.mean /. fl n) :: !series;
          rows :=
            [
              Table.cell_i n;
              Table.cell_f s.Stats.mean;
              Table.cell_f (s.Stats.mean /. fl n);
              Table.cell_f (s.Stats.mean /. (fl n *. log (fl n)));
            ]
            :: !rows)
    sizes;
  let notes =
    match List.rev !series with
    | [] | [ _ ] -> []
    | pts ->
        let ns = Array.of_list (List.map fst pts) in
        let ys = Array.of_list (List.map snd pts) in
        let f = Fit.affine_log_x ns ys in
        [
          Printf.sprintf
            "C_E/n vs ln n: slope b=%.3f - Corollary 4 (O(omega n)) predicts sub-logarithmic growth, i.e. b well below the SRW's"
            f.Fit.slope;
        ]
  in
  {
    Table.id = "cor4-edge";
    title = "Corollary 4: E-process edge cover on random 4-regular graphs is O(omega n)";
    header = [ "n"; "C_E(E)"; "C_E/n"; "C_E/(n ln n)" ];
    rows = List.rev !rows;
    notes;
  }
