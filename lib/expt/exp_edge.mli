(** Edge-cover-time experiments (eq. (2)/(3), Theorem 3, Corollary 4,
    the hypercube example).

    Every experiment takes a [~pool] ([None] for the sequential path):
    with [Some pool], trials shard across the pool's domains via
    {!Sweep.map_trials}, with tables bit-identical to the sequential run
    for any job count. *)

val edge_cover_sandwich :
  pool:Ewalk_par.Pool.t option -> scale:Sweep.scale -> seed:int -> Table.t
(** Eq. (3) / Observation 12: [m <= C_E(E-process) <= m + C_V(SRW)] on
    several graph families. *)

val hypercube_edge :
  pool:Ewalk_par.Pool.t option -> scale:Sweep.scale -> seed:int -> Table.t
(** Section 1's example: on the hypercube [H_r] the E-process edge cover
    time is [Theta(n log n)] while the SRW needs [Theta(n log^2 n)]. *)

val grw_bound :
  pool:Ewalk_par.Pool.t option -> scale:Sweep.scale -> seed:int -> Table.t
(** Eq. (2) (Orenshtein–Shinkar): measured [C_E] against
    [m + n log n / (1 - lambda_max)] with the gap measured spectrally. *)

val cor4_edge :
  pool:Ewalk_par.Pool.t option -> scale:Sweep.scale -> seed:int -> Table.t
(** Corollary 4: on random 4-regular graphs [C_E = O(omega n)] — the
    normalised edge cover time grows slower than any fixed power. *)
