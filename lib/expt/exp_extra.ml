open Ewalk_graph
module Spectral = Ewalk_spectral.Spectral
module Hitting = Ewalk_spectral.Hitting
module Stats = Ewalk_analysis.Stats

let fl = float_of_int

let point_seed seed tag n = seed + (32_452_843 * tag) + n

let small_families ~scale ~seed =
  let n = match scale with Sweep.Tiny -> 60 | _ -> 150 in
  let rng = Ewalk_prng.Rng.create ~seed:(point_seed seed 1 n) () in
  [
    ("random-4-regular", Gen_regular.random_regular_connected rng n 4);
    ("cycle", Gen_classic.cycle n);
    ( "torus",
      let side = max 3 (int_of_float (sqrt (fl n))) in
      Gen_classic.torus2d side side );
    ("complete", Gen_classic.complete (min n 60));
    ("lollipop", Gen_classic.lollipop (2 * n / 3) (n / 3));
  ]

let hitting_bounds ~pool:_ ~scale ~seed =
  let rows =
    List.map
      (fun (name, g) ->
        let report = Spectral.gap_exact g in
        let gap = Float.max report.Spectral.gap 1e-12 in
        let pi = Spectral.stationary g in
        (* Worst vertex for E_pi H_v, and the Lemma 6 bound at it. *)
        let worst = ref 0.0 and worst_bound = ref 0.0 in
        let return_err = ref 0.0 in
        for v = 0 to Graph.n g - 1 do
          let measured = Hitting.hitting_from_stationary g v in
          let bound = 1.0 /. (gap *. pi.(v)) in
          if measured > !worst then begin
            worst := measured;
            worst_bound := bound
          end;
          (* Return-time identity E_v T_v+ = 1/pi_v. *)
          let ret = Hitting.expected_return_time g v in
          let err = Float.abs ((ret *. pi.(v)) -. 1.0) in
          if err > !return_err then return_err := err
        done;
        (* Corollary 9 on a small set. *)
        let s = [ 0; 1 ] in
        let d_s = List.fold_left (fun acc v -> acc + Graph.degree g v) 0 s in
        let set_bound =
          2.0 *. fl (Graph.m g) /. (fl d_s *. gap)
        in
        (* Exact E_pi H_S via contraction. *)
        let contracted, _, gamma_v = Subgraph.contract g s in
        let set_measured =
          if Traversal.is_connected contracted then
            Hitting.hitting_from_stationary contracted gamma_v
          else Float.nan
        in
        [
          name;
          Table.cell_i (Graph.n g);
          Table.cell_f !worst;
          Table.cell_f !worst_bound;
          (if !worst <= !worst_bound +. 1e-6 then "yes" else "NO");
          Table.cell_f set_measured;
          Table.cell_f set_bound;
          Table.cell_f !return_err;
        ])
      (small_families ~scale ~seed)
  in
  {
    Table.id = "hitting-bounds";
    title =
      "Lemma 6 / Corollary 9: exact hitting times from stationarity vs spectral bounds";
    header =
      [
        "graph";
        "n";
        "max EpiHv";
        "1/(gap piv)";
        "within";
        "EpiHS";
        "2m/(dS gap)";
        "return-id err";
      ];
    rows;
    notes =
      [
        "'within' checks Lemma 6 at the worst vertex; the set columns check Corollary 9 for S = {0,1}";
        "return-id err = max_v |pi_v E_v T_v+ - 1| must be ~0 (the identity in Theorem 5's proof)";
      ];
  }

let mixing_decay ~pool:_ ~scale ~seed =
  let n = match scale with Sweep.Tiny -> 40 | _ -> 100 in
  let rng = Ewalk_prng.Rng.create ~seed:(point_seed seed 2 n) () in
  let g = Gen_regular.random_regular_connected rng n 4 in
  (* Lazy walk so lambda_max = lambda_2 of the lazy chain. *)
  let lazy_op = Spectral.lazy_normalized_adjacency g in
  let dense = Ewalk_linalg.Csr.to_dense lazy_op in
  let eigs = Ewalk_linalg.Jacobi.eigenvalues dense in
  let lambda = Float.max (Float.abs eigs.(1)) (Float.abs eigs.(n - 1)) in
  let pi = Spectral.stationary g in
  (* On a regular graph the lazy normalised adjacency IS the lazy transition
     matrix, and it is symmetric, so evolving distributions with mul_vec is
     exact.  Track the worst pointwise deviation from every start. *)
  let p = lazy_op in
  let dists = Array.init n (fun u ->
      Array.init n (fun x -> if x = u then 1.0 else 0.0))
  in
  let horizon = match scale with Sweep.Tiny -> 20 | _ -> 40 in
  let rows = ref [] in
  for t = 1 to horizon do
    for u = 0 to n - 1 do
      dists.(u) <- Ewalk_linalg.Csr.mul_vec p dists.(u)
    done;
    if t mod 5 = 0 then begin
      let worst = ref 0.0 in
      for u = 0 to n - 1 do
        for x = 0 to n - 1 do
          let d = Float.abs (dists.(u).(x) -. pi.(x)) in
          if d > !worst then worst := d
        done
      done;
      (* eq. (5): |P_u^t(x) - pi_x| <= (pi_x/pi_u)^(1/2) lambda^t; on a
         regular graph the prefactor is 1. *)
      let bound = lambda ** fl t in
      rows :=
        [
          Table.cell_i t;
          Table.cell_f !worst;
          Table.cell_f bound;
          (if !worst <= bound +. 1e-9 then "yes" else "NO");
        ]
        :: !rows
    end
  done;
  {
    Table.id = "mixing-decay";
    title =
      Printf.sprintf
        "Eq. (5): lazy-walk convergence max|P^t - pi| vs lambda_max^t (random 4-regular, n=%d)"
        n;
    header = [ "t"; "max |P^t - pi|"; "lambda^t"; "within" ];
    rows = List.rev !rows;
    notes =
      [ "the measured deviation must sit below the spectral envelope at every t" ];
  }

let matthews_cover ~pool ~scale ~seed =
  let rows =
    List.filter_map
      (fun (name, g) ->
        if not (Traversal.is_connected g) then None
        else begin
          let bound = Hitting.matthews_upper_bound g in
          (* These graphs are tiny; buy sampling accuracy with extra trials
             (Matthews is exactly tight on K_n, so the comparison is at the
             boundary there). *)
          let trials = 10 * Sweep.trials scale in
          let rngs =
            Sweep.trial_rngs ~seed:(point_seed seed 3 (Graph.n g)) ~trials
          in
          let per_trial =
            Sweep.map_trials ?pool ~label:name
              (fun rng ->
                Ewalk.Cover.run_until_vertex_cover
                  ~cap:(Ewalk.Cover.default_cap g)
                  (Ewalk.Srw.process (Ewalk.Srw.create g rng ~start:0)))
              rngs
          in
          let acc = Stats.Online.create () in
          Array.iter
            (function
              | Some t -> Stats.Online.add acc (fl t)
              | None -> ())
            per_trial;
          if Stats.Online.count acc = 0 then None
          else
            Some
              [
                name;
                Table.cell_i (Graph.n g);
                Table.cell_f (Stats.Online.mean acc);
                Table.cell_f bound;
                (if Stats.Online.mean acc <= 1.05 *. bound then "yes"
                 else "NO");
              ]
        end)
      (small_families ~scale ~seed)
  in
  {
    Table.id = "matthews-bound";
    title = "Matthews bound: measured SRW cover time vs (max_uv E_u H_v) * H_n";
    header = [ "graph"; "n"; "srw cover (mean)"; "matthews"; "within" ];
    rows;
    notes =
      [
        "the bound is on the expectation and is exactly tight on K_n, so";
        "'within' allows 5% sampling slack around the boundary";
      ];
  }

let euler_overhead ~pool ~scale ~seed =
  let sizes =
    match Sweep.edge_sizes scale with
    | a :: b :: c :: _ -> [ a; b; c ]
    | sizes -> sizes
  in
  let families =
    [
      ("random-4-regular", fun rng n -> Exp_util.regular_graph rng ~n ~d:4);
      ("random-6-regular", fun rng n -> Exp_util.regular_graph rng ~n ~d:6);
      ( "torus",
        fun _rng n ->
          let side = max 3 (int_of_float (Float.round (sqrt (fl n)))) in
          Gen_classic.torus2d side side );
    ]
  in
  let rows =
    List.concat_map
      (fun (name, build) ->
        List.filter_map
          (fun n ->
            let trials = Sweep.trials scale in
            let rngs =
              Sweep.trial_rngs
                ~seed:(point_seed seed (4 + Hashtbl.hash name land 0xf) n)
                ~trials
            in
            let per_trial =
              Sweep.map_trials ?pool ~label:name
                (fun rng ->
                  let g = build rng n in
                  (* Offline optimum: the Euler circuit has length exactly
                     m. *)
                  let ok =
                    match Ewalk_graph.Euler.euler_circuit g ~start:0 with
                    | Some trail when List.length trail = Graph.m g -> true
                    | _ -> false
                  in
                  let ratio =
                    match Exp_util.edge_cover_eprocess rng g with
                    | Some ce -> Some (fl ce /. fl (Graph.m g))
                    | None -> None
                  in
                  (ok, ratio))
                rngs
            in
            let overhead = Stats.Online.create () in
            let euler_ok = ref true in
            Array.iter
              (fun (ok, ratio) ->
                if not ok then euler_ok := false;
                match ratio with
                | Some x -> Stats.Online.add overhead x
                | None -> ())
              per_trial;
            if Stats.Online.count overhead = 0 then None
            else
              Some
                [
                  name;
                  Table.cell_i n;
                  (if !euler_ok then "m" else "NO EULER");
                  Table.cell_f (Stats.Online.mean overhead);
                ])
          sizes)
      families
  in
  {
    Table.id = "euler-overhead";
    title =
      "E-process as an online Euler tour: C_E / m vs the offline optimum of exactly m steps";
    header = [ "family"; "n"; "euler circuit"; "C_E / m" ];
    rows;
    notes =
      [
        "every even-degree connected graph admits an m-step offline edge cover (Euler)";
        "the E-process' overhead factor stays small on expanders (eq. (3) bounds it by 1 + C_V(SRW)/m)";
      ];
  }

let team_speedup_rows ~pool ~scale ~seed ~ks =
  let n =
    match scale with Sweep.Tiny -> 1_000 | Sweep.Default -> 50_000 | Sweep.Full -> 200_000
  in
  let trials = Sweep.trials scale in
  let base_rounds = ref Float.nan in
  let rows =
    List.filter_map
      (fun k ->
        let rngs = Sweep.trial_rngs ~seed:(point_seed seed (40 + k) n) ~trials in
        let per_trial =
          Sweep.map_trials ?pool
            (fun rng ->
              let g = Exp_util.regular_graph rng ~n ~d:4 in
              let t = Ewalk_kernel.Team.create_spread g rng ~walkers:k in
              Ewalk.Cover.run_until_vertex_cover
                ~cap:(Ewalk.Cover.default_cap g)
                (Ewalk_kernel.Team.process t))
            rngs
        in
        let rounds_acc = Stats.Online.create () in
        let work_acc = Stats.Online.create () in
        Array.iter
          (function
            | Some steps ->
                Stats.Online.add work_acc (fl steps /. fl n);
                Stats.Online.add rounds_acc (fl steps /. fl k /. fl n)
            | None -> ())
          per_trial;
        if Stats.Online.count rounds_acc = 0 then None
        else begin
          let rounds = Stats.Online.mean rounds_acc in
          if k = 1 then base_rounds := rounds;
          Some
            [
              Table.cell_i k;
              Table.cell_i n;
              Table.cell_f (Stats.Online.mean work_acc);
              Table.cell_f rounds;
              Table.cell_f (!base_rounds /. rounds);
            ]
        end)
      ks
  in
  {
    Table.id = "team-speedup";
    title =
      "Extension: k E-process walkers sharing edge marks (random 4-regular)";
    header = [ "k"; "n"; "total work / n"; "rounds / n"; "speed-up" ];
    rows;
    notes =
      [
        "total work stays ~2n for every k (shared marks are consumed once)";
        "wall-clock rounds shrink near-linearly in k until red-walk stragglers dominate";
        "this extension is beyond the paper's scope (DESIGN.md section 4)";
      ];
  }

let team_speedup ~pool ~scale ~seed =
  team_speedup_rows ~pool ~scale ~seed ~ks:[ 1; 2; 4; 8; 16 ]

let team_speedup_at ~pool ~scale ~seed ~walkers =
  let ks = if walkers = 1 then [ 1 ] else [ 1; walkers ] in
  team_speedup_rows ~pool ~scale ~seed ~ks

let kernel_modes_rows ~pool ~scale ~seed ~ks =
  let module Engine = Ewalk_kernel.Engine in
  let n =
    match scale with
    | Sweep.Tiny -> 512
    | Sweep.Default -> 8_192
    | Sweep.Full -> 32_768
  in
  let trials = Sweep.trials scale in
  let rows =
    List.filter_map
      (fun k ->
        let rngs = Sweep.trial_rngs ~seed:(point_seed seed (60 + k) n) ~trials in
        let per_trial =
          Sweep.map_trials ?pool
            (fun rng ->
              let g = Exp_util.regular_graph rng ~n ~d:4 in
              let cap = Ewalk.Cover.default_cap g in
              let coop =
                let e =
                  Engine.create_spread ~mode:Engine.Cooperating Engine.E_uar g
                    rng ~walkers:k
                in
                Ewalk.Cover.run_until_vertex_cover ~cap (Engine.process e)
              in
              let compete =
                let e =
                  Engine.create_spread ~mode:Engine.Competing Engine.E_uar g
                    rng ~walkers:k
                in
                Option.map snd (Engine.run_until_first_cover ~cap e)
              in
              (coop, compete))
            rngs
        in
        let coop_acc = Stats.Online.create () in
        let compete_acc = Stats.Online.create () in
        Array.iter
          (fun (coop, compete) ->
            Option.iter (fun s -> Stats.Online.add coop_acc (fl s /. fl n)) coop;
            Option.iter
              (fun s -> Stats.Online.add compete_acc (fl s /. fl n))
              compete)
          per_trial;
        if Stats.Online.count coop_acc = 0 || Stats.Online.count compete_acc = 0
        then None
        else begin
          let coop = Stats.Online.mean coop_acc in
          let compete = Stats.Online.mean compete_acc in
          Some
            [
              Table.cell_i k;
              Table.cell_i n;
              Table.cell_f coop;
              Table.cell_f compete;
              Table.cell_f (compete /. Float.max coop 1e-12);
            ]
        end)
      ks
  in
  {
    Table.id = "kernel-modes";
    title =
      "Kernel engine: cooperating (shared marks, total work) vs competing \
       (private marks, first walker to cover) on random 4-regular";
    header =
      [ "k"; "n"; "coop total / n"; "compete first cover / n"; "ratio" ];
    rows;
    notes =
      [
        "cooperating: one shared visited set, steps counted across all walkers";
        "competing: private visited sets, the column is the first walker's own cover step";
        "at k=1 both columns measure the same single E-process walk";
      ];
  }

let kernel_modes ~pool ~scale ~seed =
  kernel_modes_rows ~pool ~scale ~seed ~ks:[ 1; 2; 4; 8 ]

let kernel_modes_at ~pool ~scale ~seed ~walkers =
  kernel_modes_rows ~pool ~scale ~seed ~ks:[ walkers ]

let coverage_profile ~pool ~scale ~seed =
  let n =
    match scale with
    | Sweep.Tiny -> 1_000
    | Sweep.Default -> 50_000
    | Sweep.Full -> 200_000
  in
  let checkpoints = [ 1; 2; 3; 5; 10 ] in
  let configs =
    [
      ("e-process", 4); ("e-process", 3); ("srw", 4); ("srw", 3);
    ]
  in
  let trials = Sweep.trials scale in
  let rows =
    List.map
      (fun (pname, d) ->
        let rngs =
          Sweep.trial_rngs
            ~seed:(point_seed seed (50 + (10 * d) + String.length pname) n)
            ~trials
        in
        let per_trial =
          Sweep.map_trials ?pool ~label:pname
            (fun rng ->
              let g = Exp_util.regular_graph rng ~n ~d in
              let p =
                match pname with
                | "e-process" ->
                    Ewalk.Eprocess.process
                      (Ewalk.Eprocess.create g rng ~start:0)
                | _ -> Ewalk.Srw.process (Ewalk.Srw.create g rng ~start:0)
              in
              let profile =
                Ewalk_analysis.Profile.run ~cap:(20 * n)
                  ~checkpoint_every:(max 1 (n / 4))
                  p
              in
              let fracs =
                List.map
                  (fun c ->
                    match
                      Ewalk_analysis.Profile.stragglers_at profile
                        ~steps:(c * n)
                    with
                    | Some u -> Some (fl u /. fl n)
                    | None -> None)
                  checkpoints
              in
              (fracs, Ewalk_analysis.Profile.decay_rate profile ~n))
            rngs
        in
        let sums = Array.make (List.length checkpoints) 0.0 in
        let rate = Stats.Online.create () in
        Array.iter
          (fun (fracs, r) ->
            List.iteri
              (fun i frac ->
                match frac with
                | Some x -> sums.(i) <- sums.(i) +. x
                | None -> ())
              fracs;
            match r with
            | Some r -> Stats.Online.add rate r
            | None -> ())
          per_trial;
        Printf.sprintf "%s d=%d" pname d
        :: List.map
             (fun i -> Table.cell_f (sums.(i) /. fl trials))
             (List.init (List.length checkpoints) (fun i -> i))
        @ [
            (if Stats.Online.count rate > 0 then
               Table.cell_f (Stats.Online.mean rate)
             else "-");
          ])
      configs
  in
  {
    Table.id = "coverage-profile";
    title =
      Printf.sprintf
        "Unvisited-vertex fraction u(t)/n at t = c*n checkpoints (random regular, n=%d)"
        n;
    header =
      "process"
      :: List.map (fun c -> Printf.sprintf "t=%dn" c) checkpoints
      @ [ "decay rate" ];
    rows;
    notes =
      [
        "e-process d=4: stragglers vanish by t ~ 2n (linear cover)";
        "e-process d=3: a Theta(1) straggler fraction persists past 2n and decays exponentially (coupon collecting)";
        "srw: the classical exp(-t/(c n)) straggler decay on both parities";
      ];
  }

let concentration ~pool ~scale ~seed =
  let n =
    match scale with
    | Sweep.Tiny -> 500
    | Sweep.Default -> 20_000
    | Sweep.Full -> 100_000
  in
  let trials =
    match scale with Sweep.Tiny -> 10 | Sweep.Default -> 20 | Sweep.Full -> 30
  in
  let processes =
    [
      ( "e-process",
        fun g rng -> Ewalk.Eprocess.process (Ewalk.Eprocess.create g rng ~start:0) );
      ("srw", fun g rng -> Ewalk.Srw.process (Ewalk.Srw.create g rng ~start:0));
      ( "rwc(2)",
        fun g rng -> Ewalk.Rwc.process (Ewalk.Rwc.create ~d:2 g rng ~start:0) );
      ( "rotor",
        fun g rng ->
          Ewalk.Rotor.process
            (Ewalk.Rotor.create ~randomize_rotors:true g rng ~start:0) );
    ]
  in
  let rows =
    List.filter_map
      (fun (name, make) ->
        let rngs =
          Sweep.trial_rngs
            ~seed:(point_seed seed (60 + (String.length name)) n)
            ~trials
        in
        let per_trial =
          Sweep.map_trials ?pool ~label:name
            (fun rng ->
              let g = Exp_util.regular_graph rng ~n ~d:4 in
              Ewalk.Cover.run_until_vertex_cover
                ~cap:(Ewalk.Cover.default_cap g)
                (make g rng))
            rngs
        in
        (* Prepend in trial order: reproduces the sequential code's
           reversed sample list, keeping the summary bit-identical. *)
        let samples = ref [] in
        Array.iter
          (function
            | Some t -> samples := fl t :: !samples
            | None -> ())
          per_trial;
        match !samples with
        | [] | [ _ ] -> None
        | s ->
            let summary = Ewalk_analysis.Stats.summarize (Array.of_list s) in
            Some
              [
                name;
                Table.cell_i (List.length s);
                Table.cell_f summary.Ewalk_analysis.Stats.mean;
                Table.cell_f summary.Ewalk_analysis.Stats.std;
                Table.cell_f
                  (summary.Ewalk_analysis.Stats.std
                  /. summary.Ewalk_analysis.Stats.mean);
                Table.cell_f
                  ((summary.Ewalk_analysis.Stats.max
                   -. summary.Ewalk_analysis.Stats.min)
                  /. summary.Ewalk_analysis.Stats.mean);
              ])
      processes
  in
  {
    Table.id = "concentration";
    title =
      Printf.sprintf
        "Cover-time concentration across trials (random 4-regular, n=%d)" n;
    header = [ "process"; "trials"; "mean"; "std"; "cv=std/mean"; "range/mean" ];
    rows;
    notes =
      [
        "Avin-Krishnamachari report that edge/vertex-aware walks concentrate;";
        "the E-process' coefficient of variation is an order of magnitude below the SRW's";
      ];
  }

let doubled_odd ~pool ~scale ~seed =
  let sizes =
    match scale with
    | Sweep.Tiny -> [ 500; 1_000 ]
    | Sweep.Default -> [ 5_000; 20_000; 50_000 ]
    | Sweep.Full -> [ 50_000; 100_000; 200_000 ]
  in
  let trials = Sweep.trials scale in
  let rows =
    List.concat_map
      (fun n ->
        let rngs = Sweep.trial_rngs ~seed:(point_seed seed 70 n) ~trials in
        let per_trial =
          Sweep.map_trials ?pool
            (fun rng ->
              let g = Exp_util.regular_graph rng ~n ~d:3 in
              let plain_t = Exp_util.vertex_cover_eprocess rng g in
              let g2 = Ops.double_edges g in
              (plain_t, Exp_util.vertex_cover_eprocess rng g2))
            rngs
        in
        let plain = Stats.Online.create () and doubled = Stats.Online.create () in
        Array.iter
          (fun (plain_t, doubled_t) ->
            (match plain_t with
            | Some t -> Stats.Online.add plain (fl t /. fl n)
            | None -> ());
            match doubled_t with
            | Some t -> Stats.Online.add doubled (fl t /. fl n)
            | None -> ())
          per_trial;
        if Stats.Online.count plain = 0 || Stats.Online.count doubled = 0 then []
        else
          [
            [
              Table.cell_i n;
              Table.cell_f (Stats.Online.mean plain);
              Table.cell_f (Stats.Online.mean doubled);
              Table.cell_f
                (Stats.Online.mean plain /. Stats.Online.mean doubled);
            ];
          ])
      sizes
  in
  {
    Table.id = "doubled-odd";
    title =
      "Why Theorem 1 needs ell-goodness: doubling the edges of a 3-regular graph restores even degrees but NOT linear cover";
    header = [ "n"; "C_V/n (3-regular)"; "C_V/n (doubled)"; "ratio" ];
    rows;
    notes =
      [
        "doubling every edge gives even degree 6 on the same topology - but every vertex now";
        "sits on three 2-cycles, so ell collapses to the constant 4 and Theorem 1 only gives";
        "O(n + n log n / 4): BOTH columns grow like ln n, within a constant of each other.";
        "a negative control showing the even-degree hypothesis alone is not what buys Theta(n);";
        "the ell-goodness hypothesis does the real work (cf. the ell-good and fig1 experiments)";
      ];
  }

let high_girth ~pool ~scale ~seed =
  let n = match scale with Sweep.Tiny -> 500 | _ -> 10_000 in
  let targets = [ 3; 6 ] in
  let trials = match scale with Sweep.Tiny -> 2 | _ -> 3 in
  let rows =
    List.filter_map
      (fun target ->
        let rngs = Sweep.trial_rngs ~seed:(point_seed seed (80 + target) n) ~trials in
        let per_trial =
          Sweep.map_trials ?pool
            (fun rng ->
              let g = Exp_util.regular_graph rng ~n ~d:4 in
              let g =
                if target > 3 then Switch.boost_girth rng g ~target else g
              in
              let girth =
                match Girth.girth_at_most g 24 with Some x -> x | None -> 24
              in
              let gap =
                1.0
                -. Ewalk_spectral.Spectral.lambda_max_power ~tol:1e-7
                     ~max_iter:2_000 g
              in
              let bound =
                Ewalk_theory.Bounds.theorem3_edge_cover ~m:(Graph.m g) ~girth
                  ~max_degree:4 ~gap:(Float.max gap 1e-6) n
              in
              let ce_ratio =
                match Exp_util.edge_cover_eprocess rng g with
                | Some t -> Some (fl t /. fl (Graph.m g))
                | None -> None
              in
              (girth, bound /. fl (Graph.m g), ce_ratio))
            rngs
        in
        let ce = Stats.Online.create () in
        let bound_acc = Stats.Online.create () in
        let girth_min = ref max_int in
        Array.iter
          (fun (girth, bound_ratio, ce_ratio) ->
            if girth < !girth_min then girth_min := girth;
            Stats.Online.add bound_acc bound_ratio;
            match ce_ratio with
            | Some x -> Stats.Online.add ce x
            | None -> ())
          per_trial;
        if Stats.Online.count ce = 0 then None
        else
          Some
            [
              Table.cell_i target;
              Table.cell_i !girth_min;
              Table.cell_f (Stats.Online.mean ce);
              Table.cell_f (Stats.Online.mean bound_acc);
              (if Stats.Online.mean ce <= Stats.Online.mean bound_acc then
                 "yes"
               else "NO");
            ])
      targets
  in
  {
    Table.id = "high-girth";
    title =
      Printf.sprintf
        "Theorem 3's girth term on switch-boosted high-girth 4-regular graphs (n=%d)"
        n;
    header =
      [ "girth target"; "girth achieved"; "C_E/m"; "Thm3 bound/m"; "within" ];
    rows;
    notes =
      [
        "the boosted generator realises the paper's title objects: high girth even degree expanders";
        "the Theorem 3 envelope tightens as the girth grows; the measured C_E sits far below both";
        "on random regular graphs Corollary 4's O(omega n) is the binding estimate - the girth term";
        "pays off on adversarial girth-g graphs, not on these (already nearly cycle-free) samples";
      ];
  }
