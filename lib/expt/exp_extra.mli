(** Deeper-cut experiments: exact hitting-time checks of the paper's
    Section 2 lemmas, mixing decay, the Matthews bound, and the Euler-tour
    optimality gap of the E-process.

    Every experiment takes a [~pool] ([None] for the sequential path);
    trial sweeps then shard across the pool's domains with bit-identical
    tables.  [hitting_bounds] and [mixing_decay] are deterministic
    single-instance computations and always run sequentially. *)

val hitting_bounds :
  pool:Ewalk_par.Pool.t option -> scale:Sweep.scale -> seed:int -> Table.t
(** Lemma 6 / Corollary 9 / the return-time identity: exact [E_pi H_v]
    against [1/((1 - lambda_max) pi_v)], exact [E_pi H_S] against
    [2m/(d(S)(1 - lambda_max))], and [E_v T_v^+ = 1/pi_v]. *)

val mixing_decay :
  pool:Ewalk_par.Pool.t option -> scale:Sweep.scale -> seed:int -> Table.t
(** Eq. (5): measured [max |P_u^t(x) - pi_x|] against
    [max (pi_x/pi_u)^(1/2) lambda_max^t] as [t] grows (lazy walk). *)

val matthews_cover :
  pool:Ewalk_par.Pool.t option -> scale:Sweep.scale -> seed:int -> Table.t
(** The Matthews bound of Section 2.2's toolkit: measured SRW cover times
    against [(max E_u H_v) H_n] from exact hitting times. *)

val euler_overhead :
  pool:Ewalk_par.Pool.t option -> scale:Sweep.scale -> seed:int -> Table.t
(** Eq. (3)'s floor made concrete: an Euler circuit covers all edges in
    exactly [m] steps; the E-process' [C_E/m] is its online overhead over
    that offline optimum. *)

val team_speedup :
  pool:Ewalk_par.Pool.t option -> scale:Sweep.scale -> seed:int -> Table.t
(** Extension beyond the paper: [k] E-process walkers with shared edge
    marks (the kernel-backed [Ewalk_kernel.Team]).  Total work to cover
    stays ~2n for every [k]; the wall-clock (rounds) improves
    near-linearly in [k]. *)

val team_speedup_at :
  pool:Ewalk_par.Pool.t option ->
  scale:Sweep.scale ->
  seed:int ->
  walkers:int ->
  Table.t
(** {!team_speedup} at one chosen walker count (plus the [k=1] baseline
    row the speed-up column needs) — the [eproc experiment --walkers]
    hook. *)

val kernel_modes :
  pool:Ewalk_par.Pool.t option -> scale:Sweep.scale -> seed:int -> Table.t
(** The lockstep kernel's two marking disciplines side by side: total
    cooperative work to cover vs the first competing walker's own cover
    step, per walker count. *)

val kernel_modes_at :
  pool:Ewalk_par.Pool.t option ->
  scale:Sweep.scale ->
  seed:int ->
  walkers:int ->
  Table.t
(** {!kernel_modes} at one chosen walker count. *)

val coverage_profile :
  pool:Ewalk_par.Pool.t option -> scale:Sweep.scale -> seed:int -> Table.t
(** The whole [u(t)] curve behind the cover-time numbers: unvisited-vertex
    fractions at checkpoints [t = n, 2n, 3n, 5n, 10n] for the E-process and
    the SRW on even (d=4) and odd (d=3) random regular graphs — the
    straggler population that Section 5's coupon-collector argument is
    about. *)

val concentration :
  pool:Ewalk_par.Pool.t option -> scale:Sweep.scale -> seed:int -> Table.t
(** The Avin-Krishnamachari observation: cover times of edge-aware walks
    concentrate far more sharply than the SRW's (coefficient of variation
    across repeated trials). *)

val doubled_odd :
  pool:Ewalk_par.Pool.t option -> scale:Sweep.scale -> seed:int -> Table.t
(** A negative control that isolates Theorem 1's hypotheses: doubling every
    edge of a 3-regular graph restores even degrees, but pins [ell] at the
    constant 4 (three digons through every vertex), so the cover time
    stays [Theta(n log n)].  Even degrees alone buy nothing — the
    [ell]-goodness term does the real work. *)

val high_girth :
  pool:Ewalk_par.Pool.t option -> scale:Sweep.scale -> seed:int -> Table.t
(** Theorem 3's girth dependence, on actual high-girth even-degree
    expanders produced by the switch-boosting generator: the bound
    tightens with the girth while the measured [C_E] stays far below it
    (Corollary 4's [O(omega n)] is the binding estimate on random regular
    graphs). *)
