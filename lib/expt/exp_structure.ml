open Ewalk_graph
module Stats = Ewalk_analysis.Stats
module Blue = Ewalk_analysis.Blue
module Goodness = Ewalk_analysis.Goodness
module Density = Ewalk_analysis.Subgraph_density
module Bounds = Ewalk_theory.Bounds
module Eprocess = Ewalk.Eprocess
module Coverage = Ewalk.Coverage

let fl = float_of_int

let point_seed seed tag n = seed + (15_485_863 * tag) + n

let spectral_p1 ~pool ~scale ~seed =
  let degrees = [ 3; 4; 6; 8 ] in
  let sizes = Sweep.spectral_sizes scale in
  (* At Tiny the dense-Jacobi path behind [adjacency_lambda_2] (taken for
     n <= 256) dominates the whole bench suite's wall-time, so the smoke
     scale estimates lambda_2 by deflated Lanczos instead — agreement with
     the dense answer is ~1e-6, far below the table's 3 digits.  The bench
     ledger gates this experiment's recorded seconds. *)
  let lambda2 scale g ~r =
    match scale with
    | Sweep.Tiny -> float_of_int r *. Ewalk_spectral.Spectral.lambda_2_lanczos g
    | Sweep.Default | Sweep.Full ->
        Ewalk_spectral.Spectral.adjacency_lambda_2 ~tol:1e-8 ~max_iter:4_000 g
  in
  let rows =
    List.concat_map
      (fun r ->
        List.filter_map
          (fun n ->
            if n * r mod 2 = 1 then None
            else begin
              let s =
                Sweep.mean_of_trials ?pool ~seed:(point_seed seed r n)
                  ~trials:(Sweep.trials scale) (fun rng ->
                    let g = Exp_util.regular_graph rng ~n ~d:r in
                    lambda2 scale g ~r)
              in
              let bound = Bounds.friedman_lambda2 r in
              Some
                [
                  Table.cell_i r;
                  Table.cell_i n;
                  Table.cell_f s.Stats.mean;
                  Table.cell_f s.Stats.max;
                  Table.cell_f bound;
                  (if s.Stats.max <= bound then "yes" else "NO");
                ]
            end)
          sizes)
      degrees
  in
  {
    Table.id = "spectral-p1";
    title =
      "Property P1 (Friedman): lambda_2(adjacency) of random r-regular vs 2 sqrt(r-1) + eps";
    header = [ "r"; "n"; "mean l2(A)"; "max l2(A)"; "bound"; "within" ];
    rows;
    notes =
      [
        "P1 is the expander certificate behind Theorem 1's gap term";
        "eps = 0.1 in the bound column";
      ];
  }

let density_p2 ~pool ~scale ~seed =
  let sizes = Sweep.spectral_sizes scale in
  let samples =
    match scale with Sweep.Tiny -> 100 | Sweep.Default -> 500 | Sweep.Full -> 2_000
  in
  let rows =
    List.map
      (fun n ->
        let s_size = max 4 (int_of_float (log (fl n))) in
        (* Per-trial (allowance, density) pairs; the fold keeps the last
           trial's allowance, matching the sequential last-write-wins. *)
        let per_trial =
          Sweep.map_trials ?pool
            (fun rng ->
              let g = Exp_util.regular_graph rng ~n ~d:4 in
              ( Density.p2_excess_allowance g ~s:s_size,
                Density.max_density_sampled rng g ~s:s_size ~samples ))
            (Sweep.trial_rngs ~seed:(point_seed seed 2 n)
               ~trials:(Sweep.trials scale))
        in
        let worst = ref 0 in
        let allowance = ref 0 in
        Array.iter
          (fun (a, d) ->
            allowance := a;
            if d > !worst then worst := d)
          per_trial;
        [
          Table.cell_i n;
          Table.cell_i s_size;
          Table.cell_i !worst;
          Table.cell_i (s_size + !allowance);
          (if !worst <= s_size + !allowance then "yes" else "NO");
        ])
      sizes
  in
  {
    Table.id = "density-p2";
    title =
      "Property P2: max induced edges over sampled connected s-sets vs s + a (random 4-regular)";
    header = [ "n"; "s"; "max edges"; "s + a"; "within" ];
    rows;
    notes =
      [
        Printf.sprintf "%d sampled connected sets per graph" samples;
        "P2 implies the graph is Omega(log n)-good (Corollary 2's proof)";
      ];
  }

let ell_good ~pool:_ ~scale ~seed =
  let sizes =
    match scale with
    | Sweep.Tiny -> [ 30; 60 ]
    | Sweep.Default -> [ 50; 100; 200 ]
    | Sweep.Full -> [ 50; 100; 200; 400 ]
  in
  let max_len = match scale with Sweep.Tiny -> 8 | _ -> 10 in
  let rows = ref [] in
  (* Random 4-regular instances: certified min-over-vertices bound. *)
  List.iter
    (fun n ->
      let rng = Ewalk_prng.Rng.create ~seed:(point_seed seed 3 n) () in
      let g = Exp_util.regular_graph rng ~n ~d:4 in
      let min_lower = ref max_int and min_witness = ref max_int in
      for v = 0 to Graph.n g - 1 do
        let b = Goodness.ell_of_vertex g v ~max_len in
        if b.Goodness.lower < !min_lower then min_lower := b.Goodness.lower;
        match b.Goodness.witness with
        | Some w when w < !min_witness -> min_witness := w
        | _ -> ()
      done;
      rows :=
        [
          Printf.sprintf "random-4-regular(n=%d)" n;
          Table.cell_i !min_lower;
          (if !min_witness = max_int then "-" else Table.cell_i !min_witness);
          Table.cell_f (Bounds.p2_ell ~n ~r:4);
        ]
        :: !rows)
    sizes;
  (* Known families with hand-checkable ell. *)
  let known =
    [
      ("cycle(20), ell = 20", Gen_classic.cycle 20, 12);
      ("double-cycle(12), ell = 3", Gen_classic.double_cycle 12, 6);
      ("torus(6x6), ell = 7", Gen_classic.torus2d 6 6, 8);
    ]
  in
  List.iter
    (fun (name, g, ml) ->
      let min_lower = ref max_int and min_witness = ref max_int in
      for v = 0 to Graph.n g - 1 do
        let b = Goodness.ell_of_vertex g v ~max_len:ml in
        if b.Goodness.lower < !min_lower then min_lower := b.Goodness.lower;
        match b.Goodness.witness with
        | Some w when w < !min_witness -> min_witness := w
        | _ -> ()
      done;
      rows :=
        [
          name;
          Table.cell_i !min_lower;
          (if !min_witness = max_int then "-" else Table.cell_i !min_witness);
          "-";
        ]
        :: !rows)
    known;
  {
    Table.id = "ell-good";
    title = "ell-goodness: certified lower bound / smallest witness per graph";
    header = [ "graph"; "certified ell >="; "smallest witness"; "P2 prediction" ];
    rows = List.rev !rows;
    notes =
      [
        "witness '-' means no small even subgraph exists within the search radius (the good case)";
      ];
  }

(* Run an E-process and report on Observation 10/11 invariants. *)
let invariant_row name g rng even_expected =
  let t = Eprocess.create ~record_phases:true g rng ~start:0 in
  let p = Eprocess.process t in
  let even_checks = ref 0 and even_failures = ref 0 in
  let cap = Ewalk.Cover.default_cap g in
  (* Interleave stepping with mid-run blue-degree parity checks taken only
     in red phases, as Observation 11 requires. *)
  let continue_ = ref true in
  while !continue_ do
    if Coverage.all_edges_visited (Eprocess.coverage t) then continue_ := false
    else if Eprocess.steps t >= cap then continue_ := false
    else begin
      Ewalk.Cover.run_steps p (max 1 (Graph.n g / 7));
      if not (Eprocess.in_blue_phase t) then begin
        incr even_checks;
        let flags = Coverage.visited_edge_flags (Eprocess.coverage t) in
        if not (Blue.all_blue_degrees_even g ~visited:flags) then
          incr even_failures
      end
    end
  done;
  let phases = Eprocess.phase_log t in
  let blue_phases =
    List.filter (fun ph -> ph.Eprocess.kind = Eprocess.Blue) phases
  in
  let returning =
    List.length
      (List.filter
         (fun ph -> ph.Eprocess.start_vertex = ph.Eprocess.end_vertex)
         blue_phases)
  in
  let total = List.length blue_phases in
  [
    name;
    Table.cell_i total;
    Printf.sprintf "%d/%d" returning total;
    Printf.sprintf "%d/%d" (!even_checks - !even_failures) !even_checks;
    (if even_expected then "all must hold" else "expected to fail");
  ]

let blue_invariants ~pool:_ ~scale ~seed =
  let n = match scale with Sweep.Tiny -> 300 | _ -> 3_000 in
  let rng = Ewalk_prng.Rng.create ~seed:(point_seed seed 4 n) () in
  let rows =
    [
      invariant_row "random-4-regular"
        (Exp_util.regular_graph rng ~n ~d:4)
        rng true;
      invariant_row "random-6-regular"
        (Exp_util.regular_graph rng ~n ~d:6)
        rng true;
      invariant_row "torus"
        (Gen_classic.torus2d 40 40)
        rng true;
      invariant_row "random-3-regular (odd!)"
        (Exp_util.regular_graph rng ~n ~d:3)
        rng false;
    ]
  in
  {
    Table.id = "blue-invariants";
    title =
      "Observations 10/11: blue phases return to their start; blue degrees even in red phases";
    header =
      [ "graph"; "blue phases"; "returning"; "even-degree checks ok"; "expectation" ];
    rows;
    notes =
      [
        "even-degree graphs: every blue phase must end at its start vertex";
        "odd-degree graphs break the parity argument - returning < total expected";
      ];
  }

(* One trial of the star-dynamics measurement: run the E-process to vertex
   cover, snapshotting the blue subgraph every n/4 steps.  Returns
   (max simultaneous isolated stars, distinct star centres ever seen,
    surrounded-before-visited count, cover time). *)
let star_trial rng ~n ~d =
  let g = Exp_util.regular_graph rng ~n ~d in
  let t = Eprocess.create g rng ~start:0 in
  let p = Eprocess.process t in
  let cov = Eprocess.coverage t in
  let ever = Hashtbl.create 256 in
  let max_simul = ref 0 in
  let census () =
    let flags = Coverage.visited_edge_flags cov in
    let simul = ref 0 in
    List.iter
      (fun comp ->
        if Array.length comp.Blue.edges = d then begin
          match Blue.star_center g comp with
          | Some c when not (Coverage.vertex_visited cov c) ->
              incr simul;
              Hashtbl.replace ever c ()
          | _ -> ()
        end)
      (Blue.components g ~visited:flags);
    if !simul > !max_simul then max_simul := !simul
  in
  let cap = Ewalk.Cover.default_cap g in
  let continue_ = ref true in
  while !continue_ do
    Ewalk.Cover.run_steps p (max 1 (n / 4));
    census ();
    if Coverage.all_vertices_visited cov || Eprocess.steps t >= cap then
      continue_ := false
  done;
  let surrounded = ref 0 in
  for v = 0 to n - 1 do
    let fv = Coverage.first_visit cov v in
    let all_before =
      Graph.fold_neighbors g v
        (fun acc w _ ->
          acc
          && Coverage.first_visit cov w >= 0
          && Coverage.first_visit cov w < fv)
        true
    in
    if fv > 0 && all_before then incr surrounded
  done;
  (!max_simul, Hashtbl.length ever, !surrounded, Eprocess.steps t)

let stars_r3 ~pool ~scale ~seed =
  let sizes =
    match scale with
    | Sweep.Tiny -> [ 2_000 ]
    | Sweep.Default -> [ 10_000; 30_000; 100_000 ]
    | Sweep.Full -> [ 50_000; 100_000; 200_000; 400_000 ]
  in
  let degrees = [ 3; 4 ] in
  let rows =
    List.concat_map
      (fun d ->
        List.map
          (fun n ->
            let trials = Sweep.trials scale in
            let rngs = Sweep.trial_rngs ~seed:(point_seed seed (5 + d) n) ~trials in
            let per_trial =
              Sweep.map_trials ?pool (fun rng -> star_trial rng ~n ~d) rngs
            in
            let max_s = Stats.Online.create ()
            and ever_s = Stats.Online.create ()
            and surr_s = Stats.Online.create ()
            and cover_s = Stats.Online.create () in
            Array.iter
              (fun (max_simul, ever, surrounded, cover) ->
                Stats.Online.add max_s (fl max_simul /. fl n);
                Stats.Online.add ever_s (fl ever /. fl n);
                Stats.Online.add surr_s (fl surrounded /. fl n);
                Stats.Online.add cover_s (fl cover /. (fl n *. log (fl n))))
              per_trial;
            [
              Table.cell_i d;
              Table.cell_i n;
              Table.cell_f (Stats.Online.mean max_s);
              Table.cell_f (Stats.Online.mean ever_s);
              Table.cell_f (Stats.Online.mean surr_s);
              Table.cell_f (Stats.Online.mean cover_s);
            ])
          sizes)
      degrees
  in
  {
    Table.id = "stars-r3";
    title =
      "Section 5: isolated blue star dynamics on random d-regular graphs (d=3 vs even control d=4)";
    header =
      [
        "d";
        "n";
        "max stars/n";
        "ever stars/n";
        "surrounded/n";
        "cover/(n ln n)";
      ];
    rows;
    notes =
      [
        Printf.sprintf
          "paper heuristic: turn-away probability (1/2)^3 strands ~%.3f n star centres (idealised single blue sweep)"
          (Bounds.isolated_star_fraction ());
        "d=4 control: Observation 11 forbids odd-degree blue components, so star counts must be 0";
        "d=3: stars form and are consumed concurrently; collecting them costs the red walk Omega(n log n) (see cover/(n ln n) column vs d=4)";
      ];
  }

let cycle_census ~pool ~scale ~seed =
  let n, max_len =
    match scale with
    | Sweep.Tiny -> (500, 6)
    | Sweep.Default -> (10_000, 8)
    | Sweep.Full -> (20_000, 9)
  in
  let r = 4 in
  let trials = Sweep.trials scale in
  let rngs = Sweep.trial_rngs ~seed:(point_seed seed 6 n) ~trials in
  let per_trial =
    Sweep.map_trials ?pool
      (fun rng ->
        let g = Exp_util.regular_graph rng ~n ~d:r in
        Girth.count_cycles g ~max_len)
      rngs
  in
  (* Sum in trial order so float accumulation matches the sequential run. *)
  let sums = Array.make (max_len + 1) 0.0 in
  Array.iter
    (fun counts -> Array.iteri (fun k c -> sums.(k) <- sums.(k) +. fl c) counts)
    per_trial;
  let rows = ref [] in
  for k = 3 to max_len do
    let mean = sums.(k) /. fl trials in
    let expected = Bounds.expected_cycles ~r ~k in
    rows :=
      [
        Table.cell_i k;
        Table.cell_f mean;
        Table.cell_f expected;
        Table.cell_f (mean /. expected);
      ]
      :: !rows
  done;
  {
    Table.id = "cycle-census";
    title =
      Printf.sprintf
        "Corollary 4's proof: N_k on random %d-regular (n=%d) vs E N_k = (r-1)^k / 2k"
        r n;
    header = [ "k"; "mean N_k"; "E N_k"; "ratio" ];
    rows = List.rev !rows;
    notes = [ "ratios near 1 validate the Poisson cycle-count heuristic" ];
  }
