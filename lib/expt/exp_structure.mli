(** Structural experiments: spectra (P1), subgraph density (P2),
    [ell]-goodness, blue-subgraph invariants, the 3-regular star census and
    the small-cycle census.

    Every experiment takes a [~pool] ([None] for the sequential path);
    trial sweeps then shard across the pool's domains with bit-identical
    tables.  [ell_good] and [blue_invariants] have no independent trial
    generators and always run sequentially. *)

val spectral_p1 :
  pool:Ewalk_par.Pool.t option -> scale:Sweep.scale -> seed:int -> Table.t
(** Property P1 (Friedman): measured second adjacency eigenvalue of random
    [r]-regular graphs vs [2 sqrt (r-1) + eps]. *)

val density_p2 :
  pool:Ewalk_par.Pool.t option -> scale:Sweep.scale -> seed:int -> Table.t
(** Property P2: sampled connected [s]-sets never induce more than [s + a]
    edges. *)

val ell_good :
  pool:Ewalk_par.Pool.t option -> scale:Sweep.scale -> seed:int -> Table.t
(** Corollary 2's engine: certified [ell(v)] bounds on small even-regular
    graphs, against the P2-implied [log n / (4 log re)]. *)

val blue_invariants :
  pool:Ewalk_par.Pool.t option -> scale:Sweep.scale -> seed:int -> Table.t
(** Observations 10/11: blue phases return to their start vertex and blue
    degrees stay even on even-degree graphs — and both fail on odd-degree
    graphs. *)

val stars_r3 :
  pool:Ewalk_par.Pool.t option -> scale:Sweep.scale -> seed:int -> Table.t
(** Section 5: fraction of vertices stranded at the centre of an isolated
    blue star on random 3-regular graphs, vs the predicted 1/8. *)

val cycle_census :
  pool:Ewalk_par.Pool.t option -> scale:Sweep.scale -> seed:int -> Table.t
(** Corollary 4's proof: measured [N_k] vs [E N_k = (r-1)^k / 2k] on random
    regular graphs. *)
