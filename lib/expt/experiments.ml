type entry = {
  id : string;
  paper_item : string;
  run : pool:Ewalk_par.Pool.t option -> scale:Sweep.scale -> seed:int -> Table.t;
  run_walkers :
    (pool:Ewalk_par.Pool.t option ->
    scale:Sweep.scale ->
    seed:int ->
    walkers:int ->
    Table.t)
    option;
}

let entry ?run_walkers id paper_item run = { id; paper_item; run; run_walkers }

let all =
  [
    entry "fig1" "Figure 1" Exp_cover.fig1;
    entry "thm1-scaling" "Theorem 1 / eq. (1) / Corollary 2" Exp_cover.thm1_scaling;
    entry "rule-independence" "Theorem 1 (rule A arbitrary)" Exp_cover.rule_independence;
    entry "srw-lower" "Theorem 5 (Radzik) / Feige" Exp_cover.srw_lower;
    entry "edge-cover-sandwich" "eq. (3) / Observation 12" Exp_edge.edge_cover_sandwich;
    entry "hypercube-edge" "Section 1 hypercube example" Exp_edge.hypercube_edge;
    entry "grw-bound" "eq. (2) (Orenshtein-Shinkar)" Exp_edge.grw_bound;
    entry "cor4-edge" "Corollary 4" Exp_edge.cor4_edge;
    entry "spectral-p1" "Property P1 (Friedman)" Exp_structure.spectral_p1;
    entry "density-p2" "Property P2" Exp_structure.density_p2;
    entry "ell-good" "ell-goodness (Corollary 2's proof)" Exp_structure.ell_good;
    entry "blue-invariants" "Observations 10/11" Exp_structure.blue_invariants;
    entry "stars-r3" "Section 5 (odd degree intuition)" Exp_structure.stars_r3;
    entry "cycle-census" "Corollary 4's proof (E N_k)" Exp_structure.cycle_census;
    entry "process-compare" "Section 1 related work" Exp_cover.process_compare;
    entry "blanket-r-visits" "eq. (4) (blanket time)" Exp_cover.blanket_r_visits;
    entry "odd-even-frontier" "Section 5 (even degree constraint)" Exp_cover.odd_even_frontier;
    entry "hitting-bounds" "Lemma 6 / Corollary 9 / return-time identity" Exp_extra.hitting_bounds;
    entry "mixing-decay" "eq. (5) (convergence to stationarity)" Exp_extra.mixing_decay;
    entry "matthews-bound" "Section 2.2 toolkit (Matthews/Kahn et al.)" Exp_extra.matthews_cover;
    entry "euler-overhead" "eq. (3) floor (Euler tour optimum)" Exp_extra.euler_overhead;
    entry ~run_walkers:Exp_extra.team_speedup_at "team-speedup"
      "extension: k walkers, shared marks" Exp_extra.team_speedup;
    entry ~run_walkers:Exp_extra.kernel_modes_at "kernel-modes"
      "extension: lockstep kernel, cooperating vs competing marks"
      Exp_extra.kernel_modes;
    entry "coverage-profile" "Section 5 mechanism (straggler decay)" Exp_extra.coverage_profile;
    entry "concentration" "related work (Avin-Krishnamachari concentration)" Exp_extra.concentration;
    entry "doubled-odd" "Theorem 1 hypothesis isolation (negative control)" Exp_extra.doubled_odd;
    entry "high-girth" "Theorem 3 (high girth even degree expanders)" Exp_extra.high_girth;
  ]

let find id = List.find_opt (fun e -> e.id = id) all

let ids () = List.map (fun e -> e.id) all

let run_timed ?pool ?walkers e ~scale ~seed =
  Ewalk_obs.Prof.span_ambient ("experiment:" ^ e.id) @@ fun () ->
  let go () =
    match (walkers, e.run_walkers) with
    | Some w, Some f -> f ~pool ~scale ~seed ~walkers:w
    | _ -> e.run ~pool ~scale ~seed
  in
  let table, span = Ewalk_obs.Timer.with_span e.id go in
  (table, Ewalk_obs.Timer.elapsed span)

let record_run metrics e ~table ~seconds =
  let open Ewalk_obs.Metrics in
  incr (counter metrics "experiments_run");
  add (counter metrics "table_rows") (List.length table.Table.rows);
  set (gauge metrics ("seconds/" ^ e.id)) seconds
