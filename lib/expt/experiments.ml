type entry = {
  id : string;
  paper_item : string;
  run : pool:Ewalk_par.Pool.t option -> scale:Sweep.scale -> seed:int -> Table.t;
}

let all =
  [
    { id = "fig1"; paper_item = "Figure 1"; run = Exp_cover.fig1 };
    {
      id = "thm1-scaling";
      paper_item = "Theorem 1 / eq. (1) / Corollary 2";
      run = Exp_cover.thm1_scaling;
    };
    {
      id = "rule-independence";
      paper_item = "Theorem 1 (rule A arbitrary)";
      run = Exp_cover.rule_independence;
    };
    {
      id = "srw-lower";
      paper_item = "Theorem 5 (Radzik) / Feige";
      run = Exp_cover.srw_lower;
    };
    {
      id = "edge-cover-sandwich";
      paper_item = "eq. (3) / Observation 12";
      run = Exp_edge.edge_cover_sandwich;
    };
    {
      id = "hypercube-edge";
      paper_item = "Section 1 hypercube example";
      run = Exp_edge.hypercube_edge;
    };
    {
      id = "grw-bound";
      paper_item = "eq. (2) (Orenshtein-Shinkar)";
      run = Exp_edge.grw_bound;
    };
    { id = "cor4-edge"; paper_item = "Corollary 4"; run = Exp_edge.cor4_edge };
    {
      id = "spectral-p1";
      paper_item = "Property P1 (Friedman)";
      run = Exp_structure.spectral_p1;
    };
    {
      id = "density-p2";
      paper_item = "Property P2";
      run = Exp_structure.density_p2;
    };
    {
      id = "ell-good";
      paper_item = "ell-goodness (Corollary 2's proof)";
      run = Exp_structure.ell_good;
    };
    {
      id = "blue-invariants";
      paper_item = "Observations 10/11";
      run = Exp_structure.blue_invariants;
    };
    {
      id = "stars-r3";
      paper_item = "Section 5 (odd degree intuition)";
      run = Exp_structure.stars_r3;
    };
    {
      id = "cycle-census";
      paper_item = "Corollary 4's proof (E N_k)";
      run = Exp_structure.cycle_census;
    };
    {
      id = "process-compare";
      paper_item = "Section 1 related work";
      run = Exp_cover.process_compare;
    };
    {
      id = "blanket-r-visits";
      paper_item = "eq. (4) (blanket time)";
      run = Exp_cover.blanket_r_visits;
    };
    {
      id = "odd-even-frontier";
      paper_item = "Section 5 (even degree constraint)";
      run = Exp_cover.odd_even_frontier;
    };
    {
      id = "hitting-bounds";
      paper_item = "Lemma 6 / Corollary 9 / return-time identity";
      run = Exp_extra.hitting_bounds;
    };
    {
      id = "mixing-decay";
      paper_item = "eq. (5) (convergence to stationarity)";
      run = Exp_extra.mixing_decay;
    };
    {
      id = "matthews-bound";
      paper_item = "Section 2.2 toolkit (Matthews/Kahn et al.)";
      run = Exp_extra.matthews_cover;
    };
    {
      id = "euler-overhead";
      paper_item = "eq. (3) floor (Euler tour optimum)";
      run = Exp_extra.euler_overhead;
    };
    {
      id = "team-speedup";
      paper_item = "extension: k walkers, shared marks";
      run = Exp_extra.team_speedup;
    };
    {
      id = "coverage-profile";
      paper_item = "Section 5 mechanism (straggler decay)";
      run = Exp_extra.coverage_profile;
    };
    {
      id = "concentration";
      paper_item = "related work (Avin-Krishnamachari concentration)";
      run = Exp_extra.concentration;
    };
    {
      id = "doubled-odd";
      paper_item = "Theorem 1 hypothesis isolation (negative control)";
      run = Exp_extra.doubled_odd;
    };
    {
      id = "high-girth";
      paper_item = "Theorem 3 (high girth even degree expanders)";
      run = Exp_extra.high_girth;
    };
  ]

let find id = List.find_opt (fun e -> e.id = id) all

let ids () = List.map (fun e -> e.id) all

let run_timed ?pool e ~scale ~seed =
  Ewalk_obs.Prof.span_ambient ("experiment:" ^ e.id) @@ fun () ->
  let table, span =
    Ewalk_obs.Timer.with_span e.id (fun () -> e.run ~pool ~scale ~seed)
  in
  (table, Ewalk_obs.Timer.elapsed span)

let record_run metrics e ~table ~seconds =
  let open Ewalk_obs.Metrics in
  incr (counter metrics "experiments_run");
  add (counter metrics "table_rows") (List.length table.Table.rows);
  set (gauge metrics ("seconds/" ^ e.id)) seconds
