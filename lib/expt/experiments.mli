(** Registry of every named experiment (the per-experiment index of
    DESIGN.md §4). *)

type entry = {
  id : string;
  paper_item : string; (** which figure / theorem / equation it reproduces *)
  run : pool:Ewalk_par.Pool.t option -> scale:Sweep.scale -> seed:int -> Table.t;
  run_walkers :
    (pool:Ewalk_par.Pool.t option ->
    scale:Sweep.scale ->
    seed:int ->
    walkers:int ->
    Table.t)
    option;
      (** Present on the multi-walker experiments: the same table pinned
          to one walker count ([eproc experiment --walkers]). *)
}

val all : entry list
(** Every experiment, in DESIGN.md order. *)

val find : string -> entry option
(** Look up by id. *)

val ids : unit -> string list

val run_timed :
  ?pool:Ewalk_par.Pool.t ->
  ?walkers:int ->
  entry -> scale:Sweep.scale -> seed:int -> Table.t * float
(** Run one experiment under an {!Ewalk_obs.Timer} span (and an ambient
    {!Ewalk_obs.Prof} span [experiment:<id>] when profiling is enabled);
    returns the table and the wall seconds it took.  With [pool], trial
    sweeps shard across its domains (tables stay bit-identical to the
    sequential run).  [walkers] engages the entry's [run_walkers] hook
    when it has one and is ignored otherwise. *)

val record_run :
  Ewalk_obs.Metrics.t -> entry -> table:Table.t -> seconds:float -> unit
(** Fold one finished run into a telemetry registry: bumps the
    [experiments_run] and [table_rows] counters and sets the per-experiment
    [seconds/<id>] gauge — the payload of [eproc experiment --metrics]. *)
