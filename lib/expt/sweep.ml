module Rng = Ewalk_prng.Rng
module Stats = Ewalk_analysis.Stats

type scale = Tiny | Default | Full

let scale_of_env () =
  match Sys.getenv_opt "EWALK_BENCH_SCALE" with
  | Some "tiny" -> Tiny
  | Some "full" -> Full
  | Some "default" | None -> Default
  | Some other ->
      Printf.eprintf
        "ewalk: unknown EWALK_BENCH_SCALE %S (want tiny/default/full); using default\n"
        other;
      Default

let scale_name = function
  | Tiny -> "tiny"
  | Default -> "default"
  | Full -> "full"

let cover_sizes = function
  | Tiny -> [ 200; 400 ]
  | Default -> [ 2_000; 5_000; 10_000; 20_000; 50_000; 100_000 ]
  | Full -> [ 25_000; 50_000; 100_000; 200_000; 300_000; 400_000; 500_000 ]

let edge_sizes = function
  | Tiny -> [ 200; 400 ]
  | Default -> [ 2_000; 5_000; 10_000; 20_000; 50_000 ]
  | Full -> [ 10_000; 25_000; 50_000; 100_000; 200_000 ]

let spectral_sizes = function
  | Tiny -> [ 100; 200 ]
  | Default -> [ 1_000; 4_000; 16_000 ]
  | Full -> [ 1_000; 4_000; 16_000; 64_000 ]

let hypercube_dims = function
  | Tiny -> [ 6; 7 ]
  | Default -> [ 9; 11; 13; 15 ]
  | Full -> [ 11; 13; 15; 17 ]

let trials = function Tiny -> 2 | Default -> 3 | Full -> 5

let trial_rngs ~seed ~trials =
  if trials <= 0 then
    invalid_arg
      (Printf.sprintf "Sweep.trial_rngs: trials must be positive (got %d)"
         trials);
  let root = Rng.create ~seed () in
  Rng.split_n root trials

(* One tick per trial, printed only when EWALK_PROGRESS is set — the
   heartbeat for full-scale sweeps that run for minutes per data point.
   With a pool, trials shard across its domains; each trial still consumes
   only its own split generator and lands at its own index, so the result
   array is bit-identical to the sequential path for every job count. *)
let map_trials ?pool ?(label = "trials") f rngs =
  Ewalk_obs.Progress.with_reporter ~total:(Array.length rngs) ~label
    (fun tick ->
      (* Each trial runs inside an ambient profiler span (free while
         profiling is off).  Spans open on whichever domain executes the
         trial, so the merged tree attributes sweep time per domain. *)
      let run_one rng =
        let x = Ewalk_obs.Prof.span_ambient ("trial:" ^ label) (fun () -> f rng) in
        tick ();
        x
      in
      match pool with
      | Some p when Ewalk_par.Pool.jobs p > 1 ->
          Ewalk_par.Pool.map_array ~chunk:1 p run_one rngs
      | _ -> Array.map run_one rngs)

let mean_of_trials ?pool ?label ~seed ~trials f =
  let rngs = trial_rngs ~seed ~trials in
  Stats.summarize (map_trials ?pool ?label f rngs)

let mean_cover_of_trials ?pool ?label ~seed ~trials f =
  let rngs = trial_rngs ~seed ~trials in
  let results = map_trials ?pool ?label f rngs in
  if Array.exists (fun r -> r = None) results then None
  else
    Some
      (Stats.summarize
         (Array.map
            (function Some t -> float_of_int t | None -> assert false)
            results))
