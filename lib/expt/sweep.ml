module Rng = Ewalk_prng.Rng
module Stats = Ewalk_analysis.Stats

type scale = Tiny | Default | Full

let scale_of_env () =
  match Sys.getenv_opt "EWALK_BENCH_SCALE" with
  | Some "tiny" -> Tiny
  | Some "full" -> Full
  | Some "default" | None -> Default
  | Some other ->
      Printf.eprintf
        "ewalk: unknown EWALK_BENCH_SCALE %S (want tiny/default/full); using default\n"
        other;
      Default

let scale_name = function
  | Tiny -> "tiny"
  | Default -> "default"
  | Full -> "full"

let cover_sizes = function
  | Tiny -> [ 200; 400 ]
  | Default -> [ 2_000; 5_000; 10_000; 20_000; 50_000; 100_000 ]
  | Full -> [ 25_000; 50_000; 100_000; 200_000; 300_000; 400_000; 500_000 ]

let edge_sizes = function
  | Tiny -> [ 200; 400 ]
  | Default -> [ 2_000; 5_000; 10_000; 20_000; 50_000 ]
  | Full -> [ 10_000; 25_000; 50_000; 100_000; 200_000 ]

let spectral_sizes = function
  | Tiny -> [ 100; 200 ]
  | Default -> [ 1_000; 4_000; 16_000 ]
  | Full -> [ 1_000; 4_000; 16_000; 64_000 ]

let hypercube_dims = function
  | Tiny -> [ 6; 7 ]
  | Default -> [ 9; 11; 13; 15 ]
  | Full -> [ 11; 13; 15; 17 ]

let trials = function Tiny -> 2 | Default -> 3 | Full -> 5

let trial_rngs ~seed ~trials =
  if trials <= 0 then
    invalid_arg
      (Printf.sprintf "Sweep.trial_rngs: trials must be positive (got %d)"
         trials);
  let root = Rng.create ~seed () in
  Rng.split_n root trials

(* One tick per trial, printed only when EWALK_PROGRESS is set — the
   heartbeat for full-scale sweeps that run for minutes per data point.
   With a pool, trials shard across its domains; each trial still consumes
   only its own split generator and lands at its own index, so the result
   array is bit-identical to the sequential path for every job count. *)
let map_trials ?pool ?(label = "trials") f rngs =
  (* With an ambient campaign, every sweep becomes resumable: trial [i] of
     this call is journaled under "<label>#<batch>:<i>", where the batch
     sequence number makes repeated sweeps under one label distinct.
     Experiment code runs its sweeps in a fixed order, so keys are stable
     across runs — which is what lets a resumed campaign replay completed
     trials from the journal and execute only the rest. *)
  let campaign = Ewalk_resume.Campaign.ambient () in
  let batch =
    match campaign with
    | Some c -> Ewalk_resume.Campaign.next_batch c ~label
    | None -> 0
  in
  Ewalk_obs.Progress.with_reporter ~total:(Array.length rngs) ~label
    (fun tick ->
      (* Each trial runs inside an ambient profiler span (free while
         profiling is off).  Spans open on whichever domain executes the
         trial, so the merged tree attributes sweep time per domain. *)
      let run_one (i, rng) =
        (* The trial consumes a copy of its generator, so re-running it —
           a pool retry after an injected failure, say — sees an identical
           stream and produces an identical result. *)
        let exec () =
          Ewalk_obs.Prof.span_ambient ("trial:" ^ label) (fun () ->
              f (Rng.copy rng))
        in
        let x =
          match campaign with
          | None -> exec ()
          | Some c ->
              Ewalk_resume.Campaign.run c
                ~key:(Printf.sprintf "%s#%d:%d" label batch i)
                exec
        in
        tick ();
        x
      in
      let indexed = Array.mapi (fun i rng -> (i, rng)) rngs in
      match pool with
      (* A jobs=1 pool takes Pool.map_array's sequential path, which still
         honours the pool's retry budget and fault injection. *)
      | Some p -> Ewalk_par.Pool.map_array ~chunk:1 p run_one indexed
      | None -> Array.map run_one indexed)

let mean_of_trials ?pool ?label ~seed ~trials f =
  let rngs = trial_rngs ~seed ~trials in
  Stats.summarize (map_trials ?pool ?label f rngs)

let mean_cover_of_trials ?pool ?label ~seed ~trials f =
  let rngs = trial_rngs ~seed ~trials in
  let results = map_trials ?pool ?label f rngs in
  if Array.exists (fun r -> r = None) results then None
  else
    Some
      (Stats.summarize
         (Array.map
            (function Some t -> float_of_int t | None -> assert false)
            results))
