(** Seeded trial sweeps: the scaffolding every experiment shares.

    Trials are reproducible: trial [i] under seed [s] always receives the
    same child generator, independent of how many other trials run.  The
    {!scale} knob trades run time for paper fidelity: [Tiny] is for the test
    suite, [Default] finishes the whole bench suite in minutes, [Full]
    matches the paper's [n] up to 5*10^5 with 5 trials per point
    (Figure 1). *)

type scale = Tiny | Default | Full

val scale_of_env : unit -> scale
(** Reads [EWALK_BENCH_SCALE] ("tiny" / "default" / "full"; default
    [Default]). *)

val scale_name : scale -> string

val cover_sizes : scale -> int list
(** The [n] sweep for vertex-cover experiments
    (Full reaches the paper's 5*10^5). *)

val edge_sizes : scale -> int list
(** Smaller sweep for edge-cover experiments (their step counts carry an
    extra log factor). *)

val spectral_sizes : scale -> int list
(** Sweep for experiments that need an eigenvalue estimate per point. *)

val hypercube_dims : scale -> int list

val trials : scale -> int
(** Trials per data point (5 at [Full], as in the paper). *)

val trial_rngs : seed:int -> trials:int -> Ewalk_prng.Rng.t array
(** Independent per-trial generators derived from [seed].
    @raise Invalid_argument if [trials <= 0]. *)

val map_trials :
  ?pool:Ewalk_par.Pool.t ->
  ?label:string ->
  (Ewalk_prng.Rng.t -> 'a) ->
  Ewalk_prng.Rng.t array ->
  'a array
(** Run the measurement once per trial generator; result [i] comes from
    generator [i].  With [pool], trials shard across the pool's domains —
    because each trial draws only from its own generator, the result array
    is bit-identical to the sequential path regardless of job count.  When
    [EWALK_PROGRESS=1], a throttled {!Ewalk_obs.Progress} heartbeat
    (tagged [label], default ["trials"]) ticks once per finished trial.
    When the ambient {!Ewalk_obs.Prof} profiler is enabled, each trial runs
    in a [trial:<label>] span on its executing domain.

    Durability: when an ambient [Ewalk_resume.Campaign] is set, each trial
    is memoized in the campaign journal under a stable
    [<label>#<batch>:<index>] key, so a resumed run replays completed
    trials and executes only the rest.  Each trial consumes a {e copy} of
    its generator, so re-execution (pool retry or journal miss) is
    bit-identical.  With a pool, the pool's retry budget and fault
    injection apply — including on the [jobs = 1] sequential path. *)

val mean_of_trials :
  ?pool:Ewalk_par.Pool.t ->
  ?label:string -> seed:int -> trials:int -> (Ewalk_prng.Rng.t -> float) ->
  Ewalk_analysis.Stats.summary
(** {!map_trials} over {!trial_rngs}, summarised.
    @raise Invalid_argument if [trials <= 0]. *)

val mean_cover_of_trials :
  ?pool:Ewalk_par.Pool.t ->
  ?label:string -> seed:int -> trials:int ->
  (Ewalk_prng.Rng.t -> int option) ->
  Ewalk_analysis.Stats.summary option
(** Like {!mean_of_trials} for capped runs: [None] if {e any} trial hit its
    cap (a partial mean would understate the truth).
    @raise Invalid_argument if [trials <= 0]. *)
