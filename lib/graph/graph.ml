type vertex = int
type edge = int

type t = {
  n : int;
  m : int;
  xadj : int array; (* n + 1 row offsets into the slot arrays *)
  adj_vertex : int array; (* 2m: neighbour stored at each slot *)
  adj_edge : int array; (* 2m: undirected edge id stored at each slot *)
  edge_u : int array; (* m *)
  edge_v : int array; (* m *)
  edge_pos : int array; (* 2m: slots of edge e at indices 2e and 2e+1 *)
}

let of_edge_array ~n edges =
  if n < 0 then invalid_arg "Graph.of_edge_array: n < 0";
  let m = Array.length edges in
  Array.iter
    (fun (u, v) ->
      if u < 0 || u >= n || v < 0 || v >= n then
        invalid_arg "Graph.of_edge_array: vertex out of range")
    edges;
  let deg = Array.make n 0 in
  Array.iter
    (fun (u, v) ->
      deg.(u) <- deg.(u) + 1;
      deg.(v) <- deg.(v) + 1)
    edges;
  let xadj = Array.make (n + 1) 0 in
  for v = 0 to n - 1 do
    xadj.(v + 1) <- xadj.(v) + deg.(v)
  done;
  let cursor = Array.sub xadj 0 n in
  let adj_vertex = Array.make (2 * m) 0 in
  let adj_edge = Array.make (2 * m) 0 in
  let edge_u = Array.make m 0 in
  let edge_v = Array.make m 0 in
  let edge_pos = Array.make (2 * m) 0 in
  Array.iteri
    (fun e (u, v) ->
      edge_u.(e) <- u;
      edge_v.(e) <- v;
      let pu = cursor.(u) in
      cursor.(u) <- pu + 1;
      adj_vertex.(pu) <- v;
      adj_edge.(pu) <- e;
      edge_pos.(2 * e) <- pu;
      let pv = cursor.(v) in
      cursor.(v) <- pv + 1;
      adj_vertex.(pv) <- u;
      adj_edge.(pv) <- e;
      edge_pos.((2 * e) + 1) <- pv)
    edges;
  { n; m; xadj; adj_vertex; adj_edge; edge_u; edge_v; edge_pos }

let of_edges ~n edges = of_edge_array ~n (Array.of_list edges)

let n g = g.n
let m g = g.m

let degree g v = g.xadj.(v + 1) - g.xadj.(v)
let degrees g = Array.init g.n (degree g)

let max_degree g =
  let best = ref 0 in
  for v = 0 to g.n - 1 do
    if degree g v > !best then best := degree g v
  done;
  !best

let min_degree g =
  if g.n = 0 then 0
  else begin
    let best = ref max_int in
    for v = 0 to g.n - 1 do
      if degree g v < !best then best := degree g v
    done;
    !best
  end

let total_degree g = 2 * g.m

let is_regular g = g.n = 0 || max_degree g = min_degree g

let all_degrees_even g =
  let ok = ref true in
  for v = 0 to g.n - 1 do
    if degree g v land 1 = 1 then ok := false
  done;
  !ok

let endpoints g e = (g.edge_u.(e), g.edge_v.(e))

let opposite g e v =
  if g.edge_u.(e) = v then g.edge_v.(e)
  else if g.edge_v.(e) = v then g.edge_u.(e)
  else invalid_arg "Graph.opposite: vertex is not an endpoint"

let adj_start g v = g.xadj.(v)
let adj_stop g v = g.xadj.(v + 1)
let slot_vertex g p = g.adj_vertex.(p)
let slot_edge g p = g.adj_edge.(p)
let edge_positions g e = (g.edge_pos.(2 * e), g.edge_pos.((2 * e) + 1))

let neighbor g v i = g.adj_vertex.(g.xadj.(v) + i)
let neighbor_edge g v i = g.adj_edge.(g.xadj.(v) + i)

let iter_neighbors g v f =
  for p = g.xadj.(v) to g.xadj.(v + 1) - 1 do
    f g.adj_vertex.(p) g.adj_edge.(p)
  done

let fold_neighbors g v f init =
  let acc = ref init in
  iter_neighbors g v (fun w e -> acc := f !acc w e);
  !acc

let neighbors g v = List.rev (fold_neighbors g v (fun acc w _ -> w :: acc) [])

let iter_edges g f =
  for e = 0 to g.m - 1 do
    f e g.edge_u.(e) g.edge_v.(e)
  done

let fold_edges g f init =
  let acc = ref init in
  iter_edges g (fun e u v -> acc := f !acc e u v);
  !acc

let edge_list g =
  List.rev (fold_edges g (fun acc _ u v -> (u, v) :: acc) [])

let edge_array g = Array.init g.m (fun e -> (g.edge_u.(e), g.edge_v.(e)))

(* --- cache-conscious relabeling ------------------------------------- *)

type order = Degree_sort | Bfs | Rcm

let inverse_permutation perm =
  let n = Array.length perm in
  let inv = Array.make n (-1) in
  Array.iteri
    (fun old_v new_v ->
      if new_v < 0 || new_v >= n || inv.(new_v) >= 0 then
        invalid_arg "Graph.inverse_permutation: not a permutation";
      inv.(new_v) <- old_v)
    perm;
  inv

(* Visit order of a BFS over the whole graph: start from [root], scan
   neighbours of each dequeued vertex in slot order filtered through
   [rank] (identity for plain BFS, degree-ascending for RCM), restart
   from the lowest-labelled unreached vertex per component. *)
let bfs_order g ~root ~rank =
  let n = g.n in
  let seen = Array.make n false in
  let order = Array.make n 0 in
  let queue = Array.make n 0 in
  let filled = ref 0 in
  let enqueue v =
    if not seen.(v) then begin
      seen.(v) <- true;
      queue.(!filled) <- v;
      incr filled
    end
  in
  let head = ref 0 in
  let next_root = ref 0 in
  enqueue root;
  while !filled < n do
    if !head = !filled then begin
      (* next component: lowest unreached label *)
      while seen.(!next_root) do
        incr next_root
      done;
      enqueue !next_root
    end
    else begin
      let v = queue.(!head) in
      incr head;
      order.(!head - 1) <- v;
      let deg = degree g v in
      let nbrs = Array.init deg (fun i -> g.adj_vertex.(g.xadj.(v) + i)) in
      (match rank with
      | None -> ()
      | Some r ->
          Array.sort
            (fun a b -> if r a <> r b then compare (r a) (r b) else compare a b)
            nbrs);
      Array.iter enqueue nbrs
    end
  done;
  while !head < n do
    let v = queue.(!head) in
    incr head;
    order.(!head - 1) <- v
  done;
  order

let reorder_permutation g order =
  let n = g.n in
  if n = 0 then [||]
  else
    let visit_order =
      match order with
      | Degree_sort ->
          let vs = Array.init n (fun v -> v) in
          Array.sort
            (fun a b ->
              if degree g a <> degree g b then compare (degree g a) (degree g b)
              else compare a b)
            vs;
          vs
      | Bfs -> bfs_order g ~root:0 ~rank:None
      | Rcm ->
          let root = ref 0 in
          for v = n - 1 downto 0 do
            if degree g v <= degree g !root then root := v
          done;
          let o = bfs_order g ~root:!root ~rank:(Some (degree g)) in
          let rev = Array.make n 0 in
          for i = 0 to n - 1 do
            rev.(i) <- o.(n - 1 - i)
          done;
          rev
    in
    (* visit_order.(new) = old; perm.(old) = new *)
    let perm = Array.make n 0 in
    Array.iteri (fun new_v old_v -> perm.(old_v) <- new_v) visit_order;
    perm

let relabel g perm =
  if Array.length perm <> g.n then
    invalid_arg "Graph.relabel: permutation length does not match";
  ignore (inverse_permutation perm);
  (* Edge ids and their order are preserved verbatim; only endpoint labels
     move.  [of_edge_array] assigns each vertex's adjacency slots in
     global edge order, so every vertex's region keeps its relative slot
     order — a walk on the relabelled graph is isomorphic draw-for-draw
     to one on the original. *)
  of_edge_array ~n:g.n
    (Array.init g.m (fun e -> (perm.(g.edge_u.(e)), perm.(g.edge_v.(e)))))

let reorder g order =
  let perm = reorder_permutation g order in
  (relabel g perm, perm)

let mem_edge g u v =
  let a, b = if degree g u <= degree g v then (u, v) else (v, u) in
  let found = ref false in
  iter_neighbors g a (fun w _ -> if w = b then found := true);
  !found

let count_self_loops g =
  fold_edges g (fun acc _ u v -> if u = v then acc + 1 else acc) 0

let count_parallel_edges g =
  let seen = Hashtbl.create (2 * g.m) in
  fold_edges g
    (fun acc _ u v ->
      if u = v then acc
      else begin
        let key = if u < v then (u, v) else (v, u) in
        if Hashtbl.mem seen key then acc + 1
        else begin
          Hashtbl.add seen key ();
          acc
        end
      end)
    0

let is_simple g = count_self_loops g = 0 && count_parallel_edges g = 0

let pp ppf g =
  Format.fprintf ppf "graph(n=%d, m=%d, deg=[%d..%d])" g.n g.m (min_degree g)
    (max_degree g)
