(** Compact immutable undirected (multi)graphs with stable edge identifiers.

    The representation is compressed-sparse-row adjacency over [2m] directed
    slots, where each undirected edge [e] owns exactly two slots (one per
    endpoint; a self-loop owns two slots at the same vertex and contributes 2
    to its degree, the standard convention).  Every walk process in
    [Ewalk] is driven off this structure; the E-process additionally needs
    the {e slot positions} of each edge ({!edge_positions}) to maintain its
    unvisited-edge partition in O(1) per step.

    Vertices are [0 .. n-1]; edges are [0 .. m-1] in insertion order. *)

type t

type vertex = int
type edge = int

val of_edges : n:int -> (vertex * vertex) list -> t
(** [of_edges ~n edges] builds a graph on vertices [0 .. n-1].  Parallel
    edges and self-loops are allowed (each listed pair is its own edge).
    @raise Invalid_argument on a vertex outside [0 .. n-1] or [n < 0]. *)

val of_edge_array : n:int -> (vertex * vertex) array -> t
(** Array flavour of {!of_edges}. *)

val n : t -> int
(** Number of vertices. *)

val m : t -> int
(** Number of undirected edges. *)

val degree : t -> vertex -> int
(** [degree g v] counts edge slots at [v]; a self-loop counts 2. *)

val degrees : t -> int array

val max_degree : t -> int
val min_degree : t -> int

val total_degree : t -> int
(** Always [2 * m g]. *)

val is_regular : t -> bool

val all_degrees_even : t -> bool
(** The standing assumption of the paper's main theorems. *)

val endpoints : t -> edge -> vertex * vertex
(** The two endpoints of an edge, in insertion order. *)

val opposite : t -> edge -> vertex -> vertex
(** [opposite g e v] is the endpoint of [e] other than [v] (which is [v]
    itself for a self-loop).  @raise Invalid_argument if [v] is not an
    endpoint of [e]. *)

val adj_start : t -> vertex -> int
val adj_stop : t -> vertex -> int
(** [adj_start g v .. adj_stop g v - 1] are the adjacency slot positions of
    [v]; [adj_stop g v - adj_start g v = degree g v]. *)

val slot_vertex : t -> int -> vertex
(** [slot_vertex g p] is the neighbour stored in slot [p]. *)

val slot_edge : t -> int -> edge
(** [slot_edge g p] is the edge id stored in slot [p]. *)

val edge_positions : t -> edge -> int * int
(** The two adjacency slot positions owned by an edge.  The first lies in
    the adjacency of the first endpoint. *)

val neighbor : t -> vertex -> int -> vertex
(** [neighbor g v i] is the [i]-th neighbour of [v], [0 <= i < degree g v]. *)

val neighbor_edge : t -> vertex -> int -> edge
(** The edge id leading to [neighbor g v i]. *)

val iter_neighbors : t -> vertex -> (vertex -> edge -> unit) -> unit
(** [iter_neighbors g v f] applies [f w e] for every incident slot. *)

val fold_neighbors : t -> vertex -> ('a -> vertex -> edge -> 'a) -> 'a -> 'a

val neighbors : t -> vertex -> vertex list
(** Neighbour multiset of [v] as a list (slot order). *)

val iter_edges : t -> (edge -> vertex -> vertex -> unit) -> unit

val fold_edges : t -> ('a -> edge -> vertex -> vertex -> 'a) -> 'a -> 'a

val edge_list : t -> (vertex * vertex) list
(** All edges in id order. *)

val edge_array : t -> (vertex * vertex) array
(** All edges in id order (fresh array);
    [of_edge_array ~n:(n g) (edge_array g)] rebuilds the graph
    identically. *)

(** {2 Cache-conscious relabeling}

    Vertex relabeling passes applied before long runs so that vertices
    visited together sit together in the CSR arrays.  The contract that
    makes relabeling observable-output-stable: {!relabel} keeps edge ids
    {e and} the global edge order verbatim — only endpoint labels move —
    and [of_edge_array] assigns each vertex's adjacency slots in global
    edge order, so every vertex's region keeps its relative slot order.
    A walk on the relabelled graph is therefore isomorphic draw-for-draw
    to one on the original: same PRNG draws, same edge ids, vertex
    labels mapped through the permutation.  Mapping trace vertices back
    through {!inverse_permutation} yields byte-identical traces (the
    equivalence battery in test/test_compact.ml enforces this). *)

type order =
  | Degree_sort  (** stable sort by ascending degree *)
  | Bfs  (** breadth-first visit order from vertex 0, slot-order scans *)
  | Rcm
      (** reverse Cuthill–McKee: BFS from a minimum-degree vertex with
          degree-ascending neighbour scans, reversed *)

val reorder_permutation : t -> order -> int array
(** The relabeling as a permutation: [perm.(old) = new].  Disconnected
    components are restarted from the lowest unreached label. *)

val relabel : t -> int array -> t
(** [relabel g perm] rebuilds [g] with vertex [v] renamed [perm.(v)],
    preserving edge ids and edge order.
    @raise Invalid_argument if [perm] is not a permutation of
    [0 .. n-1]. *)

val reorder : t -> order -> t * int array
(** [reorder g o = (relabel g (reorder_permutation g o), perm)]. *)

val inverse_permutation : int array -> int array
(** [inv.(new) = old].  @raise Invalid_argument if the input is not a
    permutation. *)

val mem_edge : t -> vertex -> vertex -> bool
(** [mem_edge g u v] scans the (shorter) adjacency; O(min degree). *)

val count_self_loops : t -> int

val count_parallel_edges : t -> int
(** Number of edges in excess of the first between each vertex pair (a pair
    joined by [k] parallel edges contributes [k - 1]); self-loops are not
    counted here. *)

val is_simple : t -> bool
(** No self-loops and no parallel edges. *)

val pp : Format.formatter -> t -> unit
(** Human-readable one-line summary ([n], [m], degree range). *)
