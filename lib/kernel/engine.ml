open Ewalk_graph
module Trace = Ewalk_obs.Trace
module Pool = Ewalk_par.Pool
module Coverage = Ewalk.Coverage
module Compact = Ewalk.Compact
module Bitset = Ewalk.Bitset
module Cover = Ewalk.Cover

type mode = Cooperating | Competing
type proc = E_uar | E_lowest | E_highest | Srw | Rotor
type phase_kind = Blue | Red
type fault = Skip_preference | Reuse_prng_word | Torn_soa

let prefers_unvisited = function
  | E_uar | E_lowest | E_highest -> true
  | Srw | Rotor -> false

(* Cooperating walkers share one visited-edge partition and one coverage
   table; competing walkers each carry private bit-packed visited sets, so
   their state slices are disjoint and walker blocks can run on separate
   domains. *)
type shared = {
  sh_unvisited : Compact.t option; (* E-process rules only *)
  sh_coverage : Coverage.t;
  sh_rotor : int array option; (* per-vertex slot offset, Rotor only *)
}

type priv = {
  pv_visited : Bitset.t array; (* per-walker edge bitset, m bits *)
  pv_vseen : Bitset.t array; (* per-walker vertex bitset, n bits *)
  pv_vcount : int array;
  pv_ecount : int array;
  pv_cover_at : int array; (* walker-local step of own vertex cover, -1 *)
  pv_rotor : int array option; (* walkers * n, walker-major *)
}

type marks = Shared of shared | Private of priv

type t = {
  g : Graph.t;
  proc : proc;
  marks : marks;
  pos : int array;
  prng : Packed.t;
  mutable cursor : int;
  mutable gsteps : int; (* cooperating: global step clock *)
  wsteps : int array;
  wblue : int array;
  wred : int array;
  phase : (phase_kind * int * Graph.vertex) option array;
  mutable observer : (walker:int -> Trace.event -> unit) option;
  mutable phase_observer : (walker:int -> Trace.event -> unit) option;
  mutable fault : fault option;
}

(* Raw LSB-first bit ops over a bitset's backing bytes — the step-path
   view of the per-walker {!Bitset}s (same layout, no bounds checks). *)
let bit_get b i = Char.code (Bytes.unsafe_get b (i lsr 3)) land (1 lsl (i land 7)) <> 0

let bit_set b i =
  let j = i lsr 3 in
  Bytes.unsafe_set b j
    (Char.unsafe_chr (Char.code (Bytes.unsafe_get b j) lor (1 lsl (i land 7))))

let create ?(mode = Cooperating) ?(randomize_rotors = true) ?perm proc g rng
    ~starts =
  let walkers = Array.length starts in
  if walkers = 0 then invalid_arg "Engine.create: no walkers";
  if Graph.n g = 0 then invalid_arg "Engine.create: empty graph";
  Array.iter
    (fun v ->
      if v < 0 || v >= Graph.n g then
        invalid_arg "Engine.create: start out of range")
    starts;
  (match perm with
  | Some p when Array.length p <> Graph.n g ->
      invalid_arg "Engine.create: permutation length does not match"
  | _ -> ());
  let prng = Packed.of_rng rng ~walkers in
  let n = Graph.n g in
  (* Rotor offsets draw from the owning walker's stream, in vertex order —
     walker 0's draws reproduce the legacy [Rotor.create] sequence.  On a
     relabelled graph, [perm] redirects the drawing to original vertex
     order so the reordered engine stays isomorphic draw-for-draw. *)
  let init_rotor w =
    match perm with
    | None ->
        Array.init n (fun v ->
            let deg = Graph.degree g v in
            if randomize_rotors && deg > 0 then Packed.int prng w deg else 0)
    | Some perm ->
        let r = Array.make n 0 in
        for ov = 0 to n - 1 do
          let v = perm.(ov) in
          let deg = Graph.degree g v in
          r.(v) <-
            (if randomize_rotors && deg > 0 then Packed.int prng w deg else 0)
        done;
        r
  in
  let marks =
    match mode with
    | Cooperating ->
        let cov = Coverage.create g in
        Array.iter (fun v -> Coverage.record_start cov v) starts;
        Shared
          {
            sh_unvisited =
              (if prefers_unvisited proc then Some (Compact.create g)
               else None);
            sh_coverage = cov;
            sh_rotor = (if proc = Rotor then Some (init_rotor 0) else None);
          }
    | Competing ->
        let pv =
          {
            pv_visited =
              Array.init walkers (fun _ -> Bitset.create (Graph.m g));
            pv_vseen = Array.init walkers (fun _ -> Bitset.create n);
            pv_vcount = Array.make walkers 0;
            pv_ecount = Array.make walkers 0;
            pv_cover_at = Array.make walkers (-1);
            pv_rotor =
              (if proc = Rotor then begin
                 let r = Array.make (walkers * n) 0 in
                 for w = 0 to walkers - 1 do
                   Array.blit (init_rotor w) 0 r (w * n) n
                 done;
                 Some r
               end
               else None);
          }
        in
        Array.iteri
          (fun w v ->
            Bitset.set pv.pv_vseen.(w) v;
            pv.pv_vcount.(w) <- 1;
            if n = 1 then pv.pv_cover_at.(w) <- 0)
          starts;
        Private pv
  in
  {
    g;
    proc;
    marks;
    pos = Array.copy starts;
    prng;
    cursor = 0;
    gsteps = 0;
    wsteps = Array.make walkers 0;
    wblue = Array.make walkers 0;
    wred = Array.make walkers 0;
    phase = Array.make walkers None;
    observer = None;
    phase_observer = None;
    fault = None;
  }

let create_spread ?mode ?randomize_rotors proc g rng ~walkers =
  if walkers < 1 then invalid_arg "Engine.create_spread: walkers < 1";
  if Graph.n g = 0 then invalid_arg "Engine.create_spread: empty graph";
  let starts =
    Array.init walkers (fun _ -> Ewalk_prng.Rng.int rng (Graph.n g))
  in
  create ?mode ?randomize_rotors proc g rng ~starts

(* --- accessors ------------------------------------------------------- *)

let graph t = t.g
let proc t = t.proc
let mode t = match t.marks with Shared _ -> Cooperating | Private _ -> Competing
let walkers t = Array.length t.pos
let positions t = Array.copy t.pos
let walker_position t w = t.pos.(w)
let cursor t = t.cursor
let position t = t.pos.(t.cursor)

let steps t =
  match t.marks with
  | Shared _ -> t.gsteps
  | Private _ -> Array.fold_left ( + ) 0 t.wsteps

let rounds t = steps t / walkers t
let blue_steps t = Array.fold_left ( + ) 0 t.wblue
let red_steps t = Array.fold_left ( + ) 0 t.wred
let walker_steps t w = t.wsteps.(w)
let walker_blue_steps t w = t.wblue.(w)
let walker_red_steps t w = t.wred.(w)

let coverage t =
  match t.marks with
  | Shared sh -> sh.sh_coverage
  | Private _ -> invalid_arg "Engine.coverage: competing mode has no shared coverage"

let walker_vertices_visited t w =
  match t.marks with
  | Private pv -> pv.pv_vcount.(w)
  | Shared _ ->
      invalid_arg "Engine.walker_vertices_visited: cooperating mode is shared"

let walker_edges_visited t w =
  match t.marks with
  | Private pv -> pv.pv_ecount.(w)
  | Shared _ ->
      invalid_arg "Engine.walker_edges_visited: cooperating mode is shared"

let walker_edge_visited t w e =
  match t.marks with
  | Private pv -> Bitset.get pv.pv_visited.(w) e
  | Shared _ ->
      invalid_arg "Engine.walker_edge_visited: cooperating mode is shared"

let walker_vertex_visited t w v =
  match t.marks with
  | Private pv -> Bitset.get pv.pv_vseen.(w) v
  | Shared _ ->
      invalid_arg "Engine.walker_vertex_visited: cooperating mode is shared"

let walker_cover_step t w =
  match t.marks with
  | Private pv -> if pv.pv_cover_at.(w) >= 0 then Some pv.pv_cover_at.(w) else None
  | Shared _ -> invalid_arg "Engine.walker_cover_step: cooperating mode is shared"

let rotor_offset t v =
  match t.marks with
  | Shared { sh_rotor = Some r; _ } -> r.(v)
  | _ -> invalid_arg "Engine.rotor_offset: not a cooperating rotor engine"

let walker_rotor_offset t w v =
  match t.marks with
  | Private { pv_rotor = Some r; _ } -> r.((w * Graph.n t.g) + v)
  | _ -> invalid_arg "Engine.walker_rotor_offset: not a competing rotor engine"

let set_observer t obs = t.observer <- obs
let set_phase_observer t obs = t.phase_observer <- obs
let set_fault t f = t.fault <- f

(* --- stepping -------------------------------------------------------- *)

let emit_step_ev t w ev =
  match t.observer with Some f -> f ~walker:w ev | None -> ()

let has_phase_listener t =
  (match t.observer with Some _ -> true | None -> false)
  || match t.phase_observer with Some _ -> true | None -> false

let emit_phase_ev t w ev =
  (match t.observer with Some f -> f ~walker:w ev | None -> ());
  match t.phase_observer with Some f -> f ~walker:w ev | None -> ()

(* Walker-local phase bookkeeping, mirroring the legacy transition
   protocol: the event stamps carry the pre-step clock (global in
   cooperating mode, walker-local in competing mode) and the pre-move
   vertex. *)
let record_phase_transition t w ~stamp ~vertex next_is_blue =
  let now_kind = if next_is_blue then Blue else Red in
  let changed =
    match t.phase.(w) with None -> true | Some (k, _, _) -> k <> now_kind
  in
  if changed then begin
    t.phase.(w) <- Some (now_kind, stamp, vertex);
    if has_phase_listener t then
      emit_phase_ev t w
        (Trace.Phase
           {
             step = stamp;
             kind = (match now_kind with Blue -> Trace.Blue | Red -> Trace.Red);
             vertex;
           })
  end

let step_shared t sh w =
  let v = t.pos.(w) in
  let deg = Graph.degree t.g v in
  if deg = 0 then invalid_arg "Engine.step: isolated vertex";
  let pw = match t.fault with Some Reuse_prng_word -> 0 | _ -> w in
  let blue, slot =
    match sh.sh_unvisited with
    | Some unv ->
        let k = Compact.count unv v in
        let blue = k > 0 && t.fault <> Some Skip_preference in
        record_phase_transition t w ~stamp:t.gsteps ~vertex:v blue;
        let slot =
          if blue then
            match t.proc with
            | E_uar -> Compact.live_slot unv v (Packed.int t.prng pw k)
            | E_lowest ->
                let best = ref (Compact.live_slot unv v 0) in
                for i = 1 to k - 1 do
                  let p = Compact.live_slot unv v i in
                  if p < !best then best := p
                done;
                !best
            | E_highest ->
                let best = ref (Compact.live_slot unv v 0) in
                for i = 1 to k - 1 do
                  let p = Compact.live_slot unv v i in
                  if p > !best then best := p
                done;
                !best
            | Srw | Rotor -> assert false
          else Graph.adj_start t.g v + Packed.int t.prng pw deg
        in
        (blue, slot)
    | None -> (
        match t.proc with
        | Srw -> (false, Graph.adj_start t.g v + Packed.int t.prng pw deg)
        | Rotor ->
            let rot = Option.get sh.sh_rotor in
            let r = rot.(v) in
            rot.(v) <- (r + 1) mod deg;
            (false, Graph.adj_start t.g v + r)
        | E_uar | E_lowest | E_highest -> assert false)
  in
  let target = Graph.slot_vertex t.g slot in
  let e = Graph.slot_edge t.g slot in
  t.gsteps <- t.gsteps + 1;
  t.wsteps.(w) <- t.wsteps.(w) + 1;
  if blue then begin
    t.wblue.(w) <- t.wblue.(w) + 1;
    Compact.retire_edge (Option.get sh.sh_unvisited) e
  end
  else t.wred.(w) <- t.wred.(w) + 1;
  Coverage.record_edge sh.sh_coverage ~step:t.gsteps e;
  let dest =
    match t.fault with
    | Some Torn_soa -> (w + 1) mod Array.length t.pos
    | _ -> w
  in
  t.pos.(dest) <- target;
  Coverage.record_move sh.sh_coverage ~step:t.gsteps target;
  emit_step_ev t w (Trace.Step { step = t.gsteps; vertex = target; edge = e; blue })

(* Competing mode scans the adjacency slots of [v] against the walker's
   private edge bitset — the same order the naive oracle uses, so a
   competing walker and [Oracle.Eprocess] on the same stream stay in full
   RNG lockstep.  A self-loop contributes both its slots, matching the
   shared [Unvisited.count] convention. *)
let unvisited_count_priv t pv w v =
  let deg = Graph.degree t.g v in
  let vis = Bitset.unsafe_bytes pv.pv_visited.(w) in
  let c = ref 0 in
  for i = 0 to deg - 1 do
    if not (bit_get vis (Graph.neighbor_edge t.g v i)) then incr c
  done;
  !c

let nth_unvisited_priv t pv w v idx =
  let deg = Graph.degree t.g v in
  let vis = Bitset.unsafe_bytes pv.pv_visited.(w) in
  let seen = ref 0 and found = ref (-1) and i = ref 0 in
  while !found < 0 && !i < deg do
    if not (bit_get vis (Graph.neighbor_edge t.g v !i)) then begin
      if !seen = idx then found := !i;
      incr seen
    end;
    incr i
  done;
  assert (!found >= 0);
  !found

let last_unvisited_priv t pv w v =
  let deg = Graph.degree t.g v in
  let vis = Bitset.unsafe_bytes pv.pv_visited.(w) in
  let found = ref (-1) and i = ref (deg - 1) in
  while !found < 0 && !i >= 0 do
    if not (bit_get vis (Graph.neighbor_edge t.g v !i)) then found := !i;
    decr i
  done;
  assert (!found >= 0);
  !found

let step_private t pv w =
  let v = t.pos.(w) in
  let deg = Graph.degree t.g v in
  if deg = 0 then invalid_arg "Engine.step: isolated vertex";
  let pw = match t.fault with Some Reuse_prng_word -> 0 | _ -> w in
  let stamp = t.wsteps.(w) in
  let blue, off =
    match t.proc with
    | E_uar | E_lowest | E_highest ->
        let k = unvisited_count_priv t pv w v in
        let blue = k > 0 && t.fault <> Some Skip_preference in
        record_phase_transition t w ~stamp ~vertex:v blue;
        let off =
          if blue then
            match t.proc with
            | E_uar -> nth_unvisited_priv t pv w v (Packed.int t.prng pw k)
            | E_lowest -> nth_unvisited_priv t pv w v 0
            | E_highest -> last_unvisited_priv t pv w v
            | Srw | Rotor -> assert false
          else Packed.int t.prng pw deg
        in
        (blue, off)
    | Srw -> (false, Packed.int t.prng pw deg)
    | Rotor ->
        let rot = Option.get pv.pv_rotor in
        let base = w * Graph.n t.g in
        let r = rot.(base + v) in
        rot.(base + v) <- (r + 1) mod deg;
        (false, r)
  in
  let e = Graph.neighbor_edge t.g v off in
  let target = Graph.neighbor t.g v off in
  let stamp' = stamp + 1 in
  t.wsteps.(w) <- stamp';
  if blue then t.wblue.(w) <- t.wblue.(w) + 1
  else t.wred.(w) <- t.wred.(w) + 1;
  let vis = Bitset.unsafe_bytes pv.pv_visited.(w) in
  if not (bit_get vis e) then begin
    bit_set vis e;
    pv.pv_ecount.(w) <- pv.pv_ecount.(w) + 1
  end;
  let dest =
    match t.fault with
    | Some Torn_soa -> (w + 1) mod Array.length t.pos
    | _ -> w
  in
  t.pos.(dest) <- target;
  let seen = Bitset.unsafe_bytes pv.pv_vseen.(w) in
  if not (bit_get seen target) then begin
    bit_set seen target;
    pv.pv_vcount.(w) <- pv.pv_vcount.(w) + 1;
    if pv.pv_vcount.(w) = Graph.n t.g && pv.pv_cover_at.(w) < 0 then
      pv.pv_cover_at.(w) <- stamp'
  end;
  emit_step_ev t w (Trace.Step { step = stamp'; vertex = target; edge = e; blue })

let step_walker t w =
  match t.marks with
  | Shared sh -> step_shared t sh w
  | Private pv -> step_private t pv w

let step t =
  let w = t.cursor in
  t.cursor <- (w + 1) mod Array.length t.pos;
  step_walker t w

let step_round t =
  for _ = 1 to Array.length t.pos do
    step t
  done

let no_observer t =
  (match t.observer with None -> true | Some _ -> false)
  && match t.phase_observer with None -> true | Some _ -> false

let run_rounds ?pool t rounds =
  if rounds < 0 then invalid_arg "Engine.run_rounds: negative rounds";
  let par =
    match (t.marks, pool) with
    | Private _, Some p when Pool.jobs p > 1 && t.fault = None && no_observer t
      ->
        Some p
    | _ -> None
  in
  match par with
  | Some p ->
      (* Competing walkers own disjoint state slices (position, PRNG words,
         bitsets, counters), so walker blocks advance independently on
         separate domains.  [retries = 0]: a re-executed block would
         re-apply steps to live state. *)
      let ids = Array.init (Array.length t.pos) (fun w -> w) in
      let (_ : unit array) =
        Pool.map_array ~retries:0 p
          (fun w ->
            for _ = 1 to rounds do
              step_walker t w
            done)
          ids
      in
      ()
  | None ->
      for _ = 1 to rounds do
        step_round t
      done

let run_until_first_cover ?pool ?(block = 64) ?cap t =
  match t.marks with
  | Shared _ ->
      invalid_arg "Engine.run_until_first_cover: competing mode only"
  | Private pv ->
      let cap = match cap with Some c -> c | None -> Cover.default_cap t.g in
      let any () = Array.exists (fun c -> c >= 0) pv.pv_cover_at in
      while (not (any ())) && t.wsteps.(0) < cap do
        let burst = min block (cap - t.wsteps.(0)) in
        run_rounds ?pool t burst
      done;
      if not (any ()) then None
      else begin
        let best = ref (-1) in
        Array.iteri
          (fun w c ->
            if c >= 0 && (!best < 0 || c < pv.pv_cover_at.(!best)) then
              best := w)
          pv.pv_cover_at;
        Some (!best, pv.pv_cover_at.(!best))
      end

(* --- naming and the generic process adapter -------------------------- *)

let proc_name = function
  | E_uar -> "e-process(uar)"
  | E_lowest -> "e-process(lowest-slot)"
  | E_highest -> "e-process(highest-slot)"
  | Srw -> "srw"
  | Rotor -> "rotor-router"

let name t =
  match t.marks with
  | Shared _ when walkers t = 1 -> proc_name t.proc
  | Shared _ ->
      Printf.sprintf "kernel-%s[w=%d,cooperating]" (proc_name t.proc)
        (walkers t)
  | Private _ ->
      Printf.sprintf "kernel-%s[w=%d,competing]" (proc_name t.proc) (walkers t)

let process t =
  match t.marks with
  | Private _ ->
      invalid_arg "Engine.process: competing mode has no shared coverage"
  | Shared sh ->
      {
        Cover.name = name t;
        graph = t.g;
        position = (fun () -> t.pos.(t.cursor));
        step = (fun () -> step t);
        steps_done = (fun () -> t.gsteps);
        coverage = sh.sh_coverage;
      }

(* --- checkpointing (cooperating mode) -------------------------------- *)

type checkpoint = {
  ck_proc : proc;
  ck_pos : int array;
  ck_cursor : int;
  ck_steps : int;
  ck_wsteps : int array;
  ck_wblue : int array;
  ck_wred : int array;
  ck_prng : int64 array;
  ck_coverage : Coverage.state;
  ck_unvisited : Ewalk.Unvisited.state option;
  ck_rotor : int array option;
  ck_phase : (phase_kind * int * Graph.vertex) option array;
}

let checkpoint t =
  match t.marks with
  | Private _ ->
      invalid_arg
        "Engine.checkpoint: competing mode carries per-walker bitsets; use \
         checkpoint_competing"
  | Shared sh ->
      {
        ck_proc = t.proc;
        ck_pos = Array.copy t.pos;
        ck_cursor = t.cursor;
        ck_steps = t.gsteps;
        ck_wsteps = Array.copy t.wsteps;
        ck_wblue = Array.copy t.wblue;
        ck_wred = Array.copy t.wred;
        ck_prng = Packed.save t.prng;
        ck_coverage = Coverage.save sh.sh_coverage;
        ck_unvisited = Option.map Compact.save sh.sh_unvisited;
        ck_rotor = Option.map Array.copy sh.sh_rotor;
        ck_phase = Array.copy t.phase;
      }

let of_checkpoint g ck =
  let w = Array.length ck.ck_pos in
  if w = 0 then invalid_arg "Engine.of_checkpoint: no walkers";
  if
    Array.length ck.ck_wsteps <> w
    || Array.length ck.ck_wblue <> w
    || Array.length ck.ck_wred <> w
    || Array.length ck.ck_phase <> w
  then invalid_arg "Engine.of_checkpoint: walker array length mismatch";
  Array.iter
    (fun v ->
      if v < 0 || v >= Graph.n g then
        invalid_arg "Engine.of_checkpoint: position out of range")
    ck.ck_pos;
  if ck.ck_cursor < 0 || ck.ck_cursor >= w then
    invalid_arg "Engine.of_checkpoint: cursor out of range";
  let sum = ref 0 in
  for i = 0 to w - 1 do
    if
      ck.ck_wsteps.(i) < 0
      || ck.ck_wblue.(i) < 0
      || ck.ck_wred.(i) < 0
      || ck.ck_wblue.(i) + ck.ck_wred.(i) <> ck.ck_wsteps.(i)
    then invalid_arg "Engine.of_checkpoint: inconsistent step counters";
    sum := !sum + ck.ck_wsteps.(i)
  done;
  if !sum <> ck.ck_steps then
    invalid_arg "Engine.of_checkpoint: inconsistent step counters";
  let prefers = prefers_unvisited ck.ck_proc in
  (match ck.ck_unvisited with
  | Some _ when not prefers ->
      invalid_arg "Engine.of_checkpoint: unexpected unvisited state"
  | None when prefers ->
      invalid_arg "Engine.of_checkpoint: missing unvisited state"
  | _ -> ());
  (match ck.ck_rotor with
  | Some r ->
      if ck.ck_proc <> Rotor then
        invalid_arg "Engine.of_checkpoint: unexpected rotor state";
      if Array.length r <> Graph.n g then
        invalid_arg "Engine.of_checkpoint: rotor array does not match the graph";
      Array.iteri
        (fun v o ->
          let deg = Graph.degree g v in
          if o < 0 || (deg > 0 && o >= deg) || (deg = 0 && o <> 0) then
            invalid_arg "Engine.of_checkpoint: rotor offset out of range")
        r
  | None ->
      if ck.ck_proc = Rotor then
        invalid_arg "Engine.of_checkpoint: missing rotor state");
  {
    g;
    proc = ck.ck_proc;
    marks =
      Shared
        {
          sh_unvisited = Option.map (Compact.restore g) ck.ck_unvisited;
          sh_coverage = Coverage.restore g ck.ck_coverage;
          sh_rotor = Option.map Array.copy ck.ck_rotor;
        };
    pos = Array.copy ck.ck_pos;
    prng = Packed.restore ~walkers:w ck.ck_prng;
    cursor = ck.ck_cursor;
    gsteps = ck.ck_steps;
    wsteps = Array.copy ck.ck_wsteps;
    wblue = Array.copy ck.ck_wblue;
    wred = Array.copy ck.ck_wred;
    phase = Array.copy ck.ck_phase;
    observer = None;
    phase_observer = None;
    fault = None;
  }

(* --- checkpointing (competing mode) ----------------------------------- *)

type competing_checkpoint = {
  cc_proc : proc;
  cc_pos : int array;
  cc_cursor : int;
  cc_wsteps : int array;
  cc_wblue : int array;
  cc_wred : int array;
  cc_prng : int64 array;
  cc_visited : Bitset.t array;
  cc_vseen : Bitset.t array;
  cc_vcount : int array;
  cc_ecount : int array;
  cc_cover_at : int array;
  cc_rotor : int array option;
  cc_phase : (phase_kind * int * Graph.vertex) option array;
}

let checkpoint_competing t =
  match t.marks with
  | Shared _ ->
      invalid_arg "Engine.checkpoint_competing: cooperating mode (use \
                   checkpoint)"
  | Private pv ->
      {
        cc_proc = t.proc;
        cc_pos = Array.copy t.pos;
        cc_cursor = t.cursor;
        cc_wsteps = Array.copy t.wsteps;
        cc_wblue = Array.copy t.wblue;
        cc_wred = Array.copy t.wred;
        cc_prng = Packed.save t.prng;
        cc_visited = Array.map Bitset.copy pv.pv_visited;
        cc_vseen = Array.map Bitset.copy pv.pv_vseen;
        cc_vcount = Array.copy pv.pv_vcount;
        cc_ecount = Array.copy pv.pv_ecount;
        cc_cover_at = Array.copy pv.pv_cover_at;
        cc_rotor = Option.map Array.copy pv.pv_rotor;
        cc_phase = Array.copy t.phase;
      }

(* Restore never trusts the serialized visit counters: each walker's
   vcount/ecount is recomputed as the popcount of its bitset, and a
   stored counter that disagrees with its own set is rejected — a stale
   or tampered counter can otherwise mis-time the cover detection. *)
let of_checkpoint_competing g ck =
  let w = Array.length ck.cc_pos in
  if w = 0 then invalid_arg "Engine.of_checkpoint_competing: no walkers";
  let arrays_ok =
    Array.length ck.cc_wsteps = w
    && Array.length ck.cc_wblue = w
    && Array.length ck.cc_wred = w
    && Array.length ck.cc_visited = w
    && Array.length ck.cc_vseen = w
    && Array.length ck.cc_vcount = w
    && Array.length ck.cc_ecount = w
    && Array.length ck.cc_cover_at = w
    && Array.length ck.cc_phase = w
  in
  if not arrays_ok then
    invalid_arg "Engine.of_checkpoint_competing: walker array length mismatch";
  Array.iter
    (fun v ->
      if v < 0 || v >= Graph.n g then
        invalid_arg "Engine.of_checkpoint_competing: position out of range")
    ck.cc_pos;
  if ck.cc_cursor < 0 || ck.cc_cursor >= w then
    invalid_arg "Engine.of_checkpoint_competing: cursor out of range";
  for i = 0 to w - 1 do
    if
      ck.cc_wsteps.(i) < 0
      || ck.cc_wblue.(i) < 0
      || ck.cc_wred.(i) < 0
      || ck.cc_wblue.(i) + ck.cc_wred.(i) <> ck.cc_wsteps.(i)
    then
      invalid_arg "Engine.of_checkpoint_competing: inconsistent step counters"
  done;
  let n = Graph.n g and m = Graph.m g in
  let vcount = Array.make w 0 and ecount = Array.make w 0 in
  for i = 0 to w - 1 do
    if Bitset.length ck.cc_visited.(i) <> m then
      invalid_arg
        "Engine.of_checkpoint_competing: edge bitset does not match the graph";
    if Bitset.length ck.cc_vseen.(i) <> n then
      invalid_arg
        "Engine.of_checkpoint_competing: vertex bitset does not match the \
         graph";
    (* The recount that replaces trusting the snapshot counters. *)
    vcount.(i) <- Bitset.popcount ck.cc_vseen.(i);
    ecount.(i) <- Bitset.popcount ck.cc_visited.(i);
    if vcount.(i) <> ck.cc_vcount.(i) || ecount.(i) <> ck.cc_ecount.(i) then
      invalid_arg
        "Engine.of_checkpoint_competing: stored visit counter disagrees with \
         its bitset popcount";
    if not (Bitset.get ck.cc_vseen.(i) ck.cc_pos.(i)) then
      invalid_arg
        "Engine.of_checkpoint_competing: walker position not marked seen";
    if ck.cc_cover_at.(i) < -1 || ck.cc_cover_at.(i) > ck.cc_wsteps.(i) then
      invalid_arg "Engine.of_checkpoint_competing: cover step out of range";
    if (ck.cc_cover_at.(i) >= 0) <> (vcount.(i) = n) then
      invalid_arg
        "Engine.of_checkpoint_competing: cover mark disagrees with the \
         vertex set"
  done;
  (match ck.cc_rotor with
  | Some r ->
      if ck.cc_proc <> Rotor then
        invalid_arg "Engine.of_checkpoint_competing: unexpected rotor state";
      if Array.length r <> w * n then
        invalid_arg
          "Engine.of_checkpoint_competing: rotor array does not match";
      Array.iteri
        (fun i o ->
          let deg = Graph.degree g (i mod n) in
          if o < 0 || (deg > 0 && o >= deg) || (deg = 0 && o <> 0) then
            invalid_arg
              "Engine.of_checkpoint_competing: rotor offset out of range")
        r
  | None ->
      if ck.cc_proc = Rotor then
        invalid_arg "Engine.of_checkpoint_competing: missing rotor state");
  {
    g;
    proc = ck.cc_proc;
    marks =
      Private
        {
          pv_visited = Array.map Bitset.copy ck.cc_visited;
          pv_vseen = Array.map Bitset.copy ck.cc_vseen;
          pv_vcount = vcount;
          pv_ecount = ecount;
          pv_cover_at = Array.copy ck.cc_cover_at;
          pv_rotor = Option.map Array.copy ck.cc_rotor;
        };
    pos = Array.copy ck.cc_pos;
    prng = Packed.restore ~walkers:w ck.cc_prng;
    cursor = ck.cc_cursor;
    gsteps = 0;
    wsteps = Array.copy ck.cc_wsteps;
    wblue = Array.copy ck.cc_wblue;
    wred = Array.copy ck.cc_wred;
    phase = Array.copy ck.cc_phase;
    observer = None;
    phase_observer = None;
    fault = None;
  }
