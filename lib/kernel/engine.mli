(** Batched multi-walker lockstep engine.

    The engine advances W walkers over one shared graph in round-robin
    lockstep, with all per-walker state held struct-of-arrays style: a flat
    [int array] of positions, a {!Packed} bank of per-walker xoshiro256++
    words (walker [w] draws from [Rng.stream root w], so no two walkers
    ever share a PRNG stream), and — in competing mode — bit-packed
    per-walker visited-edge sets.

    Two marking disciplines:

    - {e cooperating}: all walkers share one {!Ewalk.Unvisited} partition
      and one {!Ewalk.Coverage} table — a blue edge retired by any walker
      is gone for every walker.  Steps advance a global clock; the engine
      is checkpointable and exposes a {!Ewalk.Cover.process} adapter.  A
      1-walker cooperating engine is bit-identical to the legacy
      single-walker loop: same draws, same trace events, same tables.
    - {e competing}: every walker carries private visited sets, so walkers
      are mutually independent and walker blocks shard across domains via
      {!Ewalk_par.Pool} ({!run_rounds}) with results independent of the
      job count.  Step clocks are walker-local.

    E-process blue choices in competing mode scan adjacency-slot order
    (exactly the naive {!Ewalk_check.Oracle} protocol); cooperating mode
    uses the production swap-partition ({!Ewalk.Unvisited}) like the
    legacy loop. *)

open Ewalk_graph

type mode = Cooperating | Competing

type proc = E_uar | E_lowest | E_highest | Srw | Rotor
(** The ported step functions: the three E-process rules, the simple
    random walk, and the rotor-router. *)

type phase_kind = Blue | Red

type fault = Skip_preference | Reuse_prng_word | Torn_soa
(** Deliberate defects for the mutation-kill battery (see {!set_fault}):
    take the red draw even when unvisited edges remain; draw every
    walker's randomness from walker 0's PRNG words; write the landing
    position into the {e next} walker's SoA slot. *)

type t

val create :
  ?mode:mode ->
  ?randomize_rotors:bool ->
  ?perm:int array ->
  proc ->
  Graph.t ->
  Ewalk_prng.Rng.t ->
  starts:int array ->
  t
(** [create proc g rng ~starts] builds a [length starts]-walker engine,
    walker [w] starting at [starts.(w)] and drawing from
    [Rng.stream rng w].  [mode] defaults to [Cooperating];
    [randomize_rotors] (default [true]) seeds rotor offsets from the
    owning walker's stream like [Rotor.create ~randomize_rotors:true].
    When [g] is a {!Ewalk_graph.Graph.relabel}ing of an original graph,
    pass the permutation ([perm.(old) = new]) so rotor offsets are drawn
    in {e original} vertex order and the reordered engine stays
    isomorphic draw-for-draw (see {!Ewalk_graph.Graph.reorder}).
    [rng] itself is not advanced.
    @raise Invalid_argument on an empty graph, no walkers, a start
    out of range, or a [perm] of the wrong length. *)

val create_spread :
  ?mode:mode ->
  ?randomize_rotors:bool ->
  proc ->
  Graph.t ->
  Ewalk_prng.Rng.t ->
  walkers:int ->
  t
(** Like {!create} with [walkers] uniform start vertices drawn from [rng]
    (advancing it — the per-walker streams then derive from the advanced
    state, as the legacy [Team.create_spread] drew its starts). *)

(** {1 Stepping} *)

val step : t -> unit
(** Advance the cursor walker one step and move the cursor on — W calls
    make one lockstep round.  @raise Invalid_argument on an isolated
    vertex. *)

val step_round : t -> unit
(** One full round: every walker takes one step, in walker order. *)

val run_rounds : ?pool:Ewalk_par.Pool.t -> t -> int -> unit
(** [run_rounds ?pool t r] advances every walker [r] steps.  In competing
    mode with a multi-lane pool, no observers and no fault injected, the
    walker blocks run sharded across the pool's domains; the final state
    is identical to the sequential path at any job count (walkers are
    independent).  Cooperating mode always steps sequentially (the
    shared marks impose the round-robin order). *)

val run_until_first_cover :
  ?pool:Ewalk_par.Pool.t -> ?block:int -> ?cap:int -> t -> (int * int) option
(** Competing mode only: advance in [block]-round bursts (default 64)
    until some walker has seen every vertex or every walker has taken
    [cap] steps (default {!Ewalk.Cover.default_cap}).  Returns
    [Some (walker, cover_step)] for the walker with the smallest
    walker-local cover step (lowest index on ties) — deterministic and
    independent of [?pool].  @raise Invalid_argument in cooperating mode
    (use {!process} with {!Ewalk.Cover.run_until_vertex_cover}). *)

(** {1 Observation} *)

val set_observer : t -> (walker:int -> Ewalk_obs.Trace.event -> unit) option -> unit
(** Per-step observer: receives every [Step] and [Phase] event tagged
    with the walker index.  Event [step] stamps are global in
    cooperating mode and walker-local in competing mode.  At W=1
    cooperating, the stream is bit-identical to the legacy processes'. *)

val set_phase_observer :
  t -> (walker:int -> Ewalk_obs.Trace.event -> unit) option -> unit
(** Phase-boundary-only observer (the metrics fast path): fires once per
    maximal blue/red run of each walker, not per step. *)

val set_fault : t -> fault option -> unit
(** Test-only: inject a deliberate defect into the step functions so the
    differential/invariant battery can prove it would be caught.  Faulted
    engines never take the sharded {!run_rounds} path. *)

(** {1 Accessors} *)

val graph : t -> Graph.t
val proc : t -> proc
val mode : t -> mode
val walkers : t -> int
val positions : t -> int array
val walker_position : t -> int -> int

val cursor : t -> int
(** The walker that will move on the next {!step}. *)

val position : t -> int
(** The cursor walker's position (the legacy [Team.position ()] view). *)

val steps : t -> int
(** Total steps across all walkers (both modes). *)

val rounds : t -> int
val blue_steps : t -> int
val red_steps : t -> int
val walker_steps : t -> int -> int
val walker_blue_steps : t -> int -> int
val walker_red_steps : t -> int -> int

val coverage : t -> Ewalk.Coverage.t
(** The shared coverage table.  @raise Invalid_argument in competing
    mode. *)

val walker_vertices_visited : t -> int -> int
(** Competing mode: vertices walker [w] has seen (its start counts).
    @raise Invalid_argument in cooperating mode; likewise the three
    accessors below. *)

val walker_edges_visited : t -> int -> int
val walker_edge_visited : t -> int -> Graph.edge -> bool
val walker_vertex_visited : t -> int -> Graph.vertex -> bool

val walker_cover_step : t -> int -> int option
(** Competing mode: the walker-local step at which walker [w] completed
    its own vertex cover, if it has. *)

val rotor_offset : t -> Graph.vertex -> int
(** Cooperating rotor engines: the shared rotor offset at [v]. *)

val walker_rotor_offset : t -> int -> Graph.vertex -> int
(** Competing rotor engines: walker [w]'s private rotor offset at [v]. *)

val proc_name : proc -> string
(** The legacy process name ("e-process(uar)", "srw", ...). *)

val name : t -> string
(** The engine's run name: exactly {!proc_name} for a 1-walker
    cooperating engine (so W=1 traces carry legacy [Run_start] names),
    ["kernel-<proc>[w=W,<mode>]"] otherwise. *)

val process : t -> Ewalk.Cover.process
(** Cooperating mode: the generic process adapter (position = cursor
    walker, one [step ()] = one walker step), ready for
    {!Ewalk.Cover.run_until_vertex_cover} and {!Ewalk.Observe.instrument}.
    @raise Invalid_argument in competing mode. *)

(** {1 Checkpointing (cooperating mode)} *)

type checkpoint = {
  ck_proc : proc;
  ck_pos : int array;
  ck_cursor : int;
  ck_steps : int;
  ck_wsteps : int array;
  ck_wblue : int array;
  ck_wred : int array;
  ck_prng : int64 array;  (** {!Packed.save} words, walker-major *)
  ck_coverage : Ewalk.Coverage.state;
  ck_unvisited : Ewalk.Unvisited.state option;  (** E-process rules only *)
  ck_rotor : int array option;  (** Rotor only *)
  ck_phase : (phase_kind * int * Graph.vertex) option array;
}

val checkpoint : t -> checkpoint
(** Serialize a cooperating engine's complete state.
    @raise Invalid_argument in competing mode. *)

val of_checkpoint : Graph.t -> checkpoint -> t
(** Rebuild an engine that continues bit-identically to the one
    checkpointed.  Observers and faults are not restored.
    @raise Invalid_argument on any internally inconsistent record. *)

(** {1 Checkpointing (competing mode)} *)

type competing_checkpoint = {
  cc_proc : proc;
  cc_pos : int array;
  cc_cursor : int;
  cc_wsteps : int array;
  cc_wblue : int array;
  cc_wred : int array;
  cc_prng : int64 array;  (** {!Packed.save} words, walker-major *)
  cc_visited : Ewalk.Bitset.t array;  (** per-walker edge bitsets, m bits *)
  cc_vseen : Ewalk.Bitset.t array;  (** per-walker vertex bitsets, n bits *)
  cc_vcount : int array;
      (** serialized for inspectability only — restore recomputes *)
  cc_ecount : int array;  (** likewise *)
  cc_cover_at : int array;  (** walker-local cover step, [-1] if none *)
  cc_rotor : int array option;  (** walkers * n, walker-major; Rotor only *)
  cc_phase : (phase_kind * int * Graph.vertex) option array;
}
(** Complete state of a competing engine.  The visit counters
    [cc_vcount]/[cc_ecount] ride along so snapshot inspection can print
    them, but they are {e derived} data: {!of_checkpoint_competing}
    recomputes both from the bitsets by popcount and rejects a record
    whose stored counters disagree — a resumed run never trusts a
    counter it can recount. *)

val checkpoint_competing : t -> competing_checkpoint
(** Serialize a competing engine's complete state (bitsets are copied).
    @raise Invalid_argument in cooperating mode (use {!checkpoint}). *)

val of_checkpoint_competing : Graph.t -> competing_checkpoint -> t
(** Rebuild a competing engine that continues bit-identically to the one
    checkpointed, at any job count.  Per-walker visit counters are
    recomputed from the bitset popcounts, never read from the record.
    Observers and faults are not restored.
    @raise Invalid_argument on any internally inconsistent record: bad
    lengths or ranges, step counters that do not add up, a stored visit
    counter disagreeing with its bitset's popcount, a walker position
    not marked seen, or a cover mark inconsistent with the vertex
    set. *)
