module Observe = Ewalk.Observe
module Metrics = Ewalk_obs.Metrics
module Shard = Ewalk_obs.Shard
module Trace = Ewalk_obs.Trace

(* Cap on per-walker labelled series: beyond this many walkers only the
   aggregate counters are published (a 1000-walker engine should not mint
   4000 registry names). *)
let per_walker_cap = 32

let attach obs k =
  if not (Observe.is_noop obs) then begin
    let w = Engine.walkers k in
    let metrics = Observe.metrics obs in
    (match metrics with
    | Some m when w > 1 ->
        Metrics.set (Metrics.gauge m "kernel_walkers") (float_of_int w)
    | _ -> ());
    let walker_counters =
      match metrics with
      | Some m when w > 1 && w <= per_walker_cap ->
          Some
            (Array.init w (fun i ->
                 let series name =
                   Shard.counter m
                     (Metrics.with_label name ~key:"walker"
                        ~value:(string_of_int i))
                 in
                 (series "blue_steps", series "red_steps", series "steps")))
      | _ -> None
    in
    if Observe.is_fast obs then begin
      (* Fast path: no per-step events — counters drain in batches from the
         engine's native SoA fields, phases ride the boundary observer. *)
      (match metrics with
      | Some m ->
          let blue_c = Shard.counter m "blue_steps" in
          let red_c = Shard.counter m "red_steps" in
          let delta shard read =
            let last = ref (read ()) in
            fun () ->
              let now = read () in
              Shard.add shard (now - !last);
              last := now
          in
          Observe.register_drain obs
            (delta blue_c (fun () -> Engine.blue_steps k));
          Observe.register_drain obs (delta red_c (fun () -> Engine.red_steps k));
          (match walker_counters with
          | Some arr ->
              (* The per-walker steps series attributes the throughput
                 time series to individual walkers: the aggregate sampler
                 is fed once by the bundle's own steps drain (see
                 [Observe.instrument]), this labelled breakdown rides the
                 same drain cadence. *)
              Array.iteri
                (fun i (bc, rc, sc) ->
                  Observe.register_drain obs
                    (delta bc (fun () -> Engine.walker_blue_steps k i));
                  Observe.register_drain obs
                    (delta rc (fun () -> Engine.walker_red_steps k i));
                  Observe.register_drain obs
                    (delta sc (fun () -> Engine.walker_steps k i)))
                arr
          | None -> ())
      | None -> ());
      match Observe.phase_event_tracker obs with
      | Some tracker ->
          Engine.set_phase_observer k (Some (fun ~walker:_ ev -> tracker ev))
      | None -> ()
    end
    else begin
      (* Live sink: the bundle's own event interpreter gets the per-step
         stream (at W=1 this is byte-identical to the legacy attach), with
         per-walker counters folded in on the side when enabled. *)
      let recorder = Observe.event_recorder obs in
      let f ~walker ev =
        (match (walker_counters, ev) with
        | Some arr, Trace.Step { blue; _ } ->
            let bc, rc, sc = arr.(walker) in
            Shard.incr (if blue then bc else rc);
            Shard.incr sc
        | _ -> ());
        recorder ev
      in
      Engine.set_observer k (Some f)
    end
  end
