(** Observability wiring for the lockstep engine — the kernel's
    counterpart of [Ewalk.Observe.attach_eprocess].

    [attach obs k] is a no-op on a no-op bundle.  On the metrics fast
    path (metrics, null sink) it registers batch drains over the engine's
    native step counters — aggregate [blue_steps]/[red_steps], plus
    name-encoded per-walker series ([blue_steps_walker_i], see
    {!Ewalk_obs.Metrics.with_label}) when [1 < W <= 32] — and installs
    only the phase-boundary observer; nothing is allocated per step.
    With a live sink it installs the bundle's event interpreter as the
    engine's per-step observer, so a W=1 cooperating engine produces a
    byte-identical trace to the legacy attach.  Engines with more than
    one walker also publish a [kernel_walkers] gauge. *)

val attach : Ewalk.Observe.t -> Engine.t -> unit
