module Rng = Ewalk_prng.Rng

(* Struct-of-arrays PRNG bank: the four xoshiro256++ state words of every
   walker live side by side in one [Bytes.t], 32 bytes per walker, accessed
   with native-endian 64-bit loads/stores.  Walker [w]'s words occupy byte
   offsets [32w .. 32w+31]; the slices are disjoint, so distinct walkers can
   draw from the bank concurrently on different domains without
   synchronisation.  The generator algebra below replicates [Rng] bit for
   bit — [of_rng] seeds walker [w] from [Rng.stream root w], so walker 0 of
   a 1-walker bank produces exactly the parent's future stream. *)

type t = { words : Bytes.t; walkers : int }

let walkers t = t.walkers
let get t i = Bytes.get_int64_ne t.words (8 * i)
let set t i v = Bytes.set_int64_ne t.words (8 * i) v

let all_zero t w =
  get t (4 * w) = 0L
  && get t ((4 * w) + 1) = 0L
  && get t ((4 * w) + 2) = 0L
  && get t ((4 * w) + 3) = 0L

let of_rng rng ~walkers =
  if walkers < 1 then invalid_arg "Packed.of_rng: walkers < 1";
  let t = { words = Bytes.create (32 * walkers); walkers } in
  for w = 0 to walkers - 1 do
    let s = Rng.save (Rng.stream rng w) in
    for j = 0 to 3 do
      set t ((4 * w) + j) s.(j)
    done
  done;
  t

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

(* xoshiro256++ [next] on walker [w]'s slice, exactly as [Xoshiro.next]. *)
let bits64 t w =
  let b = 4 * w in
  let s0 = get t b
  and s1 = get t (b + 1)
  and s2 = get t (b + 2)
  and s3 = get t (b + 3) in
  let result = Int64.add (rotl (Int64.add s0 s3) 23) s0 in
  let tmp = Int64.shift_left s1 17 in
  let s2 = Int64.logxor s2 s0 in
  let s3 = Int64.logxor s3 s1 in
  let s1 = Int64.logxor s1 s2 in
  let s0 = Int64.logxor s0 s3 in
  let s2 = Int64.logxor s2 tmp in
  let s3 = rotl s3 45 in
  set t b s0;
  set t (b + 1) s1;
  set t (b + 2) s2;
  set t (b + 3) s3;
  result

(* Uniform draw on [0, bound), the exact [Rng.int] algorithm (low-bit mask
   for powers of two, 63-bit rejection sampling otherwise) so a packed
   walker and an [Rng.t] restored from the same words stay in lockstep. *)
let int t w bound =
  if bound <= 0 then invalid_arg "Packed.int: bound <= 0";
  if bound land (bound - 1) = 0 then
    Int64.to_int (Int64.logand (bits64 t w) (Int64.of_int (bound - 1)))
  else begin
    let bound64 = Int64.of_int bound in
    let mask = Int64.max_int in
    let limit = Int64.sub mask (Int64.rem mask bound64) in
    let rec draw () =
      let v = Int64.logand (bits64 t w) mask in
      if v >= limit then draw () else Int64.to_int (Int64.rem v bound64)
    in
    draw ()
  end

let save t = Array.init (4 * t.walkers) (get t)

let restore ~walkers words =
  if walkers < 1 then invalid_arg "Packed.restore: walkers < 1";
  if Array.length words <> 4 * walkers then
    invalid_arg "Packed.restore: expected 4 state words per walker";
  let t = { words = Bytes.create (32 * walkers); walkers } in
  Array.iteri (fun i w -> set t i w) words;
  for w = 0 to walkers - 1 do
    if all_zero t w then invalid_arg "Packed.restore: all-zero walker state"
  done;
  t

let rng_of_walker t w =
  Rng.restore
    [| get t (4 * w); get t ((4 * w) + 1); get t ((4 * w) + 2); get t ((4 * w) + 3) |]
