(** Packed per-walker PRNG bank for the lockstep kernel.

    One [Bytes.t] holds the four xoshiro256++ state words of every walker,
    32 bytes per walker, struct-of-arrays style.  Walker slices are
    disjoint, so walkers sharded across domains may draw concurrently
    without synchronisation (each domain touches only its own walkers'
    bytes).

    The bank replicates {!Ewalk_prng.Rng} bit for bit: {!bits64} is the
    xoshiro256++ [next] function on the walker's slice and {!int} is the
    exact [Rng.int] draw algorithm (mask for powers of two, 63-bit
    rejection otherwise).  {!of_rng} seeds walker [w] from
    [Rng.stream root w], so walker 0 carries a bit-identical copy of the
    root generator — the basis of the W=1 ≡ legacy equivalence. *)

type t

val of_rng : Ewalk_prng.Rng.t -> walkers:int -> t
(** [of_rng root ~walkers] packs [walkers] generators, walker [w] seeded
    from [Rng.stream root w] (walker 0 = the root's own state; the root
    is not advanced).  @raise Invalid_argument if [walkers < 1]. *)

val walkers : t -> int

val bits64 : t -> int -> int64
(** [bits64 t w] draws 64 uniform bits from walker [w]'s generator,
    advancing only that walker's slice. *)

val int : t -> int -> int -> int
(** [int t w bound] is uniform on [\[0, bound)] from walker [w]'s
    generator — the exact [Rng.int] algorithm, so it consumes the same
    number of [bits64] draws as an [Rng.t] with the same state.
    @raise Invalid_argument if [bound <= 0]. *)

val save : t -> int64 array
(** The full bank as [4 * walkers] words, walker-major — walker [w]'s
    state is [words.(4w .. 4w+3)].  Suitable for checkpointing. *)

val restore : walkers:int -> int64 array -> t
(** Rebuild a bank from {!save} output.  @raise Invalid_argument on a
    length mismatch or an all-zero walker state. *)

val rng_of_walker : t -> int -> Ewalk_prng.Rng.t
(** [rng_of_walker t w] is a fresh {!Ewalk_prng.Rng.t} carrying a copy of
    walker [w]'s current state (the bank is not advanced) — the test
    suite uses it to run a naive oracle in lockstep with a walker. *)
