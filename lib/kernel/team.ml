open Ewalk_graph
module Rng = Ewalk_prng.Rng
module Cover = Ewalk.Cover
module Coverage = Ewalk.Coverage

type t = Engine.t

let create ?rule:_ g rng ~starts =
  if starts = [] then invalid_arg "Team.create: no walkers";
  List.iter
    (fun v ->
      if v < 0 || v >= Graph.n g then
        invalid_arg "Team.create: start out of range")
    starts;
  Engine.create Engine.E_uar g rng ~starts:(Array.of_list starts)

let create_spread g rng ~walkers =
  if walkers < 1 then invalid_arg "Team.create_spread: walkers < 1";
  if Graph.n g = 0 then invalid_arg "Team.create_spread: empty graph";
  let starts = List.init walkers (fun _ -> Rng.int rng (Graph.n g)) in
  create g rng ~starts

let graph = Engine.graph
let walkers = Engine.walkers
let positions = Engine.positions
let steps = Engine.steps
let rounds = Engine.rounds
let coverage = Engine.coverage

let step t =
  try Engine.step t
  with Invalid_argument _ -> invalid_arg "Team.step: isolated vertex"

let step_round t =
  for _ = 1 to Engine.walkers t do
    step t
  done

let process t =
  let p = Engine.process t in
  {
    p with
    Cover.name = Printf.sprintf "team-e-process(%d)" (Engine.walkers t);
    step = (fun () -> step t);
  }

let engine t = t
