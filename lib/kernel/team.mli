(** W cooperating E-process walkers — the legacy [Ewalk.Team] interface,
    now a thin veneer over the lockstep {!Engine}.

    The walkers share one unvisited-edge partition and one coverage table
    and move in round-robin lockstep.  Unlike the original closure-based
    implementation, which drew every walker's randomness from one shared
    generator, each walker [i] now owns PRNG stream [Rng.stream rng i]
    (a SplitMix jump off the creation-time state), so walkers can never
    collide on a stream — and per-walker step/blue/red counters come for
    free from the engine's struct-of-arrays state. *)

open Ewalk_graph

type t

val create :
  ?rule:[ `Uar ] -> Graph.t -> Ewalk_prng.Rng.t -> starts:Graph.vertex list -> t
(** [create g rng ~starts] puts one walker on each listed vertex.
    @raise Invalid_argument if [starts] is empty or out of range. *)

val create_spread : Graph.t -> Ewalk_prng.Rng.t -> walkers:int -> t
(** [create_spread g rng ~walkers] draws [walkers] uniform start vertices
    from [rng] (advancing it).  @raise Invalid_argument if [walkers < 1]
    or the graph is empty. *)

val graph : t -> Graph.t
val walkers : t -> int
val positions : t -> Graph.vertex array
val steps : t -> int
val rounds : t -> int
val coverage : t -> Ewalk.Coverage.t

val step : t -> unit
(** Advance the next walker (round-robin) one step.
    @raise Invalid_argument on an isolated vertex. *)

val step_round : t -> unit
(** Every walker takes one step. *)

val process : t -> Ewalk.Cover.process
(** The team as a generic process named ["team-e-process(W)"] (one
    [step ()] = one walker step). *)

val engine : t -> Engine.t
(** The underlying lockstep engine (same state, not a copy). *)
