type stats = {
  median_ns : float;
  mad_ns : float;
  min_ns : float;
  samples : int;
}

let median xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Benchstat.median: empty sample";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  if n mod 2 = 1 then sorted.(n / 2)
  else (sorted.((n / 2) - 1) +. sorted.(n / 2)) /. 2.0

let mad xs =
  let m = median xs in
  median (Array.map (fun x -> Float.abs (x -. m)) xs)

(* One timed repetition: [iters] calls of [f], in ns total. *)
let time_rep f iters =
  let t0 = Clock.now_ns () in
  for _ = 1 to iters do
    f ()
  done;
  float_of_int (Clock.elapsed_ns t0)

(* Double the iteration count until one repetition takes >= min_rep_s, so
   short kernels are timed over enough work to outlast clock granularity. *)
let calibrate f ~min_rep_s =
  let target_ns = min_rep_s *. 1e9 in
  let rec go iters =
    let dt = time_rep f iters in
    if dt >= target_ns || iters >= 1 lsl 20 then iters else go (iters * 2)
  in
  go 1

let measure ?(warmup = 3) ?(reps = 10) ?(min_rep_s = 0.002) f =
  let reps = max 10 reps in
  let iters = calibrate f ~min_rep_s in
  for _ = 1 to warmup do
    ignore (time_rep f iters)
  done;
  let per_run = float_of_int iters in
  let samples = Array.init reps (fun _ -> time_rep f iters /. per_run) in
  {
    median_ns = median samples;
    mad_ns = mad samples;
    min_ns = Array.fold_left Float.min samples.(0) samples;
    samples = reps;
  }

type overhead = {
  percent : float;
  raw_percent : float;
  noise_percent : float;
  pairs : int;
}

let paired_overhead ?(warmup = 2) ?(reps = 12) ?(min_rep_s = 0.002) ~base
    ~instrumented () =
  let reps = max 10 reps in
  (* Same iteration count for both sides: the ratio then cancels it. *)
  let iters = calibrate base ~min_rep_s in
  for _ = 1 to warmup do
    ignore (time_rep base iters);
    ignore (time_rep instrumented iters)
  done;
  let ratios =
    Array.init reps (fun i ->
        (* Alternate which side runs first so frequency/GC drift within a
           pair has no preferred sign. *)
        if i mod 2 = 0 then begin
          let b = time_rep base iters in
          let m = time_rep instrumented iters in
          m /. b
        end
        else begin
          let m = time_rep instrumented iters in
          let b = time_rep base iters in
          m /. b
        end)
  in
  let raw_percent = (median ratios -. 1.0) *. 100.0 in
  let noise_percent = mad ratios *. 100.0 in
  let percent =
    if Float.abs raw_percent <= noise_percent then 0.0
    else Float.max raw_percent 0.0
  in
  { percent; raw_percent; noise_percent; pairs = reps }
