(** Robust repeated-sample timing for the bench harness.

    Single-shot timings are the wrong estimator for kernel cost — GC state,
    frequency scaling, and scheduler noise dominate one-off deltas (the
    seed bench once reported a {e negative} observability overhead that
    way).  This module measures every kernel as warmups plus at least ten
    timed repetitions on the monotonic clock and summarises with the
    outlier-robust trio the bench ledger stores: median, MAD (median
    absolute deviation), and min.

    Overhead comparisons ({!paired_overhead}) interleave the baseline and
    instrumented kernels rep by rep, so slow drift hits both sides equally,
    and report the median of per-pair ratios with a MAD noise floor — the
    published percentage is non-negative by construction (an instrumented
    kernel cannot truly be faster; a negative raw median is noise and
    clamps to 0, with the raw value kept alongside for transparency). *)

type stats = {
  median_ns : float;  (** median ns per run across repetitions *)
  mad_ns : float;  (** median absolute deviation around [median_ns] *)
  min_ns : float;
  samples : int;  (** number of measured repetitions *)
}

val median : float array -> float
(** Linear-interpolated median. @raise Invalid_argument on empty input. *)

val mad : float array -> float
(** Median absolute deviation around the median.
    @raise Invalid_argument on empty input. *)

val measure :
  ?warmup:int -> ?reps:int -> ?min_rep_s:float -> (unit -> unit) -> stats
(** [measure f] times [f] as [reps] repetitions (default 10, floored at
    10), each repeating [f] enough times to run at least [min_rep_s]
    seconds (default 2 ms; the iteration count is calibrated once before
    the warmups).  [warmup] (default 3) un-timed repetitions precede the
    measurements. *)

type overhead = {
  percent : float;
      (** reported overhead, non-negative by construction: the noise-floored
          median of paired ratios *)
  raw_percent : float;  (** un-floored [(median ratio - 1) * 100] *)
  noise_percent : float;  (** MAD of the paired ratios, in percent *)
  pairs : int;
}

val paired_overhead :
  ?warmup:int ->
  ?reps:int ->
  ?min_rep_s:float ->
  base:(unit -> unit) ->
  instrumented:(unit -> unit) ->
  unit ->
  overhead
(** Time [base] and [instrumented] in alternating, interleaved repetitions
    (default 12 pairs, floored at 10; order swaps every pair so neither
    side systematically runs first) and form one instrumented/base ratio
    per pair.  [percent] is [max raw_percent 0], and additionally snaps to
    exactly 0 when [|raw_percent|] is within the ratio MAD — differences
    indistinguishable from noise read as "free". *)
