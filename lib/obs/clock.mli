(** Monotonic time source for spans, profiling, and benchmarking.

    Readings come from [CLOCK_MONOTONIC] (via the [bechamel.monotonic_clock]
    stub already in the build), so durations can never go backwards under
    NTP slew or wall-clock adjustment — the property every span duration,
    profiler node, and bench repetition in this repo relies on.  Use
    {!Timer.now} when an {e epoch} timestamp is genuinely wanted (ledger
    records, log lines); use this module for every elapsed-time
    measurement. *)

val now_ns : unit -> int
(** Nanoseconds since an arbitrary (per-boot) origin.  Fits comfortably in
    an OCaml [int] on 64-bit platforms (2^62 ns is ~146 years). *)

val elapsed_ns : int -> int
(** [elapsed_ns t0] is [now_ns () - t0], clamped at 0. *)

val ns_to_s : int -> float
(** Nanoseconds to seconds. *)

val elapsed_s : int -> float
(** [ns_to_s (elapsed_ns t0)]. *)
