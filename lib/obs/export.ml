let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
      | _ -> '_')
    name

(* OpenMetrics label values escape backslash, double quote, and newline. *)
let escape_label v =
  let buf = Buffer.create (String.length v + 2) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let fmt_float = Json.float_to_string

let render ?(prefix = "ewalk") ?prof metrics =
  let buf = Buffer.create 1024 in
  let family name kind = Printf.bprintf buf "# TYPE %s %s\n" name kind in
  (* Run provenance travels as an info metric (constant 1, identity in the
     labels), the OpenMetrics idiom for build/run identity — so any scrape
     can be joined to the run's other artifacts by run_id. *)
  (match Runlog.current () with
  | None -> ()
  | Some r ->
      let name = prefix ^ "_run" in
      family name "info";
      Printf.bprintf buf "%s_info{run_id=\"%s\"%s} 1\n" name
        (escape_label r.Runlog.run_id)
        (match r.Runlog.parent_run_id with
        | None -> ""
        | Some p -> Printf.sprintf ",parent_run_id=\"%s\"" (escape_label p)));
  List.iter
    (fun (raw_name, view) ->
      let name = prefix ^ "_" ^ sanitize raw_name in
      match view with
      | Metrics.Counter_view v ->
          family name "counter";
          Printf.bprintf buf "%s_total %d\n" name v
      | Metrics.Gauge_view v ->
          family name "gauge";
          Printf.bprintf buf "%s %s\n" name (fmt_float v)
      | Metrics.Histogram_view { hv_count; hv_sum; hv_buckets; hv_inf = _ } ->
          family name "histogram";
          let cum = ref 0 in
          Array.iter
            (fun (le, c) ->
              cum := !cum + c;
              Printf.bprintf buf "%s_bucket{le=\"%s\"} %d\n" name
                (fmt_float le) !cum)
            hv_buckets;
          (* The +Inf bucket is total count by construction. *)
          Printf.bprintf buf "%s_bucket{le=\"+Inf\"} %d\n" name hv_count;
          Printf.bprintf buf "%s_sum %s\n" name (fmt_float hv_sum);
          Printf.bprintf buf "%s_count %d\n" name hv_count)
    (Metrics.instruments metrics);
  (match prof with
  | None -> ()
  | Some p -> (
      match Prof.tree p with
      | [] -> ()
      | roots ->
          (* Flatten the tree to slash-joined paths, depth-first, so the
             label order matches the report's visual order. *)
          let flat = ref [] in
          let rec walk path (n : Prof.node) =
            let path = if path = "" then n.name else path ^ "/" ^ n.name in
            flat := (path, n) :: !flat;
            List.iter (walk path) n.children
          in
          List.iter (walk "") roots;
          let flat = List.rev !flat in
          let calls = prefix ^ "_prof_calls" in
          let seconds = prefix ^ "_prof_seconds" in
          let self_seconds = prefix ^ "_prof_self_seconds" in
          family calls "counter";
          List.iter
            (fun (path, (n : Prof.node)) ->
              Printf.bprintf buf "%s_total{span=\"%s\"} %d\n" calls
                (escape_label path) n.calls)
            flat;
          family seconds "gauge";
          List.iter
            (fun (path, (n : Prof.node)) ->
              Printf.bprintf buf "%s{span=\"%s\"} %s\n" seconds
                (escape_label path) (fmt_float n.total_s))
            flat;
          family self_seconds "gauge";
          List.iter
            (fun (path, (n : Prof.node)) ->
              Printf.bprintf buf "%s{span=\"%s\"} %s\n" self_seconds
                (escape_label path) (fmt_float n.self_s))
            flat));
  Buffer.add_string buf "# EOF\n";
  Buffer.contents buf

let write_file ?prefix ?prof metrics path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (render ?prefix ?prof metrics))

(* -- validation -------------------------------------------------------------- *)

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'

let is_name_char c = is_name_start c || (c >= '0' && c <= '9')

let valid_name s =
  String.length s > 0
  && is_name_start s.[0]
  && String.for_all is_name_char s

(* A sample name belongs to a family if it carries one of the suffixes that
   family's kind allows: counters expose only [_total] (and [_created]),
   histograms their [_bucket]/[_sum]/[_count] series, gauges the bare
   name. *)
let extends_family ~family ~kind name =
  let suffixed suffix = name = family ^ suffix in
  match kind with
  | "counter" -> suffixed "_total" || suffixed "_created"
  | "histogram" | "summary" ->
      suffixed "_bucket" || suffixed "_sum" || suffixed "_count"
      || suffixed "_created"
  | "gauge" -> name = family
  | "info" -> name = family || suffixed "_info"
  | _ -> name = family || suffixed "_total"

let split_sample line =
  (* name[{labels}] value [timestamp] -> (name, labels option, rest) *)
  let n = String.length line in
  let i = ref 0 in
  while !i < n && is_name_char line.[!i] do
    incr i
  done;
  if !i = 0 then Error "sample line does not start with a metric name"
  else begin
    let name = String.sub line 0 !i in
    if !i < n && line.[!i] = '{' then begin
      (* Scan to the closing brace, honouring escapes inside quotes. *)
      let j = ref (!i + 1) in
      let in_string = ref false in
      let escaped = ref false in
      let closed = ref false in
      while !j < n && not !closed do
        let c = line.[!j] in
        if !escaped then escaped := false
        else if !in_string then begin
          if c = '\\' then escaped := true
          else if c = '"' then in_string := false
        end
        else if c = '"' then in_string := true
        else if c = '}' then closed := true;
        incr j
      done;
      if not !closed then Error "unterminated label set"
      else
        Ok (name, Some (String.sub line (!i + 1) (!j - !i - 2)),
            String.sub line !j (n - !j))
    end
    else Ok (name, None, String.sub line !i (n - !i))
  end

let validate text =
  let lines = String.split_on_char '\n' text in
  (* A trailing newline yields a final "" entry; require it. *)
  let rec check families saw_eof = function
    | [] -> if saw_eof then Ok () else Error "missing terminal # EOF"
    | [ "" ] when saw_eof -> Ok ()
    | line :: rest ->
        if saw_eof then Error "content after # EOF"
        else if line = "# EOF" then check families true rest
        else if line = "" then Error "blank line"
        else if String.length line >= 2 && String.sub line 0 2 = "# " then begin
          match String.split_on_char ' ' line with
          | "#" :: "TYPE" :: name :: [ kind ] ->
              if not (valid_name name) then
                Error (Printf.sprintf "bad family name %S" name)
              else if
                not
                  (List.mem kind
                     [
                       "counter"; "gauge"; "histogram"; "summary"; "info";
                       "stateset"; "unknown";
                     ])
              then Error (Printf.sprintf "bad family type %S" kind)
              else check ((name, kind) :: families) saw_eof rest
          | "#" :: ("HELP" | "UNIT") :: name :: _ when valid_name name ->
              check families saw_eof rest
          | _ -> Error (Printf.sprintf "malformed comment line %S" line)
        end
        else begin
          match split_sample line with
          | Error e -> Error (Printf.sprintf "%s: %S" e line)
          | Ok (name, _labels, remainder) ->
              let remainder = String.trim remainder in
              let value =
                match String.split_on_char ' ' remainder with
                | v :: _ -> v
                | [] -> ""
              in
              let value_ok =
                match value with
                | "+Inf" | "-Inf" | "NaN" -> true
                | v -> float_of_string_opt v <> None
              in
              if not value_ok then
                Error (Printf.sprintf "bad sample value in %S" line)
              else if
                not
                  (List.exists
                     (fun (family, kind) -> extends_family ~family ~kind name)
                     families)
              then
                Error
                  (Printf.sprintf "sample %S precedes its # TYPE family" name)
              else check families saw_eof rest
        end
  in
  check [] false lines
