(** OpenMetrics / Prometheus text exposition of the telemetry registry.

    {!render} turns any {!Metrics.t} (and optionally a {!Prof} span tree)
    into the standard text exposition format, so a run's counters, gauges,
    histograms, and profile can be scraped, diffed, or pushed to any
    Prometheus-compatible backend.  Reachable from the CLI as
    [eproc ... --export-metrics FILE].

    Mapping:
    - a counter [steps] becomes [ewalk_steps_total] (type [counter]);
    - a gauge [coverage_vertex_fraction] becomes
      [ewalk_coverage_vertex_fraction] (type [gauge]);
    - a histogram becomes the conventional [_bucket{le="..."}] series with
      {e cumulative} counts (the registry stores per-bucket counts), plus
      [_sum] and [_count];
    - profiler nodes become [ewalk_prof_calls_total{span="a/b"}],
      [ewalk_prof_seconds{span=...}] and [ewalk_prof_self_seconds{span=...}]
      with the slash-joined span path as the label.

    When an ambient {!Runlog} run exists, the exposition opens with the
    run-provenance info metric
    [ewalk_run_info{run_id="r...",parent_run_id="r..."} 1] so any scrape
    joins to the run's other artifacts by id.

    Instrument names are sanitised to the OpenMetrics charset (every char
    outside [[a-zA-Z0-9_:]] becomes [_]).  Output is deterministic:
    families sorted by instrument name, [# EOF] terminated. *)

val render : ?prefix:string -> ?prof:Prof.t -> Metrics.t -> string
(** [prefix] defaults to ["ewalk"]. *)

val write_file : ?prefix:string -> ?prof:Prof.t -> Metrics.t -> string -> unit
(** {!render} written to a file ([Fun.protect]-guarded channel). *)

val validate : string -> (unit, string) result
(** Check a string against the shape of the OpenMetrics text format: every
    line is a [# TYPE]/[# HELP]/[# UNIT] comment or a
    [name[{labels}] value [timestamp]] sample; sample names must extend a
    declared family (counters via [_total], histograms via
    [_bucket]/[_sum]/[_count]); the last line must be [# EOF].  A syntax
    check for tests and CI, not a full spec implementation. *)
