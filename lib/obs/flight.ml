(* Crash flight recorder: a fixed-size per-domain ring of recent trace
   events, dumped as JSONL when the process dies unexpectedly.

   Events are stored decomposed into preallocated mutable slots (an int
   tag plus int/bool/string fields), so recording allocates nothing once
   the ring exists — a Step overwrites the oldest slot's fields in place.
   Each domain owns its ring (Domain.DLS): recording is unsynchronised
   and the dump of the exiting domain's own ring is exact.  Other
   domains' rings are dumped best-effort (their fields are word-sized, so
   reads are never torn, merely possibly stale).

   The ring resets on every [Run_start], so a dump is always (a suffix
   of) a single run's stream.  When the ring has wrapped, the dump
   synthesises a [Run_start] + [Resume] prologue from a pinned header
   (run identity never evicted) and the last evicted position, producing
   exactly the resumed-tail stream shape [Ewalk_check.Replay] verifies in
   relaxed mode — so [eproc verify-trace --flight] accepts any dump.

   Arming: [enable] (or [EWALK_FLIGHT_DIR] via [enable_from_env])
   installs an [at_exit] dump and a SIGTERM handler that routes through
   [exit].  Injected faults ([Ewalk_resume.Faults], exit 70) and uncaught
   exceptions both reach [at_exit]; a run that completes cleanly calls
   [disarm] first and leaves no dump. *)

type slot = {
  mutable tag : int; (* 0 empty, 1..8 = event constructors in order *)
  mutable i1 : int;
  mutable i2 : int;
  mutable i3 : int;
  mutable i4 : int;
  mutable b : bool;
  mutable s : string;
  mutable s2 : string; (* second string field (Run_info parent id) *)
}

let empty_slot () =
  { tag = 0; i1 = 0; i2 = 0; i3 = 0; i4 = 0; b = false; s = ""; s2 = "" }

type rb = {
  rb_id : int;
  slots : slot array;
  mutable next : int;
  mutable seen : int;
  mutable stamp : int; (* global-clock value of the last record *)
  (* Pinned run header: survives eviction of the Run_start slot. *)
  mutable hdr_valid : bool;
  mutable hdr_name : string;
  mutable hdr_n : int;
  mutable hdr_m : int;
  mutable hdr_start : int;
  (* Run provenance, pinned alongside the run header so a wrapped dump
     still knows which run (and parent) it belongs to. *)
  mutable hdr_run_id : string;
  mutable hdr_parent : string;
  (* Walk position established by the most recently evicted event. *)
  mutable has_evicted : bool;
  mutable evicted_step : int;
  mutable evicted_pos : int;
}

let default_capacity = 512
let config : (string * int) option ref = ref None (* dir, capacity *)
let armed = Atomic.make false
let ambient_flag = Atomic.make true
let clock = Atomic.make 0
let rings_mutex = Mutex.create ()
let rings : rb list ref = ref []
let next_ring_id = Atomic.make 0

let enabled () = !config <> None
let ambient_active () = enabled () && Atomic.get ambient_flag
let set_ambient b = Atomic.set ambient_flag b

let ring_key =
  Domain.DLS.new_key (fun () ->
      let capacity =
        match !config with Some (_, c) -> c | None -> default_capacity
      in
      let rb =
        {
          rb_id = Atomic.fetch_and_add next_ring_id 1;
          slots = Array.init capacity (fun _ -> empty_slot ());
          next = 0;
          seen = 0;
          stamp = -1;
          hdr_valid = false;
          hdr_name = "";
          hdr_n = 0;
          hdr_m = 0;
          hdr_start = 0;
          hdr_run_id = "";
          hdr_parent = "";
          has_evicted = false;
          evicted_step = 0;
          evicted_pos = 0;
        }
      in
      Mutex.lock rings_mutex;
      rings := rb :: !rings;
      Mutex.unlock rings_mutex;
      rb)

let store rb (ev : Trace.event) =
  (match ev with
  | Trace.Run_start { name; n; m; start } ->
      (* New run: the ring only ever holds one run's suffix. *)
      rb.next <- 0;
      rb.seen <- 0;
      rb.has_evicted <- false;
      rb.hdr_valid <- true;
      rb.hdr_name <- name;
      rb.hdr_n <- n;
      rb.hdr_m <- m;
      rb.hdr_start <- start
  | Trace.Run_info { run_id; parent_run_id } ->
      rb.hdr_run_id <- run_id;
      rb.hdr_parent <- Option.value parent_run_id ~default:""
  | _ -> ());
  let cap = Array.length rb.slots in
  let sl = rb.slots.(rb.next) in
  if rb.seen >= cap then begin
    (* About to evict: remember the walk position this event pinned, so
       the dump can open with a synthetic resume at that point. *)
    match sl.tag with
    | 2 (* Step *) | 3 (* Phase *) ->
        rb.evicted_step <- sl.i1;
        rb.evicted_pos <- sl.i2;
        rb.has_evicted <- true
    | _ -> ()
  end;
  (match ev with
  | Trace.Run_start { name; n; m; start } ->
      sl.tag <- 1;
      sl.s <- name;
      sl.i1 <- n;
      sl.i2 <- m;
      sl.i3 <- start
  | Trace.Step { step; vertex; edge; blue } ->
      sl.tag <- 2;
      sl.i1 <- step;
      sl.i2 <- vertex;
      sl.i3 <- edge;
      sl.b <- blue
  | Trace.Phase { step; kind; vertex } ->
      sl.tag <- 3;
      sl.i1 <- step;
      sl.i2 <- vertex;
      sl.b <- (match kind with Trace.Blue -> true | Trace.Red -> false)
  | Trace.Milestone { step; kind; percent; count; total } ->
      sl.tag <- 4;
      sl.i1 <- step;
      sl.i2 <- percent;
      sl.i3 <- count;
      sl.i4 <- total;
      sl.b <- (match kind with Trace.Vertices -> true | Trace.Edges -> false)
  | Trace.Checkpoint { step } ->
      sl.tag <- 5;
      sl.i1 <- step
  | Trace.Resume { step } ->
      sl.tag <- 6;
      sl.i1 <- step
  | Trace.Run_end { steps; covered } ->
      sl.tag <- 7;
      sl.i1 <- steps;
      sl.b <- covered
  | Trace.Run_info { run_id; parent_run_id } ->
      sl.tag <- 8;
      sl.s <- run_id;
      sl.s2 <- Option.value parent_run_id ~default:"");
  rb.next <- (rb.next + 1) mod cap;
  rb.seen <- rb.seen + 1;
  rb.stamp <- Atomic.fetch_and_add clock 1

let record ev = if enabled () then store (Domain.DLS.get ring_key) ev

let wrap sink =
  if not (enabled ()) then sink
  else begin
    (* Per-event fidelity supersedes the ambient boundary events Cover
       would otherwise record (they would duplicate the stream). *)
    set_ambient false;
    Trace.of_fun
      ~close:(fun () -> Trace.close sink)
      (fun ev ->
        record ev;
        Trace.emit sink ev)
  end

(* --- dumping ------------------------------------------------------- *)

let event_of_slot sl : Trace.event option =
  match sl.tag with
  | 1 -> Some (Run_start { name = sl.s; n = sl.i1; m = sl.i2; start = sl.i3 })
  | 2 -> Some (Step { step = sl.i1; vertex = sl.i2; edge = sl.i3; blue = sl.b })
  | 3 ->
      Some
        (Phase
           {
             step = sl.i1;
             kind = (if sl.b then Trace.Blue else Trace.Red);
             vertex = sl.i2;
           })
  | 4 ->
      Some
        (Milestone
           {
             step = sl.i1;
             kind = (if sl.b then Trace.Vertices else Trace.Edges);
             percent = sl.i2;
             count = sl.i3;
             total = sl.i4;
           })
  | 5 -> Some (Checkpoint { step = sl.i1 })
  | 6 -> Some (Resume { step = sl.i1 })
  | 7 -> Some (Run_end { steps = sl.i1; covered = sl.b })
  | 8 ->
      Some
        (Run_info
           {
             run_id = sl.s;
             parent_run_id = (if sl.s2 = "" then None else Some sl.s2);
           })
  | _ -> None

let retained rb =
  let cap = Array.length rb.slots in
  let len = min rb.seen cap in
  let first = if rb.seen <= cap then 0 else rb.next in
  List.filter_map
    (fun i -> event_of_slot rb.slots.((first + i) mod cap))
    (List.init len Fun.id)

(* The synthetic prologue turning a wrapped ring into a verifiable
   resumed-tail stream. *)
let events_of_ring rb =
  let tail = retained rb in
  let hdr ~start =
    Trace.Run_start { name = rb.hdr_name; n = rb.hdr_n; m = rb.hdr_m; start }
  in
  (* The pinned provenance event, re-synthesized whenever the ring's own
     Run_info slot has been evicted. *)
  let info =
    if rb.hdr_run_id = "" then []
    else
      [
        Trace.Run_info
          {
            run_id = rb.hdr_run_id;
            parent_run_id =
              (if rb.hdr_parent = "" then None else Some rb.hdr_parent);
          };
      ]
  in
  match tail with
  | [] -> []
  | Trace.Run_start _ :: _ -> tail
  | Trace.Run_info _ :: _ when rb.hdr_valid ->
      (* Run_start was evicted but its companion Run_info survived. *)
      hdr ~start:rb.hdr_start :: tail
  | Trace.Resume _ :: _ when rb.hdr_valid ->
      (* The run's own resume survived; only its prologue was evicted. *)
      (hdr ~start:rb.hdr_start :: info) @ tail
  | _ when rb.hdr_valid && rb.has_evicted ->
      (hdr ~start:rb.evicted_pos :: info)
      @ (Trace.Resume { step = rb.evicted_step } :: tail)
  | _ when rb.hdr_valid -> (hdr ~start:rb.hdr_start :: info) @ tail
  | _ -> tail

let write_events path events =
  match events with
  | [] -> false
  | _ -> (
      try
        let oc = open_out path in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () ->
            List.iter
              (fun ev ->
                output_string oc (Trace.event_to_string ev);
                output_char oc '\n')
              events);
        true
      with Sys_error _ -> false)

let dump ~dir =
  let self = Domain.DLS.get ring_key in
  let others =
    Mutex.lock rings_mutex;
    let l = !rings in
    Mutex.unlock rings_mutex;
    List.filter (fun rb -> rb.rb_id <> self.rb_id && rb.seen > 0) l
  in
  (* Primary = the exiting domain's own ring (consistent: injected kills
     exit on the lane that ran the in-flight trial).  If this domain
     recorded nothing, fall back to the most recently active ring. *)
  let primary, rest =
    if self.seen > 0 then (Some self, others)
    else
      match
        List.sort (fun a b -> compare b.stamp a.stamp) others
      with
      | [] -> (None, [])
      | hd :: tl -> (Some hd, tl)
  in
  let written = ref [] in
  (match primary with
  | Some rb ->
      let path = Filename.concat dir "flight.jsonl" in
      if write_events path (events_of_ring rb) then written := path :: !written
  | None -> ());
  List.iter
    (fun rb ->
      let path =
        Filename.concat dir (Printf.sprintf "flight-%d.jsonl" rb.rb_id)
      in
      if write_events path (events_of_ring rb) then written := path :: !written)
    rest;
  List.rev !written

let dump_now () = match !config with None -> [] | Some (dir, _) -> dump ~dir

let disarm () = Atomic.set armed false

(* [mkdir -p]: the dump dir is configured at process startup, typically
   before whatever run directory it nests under exists. *)
let rec mkdirs dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdirs parent;
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

let enable ?(capacity = default_capacity) ~dir () =
  if capacity <= 0 then invalid_arg "Flight.enable: capacity <= 0";
  match !config with
  | Some _ -> Atomic.set armed true (* already configured: re-arm *)
  | None ->
      mkdirs dir;
      config := Some (dir, capacity);
      Atomic.set armed true;
      at_exit (fun () ->
          if Atomic.get armed then begin
            disarm ();
            ignore (dump ~dir : string list)
          end);
      (* SIGTERM routes through exit so at_exit dumps; 143 = 128 + 15. *)
      (try Sys.set_signal Sys.sigterm (Sys.Signal_handle (fun _ -> exit 143))
       with Invalid_argument _ | Sys_error _ -> ())

let enable_from_env () =
  match Sys.getenv_opt "EWALK_FLIGHT_DIR" with
  | None | Some "" -> Ok ()
  | Some dir -> (
      let capacity =
        match Sys.getenv_opt "EWALK_FLIGHT_CAPACITY" with
        | None | Some "" -> Ok default_capacity
        | Some s -> (
            (* A malformed capacity must be an error, not a silent fall
               back to the default: the operator asked for a specific
               retention and would otherwise debug a crash with the
               wrong window. *)
            match int_of_string_opt s with
            | Some c when c > 0 -> Ok c
            | Some _ ->
                Error
                  (Printf.sprintf
                     "EWALK_FLIGHT_CAPACITY must be a positive integer, got %S"
                     s)
            | None ->
                Error
                  (Printf.sprintf
                     "EWALK_FLIGHT_CAPACITY is not an integer: %S" s))
      in
      match capacity with
      | Error _ as e -> e
      | Ok capacity ->
          enable ~capacity ~dir ();
          Ok ())
