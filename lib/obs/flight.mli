(** Crash flight recorder: per-domain rings of recent {!Trace.event}s,
    dumped as JSONL when the process dies unexpectedly.

    Recording is allocation-free after ring creation: events are stored
    decomposed into preallocated mutable slots, one fixed-size ring per
    domain ([Domain.DLS]).  The ring resets on every [Run_start], so a
    dump is always a suffix of a single run's stream; when the ring has
    wrapped, the dump opens with a synthetic [Run_start] + [Resume]
    prologue (from a pinned header and the last evicted position) in
    exactly the resumed-tail shape [Ewalk_check.Replay] verifies relaxed
    — any dump is acceptable to [eproc verify-trace --flight].

    Two recording modes, used by [eproc]:
    - {e ambient} (default while enabled): [Cover.run_until] records just
      the run boundary events — one enabled-check per run, zero per-step
      cost, so the always-on metrics fast path stays fast;
    - {e sink wrap} ({!wrap}): every event an existing sink sees is also
      recorded (full per-step fidelity — [eproc trace]); wrapping turns
      ambient recording off so the stream is not duplicated.

    Dumps trigger via [at_exit] whenever the recorder is still {e armed}:
    injected faults ([Ewalk_resume.Faults] exits 70 at checkpoint
    boundaries), uncaught exceptions, and SIGTERM (a handler installed by
    {!enable} routes it through [exit 143]).  A run that completes
    cleanly calls {!disarm} and leaves nothing behind.  The exiting
    domain's ring is written first as [flight.jsonl] (exact — fault kills
    exit on the lane that ran the in-flight trial); other domains' rings
    follow best-effort as [flight-<id>.jsonl]. *)

val enable : ?capacity:int -> dir:string -> unit -> unit
(** Configure ring capacity (default 512 events), create [dir] if
    missing, arm the [at_exit] dump, and install the SIGTERM handler.
    Calling again re-arms but keeps the first configuration.
    @raise Invalid_argument if [capacity <= 0]. *)

val enable_from_env : unit -> (unit, string) result
(** {!enable} from [EWALK_FLIGHT_DIR] (and optional
    [EWALK_FLIGHT_CAPACITY]); [Ok ()] without arming when unset.  An
    [EWALK_FLIGHT_CAPACITY] that is non-numeric or [<= 0] is an [Error]
    naming the variable and offending value — never a silent fall back
    to the default.  [eproc] calls this at startup, next to the
    fault-spec installer, and exits 2 on [Error]. *)

val enabled : unit -> bool

val disarm : unit -> unit
(** Mark the run as cleanly completed: the exit hook will not dump. *)

val record : Trace.event -> unit
(** Record into the calling domain's ring (no-op unless enabled). *)

val wrap : Trace.sink -> Trace.sink
(** Record every event flowing through the sink (and disable ambient
    recording).  Identity when the recorder is not enabled. *)

val ambient_active : unit -> bool
(** Whether run-boundary recording from [Cover] should happen: enabled
    and not superseded by a {!wrap}ped sink. *)

val set_ambient : bool -> unit

val dump_now : unit -> string list
(** Write dumps immediately (without disarming); the paths written,
    primary first.  Test hook — crash paths dump via [at_exit]. *)
