type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr x =
  if Float.is_nan x then "null" (* JSON has no NaN *)
  else if Float.is_integer x && Float.abs x < 1e15 then
    Printf.sprintf "%.1f" x
  else
    (* Shortest representation that round-trips. *)
    let s = Printf.sprintf "%.12g" x in
    if float_of_string s = x then s else Printf.sprintf "%.17g" x

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float x -> Buffer.add_string buf (float_repr x)
  | String s -> escape buf s
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          to_buffer buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape buf k;
          Buffer.add_char buf ':';
          to_buffer buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  to_buffer buf v;
  Buffer.contents buf

let to_channel oc v = output_string oc (to_string v)

let float_to_string = float_repr

(* -- parser ---------------------------------------------------------------- *)

exception Parse_error of int * string

let parse_fail pos msg = raise (Parse_error (pos, msg))

(* Recursive descent over the string with a cursor.  No token stream: each
   value parser leaves the cursor just past what it consumed. *)
let parse (s : string) : t =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos
    else parse_fail !pos (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else parse_fail !pos (Printf.sprintf "expected %s" word)
  in
  (* Encode one Unicode scalar value as UTF-8 into [buf]. *)
  let add_utf8 buf cp =
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let hex4 () =
    if !pos + 4 > n then parse_fail !pos "truncated \\u escape";
    let v = ref 0 in
    for _ = 1 to 4 do
      let d =
        match s.[!pos] with
        | '0' .. '9' as c -> Char.code c - Char.code '0'
        | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
        | _ -> parse_fail !pos "bad hex digit in \\u escape"
      in
      v := (!v * 16) + d;
      incr pos
    done;
    !v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then parse_fail !pos "unterminated string";
      match s.[!pos] with
      | '"' -> incr pos
      | '\\' ->
          incr pos;
          if !pos >= n then parse_fail !pos "truncated escape";
          (match s.[!pos] with
          | '"' -> Buffer.add_char buf '"'; incr pos
          | '\\' -> Buffer.add_char buf '\\'; incr pos
          | '/' -> Buffer.add_char buf '/'; incr pos
          | 'b' -> Buffer.add_char buf '\b'; incr pos
          | 'f' -> Buffer.add_char buf '\012'; incr pos
          | 'n' -> Buffer.add_char buf '\n'; incr pos
          | 'r' -> Buffer.add_char buf '\r'; incr pos
          | 't' -> Buffer.add_char buf '\t'; incr pos
          | 'u' ->
              incr pos;
              let cp = hex4 () in
              let cp =
                (* High surrogate: consume the paired low surrogate. *)
                if cp >= 0xD800 && cp <= 0xDBFF && !pos + 1 < n
                   && s.[!pos] = '\\'
                   && s.[!pos + 1] = 'u'
                then begin
                  pos := !pos + 2;
                  let lo = hex4 () in
                  if lo >= 0xDC00 && lo <= 0xDFFF then
                    0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00)
                  else parse_fail !pos "unpaired surrogate"
                end
                else cp
              in
              add_utf8 buf cp
          | c -> parse_fail !pos (Printf.sprintf "bad escape \\%c" c));
          go ()
      | c -> Buffer.add_char buf c; incr pos; go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then incr pos;
    while
      !pos < n
      && (match s.[!pos] with
         | '0' .. '9' | '.' | 'e' | 'E' | '+' | '-' -> true
         | _ -> false)
    do
      incr pos
    done;
    let text = String.sub s start (!pos - start) in
    let integral =
      not (String.exists (function '.' | 'e' | 'E' -> true | _ -> false) text)
    in
    if integral then
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt text with
          | Some x -> Float x
          | None -> parse_fail start "malformed number")
    else
      match float_of_string_opt text with
      | Some x -> Float x
      | None -> parse_fail start "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> parse_fail !pos "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> String (parse_string ())
    | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then begin
          incr pos;
          List []
        end
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          while peek () = Some ',' do
            incr pos;
            items := parse_value () :: !items;
            skip_ws ()
          done;
          expect ']';
          List (List.rev !items)
        end
    | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then begin
          incr pos;
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let fields = ref [ field () ] in
          skip_ws ();
          while peek () = Some ',' do
            incr pos;
            fields := field () :: !fields;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !fields)
        end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> parse_fail !pos (Printf.sprintf "unexpected %C" c)
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then parse_fail !pos "trailing garbage";
  v

let of_string s =
  match parse s with
  | v -> Ok v
  | exception Parse_error (pos, msg) ->
      Error (Printf.sprintf "JSON parse error at offset %d: %s" pos msg)

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let to_float_opt = function
  | Float x -> Some x
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_int_opt = function Int i -> Some i | _ -> None

let to_string_opt = function String s -> Some s | _ -> None
