(** A minimal JSON value type, serialiser, and parser.

    Just enough JSON for the observability layer — metrics snapshots, trace
    events, bench baselines and ledger records — without pulling a JSON
    dependency into the build.  Serialisation is deterministic: object
    fields are emitted in the order given, floats in shortest round-trip
    form, and all strings escaped per RFC 8259.  The parser accepts
    anything this serialiser emits (and standard JSON generally); it exists
    so [eproc bench-diff] can read the bench ledger back. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering. *)

val to_buffer : Buffer.t -> t -> unit

val to_channel : out_channel -> t -> unit
(** [to_string] written to the channel (no trailing newline). *)

val float_to_string : float -> string
(** The serialiser's float rendering: shortest representation that
    round-trips ([nan] becomes ["null"]).  Shared with the OpenMetrics
    exporter so both emit identical numbers. *)

val of_string : string -> (t, string) result
(** Parse one JSON document (surrounding whitespace allowed).  Numbers
    without fraction or exponent that fit an OCaml [int] parse as [Int],
    everything else as [Float]; [\uXXXX] escapes are decoded to UTF-8
    (surrogate pairs included).  Errors carry a character offset. *)

val member : string -> t -> t option
(** Field lookup in an [Obj] (first match); [None] on other constructors. *)

val to_float_opt : t -> float option
(** [Int] and [Float] as a float; [None] otherwise. *)

val to_int_opt : t -> int option
val to_string_opt : t -> string option
