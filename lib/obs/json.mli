(** A minimal JSON value type and serialiser.

    Just enough JSON for the observability layer — metrics snapshots, trace
    events, bench baselines — without pulling a parser dependency into the
    build.  Serialisation is deterministic: object fields are emitted in the
    order given, floats in shortest round-trip form, and all strings
    escaped per RFC 8259. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering. *)

val to_buffer : Buffer.t -> t -> unit

val to_channel : out_channel -> t -> unit
(** [to_string] written to the channel (no trailing newline). *)
