let schema_version = "ewalk-bench-ledger/1"

type kernel = {
  k_median_ns : float;
  k_mad_ns : float;
  k_min_ns : float;
  k_samples : int;
}

type record = {
  schema : string;
  timestamp : float;
  git_rev : string;
  scale : string;
  jobs : int;
  run_id : string; (* "" when the writing run predates provenance *)
  kernels : (string * kernel) list;
}

let git_rev () =
  try
    let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
    let line = try input_line ic with End_of_file -> "" in
    match Unix.close_process_in ic with
    | Unix.WEXITED 0 when line <> "" -> String.trim line
    | _ -> "unknown"
  with _ -> "unknown"

let make ?timestamp ?git_rev:rev ?run_id ~scale ~jobs ~kernels () =
  {
    schema = schema_version;
    timestamp = (match timestamp with Some t -> t | None -> Timer.now ());
    git_rev = (match rev with Some r -> r | None -> git_rev ());
    scale;
    jobs;
    run_id =
      (match run_id with
      | Some id -> id
      | None -> Option.value (Runlog.run_id ()) ~default:"");
    kernels = List.sort (fun (a, _) (b, _) -> String.compare a b) kernels;
  }

let kernel_to_json k =
  Json.Obj
    [
      ("median_ns", Json.Float k.k_median_ns);
      ("mad_ns", Json.Float k.k_mad_ns);
      ("min_ns", Json.Float k.k_min_ns);
      ("samples", Json.Int k.k_samples);
    ]

let to_json r =
  Json.Obj
    ([
       ("schema", Json.String r.schema);
       ("timestamp", Json.Float r.timestamp);
       ("git_rev", Json.String r.git_rev);
       ("scale", Json.String r.scale);
       ("jobs", Json.Int r.jobs);
     ]
    @ (if r.run_id = "" then [] else [ ("run_id", Json.String r.run_id) ])
    @ [
        ( "kernels",
          Json.Obj (List.map (fun (n, k) -> (n, kernel_to_json k)) r.kernels)
        );
      ])

let kernel_of_json j =
  let field name =
    match Option.bind (Json.member name j) Json.to_float_opt with
    | Some x -> Ok x
    | None -> Error (Printf.sprintf "kernel entry missing %S" name)
  in
  match (field "median_ns", field "mad_ns", field "min_ns") with
  | Ok m, Ok d, Ok mn ->
      let samples =
        match Option.bind (Json.member "samples" j) Json.to_int_opt with
        | Some s -> s
        | None -> 0
      in
      Ok { k_median_ns = m; k_mad_ns = d; k_min_ns = mn; k_samples = samples }
  | Error e, _, _ | _, Error e, _ | _, _, Error e -> Error e

let of_json j =
  match Json.member "kernels" j with
  | Some (Json.Obj entries) ->
      let rec kernels acc = function
        | [] -> Ok (List.rev acc)
        | (name, kj) :: rest -> (
            match kernel_of_json kj with
            | Ok k -> kernels ((name, k) :: acc) rest
            | Error e -> Error (Printf.sprintf "kernel %S: %s" name e))
      in
      Result.map
        (fun ks ->
          let str name default =
            match Option.bind (Json.member name j) Json.to_string_opt with
            | Some s -> s
            | None -> default
          in
          {
            schema = str "schema" "unknown";
            timestamp =
              (match
                 Option.bind (Json.member "timestamp" j) Json.to_float_opt
               with
              | Some t -> t
              | None -> 0.0);
            git_rev = str "git_rev" "unknown";
            scale = str "scale" "unknown";
            run_id = str "run_id" "";
            jobs =
              (match Option.bind (Json.member "jobs" j) Json.to_int_opt with
              | Some n -> n
              | None -> 0);
            kernels =
              List.sort (fun (a, _) (b, _) -> String.compare a b) ks;
          })
        (kernels [] entries)
  | Some _ -> Error "\"kernels\" is not an object"
  | None -> Error "record has no \"kernels\" field"

let append ~path r =
  (* One [output_string] of the full line, flushed before close: an append
     that dies mid-way leaves at most one unterminated trailing line, which
     [read_history] skips, never an interleaved or silently-buffered one. *)
  let line = Json.to_string (to_json r) ^ "\n" in
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc line;
      flush oc)

let read_file path =
  try
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let len = in_channel_length ic in
        Ok (really_input_string ic len))
  with Sys_error e -> Error e

let read_history ~path =
  match read_file path with
  | Error e -> Error e
  | Ok text ->
      (* A final line with no terminating newline is a truncated append (a
         crash mid-write): drop it if it no longer parses, instead of
         failing the whole history.  A terminated line that fails to parse
         is real corruption and still errors. *)
      let terminated =
        text = "" || text.[String.length text - 1] = '\n'
      in
      let lines =
        String.split_on_char '\n' text
        |> List.filter (fun l -> String.trim l <> "")
      in
      let rec go acc i = function
        | [] -> Ok (List.rev acc)
        | [ last ] when not terminated -> (
            match Result.bind (Json.of_string last) of_json with
            | Ok r -> Ok (List.rev (r :: acc))
            | Error _ -> Ok (List.rev acc))
        | line :: rest -> (
            match Result.bind (Json.of_string line) of_json with
            | Ok r -> go (r :: acc) (i + 1) rest
            | Error e ->
                Error (Printf.sprintf "%s line %d: %s" path (i + 1) e))
      in
      go [] 1 lines

let load_record path =
  if Filename.check_suffix path ".jsonl" then
    match read_history ~path with
    | Error e -> Error e
    | Ok [] -> Error (Printf.sprintf "%s: empty history" path)
    | Ok records -> Ok (List.nth records (List.length records - 1))
  else
    match read_file path with
    | Error e -> Error e
    | Ok text -> (
        match Result.bind (Json.of_string (String.trim text)) of_json with
        | Ok r -> Ok r
        | Error e -> Error (Printf.sprintf "%s: %s" path e))

type verdict = {
  v_kernel : string;
  v_base_ns : float;
  v_cand_ns : float;
  v_delta_percent : float;
  v_tolerance_percent : float;
  v_regressed : bool;
}

(* Most kernels measure nanoseconds, where up is bad; throughput kernels
   (named "...per_second...") measure rates, where down is bad. *)
let higher_is_better name =
  let sub = "per_second" in
  let n = String.length name and k = String.length sub in
  let rec at i = i + k <= n && (String.sub name i k = sub || at (i + 1)) in
  at 0

let diff ?(tolerance_mads = 6.0) ?(min_rel = 0.25) ~baseline candidate =
  List.filter_map
    (fun (name, base) ->
      match List.assoc_opt name candidate.kernels with
      | None -> None
      | Some cand ->
          let tolerance_ns =
            Float.max
              (tolerance_mads *. base.k_mad_ns)
              (min_rel *. base.k_median_ns)
          in
          let delta_ns = cand.k_median_ns -. base.k_median_ns in
          Some
            {
              v_kernel = name;
              v_base_ns = base.k_median_ns;
              v_cand_ns = cand.k_median_ns;
              v_delta_percent =
                (if base.k_median_ns > 0.0 then
                   100.0 *. delta_ns /. base.k_median_ns
                 else 0.0);
              v_tolerance_percent =
                (if base.k_median_ns > 0.0 then
                   100.0 *. tolerance_ns /. base.k_median_ns
                 else 0.0);
              v_regressed =
                (if higher_is_better name then delta_ns < -.tolerance_ns
                 else delta_ns > tolerance_ns);
            })
    baseline.kernels

let any_regression = List.exists (fun v -> v.v_regressed)
