(** The bench ledger: an append-only perf history with a regression gate.

    Every bench run appends one schema-versioned JSON line to
    [BENCH_history.jsonl] — git revision, scale, job count, and the
    median/MAD/min/sample-count of every kernel — so the repo's perf
    trajectory is a queryable dataset rather than a single overwritten
    snapshot.  {!diff} compares two records kernel by kernel with a
    MAD-scaled tolerance; [eproc bench-diff] and [make bench-check] wrap it
    into a non-zero-exit CI gate.

    Record format (one line of [BENCH_history.jsonl], schema
    {!schema_version}):
    {v
    {"schema":"ewalk-bench-ledger/1","timestamp":<epoch s>,
     "git_rev":"<short rev>","scale":"tiny","jobs":1,
     "kernels":{"<name>":{"median_ns":..,"mad_ns":..,"min_ns":..,
                          "samples":..},..}}
    v}
    {!of_json} also accepts a full [BENCH_core.json] (schema
    [ewalk-bench/2]) — it carries the same [kernels] object — so the gate
    can compare the committed baseline file directly. *)

val schema_version : string
(** ["ewalk-bench-ledger/1"]. *)

type kernel = {
  k_median_ns : float;
  k_mad_ns : float;
  k_min_ns : float;
  k_samples : int;
}

type record = {
  schema : string;
  timestamp : float;  (** epoch seconds (0 when absent) *)
  git_rev : string;  (** ["unknown"] when absent *)
  scale : string;
  jobs : int;
  run_id : string;
      (** the {!Runlog} id of the run that appended the record; [""] for
          records written before provenance existed (omitted from the
          JSON line when empty) *)
  kernels : (string * kernel) list;  (** sorted by kernel name *)
}

val make :
  ?timestamp:float ->
  ?git_rev:string ->
  ?run_id:string ->
  scale:string ->
  jobs:int ->
  kernels:(string * kernel) list ->
  unit ->
  record
(** Defaults: [timestamp] = {!Timer.now}[ ()], [git_rev] = {!git_rev}[ ()],
    [run_id] = the ambient {!Runlog.run_id} (or [""]).  Kernels are sorted
    by name. *)

val git_rev : unit -> string
(** [git rev-parse --short HEAD], or ["unknown"] outside a git checkout. *)

val to_json : record -> Json.t

val of_json : Json.t -> (record, string) result
(** Accepts both ledger records and [BENCH_core.json] snapshots (any
    object with a [kernels] table of [{median_ns,mad_ns,min_ns,samples}]
    entries). *)

val append : path:string -> record -> unit
(** Append one record as a single JSON line (file created when missing).
    The line is written with a single [output_string] and flushed, so a
    crash mid-append leaves at most one unterminated trailing line — which
    {!read_history} skips — never a torn or interleaved record. *)

val read_history : path:string -> (record list, string) result
(** Every parseable line, in file order; blank lines skipped.  A trailing
    line without its newline that fails to parse is treated as a truncated
    append and silently dropped.  [Error] on an unreadable file or an
    unparseable {e terminated} line. *)

val load_record : string -> (record, string) result
(** Load a comparison endpoint: a [.jsonl] path yields the {e last} record
    of the history, anything else is parsed as a single-record JSON file. *)

val higher_is_better : string -> bool
(** Kernels whose name contains ["per_second"] carry steps/second rates
    rather than nanoseconds: up is good, and {!diff} inverts the
    regression direction for them.  Exposed so displays can pick the
    right unit. *)

type verdict = {
  v_kernel : string;
  v_base_ns : float;
  v_cand_ns : float;
  v_delta_percent : float;  (** (cand - base) / base * 100 *)
  v_tolerance_percent : float;  (** allowed upward delta *)
  v_regressed : bool;
}

val diff :
  ?tolerance_mads:float -> ?min_rel:float -> baseline:record -> record ->
  verdict list
(** Per-kernel comparison over the intersection of kernel names (sorted).
    A kernel regresses iff its candidate median exceeds
    [base.median + max (tolerance_mads * base.mad) (min_rel * base.median)]
    — MAD-scaled so noisy kernels get proportionate slack, with a relative
    floor for kernels whose MAD is ~0.  Kernels whose name contains
    ["per_second"] measure throughput, not latency, so the test inverts:
    they regress iff the candidate falls {e below} the baseline by more
    than the tolerance.  Defaults: [tolerance_mads = 6.0],
    [min_rel = 0.25]. *)

val any_regression : verdict list -> bool
