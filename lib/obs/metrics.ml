(* Thread-safety: a registry may be updated from several domains at once
   (trial sweeps run inside Ewalk_par.Pool).  Counters and gauges are
   lock-free Atomics; histograms update several fields per observation, so
   each carries its own mutex; the instrument table itself is guarded by the
   registry mutex.  [snapshot] locks only the registry and each histogram in
   turn, so it can run concurrently with updates and still serialise a
   well-formed (per-instrument-consistent) document. *)

(* A counter IS its atomic cell (no wrapper record): the hot-loop
   increment is one load plus one lock-prefixed add. *)
type counter = int Atomic.t

(* [g_seq] orders writes under parallel sweeps: [set_at ~seq] only
   overwrites a value stamped with a lower-or-equal sequence, so the final
   reading is the highest-stamped write (last-by-trial-index) no matter
   which domain ran which trial.  Plain [set] stamps [min_int] — "no
   ordering claim" — and always wins over nothing. *)
type gstate = { g_value : float; g_set : bool; g_seq : int }

type gauge = { g : gstate Atomic.t }

type histogram = {
  h_mutex : Mutex.t;
  bounds : float array; (* ascending upper bounds, exclusive of +inf *)
  bucket_counts : int array; (* length = Array.length bounds + 1 *)
  mutable h_count : int;
  mutable sum : float;
  mutable min : float;
  mutable max : float;
}

type instrument = Counter of counter | Gauge of gauge | Histogram of histogram

type t = {
  t_mutex : Mutex.t;
  instruments : (string, instrument) Hashtbl.t;
}

let create () = { t_mutex = Mutex.create (); instruments = Hashtbl.create 16 }

(* The registry is name-keyed (no label dimensions), so labelled series
   are name-encoded: [with_label "blue_steps" ~key:"walker" ~value:"3"] is
   ["blue_steps_walker_3"].  The value is sanitised to the OpenMetrics
   name alphabet so the exporter never has to rewrite it. *)
let with_label name ~key ~value =
  let buf =
    Buffer.create (String.length name + String.length key + String.length value + 2)
  in
  Buffer.add_string buf name;
  Buffer.add_char buf '_';
  Buffer.add_string buf key;
  Buffer.add_char buf '_';
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' ->
          Buffer.add_char buf c
      | _ -> Buffer.add_char buf '_')
    value;
  Buffer.contents buf

let clash name =
  invalid_arg
    (Printf.sprintf "Metrics: %S already registered with a different kind" name)

(* Registration is find-or-create under the registry mutex, so two domains
   registering the same name concurrently get the same instrument.  [make]
   must not raise (argument validation happens before the lock). *)
let register t name ~make ~cast =
  Mutex.lock t.t_mutex;
  let instr =
    match Hashtbl.find_opt t.instruments name with
    | Some instr -> instr
    | None ->
        let fresh = make () in
        Hashtbl.add t.instruments name fresh;
        fresh
  in
  Mutex.unlock t.t_mutex;
  match cast instr with Some x -> x | None -> clash name

let counter t name =
  register t name
    ~make:(fun () -> Counter (Atomic.make 0))
    ~cast:(function Counter c -> Some c | _ -> None)

let gauge t name =
  register t name
    ~make:(fun () ->
      Gauge { g = Atomic.make { g_value = 0.0; g_set = false; g_seq = min_int } })
    ~cast:(function Gauge g -> Some g | _ -> None)

let default_buckets = Array.init 21 (fun i -> Float.of_int (1 lsl i))

let validate_buckets buckets =
  if Array.length buckets = 0 then invalid_arg "Metrics.histogram: empty buckets";
  Array.iteri
    (fun i b ->
      if i > 0 && not (b > buckets.(i - 1)) then
        invalid_arg "Metrics.histogram: buckets not increasing")
    buckets

(* Validation runs only when the name is not yet registered: retrieving an
   existing histogram ignores [buckets] entirely (it was never used on the
   retrieval path anyway).  A racing first registration is harmless — both
   domains validate, [register]'s find-or-create keeps exactly one. *)
let histogram ?(buckets = default_buckets) t name =
  let existing =
    Mutex.lock t.t_mutex;
    let v = Hashtbl.find_opt t.instruments name in
    Mutex.unlock t.t_mutex;
    v
  in
  match existing with
  | Some (Histogram h) -> h
  | Some _ -> clash name
  | None ->
      validate_buckets buckets;
      register t name
        ~make:(fun () ->
          Histogram
            {
              h_mutex = Mutex.create ();
              bounds = Array.copy buckets;
              bucket_counts = Array.make (Array.length buckets + 1) 0;
              h_count = 0;
              sum = 0.0;
              min = Float.infinity;
              max = Float.neg_infinity;
            })
        ~cast:(function Histogram h -> Some h | _ -> None)

let incr c = ignore (Atomic.fetch_and_add c 1)
let add c k = ignore (Atomic.fetch_and_add c k)
let value c = Atomic.get c

let rec set g x =
  (* Stamped lowest: a plain write replaces another plain write (or an
     unset gauge) but never a value a [set_at] writer pinned by sequence. *)
  let cur = Atomic.get g.g in
  if (not cur.g_set) || cur.g_seq = min_int then
    if
      not
        (Atomic.compare_and_set g.g cur
           { g_value = x; g_set = true; g_seq = min_int })
    then set g x

let rec set_max g x =
  let cur = Atomic.get g.g in
  if (not cur.g_set) || x > cur.g_value then
    if
      not
        (Atomic.compare_and_set g.g cur
           { g_value = x; g_set = true; g_seq = min_int })
    then set_max g x

let rec set_at g ~seq x =
  let cur = Atomic.get g.g in
  if (not cur.g_set) || seq >= cur.g_seq then
    if
      not
        (Atomic.compare_and_set g.g cur
           { g_value = x; g_set = true; g_seq = seq })
    then set_at g ~seq x

let gauge_value g = (Atomic.get g.g).g_value

let observe h x =
  let nb = Array.length h.bounds in
  let i = ref 0 in
  while !i < nb && x > h.bounds.(!i) do
    Stdlib.incr i
  done;
  Mutex.lock h.h_mutex;
  h.bucket_counts.(!i) <- h.bucket_counts.(!i) + 1;
  h.h_count <- h.h_count + 1;
  h.sum <- h.sum +. x;
  if x < h.min then h.min <- x;
  if x > h.max then h.max <- x;
  Mutex.unlock h.h_mutex

let hist_bounds h = Array.copy h.bounds

(* Batched merge from a shard cell (Shard.flush): one lock round-trip for a
   whole cell's worth of observations instead of one per observation. *)
let hist_merge h ~bucket_counts ~count ~sum ~min ~max =
  if Array.length bucket_counts <> Array.length h.bucket_counts then
    invalid_arg "Metrics.hist_merge: bucket count mismatch";
  if count < 0 then invalid_arg "Metrics.hist_merge: negative count";
  if count > 0 then begin
    Mutex.lock h.h_mutex;
    Array.iteri
      (fun i k -> h.bucket_counts.(i) <- h.bucket_counts.(i) + k)
      bucket_counts;
    h.h_count <- h.h_count + count;
    h.sum <- h.sum +. sum;
    if min < h.min then h.min <- min;
    if max > h.max then h.max <- max;
    Mutex.unlock h.h_mutex
  end

let hist_count h =
  Mutex.lock h.h_mutex;
  let n = h.h_count in
  Mutex.unlock h.h_mutex;
  n

let hist_sum h =
  Mutex.lock h.h_mutex;
  let s = h.sum in
  Mutex.unlock h.h_mutex;
  s

let hist_json h =
  Mutex.lock h.h_mutex;
  let bucket_counts = Array.copy h.bucket_counts in
  let h_count = h.h_count and sum = h.sum and min = h.min and max = h.max in
  Mutex.unlock h.h_mutex;
  let buckets =
    List.init
      (Array.length bucket_counts)
      (fun i ->
        let le =
          if i < Array.length h.bounds then Json.Float h.bounds.(i)
          else Json.String "+inf"
        in
        Json.Obj [ ("le", le); ("count", Json.Int bucket_counts.(i)) ])
  in
  Json.Obj
    [
      ("count", Json.Int h_count);
      ("sum", Json.Float sum);
      ("min", if h_count = 0 then Json.Null else Json.Float min);
      ("max", if h_count = 0 then Json.Null else Json.Float max);
      ("buckets", Json.List buckets);
    ]

type view =
  | Counter_view of int
  | Gauge_view of float
  | Histogram_view of {
      hv_count : int;
      hv_sum : float;
      hv_buckets : (float * int) array;
      hv_inf : int;
    }

(* Called before every whole-registry read so layered fast paths
   (Ewalk_obs.Shard) can publish pending per-domain values first, keeping
   [instruments] / [snapshot] exact without the readers knowing about
   shards.  One global hook: shards are process-global too, and the hook
   flushes every shard regardless of registry. *)
let pre_read_hook : (unit -> unit) Atomic.t = Atomic.make (fun () -> ())
let set_pre_read_hook f = Atomic.set pre_read_hook f

let instruments t =
  (Atomic.get pre_read_hook) ();
  Mutex.lock t.t_mutex;
  let entries =
    Hashtbl.fold (fun name instr acc -> (name, instr) :: acc) t.instruments []
  in
  Mutex.unlock t.t_mutex;
  entries
  |> List.map (fun (name, instr) ->
         let view =
           match instr with
           | Counter c -> Counter_view (Atomic.get c)
           | Gauge g -> Gauge_view (Atomic.get g.g).g_value
           | Histogram h ->
               Mutex.lock h.h_mutex;
               let counts = Array.copy h.bucket_counts in
               let hv_count = h.h_count and hv_sum = h.sum in
               Mutex.unlock h.h_mutex;
               let nb = Array.length h.bounds in
               Histogram_view
                 {
                   hv_count;
                   hv_sum;
                   hv_buckets =
                     Array.init nb (fun i -> (h.bounds.(i), counts.(i)));
                   hv_inf = counts.(nb);
                 }
         in
         (name, view))
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let snapshot t =
  (Atomic.get pre_read_hook) ();
  Mutex.lock t.t_mutex;
  let entries =
    Hashtbl.fold (fun name instr acc -> (name, instr) :: acc) t.instruments []
  in
  Mutex.unlock t.t_mutex;
  let sorted kind =
    List.filter_map
      (fun (name, instr) ->
        match kind instr with Some j -> Some (name, j) | None -> None)
      entries
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  Json.Obj
    [
      ( "counters",
        Json.Obj
          (sorted (function
            | Counter c -> Some (Json.Int (Atomic.get c))
            | _ -> None)) );
      ( "gauges",
        Json.Obj
          (sorted (function
            | Gauge g -> Some (Json.Float (Atomic.get g.g).g_value)
            | _ -> None)) );
      ( "histograms",
        Json.Obj
          (sorted (function Histogram h -> Some (hist_json h) | _ -> None)) );
    ]

let to_json_string t = Json.to_string (snapshot t)

let write_file t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (to_json_string t);
      output_char oc '\n')
