type counter = { mutable count : int }

type gauge = { mutable value : float; mutable g_set : bool }

type histogram = {
  bounds : float array; (* ascending upper bounds, exclusive of +inf *)
  bucket_counts : int array; (* length = Array.length bounds + 1 *)
  mutable h_count : int;
  mutable sum : float;
  mutable min : float;
  mutable max : float;
}

type instrument = Counter of counter | Gauge of gauge | Histogram of histogram

type t = { instruments : (string, instrument) Hashtbl.t }

let create () = { instruments = Hashtbl.create 16 }

let clash name =
  invalid_arg
    (Printf.sprintf "Metrics: %S already registered with a different kind" name)

let counter t name =
  match Hashtbl.find_opt t.instruments name with
  | Some (Counter c) -> c
  | Some _ -> clash name
  | None ->
      let c = { count = 0 } in
      Hashtbl.add t.instruments name (Counter c);
      c

let gauge t name =
  match Hashtbl.find_opt t.instruments name with
  | Some (Gauge g) -> g
  | Some _ -> clash name
  | None ->
      let g = { value = 0.0; g_set = false } in
      Hashtbl.add t.instruments name (Gauge g);
      g

let default_buckets = Array.init 21 (fun i -> Float.of_int (1 lsl i))

let histogram ?(buckets = default_buckets) t name =
  match Hashtbl.find_opt t.instruments name with
  | Some (Histogram h) -> h
  | Some _ -> clash name
  | None ->
      if Array.length buckets = 0 then
        invalid_arg "Metrics.histogram: empty buckets";
      Array.iteri
        (fun i b ->
          if i > 0 && not (b > buckets.(i - 1)) then
            invalid_arg "Metrics.histogram: buckets not increasing")
        buckets;
      let h =
        {
          bounds = Array.copy buckets;
          bucket_counts = Array.make (Array.length buckets + 1) 0;
          h_count = 0;
          sum = 0.0;
          min = Float.infinity;
          max = Float.neg_infinity;
        }
      in
      Hashtbl.add t.instruments name (Histogram h);
      h

let incr c = c.count <- c.count + 1
let add c k = c.count <- c.count + k
let value c = c.count

let set g x =
  g.value <- x;
  g.g_set <- true

let set_max g x = if (not g.g_set) || x > g.value then set g x
let gauge_value g = g.value

let observe h x =
  let nb = Array.length h.bounds in
  let i = ref 0 in
  while !i < nb && x > h.bounds.(!i) do
    Stdlib.incr i
  done;
  h.bucket_counts.(!i) <- h.bucket_counts.(!i) + 1;
  h.h_count <- h.h_count + 1;
  h.sum <- h.sum +. x;
  if x < h.min then h.min <- x;
  if x > h.max then h.max <- x

let hist_count h = h.h_count
let hist_sum h = h.sum

let hist_json h =
  let buckets =
    List.init
      (Array.length h.bucket_counts)
      (fun i ->
        let le =
          if i < Array.length h.bounds then Json.Float h.bounds.(i)
          else Json.String "+inf"
        in
        Json.Obj [ ("le", le); ("count", Json.Int h.bucket_counts.(i)) ])
  in
  Json.Obj
    [
      ("count", Json.Int h.h_count);
      ("sum", Json.Float h.sum);
      ("min", if h.h_count = 0 then Json.Null else Json.Float h.min);
      ("max", if h.h_count = 0 then Json.Null else Json.Float h.max);
      ("buckets", Json.List buckets);
    ]

let snapshot t =
  let sorted kind =
    Hashtbl.fold
      (fun name instr acc ->
        match kind instr with Some j -> (name, j) :: acc | None -> acc)
      t.instruments []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  Json.Obj
    [
      ( "counters",
        Json.Obj
          (sorted (function Counter c -> Some (Json.Int c.count) | _ -> None))
      );
      ( "gauges",
        Json.Obj
          (sorted (function
            | Gauge g -> Some (Json.Float g.value)
            | _ -> None)) );
      ( "histograms",
        Json.Obj
          (sorted (function Histogram h -> Some (hist_json h) | _ -> None)) );
    ]

let to_json_string t = Json.to_string (snapshot t)

let write_file t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (to_json_string t);
      output_char oc '\n')
