(** A registry of named counters, gauges, and histograms.

    One registry per run (or per trial batch — counters accumulate across
    attached processes, so a multi-trial sweep sums naturally).  All
    instruments are cheap enough to update on a per-step hot path: a counter
    bump is one mutable-field increment, a histogram observation a bucket
    scan over a handful of bounds.

    {!snapshot} serialises the whole registry to a deterministic JSON value
    (instruments sorted by name), which is what [eproc --metrics FILE]
    writes and what the trace-determinism tests compare.

    All operations are safe under concurrent use from several domains (the
    trial sweeps of [Ewalk_expt.Sweep] run inside [Ewalk_par.Pool]):
    counters and gauges are lock-free atomics, histograms and the registry
    are mutex-guarded.  Counter increments from different domains are exact
    (never lost); a gauge holds the last value {e some} domain set, so under
    a parallel sweep its final value reflects one (unspecified) trial. *)

type t
(** The registry. *)

type counter
type gauge
type histogram

val create : unit -> t

val counter : t -> string -> counter
(** [counter t name] registers (or retrieves — same name, same instrument)
    a monotonically increasing integer counter starting at 0. *)

val gauge : t -> string -> gauge
(** A float-valued instrument holding the last value set. *)

val histogram : ?buckets:float array -> t -> string -> histogram
(** A cumulative histogram over the given ascending upper bounds (an
    implicit [+inf] bucket is always appended).  Default buckets are
    powers of two [1, 2, 4, ..., 2^20] — sized for phase lengths and other
    step-count-valued observations.  [buckets] is validated on every call
    but only used when the name is not yet registered.
    @raise Invalid_argument if [buckets] is empty or not increasing. *)

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int

val set : gauge -> float -> unit
val set_max : gauge -> float -> unit
(** Keep the running maximum of the values set. *)

val gauge_value : gauge -> float

val observe : histogram -> float -> unit

val hist_count : histogram -> int
(** Total number of observations. *)

val hist_sum : histogram -> float

type view =
  | Counter_view of int
  | Gauge_view of float
  | Histogram_view of {
      hv_count : int;
      hv_sum : float;
      hv_buckets : (float * int) array;
          (** (finite upper bound, count in that bucket) — per-bucket, not
              cumulative *)
      hv_inf : int;  (** observations above the last bound *)
    }

val instruments : t -> (string * view) list
(** A consistent, name-sorted snapshot of every registered instrument —
    the exporter's ({!Export}) view of the registry.  Histogram fields are
    copied under the histogram's own lock. *)

val snapshot : t -> Json.t
(** Deterministic snapshot:
    [{"counters":{..},"gauges":{..},"histograms":{name:{"count","sum",
    "min","max","buckets":[{"le","count"},..]}}}] with names sorted. *)

val to_json_string : t -> string
(** [Json.to_string (snapshot t)]. *)

val write_file : t -> string -> unit
(** Write the snapshot (plus a trailing newline) to a file, atomically
    enough for our purposes ([Fun.protect]-guarded channel). *)
