(** A registry of named counters, gauges, and histograms.

    One registry per run (or per trial batch — counters accumulate across
    attached processes, so a multi-trial sweep sums naturally).  All
    instruments are cheap enough to update on a per-step hot path: a counter
    bump is one mutable-field increment, a histogram observation a bucket
    scan over a handful of bounds.

    {!snapshot} serialises the whole registry to a deterministic JSON value
    (instruments sorted by name), which is what [eproc --metrics FILE]
    writes and what the trace-determinism tests compare.

    All operations are safe under concurrent use from several domains (the
    trial sweeps of [Ewalk_expt.Sweep] run inside [Ewalk_par.Pool]):
    counters and gauges are lock-free atomics, histograms and the registry
    are mutex-guarded.  Counter increments from different domains are exact
    (never lost).  A gauge set with plain {!set} holds the last value
    {e some} domain wrote; writers that need a deterministic final value
    under parallel sweeps use {!set_at} with a total order (e.g. the trial
    index), which resolves races as last-by-sequence regardless of domain
    scheduling.

    For per-step hot paths shared across pool lanes, prefer the
    {!Shard} wrappers: per-domain cells with batched flush into this
    registry.  {!instruments} and {!snapshot} run a pre-read hook
    ({!set_pre_read_hook}) so sharded values are always published before a
    registry read — snapshots stay exact. *)

type t
(** The registry. *)

type counter
type gauge
type histogram

val create : unit -> t

val with_label : string -> key:string -> value:string -> string
(** [with_label name ~key ~value] is the canonical name-encoding of a
    labelled series in this name-keyed registry:
    ["<name>_<key>_<value>"], with [value] sanitised to the OpenMetrics
    name alphabet ([[a-zA-Z0-9_:]]; anything else becomes [_]).  The
    multi-walker kernel publishes per-walker counters this way
    ([blue_steps_walker_3]). *)

val counter : t -> string -> counter
(** [counter t name] registers (or retrieves — same name, same instrument)
    a monotonically increasing integer counter starting at 0. *)

val gauge : t -> string -> gauge
(** A float-valued instrument holding the last value set. *)

val histogram : ?buckets:float array -> t -> string -> histogram
(** A cumulative histogram over the given ascending upper bounds (an
    implicit [+inf] bucket is always appended).  Default buckets are
    powers of two [1, 2, 4, ..., 2^20] — sized for phase lengths and other
    step-count-valued observations.  [buckets] is validated (and used)
    only when [name] is not yet registered; retrieving an existing
    histogram ignores it.
    @raise Invalid_argument on first registration if [buckets] is empty or
    not increasing. *)

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int

val set : gauge -> float -> unit
val set_max : gauge -> float -> unit
(** Keep the running maximum of the values set. *)

val set_at : gauge -> seq:int -> float -> unit
(** [set_at g ~seq x] writes [x] unless the gauge already holds a value
    stamped with a strictly greater [seq].  With [seq] = trial index, the
    final gauge value is the last trial's — deterministic across [--jobs],
    unlike plain {!set} under a parallel sweep.  Plain {!set} writes are
    stamped lowest and never displace a [set_at] value. *)

val gauge_value : gauge -> float

val observe : histogram -> float -> unit

val hist_bounds : histogram -> float array
(** The finite ascending upper bounds (a copy). *)

val hist_merge :
  histogram ->
  bucket_counts:int array ->
  count:int ->
  sum:float ->
  min:float ->
  max:float ->
  unit
(** Merge a pre-aggregated batch (one shard cell's pending observations)
    under the histogram lock.  [bucket_counts] must have length
    [Array.length (hist_bounds h) + 1] (trailing [+inf] bucket).  A batch
    with [count = 0] is a no-op.
    @raise Invalid_argument on layout mismatch or negative count. *)

val hist_count : histogram -> int
(** Total number of observations. *)

val hist_sum : histogram -> float

type view =
  | Counter_view of int
  | Gauge_view of float
  | Histogram_view of {
      hv_count : int;
      hv_sum : float;
      hv_buckets : (float * int) array;
          (** (finite upper bound, count in that bucket) — per-bucket, not
              cumulative *)
      hv_inf : int;  (** observations above the last bound *)
    }

val instruments : t -> (string * view) list
(** A consistent, name-sorted snapshot of every registered instrument —
    the exporter's ({!Export}) view of the registry.  Histogram fields are
    copied under the histogram's own lock.  Runs the pre-read hook first. *)

val set_pre_read_hook : (unit -> unit) -> unit
(** Install the process-global hook run at the top of {!instruments} and
    {!snapshot}.  {!Shard} installs a flush-all here so sharded pending
    values are published before any registry read; last installer wins.
    The hook must be safe to call from any domain and must not read the
    registry through {!instruments}/{!snapshot} (it would recurse). *)

val snapshot : t -> Json.t
(** Deterministic snapshot:
    [{"counters":{..},"gauges":{..},"histograms":{name:{"count","sum",
    "min","max","buckets":[{"le","count"},..]}}}] with names sorted. *)

val to_json_string : t -> string
(** [Json.to_string (snapshot t)]. *)

val write_file : t -> string -> unit
(** Write the snapshot (plus a trailing newline) to a file, atomically
    enough for our purposes ([Fun.protect]-guarded channel). *)
