(* Per-domain local trees, merged on read.

   The hot path (enter/exit) touches only the calling domain's own tree:
   one DLS lookup, one hashtable probe, two monotonic clock reads — no
   locks, no atomics.  The profiler's mutex guards only the list of
   domain-local roots (taken once per domain, on its first span). *)

type data = {
  mutable count : int;
  mutable total_ns : int;
  node_children : (string, data) Hashtbl.t;
}

let fresh_data () = { count = 0; total_ns = 0; node_children = Hashtbl.create 4 }

type frame = { f_node : data; started : int }

type local = { l_root : data; mutable l_frames : frame list }

type t = {
  key : local Domain.DLS.key;
  p_mutex : Mutex.t;
  locals : local list ref;
}

let create () =
  let p_mutex = Mutex.create () in
  let locals = ref [] in
  let key =
    (* Runs on a domain's first access: register its fresh tree. *)
    Domain.DLS.new_key (fun () ->
        let l = { l_root = fresh_data (); l_frames = [] } in
        Mutex.lock p_mutex;
        locals := l :: !locals;
        Mutex.unlock p_mutex;
        l)
  in
  { key; p_mutex; locals }

let local t = Domain.DLS.get t.key

let enter t name =
  let l = local t in
  let parent =
    match l.l_frames with [] -> l.l_root | f :: _ -> f.f_node
  in
  let node =
    match Hashtbl.find_opt parent.node_children name with
    | Some d -> d
    | None ->
        let d = fresh_data () in
        Hashtbl.add parent.node_children name d;
        d
  in
  l.l_frames <- { f_node = node; started = Clock.now_ns () } :: l.l_frames

let exit_span t =
  let l = local t in
  match l.l_frames with
  | [] -> invalid_arg "Prof.exit_span: no open span on this domain"
  | f :: rest ->
      l.l_frames <- rest;
      f.f_node.count <- f.f_node.count + 1;
      f.f_node.total_ns <- f.f_node.total_ns + Clock.elapsed_ns f.started

let span t name f =
  enter t name;
  Fun.protect ~finally:(fun () -> exit_span t) f

type node = {
  name : string;
  calls : int;
  total_s : float;
  self_s : float;
  children : node list;
}

(* Merge same-named nodes across the per-domain tables: counts and totals
   sum; children merge recursively and sort by name, so the result is
   independent of domain interleaving. *)
let rec merge_tables (tables : (string, data) Hashtbl.t list) : node list =
  let names = Hashtbl.create 8 in
  List.iter
    (fun tbl ->
      Hashtbl.iter (fun name _ -> Hashtbl.replace names name ()) tbl)
    tables;
  Hashtbl.fold (fun name () acc -> name :: acc) names []
  |> List.sort String.compare
  |> List.map (fun name ->
         let datas =
           List.filter_map (fun tbl -> Hashtbl.find_opt tbl name) tables
         in
         let calls = List.fold_left (fun a d -> a + d.count) 0 datas in
         let total_ns =
           List.fold_left (fun a d -> a + d.total_ns) 0 datas
         in
         let children =
           merge_tables (List.map (fun d -> d.node_children) datas)
         in
         let child_total =
           List.fold_left (fun a c -> a +. c.total_s) 0.0 children
         in
         let total_s = Clock.ns_to_s total_ns in
         {
           name;
           calls;
           total_s;
           self_s = Float.max 0.0 (total_s -. child_total);
           children;
         })

let tree t =
  Mutex.lock t.p_mutex;
  let locals = !(t.locals) in
  Mutex.unlock t.p_mutex;
  merge_tables (List.map (fun l -> l.l_root.node_children) locals)

let rec node_to_json n =
  Json.Obj
    [
      ("name", Json.String n.name);
      ("calls", Json.Int n.calls);
      ("total_s", Json.Float n.total_s);
      ("self_s", Json.Float n.self_s);
      ("children", Json.List (List.map node_to_json n.children));
    ]

let to_json t = Json.List (List.map node_to_json (tree t))

let to_string t =
  let buf = Buffer.create 256 in
  let rec go depth n =
    Buffer.add_string buf
      (Printf.sprintf "%*stotal %8.3fs  self %8.3fs  calls %6d  %s\n"
         (depth * 2) "" n.total_s n.self_s n.calls n.name);
    List.iter (go (depth + 1)) n.children
  in
  List.iter (go 0) (tree t);
  Buffer.contents buf

let report ?(out = stdout) t =
  let s = to_string t in
  if s <> "" then output_string out s

(* -- ambient ---------------------------------------------------------------- *)

let ambient_enabled = Atomic.make false

let ambient_t = lazy (create ())

let enable_ambient () =
  Atomic.set ambient_enabled true;
  Lazy.force ambient_t

let disable_ambient () = Atomic.set ambient_enabled false

let ambient () =
  if Atomic.get ambient_enabled then Some (Lazy.force ambient_t) else None

let span_ambient name f =
  if Atomic.get ambient_enabled then span (Lazy.force ambient_t) name f
  else f ()
