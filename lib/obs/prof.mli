(** Hierarchical span profiler with per-domain attribution.

    A profiler accumulates named, nestable spans into a call tree: each
    node carries a call count and total monotonic time; after merging, a
    node's {e self} time is its total minus its children's totals.  This is
    the instrument that turns "the bench took 70 s" into "59 s of it is
    [spectral-p1]'s Lanczos sweep" — and "jobs=4 is slower" into a
    per-domain time budget.

    {b Domains.}  Every domain that enters a span gets its own local tree
    (domain-local storage), so the hot path takes no locks and spans opened
    on pool workers never interleave with the caller's.  {!tree} merges the
    per-domain trees deterministically: nodes with the same path are
    summed, children are sorted by name.  Merging reads other domains'
    trees without synchronisation, so call {!tree} at a quiescent point
    (after the pool batch / domain joins), which is how the bench and CLI
    use it.

    {b Ambient profiler.}  Library code that should be profilable without
    threading a [Prof.t] through every signature (the experiment sweeps)
    wraps its work in {!span_ambient}: a no-op (one atomic load) until
    {!enable_ambient} is called. *)

type t

val create : unit -> t

val enter : t -> string -> unit
(** Open a span named [name] nested inside the calling domain's innermost
    open span. *)

val exit_span : t -> unit
(** Close the innermost open span, folding its duration into the tree.
    @raise Invalid_argument if the calling domain has no open span. *)

val span : t -> string -> (unit -> 'a) -> 'a
(** [span t name f] runs [f] inside a [name] span; the span is closed even
    when [f] raises (the exception is re-raised). *)

(** One node of the merged call tree. *)
type node = {
  name : string;
  calls : int;  (** completed spans (still-open spans are not counted) *)
  total_s : float;
  self_s : float;  (** [total_s] minus the children's [total_s], >= 0 *)
  children : node list;  (** sorted by name *)
}

val tree : t -> node list
(** Merge every domain's spans into one deterministic tree (same spans =>
    same tree, whatever the domain interleaving).  Top-level nodes sorted
    by name. *)

val to_json : t -> Json.t
(** The merged tree as
    [[{"name","calls","total_s","self_s","children"},...]]. *)

val to_string : t -> string
(** Human-readable indented tree: total, self, calls per node.  Empty
    string when nothing was recorded. *)

val report : ?out:out_channel -> t -> unit
(** Print {!to_string} (default [stdout]); silent when empty. *)

val enable_ambient : unit -> t
(** Switch the process-global ambient profiler on (idempotent) and return
    it. *)

val disable_ambient : unit -> unit

val ambient : unit -> t option
(** The ambient profiler, when enabled. *)

val span_ambient : string -> (unit -> 'a) -> 'a
(** {!span} on the ambient profiler; just [f ()] while disabled. *)
