(* Thread-safety: the tick function handed out by [with_reporter] is called
   from worker domains when a sweep runs inside Ewalk_par.Pool, so every
   counter update and print happens under the reporter's mutex. *)

type t = {
  out : out_channel;
  interval : float;
  total : int;
  label : string;
  started : float;
  mutex : Mutex.t;
  mutable done_ : int;
  mutable last_print : float;
  mutable finished : bool;
}

let enabled () =
  match Sys.getenv_opt "EWALK_PROGRESS" with
  | Some ("1" | "true" | "yes") -> true
  | _ -> false

let create ?(out = stderr) ?(interval = 1.0) ~total ~label () =
  {
    out;
    interval;
    total;
    label;
    started = Timer.now ();
    mutex = Mutex.create ();
    done_ = 0;
    last_print = 0.0;
    finished = false;
  }

(* Caller holds [t.mutex]. *)
let print_locked t =
  let elapsed = Timer.now () -. t.started in
  let pct =
    if t.total <= 0 then 100.0
    else 100.0 *. float_of_int t.done_ /. float_of_int t.total
  in
  Printf.fprintf t.out "%s: %3.0f%% (%d/%d) %.1fs\n%!" t.label pct t.done_
    t.total elapsed

let tick ?(amount = 1) t =
  Mutex.lock t.mutex;
  t.done_ <- t.done_ + amount;
  let now = Timer.now () in
  if now -. t.last_print >= t.interval then begin
    t.last_print <- now;
    print_locked t
  end;
  Mutex.unlock t.mutex

let finish t =
  Mutex.lock t.mutex;
  if not t.finished then begin
    t.finished <- true;
    print_locked t
  end;
  Mutex.unlock t.mutex

let with_reporter ?enabled:(on = enabled ()) ~total ~label f =
  if not on then f ignore
  else begin
    let t = create ~total ~label () in
    Fun.protect ~finally:(fun () -> finish t) (fun () -> f (fun () -> tick t))
  end
