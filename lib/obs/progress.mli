(** Throttled progress reporting for long sweeps.

    Prints at most one line per [interval] seconds (plus a final line from
    {!finish}) to [stderr] by default, so a [full]-scale sweep that runs
    for minutes shows a heartbeat without drowning the terminal.  Enable it
    fleet-wide by exporting [EWALK_PROGRESS=1] — {!enabled} is the switch
    the experiment scaffolding consults.

    Reporters are mutex-guarded: {!tick} and {!finish} may be called from
    several domains at once (parallel trial sweeps tick from inside
    [Ewalk_par.Pool] workers) without losing counts or interleaving
    output. *)

type t

val enabled : unit -> bool
(** True iff [EWALK_PROGRESS] is set to [1] / [true] / [yes]. *)

val create :
  ?out:out_channel -> ?interval:float -> total:int -> label:string -> unit -> t
(** A reporter for [total] units of work (default [interval] 1s, output to
    [stderr]). *)

val tick : ?amount:int -> t -> unit
(** Record [amount] (default 1) units done; prints if the throttle
    interval has elapsed. *)

val finish : t -> unit
(** Print the final 100%-style line (whatever count was reached) with total
    elapsed time.  Idempotent. *)

val with_reporter :
  ?enabled:bool -> total:int -> label:string -> ((unit -> unit) -> 'a) -> 'a
(** [with_reporter ~total ~label f] passes a tick function to [f] and
    finishes the reporter afterwards.  When [enabled] is false (default:
    {!enabled} [()]), the tick function is [ignore] and nothing prints. *)
