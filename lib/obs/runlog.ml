(* Run identity: every eproc invocation (and every campaign resume leg)
   mints one deterministic run id that is stamped into every artifact the
   run produces — trace prologues, snapshot headers, campaign manifests
   and journal rows, flight-recorder dumps, OpenMetrics expositions and
   bench ledger records — so any artifact can be joined back to its run,
   and resumed legs can be joined to their ancestors via [parent_run_id].

   The id is a pure function of (config digest, monotonic epoch, parent):
   no wall-clock is read anywhere near a hot path, and a test can pin
   [EWALK_RUN_EPOCH] to make ids fully reproducible.  The digest is
   FNV-1a 64 — not cryptographic, just a stable 16-hex-digit name; the
   [r<16 hex>] shape is what {!validate_id} enforces when an id read back
   from an artifact must be rejected rather than trusted. *)

type t = { run_id : string; parent_run_id : string option }

(* --- FNV-1a 64 ----------------------------------------------------- *)

let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let fnv1a64 init s =
  let h = ref init in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h fnv_prime)
    s;
  !h

let derive ~config ~epoch_ns ?parent () =
  let h = fnv1a64 fnv_offset config in
  let h = fnv1a64 h (Printf.sprintf "|epoch:%d" epoch_ns) in
  let h =
    match parent with
    | None -> h
    | Some p -> fnv1a64 h ("|parent:" ^ p)
  in
  Printf.sprintf "r%016Lx" h

let synthesize_legacy material =
  Printf.sprintf "r%016Lx" (fnv1a64 fnv_offset ("legacy|" ^ material))

let validate_id s =
  String.length s = 17
  && s.[0] = 'r'
  && (let hex c = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') in
      let ok = ref true in
      String.iteri (fun i c -> if i > 0 && not (hex c) then ok := false) s;
      !ok)

(* --- the ambient current run --------------------------------------- *)

let env_epoch = "EWALK_RUN_EPOCH"
let env_runs_dir = "EWALK_RUNS_DIR"

let current_run : t option ref = ref None
let material : (string * int) option ref = ref None (* config, epoch *)
let artifacts : (string * string) list ref = ref []
let meta_extra : (unit -> (string * Json.t) list) list ref = ref []
let meta_hook_installed = ref false

let current () = !current_run
let run_id () = Option.map (fun r -> r.run_id) !current_run
let set_current r = current_run := r

let epoch_ns () =
  match Option.bind (Sys.getenv_opt env_epoch) int_of_string_opt with
  | Some e -> e
  | None -> Clock.now_ns ()

let runs_dir () =
  match Sys.getenv_opt env_runs_dir with
  | None | Some "" -> None
  | some -> some

let rec mkdirs dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdirs parent;
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

let run_dir ~runs_dir id = Filename.concat runs_dir id

let note_artifact ~key ~path =
  artifacts := (key, path) :: List.remove_assoc key !artifacts
let add_meta_fields f = meta_extra := f :: !meta_extra

let meta_schema = "ewalk-run-meta/1"

let meta_json t ~config ~epoch =
  let extra = List.concat_map (fun f -> try f () with _ -> []) !meta_extra in
  Json.Obj
    ([
       ("schema", Json.String meta_schema);
       ("run_id", Json.String t.run_id);
       ( "parent_run_id",
         match t.parent_run_id with
         | None -> Json.Null
         | Some p -> Json.String p );
       ("config", Json.String config);
       ("epoch_ns", Json.Int epoch);
       ( "artifacts",
         Json.Obj
           (List.rev_map (fun (k, p) -> (k, Json.String p)) !artifacts) );
     ]
    @ extra)

(* Read-only commands (eproc runs itself) switch persistence off so that
   browsing the store does not add entries to it. *)
let persist = ref true
let set_persist b = persist := b

(* Meta writes are atomic (temp + rename) and best-effort: a run that
   cannot persist its meta still runs — provenance is telemetry, not a
   precondition. *)
let write_meta () =
  match (!current_run, !material, runs_dir ()) with
  | _ when not !persist -> ()
  | Some t, Some (config, epoch), Some root -> (
      let dir = run_dir ~runs_dir:root t.run_id in
      mkdirs dir;
      let path = Filename.concat dir "meta.json" in
      let tmp = path ^ ".tmp" in
      try
        let oc = open_out tmp in
        (try
           output_string oc (Json.to_string (meta_json t ~config ~epoch));
           output_char oc '\n';
           close_out oc
         with e ->
           close_out_noerr oc;
           raise e);
        Sys.rename tmp path
      with Sys_error _ -> ())
  | _ -> ()

let install_meta_hook () =
  if not !meta_hook_installed then begin
    meta_hook_installed := true;
    (* Written at startup (so a killed run still has its meta) and
       rewritten at exit with the final artifact list and extras. *)
    at_exit write_meta
  end

let begin_run ~config () =
  let epoch = epoch_ns () in
  let t = { run_id = derive ~config ~epoch_ns:epoch (); parent_run_id = None } in
  material := Some (config, epoch);
  current_run := Some t;
  artifacts := [];
  if runs_dir () <> None then install_meta_hook ();
  write_meta ();
  t

(* Adoption abandons the id minted at startup; its meta dir (written
   eagerly so killed runs keep their meta) would otherwise linger as an
   orphan entry in the store. *)
let remove_stale_meta old_id =
  match runs_dir () with
  | None -> ()
  | Some root ->
      let dir = run_dir ~runs_dir:root old_id in
      (try Sys.remove (Filename.concat dir "meta.json")
       with Sys_error _ -> ());
      (try Sys.rmdir dir with Sys_error _ -> ())

(* A resume leg learns its parent only after argument parsing (the parent
   id lives in the artifact being resumed), so the current run re-derives
   itself with the parent folded into the digest — before any artifact of
   this leg has been stamped. *)
let adopt_parent parent =
  let old = !current_run in
  let t =
    match !material with
    | None ->
        let t =
          { run_id = synthesize_legacy parent; parent_run_id = Some parent }
        in
        current_run := Some t;
        t
    | Some (config, epoch) ->
        let t =
          {
            run_id = derive ~config ~epoch_ns:epoch ~parent ();
            parent_run_id = Some parent;
          }
        in
        current_run := Some t;
        write_meta ();
        t
  in
  (match old with
  | Some o when o.run_id <> t.run_id && !persist -> remove_stale_meta o.run_id
  | _ -> ());
  t
