(** Run identity and provenance.

    Every [eproc] invocation (and every campaign resume leg) mints one
    deterministic {e run id} — [r] followed by 16 hex digits, an FNV-1a 64
    digest of the invocation's config string, a monotonic epoch captured
    once at startup, and (on resume legs) the parent run's id.  The id is
    stamped into every artifact the run produces: trace prologues
    ([Trace.Run_info]), snapshot headers, campaign manifests and journal
    rows, flight-recorder dumps, OpenMetrics expositions
    ([ewalk_run_info]) and bench ledger records.  [parent_run_id] links a
    resumed leg to the leg whose artifact it restored, so [eproc runs
    show] can reassemble the whole kill-and-resume chain.

    No wall-clock is read on any hot path: the epoch is read once, from
    [EWALK_RUN_EPOCH] when set (tests pin it for reproducible ids) or the
    monotonic clock otherwise.

    When [EWALK_RUNS_DIR] is set, the run also persists
    [<runs_dir>/<run_id>/meta.json] (schema [ewalk-run-meta/1]): id,
    parent, config, epoch, artifact cross-references
    ({!note_artifact}) and any extra fields registered with
    {!add_meta_fields} — written at startup and rewritten at exit, so a
    killed run still leaves its meta behind. *)

type t = { run_id : string; parent_run_id : string option }

val derive : config:string -> epoch_ns:int -> ?parent:string -> unit -> string
(** The pure id derivation: same inputs, same id. *)

val synthesize_legacy : string -> string
(** A well-formed id for a pre-run_id artifact, derived from the given
    material (e.g. the artifact's payload bytes) so re-loading the same
    legacy artifact yields the same id. *)

val validate_id : string -> bool
(** [r] followed by exactly 16 lowercase hex digits — what readers check
    before trusting an id found in an artifact. *)

val begin_run : config:string -> unit -> t
(** Mint the process's run id and install it as the ambient current run.
    Reads the epoch ([EWALK_RUN_EPOCH] or the monotonic clock) once.
    When [EWALK_RUNS_DIR] is set, arms meta persistence. *)

val adopt_parent : string -> t
(** Re-derive the current run with a parent link (same config and epoch,
    parent folded into the digest) — called by resume paths once the
    parent id is known, before any artifact of this leg is stamped. *)

val current : unit -> t option
val run_id : unit -> string option
val set_current : t option -> unit
(** Test hook: override or clear the ambient run. *)

val epoch_ns : unit -> int
(** [EWALK_RUN_EPOCH] when set, else the monotonic clock. *)

val runs_dir : unit -> string option
(** [EWALK_RUNS_DIR] when set and non-empty. *)

val run_dir : runs_dir:string -> string -> string
(** [<runs_dir>/<run_id>]. *)

val note_artifact : key:string -> path:string -> unit
(** Record an artifact cross-reference (flight dir, checkpoint dir, trace
    output, ...) into the run's meta.  Re-noting a key replaces the
    earlier path (a resumed leg re-points [throughput] at its own dir). *)

val set_persist : bool -> unit
(** Switch meta persistence off (default on): read-only commands such as
    [eproc runs] browse the store without adding entries to it. *)

val add_meta_fields : (unit -> (string * Json.t) list) -> unit
(** Register a provider of extra meta fields, evaluated at each meta
    write (e.g. final step totals, throughput summary). *)

val write_meta : unit -> unit
(** Persist [meta.json] now (no-op unless a run is current and
    [EWALK_RUNS_DIR] is set).  Also runs automatically at exit. *)

val meta_schema : string
(** ["ewalk-run-meta/1"]. *)
