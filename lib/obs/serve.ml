(* Minimal built-in HTTP responder for live observability: one dedicated
   domain accepting loopback connections and answering GET requests from
   caller-supplied closures.  Deliberately tiny — HTTP/1.0, one request
   per connection, no keep-alive, no external dependency — the stepping
   stone to the ROADMAP's `eprocd`, not a web server.

   The accept loop polls with a short select timeout and re-checks a stop
   flag, so [stop] returns within a poll interval even when no client
   ever connects.  Handler closures run on the serving domain: they must
   be safe to call concurrently with the walk (Metrics snapshots and the
   progress callbacks used by eproc are). *)

type t = {
  sock : Unix.file_descr;
  sv_port : int;
  stop_flag : bool Atomic.t;
  mutable sv_domain : unit Domain.t option;
}

let port t = t.sv_port

let http_response ~status ~content_type body =
  Printf.sprintf
    "HTTP/1.0 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: \
     close\r\n\r\n%s"
    status content_type (String.length body) body

let read_request_line fd =
  (* Read until CRLF or a small cap; one request line is all we route on. *)
  let buf = Buffer.create 128 in
  let chunk = Bytes.create 512 in
  let rec go () =
    if Buffer.length buf > 4096 then ()
    else
      match Unix.read fd chunk 0 (Bytes.length chunk) with
      | 0 -> ()
      | k ->
          Buffer.add_subbytes buf chunk 0 k;
          if not (String.contains (Buffer.contents buf) '\n') then go ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EINTR), _, _) -> go ()
      | exception Unix.Unix_error (_, _, _) -> ()
  in
  go ();
  match String.index_opt (Buffer.contents buf) '\n' with
  | None -> None
  | Some i -> Some (String.trim (String.sub (Buffer.contents buf) 0 i))

let parse_target line =
  (* "GET /path HTTP/1.x" — anything else is a 400. *)
  match String.split_on_char ' ' line with
  | "GET" :: target :: _ ->
      (* Strip any query string: routes are exact paths. *)
      Some
        (match String.index_opt target '?' with
        | Some q -> String.sub target 0 q
        | None -> target)
  | _ -> None

let handle ~routes ~stop_flag fd =
  let response =
    match Option.bind (read_request_line fd) parse_target with
    | None -> http_response ~status:"400 Bad Request" ~content_type:"text/plain" "bad request\n"
    | Some "/quit" ->
        Atomic.set stop_flag true;
        http_response ~status:"200 OK" ~content_type:"text/plain" "bye\n"
    | Some path -> (
        match List.assoc_opt path routes with
        | None ->
            http_response ~status:"404 Not Found" ~content_type:"text/plain"
              "not found\n"
        | Some (content_type, body_fn) -> (
            match body_fn () with
            | body -> http_response ~status:"200 OK" ~content_type body
            | exception _ ->
                http_response ~status:"500 Internal Server Error"
                  ~content_type:"text/plain" "handler failed\n"))
  in
  let b = Bytes.of_string response in
  let rec write_all off =
    if off < Bytes.length b then
      match Unix.write fd b off (Bytes.length b - off) with
      | 0 -> ()
      | k -> write_all (off + k)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all off
      | exception Unix.Unix_error (_, _, _) -> ()
  in
  write_all 0

let accept_loop t routes =
  while not (Atomic.get t.stop_flag) do
    match Unix.select [ t.sock ] [] [] 0.2 with
    | [], _, _ -> ()
    | _ :: _, _, _ -> (
        match Unix.accept t.sock with
        | fd, _ ->
            Fun.protect
              ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
              (fun () -> handle ~routes ~stop_flag:t.stop_flag fd)
        | exception Unix.Unix_error (_, _, _) -> ())
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

let start ?(port = 0) ~metrics ~progress () =
  let routes =
    [
      ( "/metrics",
        ("application/openmetrics-text; version=1.0.0; charset=utf-8", metrics)
      );
      ("/progress", ("application/json", progress));
      ("/healthz", ("text/plain", fun () -> "ok\n"));
    ]
  in
  match
    let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    (try
       Unix.setsockopt sock Unix.SO_REUSEADDR true;
       Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
       Unix.listen sock 16
     with e ->
       (try Unix.close sock with Unix.Unix_error _ -> ());
       raise e);
    let sv_port =
      match Unix.getsockname sock with
      | Unix.ADDR_INET (_, p) -> p
      | Unix.ADDR_UNIX _ -> assert false
    in
    (sock, sv_port)
  with
  | exception Unix.Unix_error (err, fn, _) ->
      Error (Printf.sprintf "%s: %s" fn (Unix.error_message err))
  | sock, sv_port ->
      let t = { sock; sv_port; stop_flag = Atomic.make false; sv_domain = None } in
      t.sv_domain <- Some (Domain.spawn (fun () -> accept_loop t routes));
      Ok t

let stop t =
  Atomic.set t.stop_flag true;
  (match t.sv_domain with
  | Some d ->
      t.sv_domain <- None;
      Domain.join d
  | None -> ());
  try Unix.close t.sock with Unix.Unix_error _ -> ()
