(* Minimal built-in HTTP listener: one dedicated domain accepting loopback
   connections.  Two faces share it: the legacy read-only observability
   routes ([start]) and a full request router with bodies and chunked
   streaming ([start_router]) — the transport under eprocd.  Deliberately
   tiny: one request per connection, no keep-alive, no external
   dependency.

   The accept loop polls with a short select timeout and re-checks a stop
   flag, so [stop] returns within a poll interval even when no client
   ever connects.  Handlers run on the serving domain: they must be safe
   to call concurrently with the walk. *)

type t = {
  sock : Unix.file_descr;
  sv_port : int;
  stop_flag : bool Atomic.t;
  mutable sv_domain : unit Domain.t option;
}

type request = {
  rq_meth : string;
  rq_path : string;
  rq_query : (string * string) list;
  rq_body : string;
}

type response =
  | Fixed of { fx_status : int; fx_ctype : string; fx_body : string }
  | Stream of { st_status : int; st_ctype : string; st_write : (string -> unit) -> unit }

let respond ?(status = 200) ?(content_type = "application/json") body =
  Fixed { fx_status = status; fx_ctype = content_type; fx_body = body }

let respond_stream ?(status = 200) ?(content_type = "application/jsonl") write
    =
  Stream { st_status = status; st_ctype = content_type; st_write = write }

let response_status = function
  | Fixed { fx_status; _ } -> fx_status
  | Stream { st_status; _ } -> st_status

let response_body = function
  | Fixed { fx_body; _ } -> Some fx_body
  | Stream _ -> None

let status_text = function
  | 200 -> "200 OK"
  | 201 -> "201 Created"
  | 400 -> "400 Bad Request"
  | 404 -> "404 Not Found"
  | 405 -> "405 Method Not Allowed"
  | 409 -> "409 Conflict"
  | 410 -> "410 Gone"
  | 413 -> "413 Content Too Large"
  | 422 -> "422 Unprocessable Content"
  | 431 -> "431 Request Header Fields Too Large"
  | 503 -> "503 Service Unavailable"
  | _ -> "500 Internal Server Error"

let port t = t.sv_port
let stopped t = Atomic.get t.stop_flag

(* Protocol-level failures (bad framing, oversized body) are answered by
   the listener itself, in the same structured shape the router uses for
   application errors, so clients need one error decoder. *)
let error_json ~code message =
  Json.to_string
    (Json.Obj
       [
         ( "error",
           Json.Obj
             [ ("code", Json.String code); ("message", Json.String message) ]
         );
       ])
  ^ "\n"

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    match Unix.write fd b !off (n - !off) with
    | 0 -> off := n
    | k -> off := !off + k
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

let header ~version ~status ~content_type extra =
  Printf.sprintf "%s %s\r\nContent-Type: %s\r\n%sConnection: close\r\n\r\n"
    version (status_text status) content_type extra

let write_fixed fd ~status ~content_type body =
  write_all fd
    (header ~version:"HTTP/1.0" ~status ~content_type
       (Printf.sprintf "Content-Length: %d\r\n" (String.length body))
    ^ body)

(* -- request parsing ------------------------------------------------------- *)

let max_head = 16 * 1024

(* Read until the blank line ending the header block (or EOF / cap). *)
let read_head fd =
  let buf = Buffer.create 512 in
  let chunk = Bytes.create 1024 in
  let rec go () =
    let s = Buffer.contents buf in
    (* Look for CRLFCRLF or LFLF. *)
    let sep =
      let rec scan i =
        if i + 3 < String.length s then
          if s.[i] = '\r' && s.[i + 1] = '\n' && s.[i + 2] = '\r' && s.[i + 3] = '\n'
          then Some (i, 4)
          else if s.[i] = '\n' && s.[i + 1] = '\n' then Some (i, 2)
          else scan (i + 1)
        else if i + 1 < String.length s && s.[i] = '\n' && s.[i + 1] = '\n'
        then Some (i, 2)
        else None
      in
      scan 0
    in
    match sep with
    | Some (i, w) -> Some (String.sub s 0 i, String.sub s (i + w) (String.length s - i - w))
    | None ->
        if Buffer.length buf > max_head then None
        else (
          match Unix.read fd chunk 0 (Bytes.length chunk) with
          | 0 -> None
          | k ->
              Buffer.add_subbytes buf chunk 0 k;
              go ()
          | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EINTR), _, _) ->
              go ()
          | exception Unix.Unix_error (_, _, _) -> None)
  in
  go ()

let read_body fd ~already ~len =
  let buf = Buffer.create len in
  Buffer.add_string buf already;
  let chunk = Bytes.create 4096 in
  let rec go () =
    if Buffer.length buf >= len then
      Some (String.sub (Buffer.contents buf) 0 len)
    else
      match Unix.read fd chunk 0 (Bytes.length chunk) with
      | 0 -> None
      | k ->
          Buffer.add_subbytes buf chunk 0 k;
          go ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EINTR), _, _) -> go ()
      | exception Unix.Unix_error (_, _, _) -> None
  in
  go ()

let percent_decode s =
  let hex c =
    match c with
    | '0' .. '9' -> Some (Char.code c - Char.code '0')
    | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
    | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
    | _ -> None
  in
  let b = Buffer.create (String.length s) in
  let i = ref 0 in
  while !i < String.length s do
    (match s.[!i] with
    | '%' when !i + 2 < String.length s -> (
        match (hex s.[!i + 1], hex s.[!i + 2]) with
        | Some h, Some l ->
            Buffer.add_char b (Char.chr ((h * 16) + l));
            i := !i + 2
        | _ -> Buffer.add_char b '%')
    | '+' -> Buffer.add_char b ' '
    | c -> Buffer.add_char b c);
    incr i
  done;
  Buffer.contents b

let parse_query q =
  if q = "" then []
  else
    String.split_on_char '&' q
    |> List.filter_map (fun pair ->
           if pair = "" then None
           else
             match String.index_opt pair '=' with
             | None -> Some (percent_decode pair, "")
             | Some i ->
                 Some
                   ( percent_decode (String.sub pair 0 i),
                     percent_decode
                       (String.sub pair (i + 1) (String.length pair - i - 1))
                   ))

type parsed =
  | Req of { meth : string; path : string; query : (string * string) list; clen : int }
  | Bad of int * string * string  (* status, code, message *)

let parse_head head =
  match String.split_on_char '\n' head with
  | [] -> Bad (400, "bad_request", "empty request")
  | req_line :: header_lines -> (
      let req_line = String.trim req_line in
      match String.split_on_char ' ' req_line with
      | [ meth; target; _version ] -> (
          let meth = String.uppercase_ascii meth in
          if
            not
              (List.mem meth [ "GET"; "POST"; "DELETE"; "HEAD"; "PUT" ])
          then Bad (405, "method_not_allowed", "method " ^ meth)
          else
            let path_raw, query_raw =
              match String.index_opt target '?' with
              | Some q ->
                  ( String.sub target 0 q,
                    String.sub target (q + 1) (String.length target - q - 1)
                  )
              | None -> (target, "")
            in
            let path = percent_decode path_raw in
            if String.length path = 0 || path.[0] <> '/' then
              Bad (400, "bad_request", "bad target")
            else
              let clen =
                List.fold_left
                  (fun acc line ->
                    match String.index_opt line ':' with
                    | None -> acc
                    | Some i ->
                        let k =
                          String.lowercase_ascii
                            (String.trim (String.sub line 0 i))
                        in
                        if k = "content-length" then
                          let v =
                            String.trim
                              (String.sub line (i + 1)
                                 (String.length line - i - 1))
                          in
                          match int_of_string_opt v with
                          | Some n when n >= 0 -> n
                          | _ -> -1
                        else acc)
                  0 header_lines
              in
              if clen < 0 then Bad (400, "bad_request", "bad content-length")
              else
                Req { meth; path; query = parse_query query_raw; clen })
      | _ -> Bad (400, "bad_request", "bad request line"))

(* -- connection handling --------------------------------------------------- *)

let write_error fd ~status ~code message =
  write_fixed fd ~status ~content_type:"application/json"
    (error_json ~code message)

let handle ~handler ~max_body ~stop_flag fd =
  (* A stalled or byte-dribbling client must not wedge the daemon: bound
     every read with a receive timeout and give up on expiry. *)
  (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 10.0
   with Unix.Unix_error _ -> ());
  match read_head fd with
  | None -> write_error fd ~status:400 ~code:"bad_request" "unreadable request"
  | Some (head, rest) -> (
      match parse_head head with
      | Bad (status, code, msg) -> write_error fd ~status ~code msg
      | Req { meth; path; query; clen } ->
          if clen > max_body then
            write_error fd ~status:413 ~code:"body_too_large"
              (Printf.sprintf "request body %d exceeds cap %d" clen max_body)
          else (
            match read_body fd ~already:rest ~len:clen with
            | None ->
                write_error fd ~status:400 ~code:"bad_request"
                  "request body shorter than content-length"
            | Some body -> (
                if path = "/quit" then begin
                  (* Commit to shutdown, then answer: the full "bye"
                     response is on the wire before the socket closes. *)
                  Atomic.set stop_flag true;
                  write_fixed fd ~status:200 ~content_type:"text/plain"
                    "bye\n"
                end
                else
                  let request =
                    { rq_meth = meth; rq_path = path; rq_query = query; rq_body = body }
                  in
                  match handler request with
                  | Fixed { fx_status; fx_ctype; fx_body } ->
                      write_fixed fd ~status:fx_status ~content_type:fx_ctype
                        fx_body
                  | Stream { st_status; st_ctype; st_write } ->
                      write_all fd
                        (header ~version:"HTTP/1.1" ~status:st_status
                           ~content_type:st_ctype
                           "Transfer-Encoding: chunked\r\n");
                      let buf = Buffer.create 8192 in
                      let flush_buf () =
                        if Buffer.length buf > 0 then begin
                          let data = Buffer.contents buf in
                          Buffer.clear buf;
                          write_all fd
                            (Printf.sprintf "%x\r\n%s\r\n"
                               (String.length data) data)
                        end
                      in
                      let push s =
                        if String.length s > 0 then begin
                          Buffer.add_string buf s;
                          if Buffer.length buf >= 8192 then flush_buf ()
                        end
                      in
                      (* A handler exception mid-stream cannot become a
                         clean status line (headers are gone): drop the
                         connection without the terminal chunk so the
                         client sees truncation. *)
                      st_write push;
                      flush_buf ();
                      write_all fd "0\r\n\r\n"
                  | exception e ->
                      write_error fd ~status:500 ~code:"internal"
                        (Printexc.to_string e))))

let accept_loop t ~handler ~max_body =
  while not (Atomic.get t.stop_flag) do
    match Unix.select [ t.sock ] [] [] 0.2 with
    | [], _, _ -> ()
    | _ :: _, _, _ -> (
        match Unix.accept t.sock with
        | fd, _ ->
            Fun.protect
              ~finally:(fun () ->
                try Unix.close fd with Unix.Unix_error _ -> ())
              (fun () ->
                try handle ~handler ~max_body ~stop_flag:t.stop_flag fd
                with Unix.Unix_error _ -> ())
        | exception Unix.Unix_error (_, _, _) -> ())
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

let start_router ?(port = 0) ?(max_body = 1024 * 1024) handler =
  (* A client hanging up mid-response must surface as EPIPE on the write,
     not kill the process. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  match
    let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    (try
       Unix.setsockopt sock Unix.SO_REUSEADDR true;
       Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
       Unix.listen sock 64
     with e ->
       (try Unix.close sock with Unix.Unix_error _ -> ());
       raise e);
    let sv_port =
      match Unix.getsockname sock with
      | Unix.ADDR_INET (_, p) -> p
      | Unix.ADDR_UNIX _ -> assert false
    in
    (sock, sv_port)
  with
  | exception Unix.Unix_error (err, fn, _) ->
      Error (Printf.sprintf "%s: %s" fn (Unix.error_message err))
  | sock, sv_port ->
      let t =
        { sock; sv_port; stop_flag = Atomic.make false; sv_domain = None }
      in
      t.sv_domain <- Some (Domain.spawn (fun () -> accept_loop t ~handler ~max_body));
      Ok t

let start ?port ~metrics ~progress () =
  let routes =
    [
      ( "/metrics",
        ("application/openmetrics-text; version=1.0.0; charset=utf-8", metrics)
      );
      ("/progress", ("application/json", progress));
      ("/healthz", ("text/plain", fun () -> "ok\n"));
    ]
  in
  start_router ?port (fun rq ->
      if rq.rq_meth <> "GET" then
        respond ~status:405
          (error_json ~code:"method_not_allowed" "GET only")
      else
        match List.assoc_opt rq.rq_path routes with
        | None ->
            respond ~status:404 (error_json ~code:"not_found" rq.rq_path)
        | Some (content_type, body_fn) ->
            respond ~content_type (body_fn ()))

let stop t =
  Atomic.set t.stop_flag true;
  (match t.sv_domain with
  | Some d ->
      t.sv_domain <- None;
      Domain.join d
  | None -> ());
  try Unix.close t.sock with Unix.Unix_error _ -> ()
