(** Live observability endpoint: a minimal built-in HTTP responder on a
    dedicated domain, serving the current {!Metrics} registry and a
    progress snapshot while a run is in flight.

    Deliberately tiny: HTTP/1.0 GET only, loopback only, one request per
    connection.  Routes:

    - [/metrics] — the [metrics] closure's output (eproc serves
      {!Export.render}, OpenMetrics text);
    - [/progress] — the [progress] closure's output (eproc serves a JSON
      snapshot: steps/sec, coverage fractions, lane utilization, ETA);
    - [/healthz] — ["ok"];
    - [/quit] — stops the accept loop (and answers ["bye"]).

    Handler closures run on the serving domain, concurrently with the
    walk — registry snapshots are safe ({!Metrics.snapshot} flushes
    pending shards and locks per instrument); anything else they read
    must be its own responsibility.  This is the stepping stone to the
    ROADMAP's [eprocd]. *)

type t

val start :
  ?port:int ->
  metrics:(unit -> string) ->
  progress:(unit -> string) ->
  unit ->
  (t, string) result
(** Bind loopback [port] (default [0] — let the kernel pick an ephemeral
    one, see {!port}), spawn the serving domain, return immediately.
    [Error] carries the bind/listen failure (e.g. port in use). *)

val port : t -> int
(** The actual bound port (useful with [~port:0]). *)

val stop : t -> unit
(** Stop the accept loop (within one 200 ms poll interval), join the
    serving domain, close the socket.  Idempotent in effect. *)
